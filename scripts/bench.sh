#!/bin/sh
# bench.sh — parallel-scaling benchmark harness. Trains the same CLAPF
# configuration at several worker counts and writes the machine-readable
# report to BENCH_parallel.json (steps/sec, speedup vs one worker, and
# parallel-eval wall-time per worker count). The report's "cores" field
# records the machine it ran on: speedup is bounded by physical cores, so
# interpret the ratios against that number, not in the abstract.
#
# Usage: scripts/bench.sh [workers] [scale] [epochs] [out.json]
set -eu

cd "$(dirname "$0")/.."

WORKERS="${1:-1,2,4}"
SCALE="${2:-0.25}"
EPOCHS="${3:-30}"
OUT="${4:-BENCH_parallel.json}"

go run ./cmd/clapf-bench -exp parallel -dataset ML100K \
	-scale "$SCALE" -epochs "$EPOCHS" -reps 1 -evalusers 500 \
	-workers "$WORKERS" -json "$OUT"

echo "wrote $OUT"

#!/bin/sh
# bench.sh — benchmark harness. Runs two machine-readable benchmarks:
#
#   BENCH_parallel.json — trains the same CLAPF configuration at several
#   worker counts (steps/sec, speedup vs one worker, parallel-eval
#   wall-time per worker count).
#
#   BENCH_serve.json — drives the recommendation HTTP stack over a
#   loopback connection and compares the sequential single-request path
#   against the /recommend/batch endpoint and the warmed top-K cache
#   (QPS plus p50/p95/p99 per path). The report's "f32" section runs the
#   float32 serving kernels against float64 on a synthetic production
#   catalog (single-user full-catalog scan and blocked multi-user sweep),
#   records the parameter-bytes ratio (must be <= 0.55), Welch t-tests of
#   per-user Prec@5/NDCG@5 float32-vs-float64 (both p must be > 0.05, i.e.
#   quantization is statistically invisible), and recall@10 of a
#   full-probe IVF index over float32 factors against the float64 exact
#   ranking (full width isolates quantization loss; pruning loss is
#   BENCH_retrieval.json's gate). The scan arm —
#   the exact-mode request cost — must show f32_scan_speedup >= 1.2.
#
#   BENCH_guard.json — reruns the parallel workload with the training
#   guardrails armed (loss watchdog, non-finite sentinels, gradient
#   clipping) and records the throughput overhead per worker count. The
#   budget is < 3% on a quiet machine.
#
#   BENCH_trace.json — A/B-tests request tracing: the same serve and
#   serial-train workloads with the tracer on and off. The serve trace
#   cost is an in-process paired median (serve_trace_cost_us), reported
#   against end-to-end request turnaround (serve_overhead_pct); train
#   medians alternating traced/untraced pairs. Both budgets are < 2% on a quiet
#   machine; slow_capture_ok must be true. A self-certifying capture
#   check proves a slow request lands in /debug/traces with an intact
#   span tree.
#
#   BENCH_cluster.json — stands up the sharded serving tier (router +
#   three in-process shards) and drives load through five phases:
#   healthy, one shard killed mid-load, recovered, injected latency, and
#   torn responses. Reports availability, degraded-response fraction by
#   mode, retry/hedge counts, breaker opens, and p50/p95/p99 per phase.
#   availability_one_down must be >= 0.99 and victim_readmitted true.
#
#   BENCH_retrieval.json — answers the same top-K queries with the dense
#   exact kernel and the cluster-pruned IVF index on the full-size ML20M
#   item catalog (user base subsampled; per-query cost depends only on
#   the catalog) and reports QPS and p50/p95/p99 per arm plus recall@10
#   of IVF against the exact ranking. At the index defaults,
#   ivf_speedup_vs_exact must be >= 3 with ivf_recall_at_10 >= 0.95.
#
#   BENCH_ingest.json — measures the crash-safe feedback ingest path:
#   WAL append throughput and durable-ack p50/p95 at fsync-every-1/8/64
#   (64 concurrent appenders, every append acked only after a covering
#   fsync), then /recommend latency with the online-update pipeline idle
#   versus under a steady concurrent POST /feedback stream.
#   p95_overhead_pct must be <= 5 on a quiet machine.
#
# All reports carry a "cores" field recording the machine they ran on:
# speedup is bounded by physical cores, so interpret the ratios against
# that number, not in the abstract.
#
# Usage: scripts/bench.sh [workers] [scale] [epochs] [out.json] [serve_out.json] [guard_out.json] [trace_out.json] [cluster_out.json] [retrieval_out.json] [ingest_out.json]
set -eu

cd "$(dirname "$0")/.."

WORKERS="${1:-1,2,4}"
SCALE="${2:-0.25}"
EPOCHS="${3:-30}"
OUT="${4:-BENCH_parallel.json}"
SERVE_OUT="${5:-BENCH_serve.json}"
GUARD_OUT="${6:-BENCH_guard.json}"
TRACE_OUT="${7:-BENCH_trace.json}"
CLUSTER_OUT="${8:-BENCH_cluster.json}"
RETRIEVAL_OUT="${9:-BENCH_retrieval.json}"
INGEST_OUT="${10:-BENCH_ingest.json}"

go run ./cmd/clapf-bench -exp parallel -dataset ML100K \
	-scale "$SCALE" -epochs "$EPOCHS" -reps 1 -evalusers 500 \
	-workers "$WORKERS" -json "$OUT"

echo "wrote $OUT"

go run ./cmd/clapf-bench -exp serve -dataset ML100K \
	-scale "$SCALE" -requests 1500 -batch 64 \
	-kernel-items 524288 -json "$SERVE_OUT"

echo "wrote $SERVE_OUT"

go run ./cmd/clapf-bench -exp guard -dataset ML100K \
	-scale "$SCALE" -epochs "$EPOCHS" -reps 1 \
	-workers "$WORKERS" -clip-norm 10 -json "$GUARD_OUT"

echo "wrote $GUARD_OUT"

go run ./cmd/clapf-bench -exp trace -dataset ML100K \
	-scale "$SCALE" -epochs "$EPOCHS" -requests 1500 -rounds 3 \
	-json "$TRACE_OUT"

echo "wrote $TRACE_OUT"

go run ./cmd/clapf-bench -exp cluster -dataset ML100K \
	-scale "$SCALE" -shards 3 -requests 2000 -load-workers 8 \
	-json "$CLUSTER_OUT"

echo "wrote $CLUSTER_OUT"

# Retrieval runs on the full-size ML20M catalog regardless of $SCALE:
# pruning only shows at production catalog sizes, and the subsampled
# user base keeps the run to a couple of minutes.
go run ./cmd/clapf-bench -exp retrieval -dataset ML20M \
	-scale 1 -bench-users 1200 -json "$RETRIEVAL_OUT"

echo "wrote $RETRIEVAL_OUT"

go run ./cmd/clapf-bench -exp ingest -dataset ML100K \
	-scale "$SCALE" -events 8192 -requests 1500 -json "$INGEST_OUT"

echo "wrote $INGEST_OUT"

#!/bin/sh
# check.sh — the repository's pre-merge gate: formatting, vet, and the
# full test suite under the race detector. Run via `make check`.
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go test -race -shuffle=on ./...

# Chaos-recovery gate: the guardrail subsystem's end-to-end guarantee —
# injected NaN poisoning, torn checkpoints, and exploding learning rates
# must all recover via rollback + backoff — exercised explicitly under
# the race detector (the parallel trainer's guard checks run at segment
# barriers and must stay race-clean). -count=1 defeats the test cache so
# the gate always actually runs.
go test -race -count=1 -run '^TestChaos' ./internal/fault
echo "chaos-recovery gate ok"

# Short fuzz smoke over the model-file loader: a few seconds of random
# inputs against the corrupt-file handling, on top of the seed corpus the
# regular tests already replay. The corpus seeds all three format
# versions, including v3 float32 files with flipped section/header bytes.
go test -run='^$' -fuzz='^FuzzLoad$' -fuzztime=5s ./internal/store

# Store v3 gate: round-trip, mmap load/Verify/Close, and the corruption
# matrix (truncation at every boundary, CRC flips, non-canonical section
# offsets) must all be clean errors, never panics. -count=1 defeats the
# test cache so the gate always actually runs.
go test -race -count=1 -run '^Test(SaveF32|V3|LoadMapped|V1V2)' ./internal/store
echo "store v3 gate ok"

# IVF fuzz smoke: adversarial factor matrices (NaN/Inf rows, zero norms,
# duplicates, nlist > items) against index construction and full-width
# search invariants.
go test -run='^$' -fuzz='^FuzzIVFBuild$' -fuzztime=5s ./internal/retrieval

# IVF retrieval smoke: build the index on a seeded world, query every
# user, and hold the recall@10 floor against exact retrieval — under the
# race detector because the index is queried concurrently in serving.
# -count=1 defeats the test cache so the gate always actually runs.
go test -race -count=1 -run '^TestIVFSmoke$' ./internal/retrieval
echo "ivf retrieval smoke ok"

# Batch-IVF gate: the /recommend/batch endpoint must answer through the
# installed retrieval index exactly like the single-request path (no
# silent dense fall-back), keep cache keys mode-scoped, and stay
# consistent across retrieval mode flips with batches in flight — the
# flip test races batches against SetRetrieval, hence the race detector.
# -count=1 defeats the test cache so the gate always actually runs.
go test -race -count=1 -run '^Test(BatchIVF|ModeFlip|ServeFloat32)' ./internal/serve
echo "batch-ivf gate ok"

# Serve load-test smoke: a tiny single/batch/cached sweep through a live
# loopback server — including the float32-vs-float64 kernel arms and the
# quantization parity check — so a serving regression fails the gate
# before the full scripts/bench.sh run would catch it.
go run ./cmd/clapf-bench -exp serve -dataset ML100K -scale 0.05 \
	-requests 60 -batch 16 -kernel-items 4096 >/dev/null
echo "serve smoke ok"

# Trace smoke: end-to-end tracing under the race detector — a request
# must land in /debug/traces with parent/child spans and populate the
# per-stage histogram. -count=1 defeats the test cache so the gate
# always actually runs.
go test -race -count=1 -run '^TestTraceSmoke' ./internal/serve
echo "trace smoke ok"

# Cluster chaos gate: the sharded-serving guarantee — with one of three
# shards killed mid-load, availability stays >= 99%, every below-fresh
# answer carries a degradation label, the victim's breaker opens, and
# the shard is readmitted after recovery. Run under the race detector:
# the router's hot path (hedges, breaker state, stale cache) is all
# shared-state concurrency. -count=1 defeats the test cache.
go test -race -count=1 -run '^TestClusterChaos' ./internal/cluster
echo "cluster chaos gate ok"

# Feedback chaos gate: the crash-safe ingest guarantee — zero
# acknowledged-but-lost events across torn-tail and group-commit
# crashes, post-replay factors byte-identical to an uninterrupted run
# even when the crash lands between the watermarked export and the hot
# swap, and a failed promotion leaves the old generation serving. Under
# the race detector: ingest, overlay rebuilds, and promotion all share
# the consistency lock. -count=1 defeats the test cache.
go test -race -count=1 -run '^TestFeedbackChaos' ./internal/feedback
echo "feedback chaos gate ok"

# WAL decoder fuzz smoke: random and mutated segment bodies against the
# frame decoder (torn tails, bit flips, length lies) plus whole-file
# recovery — decode must be a clean prefix parse, never a panic, and
# recovery must leave an appendable log or fail outright.
go test -run='^$' -fuzz='^FuzzReplay$' -fuzztime=5s ./internal/feedback
echo "feedback fuzz smoke ok"

package datagen

import (
	"math"
	"sort"
	"testing"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
)

func smallProfile() Profile {
	return Profile{
		Name: "small", Users: 100, Items: 200, Pairs: 2000,
		ZipfExp: 1.0, Dim: 6, Affinity: 1.5,
	}
}

func TestGenerateShape(t *testing.T) {
	w, err := Generate(smallProfile(), mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	d := w.Data
	if d.NumUsers() != 100 || d.NumItems() != 200 {
		t.Errorf("dims = (%d,%d)", d.NumUsers(), d.NumItems())
	}
	// Pair budget should be hit within rounding slack (every user rounds
	// down but is floored at 2).
	if d.NumPairs() < 1500 || d.NumPairs() > 2500 {
		t.Errorf("pairs = %d, want ≈ 2000", d.NumPairs())
	}
	// Every user must have at least 2 positives for CLAPF's (i,k) pair.
	for u := int32(0); u < 100; u++ {
		if d.NumPositives(u) < 2 {
			t.Fatalf("user %d has %d positives, want >= 2", u, d.NumPositives(u))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := Generate(smallProfile(), mathx.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(smallProfile(), mathx.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if w1.Data.NumPairs() != w2.Data.NumPairs() {
		t.Fatal("same seed produced different pair counts")
	}
	w1.Data.ForEach(func(u, i int32) {
		if !w2.Data.IsPositive(u, i) {
			t.Fatalf("pair (%d,%d) differs between same-seed runs", u, i)
		}
	})
}

func TestGenerateLongTail(t *testing.T) {
	w, err := Generate(smallProfile(), mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	pop := w.Data.ItemPopularity()
	sort.Sort(sort.Reverse(sort.IntSlice(pop)))
	// Head-heavy: the top 10% of items should hold well over 10% of the
	// interactions (Zipf with exp ≈ 1 concentrates roughly half the mass).
	head, total := 0, 0
	for i, c := range pop {
		total += c
		if i < len(pop)/10 {
			head += c
		}
	}
	if frac := float64(head) / float64(total); frac < 0.25 {
		t.Errorf("top-10%% items hold %.2f of interactions, want long-tail (> 0.25)", frac)
	}
}

func TestGenerateTasteSignal(t *testing.T) {
	// Positive pairs must carry higher ground-truth affinity than random
	// pairs, otherwise no learner could do better than popularity.
	w, err := Generate(smallProfile(), mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var pos, neg mathx.OnlineStats
	rng := mathx.NewRNG(11)
	w.Data.ForEach(func(u, i int32) { pos.Add(w.TrueScore(u, i)) })
	for n := 0; n < 5000; n++ {
		u := int32(rng.Intn(w.Data.NumUsers()))
		i := int32(rng.Intn(w.Data.NumItems()))
		if !w.Data.IsPositive(u, i) {
			neg.Add(w.TrueScore(u, i))
		}
	}
	if pos.Mean() <= neg.Mean() {
		t.Errorf("positive affinity %.4f not above negative %.4f", pos.Mean(), neg.Mean())
	}
}

func TestScaledPreservesDensity(t *testing.T) {
	p, err := ProfileByName("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	s := p.Scaled(0.02)
	if s.Users >= p.Users || s.Items >= p.Items {
		t.Errorf("Scaled did not shrink: %+v", s)
	}
	origDensity := float64(p.Pairs) / float64(p.Users) / float64(p.Items)
	newDensity := float64(s.Pairs) / float64(s.Users) / float64(s.Items)
	// Density preserved within the 2-per-user floor's distortion.
	if newDensity < origDensity*0.5 || newDensity > origDensity*20 {
		t.Errorf("density %v -> %v, want same order", origDensity, newDensity)
	}
	// Scale >= 1 or <= 0 is identity.
	if q := p.Scaled(1.0); q.Users != p.Users {
		t.Error("Scaled(1.0) should be identity")
	}
	if q := p.Scaled(0); q.Users != p.Users {
		t.Error("Scaled(0) should be identity")
	}
}

func TestProfileByName(t *testing.T) {
	for _, want := range []string{"ML100K", "ml1m", "usertag", "ML20M", "flixter", "NETFLIX"} {
		if _, err := ProfileByName(want); err != nil {
			t.Errorf("ProfileByName(%q): %v", want, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestTable1ProfilesMatchPaper(t *testing.T) {
	// Spot-check the Table 1 numbers that define each corpus shape.
	want := map[string][3]int{
		"ML100K":  {943, 1682, 27688 + 27687},
		"ML1M":    {6040, 3952, 287641 + 287640},
		"UserTag": {3000, 3000, 123218 + 123218},
		"ML20M":   {138493, 26744, 579741 + 580093},
		"Flixter": {147612, 48794, 318353 + 318671},
		"Netflix": {480189, 17770, 4556347 + 4558506},
	}
	for _, p := range Table1Profiles {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		if p.Users != w[0] || p.Items != w[1] || p.Pairs != w[2] {
			t.Errorf("%s = (%d,%d,%d), want %v", p.Name, p.Users, p.Items, p.Pairs, w)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Profile{Name: "bad", Users: 0, Items: 5}, mathx.NewRNG(1)); err == nil {
		t.Error("zero users accepted")
	}
	over := Profile{Name: "over", Users: 3, Items: 3, Pairs: 100, Dim: 2}
	if _, err := Generate(over, mathx.NewRNG(1)); err == nil {
		t.Error("pair budget exceeding matrix size accepted")
	}
}

func TestGenerateRatingsRoundTrip(t *testing.T) {
	w, err := Generate(smallProfile(), mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	ratings := GenerateRatings(w, 0.5, mathx.NewRNG(6))
	d, err := dataset.FromRatings("rt", w.Data.NumUsers(), w.Data.NumItems(), ratings, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPairs() != w.Data.NumPairs() {
		t.Fatalf("threshold recovery: %d pairs, want %d", d.NumPairs(), w.Data.NumPairs())
	}
	w.Data.ForEach(func(u, i int32) {
		if !d.IsPositive(u, i) {
			t.Fatalf("positive (%d,%d) lost in ratings round trip", u, i)
		}
	})
	// There must be some sub-threshold ratings.
	if len(ratings) <= w.Data.NumPairs() {
		t.Error("no sub-threshold ratings generated")
	}
	for _, r := range ratings {
		if r.Score < 1 || r.Score > 5 {
			t.Fatalf("rating %v out of 1..5", r.Score)
		}
	}
}

func TestActivityHeterogeneity(t *testing.T) {
	// User activity must vary (log-normal), not be constant.
	w, err := Generate(smallProfile(), mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, w.Data.NumUsers())
	for u := range counts {
		counts[u] = float64(w.Data.NumPositives(int32(u)))
	}
	if mathx.StdDev(counts) < 1 {
		t.Errorf("user activity stddev = %v, want heterogeneous", mathx.StdDev(counts))
	}
	if math.IsNaN(mathx.Mean(counts)) {
		t.Error("NaN activity")
	}
}

// Package datagen synthesizes implicit-feedback datasets with the
// statistical shape of the paper's six evaluation corpora (Table 1): a
// ground-truth latent-factor preference model, Zipf-distributed item
// popularity, and log-normal user activity, thresholded to one-class
// feedback.
//
// The real MovieLens/Flixter/Netflix logs are not redistributable, but
// CLAPF's experimental claims depend only on properties this generator
// reproduces exactly — matrix sparsity, a long-tailed popularity
// distribution, heterogeneous per-user positive counts, and a low-rank
// signal recoverable by matrix factorization. A generator with a known
// latent ground truth also enables stronger tests: a learner given enough
// data must approach the oracle ranking.
package datagen

import (
	"fmt"
	"math"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/rank"
)

// Profile describes one corpus shape. Users, Items, and Pairs are the
// full-size Table 1 numbers; Generate scales them down uniformly.
type Profile struct {
	Name  string
	Users int
	Items int
	Pairs int // P + Pte: total positive pairs before splitting

	// ZipfExp controls the item-popularity tail (larger = heavier head).
	ZipfExp float64
	// Dim is the rank of the ground-truth preference matrix.
	Dim int
	// Affinity weights the latent signal against popularity when choosing
	// which items a user consumes; 0 makes consumption pure popularity,
	// large values make it pure taste.
	Affinity float64
}

// Table1Profiles reproduces the six corpora of the paper's Table 1 at full
// size: (n, m, P+Pte) and a tail exponent fit to each source's popularity
// skew. Flixter in particular is extremely sparse (0.02%).
var Table1Profiles = []Profile{
	{Name: "ML100K", Users: 943, Items: 1682, Pairs: 55375, ZipfExp: 0.7, Dim: 12, Affinity: 6},
	{Name: "ML1M", Users: 6040, Items: 3952, Pairs: 575281, ZipfExp: 0.7, Dim: 14, Affinity: 6},
	{Name: "UserTag", Users: 3000, Items: 3000, Pairs: 246436, ZipfExp: 0.85, Dim: 10, Affinity: 5},
	{Name: "ML20M", Users: 138493, Items: 26744, Pairs: 1159834, ZipfExp: 0.75, Dim: 16, Affinity: 6},
	{Name: "Flixter", Users: 147612, Items: 48794, Pairs: 637024, ZipfExp: 0.9, Dim: 16, Affinity: 5.5},
	{Name: "Netflix", Users: 480189, Items: 17770, Pairs: 9114853, ZipfExp: 0.75, Dim: 16, Affinity: 6},
}

// ProfileByName returns the named Table 1 profile, matching
// case-insensitively on the canonical names.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Table1Profiles {
		if equalsFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("datagen: unknown profile %q", name)
}

func equalsFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Scaled returns a copy of p with user and item counts multiplied by scale
// and the pair count adjusted to preserve the original density. Dimensions
// are floored at 8 users / 8 items so degenerate scales stay usable.
func (p Profile) Scaled(scale float64) Profile {
	if scale <= 0 || scale >= 1 {
		return p
	}
	q := p
	q.Users = maxInt(8, int(float64(p.Users)*scale))
	q.Items = maxInt(8, int(float64(p.Items)*scale))
	density := float64(p.Pairs) / float64(p.Users) / float64(p.Items)
	q.Pairs = maxInt(q.Users*2, int(density*float64(q.Users)*float64(q.Items)))
	return q
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// World is a generated dataset together with its ground truth, which tests
// and ablations use as an oracle.
type World struct {
	Data *dataset.Dataset
	// TrueUser and TrueItem are the ground-truth factor matrices
	// (Users×Dim and Items×Dim, row-major).
	TrueUser []float64
	TrueItem []float64
	Dim      int
	// Popularity holds the Zipf weight of each item.
	Popularity []float64
}

// TrueScore returns the ground-truth affinity of user u for item i.
func (w *World) TrueScore(u, i int32) float64 {
	d := w.Dim
	return mathx.Dot(w.TrueUser[int(u)*d:int(u)*d+d], w.TrueItem[int(i)*d:int(i)*d+d])
}

// Generate synthesizes a dataset for the profile. The procedure:
//
//  1. Draw ground-truth factors U*, V* ~ N(0, 1/√Dim) and Zipf item
//     popularity w_i ∝ (i+1)^(−ZipfExp) over a random item permutation.
//  2. Give each user an activity budget from a log-normal distribution,
//     normalized so the total matches Pairs; every user gets at least two
//     positives (CLAPF's (i, k) pair needs two observed items).
//  3. For each user, sample that many distinct items by Gumbel-top-k over
//     log w_i + Affinity·(U*_u · V*_i): exact Plackett–Luce sampling
//     without replacement, so consumption blends popularity and taste.
func Generate(p Profile, rng *mathx.RNG) (*World, error) {
	if p.Users <= 0 || p.Items <= 0 {
		return nil, fmt.Errorf("datagen: profile %q has non-positive dimensions", p.Name)
	}
	if p.Pairs < 2*p.Users {
		p.Pairs = 2 * p.Users
	}
	if maxPairs := p.Users * p.Items; p.Pairs > maxPairs {
		return nil, fmt.Errorf("datagen: profile %q wants %d pairs but matrix has only %d cells",
			p.Name, p.Pairs, maxPairs)
	}
	dim := p.Dim
	if dim <= 0 {
		dim = 8
	}

	w := &World{
		TrueUser:   make([]float64, p.Users*dim),
		TrueItem:   make([]float64, p.Items*dim),
		Dim:        dim,
		Popularity: make([]float64, p.Items),
	}
	std := 1 / math.Sqrt(float64(dim))
	for i := range w.TrueUser {
		w.TrueUser[i] = rng.NormFloat64() * std
	}
	for i := range w.TrueItem {
		w.TrueItem[i] = rng.NormFloat64() * std
	}

	// Zipf popularity over a random permutation so popular items are not
	// clustered at low ids.
	perm := rng.Perm(p.Items)
	exp := p.ZipfExp
	if exp <= 0 {
		exp = 1
	}
	for r, it := range perm {
		w.Popularity[it] = math.Pow(float64(r+1), -exp)
	}

	counts := activityBudgets(p, rng)

	b := dataset.NewBuilder(p.Name, p.Users, p.Items)
	logits := make([]float64, p.Items)
	for u := 0; u < p.Users; u++ {
		uf := w.TrueUser[u*dim : u*dim+dim]
		for i := 0; i < p.Items; i++ {
			vf := w.TrueItem[i*dim : i*dim+dim]
			// Gumbel-top-k: adding Gumbel noise to the log-weight and
			// taking the k largest is exact weighted sampling without
			// replacement.
			g := -math.Log(-math.Log(1 - rng.Float64()))
			logits[i] = math.Log(w.Popularity[i]) + p.Affinity*mathx.Dot(uf, vf) + g
		}
		for _, e := range rank.TopK(logits, counts[u], nil) {
			if err := b.Add(int32(u), e.Item); err != nil {
				return nil, err
			}
		}
	}
	w.Data = b.Build()
	return w, nil
}

// activityBudgets assigns each user a positive-item count: log-normal
// draws, clipped to [2, Items], scaled to hit the total pair budget.
func activityBudgets(p Profile, rng *mathx.RNG) []int {
	raw := make([]float64, p.Users)
	var sum float64
	for u := range raw {
		raw[u] = math.Exp(rng.NormFloat64() * 0.9)
		sum += raw[u]
	}
	scale := float64(p.Pairs) / sum
	counts := make([]int, p.Users)
	for u := range counts {
		c := int(raw[u] * scale)
		if c < 2 {
			c = 2
		}
		if c > p.Items {
			c = p.Items
		}
		counts[u] = c
	}
	return counts
}

// GenerateRatings converts a generated world into explicit 1–5 star
// ratings: every positive pair gets a score in {4, 5}, and extra
// sub-threshold ratings in {1, 2, 3} are added at the given multiple of the
// positive count. Feeding the result through dataset.FromRatings with
// threshold 3 recovers exactly the positive pairs — this exercises the
// paper's preprocessing path end-to-end.
func GenerateRatings(w *World, subThresholdFrac float64, rng *mathx.RNG) []dataset.Rating {
	var ratings []dataset.Rating
	w.Data.ForEach(func(u, i int32) {
		score := 4.0
		if rng.Float64() < 0.5 {
			score = 5
		}
		ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: score})
	})
	extra := int(float64(len(ratings)) * subThresholdFrac)
	nu, ni := w.Data.NumUsers(), w.Data.NumItems()
	for n := 0; n < extra; n++ {
		u := int32(rng.Intn(nu))
		i := int32(rng.Intn(ni))
		if w.Data.IsPositive(u, i) {
			continue // keep sub-threshold ratings off the positive pairs
		}
		ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: float64(1 + rng.Intn(3))})
	}
	return ratings
}

// Package score is the shared dense scoring engine behind every serve and
// evaluation surface in the repository. All of them bottleneck on the same
// kernel — for a user u, score every item:
//
//	scores = U_u · Vᵀ + b
//
// costing O(m·d) per user. Scoring users one at a time streams the whole
// item-factor matrix V through the cache hierarchy once per user; scoring a
// batch with the item loop *outside* the user loop keeps each block of V
// hot across the entire batch, so V is effectively read once per batch
// block instead of once per user. Engine packages that blocked kernel plus
// a worker pool for large batches, and is reused by the HTTP serve path
// (/recommend and /recommend/batch), the evaluation protocol, and
// clapf-bench.
//
// Every method computes bit-identical values to mf.Model.ScoreAll — the
// per-item dot products are the same operations in the same order — so
// swapping the engine into a ranking path can never change a result, only
// its cost.
package score

import (
	"fmt"
	"runtime"
	"sync"

	"clapf/internal/mf"
)

// blockBytes is the target footprint of one item-factor block. 32 KiB
// keeps a block resident in L1d on anything modern while leaving room for
// the batch's user factors and output rows.
const blockBytes = 32 << 10

// minBlockItems bounds the block size from below so tiny dimensionalities
// don't degenerate into per-item loop overhead.
const minBlockItems = 16

// Engine scores users against one immutable parameter set — a float64
// mf.Model or a float32 mf.Factors32; the blocked kernel is generic over
// mf.Params. It is stateless beyond its configuration, safe for concurrent
// use, and cheap to construct — the serve path builds a fresh Engine on
// every model swap.
type Engine struct {
	m       mf.Params
	block   int // items per blocked-kernel tile
	workers int // max goroutines for ScoreUsersParallel
}

// Option configures an Engine.
type Option func(*Engine)

// WithBlockItems overrides the tile size of the blocked kernel (mainly for
// tests that want to force block-boundary coverage). n < 1 keeps the
// default.
func WithBlockItems(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.block = n
		}
	}
}

// WithWorkers bounds the goroutines ScoreUsersParallel may use. n < 1
// keeps the default of GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// NewEngine builds an engine over any parameter set. The default block
// size targets blockBytes of item factors per tile — sized by the
// representation's element width, so a float32 model fits twice the items
// per tile; the default worker cap is GOMAXPROCS.
func NewEngine(m mf.Params, opts ...Option) *Engine {
	e := &Engine{
		m:       m,
		block:   blockBytes / (m.ElemBytes() * m.Dim()),
		workers: runtime.GOMAXPROCS(0),
	}
	if e.block < minBlockItems {
		e.block = minBlockItems
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Params returns the wrapped parameter set.
func (e *Engine) Params() mf.Params { return e.m }

// ScoreAll fills out with every item's score for user u — the single-user
// path, satisfying eval.Scorer. Identical to the parameter set's ScoreAll.
func (e *Engine) ScoreAll(u int32, out []float64) { e.m.ScoreAll(u, out) }

// ScoreUsers fills out[i] with the full score row for users[i] using the
// sequential blocked kernel: the item dimension is tiled so each tile of V
// stays cache-resident across the whole batch. len(out) must be at least
// len(users) and every row must have length NumItems.
func (e *Engine) ScoreUsers(users []int32, out [][]float64) {
	if len(out) < len(users) {
		panic(fmt.Sprintf("score: %d output rows for %d users", len(out), len(users)))
	}
	m := e.m.NumItems()
	for lo := 0; lo < m; lo += e.block {
		hi := lo + e.block
		if hi > m {
			hi = m
		}
		for ui, u := range users {
			e.m.ScoreRange(u, lo, hi, out[ui])
		}
	}
}

// ScoreUsersParallel shards the batch across up to WithWorkers goroutines,
// each running the blocked kernel over its contiguous share. Row i of out
// always corresponds to users[i], so results are identical to ScoreUsers
// for any worker count.
func (e *Engine) ScoreUsersParallel(users []int32, out [][]float64) {
	if len(out) < len(users) {
		panic(fmt.Sprintf("score: %d output rows for %d users", len(out), len(users)))
	}
	workers := e.workers
	if workers > len(users) {
		workers = len(users)
	}
	if workers <= 1 {
		e.ScoreUsers(users, out)
		return
	}
	var wg sync.WaitGroup
	chunk := (len(users) + workers - 1) / workers
	for start := 0; start < len(users); start += chunk {
		end := start + chunk
		if end > len(users) {
			end = len(users)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e.ScoreUsers(users[lo:hi], out[lo:hi])
		}(start, end)
	}
	wg.Wait()
}

// NewScoreRows allocates a batch output buffer: rows score rows of
// NumItems(model) columns each, backed by one contiguous allocation.
func NewScoreRows(rows, numItems int) [][]float64 {
	flat := make([]float64, rows*numItems)
	out := make([][]float64, rows)
	for i := range out {
		out[i] = flat[i*numItems : (i+1)*numItems : (i+1)*numItems]
	}
	return out
}

package score

import (
	"math"
	"testing"

	"clapf/internal/mathx"
	"clapf/internal/mf"
)

func testModel(t *testing.T, users, items, dim int) *mf.Model {
	t.Helper()
	m := mf.MustNew(mf.Config{NumUsers: users, NumItems: items, Dim: dim, UseBias: true, InitStd: 0.1})
	m.InitGaussian(mathx.NewRNG(7), 0.1)
	// Biases are zero after init; give them structure so a dropped bias
	// term would show up in the comparisons below.
	for i := 0; i < items; i++ {
		m.AddBias(int32(i), 0.01*float64(i%13))
	}
	return m
}

// The blocked batch kernel must be bit-identical to per-user ScoreAll for
// every user, including when the item count is not a block multiple.
func TestScoreUsersMatchesScoreAll(t *testing.T) {
	for _, tc := range []struct {
		name  string
		items int
		block int
	}{
		{"default-block", 97, 0},
		{"tiny-block-ragged-edge", 101, 7},
		{"block-equals-items", 64, 64},
		{"block-larger-than-items", 33, 1024},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := testModel(t, 23, tc.items, 6)
			var opts []Option
			if tc.block > 0 {
				opts = append(opts, WithBlockItems(tc.block))
			}
			e := NewEngine(m, opts...)

			users := make([]int32, m.NumUsers())
			for i := range users {
				users[i] = int32(i)
			}
			got := NewScoreRows(len(users), tc.items)
			e.ScoreUsers(users, got)

			want := make([]float64, tc.items)
			for _, u := range users {
				m.ScoreAll(u, want)
				for i, w := range want {
					if got[u][i] != w {
						t.Fatalf("user %d item %d: batch %v != ScoreAll %v", u, i, got[u][i], w)
					}
				}
			}
		})
	}
}

func TestScoreUsersParallelMatchesSequential(t *testing.T) {
	m := testModel(t, 50, 83, 5)
	users := []int32{3, 1, 4, 1, 5, 9, 2, 6, 49, 0, 11, 17}
	seq := NewScoreRows(len(users), m.NumItems())
	NewEngine(m, WithWorkers(1)).ScoreUsers(users, seq)
	for _, workers := range []int{2, 3, 8, 64} {
		par := NewScoreRows(len(users), m.NumItems())
		NewEngine(m, WithWorkers(workers)).ScoreUsersParallel(users, par)
		for r := range users {
			for i := range par[r] {
				if par[r][i] != seq[r][i] {
					t.Fatalf("workers=%d row %d item %d: %v != %v",
						workers, r, i, par[r][i], seq[r][i])
				}
			}
		}
	}
}

func TestScoreAllDelegates(t *testing.T) {
	m := testModel(t, 4, 31, 3)
	e := NewEngine(m)
	got := make([]float64, m.NumItems())
	want := make([]float64, m.NumItems())
	e.ScoreAll(2, got)
	m.ScoreAll(2, want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: %v != %v", i, got[i], want[i])
		}
	}
}

// Non-finite factors must flow through unchanged (the serve path decides
// what to do with them); the kernel itself must not mask or reorder them.
func TestScoreUsersPropagatesNonFinite(t *testing.T) {
	m := testModel(t, 3, 20, 4)
	m.ItemFactors(5)[0] = math.NaN()
	m.ItemFactors(9)[2] = math.Inf(1)
	e := NewEngine(m, WithBlockItems(8))
	out := NewScoreRows(1, m.NumItems())
	e.ScoreUsers([]int32{1}, out)
	if !math.IsNaN(out[0][5]) {
		t.Errorf("item 5 score = %v, want NaN", out[0][5])
	}
	if !math.IsInf(out[0][9], 0) && !math.IsNaN(out[0][9]) {
		t.Errorf("item 9 score = %v, want non-finite", out[0][9])
	}
}

func TestNewScoreRowsShape(t *testing.T) {
	rows := NewScoreRows(3, 7)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if len(r) != 7 || cap(r) != 7 {
			t.Fatalf("row %d: len %d cap %d, want 7/7", i, len(r), cap(r))
		}
	}
	rows[0][6] = 1
	rows[1][0] = 2 // adjacent rows must not alias
	if rows[0][6] != 1 {
		t.Error("rows alias each other")
	}
}

func BenchmarkScoreSingleUserLoop(b *testing.B) {
	m := benchModel(b)
	out := make([]float64, m.NumItems())
	users := benchUsers(m, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range users {
			m.ScoreAll(u, out)
		}
	}
}

func BenchmarkScoreUsersBlocked(b *testing.B) {
	m := benchModel(b)
	users := benchUsers(m, 64)
	out := NewScoreRows(len(users), m.NumItems())
	e := NewEngine(m, WithWorkers(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScoreUsers(users, out)
	}
}

func benchModel(b *testing.B) *mf.Model {
	b.Helper()
	m := mf.MustNew(mf.Config{NumUsers: 512, NumItems: 4096, Dim: 20, UseBias: true, InitStd: 0.1})
	m.InitGaussian(mathx.NewRNG(1), 0.1)
	return m
}

func benchUsers(m *mf.Model, n int) []int32 {
	users := make([]int32, n)
	for i := range users {
		users[i] = int32(i % m.NumUsers())
	}
	return users
}

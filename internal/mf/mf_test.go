package mf

import (
	"math"
	"testing"

	"clapf/internal/mathx"
)

func testConfig() Config {
	return Config{NumUsers: 4, NumItems: 6, Dim: 3, UseBias: true, InitStd: 0.1}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero users", func(c *Config) { c.NumUsers = 0 }},
		{"negative items", func(c *Config) { c.NumItems = -1 }},
		{"zero dim", func(c *Config) { c.Dim = 0 }},
		{"negative std", func(c *Config) { c.InitStd = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := testConfig()
			c.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := New(testConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestScoreDefinition(t *testing.T) {
	m := MustNew(testConfig())
	copy(m.UserFactors(1), []float64{1, 2, 3})
	copy(m.ItemFactors(2), []float64{4, 5, 6})
	m.AddBias(2, 0.5)
	want := 1.0*4 + 2*5 + 3*6 + 0.5
	if got := m.Score(1, 2); got != want {
		t.Errorf("Score = %v, want %v", got, want)
	}
}

func TestScoreNoBias(t *testing.T) {
	cfg := testConfig()
	cfg.UseBias = false
	m := MustNew(cfg)
	copy(m.UserFactors(0), []float64{1, 1, 1})
	copy(m.ItemFactors(0), []float64{2, 2, 2})
	m.AddBias(0, 99) // must be a no-op
	if got := m.Score(0, 0); got != 6 {
		t.Errorf("Score = %v, want 6", got)
	}
	if m.Bias(0) != 0 {
		t.Error("bias-free model reports nonzero bias")
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	m := MustNew(testConfig())
	m.InitGaussian(mathx.NewRNG(1), 0.5)
	out := make([]float64, m.NumItems())
	for u := int32(0); u < int32(m.NumUsers()); u++ {
		m.ScoreAll(u, out)
		for i := int32(0); i < int32(m.NumItems()); i++ {
			if got, want := out[i], m.Score(u, i); got != want {
				t.Fatalf("ScoreAll[%d][%d] = %v, Score = %v", u, i, got, want)
			}
		}
	}
}

func TestScoreAllBufferSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short buffer did not panic")
		}
	}()
	m := MustNew(testConfig())
	m.ScoreAll(0, make([]float64, 2))
}

func TestInitGaussianStats(t *testing.T) {
	cfg := Config{NumUsers: 100, NumItems: 100, Dim: 50, UseBias: true}
	m := MustNew(cfg)
	m.InitGaussian(mathx.NewRNG(7), 0.1)
	u, v, b := m.RawParams()
	var o mathx.OnlineStats
	for _, x := range u {
		o.Add(x)
	}
	for _, x := range v {
		o.Add(x)
	}
	if math.Abs(o.Mean()) > 0.005 {
		t.Errorf("init mean = %v, want ≈ 0", o.Mean())
	}
	if math.Abs(o.StdDev()-0.1) > 0.005 {
		t.Errorf("init stddev = %v, want ≈ 0.1", o.StdDev())
	}
	for _, x := range b {
		if x != 0 {
			t.Fatal("bias not initialized to zero")
		}
	}
}

func TestFactorColumnAndUserFactor(t *testing.T) {
	m := MustNew(testConfig())
	m.InitGaussian(mathx.NewRNG(3), 1)
	col := make([]float64, m.NumItems())
	for q := 0; q < m.Dim(); q++ {
		m.FactorColumn(q, col)
		for i := int32(0); i < int32(m.NumItems()); i++ {
			if col[i] != m.ItemFactors(i)[q] {
				t.Fatalf("FactorColumn(%d)[%d] mismatch", q, i)
			}
		}
	}
	if m.UserFactor(2, 1) != m.UserFactors(2)[1] {
		t.Error("UserFactor accessor mismatch")
	}
}

func TestCloneDetached(t *testing.T) {
	m := MustNew(testConfig())
	m.InitGaussian(mathx.NewRNG(5), 0.2)
	c := m.Clone()
	before := c.Score(0, 0)
	m.UserFactors(0)[0] += 100
	m.AddBias(0, 100)
	if got := c.Score(0, 0); got != before {
		t.Error("Clone shares storage with original")
	}
}

func TestFromRawRoundTrip(t *testing.T) {
	m := MustNew(testConfig())
	m.InitGaussian(mathx.NewRNG(9), 0.3)
	u, v, b := m.RawParams()
	m2, err := FromRaw(m.Config(), mathx.CopyVec(u), mathx.CopyVec(v), mathx.CopyVec(b))
	if err != nil {
		t.Fatal(err)
	}
	for ui := int32(0); ui < int32(m.NumUsers()); ui++ {
		for it := int32(0); it < int32(m.NumItems()); it++ {
			if m.Score(ui, it) != m2.Score(ui, it) {
				t.Fatalf("score mismatch after FromRaw at (%d,%d)", ui, it)
			}
		}
	}
}

func TestFromRawValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := FromRaw(cfg, make([]float64, 1), make([]float64, cfg.NumItems*cfg.Dim), make([]float64, cfg.NumItems)); err == nil {
		t.Error("short user params accepted")
	}
	if _, err := FromRaw(cfg, make([]float64, cfg.NumUsers*cfg.Dim), make([]float64, 1), make([]float64, cfg.NumItems)); err == nil {
		t.Error("short item params accepted")
	}
	if _, err := FromRaw(cfg, make([]float64, cfg.NumUsers*cfg.Dim), make([]float64, cfg.NumItems*cfg.Dim), nil); err == nil {
		t.Error("missing bias accepted for bias model")
	}
	cfg.UseBias = false
	if _, err := FromRaw(cfg, make([]float64, cfg.NumUsers*cfg.Dim), make([]float64, cfg.NumItems*cfg.Dim), make([]float64, cfg.NumItems)); err == nil {
		t.Error("unexpected bias accepted for bias-free model")
	}
}

func TestL2Norms(t *testing.T) {
	m := MustNew(Config{NumUsers: 1, NumItems: 1, Dim: 2, UseBias: true})
	copy(m.UserFactors(0), []float64{3, 4})
	copy(m.ItemFactors(0), []float64{1, 2})
	m.AddBias(0, 2)
	u2, v2, b2 := m.L2Norms()
	if u2 != 25 || v2 != 5 || b2 != 4 {
		t.Errorf("L2Norms = (%v,%v,%v), want (25,5,4)", u2, v2, b2)
	}
}

func TestCountNonFinite(t *testing.T) {
	m := MustNew(testConfig())
	m.InitGaussian(mathx.NewRNG(3), 0.1)
	if u, v, b := m.CountNonFinite(); u+v+b != 0 {
		t.Fatalf("fresh model reports (%d, %d, %d) non-finite entries, want none", u, v, b)
	}
	m.UserFactors(1)[0] = math.NaN()
	m.UserFactors(2)[2] = math.Inf(1)
	m.ItemFactors(3)[1] = math.Inf(-1)
	m.b[5] = math.NaN()
	u, v, b := m.CountNonFinite()
	if u != 2 || v != 1 || b != 1 {
		t.Fatalf("CountNonFinite = (%d, %d, %d), want (2, 1, 1)", u, v, b)
	}

	noBias := MustNew(Config{NumUsers: 2, NumItems: 2, Dim: 2, InitStd: 0.1})
	if u, v, b := noBias.CountNonFinite(); u+v+b != 0 {
		t.Fatalf("bias-free model reports (%d, %d, %d) non-finite entries, want none", u, v, b)
	}
}

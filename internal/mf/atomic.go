package mf

import "clapf/internal/mathx"

// Atomic parameter access for Hogwild-style parallel SGD (see
// core.ParallelTrainer). Item factors and biases are the only parameters
// shared between training workers — users are sharded, so user rows stay
// single-writer — and workers touch them exclusively through these
// element-wise atomic accessors. That makes the unavoidable collisions of
// lock-free SGD well-defined (last writer wins per element, no torn
// values) and race-detector clean, at the cost of an ordinary load/store
// on mainstream hardware.

// LoadItemFactors copies V_i into dst (length Dim) using atomic loads.
func (m *Model) LoadItemFactors(i int32, dst []float64) {
	row := m.ItemFactors(i)
	for q := range row {
		dst[q] = mathx.AtomicLoadFloat64(&row[q])
	}
}

// StoreItemFactors publishes src (length Dim) into V_i element-wise with
// atomic stores.
func (m *Model) StoreItemFactors(i int32, src []float64) {
	row := m.ItemFactors(i)
	for q := range row {
		mathx.AtomicStoreFloat64(&row[q], src[q])
	}
}

// LoadBias atomically reads b_i, or 0 when the model has no bias term.
func (m *Model) LoadBias(i int32) float64 {
	if m.b == nil {
		return 0
	}
	return mathx.AtomicLoadFloat64(&m.b[i])
}

// StoreBias atomically writes b_i; a no-op for bias-free models so update
// rules need not branch.
func (m *Model) StoreBias(i int32, v float64) {
	if m.b != nil {
		mathx.AtomicStoreFloat64(&m.b[i], v)
	}
}

package mf

import (
	"fmt"
	"math"

	"clapf/internal/linalg"
	"clapf/internal/mathx"
	"clapf/internal/rank"
)

// FoldInUser computes factors for a user not present at training time — the
// cold-start serving path. Given the items the new user has interacted
// with, it solves the ridge least-squares problem
//
//	min_u  Σ_{i∈items} (1 − b_i − u·V_i)² + reg·‖u‖²
//
// over the *frozen* item factors, which is exactly one user half-step of
// WMF's alternating least squares. The returned vector can be scored
// against the model with ScoreFoldIn.
//
// Duplicate item ids in the history are collapsed before the solve: an
// implicit-feedback history carries at most one observation per item, and
// a repeated id would otherwise contribute its rank-one update twice —
// silently double-weighting that item in the normal equations. Every
// caller gets the deduped semantics, not just ones that sanitize their
// input first.
//
// It accepts any Params implementation; float32 item rows widen exactly to
// float64, so folding in against a quantized model solves the same normal
// equations as against its widened copy, bit for bit.
func FoldInUser(m Params, items []int32, reg float64) ([]float64, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("mf: fold-in needs at least one interaction")
	}
	if reg <= 0 {
		return nil, fmt.Errorf("mf: fold-in reg = %v, want > 0", reg)
	}
	d := m.Dim()
	a := linalg.NewMatrix(d)
	b := make([]float64, d)
	seen := make(map[int32]bool, len(items))
	var vbuf []float64
	for _, it := range items {
		if it < 0 || int(it) >= m.NumItems() {
			return nil, fmt.Errorf("mf: fold-in item %d out of range [0,%d)", it, m.NumItems())
		}
		if seen[it] {
			continue
		}
		seen[it] = true
		vf := m.ItemVector(it, vbuf)
		vbuf = vf
		a.SymRankOne(1, vf)
		mathx.AXPY(1-m.Bias(it), vf, b)
	}
	a.AddDiagonal(reg)
	return linalg.SolveSPD(a, b)
}

// ScoreFoldIn returns the predicted relevance of item i for a folded-in
// user factor vector.
func (m *Model) ScoreFoldIn(userFactors []float64, i int32) float64 {
	return mathx.Dot(userFactors, m.ItemFactors(i)) + m.Bias(i)
}

// ScoreAllFoldIn fills out with scores for every item under a folded-in
// user vector; out must have length NumItems.
func (m *Model) ScoreAllFoldIn(userFactors []float64, out []float64) {
	if len(out) != m.NumItems() {
		panic(fmt.Sprintf("mf: ScoreAllFoldIn buffer has length %d, want %d", len(out), m.NumItems()))
	}
	for i := int32(0); int(i) < m.NumItems(); i++ {
		out[i] = m.ScoreFoldIn(userFactors, i)
	}
}

// ScoreRangeFoldIn fills out[lo:hi) with exactly the values ScoreAllFoldIn
// computes — same per-item kernel — for blocked folded-in scans.
func (m *Model) ScoreRangeFoldIn(userFactors []float64, lo, hi int, out []float64) {
	if lo < 0 || hi > m.NumItems() || lo > hi {
		panic(fmt.Sprintf("mf: ScoreRangeFoldIn [%d,%d) out of range [0,%d)", lo, hi, m.NumItems()))
	}
	if len(out) != m.NumItems() {
		panic(fmt.Sprintf("mf: ScoreRangeFoldIn buffer has length %d, want %d", len(out), m.NumItems()))
	}
	for i := lo; i < hi; i++ {
		out[i] = m.ScoreFoldIn(userFactors, int32(i))
	}
}

// SimilarItems returns the k items most similar to item i by cosine over
// the learned factors, best first, excluding i itself. Zero-norm items
// (never trained) score −1 and sink to the bottom. Works against any
// Params implementation; float32 rows widen exactly, so the cosine values
// match the widened model's.
func SimilarItems(m Params, i int32, k int) ([]rank.Entry, error) {
	if i < 0 || int(i) >= m.NumItems() {
		return nil, fmt.Errorf("mf: item %d out of range [0,%d)", i, m.NumItems())
	}
	if k <= 0 {
		return nil, fmt.Errorf("mf: k = %d, want > 0", k)
	}
	anchor := m.ItemVector(i, nil)
	anchorNorm := math.Sqrt(mathx.Norm2Sq(anchor))
	scores := make([]float64, m.NumItems())
	var vbuf []float64
	for j := int32(0); int(j) < m.NumItems(); j++ {
		vf := m.ItemVector(j, vbuf)
		vbuf = vf
		norm := math.Sqrt(mathx.Norm2Sq(vf))
		if anchorNorm == 0 || norm == 0 {
			scores[j] = -1
			continue
		}
		scores[j] = mathx.Dot(anchor, vf) / (anchorNorm * norm)
	}
	return rank.TopK(scores, k, func(j int32) bool { return j == i }), nil
}

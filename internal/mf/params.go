package mf

// Params is the read-only scoring surface the serving stack works against.
// Two implementations exist: *Model (the float64 training representation)
// and *Factors32 (the half-width serving representation produced at export
// time). Everything downstream of training — the blocked scoring engine,
// the IVF index builder, fold-in, similar-items, and the HTTP server's
// liveState — is generic over this interface, so a server can page in a
// float32 store without the rest of the stack knowing.
//
// All scores are float64: float32 implementations widen each element and
// accumulate in float64 (see internal/mathx), which keeps rankings
// bit-identical to scoring the widened copy with the float64 kernels.
type Params interface {
	NumUsers() int
	NumItems() int
	Dim() int
	HasBias() bool

	// Bias returns b_i, or 0 when the model has no bias term.
	Bias(i int32) float64

	// ScoreAll fills out[i] with f_ui for every item; out must have
	// length NumItems.
	ScoreAll(u int32, out []float64)

	// ScoreRange fills out[lo:hi] with the same values ScoreAll would,
	// bit for bit, so blocked callers can tile the item scan.
	ScoreRange(u int32, lo, hi int, out []float64)

	// ScoreAllFoldIn scores every item under a folded-in float64 user
	// vector; out must have length NumItems.
	ScoreAllFoldIn(userFactors []float64, out []float64)

	// ScoreRangeFoldIn fills out[lo:hi) with the same values
	// ScoreAllFoldIn would, bit for bit, so blocked callers can tile a
	// folded-in scan the way ScoreRange tiles a stored-user scan. The
	// online-update overlay routes updated users through it.
	ScoreRangeFoldIn(userFactors []float64, lo, hi int, out []float64)

	// UserVector returns U_u as float64, reusing dst when it has
	// capacity. Implementations may return internal storage (the model
	// does); callers must not mutate the result.
	UserVector(u int32, dst []float64) []float64

	// ItemVector returns V_i as float64 under the same contract as
	// UserVector.
	ItemVector(i int32, dst []float64) []float64

	// CountNonFinite reports NaN/±Inf entries in (U, V, b) — the
	// serve-side validation gate.
	CountNonFinite() (u, v, b int)

	// ElemBytes is the storage width of one factor (8 for float64, 4 for
	// float32); the blocked engine sizes its cache tiles with it.
	ElemBytes() int

	// ParamBytes is the total size of the parameter arrays in bytes —
	// the serving-memory footprint the benchmarks report.
	ParamBytes() int64
}

// Compile-time interface checks.
var (
	_ Params = (*Model)(nil)
	_ Params = (*Factors32)(nil)
	_ Params = (*Overlay)(nil)
)

// UserVector returns U_u. The model stores float64 natively, so this is the
// live row; dst is ignored.
func (m *Model) UserVector(u int32, dst []float64) []float64 { return m.UserFactors(u) }

// ItemVector returns V_i, the live float64 row; dst is ignored.
func (m *Model) ItemVector(i int32, dst []float64) []float64 { return m.ItemFactors(i) }

// ElemBytes reports the model's 8-byte float64 storage width.
func (m *Model) ElemBytes() int { return 8 }

// ParamBytes returns the total parameter footprint in bytes.
func (m *Model) ParamBytes() int64 {
	return 8 * int64(len(m.u)+len(m.v)+len(m.b))
}

package mf

import (
	"math"
	"testing"

	"clapf/internal/mathx"
)

func sampleF32Model(t *testing.T, seed uint64, useBias bool) (*Model, *Factors32) {
	t.Helper()
	m := MustNew(Config{NumUsers: 9, NumItems: 13, Dim: 6, UseBias: useBias})
	rng := mathx.NewRNG(seed)
	m.InitGaussian(rng, 0.3)
	if useBias {
		for i := int32(0); i < 13; i++ {
			m.AddBias(i, rng.NormFloat64())
		}
	}
	return m, QuantizeF32(m)
}

// TestF32ScoringConsistency pins the internal bit-consistency contract:
// every float32 scoring entry point — Score, ScoreAll, ScoreRange, and
// fold-in scoring through the widened user row — returns identical bits
// for the same (user, item). This is the invariant that makes single and
// batch serving, and exact and full-probe IVF retrieval, byte-comparable
// over float32 factors.
func TestF32ScoringConsistency(t *testing.T) {
	for _, useBias := range []bool{true, false} {
		_, f := sampleF32Model(t, 21, useBias)
		n := f.NumItems()
		all := make([]float64, n)
		rng := make([]float64, n)
		fold := make([]float64, n)
		for u := int32(0); u < int32(f.NumUsers()); u++ {
			f.ScoreAll(u, all)
			f.ScoreRange(u, 0, n, rng)
			f.ScoreAllFoldIn(f.UserVector(u, nil), fold)
			for i := 0; i < n; i++ {
				s := f.Score(u, int32(i))
				if math.Float64bits(all[i]) != math.Float64bits(s) {
					t.Fatalf("bias=%v u=%d i=%d: ScoreAll %v != Score %v", useBias, u, i, all[i], s)
				}
				if math.Float64bits(rng[i]) != math.Float64bits(s) {
					t.Fatalf("bias=%v u=%d i=%d: ScoreRange %v != Score %v", useBias, u, i, rng[i], s)
				}
				if math.Float64bits(fold[i]) != math.Float64bits(s) {
					t.Fatalf("bias=%v u=%d i=%d: fold-in %v != Score %v", useBias, u, i, fold[i], s)
				}
			}
		}
	}
}

// Sub-range scoring must agree with the full scan on the overlap and
// leave everything outside [lo, hi) untouched.
func TestF32ScoreRangeWindow(t *testing.T) {
	_, f := sampleF32Model(t, 22, true)
	n := f.NumItems()
	full := make([]float64, n)
	f.ScoreAll(3, full)
	part := make([]float64, n)
	for i := range part {
		part[i] = math.Inf(-1)
	}
	f.ScoreRange(3, 4, 9, part)
	for i := 0; i < n; i++ {
		if i >= 4 && i < 9 {
			if part[i] != full[i] {
				t.Errorf("item %d: range %v, full %v", i, part[i], full[i])
			}
		} else if !math.IsInf(part[i], -1) {
			t.Errorf("item %d outside range was written: %v", i, part[i])
		}
	}
}

// Quantization must round each parameter independently to nearest
// float32, and f32 scores must track f64 scores to float32 precision.
func TestQuantizeF32(t *testing.T) {
	m, f := sampleF32Model(t, 23, true)
	u64, v64, b64 := m.RawParams()
	u32, v32, b32 := f.RawParams32()
	check := func(name string, xs []float64, ys []float32) {
		if len(xs) != len(ys) {
			t.Fatalf("%s: %d vs %d params", name, len(xs), len(ys))
		}
		for i := range xs {
			if ys[i] != float32(xs[i]) {
				t.Errorf("%s[%d]: %v quantized to %v", name, i, xs[i], ys[i])
			}
		}
	}
	check("u", u64, u32)
	check("v", v64, v32)
	check("b", b64, b32)
	for u := int32(0); u < int32(m.NumUsers()); u++ {
		for i := int32(0); i < int32(m.NumItems()); i++ {
			a, b := m.Score(u, i), f.Score(u, i)
			if math.Abs(a-b) > 1e-5*(1+math.Abs(a)) {
				t.Errorf("score(%d,%d): f64 %v vs f32 %v", u, i, a, b)
			}
		}
	}
	if f.ParamBytes()*2 != m.ParamBytes() {
		t.Errorf("ParamBytes = %d, want half of %d", f.ParamBytes(), m.ParamBytes())
	}
	if f.ElemBytes() != 4 {
		t.Errorf("ElemBytes = %d", f.ElemBytes())
	}
	if f.Config() != m.Config() {
		t.Errorf("Config round trip: %+v vs %+v", f.Config(), m.Config())
	}
}

func TestFromRaw32Validation(t *testing.T) {
	cfg := Config{NumUsers: 2, NumItems: 3, Dim: 2, UseBias: true}
	u := make([]float32, 4)
	v := make([]float32, 6)
	b := make([]float32, 3)
	if _, err := FromRaw32(cfg, u, v, b); err != nil {
		t.Fatalf("valid shapes rejected: %v", err)
	}
	for name, tc := range map[string]struct{ u, v, b []float32 }{
		"short-u":        {u[:3], v, b},
		"short-v":        {u, v[:5], b},
		"short-b":        {u, v, b[:2]},
		"bias-without-b": {u, v, nil},
	} {
		if _, err := FromRaw32(cfg, tc.u, tc.v, tc.b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	noBias := Config{NumUsers: 2, NumItems: 3, Dim: 2}
	if _, err := FromRaw32(noBias, u, v, b); err == nil {
		t.Error("b supplied with UseBias=false: accepted")
	}
}

// Out-of-float32-range parameters become ±Inf at quantization and must be
// counted, not served.
func TestF32CountNonFinite(t *testing.T) {
	m, _ := sampleF32Model(t, 24, true)
	u64, v64, _ := m.RawParams()
	u64[1] = math.MaxFloat64 // overflows float32 to +Inf
	v64[2] = math.NaN()
	f := QuantizeF32(m)
	cu, cv, cb := f.CountNonFinite()
	if cu != 1 || cv != 1 || cb != 0 {
		t.Errorf("CountNonFinite = (%d, %d, %d), want (1, 1, 0)", cu, cv, cb)
	}
}

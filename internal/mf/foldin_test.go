package mf

import (
	"math"
	"testing"

	"clapf/internal/linalg"
	"clapf/internal/mathx"
)

// trainedLikeModel builds a model whose item factors form two clusters so
// fold-in and similarity have signal to find.
func trainedLikeModel(t *testing.T) *Model {
	t.Helper()
	m := MustNew(Config{NumUsers: 4, NumItems: 20, Dim: 4, UseBias: true})
	rng := mathx.NewRNG(71)
	for i := int32(0); i < 20; i++ {
		f := m.ItemFactors(i)
		base := []float64{1, 0, 0.2, 0}
		if i >= 10 {
			base = []float64{0, 1, 0, 0.2}
		}
		for q := range f {
			f[q] = base[q] + 0.05*rng.NormFloat64()
		}
	}
	return m
}

func TestFoldInRecoversCluster(t *testing.T) {
	m := trainedLikeModel(t)
	// A new user who consumed items from the first cluster must score
	// first-cluster items higher.
	uf, err := FoldInUser(m, []int32{0, 1, 2, 3}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(uf) != m.Dim() {
		t.Fatalf("fold-in vector has length %d", len(uf))
	}
	var inCluster, outCluster mathx.OnlineStats
	for i := int32(4); i < 10; i++ {
		inCluster.Add(m.ScoreFoldIn(uf, i))
	}
	for i := int32(10); i < 20; i++ {
		outCluster.Add(m.ScoreFoldIn(uf, i))
	}
	if inCluster.Mean() <= outCluster.Mean() {
		t.Errorf("fold-in user scores own cluster %.3f <= other cluster %.3f",
			inCluster.Mean(), outCluster.Mean())
	}
}

func TestFoldInFitsObservations(t *testing.T) {
	// With small reg, the folded-in user should score observed items near
	// the target 1 − b_i.
	m := trainedLikeModel(t)
	items := []int32{0, 5, 9}
	uf, err := FoldInUser(m, items, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if s := m.ScoreFoldIn(uf, it); math.Abs(s-1) > 0.5 {
			t.Errorf("observed item %d scores %.3f, want ≈ 1", it, s)
		}
	}
}

// A history with duplicated ids must solve the same normal equations as
// its deduped form: a repeated id may not double its rank-one update. The
// round-trip is exact (identical accumulation order), so compare bitwise.
func TestFoldInDedupesHistory(t *testing.T) {
	m := trainedLikeModel(t)
	unique := []int32{0, 5, 9}
	withDups := []int32{0, 5, 0, 9, 5, 5, 0}
	want, err := FoldInUser(m, unique, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FoldInUser(m, withDups, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for q := range want {
		if got[q] != want[q] {
			t.Fatalf("factor %d: dup history solves to %v, unique to %v", q, got[q], want[q])
		}
	}
	// The equality is not vacuous: actually double-weighting an item (two
	// distinct rank-one updates of the same factors, as the old code did
	// for a repeated id) moves the solution.
	a := linalg.NewMatrix(m.Dim())
	b := make([]float64, m.Dim())
	for _, it := range []int32{0, 0, 5, 9} { // item 0 weighted twice
		vf := m.ItemFactors(it)
		a.SymRankOne(1, vf)
		mathx.AXPY(1-m.Bias(it), vf, b)
	}
	a.AddDiagonal(0.1)
	doubled, err := linalg.SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for q := range want {
		if doubled[q] != want[q] {
			same = false
		}
	}
	if same {
		t.Fatal("sanity: double-weighting an item did not move the solve; the dedupe test proves nothing")
	}
}

func TestFoldInErrors(t *testing.T) {
	m := trainedLikeModel(t)
	if _, err := FoldInUser(m, nil, 0.1); err == nil {
		t.Error("empty history accepted")
	}
	if _, err := FoldInUser(m, []int32{0}, 0); err == nil {
		t.Error("zero reg accepted")
	}
	if _, err := FoldInUser(m, []int32{99}, 0.1); err == nil {
		t.Error("out-of-range item accepted")
	}
}

func TestScoreAllFoldInMatches(t *testing.T) {
	m := trainedLikeModel(t)
	uf, err := FoldInUser(m, []int32{11, 12}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, m.NumItems())
	m.ScoreAllFoldIn(uf, out)
	for i := int32(0); int(i) < m.NumItems(); i++ {
		if out[i] != m.ScoreFoldIn(uf, i) {
			t.Fatalf("ScoreAllFoldIn[%d] mismatch", i)
		}
	}
}

func TestSimilarItemsFindsCluster(t *testing.T) {
	m := trainedLikeModel(t)
	sims, err := SimilarItems(m, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sims) != 5 {
		t.Fatalf("got %d similar items", len(sims))
	}
	for _, e := range sims {
		if e.Item == 0 {
			t.Error("anchor item returned as its own neighbor")
		}
		if e.Item >= 10 {
			t.Errorf("cross-cluster item %d among top neighbors", e.Item)
		}
		if e.Score < 0.8 {
			t.Errorf("in-cluster cosine %.3f suspiciously low", e.Score)
		}
	}
}

func TestSimilarItemsZeroNormSinks(t *testing.T) {
	m := MustNew(Config{NumUsers: 1, NumItems: 3, Dim: 2})
	copy(m.ItemFactors(0), []float64{1, 0})
	copy(m.ItemFactors(1), []float64{1, 0.1})
	// Item 2 stays all-zero.
	sims, err := SimilarItems(m, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sims[0].Item != 1 {
		t.Errorf("nearest = %d, want 1", sims[0].Item)
	}
	if sims[1].Item != 2 || sims[1].Score != -1 {
		t.Errorf("zero-norm item should sink with score -1, got %+v", sims[1])
	}
}

func TestSimilarItemsErrors(t *testing.T) {
	m := trainedLikeModel(t)
	if _, err := SimilarItems(m, -1, 3); err == nil {
		t.Error("negative item accepted")
	}
	if _, err := SimilarItems(m, 0, 0); err == nil {
		t.Error("k = 0 accepted")
	}
}

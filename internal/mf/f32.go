package mf

import (
	"fmt"
	"math"

	"clapf/internal/mathx"
)

// Factors32 is the read-only float32 serving representation of a factor
// model: same layout as Model (flat row-major U and V, per-item bias), half
// the bytes. It is produced at export time by QuantizeF32 or paged in from
// a v3 store file (internal/store.LoadMapped), never trained against.
//
// Every scoring method widens elements to float64 and accumulates in
// float64, so quantization error enters once, at export, not per query.
// The kernels are mathx.DotF32/DotF64F32, whose four-way accumulation
// differs from Model's serial mathx.Dot order — float32 scores match
// float64 scores statistically (the parity gate in clapf-bench), not
// bit-wise. Within the float32 representation everything is exact: the
// two kernels are bit-identical to each other on widened inputs, so dense
// scans, blocked batch sweeps, fold-in, and IVF probes all agree to the
// last bit.
type Factors32 struct {
	numUsers int
	numItems int
	dim      int
	useBias  bool

	u []float32 // numUsers × dim, row-major
	v []float32 // numItems × dim, row-major
	b []float32 // numItems (nil when bias disabled)

	// retain pins backing storage that is not GC-managed — for an
	// mmap-backed Factors32 the store package parks the mapping handle
	// here so the pages outlive every reader (see store.MappedModel).
	retain any
}

// QuantizeF32 rounds a trained model to float32 serving factors. Rounding
// is round-to-nearest-even (Go's float64→float32 conversion); values
// outside float32 range become ±Inf and will be caught by CountNonFinite
// at swap time rather than silently serving garbage.
func QuantizeF32(m *Model) *Factors32 {
	f := &Factors32{
		numUsers: m.numUsers,
		numItems: m.numItems,
		dim:      m.dim,
		useBias:  m.useBias,
		u:        make([]float32, len(m.u)),
		v:        make([]float32, len(m.v)),
	}
	for i, x := range m.u {
		f.u[i] = float32(x)
	}
	for i, x := range m.v {
		f.v[i] = float32(x)
	}
	if m.b != nil {
		f.b = make([]float32, len(m.b))
		for i, x := range m.b {
			f.b[i] = float32(x)
		}
	}
	return f
}

// FromRaw32 wraps existing float32 parameter slices (a decoded or mapped
// store section) without copying, validating lengths against the
// configuration. The caller must not mutate the slices afterwards.
func FromRaw32(cfg Config, u, v, b []float32) (*Factors32, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(u) != cfg.NumUsers*cfg.Dim {
		return nil, fmt.Errorf("mf: f32 user params have length %d, want %d", len(u), cfg.NumUsers*cfg.Dim)
	}
	if len(v) != cfg.NumItems*cfg.Dim {
		return nil, fmt.Errorf("mf: f32 item params have length %d, want %d", len(v), cfg.NumItems*cfg.Dim)
	}
	f := &Factors32{
		numUsers: cfg.NumUsers,
		numItems: cfg.NumItems,
		dim:      cfg.Dim,
		useBias:  cfg.UseBias,
		u:        u,
		v:        v,
	}
	if cfg.UseBias {
		if len(b) != cfg.NumItems {
			return nil, fmt.Errorf("mf: f32 bias params have length %d, want %d", len(b), cfg.NumItems)
		}
		f.b = b
	} else if len(b) != 0 {
		return nil, fmt.Errorf("mf: f32 bias params present on bias-free model")
	}
	return f, nil
}

// Retain pins x for the lifetime of f. The store package uses it to keep an
// mmap handle alive as long as any reader can still reach the mapped pages
// through f's slices (which the GC does not trace into the mapping).
func (f *Factors32) Retain(x any) { f.retain = x }

// NumUsers returns n.
func (f *Factors32) NumUsers() int { return f.numUsers }

// NumItems returns the item count.
func (f *Factors32) NumItems() int { return f.numItems }

// Dim returns the latent dimensionality d.
func (f *Factors32) Dim() int { return f.dim }

// HasBias reports whether per-item biases are present.
func (f *Factors32) HasBias() bool { return f.useBias }

// ElemBytes reports the 4-byte float32 storage width.
func (f *Factors32) ElemBytes() int { return 4 }

// ParamBytes returns the total parameter footprint in bytes — half of the
// equivalent Model's.
func (f *Factors32) ParamBytes() int64 {
	return 4 * int64(len(f.u)+len(f.v)+len(f.b))
}

// Config reconstructs the Config describing this parameter set.
func (f *Factors32) Config() Config {
	return Config{
		NumUsers: f.numUsers,
		NumItems: f.numItems,
		Dim:      f.dim,
		UseBias:  f.useBias,
	}
}

// RawParams32 exposes the flat float32 slices for serialization. Callers
// outside internal/store should use the accessor methods instead.
func (f *Factors32) RawParams32() (u, v, b []float32) { return f.u, f.v, f.b }

// Bias returns b_i, or 0 when biases are disabled.
func (f *Factors32) Bias(i int32) float64 {
	if f.b == nil {
		return 0
	}
	return float64(f.b[i])
}

func (f *Factors32) userRow(u int32) []float32 {
	off := int(u) * f.dim
	return f.u[off : off+f.dim : off+f.dim]
}

func (f *Factors32) itemRow(i int32) []float32 {
	off := int(i) * f.dim
	return f.v[off : off+f.dim : off+f.dim]
}

// Score returns f_ui = U_u · V_i + b_i, accumulated in float64.
func (f *Factors32) Score(u, i int32) float64 {
	return mathx.DotF32(f.userRow(u), f.itemRow(i)) + f.Bias(i)
}

// ScoreAll fills out[i] with f_ui for every item; out must have length
// NumItems. Mirrors Model.ScoreAll with half the memory traffic.
func (f *Factors32) ScoreAll(u int32, out []float64) {
	f.ScoreRange(u, 0, f.numItems, out)
}

// ScoreRange fills out[lo:hi) with exactly the values ScoreAll computes —
// same kernel, same accumulation order — for the blocked engine's tiles.
//
// The sweep widens the (tiny) user row to float64 up front and scans the
// item rows with the mixed-precision DotF64F32 kernel: one convert per
// element instead of DotF32's two, which on scalar cores is the difference
// between a float32 scan that beats the float64 one and a float32 scan
// that loses to it. The results are bit-identical to a DotF32 sweep —
// widening is exact and the two kernels share one accumulator structure —
// so every float32 path still agrees to the last bit.
func (f *Factors32) ScoreRange(u int32, lo, hi int, out []float64) {
	if lo < 0 || hi > f.numItems || lo > hi {
		panic(fmt.Sprintf("mf: ScoreRange [%d,%d) out of range [0,%d)", lo, hi, f.numItems))
	}
	if len(out) != f.numItems {
		panic(fmt.Sprintf("mf: ScoreRange buffer has length %d, want %d", len(out), f.numItems))
	}
	var ufbuf [64]float64
	var uf []float64
	if f.dim <= len(ufbuf) {
		uf = mathx.WidenF32(f.userRow(u), ufbuf[:0:f.dim])
	} else {
		uf = mathx.WidenF32(f.userRow(u), nil)
	}
	for i := lo; i < hi; i++ {
		off := i * f.dim
		s := mathx.DotF64F32(uf, f.v[off:off+f.dim])
		if f.b != nil {
			s += float64(f.b[i])
		}
		out[i] = s
	}
}

// ScoreAllFoldIn scores every item under a folded-in float64 user vector.
func (f *Factors32) ScoreAllFoldIn(userFactors []float64, out []float64) {
	if len(out) != f.numItems {
		panic(fmt.Sprintf("mf: ScoreAllFoldIn buffer has length %d, want %d", len(out), f.numItems))
	}
	for i := 0; i < f.numItems; i++ {
		off := i * f.dim
		s := mathx.DotF64F32(userFactors, f.v[off:off+f.dim])
		if f.b != nil {
			s += float64(f.b[i])
		}
		out[i] = s
	}
}

// ScoreRangeFoldIn fills out[lo:hi) with exactly the values ScoreAllFoldIn
// computes — same DotF64F32 kernel, same accumulation order — so blocked
// folded-in sweeps agree with the dense one to the last bit.
func (f *Factors32) ScoreRangeFoldIn(userFactors []float64, lo, hi int, out []float64) {
	if lo < 0 || hi > f.numItems || lo > hi {
		panic(fmt.Sprintf("mf: ScoreRangeFoldIn [%d,%d) out of range [0,%d)", lo, hi, f.numItems))
	}
	if len(out) != f.numItems {
		panic(fmt.Sprintf("mf: ScoreRangeFoldIn buffer has length %d, want %d", len(out), f.numItems))
	}
	for i := lo; i < hi; i++ {
		off := i * f.dim
		s := mathx.DotF64F32(userFactors, f.v[off:off+f.dim])
		if f.b != nil {
			s += float64(f.b[i])
		}
		out[i] = s
	}
}

// UserVector widens U_u into dst and returns it.
func (f *Factors32) UserVector(u int32, dst []float64) []float64 {
	return mathx.WidenF32(f.userRow(u), dst)
}

// ItemVector widens V_i into dst and returns it.
func (f *Factors32) ItemVector(i int32, dst []float64) []float64 {
	return mathx.WidenF32(f.itemRow(i), dst)
}

// CountNonFinite reports NaN/±Inf entries in (U, V, b). Out-of-range
// float64 values quantize to ±Inf, so this also catches overflow at export.
func (f *Factors32) CountNonFinite() (u, v, b int) {
	for _, x := range f.u {
		if isNonFinite32(x) {
			u++
		}
	}
	for _, x := range f.v {
		if isNonFinite32(x) {
			v++
		}
	}
	for _, x := range f.b {
		if isNonFinite32(x) {
			b++
		}
	}
	return
}

func isNonFinite32(x float32) bool {
	f64 := float64(x)
	return math.IsNaN(f64) || math.IsInf(f64, 0)
}

package mf

import (
	"fmt"
	"math"
	"sync"
)

// Overlay is an updatable per-user layer over a read-only Params: the
// online-learning surface. The base representation (a trained Model or a
// mapped Factors32 store) stays frozen; users touched by streaming
// feedback get a replacement float64 factor row — the output of a
// FoldInUser solve over their extended history — and every scoring method
// routes those users through the fold-in kernels while everyone else hits
// the base's stored-user path untouched.
//
// Because FoldInUser is a pure function of (item factors, deduped sorted
// history, reg), an overlaid row is exactly what a promotion export bakes
// into the user matrix and exactly what a post-crash replay recomputes —
// the property the feedback pipeline's consistency proofs rest on.
//
// Rows are immutable once set: Set stores a private copy and replaces the
// map entry, so a reader that picked up a row before a concurrent Set
// keeps scoring a consistent vector. Reads take an RLock only for the map
// lookup; the scan itself runs lock-free on the immutable row.
type Overlay struct {
	base Params

	mu   sync.RWMutex
	rows map[int32][]float64
}

// NewOverlay returns an empty overlay on base.
func NewOverlay(base Params) *Overlay {
	return &Overlay{base: base, rows: make(map[int32][]float64)}
}

// Base returns the wrapped read-only parameter set.
func (o *Overlay) Base() Params { return o.base }

// Set installs a replacement factor row for user u. The vector is copied;
// non-finite entries and shape mismatches are rejected so a poisoned
// fold-in solve can never reach the scoring path.
func (o *Overlay) Set(u int32, vec []float64) error {
	if u < 0 || int(u) >= o.base.NumUsers() {
		return fmt.Errorf("mf: overlay user %d out of range [0,%d)", u, o.base.NumUsers())
	}
	if len(vec) != o.base.Dim() {
		return fmt.Errorf("mf: overlay row has dim %d, want %d", len(vec), o.base.Dim())
	}
	for _, x := range vec {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("mf: overlay row for user %d has non-finite entry %v", u, x)
		}
	}
	row := make([]float64, len(vec))
	copy(row, vec)
	o.mu.Lock()
	o.rows[u] = row
	o.mu.Unlock()
	return nil
}

// Drop removes user u's overlaid row, restoring the base factors.
func (o *Overlay) Drop(u int32) {
	o.mu.Lock()
	delete(o.rows, u)
	o.mu.Unlock()
}

// Len reports how many users currently have overlaid rows.
func (o *Overlay) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.rows)
}

// Row returns u's overlaid factor row, or nil when u scores from the
// base. The returned slice is immutable; callers must not mutate it.
func (o *Overlay) Row(u int32) []float64 {
	o.mu.RLock()
	row := o.rows[u]
	o.mu.RUnlock()
	return row
}

// NumUsers returns the base's user count.
func (o *Overlay) NumUsers() int { return o.base.NumUsers() }

// NumItems returns the base's item count.
func (o *Overlay) NumItems() int { return o.base.NumItems() }

// Dim returns the base's latent dimensionality.
func (o *Overlay) Dim() int { return o.base.Dim() }

// HasBias reports whether the base has per-item biases.
func (o *Overlay) HasBias() bool { return o.base.HasBias() }

// Bias returns the base's b_i; item parameters are never overlaid.
func (o *Overlay) Bias(i int32) float64 { return o.base.Bias(i) }

// ScoreAll scores every item for u: overlaid users through the base's
// fold-in kernel, everyone else through the stored-user kernel.
func (o *Overlay) ScoreAll(u int32, out []float64) {
	if row := o.Row(u); row != nil {
		o.base.ScoreAllFoldIn(row, out)
		return
	}
	o.base.ScoreAll(u, out)
}

// ScoreRange fills out[lo:hi) with the same values ScoreAll computes.
func (o *Overlay) ScoreRange(u int32, lo, hi int, out []float64) {
	if row := o.Row(u); row != nil {
		o.base.ScoreRangeFoldIn(row, lo, hi, out)
		return
	}
	o.base.ScoreRange(u, lo, hi, out)
}

// ScoreAllFoldIn delegates to the base: a fold-in caller already carries
// its own user vector, so the overlay has nothing to add.
func (o *Overlay) ScoreAllFoldIn(userFactors []float64, out []float64) {
	o.base.ScoreAllFoldIn(userFactors, out)
}

// ScoreRangeFoldIn delegates to the base.
func (o *Overlay) ScoreRangeFoldIn(userFactors []float64, lo, hi int, out []float64) {
	o.base.ScoreRangeFoldIn(userFactors, lo, hi, out)
}

// UserVector returns the overlaid row when present, else the base's.
func (o *Overlay) UserVector(u int32, dst []float64) []float64 {
	if row := o.Row(u); row != nil {
		return row
	}
	return o.base.UserVector(u, dst)
}

// ItemVector returns the base's V_i; item parameters are never overlaid.
func (o *Overlay) ItemVector(i int32, dst []float64) []float64 {
	return o.base.ItemVector(i, dst)
}

// CountNonFinite scans the base plus every overlaid row. Set rejects
// non-finite rows, so overlay contributions should always be zero; the
// scan keeps the swap-time validation gate honest anyway.
func (o *Overlay) CountNonFinite() (u, v, b int) {
	u, v, b = o.base.CountNonFinite()
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, row := range o.rows {
		for _, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				u++
			}
		}
	}
	return
}

// ElemBytes reports the base's storage width; overlaid rows are always
// float64 but are a vanishing fraction of the footprint.
func (o *Overlay) ElemBytes() int { return o.base.ElemBytes() }

// ParamBytes returns the base footprint plus the overlaid rows'.
func (o *Overlay) ParamBytes() int64 {
	o.mu.RLock()
	n := len(o.rows)
	o.mu.RUnlock()
	return o.base.ParamBytes() + 8*int64(n)*int64(o.base.Dim())
}

// Package mf provides the matrix-factorization substrate shared by every
// latent-factor model in the repository: BPR, MPR, CLiMF, WMF, and both
// CLAPF instantiations all score a user-item pair as
//
//	f_ui = U_u · V_i + b_i
//
// (§3.1 of the paper). Factors are stored flat and row-major so the SGD
// inner loops touch contiguous memory.
package mf

import (
	"fmt"
	"math"

	"clapf/internal/mathx"
)

// Config describes the shape and initialization of a factor model.
type Config struct {
	NumUsers int
	NumItems int
	Dim      int     // number of latent factors d (paper fixes d = 20)
	UseBias  bool    // include the per-item bias b_i
	InitStd  float64 // stddev of the Gaussian factor initialization
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumUsers <= 0:
		return fmt.Errorf("mf: NumUsers = %d, want > 0", c.NumUsers)
	case c.NumItems <= 0:
		return fmt.Errorf("mf: NumItems = %d, want > 0", c.NumItems)
	case c.Dim <= 0:
		return fmt.Errorf("mf: Dim = %d, want > 0", c.Dim)
	case c.InitStd < 0:
		return fmt.Errorf("mf: InitStd = %v, want >= 0", c.InitStd)
	}
	return nil
}

// Model holds the learned parameters Θ = {U, V, b}.
type Model struct {
	numUsers int
	numItems int
	dim      int
	useBias  bool

	u []float64 // numUsers × dim, row-major
	v []float64 // numItems × dim, row-major
	b []float64 // numItems (nil when bias disabled)
}

// New allocates a zero-initialized model. Call InitGaussian before training.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		numUsers: cfg.NumUsers,
		numItems: cfg.NumItems,
		dim:      cfg.Dim,
		useBias:  cfg.UseBias,
		u:        make([]float64, cfg.NumUsers*cfg.Dim),
		v:        make([]float64, cfg.NumItems*cfg.Dim),
	}
	if cfg.UseBias {
		m.b = make([]float64, cfg.NumItems)
	}
	return m, nil
}

// MustNew is New for statically valid configurations (tests, examples).
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// InitGaussian draws every factor from N(0, std²). Biases start at zero, as
// in the reference implementations the paper compares under one framework.
func (m *Model) InitGaussian(rng *mathx.RNG, std float64) {
	for i := range m.u {
		m.u[i] = rng.NormFloat64() * std
	}
	for i := range m.v {
		m.v[i] = rng.NormFloat64() * std
	}
	if m.b != nil {
		mathx.Fill(m.b, 0)
	}
}

// NumUsers returns n.
func (m *Model) NumUsers() int { return m.numUsers }

// NumItems returns m (the item count).
func (m *Model) NumItems() int { return m.numItems }

// Dim returns the latent dimensionality d.
func (m *Model) Dim() int { return m.dim }

// HasBias reports whether the model carries per-item biases.
func (m *Model) HasBias() bool { return m.useBias }

// UserFactors returns the mutable latent vector U_u.
func (m *Model) UserFactors(u int32) []float64 {
	off := int(u) * m.dim
	return m.u[off : off+m.dim : off+m.dim]
}

// ItemFactors returns the mutable latent vector V_i.
func (m *Model) ItemFactors(i int32) []float64 {
	off := int(i) * m.dim
	return m.v[off : off+m.dim : off+m.dim]
}

// Bias returns b_i, or 0 when the model has no bias term.
func (m *Model) Bias(i int32) float64 {
	if m.b == nil {
		return 0
	}
	return m.b[i]
}

// AddBias adds delta to b_i. It is a no-op for bias-free models so update
// rules need not branch.
func (m *Model) AddBias(i int32, delta float64) {
	if m.b != nil {
		m.b[i] += delta
	}
}

// Score returns the predicted relevance f_ui = U_u · V_i + b_i.
func (m *Model) Score(u, i int32) float64 {
	return mathx.Dot(m.UserFactors(u), m.ItemFactors(i)) + m.Bias(i)
}

// ScoreAll fills out[i] with f_ui for every item. out must have length
// NumItems. This is the evaluation hot path (the protocol ranks all
// unobserved items), so it streams through V once.
func (m *Model) ScoreAll(u int32, out []float64) {
	if len(out) != m.numItems {
		panic(fmt.Sprintf("mf: ScoreAll buffer has length %d, want %d", len(out), m.numItems))
	}
	uf := m.UserFactors(u)
	for i := 0; i < m.numItems; i++ {
		off := i * m.dim
		s := mathx.Dot(uf, m.v[off:off+m.dim])
		if m.b != nil {
			s += m.b[i]
		}
		out[i] = s
	}
}

// ScoreRange fills out[lo:hi] with f_ui for items in [lo, hi). It computes
// exactly the values ScoreAll would — same dot-product order, bit for bit —
// so blocked callers (internal/score) can tile the item scan for cache
// locality without perturbing any ranking downstream.
func (m *Model) ScoreRange(u int32, lo, hi int, out []float64) {
	if lo < 0 || hi > m.numItems || lo > hi {
		panic(fmt.Sprintf("mf: ScoreRange [%d,%d) out of range [0,%d)", lo, hi, m.numItems))
	}
	if len(out) != m.numItems {
		panic(fmt.Sprintf("mf: ScoreRange buffer has length %d, want %d", len(out), m.numItems))
	}
	uf := m.UserFactors(u)
	for i := lo; i < hi; i++ {
		off := i * m.dim
		s := mathx.Dot(uf, m.v[off:off+m.dim])
		if m.b != nil {
			s += m.b[i]
		}
		out[i] = s
	}
}

// FactorColumn copies latent factor q of every item into out (length
// NumItems). The DSS and AoBPR samplers rank items by a single factor's
// value; gathering the column once keeps their refresh pass linear.
func (m *Model) FactorColumn(q int, out []float64) {
	if q < 0 || q >= m.dim {
		panic(fmt.Sprintf("mf: factor %d out of range [0,%d)", q, m.dim))
	}
	if len(out) != m.numItems {
		panic(fmt.Sprintf("mf: FactorColumn buffer has length %d, want %d", len(out), m.numItems))
	}
	for i := 0; i < m.numItems; i++ {
		out[i] = m.v[i*m.dim+q]
	}
}

// UserFactor returns U_{u,q}, the single entry DSS inspects for its sign
// test.
func (m *Model) UserFactor(u int32, q int) float64 {
	return m.u[int(u)*m.dim+q]
}

// CountNonFinite returns how many entries of U, V, and b are NaN or ±Inf.
// A healthy model has (0, 0, 0); anything else means a divergent or
// corrupted parameter vector that will poison every score it touches.
func (m *Model) CountNonFinite() (u, v, b int) {
	for _, x := range m.u {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			u++
		}
	}
	for _, x := range m.v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			v++
		}
	}
	for _, x := range m.b {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			b++
		}
	}
	return
}

// L2Norms returns the squared norms (‖U‖², ‖V‖², ‖b‖²) for monitoring
// regularization pressure.
func (m *Model) L2Norms() (u2, v2, b2 float64) {
	u2 = mathx.Norm2Sq(m.u)
	v2 = mathx.Norm2Sq(m.v)
	if m.b != nil {
		b2 = mathx.Norm2Sq(m.b)
	}
	return
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := *m
	c.u = mathx.CopyVec(m.u)
	c.v = mathx.CopyVec(m.v)
	if m.b != nil {
		c.b = mathx.CopyVec(m.b)
	}
	return &c
}

// SetFrom copies src's parameters into m, which must have the same shape.
// Restoring into an existing model (rather than swapping pointers) keeps
// every alias of m — samplers, servers, evaluators — looking at the new
// parameters.
func (m *Model) SetFrom(src *Model) error {
	if src == nil {
		return fmt.Errorf("mf: SetFrom nil model")
	}
	if m.numUsers != src.numUsers || m.numItems != src.numItems ||
		m.dim != src.dim || m.useBias != src.useBias {
		return fmt.Errorf("mf: SetFrom shape mismatch: have %d×%d dim %d bias %v, source %d×%d dim %d bias %v",
			m.numUsers, m.numItems, m.dim, m.useBias,
			src.numUsers, src.numItems, src.dim, src.useBias)
	}
	copy(m.u, src.u)
	copy(m.v, src.v)
	if m.b != nil {
		copy(m.b, src.b)
	}
	return nil
}

// RawParams exposes the flat parameter slices for serialization. Callers
// outside internal/store should use the accessor methods instead.
func (m *Model) RawParams() (u, v, b []float64) { return m.u, m.v, m.b }

// FromRaw reconstructs a model from serialized parameters, validating the
// slice lengths against the configuration.
func FromRaw(cfg Config, u, v, b []float64) (*Model, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if len(u) != len(m.u) {
		return nil, fmt.Errorf("mf: user params have length %d, want %d", len(u), len(m.u))
	}
	if len(v) != len(m.v) {
		return nil, fmt.Errorf("mf: item params have length %d, want %d", len(v), len(m.v))
	}
	copy(m.u, u)
	copy(m.v, v)
	if cfg.UseBias {
		if len(b) != m.numItems {
			return nil, fmt.Errorf("mf: bias params have length %d, want %d", len(b), m.numItems)
		}
		copy(m.b, b)
	} else if len(b) != 0 {
		return nil, fmt.Errorf("mf: bias params present on bias-free model")
	}
	return m, nil
}

// Config reconstructs the Config describing this model.
func (m *Model) Config() Config {
	return Config{
		NumUsers: m.numUsers,
		NumItems: m.numItems,
		Dim:      m.dim,
		UseBias:  m.useBias,
	}
}

package sampling

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// AoBPRPair implements Adaptive Oversampling for BPR (Rendle &
// Freudenthaler, WSDM 2014) — the sampler DSS generalizes. Negatives are
// drawn context-dependently: pick a random factor q, apply the sign test
// on U_{u,q}, and geometric-sample the top of the factor-q item ranking —
// exactly DSS's negative half, without the positive half.
type AoBPRPair struct {
	inner *TripleSampler
}

// NewAoBPRPair builds the sampler over the training data and live model.
// geomP = 0 picks the same default as DSS.
func NewAoBPRPair(data *dataset.Dataset, model *mf.Model, rng *mathx.RNG, geomP float64) (*AoBPRPair, error) {
	if model == nil {
		return nil, fmt.Errorf("sampling: AoBPR needs a model")
	}
	inner, err := NewTripleSampler(TripleConfig{
		Strategy: NegativeOnly,
		GeomP:    geomP,
	}, data, model, rng)
	if err != nil {
		return nil, err
	}
	return &AoBPRPair{inner: inner}, nil
}

// SamplePair draws a uniform positive and an adaptively oversampled
// negative.
func (s *AoBPRPair) SamplePair(u int32) Pair {
	t := s.inner.Sample(u)
	return Pair{I: t.I, J: t.J}
}

// SampleNegative draws only the adaptive negative, for pair-uniform SGD.
func (s *AoBPRPair) SampleNegative(u int32) int32 {
	obs := s.inner.data.Positives(u)
	t := s.inner.SampleWithI(u, obs[0])
	return t.J
}

package sampling

import (
	"fmt"
	"sort"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// sortSliceInt32 sorts xs by the provided less function.
func sortSliceInt32(xs []int32, less func(a, b int32) bool) {
	sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
}

// Pair is one (observed, unobserved) BPR training case.
type Pair struct {
	I int32 // observed item
	J int32 // unobserved item
}

// PairSampler draws BPR-style pairs.
type PairSampler interface {
	SamplePair(u int32) Pair
}

// UniformPair is the classic BPR sampler: i uniform over observed, j
// uniform over unobserved.
type UniformPair struct {
	data *dataset.Dataset
	rng  *mathx.RNG
}

// NewUniformPair returns a uniform pair sampler.
func NewUniformPair(data *dataset.Dataset, rng *mathx.RNG) *UniformPair {
	return &UniformPair{data: data, rng: rng}
}

// SamplePair draws a uniform (i, j) pair for user u.
func (s *UniformPair) SamplePair(u int32) Pair {
	obs := s.data.Positives(u)
	i := obs[s.rng.Intn(len(obs))]
	return Pair{I: i, J: s.SampleNegative(u)}
}

// SampleNegative draws only the unobserved side, for pair-uniform SGD
// loops that already hold the positive record.
func (s *UniformPair) SampleNegative(u int32) int32 {
	return rejectUnobserved(s.data, u, s.rng)
}

// rejectUnobserved draws a training-unobserved item for u by rejection with
// a linear-scan fallback for pathological users.
func rejectUnobserved(data *dataset.Dataset, u int32, rng *mathx.RNG) int32 {
	m := data.NumItems()
	for tries := 0; tries < 64; tries++ {
		j := int32(rng.Intn(m))
		if !data.IsPositive(u, j) {
			return j
		}
	}
	start := rng.Intn(m)
	for off := 0; off < m; off++ {
		j := int32((start + off) % m)
		if !data.IsPositive(u, j) {
			return j
		}
	}
	panic("sampling: user has observed every item")
}

// DNSPair implements Dynamic Negative Sampling (Zhang et al., SIGIR 2013):
// draw Candidates unobserved items uniformly and keep the one the current
// model scores highest — the hardest negative of the candidate set.
type DNSPair struct {
	data       *dataset.Dataset
	model      *mf.Model
	rng        *mathx.RNG
	candidates int
}

// NewDNSPair builds a DNS sampler; candidates must be at least 1 (the
// original paper uses small values like 5–10).
func NewDNSPair(data *dataset.Dataset, model *mf.Model, rng *mathx.RNG, candidates int) (*DNSPair, error) {
	if model == nil {
		return nil, fmt.Errorf("sampling: DNS needs a model")
	}
	if candidates < 1 {
		return nil, fmt.Errorf("sampling: DNS candidates = %d, want >= 1", candidates)
	}
	return &DNSPair{data: data, model: model, rng: rng, candidates: candidates}, nil
}

// SamplePair draws a uniform positive and the highest-scored of several
// uniform negatives.
func (s *DNSPair) SamplePair(u int32) Pair {
	obs := s.data.Positives(u)
	i := obs[s.rng.Intn(len(obs))]
	return Pair{I: i, J: s.SampleNegative(u)}
}

// SampleNegative draws the highest-scored of several uniform negatives —
// DNS's hard-negative rule — for pair-uniform SGD loops.
func (s *DNSPair) SampleNegative(u int32) int32 {
	best := rejectUnobserved(s.data, u, s.rng)
	bestScore := s.model.Score(u, best)
	for c := 1; c < s.candidates; c++ {
		j := rejectUnobserved(s.data, u, s.rng)
		if sc := s.model.Score(u, j); sc > bestScore {
			best, bestScore = j, sc
		}
	}
	return best
}

// PopNegative draws unobserved items with probability proportional to
// global item popularity. MPR uses it to build its intermediate item class:
// a popular-but-unobserved item is plausibly seen-and-skipped, so it should
// rank between the observed items and the uniformly unobserved ones.
type PopNegative struct {
	data  *dataset.Dataset
	rng   *mathx.RNG
	alias *Alias
}

// NewPopNegative builds the popularity-weighted negative sampler with
// add-one smoothing so zero-popularity items stay reachable.
func NewPopNegative(data *dataset.Dataset, rng *mathx.RNG) (*PopNegative, error) {
	pop := data.ItemPopularity()
	weights := make([]float64, len(pop))
	for i, c := range pop {
		weights[i] = float64(c) + 1
	}
	alias, err := NewAlias(weights)
	if err != nil {
		return nil, err
	}
	return &PopNegative{data: data, rng: rng, alias: alias}, nil
}

// Sample draws a popularity-weighted item unobserved by u.
func (s *PopNegative) Sample(u int32) int32 {
	for tries := 0; tries < 64; tries++ {
		j := s.alias.Sample(s.rng)
		if !s.data.IsPositive(u, j) {
			return j
		}
	}
	return rejectUnobserved(s.data, u, s.rng)
}

package sampling

import (
	"math"
	"testing"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
)

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(1)
	const draws = 200000
	counts := make([]float64, len(weights))
	for n := 0; n < draws; n++ {
		counts[a.Sample(rng)]++
	}
	total := mathx.Sum(weights)
	for i, w := range weights {
		want := w / total
		got := counts[i] / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(2)
	for n := 0; n < 100; n++ {
		if a.Sample(rng) != 0 {
			t.Fatal("single category sampler returned nonzero")
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a, err := NewAlias([]float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(3)
	for n := 0; n < 10000; n++ {
		v := a.Sample(rng)
		if v == 0 || v == 2 {
			t.Fatalf("zero-weight category %d drawn", v)
		}
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestUniformPairInvariants(t *testing.T) {
	d, _ := fixture(t)
	s := NewUniformPair(d, mathx.NewRNG(5))
	users := d.UsersWithAtLeast(1)
	for n := 0; n < 2000; n++ {
		u := users[n%len(users)]
		p := s.SamplePair(u)
		if !d.IsPositive(u, p.I) {
			t.Fatalf("i = %d not observed", p.I)
		}
		if d.IsPositive(u, p.J) {
			t.Fatalf("j = %d observed", p.J)
		}
	}
}

func TestDNSPairPicksHarderNegatives(t *testing.T) {
	d, m := fixture(t) // item score = item id
	dns, err := NewDNSPair(d, m, mathx.NewRNG(7), 8)
	if err != nil {
		t.Fatal(err)
	}
	uni := NewUniformPair(d, mathx.NewRNG(7))
	users := d.UsersWithAtLeast(1)
	var dnsJ, uniJ mathx.OnlineStats
	for n := 0; n < 3000; n++ {
		u := users[n%len(users)]
		dnsJ.Add(m.Score(u, dns.SamplePair(u).J))
		uniJ.Add(m.Score(u, uni.SamplePair(u).J))
	}
	if dnsJ.Mean() <= uniJ.Mean() {
		t.Errorf("DNS negative score %.2f not above uniform %.2f", dnsJ.Mean(), uniJ.Mean())
	}
}

func TestDNSValidation(t *testing.T) {
	d, m := fixture(t)
	if _, err := NewDNSPair(d, nil, mathx.NewRNG(1), 5); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewDNSPair(d, m, mathx.NewRNG(1), 0); err == nil {
		t.Error("zero candidates accepted")
	}
}

func TestPopNegativeWeighting(t *testing.T) {
	// Build a dataset where item 0 is wildly popular; the popularity
	// sampler must draw it far more often than a tail item for users who
	// have not observed it.
	var pairs []dataset.Interaction
	for u := int32(1); u < 50; u++ {
		pairs = append(pairs, dataset.Interaction{User: u, Item: 0})
	}
	pairs = append(pairs, dataset.Interaction{User: 0, Item: 5})
	d, err := dataset.FromInteractions("pop", 50, 20, pairs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewPopNegative(d, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 20)
	for n := 0; n < 10000; n++ {
		j := s.Sample(0) // user 0 has not observed item 0
		if d.IsPositive(0, j) {
			t.Fatal("popularity sampler returned observed item")
		}
		counts[j]++
	}
	if counts[0] < 10*counts[10] {
		t.Errorf("popular item drawn %d times vs tail %d — want heavy weighting", counts[0], counts[10])
	}
}

func TestABSPairPrefersMisrankedPairs(t *testing.T) {
	d, m := fixture(t) // item score = item id
	abs, err := NewABSPair(d, m, mathx.NewRNG(11), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	uni := NewUniformPair(d, mathx.NewRNG(11))
	users := d.UsersWithAtLeast(1)
	var absMargin, uniMargin mathx.OnlineStats
	for n := 0; n < 3000; n++ {
		u := users[n%len(users)]
		p := abs.SamplePair(u)
		if !d.IsPositive(u, p.I) || d.IsPositive(u, p.J) {
			t.Fatal("ABS pair violates positivity invariants")
		}
		absMargin.Add(m.Score(u, p.I) - m.Score(u, p.J))
		q := uni.SamplePair(u)
		uniMargin.Add(m.Score(u, q.I) - m.Score(u, q.J))
	}
	if absMargin.Mean() >= uniMargin.Mean() {
		t.Errorf("ABS margin %.2f not below uniform %.2f — should mine hard pairs",
			absMargin.Mean(), uniMargin.Mean())
	}
}

func TestABSValidation(t *testing.T) {
	d, m := fixture(t)
	if _, err := NewABSPair(d, nil, mathx.NewRNG(1), 4, 0); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewABSPair(d, m, mathx.NewRNG(1), 0, 0); err == nil {
		t.Error("zero candidates accepted")
	}
}

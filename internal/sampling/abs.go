package sampling

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// ABSPair approximates Alpha-Beta Sampling (Cheng et al., ICDM 2019), the
// third member of §2.1's improved-sampler class alongside DNS and AoBPR.
// ABS concentrates training on *misranked* pairs: a positive the current
// model scores low (the α region of the user's ranking) against a negative
// it scores high (the β region). This implementation screens up to
// Candidates uniformly drawn (i⁺, j⁻) pairs per step and keeps the pair
// with the smallest margin f_ui − f_uj, accepting early if the margin is
// already below the α−β informativeness threshold.
type ABSPair struct {
	data       *dataset.Dataset
	model      *mf.Model
	rng        *mathx.RNG
	candidates int
	threshold  float64
}

// NewABSPair builds the sampler. candidates ≥ 1 bounds the screening work
// per step; threshold is the margin below which a pair is considered
// informative enough to accept immediately (0 accepts any misranked pair).
func NewABSPair(data *dataset.Dataset, model *mf.Model, rng *mathx.RNG, candidates int, threshold float64) (*ABSPair, error) {
	if model == nil {
		return nil, fmt.Errorf("sampling: ABS needs a model")
	}
	if candidates < 1 {
		return nil, fmt.Errorf("sampling: ABS candidates = %d, want >= 1", candidates)
	}
	return &ABSPair{data: data, model: model, rng: rng, candidates: candidates, threshold: threshold}, nil
}

// SamplePair draws the most-misranked of several candidate pairs for u.
func (s *ABSPair) SamplePair(u int32) Pair {
	obs := s.data.Positives(u)
	best := Pair{
		I: obs[s.rng.Intn(len(obs))],
		J: rejectUnobserved(s.data, u, s.rng),
	}
	bestMargin := s.model.Score(u, best.I) - s.model.Score(u, best.J)
	if bestMargin < s.threshold {
		return best
	}
	for c := 1; c < s.candidates; c++ {
		p := Pair{
			I: obs[s.rng.Intn(len(obs))],
			J: rejectUnobserved(s.data, u, s.rng),
		}
		margin := s.model.Score(u, p.I) - s.model.Score(u, p.J)
		if margin < bestMargin {
			best, bestMargin = p, margin
			if bestMargin < s.threshold {
				break
			}
		}
	}
	return best
}

package sampling

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/obs"
)

// Strategy selects how the (k, j) pair of a CLAPF triple is drawn.
type Strategy int

const (
	// Uniform draws k and j with equal probabilities — the paper's
	// baseline sampler.
	Uniform Strategy = iota
	// DSS is the paper's Double Sampling Strategy: rank-aware geometric
	// draws for both k (from the observed items) and j (from the
	// unobserved items).
	DSS
	// PositiveOnly is the Figure 4 ablation: k as in DSS, j uniform.
	PositiveOnly
	// NegativeOnly is the Figure 4 ablation: j as in DSS, k uniform.
	NegativeOnly
)

// String returns the sampler's display name as used in Figure 4.
func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "Uniform"
	case DSS:
		return "DSS"
	case PositiveOnly:
		return "Positive"
	case NegativeOnly:
		return "Negative"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Objective distinguishes CLAPF-MAP from CLAPF-MRR; DSS draws the observed
// item k from opposite ends of the ranking list in the two cases (§5.2,
// Step 4): for MAP a *low*-scored observed k makes the pair (k ≻ i)
// informative, for MRR a *high*-scored one does.
type Objective int

const (
	// MAP targets the smoothed Mean Average Precision objective.
	MAP Objective = iota
	// MRR targets the smoothed Mean Reciprocal Rank objective.
	MRR
)

// String returns "MAP" or "MRR".
func (o Objective) String() string {
	if o == MRR {
		return "MRR"
	}
	return "MAP"
}

// Triple is one sampled training case S = {i, k, j}.
type Triple struct {
	I int32 // observed item (uniform)
	K int32 // second observed item
	J int32 // unobserved item
}

// TripleConfig parameterizes a TripleSampler.
type TripleConfig struct {
	Strategy  Strategy
	Objective Objective
	// GeomP is the success probability of the geometric rank distribution;
	// 0 picks 5/m (mean rank ≈ m/5), concentrating draws in roughly the
	// top fifth of the list — aggressive enough to find hard samples,
	// mild enough not to fixate on the extreme head (which suppresses
	// popular items and costs accuracy).
	GeomP float64
	// RefreshEvery is the number of Sample calls between ranking-list
	// rebuilds; 0 picks m·⌈log₂ m⌉ steps, the paper's "every log(m)
	// iterations" with an iteration read as one pass over the items.
	RefreshEvery int
}

// TripleSampler draws CLAPF training triples for users. Rank-aware
// strategies keep per-factor item rankings that must be refreshed from the
// live model as it trains; the sampler does so transparently on its own
// schedule.
type TripleSampler struct {
	cfg   TripleConfig
	data  *dataset.Dataset
	model *mf.Model
	rng   *mathx.RNG

	steps int
	geomP float64
	// view marks a SharedView: it borrows the owner's rank structures and
	// never refreshes them itself (the owner refreshes at a barrier while
	// all views are quiescent).
	view   bool
	orders [][]int32 // per-factor item ids, descending factor value
	pos    [][]int32 // per-factor position of each item in orders

	// sortedObs[q] holds every user's observed items ordered by their
	// factor-q ranking position, laid out CSR-style with obsOff giving
	// each user's slice. Precomputing this at Refresh makes rankedK a
	// constant-time lookup instead of a per-sample sort.
	sortedObs [][]int32
	obsOff    []int32

	// itemUsers is the item→observing-users CSR adjacency used to rebuild
	// sortedObs by a single ordered scatter pass per factor.
	itemUsers [][]int32
	fill      []int32 // per-user write cursor, reset per factor

	// Optional telemetry: rank positions drawn by the rank-aware
	// strategies for k (posHist) and j (negHist). Nil = off.
	posHist, negHist *obs.Histogram
}

// NewTripleSampler builds a sampler over the training data. model may be
// nil only for the Uniform strategy; rank-aware strategies score items with
// it.
func NewTripleSampler(cfg TripleConfig, data *dataset.Dataset, model *mf.Model, rng *mathx.RNG) (*TripleSampler, error) {
	if data == nil {
		return nil, fmt.Errorf("sampling: nil dataset")
	}
	if rng == nil {
		return nil, fmt.Errorf("sampling: nil rng")
	}
	needModel := cfg.Strategy != Uniform
	if needModel && model == nil {
		return nil, fmt.Errorf("sampling: strategy %v needs a model", cfg.Strategy)
	}
	m := data.NumItems()
	s := &TripleSampler{cfg: cfg, data: data, model: model, rng: rng}
	s.geomP = cfg.GeomP
	if s.geomP <= 0 {
		s.geomP = mathx.Clamp(5/float64(m), 1e-4, 1)
	} else if s.geomP > 1 {
		return nil, fmt.Errorf("sampling: GeomP = %v > 1", s.geomP)
	}
	if cfg.RefreshEvery == 0 {
		lg := 1
		for v := m; v > 1; v >>= 1 {
			lg++
		}
		s.cfg.RefreshEvery = m * lg
	} else if cfg.RefreshEvery < 0 {
		return nil, fmt.Errorf("sampling: RefreshEvery = %d < 0", cfg.RefreshEvery)
	}
	if needModel {
		s.Refresh()
	}
	return s, nil
}

// RefreshEvery returns the resolved rank-list rebuild cadence in Sample
// calls (the configured value, or the m·⌈log₂ m⌉ default). Uniform
// samplers report the resolved value too, though they never rebuild.
func (s *TripleSampler) RefreshEvery() int { return s.cfg.RefreshEvery }

// Refresh rebuilds the per-factor ranking lists from the current model
// (§5.2, Step 2). Cost: d · m log m.
func (s *TripleSampler) Refresh() {
	if s.model == nil {
		return
	}
	d := s.model.Dim()
	m := s.model.NumItems()
	if s.orders == nil {
		s.orders = make([][]int32, d)
		s.pos = make([][]int32, d)
		for q := 0; q < d; q++ {
			s.pos[q] = make([]int32, m)
		}
	}
	if s.obsOff == nil {
		nu := s.data.NumUsers()
		s.obsOff = make([]int32, nu+1)
		for u := 0; u < nu; u++ {
			s.obsOff[u+1] = s.obsOff[u] + int32(s.data.NumPositives(int32(u)))
		}
		s.sortedObs = make([][]int32, d)
		total := int(s.obsOff[nu])
		for q := 0; q < d; q++ {
			s.sortedObs[q] = make([]int32, total)
		}
		s.itemUsers = make([][]int32, m)
		s.data.ForEach(func(u, i int32) {
			s.itemUsers[i] = append(s.itemUsers[i], u)
		})
		s.fill = make([]int32, nu)
	}
	col := make([]float64, m)
	for q := 0; q < d; q++ {
		s.model.FactorColumn(q, col)
		s.orders[q] = argsortDesc(col)
		for p, it := range s.orders[q] {
			s.pos[q][it] = int32(p)
		}
		// Rebuild every user's rank-ordered observed list by scattering
		// the global order: walking items best-first and appending each
		// to its observers' segments yields all per-user lists already
		// sorted, in O(m + Σ n_u) with no comparison sort at all.
		copy(s.fill, s.obsOff[:len(s.fill)])
		dst := s.sortedObs[q]
		for _, it := range s.orders[q] {
			for _, u := range s.itemUsers[it] {
				dst[s.fill[u]] = it
				s.fill[u]++
			}
		}
	}
}

// argsortDesc returns item ids ordered by descending value.
func argsortDesc(xs []float64) []int32 {
	idx := make([]int32, len(xs))
	for i := range idx {
		idx[i] = int32(i)
	}
	sortSliceInt32(idx, func(a, b int32) bool {
		if xs[a] != xs[b] {
			return xs[a] > xs[b]
		}
		return a < b
	})
	return idx
}

// Sample draws the triple S = {i, k, j} for user u (§5.2 Steps 2–4),
// choosing i uniformly from the user's observed items. The user must have
// at least one observed and one unobserved item.
func (s *TripleSampler) Sample(u int32) Triple {
	obs := s.data.Positives(u)
	return s.SampleWithI(u, obs[s.rng.Intn(len(obs))])
}

// SampleWithI draws the (k, j) pair for a caller-chosen observed item i —
// the path used by pair-uniform SGD, where (u, i) is a uniformly sampled
// training record (§4.3: "randomly select a record").
func (s *TripleSampler) SampleWithI(u, i int32) Triple {
	s.steps++
	if !s.view && s.cfg.Strategy != Uniform && s.cfg.RefreshEvery > 0 && s.steps%s.cfg.RefreshEvery == 0 {
		s.Refresh()
	}

	obs := s.data.Positives(u)

	var k, j int32
	switch s.cfg.Strategy {
	case Uniform:
		k = s.uniformK(obs, i)
		j = s.uniformJ(u)
	case DSS:
		q, descending := s.pickFactorList(u)
		k = s.rankedK(u, obs, i, q, descending)
		j = s.rankedJ(u, q, descending)
	case PositiveOnly:
		q, descending := s.pickFactorList(u)
		k = s.rankedK(u, obs, i, q, descending)
		j = s.uniformJ(u)
	case NegativeOnly:
		q, descending := s.pickFactorList(u)
		k = s.uniformK(obs, i)
		j = s.rankedJ(u, q, descending)
	default:
		panic(fmt.Sprintf("sampling: unknown strategy %v", s.cfg.Strategy))
	}
	return Triple{I: i, K: k, J: j}
}

// SharedView returns a sampler that draws with its own RNG stream but
// borrows this sampler's dataset, model, and rank-aware structures
// in place. Hogwild training workers each hold a view: sampling reads the
// shared rank lists without copies or locks, while refreshes stay the
// owner's job — views never rebuild, so the owner must call Refresh only
// at a barrier when no view is concurrently sampling. The view's State
// and Restore manage its private RNG/step position; restoring a view does
// not rebuild rank lists (again the owner's job).
func (s *TripleSampler) SharedView(rng *mathx.RNG) *TripleSampler {
	v := *s
	v.rng = rng
	v.steps = 0
	v.view = true
	v.fill = nil // Refresh scratch; views never refresh
	return &v
}

// SamplerState captures the sampler's resumable state: the RNG position
// and the step counter that drives the rank-list refresh schedule. The
// rank lists themselves are not part of the state — they are derived from
// the model and rebuilt on Restore.
type SamplerState struct {
	RNG   [4]uint64
	Steps int
}

// State returns the sampler's resumable state for checkpointing.
func (s *TripleSampler) State() SamplerState {
	return SamplerState{RNG: s.rng.State(), Steps: s.steps}
}

// Restore resumes the sampler from a captured state and rebuilds the
// rank-aware structures from the current model. For the Uniform strategy
// the continuation is bit-identical to the uninterrupted stream; for
// rank-aware strategies the refreshed lists reflect the restored model
// rather than the lists in memory at checkpoint time (see DESIGN.md).
func (s *TripleSampler) Restore(st SamplerState) {
	s.rng.SetState(st.RNG)
	s.steps = st.Steps
	if !s.view {
		s.Refresh()
	}
}

// SetDrawHists attaches optional histograms recording the geometric rank
// positions drawn by the rank-aware strategies — pos for the observed
// item k, neg for the unobserved item j. Position 0 is the end of the
// ranking list the draw targets (the head for MRR's k and for j, the
// tail for MAP's k), so a healthy DSS run shows head-heavy mass in both.
// Uniform draws have no rank meaning and are not recorded. Pass nils to
// detach. The histograms are observed from the training goroutine only.
func (s *TripleSampler) SetDrawHists(pos, neg *obs.Histogram) {
	s.posHist, s.negHist = pos, neg
}

// pickFactorList implements Steps 2–3: choose a random factor q and apply
// the sign test — a negative U_{u,q} reverses the ranking list.
func (s *TripleSampler) pickFactorList(u int32) (q int, descending bool) {
	q = s.rng.Intn(s.model.Dim())
	return q, s.model.UserFactor(u, q) >= 0
}

// uniformK draws a second observed item distinct from i when possible.
func (s *TripleSampler) uniformK(obs []int32, i int32) int32 {
	if len(obs) == 1 {
		return obs[0]
	}
	for {
		k := obs[s.rng.Intn(len(obs))]
		if k != i {
			return k
		}
	}
}

// uniformJ draws an unobserved item by rejection; the observed set is tiny
// relative to the catalog, so this terminates almost immediately.
func (s *TripleSampler) uniformJ(u int32) int32 {
	m := s.data.NumItems()
	for tries := 0; tries < 64; tries++ {
		j := int32(s.rng.Intn(m))
		if !s.data.IsPositive(u, j) {
			return j
		}
	}
	// Degenerate user observing nearly everything: scan from a random
	// offset for the first unobserved item.
	start := s.rng.Intn(m)
	for off := 0; off < m; off++ {
		j := int32((start + off) % m)
		if !s.data.IsPositive(u, j) {
			return j
		}
	}
	panic("sampling: user has observed every item")
}

// rankedK draws the observed item k (≠ i) by geometric sampling over the
// user's observed items ordered by the factor-q ranking list, which
// Refresh has presorted. For MAP the paper samples from the *bottom* of
// the list (a weak observed item whose promotion is informative); for MRR
// from the *top*.
func (s *TripleSampler) rankedK(u int32, obs []int32, i int32, q int, descending bool) int32 {
	if len(obs) == 1 {
		return obs[0]
	}
	sorted := s.sortedObs[q][s.obsOff[u]:s.obsOff[u+1]]
	fromTop := s.cfg.Objective == MRR
	if !descending {
		fromTop = !fromTop
	}
	g := s.rng.GeometricCapped(geomPForLen(s.geomP, len(sorted)-1), len(sorted)-1)
	if s.posHist != nil {
		s.posHist.Observe(float64(g))
	}
	// Walk g non-i entries in from the chosen end.
	if fromTop {
		for idx := 0; idx < len(sorted); idx++ {
			if sorted[idx] == i {
				continue
			}
			if g == 0 {
				return sorted[idx]
			}
			g--
		}
	} else {
		for idx := len(sorted) - 1; idx >= 0; idx-- {
			if sorted[idx] == i {
				continue
			}
			if g == 0 {
				return sorted[idx]
			}
			g--
		}
	}
	// Unreachable for len(obs) > 1, but keep a safe fallback.
	return s.uniformK(obs, i)
}

// geomPForLen rescales the global geometric parameter to a short list so
// the head-heavy shape is preserved rather than collapsing to index 0.
func geomPForLen(p float64, n int) float64 {
	if n <= 1 {
		return 1
	}
	// Aim the mean at roughly n/5, bounded to a valid probability.
	q := 5 / float64(n)
	if q > 1 {
		q = 1
	}
	if q < p {
		q = p
	}
	return q
}

// rankedJ draws the unobserved item j by geometric sampling from the top of
// the factor-q ranking list (both CLAPF-MAP and CLAPF-MRR want a
// high-scored negative — the hard-negative that keeps the gradient alive).
func (s *TripleSampler) rankedJ(u int32, q int, descending bool) int32 {
	order := s.orders[q]
	m := len(order)
	for tries := 0; tries < 64; tries++ {
		g := s.rng.GeometricCapped(s.geomP, m)
		if !descending {
			g = m - 1 - g
		}
		j := order[g]
		if !s.data.IsPositive(u, j) {
			if s.negHist != nil {
				// Record the rank relative to the targeted end, so the
				// histogram reads "distance from the hard-negative head"
				// for both list directions.
				rank := g
				if !descending {
					rank = m - 1 - g
				}
				s.negHist.Observe(float64(rank))
			}
			return j
		}
	}
	return s.uniformJ(u)
}

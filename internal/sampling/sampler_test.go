package sampling

import (
	"testing"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// fixture returns a small dataset and a model whose item scores are known:
// item i has every factor equal to float64(i), so higher item id = higher
// factor value in every dimension.
func fixture(t *testing.T) (*dataset.Dataset, *mf.Model) {
	t.Helper()
	const nu, ni = 8, 40
	var pairs []dataset.Interaction
	rng := mathx.NewRNG(100)
	for u := int32(0); u < nu; u++ {
		for c := 0; c < 6; c++ {
			pairs = append(pairs, dataset.Interaction{User: u, Item: int32(rng.Intn(ni))})
		}
	}
	d, err := dataset.FromInteractions("fix", nu, ni, pairs)
	if err != nil {
		t.Fatal(err)
	}
	m := mf.MustNew(mf.Config{NumUsers: nu, NumItems: ni, Dim: 4, UseBias: false})
	for i := int32(0); i < ni; i++ {
		f := m.ItemFactors(i)
		for q := range f {
			f[q] = float64(i)
		}
	}
	for u := int32(0); u < nu; u++ {
		f := m.UserFactors(u)
		for q := range f {
			f[q] = 1 // positive sign for the DSS sign test
		}
	}
	return d, m
}

func TestNewTripleSamplerValidation(t *testing.T) {
	d, m := fixture(t)
	rng := mathx.NewRNG(1)
	if _, err := NewTripleSampler(TripleConfig{}, nil, nil, rng); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewTripleSampler(TripleConfig{}, d, nil, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewTripleSampler(TripleConfig{Strategy: DSS}, d, nil, rng); err == nil {
		t.Error("DSS without model accepted")
	}
	if _, err := NewTripleSampler(TripleConfig{GeomP: 2}, d, m, rng); err == nil {
		t.Error("GeomP > 1 accepted")
	}
	if _, err := NewTripleSampler(TripleConfig{RefreshEvery: -1}, d, m, rng); err == nil {
		t.Error("negative RefreshEvery accepted")
	}
	if _, err := NewTripleSampler(TripleConfig{Strategy: Uniform}, d, nil, rng); err != nil {
		t.Errorf("uniform without model rejected: %v", err)
	}
}

// checkTriple asserts the CLAPF sampling invariants.
func checkTriple(t *testing.T, d *dataset.Dataset, u int32, tr Triple) {
	t.Helper()
	if !d.IsPositive(u, tr.I) {
		t.Fatalf("i = %d is not observed for user %d", tr.I, u)
	}
	if !d.IsPositive(u, tr.K) {
		t.Fatalf("k = %d is not observed for user %d", tr.K, u)
	}
	if d.IsPositive(u, tr.J) {
		t.Fatalf("j = %d is observed for user %d", tr.J, u)
	}
	if tr.K == tr.I && d.NumPositives(u) > 1 {
		t.Fatalf("k == i for user with %d positives", d.NumPositives(u))
	}
}

func TestTripleInvariantsAllStrategies(t *testing.T) {
	d, m := fixture(t)
	users := d.UsersWithAtLeast(2)
	for _, strat := range []Strategy{Uniform, DSS, PositiveOnly, NegativeOnly} {
		for _, obj := range []Objective{MAP, MRR} {
			s, err := NewTripleSampler(TripleConfig{Strategy: strat, Objective: obj}, d, m, mathx.NewRNG(5))
			if err != nil {
				t.Fatalf("%v/%v: %v", strat, obj, err)
			}
			for n := 0; n < 2000; n++ {
				u := users[n%len(users)]
				checkTriple(t, d, u, s.Sample(u))
			}
		}
	}
}

func TestDSSMAPPrefersLowScoredK(t *testing.T) {
	// With item score = item id, CLAPF-MAP's k should come from the bottom
	// of the user's observed list far more often than the top.
	d, m := fixture(t)
	s, err := NewTripleSampler(TripleConfig{Strategy: DSS, Objective: MAP}, d, m, mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	users := d.UsersWithAtLeast(3)
	lowK, highK := 0, 0
	for n := 0; n < 6000; n++ {
		u := users[n%len(users)]
		obs := d.Positives(u) // sorted ascending = ascending score
		tr := s.Sample(u)
		mid := obs[len(obs)/2]
		switch {
		case tr.K < mid:
			lowK++
		case tr.K > mid:
			highK++
		}
	}
	if lowK <= highK {
		t.Errorf("CLAPF-MAP k draws: low %d, high %d — want bottom-heavy", lowK, highK)
	}
}

func TestDSSMRRPrefersHighScoredK(t *testing.T) {
	d, m := fixture(t)
	s, err := NewTripleSampler(TripleConfig{Strategy: DSS, Objective: MRR}, d, m, mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	users := d.UsersWithAtLeast(3)
	lowK, highK := 0, 0
	for n := 0; n < 6000; n++ {
		u := users[n%len(users)]
		obs := d.Positives(u)
		tr := s.Sample(u)
		mid := obs[len(obs)/2]
		switch {
		case tr.K < mid:
			lowK++
		case tr.K > mid:
			highK++
		}
	}
	if highK <= lowK {
		t.Errorf("CLAPF-MRR k draws: low %d, high %d — want top-heavy", lowK, highK)
	}
}

func TestDSSNegativePrefersHighScoredJ(t *testing.T) {
	// j should be drawn from the top of the global ranking (hard
	// negatives): its mean score must exceed the uniform sampler's.
	d, m := fixture(t)
	dss, err := NewTripleSampler(TripleConfig{Strategy: DSS, Objective: MAP}, d, m, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewTripleSampler(TripleConfig{Strategy: Uniform}, d, nil, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	users := d.UsersWithAtLeast(2)
	var dssJ, uniJ mathx.OnlineStats
	for n := 0; n < 5000; n++ {
		u := users[n%len(users)]
		dssJ.Add(float64(dss.Sample(u).J))
		uniJ.Add(float64(uni.Sample(u).J))
	}
	if dssJ.Mean() <= uniJ.Mean() {
		t.Errorf("DSS j mean score %.2f not above uniform %.2f", dssJ.Mean(), uniJ.Mean())
	}
}

func TestDSSSignTestReversesList(t *testing.T) {
	// Flip all user factors negative: the ranking list is reversed, so
	// hard negatives become the *low* item ids.
	d, m := fixture(t)
	for u := int32(0); u < int32(m.NumUsers()); u++ {
		f := m.UserFactors(u)
		for q := range f {
			f[q] = -1
		}
	}
	s, err := NewTripleSampler(TripleConfig{Strategy: DSS, Objective: MAP}, d, m, mathx.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	users := d.UsersWithAtLeast(2)
	var js mathx.OnlineStats
	for n := 0; n < 5000; n++ {
		u := users[n%len(users)]
		js.Add(float64(s.Sample(u).J))
	}
	// With the reversed list, draws concentrate on low ids; the uniform
	// mean over 40 items is ~19.5.
	if js.Mean() >= 19.5 {
		t.Errorf("sign test did not reverse list: mean j id %.2f", js.Mean())
	}
}

func TestPositiveOnlyJIsUniform(t *testing.T) {
	d, m := fixture(t)
	s, err := NewTripleSampler(TripleConfig{Strategy: PositiveOnly, Objective: MAP}, d, m, mathx.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	uni, _ := NewTripleSampler(TripleConfig{Strategy: Uniform}, d, nil, mathx.NewRNG(13))
	users := d.UsersWithAtLeast(2)
	var posJ, uniJ mathx.OnlineStats
	for n := 0; n < 5000; n++ {
		u := users[n%len(users)]
		posJ.Add(float64(s.Sample(u).J))
		uniJ.Add(float64(uni.Sample(u).J))
	}
	if diff := posJ.Mean() - uniJ.Mean(); diff > 2 || diff < -2 {
		t.Errorf("PositiveOnly j mean %.2f differs from uniform %.2f", posJ.Mean(), uniJ.Mean())
	}
}

func TestRefreshTracksModel(t *testing.T) {
	d, m := fixture(t)
	s, err := NewTripleSampler(TripleConfig{Strategy: DSS, Objective: MAP, RefreshEvery: 1}, d, m, mathx.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	// Invert item scores: item 0 becomes the top item. After refresh, hard
	// negatives must flip to low ids.
	for i := int32(0); i < int32(m.NumItems()); i++ {
		f := m.ItemFactors(i)
		for q := range f {
			f[q] = float64(m.NumItems()) - float64(i)
		}
	}
	users := d.UsersWithAtLeast(2)
	var js mathx.OnlineStats
	for n := 0; n < 4000; n++ {
		u := users[n%len(users)]
		js.Add(float64(s.Sample(u).J))
	}
	if js.Mean() >= 19.5 {
		t.Errorf("refresh did not track inverted model: mean j id %.2f", js.Mean())
	}
}

func TestStrategyObjectiveStrings(t *testing.T) {
	if Uniform.String() != "Uniform" || DSS.String() != "DSS" ||
		PositiveOnly.String() != "Positive" || NegativeOnly.String() != "Negative" {
		t.Error("Strategy names wrong")
	}
	if MAP.String() != "MAP" || MRR.String() != "MRR" {
		t.Error("Objective names wrong")
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy should still print")
	}
}

func TestSinglePositiveUser(t *testing.T) {
	// A user with exactly one positive: k falls back to i (the trainer
	// only feeds users with ≥2 positives, but the sampler must not crash).
	d, err := dataset.FromInteractions("one", 1, 10, []dataset.Interaction{{User: 0, Item: 4}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewTripleSampler(TripleConfig{Strategy: Uniform}, d, nil, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Sample(0)
	if tr.I != 4 || tr.K != 4 {
		t.Errorf("single-positive triple = %+v", tr)
	}
	if d.IsPositive(0, tr.J) {
		t.Error("j observed")
	}
}

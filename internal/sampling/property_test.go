package sampling

import (
	"math"
	"testing"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// Distributional property tests: rather than spot-checking a few draws,
// these compare large empirical samples against the exact target
// distribution with a chi-square goodness-of-fit test. Seeds are fixed,
// so each test is deterministic; the α = 0.001 rejection level means a
// correct sampler at a different seed would flake one run in a thousand,
// while a broken one fails with p ≈ 0.

const gofAlpha = 1e-3

// TestAliasChiSquareGOF draws from a Walker alias table over a skewed
// weight vector and requires the empirical counts to fit the weights.
func TestAliasChiSquareGOF(t *testing.T) {
	t.Parallel()
	weights := []float64{8, 5, 3, 2, 1, 1, 0.5, 0.25}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	const n = 200000
	rng := mathx.NewRNG(17)
	observed := make([]float64, len(weights))
	for i := 0; i < n; i++ {
		observed[a.Sample(rng)]++
	}
	expected := make([]float64, len(weights))
	for i, w := range weights {
		expected[i] = n * w / sum
	}
	res, err := mathx.ChiSquareGOF(observed, expected)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("alias GOF: chi2 = %.2f, df = %.0f, p = %.4f", res.Stat, res.DF, res.P)
	if res.P < gofAlpha {
		t.Errorf("alias draws do not fit weights: chi2 = %.2f, p = %.2e", res.Stat, res.P)
	}
}

// TestDSSNegativeRankGeometric verifies the §5.2 claim directly: the
// unobserved item j is drawn from a geometric distribution over ranking
// positions, truncated to the list and conditioned on skipping the
// user's observed items. With the fixture's fixed item scores the
// ranking list is known, so the exact target pmf over ranks is
// computable and chi-square testable.
func TestDSSNegativeRankGeometric(t *testing.T) {
	t.Parallel()
	d, m := fixture(t)
	s, err := NewTripleSampler(TripleConfig{Strategy: DSS, Objective: MAP}, d, m, mathx.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	const u = int32(0)
	order := s.orders[0] // items by descending factor-0 value
	nItems := len(order)
	p := s.geomP

	// Exact target: rank r gets geometric mass p(1−p)^r if the item at r
	// is unobserved for u, zero otherwise; renormalized (the rejection
	// loop resamples i.i.d. on hitting a positive, and the 64-try uniform
	// fallbacks have probability ~1e-149 here).
	mass := make([]float64, nItems)
	var total float64
	for r, item := range order {
		if !d.IsPositive(u, item) {
			mass[r] = p * math.Pow(1-p, float64(r))
			total += mass[r]
		}
	}

	const n = 100000
	counts := make([]float64, nItems)
	for i := 0; i < n; i++ {
		j := s.rankedJ(u, 0, true)
		if d.IsPositive(u, j) {
			t.Fatalf("rankedJ returned observed item %d", j)
		}
		counts[s.pos[0][j]]++
	}

	// Bin head ranks individually and merge the geometric tail so every
	// expected count stays well above the chi-square approximation's
	// comfort zone (≥ ~8 here).
	var observed, expected []float64
	var tailObs, tailExp float64
	for r := 0; r < nItems; r++ {
		if mass[r] == 0 {
			if counts[r] != 0 {
				t.Fatalf("rank %d is observed for user %d yet drawn %v times", r, u, counts[r])
			}
			continue
		}
		exp := n * mass[r] / total
		if exp >= 8 && tailExp == 0 {
			observed = append(observed, counts[r])
			expected = append(expected, exp)
		} else {
			tailObs += counts[r]
			tailExp += exp
		}
	}
	if tailExp >= 8 {
		observed = append(observed, tailObs)
		expected = append(expected, tailExp)
	} else if tailExp > 0 {
		// Too thin for its own bin: fold into the last head bin.
		observed[len(observed)-1] += tailObs
		expected[len(expected)-1] += tailExp
	}

	res, err := mathx.ChiSquareGOF(observed, expected)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("DSS rank GOF: %d bins, chi2 = %.2f, p = %.4f", len(observed), res.Stat, res.P)
	if res.P < gofAlpha {
		t.Errorf("negative draws do not fit the truncated geometric: chi2 = %.2f, df = %.0f, p = %.2e",
			res.Stat, res.DF, res.P)
	}
}

// TestGeometricCappedGOF pins the primitive underneath DSS: the capped
// geometric must match the truncated geometric pmf.
func TestGeometricCappedGOF(t *testing.T) {
	t.Parallel()
	const p, cap_, n = 0.2, 12, 150000
	rng := mathx.NewRNG(29)
	observed := make([]float64, cap_)
	for i := 0; i < n; i++ {
		observed[rng.GeometricCapped(p, cap_)]++
	}
	norm := 1 - math.Pow(1-p, cap_)
	expected := make([]float64, cap_)
	for g := 0; g < cap_; g++ {
		expected[g] = n * p * math.Pow(1-p, float64(g)) / norm
	}
	res, err := mathx.ChiSquareGOF(observed, expected)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < gofAlpha {
		t.Errorf("GeometricCapped does not fit truncated geometric: chi2 = %.2f, p = %.2e", res.Stat, res.P)
	}
}

// TestNoPositiveAsNegativeProperty is the randomized-dataset version of
// the triple invariants: across several generated corpora, every
// strategy × objective, and both sampling entry points, a drawn j must
// never be an observed item, and i/k always must be.
func TestNoPositiveAsNegativeProperty(t *testing.T) {
	t.Parallel()
	for seed := uint64(1); seed <= 3; seed++ {
		rng := mathx.NewRNG(seed)
		const nu, ni = 30, 50
		var pairs []dataset.Interaction
		for u := int32(0); u < nu; u++ {
			for c, deg := 0, 2+rng.Intn(12); c < deg; c++ {
				pairs = append(pairs, dataset.Interaction{User: u, Item: int32(rng.Intn(ni))})
			}
		}
		d, err := dataset.FromInteractions("prop", nu, ni, pairs)
		if err != nil {
			t.Fatal(err)
		}
		m := mf.MustNew(mf.Config{NumUsers: nu, NumItems: ni, Dim: 3, UseBias: false})
		m.InitGaussian(mathx.NewRNG(seed+100), 0.5)
		users := d.UsersWithAtLeast(1)
		for _, strat := range []Strategy{Uniform, DSS, PositiveOnly, NegativeOnly} {
			for _, obj := range []Objective{MAP, MRR} {
				s, err := NewTripleSampler(TripleConfig{Strategy: strat, Objective: obj}, d, m, mathx.NewRNG(seed+200))
				if err != nil {
					t.Fatalf("%v/%v: %v", strat, obj, err)
				}
				for n := 0; n < 3000; n++ {
					u := users[n%len(users)]
					checkTriple(t, d, u, s.Sample(u))
					obs := d.Positives(u)
					i := obs[n%len(obs)]
					tr := s.SampleWithI(u, i)
					if tr.I != i {
						t.Fatalf("SampleWithI ignored i: got %d, want %d", tr.I, i)
					}
					checkTriple(t, d, u, tr)
				}
			}
		}
	}
}

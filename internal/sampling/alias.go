// Package sampling implements the samplers of §5: the uniform baseline, the
// paper's Double Sampling Strategy (DSS) with its MAP and MRR variants, the
// Positive-only and Negative-only ablations of Figure 4, dynamic negative
// sampling (DNS) for the baselines, and a Walker alias table for
// popularity-weighted draws.
package sampling

import (
	"fmt"

	"clapf/internal/mathx"
)

// Alias is a Walker alias table: O(n) construction, O(1) weighted sampling.
// Popularity-weighted negative draws (MPR's "uncertain" item class) hit it
// once per SGD step, so constant-time sampling matters.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds a table for the given non-negative weights. At least one
// weight must be positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: empty weight vector")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sampling: negative weight %v at %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("sampling: all weights zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
		a.alias[i] = i
	}
	return a, nil
}

// Sample draws an index with probability proportional to its weight.
func (a *Alias) Sample(rng *mathx.RNG) int32 {
	i := int32(rng.Intn(len(a.prob)))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the number of categories.
func (a *Alias) Len() int { return len(a.prob) }

package feedback

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"clapf/internal/serve"
	"clapf/internal/store"
)

// bootCapped is boot with a tiny MaxUserExtras so the cap is reachable.
func bootCapped(t *testing.T, cap int) *pipeline {
	t.Helper()
	model, train := chaosFixture(t)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.clapf")
	if err := store.SaveFile(modelPath, model); err != nil {
		t.Fatal(err)
	}
	srvModel, _, err := store.LoadFileWithMeta(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(srvModel, train)
	if err != nil {
		t.Fatal(err)
	}
	wal, _, err := OpenWAL(filepath.Join(dir, "wal"), WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wal.Close() })
	ing := NewIngestor(wal, train, Config{MaxUserExtras: cap}, nil)
	ing.Bind(srv)
	if err := srv.EnableFeedback(ing); err != nil {
		t.Fatal(err)
	}
	return &pipeline{srv: srv, ing: ing, wal: wal}
}

// freshItems returns n items user u has NOT interacted with in training.
func freshItems(t *testing.T, p *pipeline, u int32, n int) []int32 {
	t.Helper()
	var out []int32
	for i := int32(0); i < int32(p.ing.train.NumItems()) && len(out) < n; i++ {
		if !p.ing.train.IsPositive(u, i) {
			out = append(out, i)
		}
	}
	if len(out) < n {
		t.Fatalf("user %d has fewer than %d fresh items", u, n)
	}
	return out
}

// Dedupe runs before the cap — the PR-4 fold-in fix applied to ingest:
// repeated events and training-known items never consume MaxUserExtras
// capacity, so a hot user's history is bounded by distinct new items,
// not by event volume.
func TestIngestDedupeBeforeCap(t *testing.T) {
	p := bootCapped(t, 3)
	ctx := context.Background()
	const u = int32(2)
	items := freshItems(t, p, u, 4)
	trainItem := p.ing.train.Positives(u)[0]

	// Ten duplicate events of the same fresh item: one slot consumed.
	for i := 0; i < 10; i++ {
		if _, _, err := p.ing.Ingest(ctx, u, items[0]); err != nil {
			t.Fatal(err)
		}
	}
	// Ten events of a training positive: zero slots consumed.
	for i := 0; i < 10; i++ {
		seq, applied, err := p.ing.Ingest(ctx, u, trainItem)
		if err != nil {
			t.Fatal(err)
		}
		if applied {
			t.Fatalf("seq %d: training-known item consumed capacity", seq)
		}
	}
	if got := p.ing.ExtraPositives(u); len(got) != 1 || got[0] != items[0] {
		t.Fatalf("extras = %v, want [%d]", got, items[0])
	}
	// Two more distinct items fit under the cap of 3...
	for _, it := range items[1:3] {
		if _, applied, err := p.ing.Ingest(ctx, u, it); err != nil || !applied {
			t.Fatalf("item %d: applied=%v err=%v, want applied", it, applied, err)
		}
	}
	// ...the fourth distinct item hits the cap: still durably acked
	// (seq advances), but not applied.
	seqBefore := p.wal.LastSeq()
	seq, applied, err := p.ing.Ingest(ctx, u, items[3])
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("event beyond MaxUserExtras was applied")
	}
	if seq != seqBefore+1 {
		t.Fatalf("capped event seq = %d, want %d (still durable)", seq, seqBefore+1)
	}
	got := p.ing.ExtraPositives(u)
	if len(got) != 3 {
		t.Fatalf("extras = %v, want exactly 3 (bounded growth)", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("extras not sorted/deduped: %v", got)
		}
	}
	// Re-sending an item already in extras while at cap is still a
	// dedupe hit, not a cap rejection for a *new* slot.
	if _, applied, err := p.ing.Ingest(ctx, u, items[1]); err != nil || applied {
		t.Fatalf("duplicate at cap: applied=%v err=%v, want no-op", applied, err)
	}
}

// A model trailer claiming more folded events than the log ever
// assigned means the model was exported against a different log; the
// watermark clamps to the log's own chain so fresh events still get
// overlay rows and promotion is not stalled.
func TestSetFoldedClampsToLogChain(t *testing.T) {
	p := bootCapped(t, 0)
	if got := p.ing.SetFolded(5); got != 0 {
		t.Fatalf("SetFolded(5) on empty log installed %d, want 0", got)
	}
	if _, applied, err := p.ing.Ingest(context.Background(), 1, freshItems(t, p, 1, 1)[0]); err != nil || !applied {
		t.Fatalf("post-clamp ingest: applied=%v err=%v, want applied", applied, err)
	}
	st := p.ing.Stats()
	if st.FoldedSeq != 0 || st.Pending != 1 || st.OverlayUsers != 1 {
		t.Fatalf("post-clamp stats = %+v, want folded 0, pending 1, overlay 1", st)
	}
	// A watermark the log can cover installs unclamped.
	if got := p.ing.SetFolded(1); got != 1 {
		t.Fatalf("SetFolded(1) with last_seq 1 installed %d, want 1", got)
	}
}

// End to end over HTTP: an ingested event excludes its item from the
// user's recommendations immediately (cache invalidated, exclusion set
// extended), and /healthz reports the pipeline.
func TestFeedbackHTTPIngestExcludesItem(t *testing.T) {
	p := bootCapped(t, 0) // 0 = default cap
	h := p.srv.Handler()
	const u = int32(1)

	topK := func() []int32 {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/recommend?user=%d&k=10", u), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("recommend = %d: %s", rec.Code, rec.Body.String())
		}
		var body struct {
			Items []struct {
				Item int32 `json:"item"`
			} `json:"items"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		out := make([]int32, len(body.Items))
		for i, it := range body.Items {
			out[i] = it.Item
		}
		return out
	}

	before := topK()
	target := before[0]
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/feedback",
		strings.NewReader(fmt.Sprintf(`{"user":%d,"item":%d}`, u, target)))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback = %d: %s", rec.Code, rec.Body.String())
	}
	var fr serve.FeedbackResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Seq != 1 || fr.Applied != 1 {
		t.Fatalf("feedback response = %+v, want seq 1 applied 1", fr)
	}
	for _, it := range topK() {
		if it == target {
			t.Fatalf("item %d still recommended after being ingested", target)
		}
	}

	// /healthz surfaces the pipeline counters.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health struct {
		Feedback *serve.FeedbackStats `json:"feedback"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Feedback == nil {
		t.Fatal("healthz has no feedback block")
	}
	if health.Feedback.LastSeq != 1 || health.Feedback.Pending != 1 || health.Feedback.OverlayUsers != 1 {
		t.Fatalf("healthz feedback = %+v", *health.Feedback)
	}
}

// The pipeline's counters land on the server's /metrics exposition when
// the ingestor is registered against the server registry, as
// cmd/clapf-serve wires it.
func TestFeedbackMetricsExposition(t *testing.T) {
	model, train := chaosFixture(t)
	dir := t.TempDir()
	srv, err := serve.New(model, train)
	if err != nil {
		t.Fatal(err)
	}
	fsync := srv.Registry().NewHistogram("clapf_feedback_fsync_seconds",
		"Feedback WAL fsync latency.", []float64{0.001, 0.01, 0.1})
	wal, _, err := OpenWAL(filepath.Join(dir, "wal"), WALConfig{FsyncSeconds: fsync})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	ing := NewIngestor(wal, train, Config{}, srv.Registry())
	ing.Bind(srv)
	if err := srv.EnableFeedback(ing); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ing.Ingest(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	prom, err := NewPromoter(ing, srv, PromoteConfig{ModelPath: filepath.Join(dir, "m.clapf")})
	if err != nil {
		t.Fatal(err)
	}
	if outcome, err := prom.PromoteOnce(); err != nil || outcome != PromoteOK {
		t.Fatalf("promotion = %q, %v", outcome, err)
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{
		"clapf_feedback_appends_total 1",
		"clapf_feedback_fsync_seconds_count",
		"clapf_feedback_replayed_total 0",
		"clapf_online_updates_total 1",
		`clapf_promotions_total{outcome="ok"} 1`,
		"clapf_online_update_rejected_total 0",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %q", name)
		}
	}
}

package feedback

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"clapf/internal/dataset"
	"clapf/internal/guard"
	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/serve"
)

// Config parameterizes an Ingestor. Zero values select defaults.
type Config struct {
	// FoldInReg is the ridge strength for online fold-in solves; it must
	// match the server's FoldInReg or overlay rows and promotion exports
	// would disagree. Default 0.1.
	FoldInReg float64
	// MaxUserExtras bounds how many distinct ingested items a user's
	// exclusion/fold-in history can grow by — the bounded-growth guarantee
	// for hot users. Dedupe runs before the cap: duplicate events (already
	// in the extras or in the training history) never consume capacity.
	// Events beyond the cap are still WAL-durable and acknowledged, but
	// not applied. Default 1024. Negative disables the bound.
	MaxUserExtras int
}

func (c Config) withDefaults() Config {
	if c.FoldInReg == 0 {
		c.FoldInReg = 0.1
	}
	if c.MaxUserExtras == 0 {
		c.MaxUserExtras = 1024
	}
	return c
}

// Ingestor is the serve-side streaming-feedback pipeline: it appends
// events to the WAL (durably, before acknowledging), maintains each
// user's ingested-item extras (deduped, sorted, bounded), and applies
// bounded online factor updates through the server's fold-in overlay. It
// implements serve.FeedbackSink.
type Ingestor struct {
	cfg   Config
	wal   *WAL
	train *dataset.Dataset

	// mu is the lock serve.FeedbackSink exposes: Ingest's record+apply
	// step and the server's RebuildOverlay+publish both run under it, so
	// a model swap can never lose an event's online update.
	mu      sync.Mutex
	extras  map[int32][]int32 // per-user ingested items, sorted, deduped
	lastSeq map[int32]uint64  // per-user highest applied event seq
	maxSeq  uint64            // highest seq recorded in extras
	folded  uint64            // promotion watermark: events <= folded are in the base

	srv *serve.Server // bound applier; nil until Bind

	appends    *obs.Counter
	replayed   *obs.Counter
	updates    *obs.Counter
	promotions *obs.CounterVec
	promMu     sync.Mutex
	promCounts map[string]uint64
}

// NewIngestor builds the pipeline over an opened WAL. Metrics are
// registered on reg (pass the server's Registry so they surface on its
// /metrics): clapf_feedback_appends_total, clapf_feedback_replayed_total,
// clapf_online_updates_total, clapf_promotions_total{outcome}; the WAL's
// fsync histogram (clapf_feedback_fsync_seconds) should be wired at
// OpenWAL time via WALConfig.FsyncSeconds.
func NewIngestor(wal *WAL, train *dataset.Dataset, cfg Config, reg *obs.Registry) *Ingestor {
	cfg = cfg.withDefaults()
	ing := &Ingestor{
		cfg:        cfg,
		wal:        wal,
		train:      train,
		extras:     make(map[int32][]int32),
		lastSeq:    make(map[int32]uint64),
		promCounts: make(map[string]uint64),
	}
	if reg != nil {
		ing.appends = reg.NewCounter("clapf_feedback_appends_total",
			"Feedback events durably appended to the WAL.")
		ing.replayed = reg.NewCounter("clapf_feedback_replayed_total",
			"Feedback events recovered from the WAL at startup.")
		ing.updates = reg.NewCounter("clapf_online_updates_total",
			"Online fold-in factor updates applied to the serving overlay.")
		ing.promotions = reg.NewCounterVec("clapf_promotions_total",
			"Feedback promotion attempts by outcome (ok, noop, fenced, error).", "outcome")
	}
	return ing
}

// Bind attaches the serving surface online updates apply to. Must be
// called before the first Ingest; kept separate from construction because
// the server's EnableFeedback needs the Ingestor first.
func (ing *Ingestor) Bind(srv *serve.Server) { ing.srv = srv }

// WAL exposes the underlying log (the promoter syncs and prunes it).
func (ing *Ingestor) WAL() *WAL { return ing.wal }

// Lock and Unlock expose the ingest/rebuild consistency lock to the
// server (see serve.FeedbackSink).
func (ing *Ingestor) Lock()   { ing.mu.Lock() }
func (ing *Ingestor) Unlock() { ing.mu.Unlock() }

// SetFolded seeds the promotion watermark from a loaded model file's
// FeedbackSeq before Replay. Not safe during concurrent ingest.
//
// The watermark is clamped to the log's recovered last sequence: a
// trailer claiming more events folded than the log has ever assigned
// means the model was exported against a *different* log (wrong
// -feedback-log directory, or a manually cleared one). Honoring the
// stale watermark would silently skip overlay rows and stall promotion
// until the fresh log's sequence numbers caught up; clamping restarts
// the watermark at the log's own chain. Returns the watermark actually
// installed so callers can log the mismatch.
func (ing *Ingestor) SetFolded(seq uint64) uint64 {
	if last := ing.wal.LastSeq(); seq > last {
		seq = last
	}
	ing.mu.Lock()
	ing.folded = seq
	ing.mu.Unlock()
	return seq
}

// Replay rebuilds the extras and per-user watermarks from every retained
// WAL event. Call once at startup, after SetFolded and before Bind'ing
// traffic: exclusion history is rebuilt from the whole log (an event
// already folded into the base model must still never be re-recommended),
// while the overlay rebuild that follows (serve.EnableFeedback →
// RebuildOverlay) re-solves only users with events beyond the watermark.
func (ing *Ingestor) Replay() (uint64, error) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	var n uint64
	err := ing.wal.Replay(func(ev Event) error {
		ing.recordLocked(ev.User, ev.Item, ev.Seq)
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	if ing.replayed != nil {
		ing.replayed.Add(n)
	}
	return n, nil
}

// recordLocked folds one event into the extras under ing.mu. Returns
// whether the event extended the user's history (false: duplicate, or the
// user is at cap). Dedupe runs before the cap in every path — against the
// training history first, then the extras — so repeats never consume
// capacity (the PR-4 fold-in dedupe fix, applied to ingest).
func (ing *Ingestor) recordLocked(u, item int32, seq uint64) bool {
	if seq > ing.maxSeq {
		ing.maxSeq = seq
	}
	if ing.lastSeq[u] < seq {
		ing.lastSeq[u] = seq
	}
	if ing.train.IsPositive(u, item) {
		return false
	}
	row := ing.extras[u]
	pos := sort.Search(len(row), func(k int) bool { return row[k] >= item })
	if pos < len(row) && row[pos] == item {
		return false
	}
	if ing.cfg.MaxUserExtras > 0 && len(row) >= ing.cfg.MaxUserExtras {
		return false
	}
	row = append(row, 0)
	copy(row[pos+1:], row[pos:])
	row[pos] = item
	ing.extras[u] = row
	return true
}

// Ingest implements serve.FeedbackSink: append durably, then record the
// event and apply its online update under the consistency lock. The
// acknowledgement (the return) happens only after the WAL fsync covering
// the event has completed — a crash after Ingest returns can never lose
// the event. The overlay update itself is applied before the durability
// wait resolves; on a crash in that window the event simply vanishes with
// the process, unacknowledged.
//
// The WAL append runs outside ing.mu: with SyncEvery <= 1 the fsync
// happens inside Begin, and holding the sink lock across it would gate
// every read-path ExtraPositives call — and model swaps — behind
// multi-millisecond disk flushes. Sequence assignment has the WAL's own
// lock, and recordLocked is order-independent, so concurrent ingests
// recording out of sequence order is harmless.
func (ing *Ingestor) Ingest(ctx context.Context, user, item int32) (uint64, bool, error) {
	if ing.srv == nil {
		return 0, false, fmt.Errorf("feedback: ingestor not bound to a server")
	}
	p, err := ing.wal.Begin(user, item, time.Now())
	if err != nil {
		return 0, false, err
	}
	ing.mu.Lock()
	applied := ing.recordLocked(user, item, p.Seq)
	if applied {
		merged := dataset.MergeSorted(ing.train.Positives(user), ing.extras[user])
		if uerr := ing.srv.UpdateUser(user, merged); uerr != nil {
			// The event is recorded and will be durable; the factor update
			// is refused (non-finite guard). The user keeps serving base
			// factors — but the exclusion set just grew, so any cached
			// top-K may still carry the ingested item. UpdateUser only
			// invalidates on success; drop the stale entries here.
			applied = false
			ing.srv.InvalidateUserCache(user)
		} else if ing.updates != nil {
			ing.updates.Inc()
		}
	}
	ing.mu.Unlock()
	if err := p.Wait(); err != nil {
		return 0, false, err
	}
	if ing.appends != nil {
		ing.appends.Inc()
	}
	return p.Seq, applied, nil
}

// ExtraPositives implements serve.FeedbackSink: a snapshot of user u's
// ingested items, sorted ascending.
func (ing *Ingestor) ExtraPositives(u int32) []int32 {
	ing.mu.Lock()
	row := ing.extras[u]
	if len(row) == 0 {
		ing.mu.Unlock()
		return nil
	}
	out := make([]int32, len(row))
	copy(out, row)
	ing.mu.Unlock()
	return out
}

// RebuildOverlay implements serve.FeedbackSink: build the online-update
// overlay for a new base parameter set, re-solving fold-in factors for
// every user with events beyond the folded watermark. Users whose events
// are all at or below the watermark are already baked into base and score
// from it directly. Called by the server with the consistency lock held
// (see serve.FeedbackSink) — it must not lock ing.mu itself.
func (ing *Ingestor) RebuildOverlay(base mf.Params, folded uint64) (*mf.Overlay, error) {
	if folded != serve.KeepFoldedSeq {
		ing.folded = folded
	}
	ov := mf.NewOverlay(base)
	for u, last := range ing.lastSeq {
		if last <= ing.folded {
			continue
		}
		merged := dataset.MergeSorted(ing.train.Positives(u), ing.extras[u])
		if len(merged) == 0 {
			continue
		}
		vec, err := mf.FoldInUser(base, merged, ing.cfg.FoldInReg)
		if err != nil {
			return nil, fmt.Errorf("feedback: re-solving user %d: %w", u, err)
		}
		if n := guard.ScanVector(vec); n > 0 {
			return nil, fmt.Errorf("feedback: re-solved factors for user %d carry %d non-finite entries", u, n)
		}
		if err := ov.Set(u, vec); err != nil {
			return nil, err
		}
	}
	return ov, nil
}

// snapshot returns the promotion view under the consistency lock: the
// high-water sequence number recorded in the extras and a copy of every
// user's merged (train + extras) history. Baking every user with extras —
// not only those below the watermark — is deliberate: fold-in is a pure
// function of the merged history, so over-baking is idempotent, and the
// watermark stays the conservative maxSeq recorded at snapshot time.
func (ing *Ingestor) snapshot() (seq uint64, users map[int32][]int32) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	users = make(map[int32][]int32, len(ing.extras))
	for u, row := range ing.extras {
		merged := dataset.MergeSorted(ing.train.Positives(u), row)
		cp := make([]int32, len(merged))
		copy(cp, merged)
		users[u] = cp
	}
	return ing.maxSeq, users
}

// Folded returns the current promotion watermark.
func (ing *Ingestor) Folded() uint64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.folded
}

func (ing *Ingestor) countPromotion(outcome string) {
	if ing.promotions != nil {
		ing.promotions.With(outcome).Inc()
	}
	ing.promMu.Lock()
	ing.promCounts[outcome]++
	ing.promMu.Unlock()
}

// Stats implements serve.FeedbackSink.
func (ing *Ingestor) Stats() serve.FeedbackStats {
	ing.mu.Lock()
	maxSeq, folded := ing.maxSeq, ing.folded
	overlayUsers := 0
	for _, last := range ing.lastSeq {
		if last > folded {
			overlayUsers++
		}
	}
	ing.mu.Unlock()
	st := serve.FeedbackStats{
		LastSeq:      maxSeq,
		FoldedSeq:    folded,
		OverlayUsers: overlayUsers,
		Segments:     ing.wal.Segments(),
	}
	if maxSeq > folded {
		st.Pending = maxSeq - folded
	}
	if ing.appends != nil {
		st.Appends = ing.appends.Value()
		st.Replayed = ing.replayed.Value()
		st.OnlineUpdates = ing.updates.Value()
	}
	ing.promMu.Lock()
	if len(ing.promCounts) > 0 {
		st.Promotions = make(map[string]uint64, len(ing.promCounts))
		for k, n := range ing.promCounts {
			st.Promotions[k] = n
		}
	}
	ing.promMu.Unlock()
	return st
}

var _ serve.FeedbackSink = (*Ingestor)(nil)

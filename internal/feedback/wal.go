// Package feedback implements the crash-safe streaming-ingest pipeline:
// a segmented append-only write-ahead log for feedback events, an
// ingestor that folds acknowledged events into bounded online
// user-factor updates, and a promoter that periodically bakes the
// accumulated log into a re-exported model promoted through the serving
// stack's atomic hot-reload path.
//
// The durability contract is the package's headline property: an event is
// acknowledged only after its WAL frame is fsync'd, so a crash at any
// point loses only unacknowledged events. Recovery truncates a torn tail
// in the final segment (bytes a crash can legitimately leave behind) and
// refuses corruption anywhere the log was already durable.
package feedback

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"clapf/internal/obs"
)

// Event is one feedback observation: user u interacted with item i. Seq
// is the WAL-assigned sequence number (strictly increasing by 1 within a
// log); UnixNano records arrival time for operational forensics only —
// no recovery decision depends on it.
type Event struct {
	Seq      uint64
	User     int32
	Item     int32
	UnixNano int64
}

// Segment file layout:
//
//	header:  magic "CLAPFWAL" | version u32 | firstSeq u64 | crc32 u32
//	frames:  repeat { payloadLen u32 | crc32(payload) u32 | payload }
//	payload: seq u64 | user i32 | item i32 | unixNano i64   (24 bytes)
//
// All integers little-endian. The frame CRC covers only the payload; a
// corrupted length either lands on a CRC mismatch (garbage payload) or is
// rejected outright (> maxPayload), so both fields are effectively
// covered. Segment files are named wal-<firstSeq, 20 decimal digits>.seg
// so a directory listing sorts them into log order.
const (
	walMagic      = "CLAPFWAL"
	walVersion    = 1
	headerSize    = 8 + 4 + 8 + 4
	frameOverhead = 4 + 4
	payloadSize   = 8 + 4 + 4 + 8
	maxPayload    = 1 << 16
)

// WALConfig parameterizes a log. The zero value of every field selects
// the default.
type WALConfig struct {
	// SegmentBytes is the rotation threshold: a segment that reaches this
	// size is sealed and a new one started. Default 64 MiB.
	SegmentBytes int64
	// SyncEvery batches fsyncs: the log syncs after this many appended
	// frames. <= 1 syncs on every append (lowest latency, lowest
	// throughput); larger values group-commit, and appenders block until
	// the covering sync lands. Default 1.
	SyncEvery int
	// SyncInterval bounds how long a batched append waits for its group
	// fsync when the batch does not fill: a background flusher syncs any
	// pending frames at this cadence. Default 5ms. Only used when
	// SyncEvery > 1.
	SyncInterval time.Duration
	// FsyncSeconds, when set, observes the duration of every fsync —
	// wired to clapf_feedback_fsync_seconds.
	FsyncSeconds *obs.Histogram
	// Logger receives recovery and rotation diagnostics; nil discards.
	Logger *slog.Logger
}

func (c WALConfig) withDefaults() WALConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.SegmentBytes < headerSize+frameOverhead+payloadSize {
		c.SegmentBytes = headerSize + frameOverhead + payloadSize
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 1
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 5 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// RecoveryInfo reports what OpenWAL found and repaired.
type RecoveryInfo struct {
	// Events is the number of valid records in the log.
	Events uint64
	// LastSeq is the highest durable sequence number (0 when empty).
	LastSeq uint64
	// Segments is the number of live segment files.
	Segments int
	// TruncatedBytes is how many torn-tail bytes were cut from the final
	// segment; 0 means the log closed cleanly.
	TruncatedBytes int64
	// DroppedSegment names a final segment discarded whole because its
	// header never became durable; "" otherwise.
	DroppedSegment string
}

// WAL is a segmented append-only log. Append assigns sequence numbers
// under an internal lock and group-commits fsyncs; an append is durable —
// and its Pending.Wait returns — only after a covering fsync.
type WAL struct {
	dir string
	cfg WALConfig

	mu       sync.Mutex
	f        *os.File
	size     int64 // bytes written to the active segment
	segFirst uint64
	seq      uint64 // last assigned sequence number
	durable  uint64 // last fsync-covered sequence number
	pending  int    // frames appended since the last sync
	batch    chan struct{}
	err      error // sticky: a failed fsync poisons the log
	closed   bool

	stopFlusher chan struct{}
	flusherDone chan struct{}
}

// OpenWAL opens (creating if needed) the log in dir, runs recovery, and
// positions the log for appending. Recovery scans every segment in order,
// verifies frame CRCs and sequence continuity, truncates the final
// segment at the first invalid frame (a torn tail), and refuses — with an
// error — corruption in any sealed segment, which was durable and can
// only mean real data damage.
func OpenWAL(dir string, cfg WALConfig) (*WAL, RecoveryInfo, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("feedback: %w", err)
	}
	w := &WAL{dir: dir, cfg: cfg, batch: make(chan struct{})}
	info, err := w.recover()
	if err != nil {
		return nil, info, err
	}
	w.seq = info.LastSeq
	w.durable = info.LastSeq
	if cfg.SyncEvery > 1 {
		w.stopFlusher = make(chan struct{})
		w.flusherDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, info, nil
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%020d.seg", firstSeq)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// segmentFiles lists the live segments sorted by first sequence number.
func (w *WAL) segmentFiles() ([]string, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("feedback: %w", err)
	}
	var segs []string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok && !e.IsDir() {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs) // zero-padded names sort numerically
	return segs, nil
}

func encodeHeader(firstSeq uint64) []byte {
	buf := make([]byte, headerSize)
	copy(buf, walMagic)
	binary.LittleEndian.PutUint32(buf[8:], walVersion)
	binary.LittleEndian.PutUint64(buf[12:], firstSeq)
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[:20]))
	return buf
}

func decodeHeader(buf []byte) (firstSeq uint64, err error) {
	if len(buf) < headerSize {
		return 0, fmt.Errorf("feedback: segment header truncated (%d bytes)", len(buf))
	}
	if string(buf[:8]) != walMagic {
		return 0, fmt.Errorf("feedback: bad segment magic")
	}
	if got, want := crc32.ChecksumIEEE(buf[:20]), binary.LittleEndian.Uint32(buf[20:]); got != want {
		return 0, fmt.Errorf("feedback: segment header CRC mismatch")
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != walVersion {
		return 0, fmt.Errorf("feedback: segment version %d, want %d", v, walVersion)
	}
	return binary.LittleEndian.Uint64(buf[12:]), nil
}

func encodeFrame(buf []byte, ev Event) []byte {
	var payload [payloadSize]byte
	binary.LittleEndian.PutUint64(payload[0:], ev.Seq)
	binary.LittleEndian.PutUint32(payload[8:], uint32(ev.User))
	binary.LittleEndian.PutUint32(payload[12:], uint32(ev.Item))
	binary.LittleEndian.PutUint64(payload[16:], uint64(ev.UnixNano))
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:], payloadSize)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload[:]))
	buf = append(buf, hdr[:]...)
	return append(buf, payload[:]...)
}

// decodeFrames scans a segment body (everything after the header) and
// returns the events of every valid frame plus the number of bytes
// consumed. Scanning stops — without error — at the first frame that is
// truncated, oversized, or fails its CRC: the caller decides whether the
// remainder is a legitimate torn tail or refusable corruption. This is
// the function FuzzReplay drives.
func decodeFrames(body []byte) (events []Event, consumed int) {
	off := 0
	for {
		if len(body)-off < frameOverhead {
			return events, off
		}
		plen := int(binary.LittleEndian.Uint32(body[off:]))
		if plen != payloadSize || plen > maxPayload {
			// Future versions may vary payload size; v1 rejects anything
			// else, which also catches corrupted lengths early.
			return events, off
		}
		if len(body)-off-frameOverhead < plen {
			return events, off
		}
		payload := body[off+frameOverhead : off+frameOverhead+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(body[off+4:]) {
			return events, off
		}
		events = append(events, Event{
			Seq:      binary.LittleEndian.Uint64(payload[0:]),
			User:     int32(binary.LittleEndian.Uint32(payload[8:])),
			Item:     int32(binary.LittleEndian.Uint32(payload[12:])),
			UnixNano: int64(binary.LittleEndian.Uint64(payload[16:])),
		})
		off += frameOverhead + plen
	}
}

// recover scans the log, repairs the tail, and opens the final segment
// for appending. Called once from OpenWAL with no concurrency.
func (w *WAL) recover() (RecoveryInfo, error) {
	var info RecoveryInfo
	segs, err := w.segmentFiles()
	if err != nil {
		return info, err
	}
	var lastSeq uint64
	expectNext := uint64(0) // 0 = accept any first seq (head may be pruned)
	for idx, name := range segs {
		last := idx == len(segs)-1
		path := filepath.Join(w.dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			return info, fmt.Errorf("feedback: %w", err)
		}
		firstSeq, herr := decodeHeader(raw)
		if herr != nil {
			if !last {
				return info, fmt.Errorf("feedback: sealed segment %s: %w", name, herr)
			}
			// The final segment's header never reached disk intact: the
			// crash hit before its first group fsync, so nothing in it was
			// acknowledged. Drop the whole file.
			if err := os.Remove(path); err != nil {
				return info, fmt.Errorf("feedback: drop torn segment: %w", err)
			}
			if err := syncDir(w.dir); err != nil {
				return info, err
			}
			info.DroppedSegment = name
			w.cfg.Logger.Warn("feedback: dropped final segment with torn header",
				"segment", name, "err", herr)
			break
		}
		nameSeq, _ := parseSegmentName(name)
		if firstSeq != nameSeq {
			return info, fmt.Errorf("feedback: segment %s header claims first seq %d", name, firstSeq)
		}
		if expectNext != 0 && firstSeq != expectNext {
			return info, fmt.Errorf("feedback: segment %s starts at seq %d, want %d (gap in log)",
				name, firstSeq, expectNext)
		}
		events, consumed := decodeFrames(raw[headerSize:])
		// Verify sequence continuity inside the segment.
		for i, ev := range events {
			want := firstSeq + uint64(i)
			if ev.Seq != want {
				if !last {
					return info, fmt.Errorf("feedback: sealed segment %s: frame %d has seq %d, want %d",
						name, i, ev.Seq, want)
				}
				// Treat the discontinuity like a torn frame: cut here.
				events = events[:i]
				consumed = i * (frameOverhead + payloadSize)
				break
			}
		}
		tail := int64(len(raw)) - int64(headerSize) - int64(consumed)
		if tail > 0 {
			if !last {
				return info, fmt.Errorf("feedback: sealed segment %s has %d bytes of corruption at offset %d",
					name, tail, headerSize+consumed)
			}
			// Torn tail in the final segment: everything past the last
			// valid frame was never acknowledged. Truncate durably.
			if err := os.Truncate(path, int64(headerSize+consumed)); err != nil {
				return info, fmt.Errorf("feedback: truncate torn tail: %w", err)
			}
			if err := fsyncPath(path); err != nil {
				return info, err
			}
			info.TruncatedBytes = tail
			w.cfg.Logger.Warn("feedback: truncated torn WAL tail",
				"segment", name, "bytes", tail, "offset", headerSize+consumed)
		}
		info.Events += uint64(len(events))
		// A valid header pins the sequence chain even when the segment is
		// empty (a rotation crash after the header sync): it promises the
		// next record will be firstSeq, so every lower sequence number has
		// already been assigned. Deriving lastSeq only from decoded frames
		// would restart an empty log whose predecessors were pruned at
		// seq 0 — new appends would then contradict the active segment's
		// header and the NEXT recovery would discard them, acknowledged,
		// as a torn tail.
		if end := firstSeq - 1 + uint64(len(events)); end > lastSeq {
			lastSeq = end
		}
		expectNext = firstSeq + uint64(len(events))
		info.Segments++
	}
	info.LastSeq = lastSeq
	// Open (or create) the active segment.
	segs, err = w.segmentFiles()
	if err != nil {
		return info, err
	}
	if len(segs) == 0 {
		if err := w.openSegment(lastSeq + 1); err != nil {
			return info, err
		}
		info.Segments = 1
		return info, nil
	}
	name := segs[len(segs)-1]
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return info, fmt.Errorf("feedback: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return info, fmt.Errorf("feedback: %w", err)
	}
	w.f, w.size = f, st.Size()
	w.segFirst, _ = parseSegmentName(name)
	return info, nil
}

// openSegment creates a fresh segment whose first record will be firstSeq
// and makes its header and directory entry durable. Caller holds w.mu (or
// is in single-threaded recovery).
func (w *WAL) openSegment(firstSeq uint64) error {
	path := filepath.Join(w.dir, segmentName(firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: %w", err)
	}
	if _, err := f.Write(encodeHeader(firstSeq)); err != nil {
		f.Close()
		return fmt.Errorf("feedback: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("feedback: fsync %s: %w", path, err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.size, w.segFirst = f, headerSize, firstSeq
	return nil
}

// Pending is an in-flight append: the frame is buffered (and sequence
// number assigned) but possibly not yet durable.
type Pending struct {
	Seq uint64
	w   *WAL
}

// Append writes one event and returns once it is durable — the
// convenience wrapper around Begin + Wait.
func (w *WAL) Append(user, item int32, t time.Time) (uint64, error) {
	p, err := w.Begin(user, item, t)
	if err != nil {
		return 0, err
	}
	return p.Seq, p.Wait()
}

// Begin assigns the next sequence number and buffers the frame, rotating
// the segment first if the active one is full. The event is NOT durable
// until Wait returns; callers that ack externally must Wait first.
func (w *WAL) Begin(user, item int32, t time.Time) (Pending, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return Pending{}, fmt.Errorf("feedback: log is closed")
	}
	if w.err != nil {
		return Pending{}, w.err
	}
	next := w.seq + 1
	if w.size+frameOverhead+payloadSize > w.cfg.SegmentBytes && w.size > headerSize {
		if err := w.rotateLocked(next); err != nil {
			w.err = err
			return Pending{}, err
		}
	}
	ev := Event{Seq: next, User: user, Item: item, UnixNano: t.UnixNano()}
	frame := encodeFrame(make([]byte, 0, frameOverhead+payloadSize), ev)
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("feedback: %w", err)
		return Pending{}, w.err
	}
	w.seq = next
	w.size += int64(len(frame))
	w.pending++
	if w.cfg.SyncEvery <= 1 || w.pending >= w.cfg.SyncEvery {
		if err := w.syncLocked(); err != nil {
			return Pending{}, err
		}
	}
	return Pending{Seq: next, w: w}, nil
}

// Wait blocks until the append is fsync-covered (or the log fails).
func (p Pending) Wait() error {
	w := p.w
	for {
		w.mu.Lock()
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		if w.durable >= p.Seq {
			w.mu.Unlock()
			return nil
		}
		ch := w.batch
		w.mu.Unlock()
		<-ch
	}
}

// syncLocked flushes the OS buffer to stable storage and wakes every
// waiter of the covered batch. Caller holds w.mu.
func (w *WAL) syncLocked() error {
	if w.pending == 0 && w.durable == w.seq {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("feedback: fsync: %w", err)
		close(w.batch)
		w.batch = make(chan struct{})
		return w.err
	}
	if w.cfg.FsyncSeconds != nil {
		w.cfg.FsyncSeconds.Observe(time.Since(start).Seconds())
	}
	w.durable = w.seq
	w.pending = 0
	close(w.batch)
	w.batch = make(chan struct{})
	return nil
}

// Sync forces any buffered frames to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("feedback: log is closed")
	}
	if w.err != nil {
		return w.err
	}
	return w.syncLocked()
}

// rotateLocked seals the active segment and starts the next one at
// firstSeq. The old segment is fully synced before the new file's header
// and directory entry are made durable, so recovery sees either the
// sealed old segment alone or both — never a gap.
func (w *WAL) rotateLocked(firstSeq uint64) error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("feedback: %w", err)
	}
	old := w.segFirst
	if err := w.openSegment(firstSeq); err != nil {
		return err
	}
	w.cfg.Logger.Info("feedback: rotated WAL segment",
		"sealed", segmentName(old), "active", segmentName(firstSeq))
	return nil
}

func (w *WAL) flushLoop() {
	defer close(w.flusherDone)
	t := time.NewTicker(w.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopFlusher:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.err == nil && w.pending > 0 {
				w.syncLocked() // sticky error surfaces to waiters
			}
			w.mu.Unlock()
		}
	}
}

// LastSeq returns the last assigned sequence number.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Segments reports the number of live segment files.
func (w *WAL) Segments() int {
	segs, err := w.segmentFiles()
	if err != nil {
		return 0
	}
	return len(segs)
}

// Replay streams every durable event in log order. Call before concurrent
// appends start (startup) — buffered-but-unsynced frames are flushed
// first so the scan is complete.
func (w *WAL) Replay(fn func(Event) error) error {
	w.mu.Lock()
	if !w.closed && w.err == nil {
		if err := w.syncLocked(); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	w.mu.Unlock()
	segs, err := w.segmentFiles()
	if err != nil {
		return err
	}
	for _, name := range segs {
		raw, err := os.ReadFile(filepath.Join(w.dir, name))
		if err != nil {
			return fmt.Errorf("feedback: %w", err)
		}
		if _, err := decodeHeader(raw); err != nil {
			return fmt.Errorf("feedback: segment %s: %w", name, err)
		}
		events, _ := decodeFrames(raw[headerSize:])
		for _, ev := range events {
			if err := fn(ev); err != nil {
				return err
			}
		}
	}
	return nil
}

// PruneTo removes sealed segments every record of which has sequence
// number <= seq. The active segment is never pruned. Pruning trims the
// log's disk footprint after promotion but also forgets the pruned
// events' contribution to exclusion history on a cold restart — callers
// opt in explicitly.
func (w *WAL) PruneTo(seq uint64) (removed int, err error) {
	w.mu.Lock()
	active := w.segFirst
	w.mu.Unlock()
	segs, err := w.segmentFiles()
	if err != nil {
		return 0, err
	}
	for i, name := range segs {
		first, _ := parseSegmentName(name)
		if first == active || i == len(segs)-1 {
			break
		}
		next, _ := parseSegmentName(segs[i+1])
		if next-1 > seq { // segment holds records beyond the watermark
			break
		}
		if err := os.Remove(filepath.Join(w.dir, name)); err != nil {
			return removed, fmt.Errorf("feedback: prune: %w", err)
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(w.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close syncs any pending frames and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.err == nil {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("feedback: %w", cerr)
	}
	w.mu.Unlock()
	if w.stopFlusher != nil {
		close(w.stopFlusher)
		<-w.flusherDone
	}
	return err
}

func fsyncPath(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("feedback: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("feedback: fsync %s: %w", path, err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("feedback: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return fmt.Errorf("feedback: fsync dir %s: %w", dir, err)
	}
	return nil
}

var _ io.Closer = (*WAL)(nil)

package feedback

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"clapf/internal/guard"
	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/serve"
	"clapf/internal/store"
)

// Promotion outcomes — the label values of clapf_promotions_total.
const (
	// PromoteOK: a new generation with the folded log went live.
	PromoteOK = "ok"
	// PromoteNoop: no events beyond the watermark; nothing to do.
	PromoteNoop = "noop"
	// PromoteFenced: another swap (operator SIGHUP, admin reload) won the
	// race between export and promote; the stale export was not promoted
	// and the old — well, the *other* — generation keeps serving.
	PromoteFenced = "fenced"
	// PromoteError: export or swap failed; the old generation keeps
	// serving and the WAL keeps accumulating.
	PromoteError = "error"
)

// PromoteConfig parameterizes the background promotion loop.
type PromoteConfig struct {
	// Interval between promotion attempts. Default 30s.
	Interval time.Duration
	// ModelPath is the export target — the same path cmd/clapf-serve
	// loads and reloads from, so the on-disk artifact and the serving
	// generation advance together and a post-crash restart finds the
	// promoted factors with their FeedbackSeq watermark.
	ModelPath string
	// Prune removes WAL segments fully below the watermark after a
	// successful promotion. Off by default: retained segments are what
	// rebuilds ingested-item exclusion history on a cold restart, so
	// pruning trades disk for forgetting old exclusions.
	Prune bool
	// Logger receives promotion diagnostics; nil discards.
	Logger *slog.Logger
}

// Promoter periodically folds the accumulated feedback log into a
// re-exported model and promotes it through the server's atomic hot-swap
// with generation fencing.
//
// The promotion state machine, in order, with the crash story at each
// edge (every state recovers to consistency because acknowledged events
// are always durable in the WAL and the model file carries the watermark
// of what it has absorbed):
//
//	snapshot  — capture (S, merged histories) under the ingest lock.
//	sync      — force the WAL durable through S (normally a no-op: acks
//	            already waited).
//	export    — clone the base model, re-solve each touched user's
//	            factors, write atomically with Meta.FeedbackSeq = S.
//	            Crash before/during: old file + old watermark remain;
//	            restart replays everything it needs. Crash after: new
//	            file claims S; restart replays only seq > S — factors
//	            identical either way (fold-in is a pure function of the
//	            merged history).
//	fence     — abort unless the server generation still equals the one
//	            the export was computed against.
//	promote   — SwapParamsFenced(clone, S, gen): rebuilds the overlay
//	            (users fully at or below S drop out; later events
//	            re-solve), bumps the generation. Failure or fence leaves
//	            the previous generation serving untouched.
//	prune     — optionally drop WAL segments fully below S.
type Promoter struct {
	ing *Ingestor
	srv *serve.Server
	cfg PromoteConfig
}

// NewPromoter wires a promoter; cfg.ModelPath must be set.
func NewPromoter(ing *Ingestor, srv *serve.Server, cfg PromoteConfig) (*Promoter, error) {
	if cfg.ModelPath == "" {
		return nil, fmt.Errorf("feedback: promoter needs a model path")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	return &Promoter{ing: ing, srv: srv, cfg: cfg}, nil
}

// Run executes the promotion loop until ctx is canceled. Each attempt's
// outcome is counted in clapf_promotions_total; errors are logged and the
// loop continues — a failed promotion never stops serving, and the next
// tick retries with a fresh snapshot.
func (p *Promoter) Run(ctx context.Context) {
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			outcome, err := p.PromoteOnce()
			if err != nil {
				p.cfg.Logger.Error("feedback: promotion failed; previous generation keeps serving",
					"outcome", outcome, "err", err)
			} else if outcome == PromoteOK {
				p.cfg.Logger.Info("feedback: promoted folded model",
					"generation", p.srv.Generation(), "watermark", p.ing.Folded())
			}
		}
	}
}

// PromoteOnce runs a single promotion attempt and returns its outcome.
func (p *Promoter) PromoteOnce() (string, error) {
	outcome, err := p.promote()
	p.ing.countPromotion(outcome)
	return outcome, err
}

func (p *Promoter) promote() (string, error) {
	gen := p.srv.Generation()
	base := p.srv.Model()
	if base == nil {
		return PromoteError, fmt.Errorf("feedback: promotion needs a float64 base model (mmap/float32 serving cannot re-export)")
	}
	seq, users := p.ing.snapshot()
	if seq <= p.ing.Folded() {
		return PromoteNoop, nil
	}
	// Everything the export bakes must be durable before the watermarked
	// file can exist: a model claiming seq S while the WAL could lose an
	// event <= S would break replay coverage.
	if err := p.ing.WAL().Sync(); err != nil {
		return PromoteError, err
	}
	clone := base.Clone()
	for u, merged := range users {
		vec, err := mf.FoldInUser(base, merged, p.ing.cfg.FoldInReg)
		if err != nil {
			return PromoteError, fmt.Errorf("feedback: folding user %d: %w", u, err)
		}
		if n := guard.ScanVector(vec); n > 0 {
			return PromoteError, fmt.Errorf("feedback: folded factors for user %d carry %d non-finite entries", u, n)
		}
		copy(clone.UserFactors(u), vec)
	}
	if err := store.SaveFileWithMeta(p.cfg.ModelPath, clone, &store.Meta{FeedbackSeq: seq}); err != nil {
		return PromoteError, err
	}
	err := p.srv.SwapParamsFenced(clone, seq, gen)
	if errors.Is(err, serve.ErrGenerationFenced) {
		// Another reload won between export and promote. The exported
		// file is stale relative to the new generation's base; the next
		// tick re-exports against it. Nothing was swapped.
		return PromoteFenced, nil
	}
	if err != nil {
		return PromoteError, err
	}
	if p.cfg.Prune {
		if removed, perr := p.ing.WAL().PruneTo(seq); perr != nil {
			p.cfg.Logger.Warn("feedback: pruning WAL after promotion failed", "err", perr)
		} else if removed > 0 {
			p.cfg.Logger.Info("feedback: pruned folded WAL segments", "removed", removed, "watermark", seq)
		}
	}
	return PromoteOK, nil
}

package feedback

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"clapf/internal/guard"
	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/serve"
	"clapf/internal/store"
)

// Promotion outcomes — the label values of clapf_promotions_total.
const (
	// PromoteOK: a new generation with the folded log went live.
	PromoteOK = "ok"
	// PromoteNoop: no events beyond the watermark; nothing to do.
	PromoteNoop = "noop"
	// PromoteFenced: another swap (operator SIGHUP, admin reload) won the
	// race between export and promote; the stale export was discarded —
	// never written to the model path — and the old — well, the *other* —
	// generation keeps serving.
	PromoteFenced = "fenced"
	// PromoteError: export, swap, or post-swap publish failed. On an
	// export or swap failure the old generation keeps serving; on a
	// publish failure the promoted generation is live but the on-disk
	// model lags, which WAL replay covers on restart. Either way the WAL
	// keeps accumulating (the watermark file was not pruned).
	PromoteError = "error"
)

// PromoteConfig parameterizes the background promotion loop.
type PromoteConfig struct {
	// Interval between promotion attempts. Default 30s.
	Interval time.Duration
	// ModelPath is the export target — the same path cmd/clapf-serve
	// loads and reloads from, so the on-disk artifact and the serving
	// generation advance together and a post-crash restart finds the
	// promoted factors with their FeedbackSeq watermark.
	ModelPath string
	// Prune removes WAL segments fully below the watermark after a
	// successful promotion. Off by default: retained segments are what
	// rebuilds ingested-item exclusion history on a cold restart, so
	// pruning trades disk for forgetting old exclusions.
	Prune bool
	// Logger receives promotion diagnostics; nil discards.
	Logger *slog.Logger
}

// Promoter periodically folds the accumulated feedback log into a
// re-exported model and promotes it through the server's atomic hot-swap
// with generation fencing.
//
// The promotion state machine, in order, with the crash story at each
// edge (every state recovers to consistency because acknowledged events
// are always durable in the WAL and the model file carries the watermark
// of what it has absorbed):
//
//	snapshot  — capture (S, merged histories) under the ingest lock.
//	sync      — force the WAL durable through S (normally a no-op: acks
//	            already waited).
//	export    — clone the base model, re-solve each touched user's
//	            factors, write to a temp file beside ModelPath with
//	            Meta.FeedbackSeq = S. The shared model path is NOT
//	            touched yet: an operator may be deploying a new trained
//	            model to it right now, and an export folded from the old
//	            base must never clobber that. Crash before/during: old
//	            file + old watermark remain; restart replays everything
//	            it needs.
//	promote   — SwapParamsFenced(clone, S, gen): under the swap lock,
//	            abort unless the server generation still equals the one
//	            the export was computed against; otherwise rebuild the
//	            overlay (users fully at or below S drop out; later
//	            events re-solve) and bump the generation. Failure or
//	            fence leaves the previous generation serving untouched
//	            and discards the temp export.
//	publish   — rename the temp export onto ModelPath, after re-checking
//	            that no further swap superseded ours. Crash between
//	            promote and publish: the old file + old watermark
//	            remain; restart replays seq > old-watermark — factors
//	            identical (fold-in is a pure function of the merged
//	            history). Crash after: the new file claims S; restart
//	            replays only seq > S — same factors either way.
//	prune     — optionally drop WAL segments fully below S. Runs only
//	            after a durable publish: the on-disk watermark must
//	            cover everything pruning forgets.
type Promoter struct {
	ing *Ingestor
	srv *serve.Server
	cfg PromoteConfig

	// beforeSwap, when set, runs between export and the fenced swap —
	// the chaos suite injects racing reloads into exactly that window.
	beforeSwap func()
}

// NewPromoter wires a promoter; cfg.ModelPath must be set.
func NewPromoter(ing *Ingestor, srv *serve.Server, cfg PromoteConfig) (*Promoter, error) {
	if cfg.ModelPath == "" {
		return nil, fmt.Errorf("feedback: promoter needs a model path")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	return &Promoter{ing: ing, srv: srv, cfg: cfg}, nil
}

// Run executes the promotion loop until ctx is canceled. Each attempt's
// outcome is counted in clapf_promotions_total; errors are logged and the
// loop continues — a failed promotion never stops serving, and the next
// tick retries with a fresh snapshot.
func (p *Promoter) Run(ctx context.Context) {
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			outcome, err := p.PromoteOnce()
			if err != nil {
				p.cfg.Logger.Error("feedback: promotion attempt failed",
					"outcome", outcome, "err", err)
			} else if outcome == PromoteOK {
				p.cfg.Logger.Info("feedback: promoted folded model",
					"generation", p.srv.Generation(), "watermark", p.ing.Folded())
			}
		}
	}
}

// PromoteOnce runs a single promotion attempt and returns its outcome.
func (p *Promoter) PromoteOnce() (string, error) {
	outcome, err := p.promote()
	p.ing.countPromotion(outcome)
	return outcome, err
}

func (p *Promoter) promote() (string, error) {
	gen := p.srv.Generation()
	base := p.srv.Model()
	if base == nil {
		return PromoteError, fmt.Errorf("feedback: promotion needs a float64 base model (mmap/float32 serving cannot re-export)")
	}
	seq, users := p.ing.snapshot()
	if seq <= p.ing.Folded() {
		return PromoteNoop, nil
	}
	// Everything the export bakes must be durable before the watermarked
	// file can exist: a model claiming seq S while the WAL could lose an
	// event <= S would break replay coverage.
	if err := p.ing.WAL().Sync(); err != nil {
		return PromoteError, err
	}
	clone := base.Clone()
	for u, merged := range users {
		vec, err := mf.FoldInUser(base, merged, p.ing.cfg.FoldInReg)
		if err != nil {
			return PromoteError, fmt.Errorf("feedback: folding user %d: %w", u, err)
		}
		if n := guard.ScanVector(vec); n > 0 {
			return PromoteError, fmt.Errorf("feedback: folded factors for user %d carry %d non-finite entries", u, n)
		}
		copy(clone.UserFactors(u), vec)
	}
	// Export beside the shared model path; it becomes ModelPath only
	// after the fenced swap has made this export the live generation.
	tmpPath := p.cfg.ModelPath + ".promote"
	if err := store.SaveFileWithMeta(tmpPath, clone, &store.Meta{FeedbackSeq: seq}); err != nil {
		return PromoteError, err
	}
	if p.beforeSwap != nil {
		p.beforeSwap()
	}
	err := p.srv.SwapParamsFenced(clone, seq, gen)
	if errors.Is(err, serve.ErrGenerationFenced) {
		// Another reload won between export and promote. The export is
		// stale relative to the new generation's base; discard it — the
		// next tick re-exports against the winner. Nothing was swapped
		// and the deployed model file was never touched.
		os.Remove(tmpPath)
		return PromoteFenced, nil
	}
	if err != nil {
		os.Remove(tmpPath)
		return PromoteError, err
	}
	// Publish. Re-check that our swap (gen+1) is still the live
	// generation: a reload landing in the instant since would have
	// deployed a fresher model file that this export must not overwrite.
	if p.srv.Generation() != gen+1 {
		os.Remove(tmpPath)
		return PromoteFenced, nil
	}
	if err := os.Rename(tmpPath, p.cfg.ModelPath); err == nil {
		err = syncDir(filepath.Dir(p.cfg.ModelPath))
	}
	if err != nil {
		// The promoted generation is live; only the on-disk copy lags (or
		// its rename is not yet durable). A restart before the next
		// successful publish loads the old file and replays the WAL —
		// factors identical — but pruning would break exactly that
		// replay, so skip it.
		os.Remove(tmpPath)
		return PromoteError, fmt.Errorf("feedback: promoted generation %d is live but publishing its export failed: %w",
			p.srv.Generation(), err)
	}
	if p.cfg.Prune {
		if removed, perr := p.ing.WAL().PruneTo(seq); perr != nil {
			p.cfg.Logger.Warn("feedback: pruning WAL after promotion failed", "err", perr)
		} else if removed > 0 {
			p.cfg.Logger.Info("feedback: pruned folded WAL segments", "removed", removed, "watermark", seq)
		}
	}
	return PromoteOK, nil
}

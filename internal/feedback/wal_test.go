package feedback

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"clapf/internal/fault"
)

func openTestWAL(t *testing.T, dir string, cfg WALConfig) (*WAL, RecoveryInfo) {
	t.Helper()
	w, info, err := OpenWAL(dir, cfg)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w, info
}

func collectEvents(t *testing.T, w *WAL) []Event {
	t.Helper()
	var evs []Event
	if err := w.Replay(func(ev Event) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return evs
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, info := openTestWAL(t, dir, WALConfig{})
	if info.Events != 0 || info.LastSeq != 0 {
		t.Fatalf("fresh log reports %+v", info)
	}
	now := time.Unix(1700000000, 42)
	for i := 0; i < 100; i++ {
		seq, err := w.Append(int32(i%7), int32(i), now)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d assigned seq %d, want %d", i, seq, i+1)
		}
	}
	evs := collectEvents(t, w)
	if len(evs) != 100 {
		t.Fatalf("replayed %d events, want 100", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.User != int32(i%7) || ev.Item != int32(i) || ev.UnixNano != now.UnixNano() {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: recovery must find everything and resume the sequence.
	w2, info2 := openTestWAL(t, dir, WALConfig{})
	if info2.Events != 100 || info2.LastSeq != 100 || info2.TruncatedBytes != 0 {
		t.Fatalf("recovery reports %+v", info2)
	}
	seq, err := w2.Append(1, 2, now)
	if err != nil || seq != 101 {
		t.Fatalf("Append after reopen: seq %d err %v, want 101", seq, err)
	}
}

func TestWALGroupCommitConcurrentAppends(t *testing.T) {
	w, _ := openTestWAL(t, t.TempDir(), WALConfig{SyncEvery: 16, SyncInterval: time.Millisecond})
	const n = 200
	var wg sync.WaitGroup
	errs := make([]error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = w.Append(int32(g), int32(g), time.Unix(0, int64(g)))
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("Append %d: %v", g, err)
		}
	}
	if got := w.LastSeq(); got != n {
		t.Fatalf("LastSeq = %d, want %d", got, n)
	}
	if evs := collectEvents(t, w); len(evs) != n {
		t.Fatalf("replayed %d events, want %d", len(evs), n)
	}
}

func TestWALRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: header(24) + 2 frames (32 each) = 88 bytes.
	w, _ := openTestWAL(t, dir, WALConfig{SegmentBytes: 88})
	for i := 0; i < 10; i++ {
		if _, err := w.Append(1, int32(i), time.Unix(0, 0)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if segs := w.Segments(); segs != 5 {
		t.Fatalf("Segments = %d, want 5", segs)
	}
	if evs := collectEvents(t, w); len(evs) != 10 {
		t.Fatalf("replayed %d events, want 10", len(evs))
	}

	// Prune below seq 5: segments [1,2] and [3,4] are removable.
	removed, err := w.PruneTo(5)
	if err != nil {
		t.Fatalf("PruneTo: %v", err)
	}
	if removed != 2 {
		t.Fatalf("PruneTo removed %d segments, want 2", removed)
	}
	evs := collectEvents(t, w)
	if len(evs) != 6 || evs[0].Seq != 5 {
		t.Fatalf("after prune: %d events, first seq %d; want 6 starting at 5", len(evs), evs[0].Seq)
	}

	// Reopen after pruning: the gap at the head is legitimate.
	w.Close()
	w2, info := openTestWAL(t, dir, WALConfig{SegmentBytes: 88})
	if info.Events != 6 || info.LastSeq != 10 {
		t.Fatalf("recovery after prune reports %+v", info)
	}
	if _, err := w2.Append(1, 99, time.Unix(0, 0)); err != nil {
		t.Fatalf("Append after prune+reopen: %v", err)
	}
}

func TestWALRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALConfig{})
	for i := 0; i < 5; i++ {
		if _, err := w.Append(2, int32(i), time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame(nil, Event{Seq: 6, User: 2, Item: 5})
	if _, err := f.Write(frame[:len(frame)-7]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, info := openTestWAL(t, dir, WALConfig{})
	if info.Events != 5 || info.LastSeq != 5 {
		t.Fatalf("recovery reports %+v, want 5 events", info)
	}
	if info.TruncatedBytes != int64(len(frame)-7) {
		t.Fatalf("TruncatedBytes = %d, want %d", info.TruncatedBytes, len(frame)-7)
	}
	// The log must keep working, and the torn record must not resurface.
	seq, err := w2.Append(2, 100, time.Unix(0, 0))
	if err != nil || seq != 6 {
		t.Fatalf("Append after recovery: seq %d err %v", seq, err)
	}
	evs := collectEvents(t, w2)
	if len(evs) != 6 || evs[5].Item != 100 {
		t.Fatalf("post-recovery replay: %+v", evs)
	}
}

func TestWALRecoveryBitFlipInTail(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALConfig{})
	for i := 0; i < 8; i++ {
		if _, err := w.Append(3, int32(i), time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Flip one byte inside the 7th record's payload: records 7-8 are cut.
	seg := filepath.Join(dir, segmentName(1))
	off := int64(headerSize + 6*(frameOverhead+payloadSize) + frameOverhead + 3)
	if err := fault.FlipByte(seg, off); err != nil {
		t.Fatal(err)
	}

	w2, info := openTestWAL(t, dir, WALConfig{})
	if info.Events != 6 || info.LastSeq != 6 {
		t.Fatalf("recovery reports %+v, want 6 events", info)
	}
	if info.TruncatedBytes != int64(2*(frameOverhead+payloadSize)) {
		t.Fatalf("TruncatedBytes = %d", info.TruncatedBytes)
	}
	if seq, err := w2.Append(3, 50, time.Unix(0, 0)); err != nil || seq != 7 {
		t.Fatalf("Append after bit-flip recovery: seq %d err %v", seq, err)
	}
}

func TestWALRecoveryRefusesSealedCorruption(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALConfig{SegmentBytes: 88})
	for i := 0; i < 6; i++ {
		if _, err := w.Append(4, int32(i), time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Corrupt a SEALED (non-final) segment: that data was durable, so
	// recovery must refuse rather than silently drop acknowledged events.
	if err := fault.FlipByte(filepath.Join(dir, segmentName(1)), headerSize+frameOverhead+2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, WALConfig{SegmentBytes: 88}); err == nil {
		t.Fatal("OpenWAL accepted corruption in a sealed segment")
	}
}

func TestWALRecoveryDropsTornHeaderSegment(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALConfig{SegmentBytes: 88})
	for i := 0; i < 4; i++ {
		if _, err := w.Append(5, int32(i), time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash during rotation: the next segment exists but its
	// header never became durable.
	torn := filepath.Join(dir, segmentName(5))
	if err := os.WriteFile(torn, []byte("CLAPF"), 0o644); err != nil {
		t.Fatal(err)
	}

	w2, info := openTestWAL(t, dir, WALConfig{SegmentBytes: 88})
	if info.Events != 4 || info.LastSeq != 4 {
		t.Fatalf("recovery reports %+v", info)
	}
	if info.DroppedSegment != segmentName(5) {
		t.Fatalf("DroppedSegment = %q", info.DroppedSegment)
	}
	if seq, err := w2.Append(5, 9, time.Unix(0, 0)); err != nil || seq != 5 {
		t.Fatalf("Append after dropped segment: seq %d err %v", seq, err)
	}
}

func TestWALSyncEveryBatchesFsync(t *testing.T) {
	// With SyncEvery=8 and 24 appends from one goroutine... each Append
	// waits for durability, so the flusher covers each one; just verify
	// durability and ordering hold with batching enabled.
	w, _ := openTestWAL(t, t.TempDir(), WALConfig{SyncEvery: 8, SyncInterval: time.Millisecond})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 24; i++ {
			if _, err := w.Append(6, int32(i), time.Unix(0, 0)); err != nil {
				t.Errorf("Append %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batched appends stalled: flusher not covering waiters")
	}
	if evs := collectEvents(t, w); len(evs) != 24 {
		t.Fatalf("replayed %d events, want 24", len(evs))
	}
}

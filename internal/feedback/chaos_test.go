package feedback

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/serve"
	"clapf/internal/store"
)

// The chaos suite proves the crash-safety contract end to end:
//
//   - an acknowledged event survives any crash (torn tails truncate only
//     the unacknowledged suffix);
//   - a crash at any point in the promotion state machine — including
//     between the watermarked export and the hot swap — recovers to
//     factors byte-identical to an uninterrupted run;
//   - a failed promotion leaves the old generation serving.
//
// Gated in check.sh under -race.

// chaosFixture builds a deterministic world and a trained-enough model.
func chaosFixture(t testing.TB) (*mf.Model, *dataset.Dataset) {
	t.Helper()
	w, err := datagen.Generate(datagen.Profile{
		Name: "chaos", Users: 40, Items: 70, Pairs: 900,
		ZipfExp: 0.6, Dim: 4, Affinity: 5,
	}, mathx.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	m := mf.MustNew(mf.Config{
		NumUsers: w.Data.NumUsers(), NumItems: w.Data.NumItems(), Dim: 4, UseBias: true,
	})
	m.InitGaussian(mathx.NewRNG(12), 0.1)
	return m, w.Data
}

// pipeline is one serve+ingest stack, wired exactly as cmd/clapf-serve
// wires it: recover WAL, seed watermark from the model file, replay,
// bind, enable.
type pipeline struct {
	srv *serve.Server
	ing *Ingestor
	wal *WAL
}

// boot starts (or restarts, after a crash) the pipeline from the model
// file and WAL dir. Leaving a previous pipeline un-Closed is the crash.
func boot(t testing.TB, modelPath, walDir string, train *dataset.Dataset) *pipeline {
	t.Helper()
	model, meta, err := store.LoadFileWithMeta(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(model, train)
	if err != nil {
		t.Fatal(err)
	}
	wal, _, err := OpenWAL(walDir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ing := NewIngestor(wal, train, Config{FoldInReg: srv.FoldInReg}, nil)
	if meta != nil {
		ing.SetFolded(meta.FeedbackSeq)
	}
	if _, err := ing.Replay(); err != nil {
		t.Fatal(err)
	}
	ing.Bind(srv)
	if err := srv.EnableFeedback(ing); err != nil {
		t.Fatal(err)
	}
	return &pipeline{srv: srv, ing: ing, wal: wal}
}

// chaosEvents is the deterministic event schedule shared by the
// interrupted and uninterrupted runs.
func chaosEvents(train *dataset.Dataset, n int) [][2]int32 {
	rng := mathx.NewRNG(99)
	out := make([][2]int32, n)
	for i := range out {
		out[i] = [2]int32{
			int32(rng.Intn(train.NumUsers())),
			int32(rng.Intn(train.NumItems())),
		}
	}
	return out
}

func ingestAll(t testing.TB, p *pipeline, events [][2]int32) {
	t.Helper()
	for i, ev := range events {
		if _, _, err := p.ing.Ingest(context.Background(), ev[0], ev[1]); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
}

// servingFactors snapshots every user's effective serving vector (base
// or overlay) as raw bits, for byte-identity comparison across runs.
func servingFactors(srv *serve.Server) [][]uint64 {
	params := srv.Params()
	out := make([][]uint64, params.NumUsers())
	for u := range out {
		vec := params.UserVector(int32(u), nil)
		bits := make([]uint64, len(vec))
		for j, v := range vec {
			bits[j] = math.Float64bits(v)
		}
		out[u] = bits
	}
	return out
}

func requireSameFactors(t testing.TB, a, b [][]uint64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("user counts differ: %d vs %d", len(a), len(b))
	}
	for u := range a {
		for j := range a[u] {
			if a[u][j] != b[u][j] {
				t.Fatalf("user %d factor %d differs: %016x vs %016x",
					u, j, a[u][j], b[u][j])
			}
		}
	}
}

// Crash with a torn tail: every acknowledged event survives recovery;
// only the torn (never-acknowledged) suffix is dropped.
func TestFeedbackChaosTornTailLosesNoAckedEvents(t *testing.T) {
	model, train := chaosFixture(t)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.clapf")
	if err := store.SaveFile(modelPath, model); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")

	p := boot(t, modelPath, walDir, train)
	events := chaosEvents(train, 25)
	acked := make(map[uint64][2]int32)
	for _, ev := range events {
		seq, _, err := p.ing.Ingest(context.Background(), ev[0], ev[1])
		if err != nil {
			t.Fatal(err)
		}
		acked[seq] = ev
	}
	// Crash mid-append: the process dies while writing event 26 — a
	// partial frame lands on disk and no ack is ever sent. The old
	// pipeline is abandoned, not closed.
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x18, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2 := boot(t, modelPath, walDir, train)
	defer p2.wal.Close()
	got := make(map[uint64][2]int32)
	if err := p2.wal.Replay(func(ev Event) error {
		got[ev.Seq] = [2]int32{ev.User, ev.Item}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for seq, ev := range acked {
		g, ok := got[seq]
		if !ok {
			t.Fatalf("acked event seq %d lost after crash recovery", seq)
		}
		if g != ev {
			t.Fatalf("acked event seq %d corrupted: %v vs %v", seq, g, ev)
		}
	}
	// The log continues from the last acked sequence number.
	seq, _, err := p2.ing.Ingest(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(len(events) + 1); seq != want {
		t.Fatalf("post-recovery seq = %d, want %d", seq, want)
	}
}

// Group commit under concurrency, then crash: durability acks are only
// sent after the covering fsync, so every acked event must be in the
// recovered log even at SyncEvery 16.
func TestFeedbackChaosGroupCommitCrash(t *testing.T) {
	model, train := chaosFixture(t)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.clapf")
	if err := store.SaveFile(modelPath, model); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")
	srvModel, _, err := store.LoadFileWithMeta(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(srvModel, train)
	if err != nil {
		t.Fatal(err)
	}
	wal, _, err := OpenWAL(walDir, WALConfig{SyncEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	ing := NewIngestor(wal, train, Config{}, nil)
	ing.Bind(srv)
	if err := srv.EnableFeedback(ing); err != nil {
		t.Fatal(err)
	}

	const workers, per = 8, 10
	type ack struct {
		seq uint64
		ev  [2]int32
	}
	acks := make(chan ack, workers*per)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				u := int32((w*per + i) % train.NumUsers())
				it := int32((w + i*3) % train.NumItems())
				seq, _, err := ing.Ingest(context.Background(), u, it)
				if err != nil {
					errs <- err
					return
				}
				acks <- ack{seq: seq, ev: [2]int32{u, it}}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(acks)
	// Crash: abandon without Close or final sync.
	p2 := boot(t, modelPath, walDir, train)
	defer p2.wal.Close()
	got := make(map[uint64][2]int32)
	if err := p2.wal.Replay(func(ev Event) error {
		got[ev.Seq] = [2]int32{ev.User, ev.Item}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for a := range acks {
		if g, ok := got[a.seq]; !ok || g != a.ev {
			t.Fatalf("acked seq %d missing or wrong after crash: %v ok=%v", a.seq, g, ok)
		}
	}
}

// Crash the instant the watermarked export lands on disk — the promoted
// in-memory generation dies with the process — then recover and finish
// the schedule: the final serving factors are byte-identical to a run
// that never crashed, and so are the recommendations.
func TestFeedbackChaosCrashMidPromotionReplayByteIdentical(t *testing.T) {
	model, train := chaosFixture(t)
	events := chaosEvents(train, 30)

	// Uninterrupted reference run: all 30 events, no promotion, no crash.
	refDir := t.TempDir()
	refModel := filepath.Join(refDir, "m.clapf")
	if err := store.SaveFile(refModel, model); err != nil {
		t.Fatal(err)
	}
	ref := boot(t, refModel, filepath.Join(refDir, "wal"), train)
	defer ref.wal.Close()
	ingestAll(t, ref, events)
	want := servingFactors(ref.srv)

	// Interrupted run: promote after 12 events, export (but do not swap)
	// after 20 — the simulated crash point — then restart and finish.
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.clapf")
	if err := store.SaveFile(modelPath, model); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")
	p := boot(t, modelPath, walDir, train)
	ingestAll(t, p, events[:12])
	prom, err := NewPromoter(p.ing, p.srv, PromoteConfig{ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	if outcome, err := prom.PromoteOnce(); err != nil || outcome != PromoteOK {
		t.Fatalf("promotion = %q, %v", outcome, err)
	}
	if p.srv.Generation() != 1 {
		t.Fatalf("generation = %d after promotion, want 1", p.srv.Generation())
	}
	ingestAll(t, p, events[12:20])
	// The promoter's fold-and-export, written straight to the model path
	// — the on-disk state right after publish — then the process dies
	// before anything else happens.
	base := p.srv.Model()
	seq, users := p.ing.snapshot()
	clone := base.Clone()
	for u, merged := range users {
		vec, err := mf.FoldInUser(base, merged, p.ing.cfg.FoldInReg)
		if err != nil {
			t.Fatal(err)
		}
		copy(clone.UserFactors(u), vec)
	}
	if err := store.SaveFileWithMeta(modelPath, clone, &store.Meta{FeedbackSeq: seq}); err != nil {
		t.Fatal(err)
	}
	// Crash (abandon) and restart from the exported file + WAL.
	p2 := boot(t, modelPath, walDir, train)
	defer p2.wal.Close()
	if got := p2.ing.Folded(); got != seq {
		t.Fatalf("recovered watermark = %d, want %d", got, seq)
	}
	ingestAll(t, p2, events[20:])
	requireSameFactors(t, want, servingFactors(p2.srv))

	// Recommendations agree too: the exclusion history (train + every
	// replayed event) survived the crash alongside the factors.
	refH, gotH := ref.srv.Handler(), p2.srv.Handler()
	for u := 0; u < 5; u++ {
		path := fmt.Sprintf("/recommend?user=%d&k=10", u)
		a := httptest.NewRecorder()
		refH.ServeHTTP(a, httptest.NewRequest(http.MethodGet, path, nil))
		b := httptest.NewRecorder()
		gotH.ServeHTTP(b, httptest.NewRequest(http.MethodGet, path, nil))
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("user %d: status %d vs %d", u, a.Code, b.Code)
		}
		if a.Body.String() != b.Body.String() {
			t.Fatalf("user %d top-K diverged after crash recovery:\n%s\n%s", u, a.Body, b.Body)
		}
	}
}

// Rotation crash, then prune, then two restarts: a crash mid-rotation
// leaves a durable-header, zero-frame active segment, and a promotion
// with Prune enabled can then remove every predecessor. The empty
// segment's header must still pin the sequence chain — its firstSeq
// promises everything below it was assigned. Before that, recovery
// derived the last sequence only from decoded frames, restarted the log
// at seq 1 inside a segment claiming firstSeq 6, and the NEXT recovery
// silently discarded the acknowledged, fsync'd appends as a torn tail.
func TestFeedbackChaosRotateCrashPruneRestartKeepsSequenceChain(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 5; i++ {
		if _, err := w.Append(i, i, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-rotation: rotateLocked is exactly the pre-crash suffix —
	// the sealed predecessor and the new segment's header are durable,
	// but no frame ever lands in the new segment.
	w.mu.Lock()
	err = w.rotateLocked(6)
	w.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// Promotion with Prune enabled: every record of the sealed segment
	// is at or below the watermark, so it is removed, leaving only the
	// empty active segment. The process then dies (w is abandoned).
	if removed, err := w.PruneTo(5); err != nil || removed != 1 {
		t.Fatalf("PruneTo = %d, %v; want 1 segment removed", removed, err)
	}

	w2, info, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != 5 {
		t.Fatalf("recovered LastSeq = %d, want 5 (empty active segment header pins the chain)", info.LastSeq)
	}
	seq, err := w2.Append(9, 9, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("post-recovery append got seq %d, want 6", seq)
	}
	// Crash again (abandon without Close): the acked append was fsync'd
	// and must survive the second recovery intact.
	w3, info3, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if info3.LastSeq != 6 || info3.TruncatedBytes != 0 {
		t.Fatalf("second recovery: LastSeq = %d, truncated = %d; acked append lost",
			info3.LastSeq, info3.TruncatedBytes)
	}
	var got []Event
	if err := w3.Replay(func(ev Event) error { got = append(got, ev); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != 6 || got[0].User != 9 || got[0].Item != 9 {
		t.Fatalf("replay after second crash = %+v, want the one acked event at seq 6", got)
	}
}

// An operator deploy+reload racing the promotion's export-to-swap window
// must win cleanly: the promotion comes back fenced, and the freshly
// deployed model file is never overwritten by the stale export (which
// only ever existed as a discarded temp file).
func TestFeedbackChaosRacingReloadNotClobberedByPromotion(t *testing.T) {
	model, train := chaosFixture(t)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.clapf")
	if err := store.SaveFile(modelPath, model); err != nil {
		t.Fatal(err)
	}
	p := boot(t, modelPath, filepath.Join(dir, "wal"), train)
	defer p.wal.Close()
	ingestAll(t, p, chaosEvents(train, 10))

	prom, err := NewPromoter(p.ing, p.srv, PromoteConfig{ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	operator := model.Clone()
	operator.InitGaussian(mathx.NewRNG(77), 0.1)
	var deployed []byte
	prom.beforeSwap = func() {
		// The operator deploys a new trained model and reloads — after
		// the promoter computed its export, before the fenced swap.
		if err := store.SaveFile(modelPath, operator); err != nil {
			t.Fatal(err)
		}
		if err := p.srv.ReloadFromFile(modelPath); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(modelPath)
		if err != nil {
			t.Fatal(err)
		}
		deployed = b
	}
	outcome, perr := prom.PromoteOnce()
	if outcome != PromoteFenced || perr != nil {
		t.Fatalf("promotion = %q, %v; want fenced", outcome, perr)
	}
	after, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(deployed, after) {
		t.Fatal("fenced promotion overwrote the freshly deployed model file")
	}
	if _, err := os.Stat(modelPath + ".promote"); !os.IsNotExist(err) {
		t.Fatalf("fenced promotion left its temp export behind: %v", err)
	}
}

// A promotion that cannot export (or loses the generation fence) leaves
// the previous generation serving, untouched.
func TestFeedbackChaosFailedPromotionKeepsOldGeneration(t *testing.T) {
	model, train := chaosFixture(t)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.clapf")
	if err := store.SaveFile(modelPath, model); err != nil {
		t.Fatal(err)
	}
	p := boot(t, modelPath, filepath.Join(dir, "wal"), train)
	defer p.wal.Close()
	ingestAll(t, p, chaosEvents(train, 10))
	before := servingFactors(p.srv)
	gen := p.srv.Generation()

	// Export target unwritable (parent directory does not exist): the
	// error outcome must not swap.
	prom, err := NewPromoter(p.ing, p.srv, PromoteConfig{ModelPath: filepath.Join(dir, "missing", "m.clapf")})
	if err != nil {
		t.Fatal(err)
	}
	outcome, perr := prom.PromoteOnce()
	if outcome != PromoteError || perr == nil {
		t.Fatalf("promotion = %q, %v; want error", outcome, perr)
	}
	if p.srv.Generation() != gen {
		t.Fatalf("failed promotion bumped generation to %d", p.srv.Generation())
	}
	requireSameFactors(t, before, servingFactors(p.srv))

	// A stale generation fence refuses the swap the same way.
	if err := p.srv.SwapParamsFenced(p.srv.Model().Clone(), 5, gen+100); err != serve.ErrGenerationFenced {
		t.Fatalf("stale fence: err = %v, want ErrGenerationFenced", err)
	}
	if p.srv.Generation() != gen {
		t.Fatalf("fenced swap bumped generation to %d", p.srv.Generation())
	}
	requireSameFactors(t, before, servingFactors(p.srv))

	// And the watermark never advanced, so the next healthy promotion
	// still covers every event.
	if p.ing.Folded() != 0 {
		t.Fatalf("failed promotion advanced watermark to %d", p.ing.Folded())
	}
	stats := p.ing.Stats()
	if stats.Promotions[PromoteError] != 1 {
		t.Fatalf("promotions = %v, want one error outcome", stats.Promotions)
	}
}

package feedback

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeSegmentFile(dir string, raw []byte) error {
	return os.WriteFile(filepath.Join(dir, segmentName(1)), raw, 0o644)
}

// FuzzReplay drives the frame decoder with arbitrary segment bodies. The
// decoder sits on the recovery path, where it must turn any byte soup a
// crash (or disk) can produce into a clean prefix of valid events — never
// a panic, never an out-of-bounds consumed count, and always a prefix
// that re-encodes to exactly the bytes it was decoded from.
func FuzzReplay(f *testing.F) {
	// Seed: a healthy three-record body.
	var healthy []byte
	for i := 0; i < 3; i++ {
		healthy = encodeFrame(healthy, Event{Seq: uint64(i + 1), User: int32(i), Item: int32(10 + i), UnixNano: 99})
	}
	f.Add(healthy)
	// Seed: torn tail — a partial final frame.
	f.Add(healthy[:len(healthy)-11])
	// Seed: bit-flipped payload byte in the second record.
	flipped := bytes.Clone(healthy)
	flipped[(frameOverhead+payloadSize)+frameOverhead+5] ^= 0xFF
	f.Add(flipped)
	// Seed: bit-flipped length field.
	flen := bytes.Clone(healthy)
	flen[0] ^= 0x40
	f.Add(flen)
	// Seeds: empty and pure garbage.
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, 100))

	f.Fuzz(func(t *testing.T, body []byte) {
		events, consumed := decodeFrames(body)
		if consumed < 0 || consumed > len(body) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(body))
		}
		if consumed != len(events)*(frameOverhead+payloadSize) {
			t.Fatalf("consumed %d bytes for %d events", consumed, len(events))
		}
		// Round-trip: the consumed prefix must re-encode byte-identically,
		// so truncating a torn tail at `consumed` preserves exactly the
		// decoded events and nothing else.
		var re []byte
		for _, ev := range events {
			re = encodeFrame(re, ev)
		}
		if !bytes.Equal(re, body[:consumed]) {
			t.Fatalf("re-encoded prefix differs from input")
		}
		// Decoding the re-encoded bytes is a fixpoint.
		again, c2 := decodeFrames(re)
		if c2 != consumed || len(again) != len(events) {
			t.Fatalf("re-decode: %d events / %d bytes, want %d / %d", len(again), c2, len(events), consumed)
		}
	})
}

// FuzzReplay's file-level cousin: arbitrary bytes as a whole segment file
// must either recover (possibly truncating) or fail cleanly — and a
// recovered log must accept appends.
func FuzzSegmentRecovery(f *testing.F) {
	valid := encodeHeader(1)
	for i := 0; i < 2; i++ {
		valid = encodeFrame(valid, Event{Seq: uint64(i + 1), User: 1, Item: int32(i)})
	}
	f.Add(valid)
	f.Add(valid[:headerSize-2])
	f.Add(valid[:headerSize+5])
	flip := bytes.Clone(valid)
	flip[headerSize+frameOverhead] ^= 0x01
	f.Add(flip)

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := writeSegmentFile(dir, raw); err != nil {
			t.Skip()
		}
		w, _, err := OpenWAL(dir, WALConfig{})
		if err != nil {
			return // clean refusal is acceptable
		}
		defer w.Close()
		if _, err := w.Append(7, 7, time.Unix(0, 0)); err != nil {
			t.Fatalf("recovered log rejects appends: %v", err)
		}
	})
}

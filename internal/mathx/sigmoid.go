package mathx

import "math"

// Sigmoid returns the logistic function 1/(1+exp(-x)).
//
// The two-branch form never evaluates exp of a large positive argument, so
// it cannot overflow; for |x| beyond ~36 it saturates smoothly to 0 or 1 in
// float64.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// LogSigmoid returns ln(σ(x)) computed without intermediate overflow or
// catastrophic cancellation.
//
// For x ≥ 0: ln σ(x) = -ln(1+exp(-x)); for x < 0: ln σ(x) = x - ln(1+exp(x)).
// Both branches keep the exp argument non-positive.
func LogSigmoid(x float64) float64 {
	if x >= 0 {
		return -math.Log1p(math.Exp(-x))
	}
	return x - math.Log1p(math.Exp(x))
}

// SigmoidGrad returns dσ/dx evaluated at x, i.e. σ(x)(1-σ(x)).
func SigmoidGrad(x float64) float64 {
	s := Sigmoid(x)
	return s * (1 - s)
}

// Logit is the inverse of Sigmoid: ln(p/(1-p)). It returns ±Inf at the
// endpoints p=0 and p=1.
func Logit(p float64) float64 {
	return math.Log(p / (1 - p))
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

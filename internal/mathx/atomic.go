package mathx

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Atomic float64 access for lock-free (Hogwild-style) SGD. Concurrent
// workers read and write shared parameter slices without locks; making
// each element access atomic keeps the races benign in the memory-model
// sense (no torn reads, no undefined behavior, race-detector clean) while
// preserving Hogwild's last-writer-wins semantics on the rare colliding
// update. On amd64/arm64 an atomic 8-byte load/store compiles to a plain
// MOV plus a compiler barrier, so the hot path pays essentially nothing.
//
// The pointer must be 8-byte aligned; every element of a []float64 is.

// AtomicLoadFloat64 atomically reads *p.
func AtomicLoadFloat64(p *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(p))))
}

// AtomicStoreFloat64 atomically writes v to *p.
func AtomicStoreFloat64(p *float64, v float64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(p)), math.Float64bits(v))
}

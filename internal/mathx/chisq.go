package mathx

import (
	"fmt"
	"math"
)

// Chi-square goodness-of-fit support for the sampler property tests,
// built on a hand-rolled regularized lower incomplete gamma function
// (stdlib-only constraint, as with the incomplete beta in ttest.go).

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x ≥ 0, via the series expansion for
// x < a+1 and the continued fraction otherwise (Numerical Recipes §6.2).
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaSeries evaluates P(a, x) by its power series.
func gammaSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
	)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lnGamma(a))
}

// gammaCF evaluates Q(a, x) = 1 − P(a, x) by the continued fraction
// (modified Lentz algorithm).
func gammaCF(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
		tiny    = 1e-300
	)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lnGamma(a)) * h
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square distribution with df
// degrees of freedom.
func ChiSquareCDF(x, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	return GammaP(df/2, x/2)
}

// ChiSquareResult summarizes a goodness-of-fit test.
type ChiSquareResult struct {
	Stat float64 // Pearson's X² statistic
	DF   float64 // degrees of freedom (bins − 1)
	P    float64 // upper-tail p-value
}

// ChiSquareGOF runs Pearson's goodness-of-fit test of observed counts
// against expected counts (same length, expected all positive, sums should
// agree up to rounding). A small p-value rejects the hypothesis that the
// observations were drawn from the expected distribution.
func ChiSquareGOF(observed, expected []float64) (ChiSquareResult, error) {
	if len(observed) != len(expected) {
		return ChiSquareResult{}, fmt.Errorf("mathx: chi-square needs equal lengths, got %d and %d", len(observed), len(expected))
	}
	if len(observed) < 2 {
		return ChiSquareResult{}, fmt.Errorf("mathx: chi-square needs >= 2 bins, got %d", len(observed))
	}
	var stat float64
	for i := range observed {
		if expected[i] <= 0 {
			return ChiSquareResult{}, fmt.Errorf("mathx: chi-square expected count %v at bin %d, want > 0", expected[i], i)
		}
		d := observed[i] - expected[i]
		stat += d * d / expected[i]
	}
	df := float64(len(observed) - 1)
	return ChiSquareResult{Stat: stat, DF: df, P: 1 - ChiSquareCDF(stat, df)}, nil
}

package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSigmoidKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{math.Log(3), 0.75},
		{-math.Log(3), 0.25},
		{1, 1 / (1 + math.Exp(-1))},
	}
	for _, c := range cases {
		if got := Sigmoid(c.x); !AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("Sigmoid(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSigmoidSaturation(t *testing.T) {
	if got := Sigmoid(1000); got != 1 {
		t.Errorf("Sigmoid(1000) = %v, want 1", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Errorf("Sigmoid(-1000) = %v, want 0", got)
	}
	if math.IsNaN(Sigmoid(math.Inf(1))) || math.IsNaN(Sigmoid(math.Inf(-1))) {
		t.Error("Sigmoid produced NaN at infinities")
	}
}

func TestSigmoidSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return AlmostEqual(Sigmoid(x)+Sigmoid(-x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmoidMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Sigmoid(a) <= Sigmoid(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSigmoidMatchesNaive(t *testing.T) {
	// In the moderate range where the naive formula is accurate the stable
	// version must agree with it.
	for x := -20.0; x <= 20; x += 0.37 {
		naive := math.Log(1 / (1 + math.Exp(-x)))
		if got := LogSigmoid(x); !AlmostEqual(got, naive, 1e-9) {
			t.Fatalf("LogSigmoid(%v) = %v, naive %v", x, got, naive)
		}
	}
}

func TestLogSigmoidExtremes(t *testing.T) {
	if got := LogSigmoid(800); got != 0 {
		// σ(800) is exactly 1 in float64, so ln σ must be exactly 0.
		t.Errorf("LogSigmoid(800) = %v, want 0", got)
	}
	got := LogSigmoid(-800)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("LogSigmoid(-800) = %v, want finite", got)
	}
	// For very negative x, ln σ(x) ≈ x.
	if !AlmostEqual(got, -800, 1e-6) {
		t.Errorf("LogSigmoid(-800) = %v, want ≈ -800", got)
	}
}

func TestLogSigmoidAlwaysNonPositive(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		return LogSigmoid(x) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmoidGrad(t *testing.T) {
	// Compare against a central finite difference.
	for x := -5.0; x <= 5; x += 0.5 {
		h := 1e-6
		fd := (Sigmoid(x+h) - Sigmoid(x-h)) / (2 * h)
		if got := SigmoidGrad(x); !AlmostEqual(got, fd, 1e-6) {
			t.Errorf("SigmoidGrad(%v) = %v, finite diff %v", x, got, fd)
		}
	}
	if got := SigmoidGrad(0); !AlmostEqual(got, 0.25, 1e-12) {
		t.Errorf("SigmoidGrad(0) = %v, want 0.25", got)
	}
}

func TestLogitInvertsSigmoid(t *testing.T) {
	// Beyond |x| ≈ 25, σ(x) is within one ulp of 0 or 1 and the inverse
	// necessarily loses precision, so test only the representable range.
	for x := -25.0; x <= 25; x += 1.3 {
		if got := Logit(Sigmoid(x)); !AlmostEqual(got, x, 1e-5) {
			t.Errorf("Logit(Sigmoid(%v)) = %v", x, got)
		}
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

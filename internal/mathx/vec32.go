package mathx

// Float32 kernels for the serving-side factor representation. Every kernel
// widens each float32 operand to float64 before multiplying and accumulates
// in float64, so quantization error enters only through the stored values,
// never through the arithmetic.
//
// Unlike Dot, these kernels run four independent accumulators. A float32
// element costs two extra convert uops per multiply, and with Dot's single
// serial accumulator that overhead makes a float32 scan slower than the
// float64 one it is meant to beat; splitting the dependency chain lets the
// converts overlap the adds and pushes the scan back to (beyond, on wide
// cores) float64 speed at half the memory traffic. The price is a different
// summation order than Dot — float32 scoring is statistically, not
// bit-wise, equal to float64 scoring. What IS guaranteed bit-wise:
// DotF32(a, b) == DotF64F32(widen(a), b) for all inputs, because the two
// kernels share one accumulator structure and widening is exact. Every
// float32 serving path (dense scan, blocked batch kernel, IVF probe) rides
// on that pair, so within a float32 model, single, batch, and full-probe
// retrieval stay bit-identical to each other.

// DotF32 returns the inner product of two float32 vectors, accumulated in
// float64. The slices must have equal length.
func DotF32(a, b []float32) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// DotF64F32 returns the inner product of a float64 query against a float32
// row, accumulated in float64 — the mixed-precision kernel of the fold-in
// and IVF paths, where the query is computed in float64 but the catalog is
// stored in float32. Its accumulator structure mirrors DotF32 exactly, so
// DotF64F32(widen(a), b) == DotF32(a, b) bit-for-bit.
func DotF64F32(a []float64, b []float32) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * float64(b[i])
		s1 += a[i+1] * float64(b[i+1])
		s2 += a[i+2] * float64(b[i+2])
		s3 += a[i+3] * float64(b[i+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * float64(b[i])
	}
	return s
}

// WidenF32 copies src into dst (allocating when dst is too short) widening
// each element to float64, and returns the widened slice.
func WidenF32(src []float32, dst []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	for i, x := range src {
		dst[i] = float64(x)
	}
	return dst
}

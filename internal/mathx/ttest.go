package mathx

import (
	"fmt"
	"math"
)

// This file implements the paired t-test the experiment harness uses to
// report whether CLAPF's metric gains over a baseline are significant
// across replicate splits, built on a hand-rolled regularized incomplete
// beta function (stdlib-only constraint).

// lnGamma is math.Lgamma without the sign (inputs here are positive).
func lnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes §6.4, modified
// Lentz algorithm). Valid for a, b > 0 and x ∈ [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	// Symmetry: converge fastest when x < (a+1)/(a+b+2).
	front := math.Exp(lnGamma(a+b) - lnGamma(a) - lnGamma(b) +
		a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for Student's t distribution with df
// degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TTestResult summarizes a paired t-test.
type TTestResult struct {
	T  float64 // t statistic of the mean difference
	DF float64 // degrees of freedom (n−1)
	P  float64 // two-sided p-value
}

// PairedTTest tests whether the mean of a−b differs from zero across
// paired observations (e.g. per-replicate metric values of two methods on
// identical splits). It needs at least two pairs; a zero-variance nonzero
// difference reports p = 0, and an all-zero difference p = 1.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, fmt.Errorf("mathx: paired t-test needs equal lengths, got %d and %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, fmt.Errorf("mathx: paired t-test needs >= 2 pairs, got %d", n)
	}
	var diff OnlineStats
	for i := range a {
		diff.Add(a[i] - b[i])
	}
	df := float64(n - 1)
	se := diff.StdErr()
	if se == 0 {
		if diff.Mean() == 0 {
			return TTestResult{T: 0, DF: df, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(diff.Mean())), DF: df, P: 0}, nil
	}
	t := diff.Mean() / se
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// WelchTTest tests whether two independent samples share a mean, without
// assuming equal variances (Welch's unequal-variance t-test, with the
// Welch–Satterthwaite degrees of freedom). The parallel-training
// equivalence suite uses it to compare replicate metric distributions of
// the serial and Hogwild trainers, whose runs are independent (different
// RNG streams), so the paired test does not apply. Each sample needs at
// least two observations; two identical zero-variance samples report
// p = 1, distinct ones p = 0.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("mathx: Welch t-test needs >= 2 observations per sample, got %d and %d", len(a), len(b))
	}
	var sa, sb OnlineStats
	for _, x := range a {
		sa.Add(x)
	}
	for _, x := range b {
		sb.Add(x)
	}
	na, nb := float64(len(a)), float64(len(b))
	va, vb := sa.Variance()/na, sb.Variance()/nb
	se := math.Sqrt(va + vb)
	if se == 0 {
		if sa.Mean() == sb.Mean() {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(sa.Mean() - sb.Mean())), DF: na + nb - 2, P: 0}, nil
	}
	t := (sa.Mean() - sb.Mean()) / se
	df := (va + vb) * (va + vb) / (va*va/(na-1) + vb*vb/(nb-1))
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	return TTestResult{T: t, DF: df, P: p}, nil
}

package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Sum(xs); got != 10 {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: 32/7.
	if got := Variance(xs); !AlmostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v,%v), want (-1,7)", min, max)
	}
}

func TestArgMaxTieBreaking(t *testing.T) {
	if got := ArgMax([]float64{1, 3, 3, 2}); got != 1 {
		t.Errorf("ArgMax = %d, want first maximal index 1", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestOnlineStatsMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		var o OnlineStats
		for _, x := range xs {
			o.Add(x)
		}
		if o.N() != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return o.Mean() == 0 && o.Variance() == 0
		}
		scale := 1 + math.Abs(Mean(xs))
		return AlmostEqual(o.Mean(), Mean(xs), 1e-8*scale) &&
			AlmostEqual(o.Variance(), Variance(xs), 1e-6*(1+Variance(xs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnlineStatsStdErr(t *testing.T) {
	var o OnlineStats
	for i := 0; i < 4; i++ {
		o.Add(float64(i))
	}
	want := o.StdDev() / 2
	if got := o.StdErr(); !AlmostEqual(got, want, 1e-12) {
		t.Errorf("StdErr = %v, want %v", got, want)
	}
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestAXPY(t *testing.T) {
	x := []float64{1, 2}
	dst := []float64{10, 20}
	AXPY(2, x, dst)
	if dst[0] != 12 || dst[1] != 24 {
		t.Errorf("AXPY = %v, want [12 24]", dst)
	}
}

func TestScaleFillCopy(t *testing.T) {
	xs := []float64{1, 2, 3}
	Scale(3, xs)
	if xs[2] != 9 {
		t.Errorf("Scale result %v", xs)
	}
	c := CopyVec(xs)
	Fill(xs, 0)
	if c[0] != 3 || xs[0] != 0 {
		t.Error("CopyVec did not detach from source")
	}
}

func TestNorm2Sq(t *testing.T) {
	if got := Norm2Sq([]float64{3, 4}); got != 25 {
		t.Errorf("Norm2Sq = %v, want 25", got)
	}
}

func TestDotCauchySchwarz(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e3 {
				return true
			}
		}
		d := Dot(a, b)
		bound := math.Sqrt(Norm2Sq(a) * Norm2Sq(b))
		return d*d <= bound*bound*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package mathx

import (
	"math"
	"sort"
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs. Slices with
// fewer than two elements have variance 0.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs. It panics on an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return
}

// ArgMax returns the index of the largest element, breaking ties toward the
// smallest index. It panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("mathx: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs[1:] {
		if x > xs[best] {
			best = i + 1
		}
	}
	return best
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// OnlineStats accumulates count, mean, and variance in one pass using
// Welford's algorithm. The zero value is ready to use.
type OnlineStats struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (o *OnlineStats) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations seen.
func (o *OnlineStats) N() int { return o.n }

// Mean returns the running mean.
func (o *OnlineStats) Mean() float64 { return o.mean }

// Variance returns the running unbiased sample variance.
func (o *OnlineStats) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running sample standard deviation.
func (o *OnlineStats) StdDev() float64 { return math.Sqrt(o.Variance()) }

// StdErr returns the standard error of the mean.
func (o *OnlineStats) StdErr() float64 {
	if o.n == 0 {
		return 0
	}
	return o.StdDev() / math.Sqrt(float64(o.n))
}

// AlmostEqual reports whether a and b differ by no more than tol, treating
// NaNs as never equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

package mathx

import (
	"math"
	"testing"
)

func TestGammaPReferenceValues(t *testing.T) {
	t.Parallel()
	// Reference values for P(a, x). P(1, x) = 1 − e^{−x}; P(1/2, x) relates
	// to erf: P(1/2, x) = erf(√x); half-integer a from chi-square tables.
	cases := []struct{ a, x, want float64 }{
		{1, 0, 0},
		{1, 1, 1 - math.Exp(-1)},
		{1, 5, 1 - math.Exp(-5)},
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		{2.5, 2.5, 0.5841198130044481}, // chi-square df=5 at x=5
		{10, 10, 0.5420702855281478},
	}
	for _, c := range cases {
		if got := GammaP(c.a, c.x); !AlmostEqual(got, c.want, 1e-10) {
			t.Errorf("GammaP(%v, %v) = %.15f, want %.15f", c.a, c.x, got, c.want)
		}
	}
	if !math.IsNaN(GammaP(-1, 1)) || !math.IsNaN(GammaP(1, -1)) {
		t.Error("invalid arguments should yield NaN")
	}
}

func TestChiSquareCDFKnownQuantiles(t *testing.T) {
	t.Parallel()
	// Standard critical values: P(X ≤ x) for the tabulated 95th percentiles.
	cases := []struct{ x, df float64 }{
		{3.841, 1},
		{5.991, 2},
		{11.070, 5},
		{18.307, 10},
	}
	for _, c := range cases {
		got := ChiSquareCDF(c.x, c.df)
		if math.Abs(got-0.95) > 5e-4 {
			t.Errorf("ChiSquareCDF(%v, df=%v) = %.5f, want ≈ 0.95", c.x, c.df, got)
		}
	}
}

func TestChiSquareGOF(t *testing.T) {
	t.Parallel()
	// Perfect fit: statistic 0, p-value 1.
	res, err := ChiSquareGOF([]float64{25, 25, 25, 25}, []float64{25, 25, 25, 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stat != 0 || res.P != 1 {
		t.Errorf("perfect fit: stat=%v p=%v", res.Stat, res.P)
	}
	// Gross mismatch must be rejected decisively.
	res, err = ChiSquareGOF([]float64{90, 10, 0, 0}, []float64{25, 25, 25, 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("gross mismatch: p = %v, want ~0", res.P)
	}
	// Error cases.
	if _, err := ChiSquareGOF([]float64{1}, []float64{1}); err == nil {
		t.Error("single bin accepted")
	}
	if _, err := ChiSquareGOF([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ChiSquareGOF([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("zero expected count accepted")
	}
}

func TestWelchTTest(t *testing.T) {
	t.Parallel()
	// Fixed two-sample case, statistic and df verified against an
	// independent implementation of the Welch formulas; the p-value is the
	// matching two-sided Student-t tail (≈0.0082 at |t|=2.847, df≈27.9).
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.3}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(res.T, -2.84720, 1e-4) {
		t.Errorf("T = %v, want ≈ -2.84720", res.T)
	}
	if !AlmostEqual(res.DF, 27.8847, 1e-3) {
		t.Errorf("DF = %v, want ≈ 27.8847", res.DF)
	}
	if !AlmostEqual(res.P, 0.008186, 1e-4) {
		t.Errorf("P = %v, want ≈ 0.008186", res.P)
	}
	// Equal zero-variance samples: no evidence of difference.
	res, err = WelchTTest([]float64{5, 5, 5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("identical constant samples: p = %v, want 1", res.P)
	}
	// Distinct zero-variance samples: certain difference.
	res, err = WelchTTest([]float64{5, 5}, []float64{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("distinct constant samples: p = %v, want 0", res.P)
	}
	if _, err := WelchTTest([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("undersized sample accepted")
	}
}

package mathx

import (
	"math"
	"testing"
)

func randF32(rng *RNG, n int) []float32 {
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(rng.NormFloat64())
	}
	return xs
}

// TestDotF32MatchesDotF64F32 pins the kernel contract every float32
// serving path leans on: DotF32(a, b) is bit-identical to
// DotF64F32(widen(a), b), because widening float32 to float64 is exact
// and both kernels share the same accumulation structure. This is what
// lets the dense scan, the blocked batch sweep, fold-in, and the IVF
// probe mix the two kernels and still return byte-identical rankings.
func TestDotF32MatchesDotF64F32(t *testing.T) {
	rng := NewRNG(11)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 33, 64, 100} {
		a := randF32(rng, n)
		b := randF32(rng, n)
		wide := WidenF32(a, nil)
		d32 := DotF32(a, b)
		d64 := DotF64F32(wide, b)
		if math.Float64bits(d32) != math.Float64bits(d64) {
			t.Errorf("n=%d: DotF32=%x DotF64F32=%x", n, math.Float64bits(d32), math.Float64bits(d64))
		}
	}
}

// The reference value: accumulate in float64 in index order with the
// same 4-way lane split the kernels use.
func refDot(a, b []float32, n int) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func TestDotF32Values(t *testing.T) {
	rng := NewRNG(12)
	for _, n := range []int{1, 3, 4, 6, 8, 13, 32, 65} {
		a := randF32(rng, n)
		b := randF32(rng, n)
		want := refDot(a, b, n)
		if got := DotF32(a, b); got != want {
			t.Errorf("n=%d: DotF32 = %v, want %v", n, got, want)
		}
	}
	// Exact small case: (1,2,3,4,5)·(5,4,3,2,1) = 35.
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := DotF32(a, b); got != 35 {
		t.Errorf("DotF32 = %v, want 35", got)
	}
	if got := DotF64F32([]float64{1, 2, 3, 4, 5}, b); got != 35 {
		t.Errorf("DotF64F32 = %v, want 35", got)
	}
}

func TestWidenF32(t *testing.T) {
	src := []float32{1.5, -2.25, 0, float32(math.Inf(1))}
	got := WidenF32(src, nil)
	if len(got) != len(src) {
		t.Fatalf("len = %d", len(got))
	}
	for i, x := range src {
		if got[i] != float64(x) {
			t.Errorf("elem %d: %v != %v", i, got[i], x)
		}
	}
	// Reuse a caller-provided buffer without allocating.
	buf := make([]float64, 0, 8)
	got2 := WidenF32(src, buf)
	if &got2[0] != &buf[:1][0] {
		t.Error("WidenF32 ignored the provided buffer")
	}
	// Too-small capacity falls back to a fresh allocation.
	small := make([]float64, 0, 2)
	got3 := WidenF32(src, small)
	if len(got3) != len(src) {
		t.Fatalf("fallback len = %d", len(got3))
	}
	if got := testing.AllocsPerRun(100, func() { WidenF32(src, buf) }); got != 0 {
		t.Errorf("WidenF32 with a big-enough buffer allocates %v times", got)
	}
}

func TestDotF32Mismatched(t *testing.T) {
	// DotF32 scores len(a) elements; b must be at least as long.
	a := []float32{1, 2}
	b := []float32{3, 4, 99}
	if got := DotF32(a, b); got != 11 {
		t.Errorf("DotF32 over prefix = %v, want 11", got)
	}
}

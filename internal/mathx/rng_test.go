package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	var allZero = true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("zero seed produced a degenerate all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var o OnlineStats
	for i := 0; i < 100000; i++ {
		o.Add(r.Float64())
	}
	if math.Abs(o.Mean()-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ≈ 0.5", o.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ≈ %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(9)
	var o OnlineStats
	for i := 0; i < 200000; i++ {
		o.Add(r.NormFloat64())
	}
	if math.Abs(o.Mean()) > 0.01 {
		t.Errorf("normal mean = %v, want ≈ 0", o.Mean())
	}
	if math.Abs(o.StdDev()-1) > 0.01 {
		t.Errorf("normal stddev = %v, want ≈ 1", o.StdDev())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(19)
	p := 0.3
	var o OnlineStats
	for i := 0; i < 100000; i++ {
		o.Add(float64(r.Geometric(p)))
	}
	want := (1 - p) / p
	if math.Abs(o.Mean()-want) > 0.05 {
		t.Errorf("geometric(%v) mean = %v, want ≈ %v", p, o.Mean(), want)
	}
}

func TestGeometricCappedInRange(t *testing.T) {
	r := NewRNG(23)
	f := func(seed uint8) bool {
		n := int(seed%50) + 1
		v := r.GeometricCapped(0.1, n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricCappedHeadHeavy(t *testing.T) {
	// The truncated geometric must still put more mass on small ranks.
	r := NewRNG(29)
	const n = 100
	counts := make([]int, n)
	for i := 0; i < 50000; i++ {
		counts[r.GeometricCapped(0.05, n)]++
	}
	if counts[0] <= counts[n/2] {
		t.Errorf("rank 0 count %d not above rank %d count %d", counts[0], n/2, counts[n/2])
	}
}

func TestGeometricCappedTinyP(t *testing.T) {
	// p so small that nearly every draw exceeds the cap: must still return
	// a valid rank (uniform fallback) rather than spin.
	r := NewRNG(31)
	for i := 0; i < 1000; i++ {
		v := r.GeometricCapped(1e-12, 10)
		if v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(37)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("parent and child streams collided %d/100 times", same)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(41)
	var o OnlineStats
	for i := 0; i < 100000; i++ {
		o.Add(r.ExpFloat64())
	}
	if math.Abs(o.Mean()-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ≈ 1", o.Mean())
	}
}

package mathx

import (
	"math"
	"sync"
	"testing"
)

func TestAtomicFloat64RoundTrip(t *testing.T) {
	t.Parallel()
	xs := []float64{0, 1.5, -2.25, math.Inf(1), math.SmallestNonzeroFloat64}
	buf := make([]float64, len(xs))
	for i, x := range xs {
		AtomicStoreFloat64(&buf[i], x)
		if got := AtomicLoadFloat64(&buf[i]); got != x {
			t.Errorf("round-trip of %v read back %v", x, got)
		}
	}
	// NaN survives the bits round-trip too.
	AtomicStoreFloat64(&buf[0], math.NaN())
	if !math.IsNaN(AtomicLoadFloat64(&buf[0])) {
		t.Error("NaN did not round-trip")
	}
}

// TestAtomicFloat64Concurrent hammers one cell from several goroutines;
// under -race this proves the accessors establish no-race semantics, and
// the final value must be one of the written values (no torn writes).
func TestAtomicFloat64Concurrent(t *testing.T) {
	t.Parallel()
	var cell float64
	vals := []float64{1.0, 2.0, 4.0, 8.0}
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				AtomicStoreFloat64(&cell, v)
				_ = AtomicLoadFloat64(&cell)
			}
		}(v)
	}
	wg.Wait()
	got := AtomicLoadFloat64(&cell)
	ok := false
	for _, v := range vals {
		if got == v {
			ok = true
		}
	}
	if !ok {
		t.Errorf("final value %v is not one of the written values (torn write?)", got)
	}
}

// Package mathx provides the numeric substrate shared by every model in
// this repository: numerically stable logistic functions, a fast
// deterministic random number generator, vector kernels, and summary
// statistics.
//
// All training code draws randomness exclusively from mathx.RNG so that a
// single seed reproduces an entire experiment bit-for-bit, and all loss
// computations go through LogSigmoid, which is stable for arguments of
// either sign (a naive log(1/(1+exp(-x))) overflows for large |x| and
// poisons SGD with NaNs).
package mathx

package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct{ a, b, x, want float64 }{
		// I_x(1,1) = x (uniform CDF).
		{1, 1, 0.3, 0.3},
		{1, 1, 0.75, 0.75},
		// I_x(2,2) = x²(3−2x).
		{2, 2, 0.5, 0.5},
		{2, 2, 0.25, 0.25 * 0.25 * (3 - 0.5)},
		// I_x(1,2) = 1−(1−x)² = 2x − x².
		{1, 2, 0.4, 2*0.4 - 0.16},
		// Endpoints.
		{3, 4, 0, 0},
		{3, 4, 1, 1},
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); !AlmostEqual(got, c.want, 1e-10) {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 − I_{1−x}(b,a).
	rng := NewRNG(1)
	f := func(seed uint8) bool {
		a := 0.5 + 5*rng.Float64()
		b := 0.5 + 5*rng.Float64()
		x := rng.Float64()
		return AlmostEqual(RegIncBeta(a, b, x), 1-RegIncBeta(b, a, 1-x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	prev := 0.0
	for x := 0.0; x <= 1.0001; x += 0.01 {
		v := RegIncBeta(2.5, 3.5, x)
		if v+1e-12 < prev {
			t.Fatalf("not monotone at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	cases := []struct{ t, df, want, tol float64 }{
		{0, 5, 0.5, 1e-12},
		// t distribution with df=1 is Cauchy: CDF(1) = 3/4.
		{1, 1, 0.75, 1e-9},
		{-1, 1, 0.25, 1e-9},
		// Standard table: P(T ≤ 2.776) ≈ 0.975 at df=4.
		{2.776, 4, 0.975, 1e-3},
		// Large df approaches the normal: P(T ≤ 1.96) ≈ 0.975.
		{1.96, 10000, 0.975, 1e-3},
	}
	for _, c := range cases {
		if got := StudentTCDF(c.t, c.df); !AlmostEqual(got, c.want, c.tol) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
	if !math.IsNaN(StudentTCDF(1, 0)) {
		t.Error("df = 0 should give NaN")
	}
}

func TestPairedTTestSignificantDifference(t *testing.T) {
	// b is consistently 0.1 above a with tiny noise: p must be small.
	a := []float64{0.50, 0.52, 0.48, 0.51, 0.49}
	b := []float64{0.60, 0.63, 0.58, 0.60, 0.59}
	res, err := PairedTTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.T <= 0 {
		t.Errorf("t = %v, want positive for b > a", res.T)
	}
	if res.P > 0.01 {
		t.Errorf("p = %v, want < 0.01 for a consistent gap", res.P)
	}
	if res.DF != 4 {
		t.Errorf("df = %v, want 4", res.DF)
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	rng := NewRNG(3)
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		base := rng.Float64()
		a[i] = base + 0.01*rng.NormFloat64()
		b[i] = base + 0.01*rng.NormFloat64()
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Errorf("p = %v for same-distribution pairs, want large", res.P)
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	// Identical vectors: p = 1.
	a := []float64{1, 2, 3}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Errorf("identical vectors: %+v", res)
	}
	// Constant nonzero difference: p = 0.
	b := []float64{2, 3, 4}
	res, err = PairedTTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 || !math.IsInf(res.T, 1) {
		t.Errorf("constant positive difference: %+v", res)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair accepted")
	}
}

func TestPValueInRange(t *testing.T) {
	rng := NewRNG(5)
	f := func(seed uint8) bool {
		n := int(seed%8) + 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		res, err := PairedTTest(a, b)
		if err != nil {
			return false
		}
		return res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package mathx

// Dot returns the inner product of a and b. The slices must have equal
// length; this is the hot kernel of every matrix-factorization score in the
// repository, so it asserts nothing and lets the runtime bounds-check.
func Dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// AXPY computes dst[i] += alpha*x[i] in place.
func AXPY(alpha float64, x, dst []float64) {
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of xs by alpha in place.
func Scale(alpha float64, xs []float64) {
	for i := range xs {
		xs[i] *= alpha
	}
}

// Norm2Sq returns the squared Euclidean norm of xs.
func Norm2Sq(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}

// Fill sets every element of xs to v.
func Fill(xs []float64, v float64) {
	for i := range xs {
		xs[i] = v
	}
}

// CopyVec returns a fresh copy of xs.
func CopyVec(xs []float64) []float64 {
	return append([]float64(nil), xs...)
}

package mathx

import "math"

// RNG is a xoshiro256** pseudo-random generator. It is small (32 bytes of
// state), fast, and — unlike math/rand's global source — fully deterministic
// under an explicit seed, which every experiment in this repository requires
// for reproducibility. RNG is not safe for concurrent use; give each
// goroutine its own generator via Split.
type RNG struct {
	s [4]uint64
}

// splitmix64 expands a single seed word into well-mixed state words, as
// recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given value. Any seed,
// including zero, yields a valid non-degenerate state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Split derives an independent child generator from r. The child's stream
// is decorrelated from the parent's continuation, letting one experiment
// seed hand deterministic sub-streams to workers, samplers, and data
// generators.
func (r *RNG) Split() *RNG {
	seed := r.Uint64() ^ 0xa5a5a5a5a5a5a5a5
	return NewRNG(seed)
}

// State returns the generator's four state words, for checkpointing.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState replaces the generator's state with one previously captured by
// State, resuming the stream at exactly the same position. An all-zero
// state would be absorbing for xoshiro256**, so it is re-expanded from
// seed zero instead.
func (r *RNG) SetState(s [4]uint64) {
	if s == ([4]uint64{}) {
		*r = *NewRNG(0)
		return
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	hi = aHi*bHi + t>>32 + (aLo*bHi+t&mask)>>32
	lo = a * b
	return
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a draw from the geometric distribution with success
// probability p, counting the number of failures before the first success
// (support {0, 1, 2, ...}). It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("mathx: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Inverse CDF: floor(ln(1-u) / ln(1-p)).
	return int(math.Log1p(-u) / math.Log1p(-p))
}

// GeometricCapped draws from a geometric distribution truncated to
// [0, n). Draws beyond the cap are redrawn, preserving the head-heavy shape
// the paper's samplers rely on while always returning a valid rank.
func (r *RNG) GeometricCapped(p float64, n int) int {
	if n <= 0 {
		panic("mathx: GeometricCapped with non-positive n")
	}
	for i := 0; i < 64; i++ {
		if g := r.Geometric(p); g < n {
			return g
		}
	}
	// Pathologically small p relative to n: fall back to uniform rather
	// than spinning forever.
	return r.Intn(n)
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

package experiments

import (
	"fmt"

	"clapf/internal/core"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/mathx"
	"clapf/internal/sampling"
)

// TuneLambda implements the paper's model-selection protocol (§6.3): train
// CLAPF at each candidate λ on the reduced training split and pick the
// value maximizing NDCG@5 on the held-out validation pairs. It returns the
// winning λ and its validation score.
//
// candidates may be nil, defaulting to the paper's grid {0.0, 0.1, …, 1.0}.
func TuneLambda(train *dataset.Dataset, validation []dataset.Interaction,
	variant sampling.Objective, budget BudgetConfig, seed uint64,
	candidates []float64) (float64, float64, error) {

	if len(validation) == 0 {
		return 0, 0, fmt.Errorf("experiments: empty validation set")
	}
	if candidates == nil {
		for tick := 0; tick <= 10; tick++ {
			candidates = append(candidates, float64(tick)/10)
		}
	}
	// The validation pairs become a one-pair-per-user "test" dataset.
	vb := dataset.NewBuilder(train.Name(), train.NumUsers(), train.NumItems())
	for _, v := range validation {
		if err := vb.Add(v.User, v.Item); err != nil {
			return 0, 0, err
		}
	}
	valSet := vb.Build()

	bestLambda, bestScore := candidates[0], -1.0
	for _, lambda := range candidates {
		cfg := core.DefaultConfig(variant, train.NumPairs())
		cfg.Lambda = lambda
		cfg.Steps = budget.EpochEquivalents * train.NumPairs()
		cfg.Seed = seed
		tr, err := core.NewTrainer(cfg, train)
		if err != nil {
			return 0, 0, err
		}
		tr.Run()
		res := eval.Evaluate(tr.Model(), train, valSet, eval.Options{
			Ks:       []int{5},
			MaxUsers: 300,
			RNG:      mathx.NewRNG(seed),
		})
		if score := res.MustAt(5).NDCG; score > bestScore {
			bestLambda, bestScore = lambda, score
		}
	}
	return bestLambda, bestScore, nil
}

// SignificanceVsBaseline runs a paired t-test of every method's
// per-replicate NDCG@5 against the named baseline's (same splits, so the
// observations pair naturally — the paper's five-copy protocol is exactly
// this design). It returns one result per non-baseline method and requires
// at least two replicates.
func SignificanceVsBaseline(rows []Table2Row, baseline string) (map[string]mathx.TTestResult, error) {
	var ref []float64
	for _, r := range rows {
		if r.Method == baseline {
			ref = r.SamplesNDCG5
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("experiments: baseline %q not among rows", baseline)
	}
	if len(ref) < 2 {
		return nil, fmt.Errorf("experiments: significance needs >= 2 replicates, got %d", len(ref))
	}
	out := make(map[string]mathx.TTestResult, len(rows)-1)
	for _, r := range rows {
		if r.Method == baseline {
			continue
		}
		res, err := mathx.PairedTTest(r.SamplesNDCG5, ref)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s vs %s: %w", r.Method, baseline, err)
		}
		out[r.Method] = res
	}
	return out, nil
}

package experiments

import (
	"fmt"
	"time"

	"clapf/internal/core"
	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/mathx"
	"clapf/internal/sampling"
)

// Setup fixes the data side of an experiment: which corpus profile, how far
// it is scaled down, how many replicate splits, and the evaluation cutoffs.
type Setup struct {
	Profile    datagen.Profile
	Scale      float64 // 0 or 1 = full size
	Replicates int     // the paper averages five train/test copies
	Seed       uint64
	Ks         []int
	// EvalMaxUsers caps evaluated users per replicate (0 = all); large
	// profiles need it to keep wall-clock sane on one core.
	EvalMaxUsers int
	Budget       BudgetConfig
}

// DefaultSetup returns the benchmark setup for a named Table 1 profile at
// the given scale.
func DefaultSetup(profileName string, scale float64) (Setup, error) {
	p, err := datagen.ProfileByName(profileName)
	if err != nil {
		return Setup{}, err
	}
	return Setup{
		Profile:      p,
		Scale:        scale,
		Replicates:   3,
		Seed:         1,
		Ks:           eval.DefaultKs,
		EvalMaxUsers: 500,
		Budget:       DefaultBudget(),
	}, nil
}

// Replicate is one generated world with its train/validation/test split.
type Replicate struct {
	World      *datagen.World
	Train      *dataset.Dataset
	Test       *dataset.Dataset
	Validation []dataset.Interaction
}

// MakeReplicates generates the data once and splits it Replicates times
// with different split seeds — the paper's five-copy protocol.
func MakeReplicates(s Setup) ([]Replicate, error) {
	if s.Replicates < 1 {
		return nil, fmt.Errorf("experiments: Replicates = %d, want >= 1", s.Replicates)
	}
	profile := s.Profile.Scaled(s.Scale)
	world, err := datagen.Generate(profile, mathx.NewRNG(s.Seed))
	if err != nil {
		return nil, err
	}
	reps := make([]Replicate, s.Replicates)
	for r := range reps {
		splitRNG := mathx.NewRNG(s.Seed + 1000*uint64(r+1))
		train, test := dataset.Split(world.Data, splitRNG, 0.5)
		train, validation := dataset.HoldOutValidation(train, splitRNG)
		reps[r] = Replicate{World: world, Train: train, Test: test, Validation: validation}
	}
	return reps, nil
}

// MeanStd aggregates a metric over replicates.
type MeanStd struct {
	Mean float64
	Std  float64
}

func (m MeanStd) String() string { return fmt.Sprintf("%.3f±%.3f", m.Mean, m.Std) }

// Table2Row is one method's aggregated Table 2 line: Prec@5, Recall@5,
// F1@5, 1-call@5, NDCG@5, MAP, MRR, and mean train time.
type Table2Row struct {
	Method  string
	Prec5   MeanStd
	Recall5 MeanStd
	F15     MeanStd
	OneCall MeanStd
	NDCG5   MeanStd
	MAP     MeanStd
	MRR     MeanStd
	AUC     MeanStd
	Train   time.Duration
	// SamplesNDCG5 holds the per-replicate NDCG@5 values (replicate order),
	// the paired observations significance tests run on.
	SamplesNDCG5 []float64
}

// TopKCurve is one method's Figure 2 series: Recall@k and NDCG@k over the
// k sweep.
type TopKCurve struct {
	Method string
	Ks     []int
	Recall []float64
	NDCG   []float64
}

// RunComparison trains every method on every replicate and aggregates —
// the single pass that yields both Table 2 (the @5 row + MAP/MRR + time)
// and Figure 2 (the full k sweep).
func RunComparison(s Setup, methods []Method) ([]Table2Row, []TopKCurve, error) {
	reps, err := MakeReplicates(s)
	if err != nil {
		return nil, nil, err
	}
	ks := s.Ks
	if len(ks) == 0 {
		ks = eval.DefaultKs
	}

	rows := make([]Table2Row, 0, len(methods))
	curves := make([]TopKCurve, 0, len(methods))
	for _, method := range methods {
		agg := newAggregator(ks)
		var trainTime time.Duration
		for r, rep := range reps {
			start := time.Now()
			scorer, err := method.Build(rep.Train, s.Seed+uint64(100*r)+7)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: %s replicate %d: %w", method.Name, r, err)
			}
			trainTime += time.Since(start)
			res := eval.Evaluate(scorer, rep.Train, rep.Test, eval.Options{
				Ks:       ks,
				MaxUsers: s.EvalMaxUsers,
				RNG:      mathx.NewRNG(s.Seed + uint64(r)),
			})
			agg.add(res)
		}
		row, curve := agg.finish(method.Name, ks)
		row.Train = trainTime / time.Duration(len(reps))
		rows = append(rows, row)
		curves = append(curves, curve)
	}
	return rows, curves, nil
}

// aggregator accumulates per-replicate results.
type aggregator struct {
	prec5, recall5, f15, onecall5, ndcg5 mathx.OnlineStats
	mapS, mrrS, aucS                     mathx.OnlineStats
	recallK, ndcgK                       []mathx.OnlineStats
	ndcg5Samples                         []float64
}

func newAggregator(ks []int) *aggregator {
	return &aggregator{
		recallK: make([]mathx.OnlineStats, len(ks)),
		ndcgK:   make([]mathx.OnlineStats, len(ks)),
	}
}

func (a *aggregator) add(res eval.Result) {
	m5, err := res.At(5)
	if err == nil {
		a.prec5.Add(m5.Prec)
		a.recall5.Add(m5.Recall)
		a.f15.Add(m5.F1)
		a.onecall5.Add(m5.OneCall)
		a.ndcg5.Add(m5.NDCG)
		a.ndcg5Samples = append(a.ndcg5Samples, m5.NDCG)
	}
	a.mapS.Add(res.MAP)
	a.mrrS.Add(res.MRR)
	a.aucS.Add(res.AUC)
	for i, m := range res.AtK {
		a.recallK[i].Add(m.Recall)
		a.ndcgK[i].Add(m.NDCG)
	}
}

func ms(o mathx.OnlineStats) MeanStd { return MeanStd{Mean: o.Mean(), Std: o.StdDev()} }

func (a *aggregator) finish(name string, ks []int) (Table2Row, TopKCurve) {
	row := Table2Row{
		Method:       name,
		Prec5:        ms(a.prec5),
		Recall5:      ms(a.recall5),
		F15:          ms(a.f15),
		OneCall:      ms(a.onecall5),
		NDCG5:        ms(a.ndcg5),
		MAP:          ms(a.mapS),
		MRR:          ms(a.mrrS),
		AUC:          ms(a.aucS),
		SamplesNDCG5: a.ndcg5Samples,
	}
	curve := TopKCurve{Method: name, Ks: ks}
	for i := range ks {
		curve.Recall = append(curve.Recall, a.recallK[i].Mean())
		curve.NDCG = append(curve.NDCG, a.ndcgK[i].Mean())
	}
	return row, curve
}

// LambdaPoint is one Figure 3 measurement.
type LambdaPoint struct {
	Lambda  float64
	Prec5   float64
	Recall5 float64
	F15     float64
	NDCG5   float64
	MAP     float64
	MRR     float64
}

// RunLambdaSweep reproduces Figure 3 for one CLAPF variant: λ from 0 to 1
// in steps of 0.1 (λ = 0 is exactly BPR; λ = 1 drops the pairwise term).
func RunLambdaSweep(s Setup, variant sampling.Objective) ([]LambdaPoint, error) {
	reps, err := MakeReplicates(s)
	if err != nil {
		return nil, err
	}
	var points []LambdaPoint
	for tick := 0; tick <= 10; tick++ {
		lambda := float64(tick) / 10
		var p5, r5, f5, n5, mp, mr mathx.OnlineStats
		for r, rep := range reps {
			cfg := core.DefaultConfig(variant, rep.Train.NumPairs())
			cfg.Lambda = lambda
			cfg.Steps = s.Budget.EpochEquivalents * rep.Train.NumPairs()
			cfg.Seed = s.Seed + uint64(100*r) + 13
			tr, err := core.NewTrainer(cfg, rep.Train)
			if err != nil {
				return nil, err
			}
			tr.Run()
			res := eval.Evaluate(tr.Model(), rep.Train, rep.Test, eval.Options{
				Ks:       []int{5},
				MaxUsers: s.EvalMaxUsers,
				RNG:      mathx.NewRNG(s.Seed + uint64(r)),
			})
			m5 := res.MustAt(5)
			p5.Add(m5.Prec)
			r5.Add(m5.Recall)
			f5.Add(m5.F1)
			n5.Add(m5.NDCG)
			mp.Add(res.MAP)
			mr.Add(res.MRR)
		}
		points = append(points, LambdaPoint{
			Lambda: lambda,
			Prec5:  p5.Mean(), Recall5: r5.Mean(), F15: f5.Mean(),
			NDCG5: n5.Mean(), MAP: mp.Mean(), MRR: mr.Mean(),
		})
	}
	return points, nil
}

// ConvergenceTrace is one Figure 4 series: test MAP sampled along training
// for one sampler.
type ConvergenceTrace struct {
	Sampler sampling.Strategy
	Steps   []int
	MAP     []float64
}

// RunConvergence reproduces Figure 4: CLAPF trained under each sampling
// strategy, with test MAP recorded every checkpoint.
func RunConvergence(s Setup, variant sampling.Objective, checkpoints int) ([]ConvergenceTrace, error) {
	if checkpoints < 2 {
		return nil, fmt.Errorf("experiments: checkpoints = %d, want >= 2", checkpoints)
	}
	reps, err := MakeReplicates(s)
	if err != nil {
		return nil, err
	}
	rep := reps[0] // convergence curves use a single split, as in the paper
	totalSteps := s.Budget.EpochEquivalents * rep.Train.NumPairs()
	// Quadratic checkpoint spacing: sampler differences matter most early
	// in training (Fig. 4's observation), so spend resolution there.
	marks := make([]int, checkpoints)
	for c := 1; c <= checkpoints; c++ {
		frac := float64(c) / float64(checkpoints)
		marks[c-1] = int(frac * frac * float64(totalSteps))
	}

	strategies := []sampling.Strategy{
		sampling.Uniform, sampling.PositiveOnly, sampling.NegativeOnly, sampling.DSS,
	}
	var traces []ConvergenceTrace
	for _, strat := range strategies {
		cfg := core.DefaultConfig(variant, rep.Train.NumPairs())
		cfg.Lambda = LambdaFor(s.Profile.Name, variant)
		cfg.Steps = totalSteps
		cfg.Sampler.Strategy = strat
		cfg.Seed = s.Seed + 31
		tr, err := core.NewTrainer(cfg, rep.Train)
		if err != nil {
			return nil, err
		}
		trace := ConvergenceTrace{Sampler: strat}
		for _, mark := range marks {
			tr.RunSteps(mark - tr.StepsDone())
			res := eval.Evaluate(tr.Model(), rep.Train, rep.Test, eval.Options{
				Ks:       []int{5},
				MaxUsers: s.EvalMaxUsers,
				RNG:      mathx.NewRNG(s.Seed),
			})
			trace.Steps = append(trace.Steps, mark)
			trace.MAP = append(trace.MAP, res.MAP)
		}
		traces = append(traces, trace)
	}
	return traces, nil
}

// Table1Stats reproduces Table 1 for the given profiles at a scale.
func Table1Stats(profiles []datagen.Profile, scale float64, seed uint64) ([]dataset.Stats, error) {
	var stats []dataset.Stats
	for _, p := range profiles {
		world, err := datagen.Generate(p.Scaled(scale), mathx.NewRNG(seed))
		if err != nil {
			return nil, err
		}
		train, test := dataset.Split(world.Data, mathx.NewRNG(seed+1), 0.5)
		stats = append(stats, dataset.TableStats(train, test))
	}
	return stats, nil
}

package experiments

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"clapf/internal/baselines"
	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/sampling"
)

// goldenFile pins the full experiment pipeline — data generation, split,
// training, full-ranking evaluation — to known-good numbers. Any change
// to an RNG stream, sampler, update rule, or metric implementation shows
// up here as a drift, deliberate or not.
const goldenFile = "testdata/golden_metrics.json"

// goldenTolerance absorbs float formatting and cross-platform libm noise;
// the pipeline itself is bit-deterministic under fixed seeds.
const goldenTolerance = 1e-6

type goldenEntry struct {
	Prec5 float64 `json:"prec5"`
	MRR   float64 `json:"mrr"`
}

type goldenDoc struct {
	Profile string                 `json:"profile"`
	Seed    uint64                 `json:"seed"`
	Note    string                 `json:"note"`
	Methods map[string]goldenEntry `json:"methods"`
}

// goldenSetup is a scaled ML100K profile small enough for unit tests but
// large enough that the methods separate.
func goldenSetup() Setup {
	return Setup{
		Profile:      datagen.Table1Profiles[0].Scaled(0.12),
		Scale:        1, // profile is pre-scaled
		Replicates:   2,
		Seed:         9,
		Ks:           []int{5},
		EvalMaxUsers: 60,
	}
}

// goldenMethods is the pinned subset: the trivial baseline, the pairwise
// reference, both CLAPF variants, and the DSS-accelerated one.
func goldenMethods() []Method {
	budget := BudgetConfig{EpochEquivalents: 8}
	return []Method{
		fitterMethod("PopRank", func(_ *dataset.Dataset, _ uint64) (fitScorer, error) {
			return baselines.NewPopRank(), nil
		}),
		fitterMethod("BPR", func(train *dataset.Dataset, seed uint64) (fitScorer, error) {
			cfg := baselines.DefaultBPRConfig(train.NumPairs())
			cfg.Steps = budget.EpochEquivalents * train.NumPairs()
			cfg.Seed = seed
			return baselines.NewBPR(cfg)
		}),
		clapfMethod("CLAPF-MAP", sampling.MAP, sampling.Uniform, 0.4, budget),
		clapfMethod("CLAPF-MRR", sampling.MRR, sampling.Uniform, 0.6, budget),
		clapfMethod("CLAPF+DSS-MAP", sampling.MAP, sampling.DSS, 0.4, budget),
	}
}

func runGolden(t *testing.T) goldenDoc {
	t.Helper()
	s := goldenSetup()
	rows, _, err := RunComparison(s, goldenMethods())
	if err != nil {
		t.Fatal(err)
	}
	doc := goldenDoc{
		Profile: s.Profile.Name,
		Seed:    s.Seed,
		Note:    "regenerate with UPDATE_GOLDEN=1 go test ./internal/experiments/ -run TestGoldenMetrics",
		Methods: make(map[string]goldenEntry, len(rows)),
	}
	for _, row := range rows {
		doc.Methods[row.Method] = goldenEntry{Prec5: row.Prec5.Mean, MRR: row.MRR.Mean}
	}
	return doc
}

// TestGoldenMetrics fails when the fixed-seed pipeline drifts from the
// checked-in numbers. Set UPDATE_GOLDEN=1 to re-pin after an intentional
// change (and review the diff: silent metric movement is the bug class
// this test exists to catch).
func TestGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("trains five methods")
	}
	got := runGolden(t)

	if os.Getenv("UPDATE_GOLDEN") != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", goldenFile)
		return
	}

	raw, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("golden file missing (generate with UPDATE_GOLDEN=1): %v", err)
	}
	var want goldenDoc
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	if want.Profile != got.Profile || want.Seed != got.Seed {
		t.Fatalf("golden fixture mismatch: file is %s/seed %d, test runs %s/seed %d",
			want.Profile, want.Seed, got.Profile, got.Seed)
	}
	for name, w := range want.Methods {
		g, ok := got.Methods[name]
		if !ok {
			t.Errorf("method %s in golden file but not produced", name)
			continue
		}
		if d := math.Abs(g.Prec5 - w.Prec5); d > goldenTolerance {
			t.Errorf("%s Prec@5 drifted: got %.9f, golden %.9f (|Δ| = %.2e)", name, g.Prec5, w.Prec5, d)
		}
		if d := math.Abs(g.MRR - w.MRR); d > goldenTolerance {
			t.Errorf("%s MRR drifted: got %.9f, golden %.9f (|Δ| = %.2e)", name, g.MRR, w.MRR, d)
		}
	}
	for name := range got.Methods {
		if _, ok := want.Methods[name]; !ok {
			t.Errorf("method %s produced but missing from golden file (regenerate)", name)
		}
	}

	// The pinned numbers must also stay *sane*: CLAPF beating PopRank on
	// MRR is the paper's core claim at any scale.
	if got.Methods["CLAPF-MAP"].MRR <= got.Methods["PopRank"].MRR*0.8 {
		t.Errorf("CLAPF-MAP MRR %.4f collapsed below PopRank %.4f",
			got.Methods["CLAPF-MAP"].MRR, got.Methods["PopRank"].MRR)
	}
}

package experiments

import (
	"strings"
	"testing"
)

// The serve bench at toy scale: all three phases run through a live
// loopback server, serve the requested number of lists, and produce
// positive throughput and latency numbers. Speedup magnitudes are
// hardware-dependent and asserted only by the committed BENCH_serve.json,
// not here.
func TestRunServeBenchSmoke(t *testing.T) {
	setup, err := DefaultSetup("ML100K", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServeBench(setup, 40, 8, 2048)
	if err != nil {
		t.Fatal(err)
	}
	f := b.F32
	if f == nil {
		t.Fatal("kernelItems > 0 but no F32 section")
	}
	if f.KernelItems != 2048 || f.F32ScanUsersPerSec <= 0 || f.F64ScanUsersPerSec <= 0 ||
		f.F32BatchUsersPerSec <= 0 || f.F64BatchUsersPerSec <= 0 {
		t.Errorf("f32 kernel arms implausible: %+v", f)
	}
	if f.ParamBytesRatio <= 0 || f.ParamBytesRatio > 0.55 {
		t.Errorf("param bytes ratio = %v, want (0, 0.55]", f.ParamBytesRatio)
	}
	if f.ParitySamples < 2 {
		t.Errorf("only %d parity samples", f.ParitySamples)
	}
	if f.WelchPPrec5 <= 0.05 || f.WelchPNDCG5 <= 0.05 {
		t.Errorf("quantization parity rejected: p_prec5=%v p_ndcg5=%v", f.WelchPPrec5, f.WelchPNDCG5)
	}
	if f.IVFRecall10 < 0.95 || f.IVFRecall10 > 1 {
		t.Errorf("f32-IVF recall@10 = %v, want [0.95, 1] (full probe: any loss is quantization's)", f.IVFRecall10)
	}
	if len(b.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(b.Rows))
	}
	wantPaths := []string{"single", "batch", "cached"}
	for i, r := range b.Rows {
		if r.Path != wantPaths[i] {
			t.Errorf("row %d path = %q, want %q", i, r.Path, wantPaths[i])
		}
		if r.Recs != 40 {
			t.Errorf("%s served %d lists, want 40", r.Path, r.Recs)
		}
		if r.RecsPerSec <= 0 || r.WallSeconds <= 0 {
			t.Errorf("%s has non-positive throughput: %+v", r.Path, r)
		}
		if r.P50ms <= 0 || r.P99ms < r.P50ms {
			t.Errorf("%s percentiles implausible: p50=%v p99=%v", r.Path, r.P50ms, r.P99ms)
		}
	}
	if b.Rows[1].Requests != 5 { // ceil(40/8)
		t.Errorf("batch used %d requests, want 5", b.Rows[1].Requests)
	}
	if b.BatchSpeedup <= 0 || b.CachedSpeedup <= 0 {
		t.Errorf("speedups not computed: batch=%v cached=%v", b.BatchSpeedup, b.CachedSpeedup)
	}

	var sb strings.Builder
	if err := RenderServeBench(&sb, b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"single", "batch", "cached", "speedup"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered table missing %q:\n%s", want, sb.String())
		}
	}
	var js strings.Builder
	if err := WriteServeBenchJSON(&js, b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"batch_speedup_vs_single"`, `"p99_ms"`, `"users_per_sec"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON report missing %s", want)
		}
	}
}

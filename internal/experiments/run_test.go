package experiments

import (
	"bytes"
	"strings"
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/sampling"
)

// tinySetup is small enough for unit tests yet learnable.
func tinySetup() Setup {
	return Setup{
		Profile: datagen.Profile{
			Name: "ML100K", Users: 100, Items: 180, Pairs: 4000,
			ZipfExp: 0.6, Dim: 5, Affinity: 6,
		},
		Scale:        1,
		Replicates:   2,
		Seed:         9,
		Ks:           []int{3, 5},
		EvalMaxUsers: 60,
		Budget: BudgetConfig{
			EpochEquivalents: 40,
			CLiMFEpochs:      5,
			NeuralEpochs:     2,
			WMFSweeps:        4,
			RandomWalkWalks:  50,
		},
	}
}

func TestMakeReplicates(t *testing.T) {
	s := tinySetup()
	reps, err := MakeReplicates(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d replicates", len(reps))
	}
	// Replicates share the world but differ in the split.
	if reps[0].World != reps[1].World {
		t.Error("replicates regenerated the world")
	}
	if reps[0].Train.NumPairs() == 0 || reps[0].Test.NumPairs() == 0 {
		t.Error("empty split")
	}
	if len(reps[0].Validation) == 0 {
		t.Error("no validation pairs held out")
	}
	if reps[0].Train.NumPairs() == reps[1].Train.NumPairs() {
		// Different split seeds almost surely differ in size.
		t.Log("warning: replicate splits identical in size (possible but unlikely)")
	}
	// Validation pairs must not be in the reduced training set.
	for _, v := range reps[0].Validation[:10] {
		if reps[0].Train.IsPositive(v.User, v.Item) {
			t.Fatal("validation pair leaked into training")
		}
	}
	if _, err := MakeReplicates(Setup{Profile: s.Profile, Replicates: 0}); err == nil {
		t.Error("zero replicates accepted")
	}
}

func TestLambdaFor(t *testing.T) {
	if LambdaFor("ML100K", sampling.MAP) != 0.4 {
		t.Error("ML100K MAP λ wrong")
	}
	if LambdaFor("ML1M", sampling.MRR) != 0.8 {
		t.Error("ML1M MRR λ wrong")
	}
	if LambdaFor("unknown", sampling.MAP) != 0.3 {
		t.Error("fallback λ wrong")
	}
}

func TestRunComparisonSubset(t *testing.T) {
	s := tinySetup()
	// A subset keeps the unit test fast; the full 13-method run is
	// exercised by the bench harness.
	methods := Table2Methods(s.Profile.Name, s.Budget)
	var subset []Method
	for _, m := range methods {
		switch {
		case m.Name == "PopRank" || m.Name == "BPR" ||
			strings.HasPrefix(m.Name, "CLAPF(") && strings.HasSuffix(m.Name, "-MAP"):
			subset = append(subset, m)
		}
	}
	if len(subset) != 3 {
		t.Fatalf("subset has %d methods, want 3", len(subset))
	}
	rows, curves, err := RunComparison(s, subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(curves) != 3 {
		t.Fatalf("got %d rows, %d curves", len(rows), len(curves))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	pop := byName["PopRank"]
	var clapf Table2Row
	for n, r := range byName {
		if strings.HasPrefix(n, "CLAPF(") {
			clapf = r
		}
	}
	// The paper's headline: CLAPF beats the non-personalized floor by a
	// wide margin on ranking metrics.
	if clapf.MAP.Mean <= pop.MAP.Mean {
		t.Errorf("CLAPF MAP %.4f not above PopRank %.4f", clapf.MAP.Mean, pop.MAP.Mean)
	}
	if clapf.NDCG5.Mean <= pop.NDCG5.Mean {
		t.Errorf("CLAPF NDCG@5 %.4f not above PopRank %.4f", clapf.NDCG5.Mean, pop.NDCG5.Mean)
	}
	// Curves carry both requested ks.
	for _, c := range curves {
		if len(c.Ks) != 2 || len(c.Recall) != 2 || len(c.NDCG) != 2 {
			t.Fatalf("curve %s malformed: %+v", c.Method, c)
		}
		// Recall@5 >= Recall@3.
		if c.Recall[1]+1e-9 < c.Recall[0] {
			t.Errorf("%s recall not monotone in k", c.Method)
		}
	}
}

func TestRunLambdaSweepShape(t *testing.T) {
	s := tinySetup()
	s.Replicates = 1
	s.Budget.EpochEquivalents = 8
	points, err := RunLambdaSweep(s, sampling.MAP)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 11 {
		t.Fatalf("got %d λ points, want 11", len(points))
	}
	if points[0].Lambda != 0 || points[10].Lambda != 1 {
		t.Errorf("λ endpoints wrong: %v, %v", points[0].Lambda, points[10].Lambda)
	}
	// Every metric must be a sane probability-like value.
	for _, p := range points {
		for _, v := range []float64{p.Prec5, p.Recall5, p.F15, p.NDCG5, p.MAP, p.MRR} {
			if v < 0 || v > 1 {
				t.Fatalf("metric out of range at λ=%.1f: %+v", p.Lambda, p)
			}
		}
	}
}

func TestRunConvergenceShape(t *testing.T) {
	s := tinySetup()
	s.Budget.EpochEquivalents = 6
	traces, err := RunConvergence(s, sampling.MAP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 {
		t.Fatalf("got %d traces, want 4 samplers", len(traces))
	}
	names := map[sampling.Strategy]bool{}
	for _, tr := range traces {
		names[tr.Sampler] = true
		if len(tr.Steps) != 4 || len(tr.MAP) != 4 {
			t.Fatalf("trace %v has %d checkpoints", tr.Sampler, len(tr.Steps))
		}
		// MAP at the end should beat the first checkpoint for a learnable
		// dataset... at minimum it must be finite and in range.
		for _, v := range tr.MAP {
			if v < 0 || v > 1 {
				t.Fatalf("MAP out of range: %v", v)
			}
		}
	}
	for _, want := range []sampling.Strategy{sampling.Uniform, sampling.DSS, sampling.PositiveOnly, sampling.NegativeOnly} {
		if !names[want] {
			t.Errorf("missing trace for %v", want)
		}
	}
	if _, err := RunConvergence(s, sampling.MAP, 1); err == nil {
		t.Error("single checkpoint accepted")
	}
}

func TestTable1StatsAndRender(t *testing.T) {
	profiles := []datagen.Profile{tinySetup().Profile}
	stats, err := Table1Stats(profiles, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Users != 100 {
		t.Fatalf("stats = %+v", stats)
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, stats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ML100K") || !strings.Contains(out, "density") {
		t.Errorf("Table 1 render missing fields:\n%s", out)
	}
}

func TestRenderers(t *testing.T) {
	rows := []Table2Row{
		{Method: "A", MAP: MeanStd{Mean: 0.5, Std: 0.01}, MRR: MeanStd{Mean: 0.3}},
		{Method: "B", MAP: MeanStd{Mean: 0.7, Std: 0.02}, MRR: MeanStd{Mean: 0.2}},
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, "X", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0.700±0.020*") {
		t.Errorf("best MAP not starred:\n%s", out)
	}
	if !strings.Contains(out, "0.300±0.000*") {
		t.Errorf("best MRR not starred:\n%s", out)
	}

	curves := []TopKCurve{{Method: "A", Ks: []int{3, 5}, Recall: []float64{0.1, 0.2}, NDCG: []float64{0.3, 0.4}}}
	buf.Reset()
	if err := RenderTopKCurves(&buf, "X", curves); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k=5") {
		t.Error("top-k render missing header")
	}

	points := []LambdaPoint{{Lambda: 0, MAP: 0.1}, {Lambda: 0.5, MAP: 0.2}}
	buf.Reset()
	if err := RenderLambdaSweep(&buf, "X", "MAP", points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "λ sweep") {
		t.Error("λ sweep render missing header")
	}
	csv := CSVLambdaSweep(points)
	if !strings.HasPrefix(csv, "lambda,") || !strings.Contains(csv, "0.5,") {
		t.Errorf("CSV malformed:\n%s", csv)
	}

	traces := []ConvergenceTrace{
		{Sampler: sampling.Uniform, Steps: []int{10, 20}, MAP: []float64{0.1, 0.2}},
		{Sampler: sampling.DSS, Steps: []int{10, 20}, MAP: []float64{0.15, 0.25}},
	}
	buf.Reset()
	if err := RenderConvergence(&buf, "X", traces); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DSS") {
		t.Error("convergence render missing sampler")
	}
	ccsv := CSVConvergence(traces)
	if !strings.Contains(ccsv, "step,Uniform,DSS") {
		t.Errorf("convergence CSV malformed:\n%s", ccsv)
	}
}

func TestTable2MethodsComplete(t *testing.T) {
	methods := Table2Methods("ML100K", DefaultBudget())
	if len(methods) != 13 {
		t.Fatalf("got %d methods, want 13 (9 baselines + 4 CLAPF rows)", len(methods))
	}
	want := []string{"PopRank", "RandomWalk", "WMF", "BPR", "MPR", "CLiMF", "NeuMF", "NeuPR", "DeepICF"}
	for i, name := range want {
		if methods[i].Name != name {
			t.Errorf("method[%d] = %q, want %q", i, methods[i].Name, name)
		}
	}
	for _, suffix := range []string{"CLAPF(λ=0.4)-MAP", "CLAPF(λ=0.2)-MRR", "CLAPF+(λ=0.4)-MAP", "CLAPF+(λ=0.2)-MRR"} {
		found := false
		for _, m := range methods {
			if m.Name == suffix {
				found = true
			}
		}
		if !found {
			t.Errorf("missing method %q", suffix)
		}
	}
}

func TestDefaultSetup(t *testing.T) {
	s, err := DefaultSetup("ml100k", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Profile.Name != "ML100K" || s.Replicates < 1 {
		t.Errorf("setup = %+v", s)
	}
	if _, err := DefaultSetup("nope", 1); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestCSVTable2AndTopK(t *testing.T) {
	rows := []Table2Row{{Method: "A", MAP: MeanStd{Mean: 0.5}}}
	csv := CSVTable2(rows)
	if !strings.Contains(csv, "method,prec5") || !strings.Contains(csv, "A,") {
		t.Errorf("CSVTable2 malformed:\n%s", csv)
	}
	curves := []TopKCurve{{Method: "A", Ks: []int{3, 5}, Recall: []float64{0.1, 0.2}, NDCG: []float64{0.3, 0.4}}}
	ccsv := CSVTopKCurves(curves)
	if !strings.Contains(ccsv, "A,5,0.200000,0.400000") {
		t.Errorf("CSVTopKCurves malformed:\n%s", ccsv)
	}
}

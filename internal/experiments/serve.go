package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"clapf/internal/datagen"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/serve"
)

// ServeBenchRow is one serving path's measured throughput and latency
// distribution. Requests counts HTTP round trips; Recs counts
// recommendation lists produced (for the batch path one request carries
// many). Latency percentiles are per HTTP request.
type ServeBenchRow struct {
	Path        string  `json:"path"`
	Requests    int     `json:"requests"`
	Recs        int     `json:"recommendations"`
	WallSeconds float64 `json:"wall_seconds"`
	RecsPerSec  float64 `json:"users_per_sec"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	P99ms       float64 `json:"p99_ms"`
}

// ServeBench is the serve-path load report: the same recommendation work
// pushed through the single-request path, the batch endpoint, and the
// warmed result cache, through the full production handler chain.
type ServeBench struct {
	Dataset       string          `json:"dataset"`
	Users         int             `json:"users"`
	Items         int             `json:"items"`
	Dim           int             `json:"dim"`
	K             int             `json:"k"`
	BatchSize     int             `json:"batch_size"`
	Cores         int             `json:"cores"`
	Rows          []ServeBenchRow `json:"rows"`
	BatchSpeedup  float64         `json:"batch_speedup_vs_single"`
	CachedSpeedup float64         `json:"cached_speedup_vs_single"`
}

// serveBenchK is the top-k size every benchmark request asks for.
const serveBenchK = 10

// RunServeBench measures recommendation serving throughput with an
// in-process load generator: a sequential keep-alive client drives the
// real serve.Handler() stack — mux, hardening middleware, JSON codec —
// over a loopback HTTP connection, so every request pays the transport
// cost a production caller pays. Three phases serve the same number of
// recommendation lists: one GET per user with the cache off, the batch
// endpoint with batchSize entries per POST, and single GETs against a
// warmed cache. The model is Gaussian-initialized rather than trained —
// serving cost does not depend on parameter values.
func RunServeBench(s Setup, requests, batchSize int) (*ServeBench, error) {
	if requests < 1 {
		return nil, fmt.Errorf("experiments: serve bench needs requests >= 1, got %d", requests)
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("experiments: serve bench needs batch size >= 1, got %d", batchSize)
	}
	profile := s.Profile.Scaled(s.Scale)
	world, err := datagen.Generate(profile, mathx.NewRNG(s.Seed))
	if err != nil {
		return nil, err
	}
	train := world.Data
	const dim = 16
	m := mf.MustNew(mf.Config{
		NumUsers: train.NumUsers(), NumItems: train.NumItems(),
		Dim: dim, UseBias: true, InitStd: 0.1,
	})
	m.InitGaussian(mathx.NewRNG(s.Seed+1), 0.1)
	srv, err := serve.New(m, train)
	if err != nil {
		return nil, err
	}
	if batchSize > srv.MaxBatch {
		srv.MaxBatch = batchSize
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	numUsers := train.NumUsers()

	out := &ServeBench{
		Dataset: s.Profile.Name, Users: numUsers, Items: train.NumItems(),
		Dim: dim, K: serveBenchK, BatchSize: batchSize, Cores: runtime.NumCPU(),
	}

	// Phase 1: the sequential single-request path, cache off so every
	// request pays the full score-and-rank cost.
	srv.SetCacheSize(0)
	single, err := driveSingle(client, ts.URL, numUsers, requests)
	if err != nil {
		return nil, err
	}
	single.Path = "single"
	out.Rows = append(out.Rows, single)

	// Phase 2: the same users through /recommend/batch, batchSize lists
	// per POST. Still uncached — the speedup here is amortized transport
	// and JSON overhead plus the blocked scoring kernel.
	batch, err := driveBatch(client, ts.URL, numUsers, requests, batchSize)
	if err != nil {
		return nil, err
	}
	batch.Path = "batch"
	out.Rows = append(out.Rows, batch)

	// Phase 3: single requests against a warmed cache — every request is
	// a top-k lookup.
	srv.SetCacheSize(serve.DefaultCacheSize)
	if _, err := driveSingle(client, ts.URL, numUsers, numUsers); err != nil { // prime
		return nil, err
	}
	cached, err := driveSingle(client, ts.URL, numUsers, requests)
	if err != nil {
		return nil, err
	}
	cached.Path = "cached"
	out.Rows = append(out.Rows, cached)

	if single.RecsPerSec > 0 {
		out.BatchSpeedup = batch.RecsPerSec / single.RecsPerSec
		out.CachedSpeedup = cached.RecsPerSec / single.RecsPerSec
	}
	return out, nil
}

// doTimed issues one request through the keep-alive client and returns
// the client-observed latency: status line to fully drained body, the
// cost a production caller pays per round trip.
func doTimed(client *http.Client, method, url string, body []byte) (time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	d := time.Since(t0)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("experiments: %s %s returned %d", method, url, resp.StatusCode)
	}
	return d, nil
}

// driveSingle times n GET /recommend requests cycling through the user
// base. Whether the run measures full score-and-rank cost or pure
// cache-hit serving depends on the server's cache state when called.
func driveSingle(client *http.Client, base string, numUsers, n int) (ServeBenchRow, error) {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/recommend?user=%d&k=%d", base, i%numUsers, serveBenchK)
	}
	for warm := 0; warm < 16; warm++ {
		if _, err := doTimed(client, http.MethodGet, urls[warm%n], nil); err != nil {
			return ServeBenchRow{}, err
		}
	}
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		d, err := doTimed(client, http.MethodGet, urls[i], nil)
		if err != nil {
			return ServeBenchRow{}, err
		}
		lat = append(lat, d)
	}
	return benchRow(lat, n), nil
}

// driveBatch times ceil(n/batchSize) POST /recommend/batch requests that
// together serve n recommendation lists. Bodies are marshaled up front:
// building the request is the client's cost, not the server's.
func driveBatch(client *http.Client, base string, numUsers, n, batchSize int) (ServeBenchRow, error) {
	url := base + "/recommend/batch"
	var bodies [][]byte
	for served := 0; served < n; {
		count := batchSize
		if n-served < count {
			count = n - served
		}
		req := serve.BatchRequest{Requests: make([]serve.BatchEntry, count)}
		for j := 0; j < count; j++ {
			u := int32((served + j) % numUsers)
			req.Requests[j] = serve.BatchEntry{User: &u, K: serveBenchK}
		}
		body, err := json.Marshal(req)
		if err != nil {
			return ServeBenchRow{}, err
		}
		bodies = append(bodies, body)
		served += count
	}
	for warm := 0; warm < 2; warm++ {
		if _, err := doTimed(client, http.MethodPost, url, bodies[0]); err != nil {
			return ServeBenchRow{}, err
		}
	}
	lat := make([]time.Duration, 0, len(bodies))
	for _, body := range bodies {
		d, err := doTimed(client, http.MethodPost, url, body)
		if err != nil {
			return ServeBenchRow{}, err
		}
		lat = append(lat, d)
	}
	return benchRow(lat, n), nil
}

// benchRow folds per-request latencies into a report row serving recs
// recommendation lists. Wall-clock is the sum of handler time, so the
// in-process client's own bookkeeping does not dilute the measurement.
func benchRow(lat []time.Duration, recs int) ServeBenchRow {
	var wall time.Duration
	for _, d := range lat {
		wall += d
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	row := ServeBenchRow{
		Requests:    len(lat),
		Recs:        recs,
		WallSeconds: wall.Seconds(),
		P50ms:       percentileMs(lat, 50),
		P95ms:       percentileMs(lat, 95),
		P99ms:       percentileMs(lat, 99),
	}
	if wall > 0 {
		row.RecsPerSec = float64(recs) / wall.Seconds()
	}
	return row
}

// percentileMs returns the nearest-rank p-th percentile of sorted
// latencies, in milliseconds.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}

// RenderServeBench prints the serving report as an aligned text table.
func RenderServeBench(w io.Writer, b *ServeBench) error {
	if _, err := fmt.Fprintf(w,
		"serve bench on %s (%d users, %d items, dim %d, k=%d, batch=%d, %d cores)\n",
		b.Dataset, b.Users, b.Items, b.Dim, b.K, b.BatchSize, b.Cores); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %9s %8s %12s %10s %10s %10s\n",
		"path", "requests", "recs", "recs/s", "p50(ms)", "p95(ms)", "p99(ms)"); err != nil {
		return err
	}
	for _, r := range b.Rows {
		if _, err := fmt.Fprintf(w, "%-8s %9d %8d %12.0f %10.4f %10.4f %10.4f\n",
			r.Path, r.Requests, r.Recs, r.RecsPerSec, r.P50ms, r.P95ms, r.P99ms); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "batch speedup vs single: %.2fx, cached: %.2fx\n",
		b.BatchSpeedup, b.CachedSpeedup)
	return err
}

// WriteServeBenchJSON emits the report as indented JSON (the
// BENCH_serve.json payload of scripts/bench.sh).
func WriteServeBenchJSON(w io.Writer, b *ServeBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

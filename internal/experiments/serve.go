package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/rank"
	"clapf/internal/retrieval"
	"clapf/internal/score"
	"clapf/internal/serve"
)

// ServeBenchRow is one serving path's measured throughput and latency
// distribution. Requests counts HTTP round trips; Recs counts
// recommendation lists produced (for the batch path one request carries
// many). Latency percentiles are per HTTP request.
type ServeBenchRow struct {
	Path        string  `json:"path"`
	Requests    int     `json:"requests"`
	Recs        int     `json:"recommendations"`
	WallSeconds float64 `json:"wall_seconds"`
	RecsPerSec  float64 `json:"users_per_sec"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	P99ms       float64 `json:"p99_ms"`
}

// ServeBench is the serve-path load report: the same recommendation work
// pushed through the single-request path, the batch endpoint, and the
// warmed result cache, through the full production handler chain.
type ServeBench struct {
	Dataset       string          `json:"dataset"`
	Users         int             `json:"users"`
	Items         int             `json:"items"`
	Dim           int             `json:"dim"`
	K             int             `json:"k"`
	BatchSize     int             `json:"batch_size"`
	Cores         int             `json:"cores"`
	Rows          []ServeBenchRow `json:"rows"`
	BatchSpeedup  float64         `json:"batch_speedup_vs_single"`
	CachedSpeedup float64         `json:"cached_speedup_vs_single"`
	F32           *F32Bench       `json:"f32,omitempty"`
}

// F32Bench compares the float32 serving representation against the
// float64 reference along the three axes the v3 store format trades on:
// kernel throughput, parameter footprint, and ranking quality.
//
// The kernel arms run the score.Engine blocked sweep over a synthetic
// KernelItems x KernelDim catalog sized to spill the cache hierarchy, in
// two regimes. The scan arm scores one user per sweep — the exact-mode
// cost of a single /recommend request, where the whole item matrix
// streams from memory and float32's halved traffic wins outright. The
// batch arm scores BatchUsers per sweep, where the blocked kernel already
// amortizes each tile across the batch and the two representations are
// compute-bound to rough parity; it is reported so the scan speedup can't
// be mistaken for a universal one.
//
// Quality is measured two ways on the serve model itself: Welch t-tests
// on matched per-user Prec@5/NDCG@5 samples (f64 vs its f32 quantization
// — parity means p stays far above 0.05), and recall@10 of an IVF index
// built over the f32 factors against exact f64 top-10.
type F32Bench struct {
	KernelItems int `json:"kernel_items"`
	KernelDim   int `json:"kernel_dim"`
	BatchUsers  int `json:"batch_users"`

	F64ScanUsersPerSec  float64 `json:"f64_scan_users_per_sec"`
	F32ScanUsersPerSec  float64 `json:"f32_scan_users_per_sec"`
	ScanSpeedup         float64 `json:"f32_scan_speedup"`
	F64BatchUsersPerSec float64 `json:"f64_batch_users_per_sec"`
	F32BatchUsersPerSec float64 `json:"f32_batch_users_per_sec"`
	BatchSpeedup        float64 `json:"f32_batch_speedup"`

	F64ParamBytes   int64   `json:"f64_param_bytes"`
	F32ParamBytes   int64   `json:"f32_param_bytes"`
	ParamBytesRatio float64 `json:"param_bytes_ratio"`

	ParitySamples int     `json:"parity_samples"`
	Prec5F64      float64 `json:"prec5_f64"`
	Prec5F32      float64 `json:"prec5_f32"`
	WelchPPrec5   float64 `json:"welch_p_prec5"`
	NDCG5F64      float64 `json:"ndcg5_f64"`
	NDCG5F32      float64 `json:"ndcg5_f32"`
	WelchPNDCG5   float64 `json:"welch_p_ndcg5"`

	IVFRecallUsers int     `json:"ivf_recall_users"`
	IVFRecall10    float64 `json:"f32_ivf_recall_at_10"`
}

// serveBenchK is the top-k size every benchmark request asks for.
const serveBenchK = 10

// RunServeBench measures recommendation serving throughput with an
// in-process load generator: a sequential keep-alive client drives the
// real serve.Handler() stack — mux, hardening middleware, JSON codec —
// over a loopback HTTP connection, so every request pays the transport
// cost a production caller pays. Three phases serve the same number of
// recommendation lists: one GET per user with the cache off, the batch
// endpoint with batchSize entries per POST, and single GETs against a
// warmed cache. The model is Gaussian-initialized rather than trained —
// serving cost does not depend on parameter values.
//
// kernelItems > 0 additionally runs the float32-vs-float64 comparison
// (see F32Bench) with a synthetic kernel catalog of that many items; 0
// skips it.
func RunServeBench(s Setup, requests, batchSize, kernelItems int) (*ServeBench, error) {
	if requests < 1 {
		return nil, fmt.Errorf("experiments: serve bench needs requests >= 1, got %d", requests)
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("experiments: serve bench needs batch size >= 1, got %d", batchSize)
	}
	profile := s.Profile.Scaled(s.Scale)
	world, err := datagen.Generate(profile, mathx.NewRNG(s.Seed))
	if err != nil {
		return nil, err
	}
	train := world.Data
	const dim = 16
	m := mf.MustNew(mf.Config{
		NumUsers: train.NumUsers(), NumItems: train.NumItems(),
		Dim: dim, UseBias: true, InitStd: 0.1,
	})
	m.InitGaussian(mathx.NewRNG(s.Seed+1), 0.1)
	srv, err := serve.New(m, train)
	if err != nil {
		return nil, err
	}
	if batchSize > srv.MaxBatch {
		srv.MaxBatch = batchSize
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	numUsers := train.NumUsers()

	out := &ServeBench{
		Dataset: s.Profile.Name, Users: numUsers, Items: train.NumItems(),
		Dim: dim, K: serveBenchK, BatchSize: batchSize, Cores: runtime.NumCPU(),
	}

	// Phase 1: the sequential single-request path, cache off so every
	// request pays the full score-and-rank cost.
	srv.SetCacheSize(0)
	single, err := driveSingle(client, ts.URL, numUsers, requests)
	if err != nil {
		return nil, err
	}
	single.Path = "single"
	out.Rows = append(out.Rows, single)

	// Phase 2: the same users through /recommend/batch, batchSize lists
	// per POST. Still uncached — the speedup here is amortized transport
	// and JSON overhead plus the blocked scoring kernel.
	batch, err := driveBatch(client, ts.URL, numUsers, requests, batchSize)
	if err != nil {
		return nil, err
	}
	batch.Path = "batch"
	out.Rows = append(out.Rows, batch)

	// Phase 3: single requests against a warmed cache — every request is
	// a top-k lookup.
	srv.SetCacheSize(serve.DefaultCacheSize)
	if _, err := driveSingle(client, ts.URL, numUsers, numUsers); err != nil { // prime
		return nil, err
	}
	cached, err := driveSingle(client, ts.URL, numUsers, requests)
	if err != nil {
		return nil, err
	}
	cached.Path = "cached"
	out.Rows = append(out.Rows, cached)

	if single.RecsPerSec > 0 {
		out.BatchSpeedup = batch.RecsPerSec / single.RecsPerSec
		out.CachedSpeedup = cached.RecsPerSec / single.RecsPerSec
	}

	if kernelItems > 0 {
		f32b, err := runF32Bench(s.Seed, train, m, kernelItems)
		if err != nil {
			return nil, err
		}
		out.F32 = f32b
	}
	return out, nil
}

// f32KernelDim is the latent dimensionality of the synthetic kernel
// catalog — larger than the serve model's so a realistic share of each
// sweep is spent inside the dot kernel rather than loop overhead.
const f32KernelDim = 32

// f32BatchUsers is the batch arm's users per sweep.
const f32BatchUsers = 8

// runF32Bench measures the float32 serving representation against
// float64: engine throughput on a synthetic kernelItems-item catalog,
// parameter footprint, per-user metric parity on the serve model, and
// f32-IVF recall against f64-exact retrieval.
func runF32Bench(seed uint64, train *dataset.Dataset, m *mf.Model, kernelItems int) (*F32Bench, error) {
	out := &F32Bench{KernelItems: kernelItems, KernelDim: f32KernelDim, BatchUsers: f32BatchUsers}

	// Kernel arms: one Gaussian catalog, scored through the blocked
	// engine in both representations. The catalog is sized by the caller
	// to overflow cache, so the scan arm measures the memory-streaming
	// regime a single exact-mode request lives in.
	km := mf.MustNew(mf.Config{
		NumUsers: f32BatchUsers, NumItems: kernelItems,
		Dim: f32KernelDim, UseBias: true, InitStd: 0.1,
	})
	km.InitGaussian(mathx.NewRNG(seed+11), 0.1)
	kf := mf.QuantizeF32(km)
	out.F64ParamBytes = km.ParamBytes()
	out.F32ParamBytes = kf.ParamBytes()
	out.ParamBytesRatio = float64(kf.ParamBytes()) / float64(km.ParamBytes())

	batchUsers := make([]int32, f32BatchUsers)
	for i := range batchUsers {
		batchUsers[i] = int32(i)
	}
	rows := score.NewScoreRows(f32BatchUsers, kernelItems)
	sweep := func(p mf.Params, users []int32) float64 {
		eng := score.NewEngine(p)
		eng.ScoreUsers(users, rows) // warm
		const sweeps = 4
		t0 := time.Now()
		for i := 0; i < sweeps; i++ {
			eng.ScoreUsers(users, rows)
		}
		return float64(sweeps*len(users)) / time.Since(t0).Seconds()
	}
	out.F64ScanUsersPerSec = sweep(km, batchUsers[:1])
	out.F32ScanUsersPerSec = sweep(kf, batchUsers[:1])
	out.F64BatchUsersPerSec = sweep(km, batchUsers)
	out.F32BatchUsersPerSec = sweep(kf, batchUsers)
	if out.F64ScanUsersPerSec > 0 {
		out.ScanSpeedup = out.F32ScanUsersPerSec / out.F64ScanUsersPerSec
	}
	if out.F64BatchUsersPerSec > 0 {
		out.BatchSpeedup = out.F32BatchUsersPerSec / out.F64BatchUsersPerSec
	}

	// Metric parity: split the serve dataset, rank with the float64 model
	// and its quantization over identical splits, and Welch-test the
	// matched per-user samples. Parity means the test cannot tell the
	// representations apart — p nowhere near the 0.05 rejection line.
	f := mf.QuantizeF32(m)
	tr, te := dataset.Split(train, mathx.NewRNG(seed+12), 0.8)
	prec64, ndcg64 := eval.PerUserAtK(m, tr, te, 5)
	prec32, ndcg32 := eval.PerUserAtK(f, tr, te, 5)
	out.ParitySamples = len(prec64)
	out.Prec5F64, out.Prec5F32 = mathx.Mean(prec64), mathx.Mean(prec32)
	out.NDCG5F64, out.NDCG5F32 = mathx.Mean(ndcg64), mathx.Mean(ndcg32)
	if len(prec64) >= 2 && len(prec32) >= 2 {
		if res, err := mathx.WelchTTest(prec64, prec32); err == nil {
			out.WelchPPrec5 = res.P
		}
		if res, err := mathx.WelchTTest(ndcg64, ndcg32); err == nil {
			out.WelchPNDCG5 = res.P
		}
	}

	// Retrieval quality: an IVF index over the float32 factors answering
	// against float64 exact top-10, serve-style (train positives
	// excluded), at full probe width. Full width isolates the axis this
	// arm is gating — quantization reordering the ranking — because a
	// full probe over f32 factors is bit-identical to the f32 exact scan;
	// any recall below 1.0 is float32's doing. Pruning loss at the index
	// defaults is BENCH_retrieval.json's business, measured at a catalog
	// size where pruning is actually configured to operate.
	ix, err := retrieval.BuildIVF(f, retrieval.Config{Seed: seed + 13, NProbe: 1 << 30})
	if err != nil {
		return nil, err
	}
	eng := score.NewEngine(m)
	scores := make([]float64, m.NumItems())
	nUsers := m.NumUsers()
	const maxRecallUsers = 512
	if nUsers > maxRecallUsers {
		nUsers = maxRecallUsers
	}
	var recallSum float64
	for u := int32(0); int(u) < nUsers; u++ {
		eng.ScoreAll(u, scores)
		pos := train.Positives(u)
		idx := 0
		top, _ := rank.TopKDropped(scores, serveBenchK, func(i int32) bool {
			for idx < len(pos) && pos[idx] < i {
				idx++
			}
			return idx < len(pos) && pos[idx] == i
		})
		exact := make([]int32, len(top))
		for j, e := range top {
			exact[j] = e.Item
		}
		uf := m.UserFactors(u)
		approxTop, _ := ix.Search(uf, serveBenchK, 0, pos)
		approx := make([]int32, len(approxTop))
		for j, e := range approxTop {
			approx[j] = e.Item
		}
		recallSum += eval.RecallVsExact(approx, exact)
	}
	out.IVFRecallUsers = nUsers
	if nUsers > 0 {
		out.IVFRecall10 = recallSum / float64(nUsers)
	}
	return out, nil
}

// doTimed issues one request through the keep-alive client and returns
// the client-observed latency: status line to fully drained body, the
// cost a production caller pays per round trip.
func doTimed(client *http.Client, method, url string, body []byte) (time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	d := time.Since(t0)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("experiments: %s %s returned %d", method, url, resp.StatusCode)
	}
	return d, nil
}

// driveSingle times n GET /recommend requests cycling through the user
// base. Whether the run measures full score-and-rank cost or pure
// cache-hit serving depends on the server's cache state when called.
func driveSingle(client *http.Client, base string, numUsers, n int) (ServeBenchRow, error) {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/recommend?user=%d&k=%d", base, i%numUsers, serveBenchK)
	}
	for warm := 0; warm < 16; warm++ {
		if _, err := doTimed(client, http.MethodGet, urls[warm%n], nil); err != nil {
			return ServeBenchRow{}, err
		}
	}
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		d, err := doTimed(client, http.MethodGet, urls[i], nil)
		if err != nil {
			return ServeBenchRow{}, err
		}
		lat = append(lat, d)
	}
	return benchRow(lat, n), nil
}

// driveBatch times ceil(n/batchSize) POST /recommend/batch requests that
// together serve n recommendation lists. Bodies are marshaled up front:
// building the request is the client's cost, not the server's.
func driveBatch(client *http.Client, base string, numUsers, n, batchSize int) (ServeBenchRow, error) {
	url := base + "/recommend/batch"
	var bodies [][]byte
	for served := 0; served < n; {
		count := batchSize
		if n-served < count {
			count = n - served
		}
		req := serve.BatchRequest{Requests: make([]serve.BatchEntry, count)}
		for j := 0; j < count; j++ {
			u := int32((served + j) % numUsers)
			req.Requests[j] = serve.BatchEntry{User: &u, K: serveBenchK}
		}
		body, err := json.Marshal(req)
		if err != nil {
			return ServeBenchRow{}, err
		}
		bodies = append(bodies, body)
		served += count
	}
	for warm := 0; warm < 2; warm++ {
		if _, err := doTimed(client, http.MethodPost, url, bodies[0]); err != nil {
			return ServeBenchRow{}, err
		}
	}
	lat := make([]time.Duration, 0, len(bodies))
	for _, body := range bodies {
		d, err := doTimed(client, http.MethodPost, url, body)
		if err != nil {
			return ServeBenchRow{}, err
		}
		lat = append(lat, d)
	}
	return benchRow(lat, n), nil
}

// benchRow folds per-request latencies into a report row serving recs
// recommendation lists. Wall-clock is the sum of handler time, so the
// in-process client's own bookkeeping does not dilute the measurement.
func benchRow(lat []time.Duration, recs int) ServeBenchRow {
	var wall time.Duration
	for _, d := range lat {
		wall += d
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	row := ServeBenchRow{
		Requests:    len(lat),
		Recs:        recs,
		WallSeconds: wall.Seconds(),
		P50ms:       percentileMs(lat, 50),
		P95ms:       percentileMs(lat, 95),
		P99ms:       percentileMs(lat, 99),
	}
	if wall > 0 {
		row.RecsPerSec = float64(recs) / wall.Seconds()
	}
	return row
}

// percentileMs returns the nearest-rank p-th percentile of sorted
// latencies, in milliseconds.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}

// RenderServeBench prints the serving report as an aligned text table.
func RenderServeBench(w io.Writer, b *ServeBench) error {
	if _, err := fmt.Fprintf(w,
		"serve bench on %s (%d users, %d items, dim %d, k=%d, batch=%d, %d cores)\n",
		b.Dataset, b.Users, b.Items, b.Dim, b.K, b.BatchSize, b.Cores); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %9s %8s %12s %10s %10s %10s\n",
		"path", "requests", "recs", "recs/s", "p50(ms)", "p95(ms)", "p99(ms)"); err != nil {
		return err
	}
	for _, r := range b.Rows {
		if _, err := fmt.Fprintf(w, "%-8s %9d %8d %12.0f %10.4f %10.4f %10.4f\n",
			r.Path, r.Requests, r.Recs, r.RecsPerSec, r.P50ms, r.P95ms, r.P99ms); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "batch speedup vs single: %.2fx, cached: %.2fx\n",
		b.BatchSpeedup, b.CachedSpeedup); err != nil {
		return err
	}
	if f := b.F32; f != nil {
		if _, err := fmt.Fprintf(w,
			"float32 kernel (%d items, dim %d): scan %.0f vs %.0f users/s (%.2fx), batch[%d] %.0f vs %.0f users/s (%.2fx), param bytes %.2fx\n",
			f.KernelItems, f.KernelDim, f.F32ScanUsersPerSec, f.F64ScanUsersPerSec, f.ScanSpeedup,
			f.BatchUsers, f.F32BatchUsersPerSec, f.F64BatchUsersPerSec, f.BatchSpeedup,
			f.ParamBytesRatio); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w,
			"float32 parity (%d users): Prec@5 %.4f vs %.4f (Welch p=%.3f), NDCG@5 %.4f vs %.4f (p=%.3f), f32-IVF recall@10 %.4f over %d users\n",
			f.ParitySamples, f.Prec5F32, f.Prec5F64, f.WelchPPrec5,
			f.NDCG5F32, f.NDCG5F64, f.WelchPNDCG5, f.IVFRecall10, f.IVFRecallUsers); err != nil {
			return err
		}
	}
	return nil
}

// WriteServeBenchJSON emits the report as indented JSON (the
// BENCH_serve.json payload of scripts/bench.sh).
func WriteServeBenchJSON(w io.Writer, b *ServeBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

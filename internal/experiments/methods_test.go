package experiments

import (
	"testing"

	"clapf/internal/core"
	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/sampling"
)

// TestAllThirteenMethodsBuild fits every Table 2 method on a tiny world —
// the integration smoke test that the whole model zoo trains and scores
// through one interface.
func TestAllThirteenMethodsBuild(t *testing.T) {
	w, err := datagen.Generate(datagen.Profile{
		Name: "all", Users: 40, Items: 60, Pairs: 800,
		ZipfExp: 0.7, Dim: 4, Affinity: 5,
	}, mathx.NewRNG(51))
	if err != nil {
		t.Fatal(err)
	}
	train, _ := dataset.Split(w.Data, mathx.NewRNG(52), 0.5)

	budget := BudgetConfig{
		EpochEquivalents: 2,
		CLiMFEpochs:      1,
		NeuralEpochs:     1,
		WMFSweeps:        1,
		RandomWalkWalks:  5,
	}
	out := make([]float64, train.NumItems())
	for _, m := range Table2Methods("ML100K", budget) {
		scorer, err := m.Build(train, 1)
		if err != nil {
			t.Fatalf("%s: Build: %v", m.Name, err)
		}
		scorer.ScoreAll(0, out)
		for i, v := range out {
			if v != v { // NaN check
				t.Fatalf("%s: NaN score at item %d", m.Name, i)
			}
		}
	}
}

// TestBudgetAffectsSteps verifies EpochEquivalents actually scales work:
// a bigger budget must change the resulting model.
func TestBudgetAffectsSteps(t *testing.T) {
	w, err := datagen.Generate(datagen.Profile{
		Name: "bud", Users: 30, Items: 50, Pairs: 500,
		ZipfExp: 0.7, Dim: 4, Affinity: 5,
	}, mathx.NewRNG(53))
	if err != nil {
		t.Fatal(err)
	}
	train := w.Data

	buildBPR := func(epochs int) float64 {
		budget := DefaultBudget()
		budget.EpochEquivalents = epochs
		methods := Table2Methods("ML100K", budget)
		var bpr Method
		for _, m := range methods {
			if m.Name == "BPR" {
				bpr = m
			}
		}
		scorer, err := bpr.Build(train, 9)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, train.NumItems())
		scorer.ScoreAll(0, out)
		return mathx.Sum(out)
	}
	if buildBPR(1) == buildBPR(20) {
		t.Error("budget had no effect on BPR training")
	}
}

// TestTuneLambda runs the validation-based model selection on a tiny world
// and checks it returns a grid value with a sane score.
func TestTuneLambda(t *testing.T) {
	w, err := datagen.Generate(datagen.Profile{
		Name: "tune", Users: 60, Items: 100, Pairs: 1800,
		ZipfExp: 0.6, Dim: 4, Affinity: 6,
	}, mathx.NewRNG(55))
	if err != nil {
		t.Fatal(err)
	}
	train, _ := dataset.Split(w.Data, mathx.NewRNG(56), 0.5)
	train, validation := dataset.HoldOutValidation(train, mathx.NewRNG(57))

	budget := DefaultBudget()
	budget.EpochEquivalents = 20
	lambda, score, err := TuneLambda(train, validation, sampling.MAP, budget, 58, []float64{0, 0.3, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if lambda != 0 && lambda != 0.3 && lambda != 0.9 {
		t.Errorf("returned λ = %v not in candidate grid", lambda)
	}
	if score < 0 || score > 1 {
		t.Errorf("validation score %v out of range", score)
	}
	if _, _, err := TuneLambda(train, nil, sampling.MAP, budget, 1, nil); err == nil {
		t.Error("empty validation accepted")
	}
}

func TestSignificanceVsBaseline(t *testing.T) {
	rows := []Table2Row{
		{Method: "BPR", SamplesNDCG5: []float64{0.20, 0.21, 0.19}},
		{Method: "CLAPF", SamplesNDCG5: []float64{0.25, 0.26, 0.24}},
		{Method: "Rand", SamplesNDCG5: []float64{0.21, 0.19, 0.21}},
	}
	sig, err := SignificanceVsBaseline(rows, "BPR")
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 2 {
		t.Fatalf("got %d results", len(sig))
	}
	if sig["CLAPF"].P > 0.05 {
		t.Errorf("consistent +0.05 gap not significant: p = %v", sig["CLAPF"].P)
	}
	if sig["Rand"].P < 0.05 {
		t.Errorf("noise flagged significant: p = %v", sig["Rand"].P)
	}
	if _, err := SignificanceVsBaseline(rows, "nope"); err == nil {
		t.Error("unknown baseline accepted")
	}
	one := []Table2Row{
		{Method: "BPR", SamplesNDCG5: []float64{0.2}},
		{Method: "X", SamplesNDCG5: []float64{0.3}},
	}
	if _, err := SignificanceVsBaseline(one, "BPR"); err == nil {
		t.Error("single replicate accepted")
	}
}

func TestTrainWithEarlyStopping(t *testing.T) {
	w, err := datagen.Generate(datagen.Profile{
		Name: "es", Users: 80, Items: 140, Pairs: 2500,
		ZipfExp: 0.6, Dim: 4, Affinity: 6,
	}, mathx.NewRNG(71))
	if err != nil {
		t.Fatal(err)
	}
	train, _ := dataset.Split(w.Data, mathx.NewRNG(72), 0.5)
	train, validation := dataset.HoldOutValidation(train, mathx.NewRNG(73))

	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Dim = 6
	cfg.Seed = 74
	es := EarlyStopConfig{
		CheckEvery:   5 * train.NumPairs(),
		Patience:     3,
		MaxSteps:     200 * train.NumPairs(),
		EvalMaxUsers: 60,
		Seed:         75,
	}
	res, err := TrainWithEarlyStopping(cfg, train, validation, es)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best model returned")
	}
	if res.BestScore < 0 {
		t.Errorf("best score = %v", res.BestScore)
	}
	if res.BestStep > res.StepsRun {
		t.Errorf("BestStep %d beyond StepsRun %d", res.BestStep, res.StepsRun)
	}
	if res.StepsRun > es.MaxSteps {
		t.Errorf("ran %d steps, budget %d", res.StepsRun, es.MaxSteps)
	}
	// With generous budget and small patience, training normally halts
	// before exhausting the budget.
	if !res.Stopped && res.StepsRun == es.MaxSteps {
		t.Log("note: ran to MaxSteps without patience stop (acceptable but unusual)")
	}
}

func TestTrainWithEarlyStoppingValidation(t *testing.T) {
	w, err := datagen.Generate(datagen.Profile{
		Name: "esv", Users: 20, Items: 40, Pairs: 300, Dim: 3, ZipfExp: 0.7, Affinity: 5,
	}, mathx.NewRNG(76))
	if err != nil {
		t.Fatal(err)
	}
	train := w.Data
	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	good := EarlyStopConfig{CheckEvery: 100, Patience: 1, MaxSteps: 500}
	if _, err := TrainWithEarlyStopping(cfg, train, nil, good); err == nil {
		t.Error("empty validation accepted")
	}
	val := []dataset.Interaction{{User: 0, Item: 1}}
	bad := []EarlyStopConfig{
		{CheckEvery: 0, Patience: 1, MaxSteps: 10},
		{CheckEvery: 10, Patience: 0, MaxSteps: 10},
		{CheckEvery: 10, Patience: 1, MaxSteps: 0},
	}
	for i, es := range bad {
		if _, err := TrainWithEarlyStopping(cfg, train, val, es); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

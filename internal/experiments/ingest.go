package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/feedback"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/serve"
)

// IngestAppendRow is one WAL group-commit configuration's measured append
// throughput and durable-ack latency distribution. Every append in the
// arm is acked only after a covering fsync, so AckP50ms/AckP95ms are the
// client-visible durability cost at that batching level.
type IngestAppendRow struct {
	SyncEvery    int     `json:"sync_every"`
	Events       int     `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	AckP50ms     float64 `json:"ack_p50_ms"`
	AckP95ms     float64 `json:"ack_p95_ms"`
}

// IngestServeOverhead compares /recommend latency with the online-update
// pipeline idle against the same load with a steady concurrent POST
// /feedback stream (WAL appends, overlay fold-ins, targeted cache
// invalidation all active). Both arms run cache-off so every request
// pays the full score-and-rank cost and the comparison cannot hide
// overlay overhead behind cache hits. Arms alternate for Rounds rounds
// and each reports its best (minimum) percentile, the same
// noise-suppression trick the trace bench uses.
type IngestServeOverhead struct {
	Requests         int     `json:"requests_per_round"`
	Rounds           int     `json:"rounds"`
	ConcurrentEvents int     `json:"concurrent_events"`
	BaselineP50ms    float64 `json:"baseline_p50_ms"`
	BaselineP95ms    float64 `json:"baseline_p95_ms"`
	IngestP50ms      float64 `json:"ingest_p50_ms"`
	IngestP95ms      float64 `json:"ingest_p95_ms"`
	OverheadPct      float64 `json:"p95_overhead_pct"`
}

// IngestBench is the streaming-feedback ingest report: WAL append
// throughput across fsync batching levels, plus the serve-path tail
// cost of keeping online updates hot.
type IngestBench struct {
	Dataset       string              `json:"dataset"`
	Users         int                 `json:"users"`
	Items         int                 `json:"items"`
	Dim           int                 `json:"dim"`
	AppendWorkers int                 `json:"append_workers"`
	Cores         int                 `json:"cores"`
	Appends       []IngestAppendRow   `json:"appends"`
	Serve         IngestServeOverhead `json:"serve_overhead"`
}

// ingestAppendWorkers is the concurrent-appender count for the WAL arms.
// It matches the largest SyncEvery level so the group-commit batch can
// actually fill: with fewer writers than the batch size, every batched
// append waits out the flusher tick and the arm measures the ticker, not
// the log.
const ingestAppendWorkers = 64

// ingestSyncLevels are the fsync batching levels the append arms sweep.
var ingestSyncLevels = []int{1, 8, 64}

// ingestOverheadRounds is how many alternating baseline/ingest rounds
// the serve-overhead arm runs.
const ingestOverheadRounds = 5

// RunIngestBench measures the crash-safe feedback ingest path. The
// append arms drive ingestAppendWorkers concurrent writers through a
// fresh WAL at each fsync batching level; throughput is wall-clock
// events/sec and latency is the per-append durable-ack distribution.
// The serve arm then loads a live serve.Handler() stack — once with
// feedback idle and once with a steady concurrent ingest stream — and
// reports the /recommend p95 overhead the online-update path costs.
func RunIngestBench(s Setup, events, requests int) (*IngestBench, error) {
	if events < ingestAppendWorkers {
		return nil, fmt.Errorf("experiments: ingest bench needs events >= %d, got %d", ingestAppendWorkers, events)
	}
	if requests < 1 {
		return nil, fmt.Errorf("experiments: ingest bench needs requests >= 1, got %d", requests)
	}
	profile := s.Profile.Scaled(s.Scale)
	world, err := datagen.Generate(profile, mathx.NewRNG(s.Seed))
	if err != nil {
		return nil, err
	}
	train := world.Data
	const dim = 16
	m := mf.MustNew(mf.Config{
		NumUsers: train.NumUsers(), NumItems: train.NumItems(),
		Dim: dim, UseBias: true, InitStd: 0.1,
	})
	m.InitGaussian(mathx.NewRNG(s.Seed+1), 0.1)

	out := &IngestBench{
		Dataset: s.Profile.Name, Users: train.NumUsers(), Items: train.NumItems(),
		Dim: dim, AppendWorkers: ingestAppendWorkers, Cores: runtime.NumCPU(),
	}

	for _, level := range ingestSyncLevels {
		row, err := runAppendArm(level, events)
		if err != nil {
			return nil, err
		}
		out.Appends = append(out.Appends, row)
	}

	overhead, err := runServeOverheadArm(m, train, requests)
	if err != nil {
		return nil, err
	}
	out.Serve = *overhead
	return out, nil
}

// runAppendArm opens a fresh WAL at the given SyncEvery and appends
// events from ingestAppendWorkers goroutines, each waiting for its
// durable ack before the next append — the contract the serve ingest
// path holds before acknowledging a client.
func runAppendArm(syncEvery, events int) (IngestAppendRow, error) {
	dir, err := os.MkdirTemp("", "clapf-ingest-wal-")
	if err != nil {
		return IngestAppendRow{}, err
	}
	defer os.RemoveAll(dir)
	wal, _, err := feedback.OpenWAL(dir, feedback.WALConfig{SyncEvery: syncEvery})
	if err != nil {
		return IngestAppendRow{}, err
	}
	defer wal.Close()

	perWorker := events / ingestAppendWorkers
	total := perWorker * ingestAppendWorkers
	ts := time.Now()
	lat := make([][]time.Duration, ingestAppendWorkers)
	errs := make([]error, ingestAppendWorkers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < ingestAppendWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat[w] = make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				start := time.Now()
				if _, err := wal.Append(int32(w), int32(i), ts); err != nil {
					errs[w] = err
					return
				}
				lat[w] = append(lat[w], time.Since(start))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return IngestAppendRow{}, err
		}
	}

	all := make([]time.Duration, 0, total)
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	row := IngestAppendRow{
		SyncEvery:   syncEvery,
		Events:      total,
		WallSeconds: wall.Seconds(),
		AckP50ms:    percentileMs(all, 50),
		AckP95ms:    percentileMs(all, 95),
	}
	if wall > 0 {
		row.EventsPerSec = float64(total) / wall.Seconds()
	}
	return row, nil
}

// ingestStreamPause is the gap between streamed POST /feedback events in
// the serve-overhead arm. Together with the durable-ack wait (~the WAL
// flusher tick) it paces the stream near 100 events/sec — heavy traffic
// for the bench's user base, but not so dense that on a small machine
// the stream's fsyncs timeshare the measured requests into a pure
// CPU-contention benchmark.
const ingestStreamPause = 10 * time.Millisecond

// runServeOverheadArm measures the /recommend latency cost of the live
// online-update pipeline. The baseline server has no feedback sink; the
// ingest server runs the full WAL + overlay + invalidation path with a
// background goroutine streaming POST /feedback at ingestStreamPause
// pacing while requests are timed. Arms alternate and keep their best
// percentiles, so a scheduler hiccup in one round cannot masquerade as
// ingest overhead.
func runServeOverheadArm(m *mf.Model, train *dataset.Dataset, requests int) (*IngestServeOverhead, error) {
	numUsers := train.NumUsers()

	baseSrv, err := serve.New(m, train)
	if err != nil {
		return nil, err
	}
	baseSrv.SetCacheSize(0)
	baseTS := httptest.NewServer(baseSrv.Handler())
	defer baseTS.Close()

	ingSrv, err := serve.New(m, train)
	if err != nil {
		return nil, err
	}
	ingSrv.SetCacheSize(0)
	dir, err := os.MkdirTemp("", "clapf-ingest-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	wal, _, err := feedback.OpenWAL(dir, feedback.WALConfig{SyncEvery: 8})
	if err != nil {
		return nil, err
	}
	defer wal.Close()
	ing := feedback.NewIngestor(wal, train, feedback.Config{FoldInReg: ingSrv.FoldInReg}, nil)
	ing.Bind(ingSrv)
	if err := ingSrv.EnableFeedback(ing); err != nil {
		return nil, err
	}
	ingTS := httptest.NewServer(ingSrv.Handler())
	defer ingTS.Close()

	// Populate an overlay row for every user up front: steady-state
	// serving reads merged histories for the whole user base, not a cold
	// overlay.
	freshItem := func(u int32, skip int) (int32, bool) {
		for i := int32(0); int(i) < train.NumItems(); i++ {
			if !train.IsPositive(u, i) {
				if skip == 0 {
					return i, true
				}
				skip--
			}
		}
		return 0, false
	}
	client := ingTS.Client()
	for u := 0; u < numUsers; u++ {
		item, ok := freshItem(int32(u), 0)
		if !ok {
			continue
		}
		body := fmt.Sprintf(`{"user":%d,"item":%d}`, u, item)
		if _, err := doTimed(client, http.MethodPost, ingTS.URL+"/feedback", []byte(body)); err != nil {
			return nil, err
		}
	}

	out := &IngestServeOverhead{Requests: requests, Rounds: ingestOverheadRounds}
	best := func(cur, candidate float64) float64 {
		if cur == 0 || candidate < cur {
			return candidate
		}
		return cur
	}
	for round := 0; round < ingestOverheadRounds; round++ {
		base, err := driveSingle(baseTS.Client(), baseTS.URL, numUsers, requests)
		if err != nil {
			return nil, err
		}
		out.BaselineP50ms = best(out.BaselineP50ms, base.P50ms)
		out.BaselineP95ms = best(out.BaselineP95ms, base.P95ms)

		// Stream feedback while the ingest arm is measured: round-robin
		// users, cycling through each user's fresh items so some events
		// extend the overlay and some hit the dedupe path — the mix a
		// live tier sees.
		stop := make(chan struct{})
		streamed := make(chan int, 1)
		var streamErr error
		go func() {
			n := 0
			defer func() { streamed <- n }()
			for attempt := 0; ; attempt++ {
				select {
				case <-stop:
					return
				default:
				}
				u := int32(attempt % numUsers)
				item, ok := freshItem(u, (attempt/numUsers)%4)
				if !ok {
					continue
				}
				body := fmt.Sprintf(`{"user":%d,"item":%d}`, u, item)
				if _, err := doTimed(client, http.MethodPost, ingTS.URL+"/feedback", []byte(body)); err != nil {
					streamErr = err
					return
				}
				n++
				time.Sleep(ingestStreamPause)
			}
		}()
		ingRow, err := driveSingle(ingTS.Client(), ingTS.URL, numUsers, requests)
		close(stop)
		out.ConcurrentEvents += <-streamed
		if err != nil {
			return nil, err
		}
		if streamErr != nil {
			return nil, streamErr
		}
		out.IngestP50ms = best(out.IngestP50ms, ingRow.P50ms)
		out.IngestP95ms = best(out.IngestP95ms, ingRow.P95ms)
	}
	if out.BaselineP95ms > 0 {
		out.OverheadPct = (out.IngestP95ms - out.BaselineP95ms) / out.BaselineP95ms * 100
	}
	return out, nil
}

// RenderIngestBench prints the ingest report as an aligned text table.
func RenderIngestBench(w io.Writer, b *IngestBench) error {
	if _, err := fmt.Fprintf(w,
		"ingest bench on %s (%d users, %d items, dim %d, %d append workers, %d cores)\n",
		b.Dataset, b.Users, b.Items, b.Dim, b.AppendWorkers, b.Cores); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %9s %12s %12s %12s\n",
		"fsync-every", "events", "events/s", "ack p50(ms)", "ack p95(ms)"); err != nil {
		return err
	}
	for _, r := range b.Appends {
		if _, err := fmt.Fprintf(w, "%-12d %9d %12.0f %12.4f %12.4f\n",
			r.SyncEvery, r.Events, r.EventsPerSec, r.AckP50ms, r.AckP95ms); err != nil {
			return err
		}
	}
	s := b.Serve
	_, err := fmt.Fprintf(w,
		"serve overhead (best of %d rounds, %d reqs/round, %d concurrent events): p95 %.4fms idle vs %.4fms under ingest (%+.2f%%)\n",
		s.Rounds, s.Requests, s.ConcurrentEvents, s.BaselineP95ms, s.IngestP95ms, s.OverheadPct)
	return err
}

// WriteIngestBenchJSON emits the report as indented JSON (the
// BENCH_ingest.json payload of scripts/bench.sh).
func WriteIngestBenchJSON(w io.Writer, b *IngestBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

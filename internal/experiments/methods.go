// Package experiments is the reproduction harness: it wires datasets,
// methods, and metrics into the exact experiments of the paper's §6 —
// Table 1 (dataset stats), Table 2 (method comparison), Figure 2 (top-k
// sweep), Figure 3 (λ trade-off), and Figure 4 (sampler convergence) — and
// renders them as aligned text tables or CSV.
package experiments

import (
	"fmt"
	"time"

	"clapf/internal/baselines"
	"clapf/internal/core"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/neural"
	"clapf/internal/sampling"
)

// Method is a named recommender constructor: Build must fit the model on
// the training split and return a scorer ready for evaluation.
type Method struct {
	Name  string
	Build func(train *dataset.Dataset, seed uint64) (eval.Scorer, error)
}

// lambdas holds the per-dataset trade-off values reported in Table 2 of
// the paper (e.g. "CLAPF (λ = 0.4) -MAP" on ML100K).
type lambdas struct{ MAP, MRR float64 }

var paperLambdas = map[string]lambdas{
	"ML100K":  {MAP: 0.4, MRR: 0.2},
	"ML1M":    {MAP: 0.4, MRR: 0.8},
	"UserTag": {MAP: 0.3, MRR: 0.2},
	"ML20M":   {MAP: 0.3, MRR: 0.9},
	"Flixter": {MAP: 0.3, MRR: 0.2},
	"Netflix": {MAP: 0.3, MRR: 0.2},
}

// LambdaFor returns the paper's tuned λ for the dataset and variant,
// falling back to 0.3 for unknown dataset names.
func LambdaFor(datasetName string, variant sampling.Objective) float64 {
	l, ok := paperLambdas[datasetName]
	if !ok {
		return 0.3
	}
	if variant == sampling.MRR {
		return l.MRR
	}
	return l.MAP
}

// BudgetConfig scales every iterative method's work so the whole Table 2
// column regenerates in minutes on one core while preserving relative
// training-time ratios.
type BudgetConfig struct {
	// EpochEquivalents is the number of passes over the training pairs
	// granted to each MF-based SGD method. The paper searches step
	// budgets up to 100k iterations; our synthetic worlds need ~200+
	// passes for the SGD rankers to converge (WMF's ALS converges in a
	// handful of sweeps regardless).
	EpochEquivalents int
	// CLiMFEpochs bounds CLiMF's full-gradient passes.
	CLiMFEpochs int
	// NeuralEpochs bounds the neural models' passes (they cost ~100× an
	// MF pass per example, and §6.4.1 notes they overfit long before MF
	// budgets anyway).
	NeuralEpochs int
	// WMFSweeps bounds ALS sweeps.
	WMFSweeps int
	// RandomWalkWalks is the per-user walk count for RandomWalk.
	RandomWalkWalks int
}

// DefaultBudget returns the standard benchmark budget.
func DefaultBudget() BudgetConfig {
	return BudgetConfig{
		EpochEquivalents: 240,
		CLiMFEpochs:      60,
		NeuralEpochs:     8,
		WMFSweeps:        10,
		RandomWalkWalks:  100,
	}
}

// clapfMethod builds one CLAPF variant.
func clapfMethod(name string, variant sampling.Objective, strategy sampling.Strategy, lambda float64, budget BudgetConfig) Method {
	return Method{
		Name: name,
		Build: func(train *dataset.Dataset, seed uint64) (eval.Scorer, error) {
			cfg := core.DefaultConfig(variant, train.NumPairs())
			cfg.Lambda = lambda
			cfg.Steps = budget.EpochEquivalents * train.NumPairs()
			cfg.Sampler.Strategy = strategy
			cfg.Seed = seed
			tr, err := core.NewTrainer(cfg, train)
			if err != nil {
				return nil, err
			}
			tr.Run()
			return tr.Model(), nil
		},
	}
}

// fitScorer is a model that can be fitted and then used as a scorer —
// every baseline in this repository.
type fitScorer interface {
	baselines.Fitter
	ScoreAll(u int32, out []float64)
}

// fitterMethod adapts any baseline Fitter+Recommender.
func fitterMethod(name string, mk func(train *dataset.Dataset, seed uint64) (fitScorer, error)) Method {
	return Method{
		Name: name,
		Build: func(train *dataset.Dataset, seed uint64) (eval.Scorer, error) {
			m, err := mk(train, seed)
			if err != nil {
				return nil, err
			}
			if err := m.Fit(train); err != nil {
				return nil, err
			}
			return m, nil
		},
	}
}

// Table2Methods returns the full method list of Table 2 in paper order —
// nine baselines plus the four CLAPF rows — configured for the given
// dataset (λ follows the paper's tuned values) and budget.
func Table2Methods(datasetName string, budget BudgetConfig) []Method {
	lamMAP := LambdaFor(datasetName, sampling.MAP)
	lamMRR := LambdaFor(datasetName, sampling.MRR)
	return []Method{
		fitterMethod("PopRank", func(_ *dataset.Dataset, _ uint64) (fitScorer, error) {
			return baselines.NewPopRank(), nil
		}),
		fitterMethod("RandomWalk", func(_ *dataset.Dataset, seed uint64) (fitScorer, error) {
			cfg := baselines.DefaultRandomWalkConfig()
			cfg.NumWalks = budget.RandomWalkWalks
			cfg.Seed = seed
			return baselines.NewRandomWalk(cfg)
		}),
		fitterMethod("WMF", func(_ *dataset.Dataset, seed uint64) (fitScorer, error) {
			cfg := baselines.DefaultWMFConfig()
			cfg.Sweeps = budget.WMFSweeps
			cfg.Seed = seed
			return baselines.NewWMF(cfg)
		}),
		fitterMethod("BPR", func(train *dataset.Dataset, seed uint64) (fitScorer, error) {
			cfg := baselines.DefaultBPRConfig(train.NumPairs())
			cfg.Steps = budget.EpochEquivalents * train.NumPairs()
			cfg.Seed = seed
			return baselines.NewBPR(cfg)
		}),
		fitterMethod("MPR", func(train *dataset.Dataset, seed uint64) (fitScorer, error) {
			cfg := baselines.DefaultMPRConfig(train.NumPairs())
			cfg.Steps = budget.EpochEquivalents * train.NumPairs()
			cfg.Seed = seed
			return baselines.NewMPR(cfg)
		}),
		fitterMethod("CLiMF", func(_ *dataset.Dataset, seed uint64) (fitScorer, error) {
			cfg := baselines.DefaultCLiMFConfig()
			cfg.Epochs = budget.CLiMFEpochs
			cfg.Seed = seed
			return baselines.NewCLiMF(cfg)
		}),
		fitterMethod("NeuMF", func(_ *dataset.Dataset, seed uint64) (fitScorer, error) {
			cfg := neural.DefaultNeuMFConfig()
			cfg.Epochs = budget.NeuralEpochs
			cfg.Seed = seed
			return neural.NewNeuMF(cfg)
		}),
		fitterMethod("NeuPR", func(train *dataset.Dataset, seed uint64) (fitScorer, error) {
			cfg := neural.DefaultNeuPRConfig(train.NumPairs())
			cfg.Steps = budget.NeuralEpochs * train.NumPairs()
			cfg.Seed = seed
			return neural.NewNeuPR(cfg)
		}),
		fitterMethod("DeepICF", func(_ *dataset.Dataset, seed uint64) (fitScorer, error) {
			cfg := neural.DefaultDeepICFConfig()
			cfg.Epochs = budget.NeuralEpochs
			cfg.Seed = seed
			return neural.NewDeepICF(cfg)
		}),
		clapfMethod(fmt.Sprintf("CLAPF(λ=%.1f)-MAP", lamMAP), sampling.MAP, sampling.Uniform, lamMAP, budget),
		clapfMethod(fmt.Sprintf("CLAPF(λ=%.1f)-MRR", lamMRR), sampling.MRR, sampling.Uniform, lamMRR, budget),
		clapfMethod(fmt.Sprintf("CLAPF+(λ=%.1f)-MAP", lamMAP), sampling.MAP, sampling.DSS, lamMAP, budget),
		clapfMethod(fmt.Sprintf("CLAPF+(λ=%.1f)-MRR", lamMRR), sampling.MRR, sampling.DSS, lamMRR, budget),
	}
}

// TimedResult is one method's evaluation plus its training wall-clock.
type TimedResult struct {
	Method string
	Result eval.Result
	Train  time.Duration
}

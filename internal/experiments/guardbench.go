package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"clapf/internal/core"
	"clapf/internal/guard"
	"clapf/internal/obs"
	"clapf/internal/sampling"
)

// GuardBenchRow is one worker count's guardrail-overhead measurement: the
// same training run with and without an armed guard (watchdog + gradient
// clipping), on the same data and seed.
type GuardBenchRow struct {
	Workers            int     `json:"workers"`
	BaseStepsPerSec    float64 `json:"base_steps_per_sec"`
	GuardedStepsPerSec float64 `json:"guarded_steps_per_sec"`
	// OverheadPct is (base − guarded)/base × 100; negative values are
	// run-to-run noise on a quiet enough machine.
	OverheadPct float64 `json:"overhead_pct"`
	// Clips is how many updates the guarded run norm-clipped.
	Clips uint64 `json:"clips"`
}

// GuardBench is the guardrail-overhead report (BENCH_guard.json). Cores
// records the machine; overhead on an oversubscribed runner reads high.
type GuardBench struct {
	Dataset  string          `json:"dataset"`
	Users    int             `json:"users"`
	Items    int             `json:"items"`
	Pairs    int             `json:"pairs"`
	Steps    int             `json:"steps"`
	ClipNorm float64         `json:"clip_norm"`
	Cores    int             `json:"cores"`
	Rows     []GuardBenchRow `json:"rows"`
}

// guardBenchRounds is how many alternating base/guarded measurement
// rounds each worker count gets; each arm keeps its best round. Taking
// the fastest of several interleaved runs is the standard way to measure
// a few-percent delta through scheduler noise — slowdowns are one-sided,
// so the minimum time is the least contaminated estimate of both arms.
const guardBenchRounds = 3

// RunGuardBench measures what an armed guard costs: for each worker
// count, unguarded training runs against runs with the watchdog armed
// and gradient clipping at clipNorm, reporting the best-of-rounds
// throughput delta. The guarded run registers real metrics so the flush
// path is priced in.
func RunGuardBench(s Setup, workerCounts []int, epochs int, clipNorm float64) (*GuardBench, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	if clipNorm <= 0 {
		return nil, fmt.Errorf("experiments: clip norm %v, want > 0", clipNorm)
	}
	reps, err := MakeReplicates(s)
	if err != nil {
		return nil, err
	}
	train := reps[0].Train

	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Lambda = LambdaFor(s.Profile.Name, sampling.MAP)
	cfg.Steps = epochs * train.NumPairs()
	cfg.Seed = s.Seed

	out := &GuardBench{
		Dataset:  s.Profile.Name,
		Users:    train.NumUsers(),
		Items:    train.NumItems(),
		Pairs:    train.NumPairs(),
		Steps:    cfg.Steps,
		ClipNorm: clipNorm,
		Cores:    runtime.NumCPU(),
	}
	for _, w := range workerCounts {
		if w < 1 {
			return nil, fmt.Errorf("experiments: worker count %d < 1", w)
		}
		run := func(guarded bool) (stepsPerSec float64, clips uint64, err error) {
			runCfg := cfg
			if guarded {
				runCfg.ClipNorm = clipNorm
			}
			pt, err := core.NewParallelTrainer(runCfg, train, w)
			if err != nil {
				return 0, 0, err
			}
			if guarded {
				gm := guard.NewMetrics(obs.NewRegistry())
				if err := pt.SetGuard(guard.Config{Watchdog: true}, gm); err != nil {
					return 0, 0, err
				}
			}
			warm := 1000
			if warm > cfg.Steps/10 {
				warm = cfg.Steps / 10
			}
			pt.RunSteps(warm) // warm-up outside the timer
			start := time.Now()
			pt.Run()
			wall := time.Since(start)
			if trip := pt.GuardTrip(); trip != nil {
				return 0, 0, fmt.Errorf("experiments: guard tripped during benchmark: %v", trip)
			}
			return float64(cfg.Steps-warm) / wall.Seconds(), pt.GradClips(), nil
		}
		var base, guarded float64
		var clips uint64
		for round := 0; round < guardBenchRounds; round++ {
			b, _, err := run(false)
			if err != nil {
				return nil, err
			}
			g, cl, err := run(true)
			if err != nil {
				return nil, err
			}
			if b > base {
				base = b
			}
			if g > guarded {
				guarded, clips = g, cl
			}
		}
		out.Rows = append(out.Rows, GuardBenchRow{
			Workers:            w,
			BaseStepsPerSec:    base,
			GuardedStepsPerSec: guarded,
			OverheadPct:        (base - guarded) / base * 100,
			Clips:              clips,
		})
	}
	return out, nil
}

// RenderGuardBench prints the overhead report as an aligned text table.
func RenderGuardBench(w io.Writer, b *GuardBench) error {
	if _, err := fmt.Fprintf(w,
		"guardrail overhead on %s (%d users, %d items, %d pairs; %d steps; clip %g; %d cores)\n",
		b.Dataset, b.Users, b.Items, b.Pairs, b.Steps, b.ClipNorm, b.Cores); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %14s %14s %10s %10s\n",
		"workers", "base steps/s", "guarded", "overhead", "clips"); err != nil {
		return err
	}
	for _, r := range b.Rows {
		if _, err := fmt.Fprintf(w, "%-8d %14.0f %14.0f %9.2f%% %10d\n",
			r.Workers, r.BaseStepsPerSec, r.GuardedStepsPerSec, r.OverheadPct, r.Clips); err != nil {
			return err
		}
	}
	return nil
}

// WriteGuardBenchJSON emits the report as indented JSON (the
// BENCH_guard.json payload of scripts/bench.sh).
func WriteGuardBenchJSON(w io.Writer, b *GuardBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"clapf/internal/dataset"
)

// RenderTable1 prints dataset statistics in the layout of the paper's
// Table 1.
func RenderTable1(w io.Writer, stats []dataset.Stats) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tn\tm\tP\tPte\tdensity")
	for _, s := range stats {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2f%%\n",
			s.Name, s.Users, s.Items, s.TrainPairs, s.TestPairs, 100*s.Density)
	}
	return tw.Flush()
}

// RenderTable2 prints the method-comparison table in the layout of the
// paper's Table 2, marking the best value per column with a trailing '*'.
func RenderTable2(w io.Writer, datasetName string, rows []Table2Row) error {
	best := bestPerColumn(rows)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "[%s]\n", datasetName)
	fmt.Fprintln(tw, "Method\tPrec@5\tRecall@5\tF1@5\t1-call@5\tNDCG@5\tMAP\tMRR\tAUC\ttime")
	for i, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Method,
			mark(r.Prec5, best[0] == i),
			mark(r.Recall5, best[1] == i),
			mark(r.F15, best[2] == i),
			mark(r.OneCall, best[3] == i),
			mark(r.NDCG5, best[4] == i),
			mark(r.MAP, best[5] == i),
			mark(r.MRR, best[6] == i),
			mark(r.AUC, best[7] == i),
			r.Train.Round(1e6).String(),
		)
	}
	return tw.Flush()
}

func mark(m MeanStd, isBest bool) string {
	s := m.String()
	if isBest {
		return s + "*"
	}
	return s
}

// bestPerColumn returns, for each metric column, the row index holding the
// maximal mean.
func bestPerColumn(rows []Table2Row) [8]int {
	var best [8]int
	get := func(r Table2Row) [8]float64 {
		return [8]float64{
			r.Prec5.Mean, r.Recall5.Mean, r.F15.Mean, r.OneCall.Mean,
			r.NDCG5.Mean, r.MAP.Mean, r.MRR.Mean, r.AUC.Mean,
		}
	}
	for i, r := range rows {
		vals := get(r)
		for c := range best {
			if vals[c] > get(rows[best[c]])[c] {
				best[c] = i
			}
		}
	}
	return best
}

// RenderTopKCurves prints the Figure 2 series: one block per metric with a
// row per method and a column per k.
func RenderTopKCurves(w io.Writer, datasetName string, curves []TopKCurve) error {
	if len(curves) == 0 {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "[%s] Recall@k\n", datasetName)
	header := "Method"
	for _, k := range curves[0].Ks {
		header += fmt.Sprintf("\tk=%d", k)
	}
	fmt.Fprintln(tw, header)
	for _, c := range curves {
		fmt.Fprint(tw, c.Method)
		for _, v := range c.Recall {
			fmt.Fprintf(tw, "\t%.4f", v)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "[%s] NDCG@k\n", datasetName)
	fmt.Fprintln(tw, header)
	for _, c := range curves {
		fmt.Fprint(tw, c.Method)
		for _, v := range c.NDCG {
			fmt.Fprintf(tw, "\t%.4f", v)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderLambdaSweep prints the Figure 3 sweep for one variant.
func RenderLambdaSweep(w io.Writer, datasetName, variant string, points []LambdaPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "[%s] CLAPF-%s λ sweep (λ=0 is BPR)\n", datasetName, variant)
	fmt.Fprintln(tw, "λ\tPrec@5\tRecall@5\tF1@5\tNDCG@5\tMAP\tMRR")
	for _, p := range points {
		fmt.Fprintf(tw, "%.1f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			p.Lambda, p.Prec5, p.Recall5, p.F15, p.NDCG5, p.MAP, p.MRR)
	}
	return tw.Flush()
}

// RenderConvergence prints the Figure 4 traces: one row per checkpoint,
// one column per sampler.
func RenderConvergence(w io.Writer, datasetName string, traces []ConvergenceTrace) error {
	if len(traces) == 0 {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "[%s] test MAP vs training step\n", datasetName)
	header := "step"
	for _, tr := range traces {
		header += "\t" + tr.Sampler.String()
	}
	fmt.Fprintln(tw, header)
	for c := range traces[0].Steps {
		fmt.Fprintf(tw, "%d", traces[0].Steps[c])
		for _, tr := range traces {
			fmt.Fprintf(tw, "\t%.4f", tr.MAP[c])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// CSVLambdaSweep renders Figure 3 data as CSV for external plotting.
func CSVLambdaSweep(points []LambdaPoint) string {
	var b strings.Builder
	b.WriteString("lambda,prec5,recall5,f15,ndcg5,map,mrr\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.1f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			p.Lambda, p.Prec5, p.Recall5, p.F15, p.NDCG5, p.MAP, p.MRR)
	}
	return b.String()
}

// CSVConvergence renders Figure 4 data as CSV for external plotting.
func CSVConvergence(traces []ConvergenceTrace) string {
	var b strings.Builder
	b.WriteString("step")
	for _, tr := range traces {
		fmt.Fprintf(&b, ",%s", tr.Sampler)
	}
	b.WriteString("\n")
	if len(traces) == 0 {
		return b.String()
	}
	for c := range traces[0].Steps {
		fmt.Fprintf(&b, "%d", traces[0].Steps[c])
		for _, tr := range traces {
			fmt.Fprintf(&b, ",%.6f", tr.MAP[c])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSVTable2 renders Table 2 rows as CSV (means only; std in ±-form is for
// the text renderer).
func CSVTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("method,prec5,recall5,f15,onecall5,ndcg5,map,mrr,auc,train_ms\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d\n",
			r.Method, r.Prec5.Mean, r.Recall5.Mean, r.F15.Mean, r.OneCall.Mean,
			r.NDCG5.Mean, r.MAP.Mean, r.MRR.Mean, r.AUC.Mean, r.Train.Milliseconds())
	}
	return b.String()
}

// CSVTopKCurves renders Figure 2 data as CSV: one row per (method, k).
func CSVTopKCurves(curves []TopKCurve) string {
	var b strings.Builder
	b.WriteString("method,k,recall,ndcg\n")
	for _, c := range curves {
		for i, k := range c.Ks {
			fmt.Fprintf(&b, "%s,%d,%.6f,%.6f\n", c.Method, k, c.Recall[i], c.NDCG[i])
		}
	}
	return b.String()
}

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"

	"clapf/internal/datagen"
	"clapf/internal/eval"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/rank"
	"clapf/internal/retrieval"
	"clapf/internal/score"
)

// retrievalBenchK is the top-k size every retrieval query asks for.
const retrievalBenchK = 10

// RetrievalBenchRow is one retrieval arm's measured throughput, latency
// distribution, and quality. Recall10 is recall@10 against the exact arm
// (1 by construction for the exact arm itself).
type RetrievalBenchRow struct {
	Path        string  `json:"path"`
	Users       int     `json:"users"`
	WallSeconds float64 `json:"wall_seconds"`
	UsersPerSec float64 `json:"users_per_sec"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	P99ms       float64 `json:"p99_ms"`
	Recall10    float64 `json:"recall_at_10"`
}

// RetrievalBench is the exact-vs-IVF retrieval report: the same top-K
// queries answered by the dense scoring engine and by the cluster-pruned
// IVF index, measured at the engine layer so the ratio isolates retrieval
// cost from transport and JSON overhead.
type RetrievalBench struct {
	Dataset      string              `json:"dataset"`
	Users        int                 `json:"users"`
	Items        int                 `json:"items"`
	Dim          int                 `json:"dim"`
	K            int                 `json:"k"`
	NList        int                 `json:"nlist"`
	NProbe       int                 `json:"nprobe"`
	BuildSeconds float64             `json:"index_build_seconds"`
	Cores        int                 `json:"cores"`
	Rows         []RetrievalBenchRow `json:"rows"`
	Speedup      float64             `json:"ivf_speedup_vs_exact"`
	Recall10     float64             `json:"ivf_recall_at_10"`
}

// RunRetrievalBench measures sublinear top-K retrieval against the exact
// kernel on a synthetic corpus with the profile's full item catalog.
// benchUsers caps the generated user count (datagen is O(users x items),
// so the full ML20M user base would dominate wall-clock without changing
// what is measured — per-user retrieval cost depends only on the catalog).
// The model carries the generator's ground-truth factors plus a
// popularity-aligned bias, so the score geometry matches a trained model
// rather than Gaussian noise; cfg zero-values select the index defaults.
// Every user is queried once per arm with train positives excluded, the
// way the serve path queries; recall@10 compares each IVF list to the
// exact list for the same user.
func RunRetrievalBench(s Setup, benchUsers int, cfg retrieval.Config) (*RetrievalBench, error) {
	profile := s.Profile.Scaled(s.Scale)
	if benchUsers > 0 && profile.Users > benchUsers {
		pairs := int(float64(profile.Pairs) * float64(benchUsers) / float64(profile.Users))
		if pairs < benchUsers*2 {
			pairs = benchUsers * 2
		}
		profile.Pairs = pairs
		profile.Users = benchUsers
	}
	world, err := datagen.Generate(profile, mathx.NewRNG(s.Seed))
	if err != nil {
		return nil, err
	}
	train := world.Data
	n, numItems, dim := train.NumUsers(), train.NumItems(), world.Dim

	bias := make([]float64, numItems)
	for i := range bias {
		bias[i] = 0.05 * math.Log(world.Popularity[i])
	}
	m, err := mf.FromRaw(mf.Config{
		NumUsers: n, NumItems: numItems, Dim: dim, UseBias: true,
	}, world.TrueUser, world.TrueItem, bias)
	if err != nil {
		return nil, err
	}

	out := &RetrievalBench{
		Dataset: s.Profile.Name, Users: n, Items: numItems, Dim: dim,
		K: retrievalBenchK, Cores: runtime.NumCPU(),
	}

	// Exact arm: the dense engine + rank funnel, exactly the serve path's
	// known-user flow with the cache off.
	eng := score.NewEngine(m)
	scores := make([]float64, numItems)
	exactTop := make([][]int32, n)
	exactQuery := func(u int32) []int32 {
		eng.ScoreAll(u, scores)
		pos := train.Positives(u)
		idx := 0
		top, _ := rank.TopKDropped(scores, retrievalBenchK, func(i int32) bool {
			for idx < len(pos) && pos[idx] < i {
				idx++
			}
			return idx < len(pos) && pos[idx] == i
		})
		ids := make([]int32, len(top))
		for j, e := range top {
			ids[j] = e.Item
		}
		return ids
	}
	for u := int32(0); u < 32 && int(u) < n; u++ {
		exactQuery(u) // warm caches and the allocator
	}
	lat := make([]time.Duration, 0, n)
	for u := int32(0); int(u) < n; u++ {
		t0 := time.Now()
		exactTop[u] = exactQuery(u)
		lat = append(lat, time.Since(t0))
	}
	exactRow := retrievalRow("exact", lat)
	exactRow.Recall10 = 1
	out.Rows = append(out.Rows, exactRow)

	// IVF arm: build once (that cost is reported separately — in serving
	// it is paid at model-swap time, off the request path), then query.
	t0 := time.Now()
	ix, err := retrieval.BuildIVF(m, cfg)
	if err != nil {
		return nil, err
	}
	out.BuildSeconds = time.Since(t0).Seconds()
	out.NList, out.NProbe = ix.NLists(), ix.NProbe()

	var recallSum float64
	lat = lat[:0]
	for u := int32(0); u < 32 && int(u) < n; u++ {
		ix.Search(m.UserFactors(u), retrievalBenchK, 0, train.Positives(u))
	}
	for u := int32(0); int(u) < n; u++ {
		uf := m.UserFactors(u)
		t0 := time.Now()
		top, _ := ix.Search(uf, retrievalBenchK, 0, train.Positives(u))
		lat = append(lat, time.Since(t0))
		ids := make([]int32, len(top))
		for j, e := range top {
			ids[j] = e.Item
		}
		recallSum += eval.RecallVsExact(ids, exactTop[u])
	}
	ivfRow := retrievalRow("ivf", lat)
	ivfRow.Recall10 = recallSum / float64(n)
	out.Rows = append(out.Rows, ivfRow)

	out.Recall10 = ivfRow.Recall10
	if exactRow.UsersPerSec > 0 {
		out.Speedup = ivfRow.UsersPerSec / exactRow.UsersPerSec
	}
	return out, nil
}

// retrievalRow folds per-query latencies into a report row.
func retrievalRow(path string, lat []time.Duration) RetrievalBenchRow {
	var wall time.Duration
	for _, d := range lat {
		wall += d
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	row := RetrievalBenchRow{
		Path:        path,
		Users:       len(lat),
		WallSeconds: wall.Seconds(),
		P50ms:       percentileMs(sorted, 50),
		P95ms:       percentileMs(sorted, 95),
		P99ms:       percentileMs(sorted, 99),
	}
	if wall > 0 {
		row.UsersPerSec = float64(len(lat)) / wall.Seconds()
	}
	return row
}

// RenderRetrievalBench prints the retrieval report as an aligned table.
func RenderRetrievalBench(w io.Writer, b *RetrievalBench) error {
	if _, err := fmt.Fprintf(w,
		"retrieval bench on %s (%d users, %d items, dim %d, k=%d, nlist=%d, nprobe=%d, %d cores)\n",
		b.Dataset, b.Users, b.Items, b.Dim, b.K, b.NList, b.NProbe, b.Cores); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %8s %12s %10s %10s %10s %10s\n",
		"path", "users", "users/s", "p50(ms)", "p95(ms)", "p99(ms)", "recall@10"); err != nil {
		return err
	}
	for _, r := range b.Rows {
		if _, err := fmt.Fprintf(w, "%-8s %8d %12.0f %10.4f %10.4f %10.4f %10.4f\n",
			r.Path, r.Users, r.UsersPerSec, r.P50ms, r.P95ms, r.P99ms, r.Recall10); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "ivf speedup vs exact: %.2fx at recall@10 %.4f (index build %.2fs)\n",
		b.Speedup, b.Recall10, b.BuildSeconds)
	return err
}

// WriteRetrievalBenchJSON emits the report as indented JSON (the
// BENCH_retrieval.json payload of scripts/bench.sh).
func WriteRetrievalBenchJSON(w io.Writer, b *RetrievalBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

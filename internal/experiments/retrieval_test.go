package experiments

import (
	"strings"
	"testing"

	"clapf/internal/retrieval"
)

// The retrieval bench at toy scale: both arms answer every user, the
// exact arm's recall is 1 by construction, the IVF arm's recall is the
// measured mean, and the report renders and serializes. Speedup
// magnitudes are hardware- and scale-dependent and asserted only by the
// committed BENCH_retrieval.json, not here — at toy catalog sizes IVF has
// nothing to prune.
func TestRunRetrievalBenchSmoke(t *testing.T) {
	setup, err := DefaultSetup("ML100K", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Full probe width: recall must be exactly 1 on both arms, which also
	// pins the recall computation itself (any off-by-one in candidate
	// bookkeeping would show up here as < 1).
	b, err := RunRetrievalBench(setup, 60, retrieval.Config{NLists: 8, NProbe: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 2 || b.Rows[0].Path != "exact" || b.Rows[1].Path != "ivf" {
		t.Fatalf("rows = %+v, want exact then ivf", b.Rows)
	}
	if b.Users != 60 {
		t.Errorf("user cap not applied: %d users", b.Users)
	}
	for _, r := range b.Rows {
		if r.Users != b.Users {
			t.Errorf("%s answered %d users, want %d", r.Path, r.Users, b.Users)
		}
		if r.UsersPerSec <= 0 || r.WallSeconds <= 0 {
			t.Errorf("%s has non-positive throughput: %+v", r.Path, r)
		}
	}
	if b.Rows[0].Recall10 != 1 {
		t.Errorf("exact arm recall = %v, want 1", b.Rows[0].Recall10)
	}
	if b.Rows[1].Recall10 != 1 {
		t.Errorf("full-probe IVF recall = %v, want exactly 1", b.Rows[1].Recall10)
	}
	if b.NList != 8 || b.NProbe != 8 {
		t.Errorf("index shape = (%d, %d), want (8, 8)", b.NList, b.NProbe)
	}
	if b.Speedup <= 0 {
		t.Errorf("speedup not computed: %v", b.Speedup)
	}

	var sb strings.Builder
	if err := RenderRetrievalBench(&sb, b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"exact", "ivf", "recall@10", "speedup"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered table missing %q:\n%s", want, sb.String())
		}
	}
	var js strings.Builder
	if err := WriteRetrievalBenchJSON(&js, b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ivf_speedup_vs_exact"`, `"recall_at_10"`, `"nlist"`, `"index_build_seconds"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clapf/internal/cluster"
	"clapf/internal/datagen"
	"clapf/internal/fault"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/serve"
)

// ClusterBenchPhase is one chaos regime's measured behavior: how much
// traffic got through, how much of it admitted to being degraded, and
// what the failure machinery (retries, hedges, breakers) did.
type ClusterBenchPhase struct {
	Phase        string  `json:"phase"`
	Requests     int     `json:"requests"`
	OK           int     `json:"ok"`
	Failed       int     `json:"failed"`
	Availability float64 `json:"availability"`
	// DegradedFraction is the share of 200s that carried a degraded
	// label (replica, stale_cache, or poprank).
	DegradedFraction float64        `json:"degraded_fraction"`
	DegradedByMode   map[string]int `json:"degraded_by_mode"`
	WallSeconds      float64        `json:"wall_seconds"`
	QPS              float64        `json:"qps"`
	P50ms            float64        `json:"p50_ms"`
	P95ms            float64        `json:"p95_ms"`
	P99ms            float64        `json:"p99_ms"`
	// Deltas of the router's counters across this phase.
	Retries      uint64 `json:"retries"`
	Hedges       uint64 `json:"hedges"`
	BreakerOpens uint64 `json:"breaker_opens"`
}

// ClusterBench is the failure-injection load report for the sharded
// serving tier: the same concurrent request mix pushed through the
// router while shards are healthy, killed mid-load, recovered, slowed,
// and made to tear responses.
type ClusterBench struct {
	Dataset string              `json:"dataset"`
	Users   int                 `json:"users"`
	Items   int                 `json:"items"`
	Shards  int                 `json:"shards"`
	K       int                 `json:"k"`
	Workers int                 `json:"workers"`
	Cores   int                 `json:"cores"`
	Phases  []ClusterBenchPhase `json:"phases"`
	// AvailabilityOneDown restates the one_shard_down phase's
	// availability — the headline number the chaos gate asserts on.
	AvailabilityOneDown float64 `json:"availability_one_shard_down"`
	VictimEjected       bool    `json:"victim_ejected"`
	VictimReadmitted    bool    `json:"victim_readmitted"`
}

const clusterBenchK = 10

// RunClusterBench stands up numShards in-process serve shards (each
// behind a fault.Chaos injector), fronts them with a cluster.Router, and
// drives concurrent load through the router's real HTTP handler over
// loopback while injecting failures phase by phase:
//
//	healthy         — baseline QPS and tail latency
//	one_shard_down  — a shard is killed after the first quarter of the
//	                  phase's requests; availability must hold
//	recovered       — the shard is revived and readmitted before load
//	latency_inject  — one shard stalls; hedging bounds the tail
//	torn_responses  — one shard tears bodies mid-flight; retries absorb it
//
// The model is Gaussian-initialized: routing and failure handling do not
// depend on parameter values.
func RunClusterBench(s Setup, numShards, requestsPerPhase, workers int) (*ClusterBench, error) {
	if numShards < 2 {
		return nil, fmt.Errorf("experiments: cluster bench needs >= 2 shards, got %d", numShards)
	}
	if requestsPerPhase < workers || workers < 1 {
		return nil, fmt.Errorf("experiments: cluster bench needs requests >= workers >= 1, got %d/%d", requestsPerPhase, workers)
	}
	profile := s.Profile.Scaled(s.Scale)
	world, err := datagen.Generate(profile, mathx.NewRNG(s.Seed))
	if err != nil {
		return nil, err
	}
	train := world.Data
	const dim = 16
	m := mf.MustNew(mf.Config{
		NumUsers: train.NumUsers(), NumItems: train.NumItems(),
		Dim: dim, UseBias: true, InitStd: 0.1,
	})
	m.InitGaussian(mathx.NewRNG(s.Seed+1), 0.1)

	chaos := make([]*fault.Chaos, numShards)
	shardCfgs := make([]cluster.ShardConfig, numShards)
	for i := 0; i < numShards; i++ {
		srv, err := serve.New(m.Clone(), train)
		if err != nil {
			return nil, err
		}
		chaos[i] = fault.NewChaos(srv.Handler())
		ts := httptest.NewServer(chaos[i])
		defer ts.Close()
		shardCfgs[i] = cluster.ShardConfig{Name: fmt.Sprintf("shard-%d", i), URL: ts.URL}
	}
	router, err := cluster.NewRouter(cluster.Config{
		Shards:    shardCfgs,
		Train:     train,
		Seed:      s.Seed + 2,
		RetryBase: 2 * time.Millisecond, RetryMax: 50 * time.Millisecond,
		HedgeDefault: 20 * time.Millisecond,
		Breaker:      cluster.BreakerConfig{FailureThreshold: 5, Cooldown: 300 * time.Millisecond, SuccessThreshold: 1},
		Probe:        cluster.ProbeConfig{Interval: 20 * time.Millisecond, Timeout: time.Second, EjectAfter: 2, ReadmitAfter: 2},
	})
	if err != nil {
		return nil, err
	}
	stopProber := router.StartProber()
	defer stopProber()
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	out := &ClusterBench{
		Dataset: s.Profile.Name, Users: train.NumUsers(), Items: train.NumItems(),
		Shards: numShards, K: clusterBenchK, Workers: workers, Cores: runtime.NumCPU(),
	}
	const victim = 0

	runPhase := func(name string, hookAfter int, hook func()) error {
		before := router.RouterStats()
		opensBefore := totalOpens(router, numShards)
		row, err := driveCluster(rts.Client(), rts.URL, train.NumUsers(), requestsPerPhase, workers, hookAfter, hook)
		if err != nil {
			return err
		}
		after := router.RouterStats()
		row.Phase = name
		row.Retries = after.Retries - before.Retries
		row.Hedges = after.Hedges - before.Hedges
		row.BreakerOpens = totalOpens(router, numShards) - opensBefore
		out.Phases = append(out.Phases, row)
		return nil
	}

	// Phase 1: healthy baseline (also warms latency window and caches).
	if err := runPhase("healthy", 0, nil); err != nil {
		return nil, err
	}

	// Phase 2: kill the victim after a quarter of the phase's requests
	// have completed — mid-load, not between phases.
	if err := runPhase("one_shard_down", requestsPerPhase/4, func() {
		chaos[victim].SetDown(true)
	}); err != nil {
		return nil, err
	}
	out.AvailabilityOneDown = out.Phases[len(out.Phases)-1].Availability
	out.VictimEjected = !router.Available(victim)

	// Phase 3: revive, wait for readmission, then measure recovery.
	chaos[victim].SetDown(false)
	deadline := time.Now().Add(10 * time.Second)
	for !router.Available(victim) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	out.VictimReadmitted = router.Available(victim)
	if err := runPhase("recovered", 0, nil); err != nil {
		return nil, err
	}

	// Phase 4: one shard stalls well past the hedge delay.
	chaos[1].SetLatency(60 * time.Millisecond)
	if err := runPhase("latency_inject", 0, nil); err != nil {
		return nil, err
	}
	chaos[1].SetLatency(0)

	// Phase 5: one shard tears every third response mid-body.
	chaos[1].SetTornEvery(3)
	if err := runPhase("torn_responses", 0, nil); err != nil {
		return nil, err
	}
	chaos[1].SetTornEvery(0)
	return out, nil
}

func totalOpens(r *cluster.Router, n int) uint64 {
	var t uint64
	for i := 0; i < n; i++ {
		t += r.Breaker(i).Opens()
	}
	return t
}

// driveCluster pushes n GET /recommend requests through the router with
// `workers` concurrent keep-alive clients, cycling the user base. After
// hookAfter requests have completed, hook fires once (the mid-load
// failure injection); 0/nil skips it. Request failures are counted, not
// fatal — measuring them is the point.
func driveCluster(client *http.Client, base string, numUsers, n, workers, hookAfter int, hook func()) (ClusterBenchPhase, error) {
	row := ClusterBenchPhase{Requests: n, DegradedByMode: map[string]int{}}
	var (
		completed atomic.Int64
		hookOnce  sync.Once
		mu        sync.Mutex
		lat       = make([]time.Duration, 0, n)
		okN, degN int
		failN     int
	)
	perWorker := n / workers
	extra := n % workers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		count := perWorker
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			for i := 0; i < count; i++ {
				u := (i*workers + w) % numUsers
				t0 := time.Now()
				status, degraded, err := clusterGet(client,
					fmt.Sprintf("%s/recommend?user=%d&k=%d", base, u, clusterBenchK))
				d := time.Since(t0)
				mu.Lock()
				lat = append(lat, d)
				if err != nil || status != http.StatusOK {
					failN++
				} else {
					okN++
					if degraded != "" {
						degN++
						row.DegradedByMode[degraded]++
					}
				}
				mu.Unlock()
				if hook != nil && completed.Add(1) >= int64(hookAfter) {
					hookOnce.Do(hook)
				}
			}
		}(w, count)
	}
	wg.Wait()
	wall := time.Since(start)

	row.OK, row.Failed = okN, failN
	row.WallSeconds = wall.Seconds()
	if n > 0 {
		row.Availability = float64(okN) / float64(n)
	}
	if okN > 0 {
		row.DegradedFraction = float64(degN) / float64(okN)
	}
	if wall > 0 {
		row.QPS = float64(n) / wall.Seconds()
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	row.P50ms = percentileMs(lat, 50)
	row.P95ms = percentileMs(lat, 95)
	row.P99ms = percentileMs(lat, 99)
	return row, nil
}

// clusterGet issues one router request and reports status plus the
// degraded label; transport errors surface as err.
func clusterGet(client *http.Client, url string) (status int, degraded string, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var body cluster.Response
	if decErr := json.NewDecoder(resp.Body).Decode(&body); decErr != nil && resp.StatusCode == http.StatusOK {
		return resp.StatusCode, "", decErr
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, body.Degraded, nil
}

// RenderClusterBench prints the chaos report as an aligned text table.
func RenderClusterBench(w io.Writer, b *ClusterBench) error {
	if _, err := fmt.Fprintf(w,
		"cluster bench on %s (%d users, %d items, %d shards, k=%d, %d workers, %d cores)\n",
		b.Dataset, b.Users, b.Items, b.Shards, b.K, b.Workers, b.Cores); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %8s %7s %6s %7s %9s %8s %8s %8s %7s %6s %6s\n",
		"phase", "requests", "avail", "degr", "qps", "p50(ms)", "p95(ms)", "p99(ms)", "retries", "hedges", "opens", "fail"); err != nil {
		return err
	}
	for _, p := range b.Phases {
		if _, err := fmt.Fprintf(w, "%-16s %8d %6.2f%% %5.1f%% %7.0f %9.3f %8.3f %8.3f %8d %7d %6d %6d\n",
			p.Phase, p.Requests, 100*p.Availability, 100*p.DegradedFraction, p.QPS,
			p.P50ms, p.P95ms, p.P99ms, p.Retries, p.Hedges, p.BreakerOpens, p.Failed); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "one-shard-down availability: %.4f, victim ejected: %v, readmitted: %v\n",
		b.AvailabilityOneDown, b.VictimEjected, b.VictimReadmitted)
	return err
}

// WriteClusterBenchJSON emits the report as indented JSON (the
// BENCH_cluster.json payload of scripts/bench.sh).
func WriteClusterBenchJSON(w io.Writer, b *ClusterBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"clapf/internal/core"
	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/obs/trace"
	"clapf/internal/sampling"
	"clapf/internal/serve"
)

// TraceBenchArm is one arm's measured throughput: the serve path driven
// through the full handler chain and the serial training loop, with
// request tracing either on (production default) or compiled out of the
// middleware chain.
type TraceBenchArm struct {
	Traced           bool    `json:"traced"`
	ServeRecsPerSec  float64 `json:"serve_recs_per_sec"`
	ServeP50ms       float64 `json:"serve_p50_ms"`
	ServeP99ms       float64 `json:"serve_p99_ms"`
	TrainStepsPerSec float64 `json:"train_steps_per_sec"`
}

// TraceBench is the tracing overhead report: identical serve and train
// workloads with the tracer on and off, plus a self-certifying check
// that tail sampling actually captures a slow request with intact
// parent/child span structure.
type TraceBench struct {
	Dataset  string `json:"dataset"`
	Users    int    `json:"users"`
	Items    int    `json:"items"`
	Dim      int    `json:"dim"`
	K        int    `json:"k"`
	Cores    int    `json:"cores"`
	Requests int    `json:"requests_per_round"`
	Rounds   int    `json:"rounds"`
	Steps    int    `json:"train_steps_per_round"`

	Traced   TraceBenchArm `json:"traced"`
	Untraced TraceBenchArm `json:"untraced"`

	// ServeTraceCostUS is the per-request latency added by tracing on the
	// serve path, in microseconds: the median paired delta from driving
	// the full handler chain in-process, where the microsecond-scale
	// effect is resolvable (loopback throughput noise on a shared box is
	// an order of magnitude above it). Negative values mean the cost is
	// below the noise floor.
	ServeTraceCostUS float64 `json:"serve_trace_cost_us"`

	// ServeOverheadPct is ServeTraceCostUS as a percentage of the
	// untraced arm's end-to-end request turnaround over loopback HTTP.
	// TrainOverheadPct is the median over back-to-back run pairs of
	// (untraced - traced) / untraced * 100 on training throughput:
	// positive means tracing costs that fraction, negative means the
	// cost is below the machine's noise floor.
	ServeOverheadPct float64 `json:"serve_overhead_pct"`
	TrainOverheadPct float64 `json:"train_overhead_pct"`

	SlowCaptureOK    bool `json:"slow_capture_ok"`
	SlowCaptureSpans int  `json:"slow_capture_spans"`
}

// RunTraceBench measures the cost of request tracing by driving the same
// workload through both arms: the serve path (sequential single-request
// GETs, cache off, full middleware chain over loopback HTTP) and the
// serial training loop.
//
// The serve cost per request (~2µs of spans and recorder bookkeeping) is
// far below the block-to-block noise of a loopback drive on a shared
// box, so the serve arms use a paired design built for that regime:
// requests are split into ~150-request blocks, blocks strictly alternate
// between the arms (order flipping every block pair so drift cancels),
// and each arm reports the *median* across its blocks — a robust
// estimator that converges where best-of or mean-of long drives keeps
// chasing neighbor spikes. The per-request trace cost itself is resolved
// by an in-process paired median (see measureTraceCost) and priced
// against end-to-end request turnaround. The train arms use the same
// alternating-pairs + per-arm-median design over short full training
// runs. The report also certifies tail-based capture:
// with the slow threshold dropped to 1ns every request is "slow", so the
// next request must land in /debug/traces with a root span and at least
// one child — if it does not, SlowCaptureOK stays false and the bench
// gate fails.
func RunTraceBench(s Setup, requests, epochs, rounds int) (*TraceBench, error) {
	if requests < 1 {
		return nil, fmt.Errorf("experiments: trace bench needs requests >= 1, got %d", requests)
	}
	if epochs < 1 {
		return nil, fmt.Errorf("experiments: trace bench needs epochs >= 1, got %d", epochs)
	}
	if rounds < 1 {
		rounds = 3
	}
	profile := s.Profile.Scaled(s.Scale)
	world, err := datagen.Generate(profile, mathx.NewRNG(s.Seed))
	if err != nil {
		return nil, err
	}
	train := world.Data
	const dim = 16
	m := mf.MustNew(mf.Config{
		NumUsers: train.NumUsers(), NumItems: train.NumItems(),
		Dim: dim, UseBias: true, InitStd: 0.1,
	})
	m.InitGaussian(mathx.NewRNG(s.Seed+1), 0.1)

	out := &TraceBench{
		Dataset: s.Profile.Name, Users: train.NumUsers(), Items: train.NumItems(),
		Dim: dim, K: serveBenchK, Cores: runtime.NumCPU(),
		Requests: requests, Rounds: rounds,
		Traced:   TraceBenchArm{Traced: true},
		Untraced: TraceBenchArm{Traced: false},
	}

	// Serve arms: one server per arm so each keeps its handler chain (the
	// trace middleware is wired at Handler() build time). Cache off —
	// a cache hit would hide the per-stage spans this bench prices.
	if err := out.runServeArms(m, train, requests, rounds); err != nil {
		return nil, err
	}

	// Train arms: fresh serial trainers per round with identical seeds.
	// The traced arm carries batch/segment spans plus the 1-in-256 sampled
	// step-phase timers; the untraced arm has no tracer attached at all.
	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Steps = epochs * train.NumPairs()
	cfg.Seed = s.Seed
	out.Steps = cfg.Steps
	if err := out.runTrainArms(cfg, train, rounds); err != nil {
		return nil, err
	}

	if out.Untraced.ServeRecsPerSec > 0 {
		// End-to-end turnaround per request at the untraced arm's rate.
		reqUS := float64(serveBenchK) / out.Untraced.ServeRecsPerSec * 1e6
		out.ServeOverheadPct = out.ServeTraceCostUS / reqUS * 100
	}
	return out, nil
}

// loopback bundles one in-process HTTP server with its keep-alive
// client, so each bench arm owns a full transport stack.
type loopback struct {
	ts     *httptest.Server
	client *http.Client
	url    string
}

func newLoopback(h http.Handler) *loopback {
	ts := httptest.NewServer(h)
	return &loopback{ts: ts, client: ts.Client(), url: ts.URL}
}

func (l *loopback) Close() { l.ts.Close() }

// runServeArms alternates best-of rounds between a traced and an
// untraced server over the same user cycle, then runs the slow-capture
// certification against the traced server.
func (out *TraceBench) runServeArms(m *mf.Model, train *dataset.Dataset, requests, rounds int) error {
	build := func(traced bool) (*serve.Server, *loopback, error) {
		srv, err := serve.New(m, train)
		if err != nil {
			return nil, nil, err
		}
		srv.SetCacheSize(0)
		srv.SetTracing(traced)
		if traced {
			// Production default head sampling; the recorder write path is
			// part of what this bench prices.
			srv.Tracer().SetSampleRate(0.01)
		}
		return srv, newLoopback(srv.Handler()), nil
	}
	tracedSrv, tracedLB, err := build(true)
	if err != nil {
		return err
	}
	defer tracedLB.Close()
	plainSrv, plainLB, err := build(false)
	if err != nil {
		return err
	}
	defer plainLB.Close()

	numUsers := train.NumUsers()
	// Warmup: TCP setup, lazy histogram children, and cold caches land
	// outside the measured blocks.
	warm := min(requests, 200)
	if _, err := driveSingle(plainLB.client, plainLB.url, numUsers, warm); err != nil {
		return err
	}
	if _, err := driveSingle(tracedLB.client, tracedLB.url, numUsers, warm); err != nil {
		return err
	}
	// blockReqs keeps one block around 0.1s of wall time: short enough
	// that neighbor-load drift moves between blocks, not within a pair.
	const blockReqs = 150
	blocks := max(1, requests/blockReqs)
	var plainRows, tracedRows []ServeBenchRow
	for r := 0; r < rounds; r++ {
		for b := 0; b < blocks; b++ {
			for pos := 0; pos < 2; pos++ {
				traced := (r+b+pos)%2 == 1
				lb := plainLB
				if traced {
					lb = tracedLB
				}
				row, err := driveSingle(lb.client, lb.url, numUsers, blockReqs)
				if err != nil {
					return err
				}
				if traced {
					tracedRows = append(tracedRows, row)
				} else {
					plainRows = append(plainRows, row)
				}
			}
		}
	}
	out.Untraced.takeServeMedian(plainRows)
	out.Traced.takeServeMedian(tracedRows)
	out.ServeTraceCostUS = measureTraceCost(plainSrv.Handler(), tracedSrv.Handler())

	// Slow-capture certification: with the threshold at 1ns the next
	// request is tail-kept no matter what head sampling decides.
	tracedSrv.Tracer().SetSampleRate(0)
	tracedSrv.Tracer().SetSlowThreshold(time.Nanosecond)
	if _, err := doTimed(tracedLB.client, "GET",
		fmt.Sprintf("%s/recommend?user=0&k=%d", tracedLB.url, serveBenchK), nil); err != nil {
		return err
	}
	for _, rec := range tracedSrv.Tracer().Snapshot().Traces {
		if rec.Keep != "slow" || len(rec.Spans) < 2 {
			continue
		}
		if rec.Spans[0].Parent != -1 {
			continue
		}
		childOK := false
		for _, sp := range rec.Spans[1:] {
			if sp.Parent == 0 {
				childOK = true
			}
		}
		if childOK {
			out.SlowCaptureOK = true
			out.SlowCaptureSpans = len(rec.Spans)
			break
		}
	}
	return nil
}

// measureTraceCost resolves the per-request latency tracing adds to the
// serve path by driving both handler chains in-process (no TCP, no
// client bookkeeping) in strictly alternating batches and taking the
// median per-arm batch time. The paired in-process design is what makes
// a ~2µs effect measurable: each batch is short enough (~5ms) that
// machine drift moves between pairs rather than inside one, and the
// median discards the GC- or neighbor-hit outliers entirely. Returns
// microseconds per request (negative when below the noise floor).
func measureTraceCost(plain, traced http.Handler) float64 {
	const (
		batchReqs = 200
		pairs     = 9
	)
	req := httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/recommend?user=1&k=%d", serveBenchK), nil)
	timeBatch := func(h http.Handler) float64 {
		start := time.Now()
		for i := 0; i < batchReqs; i++ {
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
		return float64(time.Since(start).Nanoseconds()) / batchReqs
	}
	// Warm both chains (lazy histogram children, pool population).
	timeBatch(plain)
	timeBatch(traced)
	var plainNs, tracedNs []float64
	for p := 0; p < pairs; p++ {
		if p%2 == 0 {
			plainNs = append(plainNs, timeBatch(plain))
			tracedNs = append(tracedNs, timeBatch(traced))
		} else {
			tracedNs = append(tracedNs, timeBatch(traced))
			plainNs = append(plainNs, timeBatch(plain))
		}
	}
	return (medianFloat(tracedNs) - medianFloat(plainNs)) / 1e3
}

// runTrainArms runs alternating traced/untraced training pairs and
// reports per-arm medians. Each run builds a fresh trainer from the same
// config and seed, so both arms walk identical SGD trajectories and
// differ only in instrumentation.
func (out *TraceBench) runTrainArms(cfg core.Config, train *dataset.Dataset, rounds int) error {
	runOne := func(traced bool) (float64, error) {
		tr, err := core.NewTrainer(cfg, train)
		if err != nil {
			return 0, err
		}
		if traced {
			tr.SetTracer(trace.New(obs.NewRegistry(), "clapf_", trace.Config{SampleRate: 0}))
		}
		start := time.Now()
		tr.RunSteps(cfg.Steps)
		wall := time.Since(start)
		if wall <= 0 {
			return 0, nil
		}
		return float64(cfg.Steps) / wall.Seconds(), nil
	}
	// One run is tens of milliseconds, so many alternating pairs are
	// cheap. Per-arm medians feed the table; the overhead estimate is the
	// median of *per-pair* throughput ratios — inside one back-to-back
	// pair the machine state is as equal as it gets, so the ratio cancels
	// drift that cross-run medians still absorb.
	pairs := 3 * rounds
	var plainSps, tracedSps, overheads []float64
	for p := 0; p < pairs; p++ {
		var pairVal [2]float64 // [untraced, traced]
		for pos := 0; pos < 2; pos++ {
			traced := (p+pos)%2 == 1
			sps, err := runOne(traced)
			if err != nil {
				return err
			}
			if traced {
				pairVal[1] = sps
				tracedSps = append(tracedSps, sps)
			} else {
				pairVal[0] = sps
				plainSps = append(plainSps, sps)
			}
		}
		if pairVal[0] > 0 {
			overheads = append(overheads, (pairVal[0]-pairVal[1])/pairVal[0]*100)
		}
	}
	out.Untraced.TrainStepsPerSec = medianFloat(plainSps)
	out.Traced.TrainStepsPerSec = medianFloat(tracedSps)
	out.TrainOverheadPct = medianFloat(overheads)
	return nil
}

// takeServeMedian reports the per-arm medians across interleaved blocks:
// with a per-request effect of microseconds under tens-of-percent block
// noise, the median is the estimator that actually converges (best-of
// just crowns whichever arm caught the luckiest block).
func (a *TraceBenchArm) takeServeMedian(rows []ServeBenchRow) {
	pick := func(f func(ServeBenchRow) float64) float64 {
		vals := make([]float64, len(rows))
		for i, r := range rows {
			vals[i] = f(r)
		}
		return medianFloat(vals)
	}
	a.ServeRecsPerSec = pick(func(r ServeBenchRow) float64 { return r.RecsPerSec })
	a.ServeP50ms = pick(func(r ServeBenchRow) float64 { return r.P50ms })
	a.ServeP99ms = pick(func(r ServeBenchRow) float64 { return r.P99ms })
}

// medianFloat returns the median of vals (0 when empty); vals is
// reordered in place.
func medianFloat(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// RenderTraceBench prints the overhead report as aligned text.
func RenderTraceBench(w io.Writer, b *TraceBench) error {
	if _, err := fmt.Fprintf(w,
		"trace overhead on %s (%d users, %d items, dim %d, k=%d; %d reqs x %d rounds, %d train steps; %d cores)\n",
		b.Dataset, b.Users, b.Items, b.Dim, b.K, b.Requests, b.Rounds, b.Steps, b.Cores); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-9s %14s %10s %10s %14s\n",
		"arm", "serve recs/s", "p50(ms)", "p99(ms)", "train steps/s"); err != nil {
		return err
	}
	for _, a := range []TraceBenchArm{b.Untraced, b.Traced} {
		name := "untraced"
		if a.Traced {
			name = "traced"
		}
		if _, err := fmt.Fprintf(w, "%-9s %14.0f %10.4f %10.4f %14.0f\n",
			name, a.ServeRecsPerSec, a.ServeP50ms, a.ServeP99ms, a.TrainStepsPerSec); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"serve trace cost: %.2fus/request (in-process paired median)\n",
		b.ServeTraceCostUS); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"overhead: serve %.2f%% of request turnaround, train %.2f%%; slow capture ok: %t (%d spans)\n",
		b.ServeOverheadPct, b.TrainOverheadPct, b.SlowCaptureOK, b.SlowCaptureSpans)
	return err
}

// WriteTraceBenchJSON emits the report as indented JSON (the
// BENCH_trace.json payload of scripts/bench.sh).
func WriteTraceBenchJSON(w io.Writer, b *TraceBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

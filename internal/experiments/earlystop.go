package experiments

import (
	"fmt"

	"clapf/internal/core"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// EarlyStopConfig tunes TrainWithEarlyStopping. The paper selects its
// iteration count T from a grid by validation NDCG@5 (§6.3); early
// stopping is the streaming version of the same protocol — train in
// chunks, watch the validation metric, keep the best snapshot, and stop
// once it has not improved for Patience consecutive checks.
type EarlyStopConfig struct {
	// CheckEvery is the number of SGD steps between validation checks.
	CheckEvery int
	// Patience is the number of consecutive non-improving checks tolerated
	// before stopping.
	Patience int
	// MaxSteps bounds total training regardless of the metric.
	MaxSteps int
	// EvalMaxUsers caps the users scored per check (0 = all).
	EvalMaxUsers int
	Seed         uint64
}

// Validate reports the first problem with the configuration.
func (c EarlyStopConfig) Validate() error {
	switch {
	case c.CheckEvery <= 0:
		return fmt.Errorf("experiments: CheckEvery = %d, want > 0", c.CheckEvery)
	case c.Patience < 1:
		return fmt.Errorf("experiments: Patience = %d, want >= 1", c.Patience)
	case c.MaxSteps <= 0:
		return fmt.Errorf("experiments: MaxSteps = %d, want > 0", c.MaxSteps)
	}
	return nil
}

// EarlyStopResult reports what TrainWithEarlyStopping did.
type EarlyStopResult struct {
	// Best is the snapshot with the highest validation NDCG@5.
	Best *mf.Model
	// BestScore is that snapshot's validation NDCG@5.
	BestScore float64
	// BestStep is the step count at which Best was taken.
	BestStep int
	// StepsRun is the total steps actually trained.
	StepsRun int
	// Stopped reports whether patience ran out (false = hit MaxSteps).
	Stopped bool
}

// TrainWithEarlyStopping trains a CLAPF model in chunks, checkpointing on
// validation NDCG@5. The trainer's own Steps field is ignored; esCfg
// governs the budget.
func TrainWithEarlyStopping(trainerCfg core.Config, train *dataset.Dataset,
	validation []dataset.Interaction, esCfg EarlyStopConfig) (EarlyStopResult, error) {

	if err := esCfg.Validate(); err != nil {
		return EarlyStopResult{}, err
	}
	if len(validation) == 0 {
		return EarlyStopResult{}, fmt.Errorf("experiments: empty validation set")
	}
	vb := dataset.NewBuilder(train.Name(), train.NumUsers(), train.NumItems())
	for _, v := range validation {
		if err := vb.Add(v.User, v.Item); err != nil {
			return EarlyStopResult{}, err
		}
	}
	valSet := vb.Build()

	trainerCfg.Steps = esCfg.MaxSteps
	tr, err := core.NewTrainer(trainerCfg, train)
	if err != nil {
		return EarlyStopResult{}, err
	}

	res := EarlyStopResult{BestScore: -1}
	badChecks := 0
	for tr.StepsDone() < esCfg.MaxSteps {
		chunk := esCfg.CheckEvery
		if rem := esCfg.MaxSteps - tr.StepsDone(); chunk > rem {
			chunk = rem
		}
		tr.RunSteps(chunk)
		score := eval.Evaluate(tr.Model(), train, valSet, eval.Options{
			Ks:       []int{5},
			MaxUsers: esCfg.EvalMaxUsers,
			RNG:      mathx.NewRNG(esCfg.Seed),
		}).MustAt(5).NDCG
		if score > res.BestScore {
			res.Best = tr.Model().Clone()
			res.BestScore = score
			res.BestStep = tr.StepsDone()
			badChecks = 0
		} else {
			badChecks++
			if badChecks >= esCfg.Patience {
				res.Stopped = true
				break
			}
		}
	}
	res.StepsRun = tr.StepsDone()
	if res.Best == nil {
		// Every check scored zero (e.g. degenerate validation) — return
		// the final model rather than nothing.
		res.Best = tr.Model().Clone()
		res.BestStep = tr.StepsDone()
	}
	return res, nil
}

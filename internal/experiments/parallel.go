package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"clapf/internal/core"
	"clapf/internal/eval"
	"clapf/internal/sampling"
	"clapf/internal/score"
)

// ParallelBenchRow is one worker count's measured training throughput and
// post-training ranking quality.
type ParallelBenchRow struct {
	Workers      int     `json:"workers"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	Speedup      float64 `json:"speedup_vs_1"`
	TrainSeconds float64 `json:"train_seconds"`
	EvalSeconds  float64 `json:"eval_seconds"`
	EvalSpeedup  float64 `json:"eval_speedup_vs_1"`
	Prec5        float64 `json:"prec5"`
	NDCG5        float64 `json:"ndcg5"`
}

// ParallelBench is the full parallel-scaling report. Cores records the
// machine the numbers came from: speedups are bounded by it, so a ~1×
// result on a 1-core runner is expected, not a regression.
type ParallelBench struct {
	Dataset string             `json:"dataset"`
	Users   int                `json:"users"`
	Items   int                `json:"items"`
	Pairs   int                `json:"pairs"`
	Steps   int                `json:"steps"`
	Cores   int                `json:"cores"`
	Rows    []ParallelBenchRow `json:"rows"`
}

// RunParallelBench trains the same CLAPF configuration at each worker
// count on one replicate split and measures SGD throughput and parallel
// evaluation wall-time. Quality columns (Prec@5/NDCG@5) let the caller
// confirm the Hogwild runs stay statistically equivalent while speeding
// up.
func RunParallelBench(s Setup, workerCounts []int, epochs int) (*ParallelBench, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	reps, err := MakeReplicates(s)
	if err != nil {
		return nil, err
	}
	train, test := reps[0].Train, reps[0].Test

	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Lambda = LambdaFor(s.Profile.Name, sampling.MAP)
	cfg.Steps = epochs * train.NumPairs()
	cfg.Seed = s.Seed

	out := &ParallelBench{
		Dataset: s.Profile.Name,
		Users:   train.NumUsers(),
		Items:   train.NumItems(),
		Pairs:   train.NumPairs(),
		Steps:   cfg.Steps,
		Cores:   runtime.NumCPU(),
	}
	var baseSPS, baseEval float64
	for _, w := range workerCounts {
		if w < 1 {
			return nil, fmt.Errorf("experiments: worker count %d < 1", w)
		}
		pt, err := core.NewParallelTrainer(cfg, train, w)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		pt.Run()
		trainWall := time.Since(start)

		start = time.Now()
		// Evaluate through the scoring engine so the eval sweep exercises
		// the same blocked batch kernel the serve path uses; eval detects
		// the BatchScorer interface and chunks users through it.
		res := eval.Evaluate(score.NewEngine(pt.Model()), train, test, eval.Options{
			Ks:       []int{5},
			MaxUsers: s.EvalMaxUsers,
			Workers:  w,
		})
		evalWall := time.Since(start)

		row := ParallelBenchRow{
			Workers:      w,
			StepsPerSec:  float64(cfg.Steps) / trainWall.Seconds(),
			TrainSeconds: trainWall.Seconds(),
			EvalSeconds:  evalWall.Seconds(),
			Prec5:        res.MustAt(5).Prec,
			NDCG5:        res.MustAt(5).NDCG,
		}
		if baseSPS == 0 {
			baseSPS, baseEval = row.StepsPerSec, row.EvalSeconds
		}
		row.Speedup = row.StepsPerSec / baseSPS
		if row.EvalSeconds > 0 {
			row.EvalSpeedup = baseEval / row.EvalSeconds
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// RenderParallelBench prints the scaling report as an aligned text table.
func RenderParallelBench(w io.Writer, b *ParallelBench) error {
	if _, err := fmt.Fprintf(w,
		"parallel scaling on %s (%d users, %d items, %d pairs; %d steps; %d cores)\n",
		b.Dataset, b.Users, b.Items, b.Pairs, b.Steps, b.Cores); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %12s %9s %10s %10s %8s %8s\n",
		"workers", "steps/s", "speedup", "eval(s)", "evalx", "Prec@5", "NDCG@5"); err != nil {
		return err
	}
	for _, r := range b.Rows {
		if _, err := fmt.Fprintf(w, "%-8d %12.0f %8.2fx %10.3f %9.2fx %8.4f %8.4f\n",
			r.Workers, r.StepsPerSec, r.Speedup, r.EvalSeconds, r.EvalSpeedup, r.Prec5, r.NDCG5); err != nil {
			return err
		}
	}
	return nil
}

// WriteParallelBenchJSON emits the report as indented JSON (the
// BENCH_parallel.json payload of scripts/bench.sh).
func WriteParallelBenchJSON(w io.Writer, b *ParallelBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

package baselines

import (
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/mathx"
)

// worldSplit generates a learnable world and a 50/50 split shared by the
// baseline tests.
func worldSplit(t *testing.T) (w *datagen.World, train, test *dataset.Dataset) {
	t.Helper()
	var err error
	w, err = datagen.Generate(datagen.Profile{
		Name: "bl", Users: 120, Items: 180, Pairs: 5000,
		ZipfExp: 0.6, Dim: 5, Affinity: 6,
	}, mathx.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	train, test = dataset.Split(w.Data, mathx.NewRNG(22), 0.5)
	return
}

func evalAUC(t *testing.T, r Recommender, train, test *dataset.Dataset) eval.Result {
	t.Helper()
	return eval.Evaluate(r, train, test, eval.Options{Ks: []int{5}})
}

func TestPopRankRecoversPopularity(t *testing.T) {
	train, err := dataset.FromInteractions("p", 3, 4, []dataset.Interaction{
		{User: 0, Item: 1}, {User: 1, Item: 1}, {User: 2, Item: 1},
		{User: 0, Item: 2}, {User: 1, Item: 2}, {User: 0, Item: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPopRank()
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 4)
	p.ScoreAll(0, out)
	want := []float64{0, 3, 2, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("score[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Identical for every user.
	out2 := make([]float64, 4)
	p.ScoreAll(2, out2)
	for i := range out {
		if out[i] != out2[i] {
			t.Error("PopRank is not user-independent")
		}
	}
}

func TestPopRankBeatsNothing(t *testing.T) {
	_, train, test := splitOnly(t)
	p := NewPopRank()
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := evalAUC(t, p, train, test)
	if res.AUC <= 0.5 {
		t.Errorf("PopRank AUC = %.3f, want > 0.5 on long-tail data", res.AUC)
	}
}

func splitOnly(t *testing.T) (*datagen.World, *dataset.Dataset, *dataset.Dataset) {
	w, train, test := worldSplit(t)
	return w, train, test
}

func TestRandomWalkConfigValidation(t *testing.T) {
	if _, err := NewRandomWalk(RandomWalkConfig{WalkLength: 0, NumWalks: 1}); err == nil {
		t.Error("zero walk length accepted")
	}
	if _, err := NewRandomWalk(RandomWalkConfig{WalkLength: 1, NumWalks: 0}); err == nil {
		t.Error("zero walks accepted")
	}
	if _, err := NewRandomWalk(RandomWalkConfig{WalkLength: 1, NumWalks: 1, MinVisits: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestRandomWalkPersonalizes(t *testing.T) {
	_, train, test := splitOnly(t)
	rw, err := NewRandomWalk(RandomWalkConfig{WalkLength: 20, NumWalks: 100, MinVisits: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := evalAUC(t, rw, train, test)
	if res.AUC <= 0.5 {
		t.Errorf("RandomWalk AUC = %.3f, want > 0.5", res.AUC)
	}
	// Deterministic per user.
	a := make([]float64, train.NumItems())
	b := make([]float64, train.NumItems())
	rw.ScoreAll(3, a)
	rw.ScoreAll(3, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomWalk scoring not deterministic")
		}
	}
}

func TestRandomWalkColdUser(t *testing.T) {
	train, err := dataset.FromInteractions("cold", 2, 3, []dataset.Interaction{{User: 0, Item: 0}})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRandomWalk(DefaultRandomWalkConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Fit(train); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	rw.ScoreAll(1, out) // user 1 has no history
	for _, v := range out {
		if v != 0 {
			t.Error("cold user should score all zeros")
		}
	}
}

func TestWMFLearns(t *testing.T) {
	_, train, test := splitOnly(t)
	cfg := DefaultWMFConfig()
	cfg.Dim = 10
	cfg.Sweeps = 8
	w, err := NewWMF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := evalAUC(t, w, train, test)
	if res.AUC < 0.6 {
		t.Errorf("WMF AUC = %.3f, want >= 0.6", res.AUC)
	}
}

func TestWMFValidation(t *testing.T) {
	bad := []WMFConfig{
		{Dim: 0, Alpha: 1, Reg: 1, Sweeps: 1},
		{Dim: 5, Alpha: -1, Reg: 1, Sweeps: 1},
		{Dim: 5, Alpha: 1, Reg: 0, Sweeps: 1},
		{Dim: 5, Alpha: 1, Reg: 1, Sweeps: 0},
	}
	for i, cfg := range bad {
		if _, err := NewWMF(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBPRLearns(t *testing.T) {
	_, train, test := splitOnly(t)
	cfg := DefaultBPRConfig(train.NumPairs())
	cfg.Dim = 10
	cfg.Steps = 80000
	cfg.Seed = 3
	b, err := NewBPR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := evalAUC(t, b, train, test)
	if res.AUC < 0.65 {
		t.Errorf("BPR AUC = %.3f, want >= 0.65", res.AUC)
	}
}

func TestBPRDNSAtLeastAsGood(t *testing.T) {
	_, train, test := splitOnly(t)
	mk := func(s BPRSampler) eval.Result {
		cfg := DefaultBPRConfig(train.NumPairs())
		cfg.Dim = 10
		cfg.Steps = 40000
		cfg.Sampler = s
		cfg.DNSCandidates = 6
		cfg.Seed = 4
		b, err := NewBPR(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(train); err != nil {
			t.Fatal(err)
		}
		if s == BPRDNS && b.Name() != "BPR-DNS" {
			t.Errorf("Name = %q", b.Name())
		}
		return evalAUC(t, b, train, test)
	}
	uni := mk(BPRUniform)
	dns := mk(BPRDNS)
	// DNS should not be dramatically worse; it usually converges faster.
	if dns.MAP < uni.MAP*0.8 {
		t.Errorf("DNS MAP %.4f collapsed vs uniform %.4f", dns.MAP, uni.MAP)
	}
}

func TestBPRValidation(t *testing.T) {
	if _, err := NewBPR(BPRConfig{Dim: 0, LearnRate: 1}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewBPR(BPRConfig{Dim: 5, LearnRate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewBPR(BPRConfig{Dim: 5, LearnRate: 0.1, Sampler: BPRDNS}); err == nil {
		t.Error("DNS without candidates accepted")
	}
}

func TestMPRLearns(t *testing.T) {
	_, train, test := splitOnly(t)
	cfg := DefaultMPRConfig(train.NumPairs())
	cfg.Dim = 10
	cfg.Steps = 80000
	cfg.Seed = 5
	m, err := NewMPR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := evalAUC(t, m, train, test)
	if res.AUC < 0.6 {
		t.Errorf("MPR AUC = %.3f, want >= 0.6", res.AUC)
	}
}

func TestMPRValidation(t *testing.T) {
	if _, err := NewMPR(MPRConfig{Dim: 5, LearnRate: 0.1, Rho: 1.5}); err == nil {
		t.Error("rho out of range accepted")
	}
}

func TestCLiMFImprovesMRR(t *testing.T) {
	_, train, test := splitOnly(t)
	cfg := DefaultCLiMFConfig()
	cfg.Dim = 10
	cfg.LearnRate = 0.01
	cfg.Epochs = 1
	c, err := NewCLiMF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(train); err != nil {
		t.Fatal(err)
	}
	one := evalAUC(t, c, train, test)

	cfg.Epochs = 25
	c2, err := NewCLiMF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Fit(train); err != nil {
		t.Fatal(err)
	}
	many := evalAUC(t, c2, train, test)
	if many.MRR <= one.MRR {
		t.Errorf("CLiMF MRR did not improve with epochs: %.4f -> %.4f", one.MRR, many.MRR)
	}
}

func TestCLiMFValidation(t *testing.T) {
	if _, err := NewCLiMF(CLiMFConfig{Dim: 0, LearnRate: 1, Epochs: 1}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewCLiMF(CLiMFConfig{Dim: 5, LearnRate: 0.1, Epochs: 0}); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestAllBaselinesBeatRandomRanking(t *testing.T) {
	_, train, test := splitOnly(t)
	pop := NewPopRank()
	if err := pop.Fit(train); err != nil {
		t.Fatal(err)
	}
	bprCfg := DefaultBPRConfig(train.NumPairs())
	bprCfg.Dim = 10
	bprCfg.Steps = 40000
	bpr, err := NewBPR(bprCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := bpr.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, r := range []Recommender{pop, bpr} {
		res := evalAUC(t, r, train, test)
		if res.AUC <= 0.52 {
			t.Errorf("%s AUC = %.3f, not above chance", r.Name(), res.AUC)
		}
	}
}

func TestBPRAoBPRSampler(t *testing.T) {
	_, train, test := splitOnly(t)
	cfg := DefaultBPRConfig(train.NumPairs())
	cfg.Dim = 10
	cfg.Steps = 40000
	cfg.Sampler = BPRAoBPR
	cfg.Seed = 6
	b, err := NewBPR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "BPR-AoBPR" {
		t.Errorf("Name = %q", b.Name())
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := evalAUC(t, b, train, test)
	if res.AUC < 0.55 {
		t.Errorf("BPR-AoBPR AUC = %.3f, want > 0.55", res.AUC)
	}
}

func TestGBPRLearns(t *testing.T) {
	_, train, test := splitOnly(t)
	cfg := DefaultGBPRConfig(train.NumPairs())
	cfg.Dim = 10
	cfg.Steps = 60000
	cfg.Seed = 7
	g, err := NewGBPR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "GBPR" {
		t.Errorf("Name = %q", g.Name())
	}
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := evalAUC(t, g, train, test)
	if res.AUC < 0.6 {
		t.Errorf("GBPR AUC = %.3f, want >= 0.6", res.AUC)
	}
}

func TestGBPRValidation(t *testing.T) {
	bad := []GBPRConfig{
		{Dim: 0, LearnRate: 0.1, GroupSize: 3},
		{Dim: 5, LearnRate: 0, GroupSize: 3},
		{Dim: 5, LearnRate: 0.1, Rho: 2, GroupSize: 3},
		{Dim: 5, LearnRate: 0.1, GroupSize: 0},
		{Dim: 5, LearnRate: 0.1, Reg: -1, GroupSize: 3},
	}
	for i, cfg := range bad {
		if _, err := NewGBPR(cfg); err == nil {
			t.Errorf("bad GBPR config %d accepted", i)
		}
	}
}

func TestGBPRGroupCoupling(t *testing.T) {
	// Two users share an item; training on one user's records must move
	// the co-consumer's factors too (the whole point of GBPR).
	train, err := dataset.FromInteractions("g", 3, 6, []dataset.Interaction{
		{User: 0, Item: 0}, {User: 1, Item: 0}, {User: 2, Item: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGBPRConfig(train.NumPairs())
	cfg.Dim = 4
	cfg.Steps = 500
	cfg.Seed = 8
	g, err := NewGBPR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	// Users 0 and 1 co-consume item 0: their factors should be closer to
	// each other than to user 2's.
	dist := func(a, b int32) float64 {
		fa, fb := g.Model().UserFactors(a), g.Model().UserFactors(b)
		var s float64
		for q := range fa {
			d := fa[q] - fb[q]
			s += d * d
		}
		return s
	}
	if dist(0, 1) >= dist(0, 2) {
		t.Errorf("co-consumers not pulled together: d(0,1)=%.4f, d(0,2)=%.4f", dist(0, 1), dist(0, 2))
	}
}

func TestBPRABSSampler(t *testing.T) {
	_, train, test := splitOnly(t)
	cfg := DefaultBPRConfig(train.NumPairs())
	cfg.Dim = 10
	cfg.Steps = 40000
	cfg.Sampler = BPRABS
	cfg.DNSCandidates = 6
	cfg.Seed = 9
	b, err := NewBPR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "BPR-ABS" {
		t.Errorf("Name = %q", b.Name())
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	if res := evalAUC(t, b, train, test); res.AUC < 0.55 {
		t.Errorf("BPR-ABS AUC = %.3f", res.AUC)
	}
	cfg.DNSCandidates = 0
	if _, err := NewBPR(cfg); err == nil {
		t.Error("ABS without candidates accepted")
	}
}

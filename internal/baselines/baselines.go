// Package baselines implements the non-neural comparison methods of §6.3:
// PopRank, RandomWalk, WMF (Hu et al. 2008), BPR (Rendle et al. 2009), MPR
// (Yu et al. 2018), and CLiMF (Shi et al. 2012). All matrix-factorization
// methods share the mf substrate so that — as the paper requires for a fair
// comparison — every model runs in the same code framework.
package baselines

import (
	"clapf/internal/dataset"
)

// Recommender is what every baseline produces: a scorer with a display
// name. The ScoreAll contract matches eval.Scorer.
type Recommender interface {
	ScoreAll(u int32, out []float64)
	Name() string
}

// Fitter is a model that learns from a training split in one call.
type Fitter interface {
	Fit(train *dataset.Dataset) error
}

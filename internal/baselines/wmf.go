package baselines

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/linalg"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// WMF is weighted matrix factorization for implicit feedback (Hu, Koren &
// Volinsky 2008): a pointwise regression that treats every cell of the
// user-item matrix as a 0/1 observation, with observed cells up-weighted by
// a confidence factor, minimized by alternating least squares. The
// (1 + α)-weighted normal equations per user/item are d×d systems solved by
// Cholesky factorization.
type WMF struct {
	cfg   WMFConfig
	model *mf.Model
}

// WMFConfig tunes the factorization.
type WMFConfig struct {
	Dim    int     // latent dimensionality (paper searches {10, 20})
	Alpha  float64 // confidence weight of observed cells (paper: {10..100})
	Reg    float64 // L2 regularization of both factor matrices
	Sweeps int     // ALS sweeps (one sweep = users then items)
	Seed   uint64
}

// DefaultWMFConfig mirrors the paper's mid-range search values.
func DefaultWMFConfig() WMFConfig {
	return WMFConfig{Dim: 20, Alpha: 20, Reg: 0.1, Sweeps: 10}
}

// NewWMF validates the configuration.
func NewWMF(cfg WMFConfig) (*WMF, error) {
	switch {
	case cfg.Dim <= 0:
		return nil, fmt.Errorf("baselines: WMF Dim = %d, want > 0", cfg.Dim)
	case cfg.Alpha < 0:
		return nil, fmt.Errorf("baselines: WMF Alpha = %v, want >= 0", cfg.Alpha)
	case cfg.Reg <= 0:
		return nil, fmt.Errorf("baselines: WMF Reg = %v, want > 0 (ALS needs the ridge)", cfg.Reg)
	case cfg.Sweeps < 1:
		return nil, fmt.Errorf("baselines: WMF Sweeps = %d, want >= 1", cfg.Sweeps)
	}
	return &WMF{cfg: cfg}, nil
}

// Name implements Recommender.
func (w *WMF) Name() string { return "WMF" }

// Model exposes the learned factors (nil before Fit).
func (w *WMF) Model() *mf.Model { return w.model }

// ScoreAll implements Recommender.
func (w *WMF) ScoreAll(u int32, out []float64) { w.model.ScoreAll(u, out) }

// Fit runs ALS. With preference p_ui = 1 for observed cells and confidence
// c_ui = 1 + α·Y_ui, each user solve is
//
//	(VᵀV + α·V_uᵀV_u + λI)·x = (1 + α)·Σ_{i∈I_u⁺} v_i,
//
// where VᵀV is shared across users (the Hu et al. speed trick), and
// symmetrically for items.
func (w *WMF) Fit(train *dataset.Dataset) error {
	var err error
	w.model, err = mf.New(mf.Config{
		NumUsers: train.NumUsers(),
		NumItems: train.NumItems(),
		Dim:      w.cfg.Dim,
		UseBias:  false,
	})
	if err != nil {
		return err
	}
	w.model.InitGaussian(mathx.NewRNG(w.cfg.Seed), 0.1)

	// Item→users adjacency for the item half-sweep.
	itemUsers := make([][]int32, train.NumItems())
	train.ForEach(func(u, i int32) {
		itemUsers[i] = append(itemUsers[i], u)
	})

	d := w.cfg.Dim
	for sweep := 0; sweep < w.cfg.Sweeps; sweep++ {
		if err := w.halfSweep(train.NumUsers(), d,
			func(u int) []int32 { return train.Positives(int32(u)) },
			func(i int32) []float64 { return w.model.ItemFactors(i) },
			func(u int) []float64 { return w.model.UserFactors(int32(u)) },
			train.NumItems(),
		); err != nil {
			return fmt.Errorf("baselines: WMF user sweep %d: %w", sweep, err)
		}
		if err := w.halfSweep(train.NumItems(), d,
			func(i int) []int32 { return itemUsers[i] },
			func(u int32) []float64 { return w.model.UserFactors(u) },
			func(i int) []float64 { return w.model.ItemFactors(int32(i)) },
			train.NumUsers(),
		); err != nil {
			return fmt.Errorf("baselines: WMF item sweep %d: %w", sweep, err)
		}
	}
	return nil
}

// halfSweep solves the normal equations for one side of the factorization.
// rows is the count of vectors being re-solved; linked(r) lists the
// opposite-side indices observed with row r; factorOf fetches an
// opposite-side factor; target fetches the row's own factor storage;
// oppCount is the size of the opposite side.
func (w *WMF) halfSweep(rows, d int,
	linked func(r int) []int32,
	factorOf func(idx int32) []float64,
	target func(r int) []float64,
	oppCount int,
) error {
	// Shared Gram matrix Σ over *all* opposite vectors.
	gram := linalg.NewMatrix(d)
	for idx := 0; idx < oppCount; idx++ {
		gram.SymRankOne(1, factorOf(int32(idx)))
	}

	a := linalg.NewMatrix(d)
	b := make([]float64, d)
	for r := 0; r < rows; r++ {
		obs := linked(r)
		copy(a.Data, gram.Data)
		mathx.Fill(b, 0)
		for _, idx := range obs {
			f := factorOf(idx)
			a.SymRankOne(w.cfg.Alpha, f)
			mathx.AXPY(1+w.cfg.Alpha, f, b)
		}
		a.AddDiagonal(w.cfg.Reg)
		if err := linalg.Cholesky(a); err != nil {
			return err
		}
		x := target(r)
		linalg.CholeskySolve(a, b, x)
	}
	return nil
}

package baselines

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
)

// RandomWalk estimates a user's preference for an item as the visit
// frequency of that item under short random walks on the user-item
// bipartite graph: user → observed item → co-consuming user → item → …
// Items reached through many short paths from like-minded users score
// high. The paper tunes a walk length and a reachability threshold; the
// threshold here prunes items reached fewer than MinVisits times, treating
// rarely-reached items as unreachable.
type RandomWalk struct {
	cfg   RandomWalkConfig
	data  *dataset.Dataset
	users [][]int32 // users observing each item (column index)
}

// RandomWalkConfig tunes the walker.
type RandomWalkConfig struct {
	// WalkLength is the number of user→item hops per walk (paper searches
	// {20, 40, 60, 80}).
	WalkLength int
	// NumWalks is the number of independent walks started per user.
	NumWalks int
	// MinVisits is the reachability threshold: items visited fewer times
	// score zero (paper searches {2, 5, 10, 20}).
	MinVisits int
	// Seed makes per-user scoring deterministic.
	Seed uint64
}

// DefaultRandomWalkConfig mirrors the paper's mid-range search values.
func DefaultRandomWalkConfig() RandomWalkConfig {
	return RandomWalkConfig{WalkLength: 40, NumWalks: 200, MinVisits: 2}
}

// NewRandomWalk builds an unfitted walker.
func NewRandomWalk(cfg RandomWalkConfig) (*RandomWalk, error) {
	if cfg.WalkLength < 1 {
		return nil, fmt.Errorf("baselines: WalkLength = %d, want >= 1", cfg.WalkLength)
	}
	if cfg.NumWalks < 1 {
		return nil, fmt.Errorf("baselines: NumWalks = %d, want >= 1", cfg.NumWalks)
	}
	if cfg.MinVisits < 0 {
		return nil, fmt.Errorf("baselines: MinVisits = %d, want >= 0", cfg.MinVisits)
	}
	return &RandomWalk{cfg: cfg}, nil
}

// Name implements Recommender.
func (r *RandomWalk) Name() string { return "RandomWalk" }

// Fit indexes the bipartite graph's item→users adjacency.
func (r *RandomWalk) Fit(train *dataset.Dataset) error {
	r.data = train
	r.users = make([][]int32, train.NumItems())
	train.ForEach(func(u, i int32) {
		r.users[i] = append(r.users[i], u)
	})
	return nil
}

// ScoreAll runs the walks for user u and writes visit counts (zeroed below
// the reachability threshold). The per-user RNG is derived from (Seed, u)
// so evaluation is reproducible regardless of user order.
func (r *RandomWalk) ScoreAll(u int32, out []float64) {
	for i := range out {
		out[i] = 0
	}
	obs := r.data.Positives(u)
	if len(obs) == 0 {
		return
	}
	rng := mathx.NewRNG(r.cfg.Seed ^ (uint64(u)+1)*0x9e3779b97f4a7c15)
	visits := make([]int, r.data.NumItems())
	for w := 0; w < r.cfg.NumWalks; w++ {
		cur := u
		for hop := 0; hop < r.cfg.WalkLength; hop++ {
			items := r.data.Positives(cur)
			if len(items) == 0 {
				break
			}
			it := items[rng.Intn(len(items))]
			visits[it]++
			watchers := r.users[it]
			cur = watchers[rng.Intn(len(watchers))]
		}
	}
	for i, v := range visits {
		if v >= r.cfg.MinVisits {
			out[i] = float64(v)
		}
	}
}

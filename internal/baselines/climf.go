package baselines

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// CLiMF is Collaborative Less-is-More Filtering (Shi et al., RecSys 2012):
// it directly maximizes the smoothed lower bound of Mean Reciprocal Rank
// (Eq. 7),
//
//	L(u) = Σ_{i∈I⁺} ln σ(f_ui) + Σ_{i,k∈I⁺} ln σ(f_ui − f_uk),
//
// by full-gradient ascent per user. The per-user gradient costs
// O((n_u⁺)²·d) — the quadratic blow-up that makes CLiMF the slowest method
// in the paper's Table 2 (it never finishes Flixter or Netflix within the
// 200-hour budget there, and the training-time columns of our benches show
// the same per-epoch gap).
type CLiMF struct {
	cfg   CLiMFConfig
	model *mf.Model
}

// CLiMFConfig tunes CLiMF.
type CLiMFConfig struct {
	Dim       int     // latent dimensionality (paper fixes 20)
	LearnRate float64 // paper searches {0.0001, 0.001, 0.01}
	Reg       float64 // paper searches {0.001, 0.01, 0.1}
	InitStd   float64
	Epochs    int // full passes over the users
	Seed      uint64
}

// DefaultCLiMFConfig mirrors the paper's mid-range search values.
func DefaultCLiMFConfig() CLiMFConfig {
	return CLiMFConfig{Dim: 20, LearnRate: 0.005, Reg: 0.01, InitStd: 0.1, Epochs: 60}
}

// NewCLiMF validates the configuration.
func NewCLiMF(cfg CLiMFConfig) (*CLiMF, error) {
	switch {
	case cfg.Dim <= 0:
		return nil, fmt.Errorf("baselines: CLiMF Dim = %d, want > 0", cfg.Dim)
	case cfg.LearnRate <= 0:
		return nil, fmt.Errorf("baselines: CLiMF LearnRate = %v, want > 0", cfg.LearnRate)
	case cfg.Reg < 0:
		return nil, fmt.Errorf("baselines: CLiMF Reg = %v, want >= 0", cfg.Reg)
	case cfg.Epochs < 1:
		return nil, fmt.Errorf("baselines: CLiMF Epochs = %d, want >= 1", cfg.Epochs)
	}
	return &CLiMF{cfg: cfg}, nil
}

// Name implements Recommender.
func (c *CLiMF) Name() string { return "CLiMF" }

// Model exposes the learned factors (nil before Fit).
func (c *CLiMF) Model() *mf.Model { return c.model }

// ScoreAll implements Recommender.
func (c *CLiMF) ScoreAll(u int32, out []float64) { c.model.ScoreAll(u, out) }

// Fit runs full-gradient ascent. CLiMF's objective touches only the
// observed items — the limitation §3.3 calls out — so unobserved items are
// never updated except through regularization of touched vectors.
func (c *CLiMF) Fit(train *dataset.Dataset) error {
	rng := mathx.NewRNG(c.cfg.Seed)
	var err error
	c.model, err = mf.New(mf.Config{
		NumUsers: train.NumUsers(),
		NumItems: train.NumItems(),
		Dim:      c.cfg.Dim,
		UseBias:  false, // the original CLiMF model has no item bias
	})
	if err != nil {
		return err
	}
	c.model.InitGaussian(rng.Split(), c.cfg.InitStd)

	d := c.cfg.Dim
	gamma, reg := c.cfg.LearnRate, c.cfg.Reg
	uGrad := make([]float64, d)

	for epoch := 0; epoch < c.cfg.Epochs; epoch++ {
		for u := int32(0); u < int32(train.NumUsers()); u++ {
			obs := train.Positives(u)
			n := len(obs)
			if n == 0 {
				continue
			}
			uf := c.model.UserFactors(u)

			// Scores and per-item scalar gradients ∂L/∂f_i.
			scores := make([]float64, n)
			for a, it := range obs {
				scores[a] = c.model.Score(u, it)
			}
			fGrad := make([]float64, n)
			for a := 0; a < n; a++ {
				g := 1 - mathx.Sigmoid(scores[a])
				for b := 0; b < n; b++ {
					if b == a {
						continue
					}
					// d/df_a [ln σ(f_a − f_b) + ln σ(f_b − f_a)]
					g += mathx.Sigmoid(scores[b]-scores[a]) - mathx.Sigmoid(scores[a]-scores[b])
				}
				fGrad[a] = g
			}

			// Gradient ascent on U_u and each observed V_i.
			mathx.Fill(uGrad, 0)
			for a, it := range obs {
				vf := c.model.ItemFactors(it)
				mathx.AXPY(fGrad[a], vf, uGrad)
				for q := 0; q < d; q++ {
					vf[q] += gamma * (fGrad[a]*uf[q] - reg*vf[q])
				}
			}
			for q := 0; q < d; q++ {
				uf[q] += gamma * (uGrad[q] - reg*uf[q])
			}
		}
	}
	return nil
}

package baselines

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// GBPR is Group Bayesian Personalized Ranking (Pan & Chen, IJCAI 2013) —
// the §2.1 baseline that relaxes BPR's user-independence assumption. For
// each record (u, i) it samples a group G of other users who also observed
// i, blends the group's preference with the individual's,
//
//	ĝ_ui = ρ · (1/|G∪{u}|) Σ_{w∈G∪{u}} f_wi + (1−ρ) · f_ui,
//
// and maximizes ln σ(ĝ_ui − f_uj) against a uniform unobserved j. Gradients
// flow to every group member's factors, coupling like-minded users.
type GBPR struct {
	cfg   GBPRConfig
	model *mf.Model
}

// GBPRConfig tunes GBPR.
type GBPRConfig struct {
	Dim       int
	LearnRate float64
	Reg       float64
	InitStd   float64
	UseBias   bool
	Steps     int
	// Rho blends group and individual preference (original paper: 0.8).
	Rho float64
	// GroupSize is the number of co-consumers sampled per step (original
	// paper: 3, including u).
	GroupSize int
	Seed      uint64
}

// DefaultGBPRConfig mirrors the original paper's choices.
func DefaultGBPRConfig(trainPairs int) GBPRConfig {
	return GBPRConfig{
		Dim:       20,
		LearnRate: 0.05,
		Reg:       0.01,
		InitStd:   0.1,
		UseBias:   true,
		Steps:     30 * trainPairs,
		Rho:       0.8,
		GroupSize: 3,
	}
}

// NewGBPR validates the configuration.
func NewGBPR(cfg GBPRConfig) (*GBPR, error) {
	switch {
	case cfg.Dim <= 0:
		return nil, fmt.Errorf("baselines: GBPR Dim = %d, want > 0", cfg.Dim)
	case cfg.LearnRate <= 0:
		return nil, fmt.Errorf("baselines: GBPR LearnRate = %v, want > 0", cfg.LearnRate)
	case cfg.Reg < 0:
		return nil, fmt.Errorf("baselines: GBPR Reg = %v, want >= 0", cfg.Reg)
	case cfg.Rho < 0 || cfg.Rho > 1:
		return nil, fmt.Errorf("baselines: GBPR Rho = %v, want [0,1]", cfg.Rho)
	case cfg.GroupSize < 1:
		return nil, fmt.Errorf("baselines: GBPR GroupSize = %d, want >= 1", cfg.GroupSize)
	case cfg.Steps < 0:
		return nil, fmt.Errorf("baselines: GBPR Steps = %d, want >= 0", cfg.Steps)
	}
	return &GBPR{cfg: cfg}, nil
}

// Name implements Recommender.
func (g *GBPR) Name() string { return "GBPR" }

// Model exposes the learned factors (nil before Fit).
func (g *GBPR) Model() *mf.Model { return g.model }

// ScoreAll implements Recommender.
func (g *GBPR) ScoreAll(u int32, out []float64) { g.model.ScoreAll(u, out) }

// Fit runs pair-uniform SGD with group-coupled updates.
func (g *GBPR) Fit(train *dataset.Dataset) error {
	rng := mathx.NewRNG(g.cfg.Seed)
	var err error
	g.model, err = mf.New(mf.Config{
		NumUsers: train.NumUsers(),
		NumItems: train.NumItems(),
		Dim:      g.cfg.Dim,
		UseBias:  g.cfg.UseBias,
	})
	if err != nil {
		return err
	}
	g.model.InitGaussian(rng.Split(), g.cfg.InitStd)

	var pairs []dataset.Interaction
	train.ForEach(func(u, i int32) {
		if train.NumPositives(u) < train.NumItems() {
			pairs = append(pairs, dataset.Interaction{User: u, Item: i})
		}
	})
	if len(pairs) == 0 {
		return fmt.Errorf("baselines: GBPR has no trainable records")
	}
	itemUsers := make([][]int32, train.NumItems())
	train.ForEach(func(u, i int32) {
		itemUsers[i] = append(itemUsers[i], u)
	})

	group := make([]int32, 0, g.cfg.GroupSize)
	for step := 0; step < g.cfg.Steps; step++ {
		rec := pairs[rng.Intn(len(pairs))]
		j := rejectUnobservedGBPR(train, rec.User, rng)

		// Sample the group: u plus up to GroupSize−1 distinct co-consumers
		// of i. Duplicates are skipped rather than resampled — for niche
		// items the group is naturally small.
		group = group[:0]
		group = append(group, rec.User)
		watchers := itemUsers[rec.Item]
		for len(group) < g.cfg.GroupSize && len(group) < len(watchers) {
			w := watchers[rng.Intn(len(watchers))]
			dup := false
			for _, have := range group {
				if have == w {
					dup = true
					break
				}
			}
			if !dup {
				group = append(group, w)
			}
		}
		g.update(rec.User, rec.Item, j, group)
	}
	return nil
}

// update applies one SGD step on ĝ_ui − f_uj.
func (g *GBPR) update(u, i, j int32, group []int32) {
	rho := g.cfg.Rho
	vi := g.model.ItemFactors(i)
	vj := g.model.ItemFactors(j)
	uf := g.model.UserFactors(u)

	groupMean := 0.0
	for _, w := range group {
		groupMean += mathx.Dot(g.model.UserFactors(w), vi)
	}
	groupMean /= float64(len(group))
	fui := mathx.Dot(uf, vi)
	ghat := rho*(groupMean+g.model.Bias(i)) + (1-rho)*(fui+g.model.Bias(i))
	x := ghat - mathx.Dot(uf, vj) - g.model.Bias(j)
	grad := 1 - mathx.Sigmoid(x)

	gamma, reg := g.cfg.LearnRate, g.cfg.Reg
	d := g.model.Dim()
	// ∂ĝ/∂U_w = ρ/|G|·V_i (+ (1−ρ)·V_i for w = u); ∂x/∂U_u also −V_j.
	groupCoef := rho / float64(len(group))
	// Snapshot U_u so V_j's gradient is evaluated at the pre-update point.
	ufOld := mathx.CopyVec(uf)
	// Accumulate V_i's gradient before mutating user factors.
	viGrad := make([]float64, d)
	for _, w := range group {
		wf := g.model.UserFactors(w)
		coef := groupCoef
		if w == u {
			coef += 1 - rho
		}
		for q := 0; q < d; q++ {
			viGrad[q] += coef * wf[q]
		}
	}
	for _, w := range group {
		wf := g.model.UserFactors(w)
		coef := groupCoef
		if w == u {
			coef += 1 - rho
		}
		for q := 0; q < d; q++ {
			dw := grad*coef*vi[q] - reg*wf[q]
			if w == u {
				dw -= grad * vj[q] // the −f_uj half of x
			}
			wf[q] += gamma * dw
		}
	}
	for q := 0; q < d; q++ {
		vi[q] += gamma * (grad*viGrad[q] - reg*vi[q])
		vj[q] += gamma * (-grad*ufOld[q] - reg*vj[q])
	}
	if g.model.HasBias() {
		g.model.AddBias(i, gamma*(grad-reg*g.model.Bias(i)))
		g.model.AddBias(j, gamma*(-grad-reg*g.model.Bias(j)))
	}
}

// rejectUnobservedGBPR mirrors the shared rejection sampler without
// exporting it from the sampling package.
func rejectUnobservedGBPR(data *dataset.Dataset, u int32, rng *mathx.RNG) int32 {
	m := data.NumItems()
	for tries := 0; tries < 64; tries++ {
		j := int32(rng.Intn(m))
		if !data.IsPositive(u, j) {
			return j
		}
	}
	start := rng.Intn(m)
	for off := 0; off < m; off++ {
		j := int32((start + off) % m)
		if !data.IsPositive(u, j) {
			return j
		}
	}
	panic("baselines: user has observed every item")
}

package baselines

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/sampling"
)

// MPR is Multiple Pairwise Ranking (Yu et al., CIKM 2018): it relaxes
// BPR's single pairwise assumption into a chain of criteria over three item
// classes. The original uses auxiliary view data to form the middle class
// (viewed-but-not-purchased); on pure implicit feedback — the setting of
// the CLAPF paper's experiments — the middle class is approximated by
// *popular-but-unobserved* items, which a user has plausibly seen and
// skipped. The objective joins the two pairs as
//
//	ln σ(ρ(f_ui − f_uv) + (1 − ρ)(f_uv − f_uj))
//
// with i observed, v popularity-sampled unobserved, j uniformly unobserved.
type MPR struct {
	cfg   MPRConfig
	model *mf.Model
}

// MPRConfig tunes MPR.
type MPRConfig struct {
	Dim       int
	LearnRate float64
	Reg       float64
	InitStd   float64
	UseBias   bool
	Steps     int
	// Rho is MPR's trade-off between the (i ≻ v) and (v ≻ j) criteria
	// (the original paper searches {0.0, 0.1, …, 1.0}).
	Rho  float64
	Seed uint64
}

// DefaultMPRConfig mirrors DefaultBPRConfig with the paper's mid trade-off.
func DefaultMPRConfig(trainPairs int) MPRConfig {
	return MPRConfig{
		Dim:       20,
		LearnRate: 0.05,
		Reg:       0.01,
		InitStd:   0.1,
		UseBias:   true,
		Steps:     30 * trainPairs,
		Rho:       0.6,
	}
}

// NewMPR validates the configuration.
func NewMPR(cfg MPRConfig) (*MPR, error) {
	switch {
	case cfg.Dim <= 0:
		return nil, fmt.Errorf("baselines: MPR Dim = %d, want > 0", cfg.Dim)
	case cfg.LearnRate <= 0:
		return nil, fmt.Errorf("baselines: MPR LearnRate = %v, want > 0", cfg.LearnRate)
	case cfg.Reg < 0:
		return nil, fmt.Errorf("baselines: MPR Reg = %v, want >= 0", cfg.Reg)
	case cfg.Rho < 0 || cfg.Rho > 1:
		return nil, fmt.Errorf("baselines: MPR Rho = %v, want [0,1]", cfg.Rho)
	case cfg.Steps < 0:
		return nil, fmt.Errorf("baselines: MPR Steps = %d, want >= 0", cfg.Steps)
	}
	return &MPR{cfg: cfg}, nil
}

// Name implements Recommender.
func (m *MPR) Name() string { return "MPR" }

// Model exposes the learned factors (nil before Fit).
func (m *MPR) Model() *mf.Model { return m.model }

// ScoreAll implements Recommender.
func (m *MPR) ScoreAll(u int32, out []float64) { m.model.ScoreAll(u, out) }

// Fit runs the SGD loop over (i, v, j) triples.
func (m *MPR) Fit(train *dataset.Dataset) error {
	rng := mathx.NewRNG(m.cfg.Seed)
	var err error
	m.model, err = mf.New(mf.Config{
		NumUsers: train.NumUsers(),
		NumItems: train.NumItems(),
		Dim:      m.cfg.Dim,
		UseBias:  m.cfg.UseBias,
	})
	if err != nil {
		return err
	}
	m.model.InitGaussian(rng.Split(), m.cfg.InitStd)

	// Pair-uniform SGD over observed records; users need two unobserved
	// items so the middle item v and the negative j can differ.
	var pairs []dataset.Interaction
	train.ForEach(func(u, i int32) {
		if train.NumPositives(u)+1 < train.NumItems() {
			pairs = append(pairs, dataset.Interaction{User: u, Item: i})
		}
	})
	if len(pairs) == 0 {
		return fmt.Errorf("baselines: MPR has no trainable records")
	}

	uniform := sampling.NewUniformPair(train, rng.Split())
	popNeg, err := sampling.NewPopNegative(train, rng.Split())
	if err != nil {
		return err
	}

	for step := 0; step < m.cfg.Steps; step++ {
		rec := pairs[rng.Intn(len(pairs))]
		j := uniform.SampleNegative(rec.User)
		v := popNeg.Sample(rec.User)
		for v == j { // the two negatives must differ
			v = popNeg.Sample(rec.User)
		}
		m.update(rec.User, rec.Item, v, j)
	}
	return nil
}

// update applies one step on R = ρ(f_ui − f_uv) + (1−ρ)(f_uv − f_uj);
// writing R = a·f_ui + b·f_uv + c·f_uj gives a = ρ, b = 1−2ρ, c = −(1−ρ).
func (m *MPR) update(u, i, v, j int32) {
	rho := m.cfg.Rho
	a, b, c := rho, 1-2*rho, -(1 - rho)

	uf := m.model.UserFactors(u)
	vi := m.model.ItemFactors(i)
	vv := m.model.ItemFactors(v)
	vj := m.model.ItemFactors(j)

	r := a*(mathx.Dot(uf, vi)+m.model.Bias(i)) +
		b*(mathx.Dot(uf, vv)+m.model.Bias(v)) +
		c*(mathx.Dot(uf, vj)+m.model.Bias(j))
	g := 1 - mathx.Sigmoid(r)
	gamma, reg := m.cfg.LearnRate, m.cfg.Reg
	for q := range uf {
		du := g*(a*vi[q]+b*vv[q]+c*vj[q]) - reg*uf[q]
		di := g*a*uf[q] - reg*vi[q]
		dv := g*b*uf[q] - reg*vv[q]
		dj := g*c*uf[q] - reg*vj[q]
		uf[q] += gamma * du
		vi[q] += gamma * di
		vv[q] += gamma * dv
		vj[q] += gamma * dj
	}
	if m.model.HasBias() {
		m.model.AddBias(i, gamma*(g*a-reg*m.model.Bias(i)))
		m.model.AddBias(v, gamma*(g*b-reg*m.model.Bias(v)))
		m.model.AddBias(j, gamma*(g*c-reg*m.model.Bias(j)))
	}
}

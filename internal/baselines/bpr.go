package baselines

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/sampling"
)

// BPRSampler selects BPR's negative-sampling scheme.
type BPRSampler int

const (
	// BPRUniform is the original uniform negative sampler.
	BPRUniform BPRSampler = iota
	// BPRDNS uses dynamic negative sampling (hardest of several uniform
	// candidates).
	BPRDNS
	// BPRAoBPR uses adaptive oversampling (Rendle & Freudenthaler 2014):
	// factor-ranked geometric negatives, the sampler DSS generalizes.
	BPRAoBPR
	// BPRABS approximates alpha-beta sampling (Cheng et al. 2019):
	// screen several candidate pairs and train on the most misranked.
	BPRABS
)

// BPR is Bayesian Personalized Ranking (Rendle et al. 2009): SGD over
// (observed, unobserved) pairs maximizing Σ ln σ(f_ui − f_uj) — the
// seminal pairwise method and the λ = 0 reduction of CLAPF.
type BPR struct {
	cfg   BPRConfig
	model *mf.Model
}

// BPRConfig tunes BPR.
type BPRConfig struct {
	Dim       int
	LearnRate float64
	Reg       float64 // shared α for user factors, item factors, and biases
	InitStd   float64
	UseBias   bool
	Steps     int
	Sampler   BPRSampler
	// DNSCandidates is the candidate count when Sampler is BPRDNS.
	DNSCandidates int
	Seed          uint64
}

// DefaultBPRConfig returns the paper-style configuration: d = 20 and a
// step budget of 30 passes over the training pairs.
func DefaultBPRConfig(trainPairs int) BPRConfig {
	return BPRConfig{
		Dim:       20,
		LearnRate: 0.05,
		Reg:       0.01,
		InitStd:   0.1,
		UseBias:   true,
		Steps:     30 * trainPairs,
	}
}

// NewBPR validates the configuration.
func NewBPR(cfg BPRConfig) (*BPR, error) {
	switch {
	case cfg.Dim <= 0:
		return nil, fmt.Errorf("baselines: BPR Dim = %d, want > 0", cfg.Dim)
	case cfg.LearnRate <= 0:
		return nil, fmt.Errorf("baselines: BPR LearnRate = %v, want > 0", cfg.LearnRate)
	case cfg.Reg < 0:
		return nil, fmt.Errorf("baselines: BPR Reg = %v, want >= 0", cfg.Reg)
	case cfg.Steps < 0:
		return nil, fmt.Errorf("baselines: BPR Steps = %d, want >= 0", cfg.Steps)
	case (cfg.Sampler == BPRDNS || cfg.Sampler == BPRABS) && cfg.DNSCandidates < 1:
		return nil, fmt.Errorf("baselines: BPR DNS/ABS needs DNSCandidates >= 1")
	}
	return &BPR{cfg: cfg}, nil
}

// Name implements Recommender.
func (b *BPR) Name() string {
	switch b.cfg.Sampler {
	case BPRDNS:
		return "BPR-DNS"
	case BPRAoBPR:
		return "BPR-AoBPR"
	case BPRABS:
		return "BPR-ABS"
	default:
		return "BPR"
	}
}

// Model exposes the learned factors (nil before Fit).
func (b *BPR) Model() *mf.Model { return b.model }

// ScoreAll implements Recommender.
func (b *BPR) ScoreAll(u int32, out []float64) { b.model.ScoreAll(u, out) }

// Fit runs the SGD loop.
func (b *BPR) Fit(train *dataset.Dataset) error {
	rng := mathx.NewRNG(b.cfg.Seed)
	var err error
	b.model, err = mf.New(mf.Config{
		NumUsers: train.NumUsers(),
		NumItems: train.NumItems(),
		Dim:      b.cfg.Dim,
		UseBias:  b.cfg.UseBias,
	})
	if err != nil {
		return err
	}
	b.model.InitGaussian(rng.Split(), b.cfg.InitStd)

	// Pair-uniform SGD: each step draws one observed record uniformly, as
	// in the reference implementation; only users who observed the whole
	// catalog are excluded.
	var pairs []dataset.Interaction
	train.ForEach(func(u, i int32) {
		if train.NumPositives(u) < train.NumItems() {
			pairs = append(pairs, dataset.Interaction{User: u, Item: i})
		}
	})
	if len(pairs) == 0 {
		return fmt.Errorf("baselines: BPR has no trainable records")
	}

	var negative func(u int32) int32
	switch b.cfg.Sampler {
	case BPRUniform:
		uniform := sampling.NewUniformPair(train, rng.Split())
		negative = uniform.SampleNegative
	case BPRDNS:
		s, err := sampling.NewDNSPair(train, b.model, rng.Split(), b.cfg.DNSCandidates)
		if err != nil {
			return err
		}
		negative = s.SampleNegative
	case BPRAoBPR:
		s, err := sampling.NewAoBPRPair(train, b.model, rng.Split(), 0)
		if err != nil {
			return err
		}
		negative = s.SampleNegative
	case BPRABS:
		s, err := sampling.NewABSPair(train, b.model, rng.Split(), b.cfg.DNSCandidates, 0)
		if err != nil {
			return err
		}
		// ABS screens whole pairs; adapt it to the pair-uniform loop by
		// letting it choose the negative for the drawn positive.
		negative = func(u int32) int32 { return s.SamplePair(u).J }
	default:
		return fmt.Errorf("baselines: unknown BPR sampler %d", b.cfg.Sampler)
	}

	for step := 0; step < b.cfg.Steps; step++ {
		rec := pairs[rng.Intn(len(pairs))]
		b.update(rec.User, rec.Item, negative(rec.User))
	}
	return nil
}

// update applies one BPR step: with x = f_ui − f_uj and g = 1 − σ(x),
// Θ += γ(g·∂x/∂Θ − reg·Θ).
func (b *BPR) update(u, i, j int32) {
	uf := b.model.UserFactors(u)
	vi := b.model.ItemFactors(i)
	vj := b.model.ItemFactors(j)
	x := mathx.Dot(uf, vi) + b.model.Bias(i) - mathx.Dot(uf, vj) - b.model.Bias(j)
	g := 1 - mathx.Sigmoid(x)
	gamma, reg := b.cfg.LearnRate, b.cfg.Reg
	for q := range uf {
		du := g*(vi[q]-vj[q]) - reg*uf[q]
		di := g*uf[q] - reg*vi[q]
		dj := -g*uf[q] - reg*vj[q]
		uf[q] += gamma * du
		vi[q] += gamma * di
		vj[q] += gamma * dj
	}
	if b.model.HasBias() {
		b.model.AddBias(i, gamma*(g-reg*b.model.Bias(i)))
		b.model.AddBias(j, gamma*(-g-reg*b.model.Bias(j)))
	}
}

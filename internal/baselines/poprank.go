package baselines

import "clapf/internal/dataset"

// PopRank recommends items by training-set popularity — the paper's
// non-personalized floor. Every user receives the same ranking.
type PopRank struct {
	pop []float64
}

// NewPopRank returns an unfitted PopRank.
func NewPopRank() *PopRank { return &PopRank{} }

// Name implements Recommender.
func (p *PopRank) Name() string { return "PopRank" }

// Fit counts item occurrences in the training data.
func (p *PopRank) Fit(train *dataset.Dataset) error {
	counts := train.ItemPopularity()
	p.pop = make([]float64, len(counts))
	for i, c := range counts {
		p.pop[i] = float64(c)
	}
	return nil
}

// ScoreAll implements Recommender; scores are identical across users.
func (p *PopRank) ScoreAll(_ int32, out []float64) {
	copy(out, p.pop)
}

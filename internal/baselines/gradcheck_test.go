package baselines

import (
	"math"
	"testing"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// climfObjective evaluates CLiMF's lower-bound objective (Eq. 7) for one
// user under the given model — the quantity Fit's per-user step ascends.
func climfObjective(m *mf.Model, d *dataset.Dataset, u int32) float64 {
	obs := d.Positives(u)
	var sum float64
	for _, i := range obs {
		fi := m.Score(u, i)
		sum += mathx.LogSigmoid(fi)
		for _, k := range obs {
			if k == i {
				continue
			}
			sum += mathx.LogSigmoid(fi - m.Score(u, k))
		}
	}
	return sum
}

// TestCLiMFGradientDirection verifies that one CLiMF epoch with a small
// learning rate and zero regularization increases the per-user objective —
// i.e. the hand-derived gradient really is an ascent direction for Eq. 7.
func TestCLiMFGradientDirection(t *testing.T) {
	d, err := dataset.FromInteractions("gc", 3, 12, []dataset.Interaction{
		{User: 0, Item: 0}, {User: 0, Item: 4}, {User: 0, Item: 9},
		{User: 1, Item: 2}, {User: 1, Item: 4},
		{User: 2, Item: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := CLiMFConfig{Dim: 5, LearnRate: 1e-3, Reg: 0, InitStd: 0.3, Epochs: 1, Seed: 5}
	c, err := NewCLiMF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First build the initial model by fitting zero epochs' worth — easier:
	// fit once and compare against a re-initialized copy stepped manually.
	// Instead: fit with 1 epoch and verify objective increased relative to
	// the same initialization (recreate it deterministically).
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	after := 0.0
	for u := int32(0); u < 3; u++ {
		after += climfObjective(c.Model(), d, u)
	}

	// Rebuild the exact initial model: same RNG stream as Fit uses.
	initModel := mf.MustNew(mf.Config{NumUsers: 3, NumItems: 12, Dim: 5})
	initModel.InitGaussian(mathx.NewRNG(5).Split(), 0.3)
	before := 0.0
	for u := int32(0); u < 3; u++ {
		before += climfObjective(initModel, d, u)
	}
	if after <= before {
		t.Errorf("CLiMF epoch decreased its objective: %.6f -> %.6f", before, after)
	}
}

// wmfObjective evaluates WMF's weighted regression loss over the full
// matrix: Σ_ui c_ui (p_ui − u·v)² + λ(‖U‖² + ‖V‖²).
func wmfObjective(m *mf.Model, d *dataset.Dataset, alpha, reg float64) float64 {
	var loss float64
	for u := int32(0); int(u) < d.NumUsers(); u++ {
		uf := m.UserFactors(u)
		for i := int32(0); int(i) < d.NumItems(); i++ {
			pred := mathx.Dot(uf, m.ItemFactors(i))
			if d.IsPositive(u, i) {
				e := 1 - pred
				loss += (1 + alpha) * e * e
			} else {
				loss += pred * pred
			}
		}
	}
	u2, v2, _ := m.L2Norms()
	return loss + reg*(u2+v2)
}

// TestWMFObjectiveDecreasesPerSweep verifies ALS actually descends the
// weighted least-squares objective sweep over sweep.
func TestWMFObjectiveDecreasesPerSweep(t *testing.T) {
	_, train, _ := splitOnly(t)
	cfg := DefaultWMFConfig()
	cfg.Dim = 8
	prev := math.Inf(1)
	for sweeps := 1; sweeps <= 4; sweeps++ {
		c := cfg
		c.Sweeps = sweeps
		w, err := NewWMF(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Fit(train); err != nil {
			t.Fatal(err)
		}
		obj := wmfObjective(w.Model(), train, cfg.Alpha, cfg.Reg)
		if obj > prev+1e-6 {
			t.Errorf("sweep %d raised WMF objective: %.4f -> %.4f", sweeps, prev, obj)
		}
		prev = obj
	}
}

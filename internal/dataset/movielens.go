package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file parses the on-disk formats of the paper's real corpora, so
// users who hold the actual MovieLens/Netflix files can run every
// experiment on them instead of the synthetic worlds:
//
//   - ML100K "u.data":        user \t item \t rating \t timestamp
//   - ML1M/ML10M "ratings.dat": user::item::rating::timestamp
//   - generic CSV:            user,item,rating[,timestamp] with optional header
//
// All loaders renumber the source's arbitrary user/item ids into dense
// 0-based indices and apply the paper's preprocessing (§6.1): ratings
// strictly greater than the threshold become positive implicit feedback.

// RatingFormat names a supported ratings file layout.
type RatingFormat int

const (
	// FormatML100K is tab-separated u.data.
	FormatML100K RatingFormat = iota
	// FormatML1M is ::-separated ratings.dat.
	FormatML1M
	// FormatCSV is comma-separated with an optional header line.
	FormatCSV
)

// idMap densifies arbitrary external ids.
type idMap struct {
	fwd map[string]int32
	rev []string
}

func newIDMap() *idMap { return &idMap{fwd: make(map[string]int32)} }

func (m *idMap) get(key string) int32 {
	if id, ok := m.fwd[key]; ok {
		return id
	}
	id := int32(len(m.rev))
	m.fwd[key] = id
	m.rev = append(m.rev, key)
	return id
}

// IDMapping records how external ids were densified by LoadRatings, so
// recommendations can be translated back to the source's identifiers.
type IDMapping struct {
	Users []string // dense user id → original id
	Items []string // dense item id → original id
}

// LoadRatings parses a ratings stream in the given format, thresholds it
// (ratings > threshold become positive), and returns the implicit dataset
// plus the id mapping. Lines that are blank or start with '#' are skipped.
func LoadRatings(r io.Reader, format RatingFormat, name string, threshold float64) (*Dataset, *IDMapping, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	users, items := newIDMap(), newIDMap()
	type rawPair struct{ u, i int32 }
	var positives []rawPair

	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var fields []string
		switch format {
		case FormatML100K:
			fields = strings.Split(text, "\t")
		case FormatML1M:
			fields = strings.Split(text, "::")
		case FormatCSV:
			fields = strings.Split(text, ",")
		default:
			return nil, nil, fmt.Errorf("dataset: unknown rating format %d", format)
		}
		if len(fields) < 3 {
			return nil, nil, fmt.Errorf("dataset: line %d: want >= 3 fields, got %d", line, len(fields))
		}
		for f := range fields {
			fields[f] = strings.TrimSpace(fields[f])
		}
		score, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			// A CSV header like "userId,movieId,rating" is tolerated once.
			if format == FormatCSV && line == 1 && !sawHeader {
				sawHeader = true
				continue
			}
			return nil, nil, fmt.Errorf("dataset: line %d: bad rating %q", line, fields[2])
		}
		if score > threshold {
			positives = append(positives, rawPair{u: users.get(fields[0]), i: items.get(fields[1])})
		} else {
			// Still register the ids so the mapping covers every entity
			// that appears in the source, matching Table 1's n and m.
			users.get(fields[0])
			items.get(fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(users.rev) == 0 || len(items.rev) == 0 {
		return nil, nil, fmt.Errorf("dataset: no ratings parsed")
	}

	b := NewBuilder(name, len(users.rev), len(items.rev))
	for _, p := range positives {
		if err := b.Add(p.u, p.i); err != nil {
			return nil, nil, err
		}
	}
	return b.Build(), &IDMapping{Users: users.rev, Items: items.rev}, nil
}

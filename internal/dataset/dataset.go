// Package dataset defines the implicit-feedback data model used across the
// repository: a sparse binary user-item matrix stored row-wise, plus the
// preprocessing and splitting protocol from §6.1 of the CLAPF paper
// (ratings > 3 become positive feedback; observed pairs are split 50/50
// into train and test; one training pair per user is held out for
// validation; the whole procedure is replicated five times).
package dataset

import (
	"fmt"
	"sort"

	"clapf/internal/mathx"
)

// Interaction is one observed positive user-item pair.
type Interaction struct {
	User int32
	Item int32
}

// Rating is an explicit-feedback record, the raw form of the MovieLens-like
// sources the paper preprocesses into implicit feedback.
type Rating struct {
	User  int32
	Item  int32
	Score float64
}

// Dataset is an immutable implicit-feedback dataset. Items observed by each
// user are stored as a sorted slice, giving O(log n) membership tests and
// cache-friendly iteration during training.
type Dataset struct {
	name     string
	numUsers int
	numItems int
	numPairs int
	rows     [][]int32 // rows[u] = sorted item ids with Y_ui = 1
}

// Builder accumulates interactions and produces a deduplicated Dataset.
type Builder struct {
	name     string
	numUsers int
	numItems int
	rows     [][]int32
}

// NewBuilder returns a Builder for a dataset with the given dimensions.
func NewBuilder(name string, numUsers, numItems int) *Builder {
	return &Builder{
		name:     name,
		numUsers: numUsers,
		numItems: numItems,
		rows:     make([][]int32, numUsers),
	}
}

// Add records a positive interaction. It returns an error if either index
// is out of range; duplicates are tolerated and collapsed by Build.
func (b *Builder) Add(user, item int32) error {
	if user < 0 || int(user) >= b.numUsers {
		return fmt.Errorf("dataset: user %d out of range [0,%d)", user, b.numUsers)
	}
	if item < 0 || int(item) >= b.numItems {
		return fmt.Errorf("dataset: item %d out of range [0,%d)", item, b.numItems)
	}
	b.rows[user] = append(b.rows[user], item)
	return nil
}

// Build finalizes the dataset: rows are sorted, duplicates removed.
func (b *Builder) Build() *Dataset {
	d := &Dataset{
		name:     b.name,
		numUsers: b.numUsers,
		numItems: b.numItems,
		rows:     make([][]int32, b.numUsers),
	}
	for u, row := range b.rows {
		if len(row) == 0 {
			continue
		}
		sorted := append([]int32(nil), row...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		dedup := sorted[:1]
		for _, it := range sorted[1:] {
			if it != dedup[len(dedup)-1] {
				dedup = append(dedup, it)
			}
		}
		d.rows[u] = dedup
		d.numPairs += len(dedup)
	}
	return d
}

// FromInteractions builds a Dataset directly from a pair list.
func FromInteractions(name string, numUsers, numItems int, pairs []Interaction) (*Dataset, error) {
	b := NewBuilder(name, numUsers, numItems)
	for _, p := range pairs {
		if err := b.Add(p.User, p.Item); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// FromRatings applies the paper's preprocessing: every rating strictly
// greater than threshold becomes a positive implicit interaction.
func FromRatings(name string, numUsers, numItems int, ratings []Rating, threshold float64) (*Dataset, error) {
	b := NewBuilder(name, numUsers, numItems)
	for _, r := range ratings {
		if r.Score > threshold {
			if err := b.Add(r.User, r.Item); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// Name returns the dataset's label (e.g. "ML100K").
func (d *Dataset) Name() string { return d.name }

// NumUsers returns n, the number of users.
func (d *Dataset) NumUsers() int { return d.numUsers }

// NumItems returns m, the number of items.
func (d *Dataset) NumItems() int { return d.numItems }

// NumPairs returns the number of observed positive pairs.
func (d *Dataset) NumPairs() int { return d.numPairs }

// Positives returns user u's observed items, sorted ascending. The returned
// slice is shared; callers must not modify it.
func (d *Dataset) Positives(u int32) []int32 { return d.rows[u] }

// NumPositives returns n_u⁺ for user u.
func (d *Dataset) NumPositives(u int32) int { return len(d.rows[u]) }

// MergeSorted merges two ascending id slices into one ascending slice
// with duplicates collapsed. When either input is empty the other is
// returned as-is (no copy), so the common no-extra-history case costs
// nothing. Both the serving exclusion path and the feedback fold-in path
// use it to extend a user's training positives with streamed events while
// keeping the deterministic ordering the fold-in solve depends on.
func MergeSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// IsPositive reports whether Y_ui = 1.
func (d *Dataset) IsPositive(u, i int32) bool {
	row := d.rows[u]
	lo := sort.Search(len(row), func(k int) bool { return row[k] >= i })
	return lo < len(row) && row[lo] == i
}

// Density returns |P| / (n·m).
func (d *Dataset) Density() float64 {
	if d.numUsers == 0 || d.numItems == 0 {
		return 0
	}
	return float64(d.numPairs) / float64(d.numUsers) / float64(d.numItems)
}

// UsersWithAtLeast returns all users having at least min observed items.
// CLAPF needs users with ≥ 2 positives to form an (i, k) pair.
func (d *Dataset) UsersWithAtLeast(min int) []int32 {
	var us []int32
	for u, row := range d.rows {
		if len(row) >= min {
			us = append(us, int32(u))
		}
	}
	return us
}

// Interactions returns every observed pair in user-major order.
func (d *Dataset) Interactions() []Interaction {
	out := make([]Interaction, 0, d.numPairs)
	for u, row := range d.rows {
		for _, it := range row {
			out = append(out, Interaction{User: int32(u), Item: it})
		}
	}
	return out
}

// ForEach calls fn for every observed pair.
func (d *Dataset) ForEach(fn func(u, i int32)) {
	for u, row := range d.rows {
		for _, it := range row {
			fn(int32(u), it)
		}
	}
}

// Fingerprint returns a 64-bit FNV-1a hash over the dataset's dimensions
// and every observed pair (rows are stored sorted, so the hash is
// independent of insertion order). Checkpoints record it so a resumed run
// can refuse to continue against different training data — silently mixing
// datasets mid-run would corrupt the model without any visible error.
// The name is deliberately excluded: the same interactions under a
// different label are the same training problem.
func (d *Dataset) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xFF
			h *= prime64
		}
	}
	mix(uint64(d.numUsers))
	mix(uint64(d.numItems))
	for u, row := range d.rows {
		for _, it := range row {
			mix(uint64(u)<<32 | uint64(uint32(it)))
		}
	}
	return h
}

// ItemPopularity returns, for each item, the number of users who observed
// it — the statistic PopRank ranks by and the generator's tail diagnostic.
func (d *Dataset) ItemPopularity() []int {
	pop := make([]int, d.numItems)
	for _, row := range d.rows {
		for _, it := range row {
			pop[it]++
		}
	}
	return pop
}

// Stats summarizes a train/test pair in the shape of the paper's Table 1.
type Stats struct {
	Name       string
	Users      int
	Items      int
	TrainPairs int
	TestPairs  int
	Density    float64 // (P + Pte) / n / m
}

// TableStats computes Table 1's columns for a train/test split.
func TableStats(train, test *Dataset) Stats {
	total := train.NumPairs() + test.NumPairs()
	return Stats{
		Name:       train.Name(),
		Users:      train.NumUsers(),
		Items:      train.NumItems(),
		TrainPairs: train.NumPairs(),
		TestPairs:  test.NumPairs(),
		Density:    float64(total) / float64(train.NumUsers()) / float64(train.NumItems()),
	}
}

// Split divides the observed pairs uniformly at random: each pair lands in
// the training set with probability trainFrac (the paper uses 0.5). Both
// halves keep the full (n, m) dimensions so item ids remain comparable.
func Split(d *Dataset, rng *mathx.RNG, trainFrac float64) (train, test *Dataset) {
	tb := NewBuilder(d.name, d.numUsers, d.numItems)
	eb := NewBuilder(d.name, d.numUsers, d.numItems)
	d.ForEach(func(u, i int32) {
		if rng.Float64() < trainFrac {
			tb.Add(u, i) //nolint:errcheck // indices come from a valid dataset
		} else {
			eb.Add(u, i) //nolint:errcheck
		}
	})
	return tb.Build(), eb.Build()
}

// HoldOutValidation removes one random training pair from every user who
// has at least two, returning the reduced training set and the held-out
// validation pairs — the paper's protocol for hyper-parameter selection.
func HoldOutValidation(train *Dataset, rng *mathx.RNG) (reduced *Dataset, validation []Interaction) {
	rb := NewBuilder(train.name, train.numUsers, train.numItems)
	for u, row := range train.rows {
		if len(row) < 2 {
			for _, it := range row {
				rb.Add(int32(u), it) //nolint:errcheck
			}
			continue
		}
		drop := rng.Intn(len(row))
		for k, it := range row {
			if k == drop {
				validation = append(validation, Interaction{User: int32(u), Item: it})
			} else {
				rb.Add(int32(u), it) //nolint:errcheck
			}
		}
	}
	return rb.Build(), validation
}

package dataset

import (
	"strings"
	"testing"
)

func TestLoadRatingsML100K(t *testing.T) {
	in := "196\t242\t3\t881250949\n" + // rating 3: not > 3, negative
		"186\t302\t3\t891717742\n" +
		"22\t377\t1\t878887116\n" +
		"196\t51\t5\t881250949\n" + // positive
		"186\t302\t4\t891717742\n" // positive (updates same pair's ids)
	d, m, err := LoadRatings(strings.NewReader(in), FormatML100K, "ml", 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 3 {
		t.Errorf("users = %d, want 3", d.NumUsers())
	}
	if d.NumItems() != 4 {
		t.Errorf("items = %d, want 4", d.NumItems())
	}
	if d.NumPairs() != 2 {
		t.Errorf("pairs = %d, want 2", d.NumPairs())
	}
	// The id mapping must cover all source entities, including
	// negative-only ones.
	if len(m.Users) != 3 || len(m.Items) != 4 {
		t.Errorf("mapping sizes = (%d,%d)", len(m.Users), len(m.Items))
	}
	// User "196" positive on item "51".
	u196, it51 := int32(-1), int32(-1)
	for i, s := range m.Users {
		if s == "196" {
			u196 = int32(i)
		}
	}
	for i, s := range m.Items {
		if s == "51" {
			it51 = int32(i)
		}
	}
	if u196 < 0 || it51 < 0 || !d.IsPositive(u196, it51) {
		t.Error("positive pair (196, 51) lost")
	}
}

func TestLoadRatingsML1M(t *testing.T) {
	in := "1::1193::5::978300760\n1::661::3::978302109\n2::1193::4::978298413\n"
	d, _, err := LoadRatings(strings.NewReader(in), FormatML1M, "ml1m", 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPairs() != 2 || d.NumUsers() != 2 || d.NumItems() != 2 {
		t.Errorf("parsed (%d users, %d items, %d pairs)", d.NumUsers(), d.NumItems(), d.NumPairs())
	}
}

func TestLoadRatingsCSVWithHeader(t *testing.T) {
	in := "userId,movieId,rating,timestamp\n1,31,2.5,1260759144\n1,1029,4.0,1260759179\n7,31,5,1260759182\n"
	d, _, err := LoadRatings(strings.NewReader(in), FormatCSV, "csv", 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPairs() != 2 {
		t.Errorf("pairs = %d, want 2", d.NumPairs())
	}
}

func TestLoadRatingsSkipsBlanksAndComments(t *testing.T) {
	in := "# comment\n\n1,2,5\n"
	d, _, err := LoadRatings(strings.NewReader(in), FormatCSV, "c", 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPairs() != 1 {
		t.Errorf("pairs = %d", d.NumPairs())
	}
}

func TestLoadRatingsErrors(t *testing.T) {
	cases := []struct {
		name   string
		input  string
		format RatingFormat
	}{
		{"too few fields", "1\t2\n", FormatML100K},
		{"bad rating mid-file", "1,2,5\n1,2,x\n", FormatCSV},
		{"empty", "", FormatCSV},
		{"bad format", "1,2,5\n", RatingFormat(99)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := LoadRatings(strings.NewReader(c.input), c.format, "x", 3); err == nil {
				t.Errorf("input %q accepted", c.input)
			}
		})
	}
}

func TestLoadRatingsDensifiesIDs(t *testing.T) {
	// Sparse, large external ids must map to dense 0..n-1.
	in := "99999,1000000,5\n5,1000000,4\n"
	d, m, err := LoadRatings(strings.NewReader(in), FormatCSV, "d", 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 2 || d.NumItems() != 1 {
		t.Errorf("dims = (%d,%d), want dense (2,1)", d.NumUsers(), d.NumItems())
	}
	if m.Users[0] != "99999" || m.Items[0] != "1000000" {
		t.Errorf("mapping order wrong: %v %v", m.Users, m.Items)
	}
}

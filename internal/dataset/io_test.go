package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestTSVRoundTrip(t *testing.T) {
	d := mustBuild(t, "Round", 5, 7, []Interaction{
		{0, 1}, {0, 6}, {2, 3}, {4, 0},
	})
	var buf bytes.Buffer
	if err := WriteTSV(&buf, d); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if got.Name() != "Round" || got.NumUsers() != 5 || got.NumItems() != 7 {
		t.Errorf("header mismatch: %q %d %d", got.Name(), got.NumUsers(), got.NumItems())
	}
	if got.NumPairs() != d.NumPairs() {
		t.Fatalf("pairs = %d, want %d", got.NumPairs(), d.NumPairs())
	}
	d.ForEach(func(u, i int32) {
		if !got.IsPositive(u, i) {
			t.Errorf("pair (%d,%d) lost in round trip", u, i)
		}
	})
}

func TestReadTSVErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "hello\n"},
		{"bad counts", "#clapf\tx\tfoo\t3\n"},
		{"missing tab", "#clapf\tx\t2\t2\n01\n"},
		{"non-numeric", "#clapf\tx\t2\t2\na\tb\n"},
		{"out of range", "#clapf\tx\t2\t2\n5\t0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadTSV(strings.NewReader(c.input)); err == nil {
				t.Errorf("input %q accepted, want error", c.input)
			}
		})
	}
}

func TestReadTSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "#clapf\tx\t2\t2\n# comment\n\n0\t1\n"
	d, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPairs() != 1 || !d.IsPositive(0, 1) {
		t.Errorf("parsed dataset wrong: %d pairs", d.NumPairs())
	}
}

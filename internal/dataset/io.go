package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV serializes a dataset as a small header followed by one
// "user<TAB>item" line per observed pair. The format is line-oriented and
// diff-friendly so generated datasets can live in version control.
func WriteTSV(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#clapf\t%s\t%d\t%d\n", d.Name(), d.NumUsers(), d.NumItems()); err != nil {
		return err
	}
	var werr error
	d.ForEach(func(u, i int32) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d\t%d\n", u, i)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadTSV parses the format written by WriteTSV.
func ReadTSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("dataset: empty input")
	}
	header := strings.Split(sc.Text(), "\t")
	if len(header) != 4 || header[0] != "#clapf" {
		return nil, fmt.Errorf("dataset: malformed header %q", sc.Text())
	}
	numUsers, err := strconv.Atoi(header[2])
	if err != nil {
		return nil, fmt.Errorf("dataset: bad user count: %w", err)
	}
	numItems, err := strconv.Atoi(header[3])
	if err != nil {
		return nil, fmt.Errorf("dataset: bad item count: %w", err)
	}
	b := NewBuilder(header[1], numUsers, numItems)
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		tab := strings.IndexByte(text, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("dataset: line %d: missing tab", line)
		}
		u, err := strconv.ParseInt(text[:tab], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		i, err := strconv.ParseInt(text[tab+1:], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if err := b.Add(int32(u), int32(i)); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

package dataset

import (
	"testing"
	"testing/quick"

	"clapf/internal/mathx"
)

func mustBuild(t *testing.T, name string, nu, ni int, pairs []Interaction) *Dataset {
	t.Helper()
	d, err := FromInteractions(name, nu, ni, pairs)
	if err != nil {
		t.Fatalf("FromInteractions: %v", err)
	}
	return d
}

func TestBuildDedup(t *testing.T) {
	d := mustBuild(t, "x", 2, 3, []Interaction{
		{0, 2}, {0, 0}, {0, 2}, {1, 1},
	})
	if d.NumPairs() != 3 {
		t.Errorf("NumPairs = %d, want 3 after dedup", d.NumPairs())
	}
	row := d.Positives(0)
	if len(row) != 2 || row[0] != 0 || row[1] != 2 {
		t.Errorf("Positives(0) = %v, want sorted [0 2]", row)
	}
}

func TestAddOutOfRange(t *testing.T) {
	b := NewBuilder("x", 2, 2)
	if err := b.Add(2, 0); err == nil {
		t.Error("user out of range not rejected")
	}
	if err := b.Add(0, -1); err == nil {
		t.Error("negative item not rejected")
	}
	if err := b.Add(1, 1); err != nil {
		t.Errorf("valid pair rejected: %v", err)
	}
}

func TestIsPositive(t *testing.T) {
	d := mustBuild(t, "x", 1, 10, []Interaction{{0, 3}, {0, 7}})
	for i := int32(0); i < 10; i++ {
		want := i == 3 || i == 7
		if got := d.IsPositive(0, i); got != want {
			t.Errorf("IsPositive(0,%d) = %v, want %v", i, got, want)
		}
	}
}

func TestFromRatingsThreshold(t *testing.T) {
	ratings := []Rating{
		{0, 0, 5}, {0, 1, 3}, {0, 2, 3.5}, {1, 0, 1},
	}
	d, err := FromRatings("r", 2, 3, ratings, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Only scores strictly greater than 3 survive: (0,0) and (0,2).
	if d.NumPairs() != 2 {
		t.Errorf("NumPairs = %d, want 2", d.NumPairs())
	}
	if !d.IsPositive(0, 0) || !d.IsPositive(0, 2) || d.IsPositive(0, 1) {
		t.Error("threshold filtering incorrect")
	}
}

func TestDensity(t *testing.T) {
	d := mustBuild(t, "x", 2, 5, []Interaction{{0, 0}, {1, 4}})
	if got := d.Density(); !mathx.AlmostEqual(got, 0.2, 1e-12) {
		t.Errorf("Density = %v, want 0.2", got)
	}
}

func TestUsersWithAtLeast(t *testing.T) {
	d := mustBuild(t, "x", 3, 5, []Interaction{
		{0, 0}, {0, 1}, {1, 2},
	})
	us := d.UsersWithAtLeast(2)
	if len(us) != 1 || us[0] != 0 {
		t.Errorf("UsersWithAtLeast(2) = %v, want [0]", us)
	}
	if got := d.UsersWithAtLeast(1); len(got) != 2 {
		t.Errorf("UsersWithAtLeast(1) = %v, want two users", got)
	}
}

func TestItemPopularity(t *testing.T) {
	d := mustBuild(t, "x", 3, 3, []Interaction{
		{0, 0}, {1, 0}, {2, 0}, {0, 1},
	})
	pop := d.ItemPopularity()
	want := []int{3, 1, 0}
	for i, w := range want {
		if pop[i] != w {
			t.Errorf("pop[%d] = %d, want %d", i, pop[i], w)
		}
	}
}

func TestSplitPartition(t *testing.T) {
	var pairs []Interaction
	for u := int32(0); u < 50; u++ {
		for i := int32(0); i < 20; i++ {
			pairs = append(pairs, Interaction{u, i})
		}
	}
	d := mustBuild(t, "x", 50, 20, pairs)
	rng := mathx.NewRNG(1)
	train, test := Split(d, rng, 0.5)

	if train.NumPairs()+test.NumPairs() != d.NumPairs() {
		t.Fatalf("split lost pairs: %d + %d != %d",
			train.NumPairs(), test.NumPairs(), d.NumPairs())
	}
	// No pair may appear in both halves.
	test.ForEach(func(u, i int32) {
		if train.IsPositive(u, i) {
			t.Fatalf("pair (%d,%d) in both train and test", u, i)
		}
	})
	// With 1000 pairs at 0.5, each half should be within a loose band.
	if train.NumPairs() < 400 || train.NumPairs() > 600 {
		t.Errorf("train half badly unbalanced: %d of 1000", train.NumPairs())
	}
	// Dimensions preserved.
	if train.NumUsers() != 50 || test.NumItems() != 20 {
		t.Error("split changed dataset dimensions")
	}
}

func TestSplitDeterministic(t *testing.T) {
	d := mustBuild(t, "x", 10, 10, []Interaction{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
	})
	a1, b1 := Split(d, mathx.NewRNG(9), 0.5)
	a2, b2 := Split(d, mathx.NewRNG(9), 0.5)
	if a1.NumPairs() != a2.NumPairs() || b1.NumPairs() != b2.NumPairs() {
		t.Error("same seed produced different splits")
	}
}

func TestHoldOutValidation(t *testing.T) {
	var pairs []Interaction
	for u := int32(0); u < 10; u++ {
		for i := int32(0); i < 5; i++ {
			pairs = append(pairs, Interaction{u, i})
		}
	}
	// User 10 has a single pair and must be left intact.
	pairs = append(pairs, Interaction{10, 0})
	d := mustBuild(t, "x", 11, 5, pairs)
	reduced, val := HoldOutValidation(d, mathx.NewRNG(2))

	if len(val) != 10 {
		t.Fatalf("validation size = %d, want 10 (one per eligible user)", len(val))
	}
	if reduced.NumPairs() != d.NumPairs()-10 {
		t.Errorf("reduced pairs = %d, want %d", reduced.NumPairs(), d.NumPairs()-10)
	}
	if reduced.NumPositives(10) != 1 {
		t.Error("single-pair user was reduced")
	}
	for _, v := range val {
		if reduced.IsPositive(v.User, v.Item) {
			t.Errorf("held-out pair (%d,%d) still in training set", v.User, v.Item)
		}
		if !d.IsPositive(v.User, v.Item) {
			t.Errorf("held-out pair (%d,%d) not from original data", v.User, v.Item)
		}
	}
}

func TestTableStats(t *testing.T) {
	train := mustBuild(t, "DS", 4, 5, []Interaction{{0, 0}, {1, 1}, {2, 2}})
	test := mustBuild(t, "DS", 4, 5, []Interaction{{3, 3}})
	s := TableStats(train, test)
	if s.Name != "DS" || s.Users != 4 || s.Items != 5 || s.TrainPairs != 3 || s.TestPairs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if !mathx.AlmostEqual(s.Density, 4.0/20.0, 1e-12) {
		t.Errorf("density = %v, want 0.2", s.Density)
	}
}

func TestInteractionsRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const nu, ni = 20, 30
		pairs := make([]Interaction, 0, len(raw))
		for _, v := range raw {
			pairs = append(pairs, Interaction{
				User: int32(v % nu),
				Item: int32((v / nu) % ni),
			})
		}
		d, err := FromInteractions("q", nu, ni, pairs)
		if err != nil {
			return false
		}
		// Rebuilding from Interactions() must reproduce the same dataset.
		d2, err := FromInteractions("q", nu, ni, d.Interactions())
		if err != nil || d2.NumPairs() != d.NumPairs() {
			return false
		}
		ok := true
		d.ForEach(func(u, i int32) {
			if !d2.IsPositive(u, i) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

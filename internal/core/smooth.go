package core

import (
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// This file implements the smoothed listwise quantities of §4.1 in their
// direct (quadratic-cost) and lower-bound (linear-cost) forms. The trainer
// never evaluates the direct forms — that is the whole point of the lower
// bound — but they are needed to (a) property-test the Jensen chain of
// Eq. 11 and (b) benchmark the cost gap the paper claims (the
// BenchmarkAblationDirectAP ablation).

// SmoothedAP computes Eq. 9: the smoothed approximation of user u's
// Average Precision,
//
//	AP_u = (1/n_u⁺) Σ_{i∈I⁺} σ(f_ui) Σ_{k∈I⁺} σ(f_uk − f_ui),
//
// at O((n_u⁺)²) cost.
func SmoothedAP(m *mf.Model, d *dataset.Dataset, u int32) float64 {
	obs := d.Positives(u)
	n := len(obs)
	if n == 0 {
		return 0
	}
	scores := make([]float64, n)
	for idx, it := range obs {
		scores[idx] = m.Score(u, it)
	}
	var sum float64
	for a := 0; a < n; a++ {
		var inner float64
		for b := 0; b < n; b++ {
			inner += mathx.Sigmoid(scores[b] - scores[a])
		}
		sum += mathx.Sigmoid(scores[a]) * inner
	}
	return sum / float64(n)
}

// SmoothedAPLowerBound computes the tightest valid line of Eq. 11's Jensen
// chain — a true lower bound on ln(AP_u):
//
//	(1/n_u⁺) Σ_{i∈I⁺} ln σ(f_ui)
//	  + (1/(n_u⁺)²) Σ_{i∈I⁺} Σ_{k∈I⁺} ln σ(f_uk − f_ui).
//
// Reproduction note (erratum): the paper's final Eq. 11 line rescales the
// first term's weight from 1/n⁺ to 1/(n⁺)². Because that term is a sum of
// non-positive logs, shrinking its weight *raises* the expression, so the
// published final line is not a lower bound of the line above it for
// n⁺ ≥ 2 (TestPaperEq11FinalLineNotABound exhibits violations). The
// rescaling is harmless for the algorithm — after dropping constants it
// just reweights the two terms of the L_MAP objective (Eq. 12), which the
// paper treats as the definition of CLAPF-MAP — but it is an approximation,
// not a bound. We keep Eq. 12 verbatim as the training objective (see LMAP)
// and expose the valid bound here.
func SmoothedAPLowerBound(m *mf.Model, d *dataset.Dataset, u int32) float64 {
	obs := d.Positives(u)
	n := len(obs)
	if n == 0 {
		return 0
	}
	scores := make([]float64, n)
	for idx, it := range obs {
		scores[idx] = m.Score(u, it)
	}
	var promote, order float64
	for a := 0; a < n; a++ {
		promote += mathx.LogSigmoid(scores[a])
		for b := 0; b < n; b++ {
			order += mathx.LogSigmoid(scores[b] - scores[a])
		}
	}
	nf := float64(n)
	return promote/nf + order/(nf*nf)
}

// PaperEq11FinalLine computes the paper's published final line of Eq. 11,
//
//	(1/(n_u⁺)²) Σ_{i∈I⁺} [ ln σ(f_ui) + Σ_{k∈I⁺} ln σ(f_uk − f_ui) ],
//
// kept for the erratum test and for cost benchmarking; see
// SmoothedAPLowerBound for why this is not actually a bound.
func PaperEq11FinalLine(m *mf.Model, d *dataset.Dataset, u int32) float64 {
	obs := d.Positives(u)
	n := len(obs)
	if n == 0 {
		return 0
	}
	scores := make([]float64, n)
	for idx, it := range obs {
		scores[idx] = m.Score(u, it)
	}
	var sum float64
	for a := 0; a < n; a++ {
		sum += mathx.LogSigmoid(scores[a])
		for b := 0; b < n; b++ {
			sum += mathx.LogSigmoid(scores[b] - scores[a])
		}
	}
	return sum / float64(n*n)
}

// SmoothedRR computes Eq. 6: CLiMF's smoothed Reciprocal Rank,
//
//	RR_u = Σ_{i∈I⁺} σ(f_ui) Π_{k∈I⁺} (1 − σ(f_uk − f_ui)),
//
// also at quadratic cost.
func SmoothedRR(m *mf.Model, d *dataset.Dataset, u int32) float64 {
	obs := d.Positives(u)
	n := len(obs)
	if n == 0 {
		return 0
	}
	scores := make([]float64, n)
	for idx, it := range obs {
		scores[idx] = m.Score(u, it)
	}
	var sum float64
	for a := 0; a < n; a++ {
		prod := mathx.Sigmoid(scores[a])
		for b := 0; b < n; b++ {
			if b == a {
				continue // Y_uk 𝕀(R_uk < R_ui) vanishes at k = i
			}
			prod *= 1 - mathx.Sigmoid(scores[b]-scores[a])
		}
		sum += prod
	}
	return sum
}

// LMAP evaluates the L_MAP objective of Eq. 12 (constants dropped) for one
// user: Σ ln σ(f_ui) + Σ_{i,k} ln σ(f_uk − f_ui) — equivalently
// (n_u⁺)² · PaperEq11FinalLine. This is the quantity CLAPF-MAP's listwise
// half maximizes.
func LMAP(m *mf.Model, d *dataset.Dataset, u int32) float64 {
	n := d.NumPositives(u)
	return PaperEq11FinalLine(m, d, u) * float64(n*n)
}

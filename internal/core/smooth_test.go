package core

import (
	"math"
	"testing"
	"testing/quick"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// randomWorld builds a tiny dataset and model with pseudo-random scores
// derived from a seed.
func randomWorld(seed uint64, numPos int) (*mf.Model, *dataset.Dataset) {
	rng := mathx.NewRNG(seed)
	const ni = 30
	b := dataset.NewBuilder("sm", 1, ni)
	seen := map[int32]bool{}
	for len(seen) < numPos {
		it := int32(rng.Intn(ni))
		if !seen[it] {
			seen[it] = true
			b.Add(0, it) //nolint:errcheck
		}
	}
	d := b.Build()
	m := mf.MustNew(mf.Config{NumUsers: 1, NumItems: ni, Dim: 4, UseBias: true})
	m.InitGaussian(rng, 1.0)
	return m, d
}

func TestJensenLowerBoundHolds(t *testing.T) {
	// Property: ln(SmoothedAP) ≥ SmoothedAPLowerBound (Eq. 11's chain).
	f := func(seed uint64, np uint8) bool {
		numPos := int(np%10) + 1
		m, d := randomWorld(seed, numPos)
		ap := SmoothedAP(m, d, 0)
		if ap <= 0 {
			return false // smoothed AP is a sum of positive terms
		}
		return math.Log(ap) >= SmoothedAPLowerBound(m, d, 0)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSmoothedAPInUnitInterval(t *testing.T) {
	// Eq. 9 averages n⁺ terms each bounded by σ(f)·n⁺·1 … the normalized
	// form divides by n⁺, so AP ∈ (0, n⁺]. Check positivity and finiteness.
	f := func(seed uint64, np uint8) bool {
		numPos := int(np%10) + 1
		m, d := randomWorld(seed, numPos)
		ap := SmoothedAP(m, d, 0)
		return ap > 0 && !math.IsInf(ap, 0) && !math.IsNaN(ap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSmoothedAPEmptyUser(t *testing.T) {
	m := mf.MustNew(mf.Config{NumUsers: 1, NumItems: 5, Dim: 2})
	d, err := dataset.FromInteractions("e", 1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if SmoothedAP(m, d, 0) != 0 || SmoothedAPLowerBound(m, d, 0) != 0 || SmoothedRR(m, d, 0) != 0 {
		t.Error("empty user should yield zero smoothed metrics")
	}
}

func TestSmoothedRRSingleItem(t *testing.T) {
	// With one observed item, RR_u = σ(f_ui) exactly.
	m, _ := randomWorld(3, 1)
	d, err := dataset.FromInteractions("one", 1, 30, []dataset.Interaction{{User: 0, Item: 7}})
	if err != nil {
		t.Fatal(err)
	}
	want := mathx.Sigmoid(m.Score(0, 7))
	if got := SmoothedRR(m, d, 0); !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("SmoothedRR = %v, want σ(f) = %v", got, want)
	}
}

func TestSmoothedRRDominatedByTopItem(t *testing.T) {
	// With two observed items far apart in score, RR ≈ σ(f_top).
	m := mf.MustNew(mf.Config{NumUsers: 1, NumItems: 4, Dim: 1, UseBias: true})
	m.UserFactors(0)[0] = 1
	m.ItemFactors(0)[0] = 10  // f = 10
	m.ItemFactors(1)[0] = -10 // f = -10
	d, err := dataset.FromInteractions("two", 1, 4, []dataset.Interaction{{User: 0, Item: 0}, {User: 0, Item: 1}})
	if err != nil {
		t.Fatal(err)
	}
	got := SmoothedRR(m, d, 0)
	if !mathx.AlmostEqual(got, 1, 1e-4) {
		t.Errorf("SmoothedRR = %v, want ≈ σ(10) ≈ 1", got)
	}
}

// TestPaperEq11FinalLineNotABound documents the erratum in Eq. 11: the
// published final line exceeds the valid Jensen bound (and can exceed
// ln(AP_u) itself) for users with n⁺ ≥ 2, because rescaling the negative
// promotion term from 1/n⁺ to 1/(n⁺)² raises it.
func TestPaperEq11FinalLineNotABound(t *testing.T) {
	violatesValidBound := false
	violatesLnAP := false
	for seed := uint64(0); seed < 200; seed++ {
		m, d := randomWorld(seed, int(seed%8)+2)
		published := PaperEq11FinalLine(m, d, 0)
		if published > SmoothedAPLowerBound(m, d, 0)+1e-12 {
			violatesValidBound = true
		}
		if published > math.Log(SmoothedAP(m, d, 0))+1e-12 {
			violatesLnAP = true
		}
	}
	if !violatesValidBound {
		t.Error("expected the published line to exceed the valid bound somewhere")
	}
	if !violatesLnAP {
		t.Error("expected the published line to exceed ln(AP_u) somewhere")
	}
}

func TestLMAPScalesPublishedLine(t *testing.T) {
	m, d := randomWorld(9, 6)
	n := float64(d.NumPositives(0))
	want := PaperEq11FinalLine(m, d, 0) * n * n
	if got := LMAP(m, d, 0); !mathx.AlmostEqual(got, want, 1e-9) {
		t.Errorf("LMAP = %v, want %v", got, want)
	}
}

func TestLMAPIncreasesWithBetterRanking(t *testing.T) {
	// Raising all observed scores raises L_MAP's promotion term.
	m, d := randomWorld(11, 5)
	before := LMAP(m, d, 0)
	for _, it := range d.Positives(0) {
		m.AddBias(it, 5)
	}
	after := LMAP(m, d, 0)
	if after <= before {
		t.Errorf("L_MAP did not increase: %v -> %v", before, after)
	}
}

package core

import (
	"math"
	"time"

	"clapf/internal/guard"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/obs/trace"
)

// This file wires the guard subsystem (internal/guard) into both
// trainers. Division of labor: the trainers own the hot path — per-step
// non-finite risk sentinels, gradient clipping, sampled loss tracking —
// and the guardState below runs the periodic checks (sampled parameter
// scan, loss watchdog, metric flush) every CheckEvery steps at points
// where the model is quiescent: between serial steps, and at segment
// barriers for the parallel trainer, so the race detector stays clean.

// Compile-time proof that both trainers can be supervised.
var (
	_ guard.Trainee = (*Trainer)(nil)
	_ guard.Trainee = (*ParallelTrainer)(nil)
)

// guardState is a trainer's installed guard: configuration, watchdog,
// pending trip, and check bookkeeping. Touched only from the coordinating
// goroutine.
type guardState struct {
	cfg     guard.Config
	wd      *guard.Watchdog
	rng     *mathx.RNG // drives sampled scans; independent of training RNGs
	metrics *guard.Metrics

	trip         *guard.Trip
	lastCheck    int    // step of the previous periodic check
	clipsFlushed uint64 // clip count already pushed to metrics
	lossTick     uint64 // 1-in-8 loss-sampling counter (serial trainer)

	// tracer, when set (via SetTracer on the owning trainer, in either
	// installation order), attributes the periodic check's latency to the
	// "train.guard_scan" stage.
	tracer *trace.Tracer
}

// newGuardState applies defaults and validates cfg. The scan RNG is
// derived from the training seed but from a separate stream, so
// installing a guard never perturbs the sampling trajectory.
func newGuardState(cfg guard.Config, m *guard.Metrics, seed uint64) (*guardState, error) {
	cfg = cfg.Default()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &guardState{
		cfg:     cfg,
		wd:      guard.NewWatchdog(cfg),
		rng:     mathx.NewRNG(seed ^ 0x6775617264), // "guard"
		metrics: m,
	}, nil
}

// watching reports whether divergence detection is armed (watchdog
// enabled and no trip pending).
func (g *guardState) watching() bool { return g.cfg.Watchdog && g.trip == nil }

// tickLoss returns true on every 8th call.
func (g *guardState) tickLoss() bool {
	g.lossTick++
	return g.lossTick&7 == 0
}

// maybeCheck runs the periodic check when the cadence is due.
func (g *guardState) maybeCheck(step int, ewma float64, lossN int, clips uint64, m *mf.Model) {
	if g.trip != nil || step-g.lastCheck < g.cfg.CheckEvery {
		return
	}
	g.check(step, ewma, lossN, clips, m)
}

// flushClips pushes the un-flushed clip delta to the metrics counter.
// Called at check boundaries and at the end of every RunSteps call, so
// short runs (under one check interval) still export their counts.
func (g *guardState) flushClips(clips uint64) {
	if g.metrics != nil && clips > g.clipsFlushed {
		g.metrics.Clips.Add(clips - g.clipsFlushed)
		g.clipsFlushed = clips
	}
}

// check flushes clip deltas, samples the parameters, and feeds the
// watchdog. Runs on the coordinating goroutine with the model quiescent.
func (g *guardState) check(step int, ewma float64, lossN int, clips uint64, m *mf.Model) {
	if g.tracer != nil {
		defer func(t0 time.Time) {
			g.tracer.ObserveStage("train.guard_scan", time.Since(t0))
		}(time.Now())
	}
	g.lastCheck = step
	g.flushClips(clips)
	if !g.cfg.Watchdog {
		return
	}
	if g.cfg.ScanSample > 0 {
		res := guard.SampleModel(m, g.rng, g.cfg.ScanSample)
		if res.Total() > 0 {
			if g.metrics != nil {
				g.metrics.NonFiniteParams.Add(uint64(res.Total()))
			}
			g.trip = &guard.Trip{Step: step, Reason: guard.ReasonNonFiniteParams, Detail: res.String()}
			return
		}
	}
	if tr := g.wd.Observe(step, ewma, lossN); tr != nil {
		g.trip = tr
	}
}

// clear re-arms the guard after a rollback: the trip is dropped, the
// watchdog re-learns its baseline from the restored trajectory, and the
// check cadence restarts from the restored step.
func (g *guardState) clear(step int) {
	g.trip = nil
	g.wd.Reset()
	g.lastCheck = step
}

// isFinite is the hot-path finiteness test: x−x is 0 for finite x and NaN
// for NaN or ±Inf. Cheaper than two math.Is* calls per SGD step.
func isFinite(x float64) bool {
	return x-x == 0
}

// clipScalar bounds the L2 norm of the data-term gradient by scaling the
// Eq. 23 multiplier g. Every data-term component carries the factor g —
// ∂/∂U_u = g·w with w = a·V_i + b·V_k + c·V_j, ∂/∂V_t = g·coeff_t·U_u,
// ∂/∂b_t = g·coeff_t — so with s = a² + b² + c²,
//
//	‖grad‖² = g²·(‖w‖² + s·‖U_u‖² [+ s with bias])
//
// and clipping to norm cn is exactly g ← g·cn/‖grad‖: one extra
// accumulation pass, no scratch vectors, directions untouched, and the
// unclipped path bit-identical to an unguarded trainer. When k aliases i
// the caller passes b = 0, which makes both w and s degenerate correctly.
// Regularization is excluded from the clipped norm — it contracts Θ
// toward zero and cannot diverge.
func clipScalar(g, cn, a, b, c float64, uf, vi, vk, vj []float64, bias bool) (float64, bool) {
	return clipScalarW(g, cn, a, b, c, uf, vi, vk, vj, make([]float64, len(uf)), bias)
}

// clipScalarW is clipScalar with a caller-provided w scratch buffer; the
// hot paths use the fused riskAndClipTerms + clipG below instead, and
// this wrapper keeps the unit tests exercising those same building
// blocks.
func clipScalarW(g, cn, a, b, c float64, uf, vi, vk, vj, wbuf []float64, bias bool) (float64, bool) {
	_, _, _, wsq, usq := riskAndClipTerms(a, b, c, uf, vi, vk, vj, wbuf)
	return clipG(g, cn, a, b, c, wsq, usq, bias)
}

// riskAndClipTerms is the clipped hot path's single sweep over the four
// factor vectors. It computes, in one pass:
//
//   - the three dot products the risk needs, accumulated element-by-
//     element in index order — bit-identical to mathx.Dot, so a clipped
//     trainer whose threshold never fires follows the exact trajectory
//     of an unguarded one;
//   - the combination w[q] = a·vi[q] + b·vk[q] + c·vj[q] into wbuf, for
//     the update loop to reuse instead of recomputing;
//   - the clip norm terms ‖w‖² and ‖U_u‖², in two-way-unrolled split
//     accumulators (their chains are latency-bound; pairwise partial
//     sums halve the depth, and the ulp-level reassociation only moves
//     the clip threshold, never the risk).
//
// Without clipping the trainer needs three separate Dot sweeps anyway,
// so the marginal cost of clipping is the w/norm arithmetic on data
// already in registers — not a second pass over memory.
func riskAndClipTerms(a, b, c float64, uf, vi, vk, vj, wbuf []float64) (di, dk, dj, wsq, usq float64) {
	// Reslice to the common length so the compiler drops the per-element
	// bounds checks in the accumulation loop.
	vi, vk, vj, wbuf = vi[:len(uf)], vk[:len(uf)], vj[:len(uf)], wbuf[:len(uf)]
	var wsq0, wsq1, usq0, usq1 float64
	q := 0
	for ; q+1 < len(uf); q += 2 {
		u0, u1 := uf[q], uf[q+1]
		x0, x1 := vi[q], vi[q+1]
		y0, y1 := vk[q], vk[q+1]
		z0, z1 := vj[q], vj[q+1]
		di += u0 * x0
		di += u1 * x1
		dk += u0 * y0
		dk += u1 * y1
		dj += u0 * z0
		dj += u1 * z1
		w0 := a*x0 + b*y0 + c*z0
		w1 := a*x1 + b*y1 + c*z1
		wbuf[q], wbuf[q+1] = w0, w1
		wsq0 += w0 * w0
		wsq1 += w1 * w1
		usq0 += u0 * u0
		usq1 += u1 * u1
	}
	if q < len(uf) {
		u := uf[q]
		di += u * vi[q]
		dk += u * vk[q]
		dj += u * vj[q]
		w := a*vi[q] + b*vk[q] + c*vj[q]
		wbuf[q] = w
		wsq0 += w * w
		usq0 += u * u
	}
	return di, dk, dj, wsq0 + wsq1, usq0 + usq1
}

// clipG applies the clip decision to the Eq. 23 multiplier g given the
// precomputed norm terms (see clipScalar for the algebra).
func clipG(g, cn, a, b, c, wsq, usq float64, bias bool) (float64, bool) {
	s := a*a + b*b + c*c
	normsq := wsq + s*usq
	if bias {
		normsq += s
	}
	normsq *= g * g
	if normsq <= cn*cn {
		return g, false
	}
	return g * cn / math.Sqrt(normsq), true
}

// SetGuard installs training guardrails (defaults applied to zero
// fields): with cfg.Watchdog, per-step non-finite sentinels, sampled
// parameter scans, and the loss watchdog; in any case, the clip counter
// flush into m. Call before training or between RunSteps calls; passing
// metrics m is optional. A second call replaces the guard.
func (t *Trainer) SetGuard(cfg guard.Config, m *guard.Metrics) error {
	gd, err := newGuardState(cfg, m, t.cfg.Seed)
	if err != nil {
		return err
	}
	gd.lastCheck = t.stepsDone
	gd.tracer = t.tracer
	t.gd = gd
	return nil
}

// GuardTrip returns the pending guard trip, or nil while healthy (or
// unguarded).
func (t *Trainer) GuardTrip() *guard.Trip {
	if t.gd == nil {
		return nil
	}
	return t.gd.trip
}

// ClearGuardTrip re-arms a tripped guard. Call after restoring from a
// checkpoint; the watchdog baseline resets to the restored trajectory.
func (t *Trainer) ClearGuardTrip() {
	if t.gd != nil {
		t.gd.clear(t.stepsDone)
	}
}

// ScaleLearnRate multiplies the learning rate by factor and returns the
// new rate. Rollback recovery uses it for backoff; the scaling survives
// Restore because restored state covers the optimization trajectory, not
// the hyper-parameters.
func (t *Trainer) ScaleLearnRate(factor float64) float64 {
	t.cfg.LearnRate *= factor
	return t.cfg.LearnRate
}

// GradClips returns the lifetime count of norm-clipped updates.
func (t *Trainer) GradClips() uint64 { return t.clips }

// SetGuard installs training guardrails on the parallel trainer; checks
// run at segment barriers (see RunSteps), so the Hogwild hot path only
// pays for the per-step sentinel and worker-local accumulation.
func (pt *ParallelTrainer) SetGuard(cfg guard.Config, m *guard.Metrics) error {
	gd, err := newGuardState(cfg, m, pt.cfg.Seed)
	if err != nil {
		return err
	}
	gd.lastCheck = pt.stepsDone
	gd.tracer = pt.tracer
	pt.gd = gd
	return nil
}

// GuardTrip returns the pending guard trip, or nil while healthy (or
// unguarded). Safe between RunSteps calls.
func (pt *ParallelTrainer) GuardTrip() *guard.Trip {
	if pt.gd == nil {
		return nil
	}
	return pt.gd.trip
}

// ClearGuardTrip re-arms a tripped guard after a checkpoint restore.
func (pt *ParallelTrainer) ClearGuardTrip() {
	if pt.gd != nil {
		pt.gd.clear(pt.stepsDone)
	}
}

// ScaleLearnRate multiplies the learning rate by factor and returns the
// new rate. Call only between RunSteps calls (workers read the rate
// lock-free while training).
func (pt *ParallelTrainer) ScaleLearnRate(factor float64) float64 {
	pt.cfg.LearnRate *= factor
	return pt.cfg.LearnRate
}

// GradClips returns the lifetime count of norm-clipped updates (merged at
// barriers; exact between RunSteps calls).
func (pt *ParallelTrainer) GradClips() uint64 { return pt.clips }

// mergeWorkerTrips promotes the first worker-local trip to the trainer
// guard at a barrier, stamping it with the aggregate step. Worker-local
// trips carry no step (workers do not know the global count); everything
// else is preserved.
func (pt *ParallelTrainer) mergeWorkerTrips() {
	for _, w := range pt.workers {
		if w.trip != nil {
			if pt.gd.trip == nil {
				w.trip.Step = pt.stepsDone
				pt.gd.trip = w.trip
			}
			w.trip = nil
		}
	}
}

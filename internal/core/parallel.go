package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"clapf/internal/dataset"
	"clapf/internal/guard"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/obs/trace"
	"clapf/internal/sampling"
)

// ParallelTrainer learns a CLAPF model with N lock-free Hogwild workers.
//
// Users are sharded across workers, so each user row U_u has exactly one
// writer; item factors and biases are shared and updated through
// element-wise atomic loads/stores (mf's atomic accessors), which keeps
// the rare colliding update well-defined — last writer wins per element —
// without any locking on the hot path. The structural argument is the one
// BPR-style Hogwild trainers rely on: a step touches one user row and
// three of m item rows, and on sparse implicit-feedback data two
// concurrent steps almost never pick the same items, so lost updates are
// vanishingly rare and SGD's noise tolerance absorbs them.
//
// Work proceeds in segments separated by barriers. Between barriers the
// workers run free; at a barrier the coordinator merges telemetry,
// rebuilds the DSS rank lists when the refresh cadence is due (workers
// share the owner sampler's lists read-only via sampling.SharedView), and
// fires the stats hook. Snapshot and Restore may only be called between
// RunSteps calls, when every worker is quiescent by construction.
//
// Consequence of lock-free updates: with more than one worker the exact
// parameter trajectory depends on the OS schedule, so two identically
// seeded runs are statistically equivalent, not bit-identical (the
// equivalence is enforced by the t-test suite in parallel_test.go).
// Workers draw from deterministic per-worker RNG streams split from the
// seed, so everything *except* the write interleaving is reproducible.
type ParallelTrainer struct {
	cfg     Config
	data    *dataset.Dataset
	model   *mf.Model
	sampler *sampling.TripleSampler // owner; rebuilt only at barriers
	workers []*parallelWorker

	stepsDone    int
	sinceRefresh int // aggregate steps since the last rank-list rebuild

	// Guardrails (see guarded.go); nil until SetGuard installs them.
	// Workers never touch gd directly — they record trips and clip counts
	// locally and the coordinator merges them at barriers.
	gd    *guardState
	clips uint64 // lifetime norm-clipped updates, merged at barriers

	// Merged telemetry, written only by the coordinating goroutine at
	// barriers.
	gradSum      float64
	gradN        int
	lossEWMA     float64
	lossN        int
	hook         StatsHook
	hookEvery    int
	trainStart   time.Time
	lastHookTime time.Time
	lastHookStep int

	// Optional obs export (RegisterMetrics), updated at barriers.
	stepsVec *obs.CounterVec
	spsVec   *obs.GaugeVec

	// Tracing (see trace.go); nil until SetTracer attaches a tracer.
	tracer *trace.Tracer
	stages *stageTimers
}

// parallelWorker is one Hogwild goroutine's state: a user shard, private
// RNG and sampler view, scratch rows for atomic item updates, and
// telemetry accumulators the coordinator merges at each barrier.
type parallelWorker struct {
	id      int
	label   string // obs label, strconv.Itoa(id)
	rng     *mathx.RNG
	sampler *sampling.TripleSampler
	pairs   []dataset.Interaction // this shard's (u, i) records

	vi, vk, vj []float64 // scratch item rows
	wv         []float64 // scratch a·vi+b·vk+c·vj, shared by clip and update

	steps int           // lifetime SGD updates
	busy  time.Duration // lifetime time spent inside segments

	// Per-segment accumulators; reset by the coordinator after merging.
	segGradSum float64
	segGradN   int
	segLossSum float64
	segLossN   int

	// Guard state, local to the worker between barriers. A set trip makes
	// the worker stop applying updates for the rest of its segment; the
	// coordinator promotes it at the barrier (mergeWorkerTrips).
	trip     *guard.Trip
	segClips int
	lossTick uint64

	// Sampled step-phase timing (see trace.go). Worker-local, so timed
	// steps on different workers observe the shared atomic histograms
	// without coordination.
	stageTick uint64
	timedStep bool
	timedAt   time.Time
}

// NewParallelTrainer validates the configuration and prepares an
// n-worker Hogwild trainer over the training split. Model initialization
// and the owner sampler consume the seed exactly as NewTrainer does, so a
// ParallelTrainer starts from the same parameters as a serial Trainer
// with the same configuration.
func NewParallelTrainer(cfg Config, train *dataset.Dataset, numWorkers int) (*ParallelTrainer, error) {
	if numWorkers < 1 {
		return nil, fmt.Errorf("core: %d workers, want >= 1", numWorkers)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train == nil {
		return nil, fmt.Errorf("core: nil training data")
	}
	// Same trainable-record rule as NewTrainer: every observed (u, i) of a
	// user with at least one unobserved item.
	perUser := make([][]dataset.Interaction, train.NumUsers())
	total := 0
	train.ForEach(func(u, i int32) {
		if train.NumPositives(u) < train.NumItems() {
			perUser[u] = append(perUser[u], dataset.Interaction{User: u, Item: i})
			total++
		}
	})
	if total == 0 {
		return nil, fmt.Errorf("core: no trainable records (every user observed every item)")
	}
	if numWorkers > total {
		numWorkers = total // more workers than records would idle anyway
	}

	rng := mathx.NewRNG(cfg.Seed)
	model, err := mf.New(mf.Config{
		NumUsers: train.NumUsers(),
		NumItems: train.NumItems(),
		Dim:      cfg.Dim,
		UseBias:  cfg.UseBias,
		InitStd:  cfg.InitStd,
	})
	if err != nil {
		return nil, err
	}
	model.InitGaussian(rng.Split(), cfg.InitStd)

	samplerCfg := cfg.Sampler
	samplerCfg.Objective = cfg.Variant
	sampler, err := sampling.NewTripleSampler(samplerCfg, train, model, rng.Split())
	if err != nil {
		return nil, err
	}

	pt := &ParallelTrainer{cfg: cfg, data: train, model: model, sampler: sampler}
	pt.workers = make([]*parallelWorker, numWorkers)
	for w := range pt.workers {
		pt.workers[w] = &parallelWorker{
			id:    w,
			label: strconv.Itoa(w),
			vi:    make([]float64, cfg.Dim),
			vk:    make([]float64, cfg.Dim),
			vj:    make([]float64, cfg.Dim),
			wv:    make([]float64, cfg.Dim),
		}
	}
	// Shard users deterministically: walk users in id order, placing each
	// on the worker with the lightest record load so far (ties break to
	// the lowest id). Record-count balance keeps barrier idle time low even
	// under heavy-tailed user activity.
	for u := range perUser {
		if len(perUser[u]) == 0 {
			continue
		}
		best := 0
		for w := 1; w < numWorkers; w++ {
			if len(pt.workers[w].pairs) < len(pt.workers[best].pairs) {
				best = w
			}
		}
		pt.workers[best].pairs = append(pt.workers[best].pairs, perUser[u]...)
	}
	// Per-worker RNG streams and sampler views, split in worker order so
	// the draw sequences are functions of (seed, worker id) alone.
	for _, w := range pt.workers {
		w.rng = rng.Split()
		w.sampler = sampler.SharedView(rng.Split())
	}
	return pt, nil
}

// Model returns the live model; it satisfies eval.Scorer.
func (pt *ParallelTrainer) Model() *mf.Model { return pt.model }

// StepsDone returns the aggregate number of SGD updates applied so far.
func (pt *ParallelTrainer) StepsDone() int { return pt.stepsDone }

// Workers returns the worker count (which may be lower than requested on
// degenerate datasets with fewer trainable records than workers).
func (pt *ParallelTrainer) Workers() int { return len(pt.workers) }

// SmoothedLoss returns the barrier-merged loss average (0 until a hook is
// installed and at least one segment has run; as with Trainer, loss
// tracking is only maintained while a hook is installed).
func (pt *ParallelTrainer) SmoothedLoss() float64 { return pt.lossEWMA }

// GradMagnitude returns the mean Eq. 23 gradient scalar 1−σ(R) merged
// since the last call, and resets the accumulator.
func (pt *ParallelTrainer) GradMagnitude() float64 {
	if pt.gradN == 0 {
		return 0
	}
	m := pt.gradSum / float64(pt.gradN)
	pt.gradSum, pt.gradN = 0, 0
	return m
}

// SetStatsHook installs fn to fire at the first barrier at or after every
// `every` aggregate steps. The hook runs on the coordinating goroutine
// while all workers are quiescent.
func (pt *ParallelTrainer) SetStatsHook(every int, fn StatsHook) error {
	if fn != nil && every <= 0 {
		return fmt.Errorf("core: stats interval = %d, want > 0", every)
	}
	pt.hook = fn
	pt.hookEvery = every
	pt.trainStart = time.Time{}
	return nil
}

// InstrumentSampler attaches draw-position histograms to every worker's
// sampler view (histograms are atomic, so concurrent observation is
// safe); see sampling.TripleSampler.SetDrawHists.
func (pt *ParallelTrainer) InstrumentSampler(pos, neg *obs.Histogram) {
	pt.sampler.SetDrawHists(pos, neg)
	for _, w := range pt.workers {
		w.sampler.SetDrawHists(pos, neg)
	}
}

// RegisterMetrics exports the trainer to reg: clapf_train_workers, and
// per-worker lifetime step counts and throughput
// (clapf_train_worker_steps_total / clapf_train_worker_steps_per_sec,
// labeled by worker id). Values update at each barrier.
func (pt *ParallelTrainer) RegisterMetrics(reg *obs.Registry) {
	n := len(pt.workers)
	reg.NewGaugeFunc("clapf_train_workers",
		"Hogwild training workers in the current run.",
		func() float64 { return float64(n) })
	pt.stepsVec = reg.NewCounterVec("clapf_train_worker_steps_total",
		"SGD updates applied, per worker.", "worker")
	pt.spsVec = reg.NewGaugeVec("clapf_train_worker_steps_per_sec",
		"Lifetime SGD throughput, per worker.", "worker")
}

// WorkerStat reports one worker's lifetime throughput.
type WorkerStat struct {
	ID          int
	Pairs       int           // records in this worker's user shard
	Steps       int           // SGD updates applied
	Busy        time.Duration // time spent inside training segments
	StepsPerSec float64       // Steps / Busy
}

// WorkerStats returns per-worker lifetime counters; safe to call between
// RunSteps calls.
func (pt *ParallelTrainer) WorkerStats() []WorkerStat {
	out := make([]WorkerStat, len(pt.workers))
	for i, w := range pt.workers {
		sps := 0.0
		if secs := w.busy.Seconds(); secs > 0 {
			sps = float64(w.steps) / secs
		}
		out[i] = WorkerStat{ID: w.id, Pairs: len(w.pairs), Steps: w.steps, Busy: w.busy, StepsPerSec: sps}
	}
	return out
}

// Run performs all remaining configured steps.
func (pt *ParallelTrainer) Run() {
	pt.RunSteps(pt.cfg.Steps - pt.stepsDone)
}

// RunSteps performs n aggregate SGD updates across the workers and
// returns once all of them have been applied (so the caller always
// observes a quiescent model). Steps are divided among workers in
// proportion to their shard's record count, preserving the serial
// trainer's record-uniform sampling in expectation.
func (pt *ParallelTrainer) RunSteps(n int) {
	if n <= 0 {
		return
	}
	if pt.hook != nil && pt.trainStart.IsZero() {
		now := time.Now()
		pt.trainStart, pt.lastHookTime, pt.lastHookStep = now, now, pt.stepsDone
	}
	// With a tracer attached the whole call is one "train.batch" trace;
	// segment, barrier, refresh, and hook work become child spans, so a
	// slow batch in the flight recorder shows which phase ate the time.
	ctx := context.Background()
	var batch *trace.Trace
	if pt.tracer != nil {
		ctx, batch = pt.tracer.StartTrace(ctx, "train.batch")
	}
	rankAware := pt.cfg.Sampler.Strategy != sampling.Uniform
	refreshEvery := pt.sampler.RefreshEvery()
	for n > 0 {
		if pt.gd != nil && pt.gd.trip != nil {
			break // tripped guard: stop at this quiescent point
		}
		seg := n
		if rankAware && refreshEvery > 0 && refreshEvery-pt.sinceRefresh < seg {
			seg = refreshEvery - pt.sinceRefresh
		}
		if pt.hook != nil {
			if due := pt.hookEvery - (pt.stepsDone - pt.lastHookStep); due < seg {
				seg = due
			}
		}
		if pt.gd != nil {
			// Cap segments at the guard cadence so every check lands on a
			// quiescent barrier.
			if due := pt.gd.cfg.CheckEvery - (pt.stepsDone - pt.gd.lastCheck); due < seg {
				seg = due
			}
		}
		if seg <= 0 { // boundary already due; settle it before running more
			seg = 1
		}
		pt.runSegment(ctx, seg)
		n -= seg

		if rankAware && refreshEvery > 0 && pt.sinceRefresh >= refreshEvery {
			sp := trace.StartSpanNoCtx(ctx, "train.refresh")
			pt.sampler.Refresh() // workers are quiescent: safe to rebuild
			sp.End()
			pt.sinceRefresh = 0
		}
		if pt.hook != nil && pt.stepsDone-pt.lastHookStep >= pt.hookEvery {
			sp := trace.StartSpanNoCtx(ctx, "train.hook")
			pt.fireHook()
			sp.End()
		}
		if pt.gd != nil && pt.gd.trip == nil {
			// The check itself reports as the "train.guard_scan" stage
			// (see guardState.check), so no span here.
			pt.gd.maybeCheck(pt.stepsDone, pt.lossEWMA, pt.lossN, pt.clips, pt.model)
		}
	}
	if pt.gd != nil {
		pt.gd.flushClips(pt.clips)
	}
	if pt.gd != nil && pt.gd.trip != nil {
		batch.MarkError()
	}
	batch.Finish(0, 0)
}

// runSegment fans seg steps out to the workers and merges telemetry after
// the join barrier. The fan-out-to-join interval is the "train.segment"
// span; the coordinator-side merge that follows is "train.barrier".
func (pt *ParallelTrainer) runSegment(ctx context.Context, seg int) {
	sp := trace.StartSpanNoCtx(ctx, "train.segment")
	quotas := proportionalShares(seg, pt.workers)
	var wg sync.WaitGroup
	for i, w := range pt.workers {
		if quotas[i] == 0 {
			continue
		}
		wg.Add(1)
		go func(w *parallelWorker, quota int) {
			defer wg.Done()
			start := time.Now()
			for s := 0; s < quota; s++ {
				w.timedStep = false
				var phaseStart time.Time
				if pt.stages != nil {
					if w.stageTick&(stageSampleEvery-1) == 0 {
						w.timedStep = true
						phaseStart = time.Now()
					}
					w.stageTick++
				}
				rec := w.pairs[w.rng.Intn(len(w.pairs))]
				tr := w.sampler.SampleWithI(rec.User, rec.Item)
				if w.timedStep {
					w.timedAt = observePhase(pt.stages.sample, phaseStart)
				}
				pt.updateHogwild(w, rec.User, tr)
			}
			w.busy += time.Since(start)
			w.steps += quota
		}(w, quotas[i])
	}
	wg.Wait()
	sp.End()

	sp = trace.StartSpanNoCtx(ctx, "train.barrier")
	pt.stepsDone += seg
	pt.sinceRefresh += seg
	// Merge per-worker accumulators in worker order (deterministic
	// reduction) and refresh the exported metrics.
	for _, w := range pt.workers {
		pt.gradSum += w.segGradSum
		pt.gradN += w.segGradN
		pt.observeLossBatch(w.segLossSum, w.segLossN)
		w.segGradSum, w.segGradN = 0, 0
		w.segLossSum, w.segLossN = 0, 0
		pt.clips += uint64(w.segClips)
		w.segClips = 0
	}
	if pt.gd != nil {
		pt.mergeWorkerTrips()
	}
	if pt.stepsVec != nil {
		for i, w := range pt.workers {
			pt.stepsVec.With(w.label).Add(uint64(quotas[i]))
			if secs := w.busy.Seconds(); secs > 0 {
				pt.spsVec.With(w.label).Set(float64(w.steps) / secs)
			}
		}
	}
	sp.End()
}

// updateHogwild applies the Eq. 22 update for one sampled triple with
// atomic item access: load the three item rows, compute the same update
// Trainer.update applies, and publish the new rows element-wise. The user
// row is this worker's exclusive property (users are sharded) and is
// touched with plain loads and stores.
func (pt *ParallelTrainer) updateHogwild(w *parallelWorker, u int32, tr sampling.Triple) {
	if pt.gd != nil && w.trip != nil {
		return // tripped worker: stop writing and wait for the barrier
	}
	skipK := tr.K == tr.I
	a, b, c := riskCoeffs(pt.cfg.Variant, pt.cfg.Lambda, skipK)

	m := pt.model
	uf := m.UserFactors(u)
	m.LoadItemFactors(tr.I, w.vi)
	if skipK {
		copy(w.vk, w.vi) // aliased row; b = 0 so it only feeds the dot
	} else {
		m.LoadItemFactors(tr.K, w.vk)
	}
	m.LoadItemFactors(tr.J, w.vj)
	bi, bk, bj := m.LoadBias(tr.I), m.LoadBias(tr.K), m.LoadBias(tr.J)

	// With clipping armed, one fused sweep yields the risk dot products
	// (bit-identical to mathx.Dot) plus the clip norm terms and the w
	// buffer; without it, the three plain dots.
	cn := pt.cfg.ClipNorm
	var r, wsq, usq float64
	if cn > 0 {
		var di, dk, dj float64
		di, dk, dj, wsq, usq = riskAndClipTerms(a, b, c, uf, w.vi, w.vk, w.vj, w.wv)
		r = a*(di+bi) + b*(dk+bk) + c*(dj+bj)
	} else {
		r = a*(mathx.Dot(uf, w.vi)+bi) +
			b*(mathx.Dot(uf, w.vk)+bk) +
			c*(mathx.Dot(uf, w.vj)+bj)
	}

	if pt.gd != nil && pt.gd.cfg.Watchdog && !isFinite(r) {
		// Worker-local trip: no step stamp (the global count lives with
		// the coordinator), promoted at the next barrier.
		w.trip = &guard.Trip{Reason: guard.ReasonNonFiniteRisk,
			Detail: fmt.Sprintf("risk R = %v for user %d on worker %d", r, u, w.id)}
		return
	}

	g := 1 - mathx.Sigmoid(r)
	w.segGradSum += g
	w.segGradN++
	if pt.hook != nil {
		w.segLossSum += -mathx.LogSigmoid(r)
		w.segLossN++
	} else if pt.gd != nil && pt.gd.cfg.Watchdog {
		// Watchdog-only loss tracking samples 1-in-8 steps (see the serial
		// trainer); segment means stay unbiased under sampling.
		if w.lossTick++; w.lossTick&7 == 0 {
			w.segLossSum += -mathx.LogSigmoid(r)
			w.segLossN++
		}
	}

	if w.timedStep {
		w.timedAt = observePhase(pt.stages.risk, w.timedAt)
	}

	gamma := pt.cfg.LearnRate
	regU, regV, regB := pt.cfg.RegUser, pt.cfg.RegItem, pt.cfg.RegBias

	if cn > 0 {
		var clipped bool
		if g, clipped = clipG(g, cn, a, b, c, wsq, usq, m.HasBias()); clipped {
			w.segClips++
		}
		// The fused sweep captured w = a·V_i + b·V_k + c·V_j; reuse it.
		for q := range uf {
			du := g*w.wv[q] - regU*uf[q]
			di := g*a*uf[q] - regV*w.vi[q]
			dk := g*b*uf[q] - regV*w.vk[q]
			dj := g*c*uf[q] - regV*w.vj[q]
			uf[q] += gamma * du
			w.vi[q] += gamma * di
			if !skipK {
				w.vk[q] += gamma * dk
			}
			w.vj[q] += gamma * dj
		}
	} else {
		for q := range uf {
			du := g*(a*w.vi[q]+b*w.vk[q]+c*w.vj[q]) - regU*uf[q]
			di := g*a*uf[q] - regV*w.vi[q]
			dk := g*b*uf[q] - regV*w.vk[q]
			dj := g*c*uf[q] - regV*w.vj[q]
			uf[q] += gamma * du
			w.vi[q] += gamma * di
			if !skipK {
				w.vk[q] += gamma * dk
			}
			w.vj[q] += gamma * dj
		}
	}
	m.StoreItemFactors(tr.I, w.vi)
	if !skipK {
		m.StoreItemFactors(tr.K, w.vk)
	}
	m.StoreItemFactors(tr.J, w.vj)
	if m.HasBias() {
		m.StoreBias(tr.I, bi+gamma*(g*a-regB*bi))
		if !skipK {
			m.StoreBias(tr.K, bk+gamma*(g*b-regB*bk))
		}
		m.StoreBias(tr.J, bj+gamma*(g*c-regB*bj))
	}
	if w.timedStep {
		observePhase(pt.stages.update, w.timedAt)
	}
}

// observeLossBatch folds one worker segment's loss sum into the smoothed
// loss. During warm-up (fewer than lossEWMAWindow observations) this is
// the exact running mean, matching the serial trainer; afterwards each
// batch folds with weight batch/window — the batched analogue of the
// per-step EWMA.
func (pt *ParallelTrainer) observeLossBatch(sum float64, n int) {
	if n == 0 {
		return
	}
	mean := sum / float64(n)
	pt.lossN += n
	if pt.lossN <= lossEWMAWindow {
		pt.lossEWMA += float64(n) / float64(pt.lossN) * (mean - pt.lossEWMA)
		return
	}
	alpha := float64(n) / float64(lossEWMAWindow)
	if alpha > 1 {
		alpha = 1
	}
	pt.lossEWMA += alpha * (mean - pt.lossEWMA)
}

// fireHook emits one aggregated TrainStats snapshot.
func (pt *ParallelTrainer) fireHook() {
	now := time.Now()
	steps := pt.stepsDone - pt.lastHookStep
	secs := now.Sub(pt.lastHookTime).Seconds()
	sps := 0.0
	if secs > 0 {
		sps = float64(steps) / secs
	}
	stats := TrainStats{
		Step:         pt.stepsDone,
		TotalSteps:   pt.cfg.Steps,
		SmoothedLoss: pt.lossEWMA,
		GradMag:      pt.gradMagPeek(),
		StepsPerSec:  sps,
		Elapsed:      now.Sub(pt.trainStart),
	}
	pt.gradSum, pt.gradN = 0, 0 // the interval owns the accumulator
	pt.lastHookTime = now
	pt.lastHookStep = pt.stepsDone
	pt.hook(stats)
}

func (pt *ParallelTrainer) gradMagPeek() float64 {
	if pt.gradN == 0 {
		return 0
	}
	return pt.gradSum / float64(pt.gradN)
}

// proportionalShares splits seg among the workers in proportion to their
// record counts (largest-remainder rounding, ties to the lowest id), so
// aggregate sampling stays record-uniform and the allocation is a pure
// function of (seg, shard sizes) — reproducible across runs and resumes.
func proportionalShares(seg int, workers []*parallelWorker) []int {
	total := 0
	for _, w := range workers {
		total += len(w.pairs)
	}
	shares := make([]int, len(workers))
	rems := make([]int64, len(workers))
	assigned := 0
	for i, w := range workers {
		num := int64(seg) * int64(len(w.pairs))
		shares[i] = int(num / int64(total))
		rems[i] = num % int64(total)
		assigned += shares[i]
	}
	for assigned < seg {
		best := -1
		for i := range workers {
			if rems[i] >= 0 && (best < 0 || rems[i] > rems[best]) {
				best = i
			}
		}
		shares[best]++
		rems[best] = -1 // one top-up per worker per round
		assigned++
	}
	return shares
}

// ParallelWorkerState is one worker's resumable state inside a
// ParallelTrainerState.
type ParallelWorkerState struct {
	// RNG is the worker's record-selection RNG state.
	RNG [4]uint64
	// Sampler is the worker's sampler-view state (its private RNG and
	// step count; rank lists are derived state rebuilt on restore).
	Sampler sampling.SamplerState
}

// ParallelTrainerState is the resumable non-parameter state of a
// ParallelTrainer: the schedule position, every worker's RNG streams, the
// loss accumulator, and the refresh-cadence position. As with
// TrainerState, model parameters travel separately (store.Meta carries
// this state, the store payload the parameters).
//
// A workers=1 restore resumes bit-identically under the Uniform sampler;
// with more workers the continuation is statistically equivalent (the
// write interleaving is not part of any state).
type ParallelTrainerState struct {
	Step         int
	SinceRefresh int
	Workers      []ParallelWorkerState
	LossEWMA     float64
	LossN        int
}

// Snapshot captures the trainer's resumable state. Call only between
// RunSteps calls (workers quiescent).
func (pt *ParallelTrainer) Snapshot() ParallelTrainerState {
	st := ParallelTrainerState{
		Step:         pt.stepsDone,
		SinceRefresh: pt.sinceRefresh,
		Workers:      make([]ParallelWorkerState, len(pt.workers)),
		LossEWMA:     pt.lossEWMA,
		LossN:        pt.lossN,
	}
	for i, w := range pt.workers {
		st.Workers[i] = ParallelWorkerState{RNG: w.rng.State(), Sampler: w.sampler.State()}
	}
	return st
}

// Restore rewinds the trainer to a previously captured state: model
// parameters are copied from m, every worker's RNG streams are
// repositioned, and the rank lists are rebuilt from the restored
// parameters. The trainer must have been constructed with the same
// configuration, data, and worker count as the one that produced the
// snapshot.
func (pt *ParallelTrainer) Restore(st ParallelTrainerState, m *mf.Model) error {
	if st.Step < 0 {
		return fmt.Errorf("core: restore step %d < 0", st.Step)
	}
	if len(st.Workers) != len(pt.workers) {
		return fmt.Errorf("core: restore has %d worker states, trainer has %d workers (worker count must match)",
			len(st.Workers), len(pt.workers))
	}
	if err := pt.model.SetFrom(m); err != nil {
		return err
	}
	for i, w := range pt.workers {
		w.rng.SetState(st.Workers[i].RNG)
		w.sampler.Restore(st.Workers[i].Sampler) // view: no refresh
	}
	if pt.cfg.Sampler.Strategy != sampling.Uniform {
		pt.sampler.Refresh() // rebuild shared rank lists from restored params
	}
	pt.stepsDone = st.Step
	pt.sinceRefresh = st.SinceRefresh
	pt.lossEWMA = st.LossEWMA
	pt.lossN = st.LossN
	pt.gradSum, pt.gradN = 0, 0
	pt.trainStart = time.Time{}
	pt.lastHookStep = st.Step
	if pt.gd != nil {
		pt.gd.lastCheck = st.Step // restart the guard cadence from here
	}
	return nil
}

package core

import (
	"math"
	"strings"
	"testing"

	"clapf/internal/guard"
	"clapf/internal/mathx"
	"clapf/internal/sampling"
	"clapf/internal/store"
)

func TestConfigValidateNonFinite(t *testing.T) {
	// NaN fails every ordered comparison, so the range checks alone let
	// NaN hypers through; the finiteness pass must reject them by name.
	base := DefaultConfig(sampling.MAP, 100)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"Lambda", func(c *Config) { c.Lambda = math.NaN() }},
		{"LearnRate", func(c *Config) { c.LearnRate = math.NaN() }},
		{"LearnRate", func(c *Config) { c.LearnRate = math.Inf(1) }},
		{"RegUser", func(c *Config) { c.RegUser = math.NaN() }},
		{"RegItem", func(c *Config) { c.RegItem = math.Inf(-1) }},
		{"RegBias", func(c *Config) { c.RegBias = math.NaN() }},
		{"InitStd", func(c *Config) { c.InitStd = math.NaN() }},
		{"ClipNorm", func(c *Config) { c.ClipNorm = math.NaN() }},
		{"ClipNorm", func(c *Config) { c.ClipNorm = math.Inf(1) }},
	} {
		cfg := base
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.name) || !strings.Contains(err.Error(), "finite") {
			t.Errorf("non-finite %s: Validate() = %v, want finiteness error naming it", tc.name, err)
		}
	}
	neg := base
	neg.ClipNorm = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative ClipNorm accepted")
	}
	ok := base
	ok.ClipNorm = 5
	if err := ok.Validate(); err != nil {
		t.Errorf("positive ClipNorm rejected: %v", err)
	}
}

// TestClipScalarMatchesBruteForce checks the closed-form gradient norm
// behind clipScalar against an explicitly assembled data-term gradient:
// ∂/∂U_u = g·(a·V_i + b·V_k + c·V_j), ∂/∂V_t = g·coeff_t·U_u,
// ∂/∂b_t = g·coeff_t.
func TestClipScalarMatchesBruteForce(t *testing.T) {
	rng := mathx.NewRNG(11)
	vec := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		return s
	}
	for _, bias := range []bool{true, false} {
		for trial := 0; trial < 50; trial++ {
			const dim = 6
			uf, vi, vk, vj := vec(dim), vec(dim), vec(dim), vec(dim)
			a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			g := 0.5 + rng.Float64()

			var normsq float64
			for q := 0; q < dim; q++ {
				du := g * (a*vi[q] + b*vk[q] + c*vj[q])
				dvi, dvk, dvj := g*a*uf[q], g*b*uf[q], g*c*uf[q]
				normsq += du*du + dvi*dvi + dvk*dvk + dvj*dvj
			}
			if bias {
				normsq += g*g*a*a + g*g*b*b + g*g*c*c
			}
			norm := math.Sqrt(normsq)

			// A threshold above the norm leaves g untouched — exactly.
			if got, clipped := clipScalar(g, norm*1.01, a, b, c, uf, vi, vk, vj, bias); clipped || got != g {
				t.Fatalf("bias=%v trial %d: under-threshold clip = (%v, %v), want (%v, false)", bias, trial, got, clipped, g)
			}
			// A threshold below the norm scales g so the norm lands on cn.
			cn := norm * 0.37
			got, clipped := clipScalar(g, cn, a, b, c, uf, vi, vk, vj, bias)
			if !clipped {
				t.Fatalf("bias=%v trial %d: over-threshold update not clipped", bias, trial)
			}
			if want := g * cn / norm; math.Abs(got-want) > 1e-12*math.Abs(want) {
				t.Fatalf("bias=%v trial %d: clipped g = %v, want %v", bias, trial, got, want)
			}
		}
	}
}

// TestClipNormOffPathBitIdentical pins the zero-overhead contract: a huge
// clip threshold (never reached) must reproduce the unclipped run bit for
// bit, because clipping only rescales g after the same accumulations.
func TestClipNormOffPathBitIdentical(t *testing.T) {
	d := smallData(t, 7)
	run := func(clip float64) (u, v, b []float64, clips uint64) {
		cfg := quickConfig(sampling.MAP)
		cfg.Steps = 5000
		cfg.ClipNorm = clip
		tr, err := NewTrainer(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		tr.Run()
		u, v, b = tr.Model().RawParams()
		return u, v, b, tr.GradClips()
	}
	u0, v0, b0, _ := run(0)
	u1, v1, b1, clips := run(1e9)
	if clips != 0 {
		t.Fatalf("clip threshold 1e9 still clipped %d updates", clips)
	}
	for name, pair := range map[string][2][]float64{
		"U": {u0, u1}, "V": {v0, v1}, "B": {b0, b1},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s[%d]: unclipped %v vs never-reached-threshold %v", name, i, pair[0][i], pair[1][i])
			}
		}
	}
}

func TestClipNormBoundsUpdatesAndStillLearns(t *testing.T) {
	d := smallData(t, 8)
	cfg := quickConfig(sampling.MAP)
	cfg.Steps = 8000
	cfg.ClipNorm = 0.05 // tight enough to engage on early large-g updates
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()
	if tr.GradClips() == 0 {
		t.Fatal("tight clip threshold never engaged")
	}
	if u, v, b := tr.Model().CountNonFinite(); u+v+b > 0 {
		t.Fatalf("clipped run produced %d non-finite params", u+v+b)
	}
	// Clipping caps step sizes, not learning: observed items should still
	// pull ahead of unobserved ones for most users.
	better, total := 0, 0
	for u := int32(0); u < int32(d.NumUsers()); u++ {
		pos := d.Positives(u)
		if len(pos) == 0 {
			continue
		}
		total++
		if tr.Model().Score(u, pos[0]) > tr.Model().Score(u, (pos[0]+37)%int32(d.NumItems())) {
			better++
		}
	}
	if better*2 < total {
		t.Errorf("clipped run learned for only %d/%d users", better, total)
	}
}

func TestSetGuardValidates(t *testing.T) {
	d := smallData(t, 9)
	tr, err := NewTrainer(quickConfig(sampling.MAP), d)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetGuard(guard.Config{RiseFactor: 0.5}, nil); err == nil {
		t.Error("serial SetGuard accepted RiseFactor 0.5")
	}
	pt, err := NewParallelTrainer(quickConfig(sampling.MAP), d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.SetGuard(guard.Config{RisePatience: -1}, nil); err == nil {
		t.Error("parallel SetGuard accepted RisePatience -1")
	}
}

func TestScaleLearnRate(t *testing.T) {
	d := smallData(t, 10)
	cfg := quickConfig(sampling.MAP)
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.ScaleLearnRate(0.5); math.Abs(got-cfg.LearnRate*0.5) > 1e-15 {
		t.Errorf("serial ScaleLearnRate = %v, want %v", got, cfg.LearnRate*0.5)
	}
	pt, err := NewParallelTrainer(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	pt.ScaleLearnRate(0.5)
	if got := pt.ScaleLearnRate(0.5); math.Abs(got-cfg.LearnRate*0.25) > 1e-15 {
		t.Errorf("parallel ScaleLearnRate compounded to %v, want %v", got, cfg.LearnRate*0.25)
	}
}

// TestSerialGuardTripsOnPoison poisons the whole item matrix mid-run: the
// per-step risk sentinel (any sampled triple now scores NaN) must trip and
// freeze the trainer until the trip is cleared.
func TestSerialGuardTripsOnPoison(t *testing.T) {
	d := smallData(t, 12)
	cfg := quickConfig(sampling.MAP)
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetGuard(guard.Config{Watchdog: true, CheckEvery: 256}, nil); err != nil {
		t.Fatal(err)
	}
	tr.RunSteps(1000)
	if tr.GuardTrip() != nil {
		t.Fatalf("healthy run tripped: %v", tr.GuardTrip())
	}
	_, v, _ := tr.Model().RawParams()
	for i := range v {
		v[i] = math.NaN()
	}
	tr.RunSteps(1000)
	trip := tr.GuardTrip()
	if trip == nil {
		t.Fatal("poisoned run never tripped")
	}
	if trip.Reason != guard.ReasonNonFiniteRisk && trip.Reason != guard.ReasonNonFiniteParams {
		t.Fatalf("trip reason = %s", trip.Reason)
	}
	// A tripped trainer stops consuming steps until re-armed.
	before := tr.StepsDone()
	tr.RunSteps(500)
	if tr.StepsDone() != before {
		t.Errorf("tripped trainer advanced from %d to %d", before, tr.StepsDone())
	}
}

// TestParallelGuardTripsOnPoison is the Hogwild twin: worker-local
// sentinels must surface the trip at a segment barrier.
func TestParallelGuardTripsOnPoison(t *testing.T) {
	d := smallData(t, 13)
	cfg := quickConfig(sampling.MAP)
	pt, err := NewParallelTrainer(cfg, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.SetGuard(guard.Config{Watchdog: true, CheckEvery: 256}, nil); err != nil {
		t.Fatal(err)
	}
	pt.RunSteps(1000)
	if pt.GuardTrip() != nil {
		t.Fatalf("healthy run tripped: %v", pt.GuardTrip())
	}
	_, v, _ := pt.Model().RawParams()
	for i := range v {
		v[i] = math.NaN()
	}
	pt.RunSteps(1000)
	trip := pt.GuardTrip()
	if trip == nil {
		t.Fatal("poisoned run never tripped")
	}
	if trip.Step == 0 || trip.Step > pt.StepsDone() {
		t.Errorf("merged trip stamped with step %d (done %d)", trip.Step, pt.StepsDone())
	}
	before := pt.StepsDone()
	pt.RunSteps(500)
	if pt.StepsDone() != before {
		t.Errorf("tripped trainer advanced from %d to %d", before, pt.StepsDone())
	}
}

// TestWatchdogCatchesExplodingLR drives the learning rate into overflow
// territory mid-run and requires a trip — divergence detection end to end,
// with no parameter touched by the test itself.
func TestWatchdogCatchesExplodingLR(t *testing.T) {
	d := smallData(t, 14)
	cfg := quickConfig(sampling.MAP)
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetGuard(guard.Config{Watchdog: true, CheckEvery: 256, WarmupSteps: 512}, nil); err != nil {
		t.Fatal(err)
	}
	tr.RunSteps(4000)
	if tr.GuardTrip() != nil {
		t.Fatalf("healthy run tripped: %v", tr.GuardTrip())
	}
	tr.ScaleLearnRate(1e8)
	for i := 0; i < 40 && tr.GuardTrip() == nil; i++ {
		tr.RunSteps(512)
	}
	if tr.GuardTrip() == nil {
		t.Fatal("watchdog never tripped under an exploding learning rate")
	}
}

func TestMetaSnapshotRoundTripSerial(t *testing.T) {
	d := smallData(t, 15)
	cfg := quickConfig(sampling.MAP)
	cfg.Steps = 8000

	ref, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	ref.RunSteps(3000)
	meta := ref.MetaSnapshot()
	if meta.Step != 3000 || len(meta.Workers) != 0 {
		t.Fatalf("meta = %+v, want serial trailer at step 3000", meta)
	}
	frozen := ref.Model().Clone()
	ref.RunSteps(5000)

	resumed, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreFromMeta(frozen, meta); err != nil {
		t.Fatal(err)
	}
	resumed.RunSteps(5000)

	ru, rv, rb := ref.Model().RawParams()
	su, sv, sb := resumed.Model().RawParams()
	for name, pair := range map[string][2][]float64{
		"U": {ru, su}, "V": {rv, sv}, "B": {rb, sb},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s[%d]: straight-through %v vs meta round-trip %v", name, i, pair[0][i], pair[1][i])
			}
		}
	}
}

func TestMetaSnapshotRoundTripParallel(t *testing.T) {
	d := smallData(t, 16)
	cfg := quickConfig(sampling.MAP)

	// Single worker: the only parallel configuration with a deterministic
	// trajectory, so the round-trip can demand bit-identity.
	ref, err := NewParallelTrainer(cfg, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref.RunSteps(2000)
	meta := ref.MetaSnapshot()
	if len(meta.Workers) != 1 {
		t.Fatalf("meta carries %d workers, want 1", len(meta.Workers))
	}
	frozen := ref.Model().Clone()
	ref.RunSteps(3000)

	resumed, err := NewParallelTrainer(cfg, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreFromMeta(frozen, meta); err != nil {
		t.Fatal(err)
	}
	resumed.RunSteps(3000)

	ru, _, _ := ref.Model().RawParams()
	su, _, _ := resumed.Model().RawParams()
	for i := range ru {
		if ru[i] != su[i] {
			t.Fatalf("U[%d]: straight-through %v vs meta round-trip %v", i, ru[i], su[i])
		}
	}
}

func TestRestoreFromMetaErrors(t *testing.T) {
	d := smallData(t, 17)
	cfg := quickConfig(sampling.MAP)
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewParallelTrainer(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Model().Clone()

	if err := tr.RestoreFromMeta(m, nil); err == nil {
		t.Error("serial: nil meta accepted")
	}
	if err := pt.RestoreFromMeta(m, nil); err == nil {
		t.Error("parallel: nil meta accepted")
	}
	// Cross-topology trailers are rejected by shape, not by crashing.
	parallelMeta := pt.MetaSnapshot()
	if err := tr.RestoreFromMeta(m, parallelMeta); err == nil || !strings.Contains(err.Error(), "parallel") {
		t.Errorf("serial trainer took a parallel trailer: %v", err)
	}
	serialMeta := tr.MetaSnapshot()
	if err := pt.RestoreFromMeta(m, serialMeta); err == nil || !strings.Contains(err.Error(), "serial") {
		t.Errorf("parallel trainer took a serial trailer: %v", err)
	}
	// Truncated RNG state is a corrupt trailer.
	bad := tr.MetaSnapshot()
	bad.RNG = bad.RNG[:2]
	if err := tr.RestoreFromMeta(m, bad); err == nil || !strings.Contains(err.Error(), "state words") {
		t.Errorf("truncated RNG accepted: %v", err)
	}
	var _ *store.Meta = serialMeta // the trailer type is the store schema, not a core shadow
}

package core

import (
	"math"
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/mathx"
	"clapf/internal/sampling"
)

func smallData(t *testing.T, seed uint64) *dataset.Dataset {
	t.Helper()
	w, err := datagen.Generate(datagen.Profile{
		Name: "unit", Users: 60, Items: 120, Pairs: 1500,
		ZipfExp: 0.7, Dim: 5, Affinity: 6,
	}, mathx.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w.Data
}

func quickConfig(variant sampling.Objective) Config {
	cfg := DefaultConfig(variant, 1500)
	cfg.Dim = 8
	cfg.Steps = 20000
	return cfg
}

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig(sampling.MAP, 100)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"lambda low", func(c *Config) { c.Lambda = -0.1 }},
		{"lambda high", func(c *Config) { c.Lambda = 1.1 }},
		{"zero rate", func(c *Config) { c.LearnRate = 0 }},
		{"neg reg", func(c *Config) { c.RegItem = -1 }},
		{"zero dim", func(c *Config) { c.Dim = 0 }},
		{"neg init", func(c *Config) { c.InitStd = -0.1 }},
		{"neg steps", func(c *Config) { c.Steps = -5 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base
			c.mut(&cfg)
			if cfg.Validate() == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewTrainerErrors(t *testing.T) {
	d := smallData(t, 1)
	if _, err := NewTrainer(quickConfig(sampling.MAP), nil); err == nil {
		t.Error("nil data accepted")
	}
	bad := quickConfig(sampling.MAP)
	bad.Lambda = 2
	if _, err := NewTrainer(bad, d); err == nil {
		t.Error("invalid config accepted")
	}
	// A dataset where every active user has observed every item leaves no
	// negative to sample — untrainable.
	full, err := dataset.FromInteractions("s", 1, 2, []dataset.Interaction{
		{User: 0, Item: 0}, {User: 0, Item: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrainer(quickConfig(sampling.MAP), full); err == nil {
		t.Error("untrainable dataset accepted")
	}
}

func TestSinglePositiveUsersTrain(t *testing.T) {
	// Users with one observed item must still receive updates (the triple
	// degenerates to a scaled BPR pair) — critical on ultra-sparse corpora.
	d, err := dataset.FromInteractions("sp", 4, 10, []dataset.Interaction{
		{User: 0, Item: 1}, {User: 1, Item: 2}, {User: 2, Item: 3}, {User: 3, Item: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(sampling.MAP)
	cfg.Steps = 2000
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatalf("single-positive dataset rejected: %v", err)
	}
	tr.Run()
	// Every user's factors must have moved off their tiny init scale: the
	// observed item should out-score a never-observed one on average.
	better := 0
	for u := int32(0); u < 4; u++ {
		obs := d.Positives(u)[0]
		if tr.Model().Score(u, obs) > tr.Model().Score(u, 9) {
			better++
		}
	}
	if better < 3 {
		t.Errorf("only %d/4 single-positive users learned their item", better)
	}
}

// TestGradientMatchesFiniteDifference verifies that one SGD step moves every
// touched parameter by exactly −γ · ∂f/∂Θ, comparing against central finite
// differences of TripleLoss.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	d := smallData(t, 2)
	for _, variant := range []sampling.Objective{sampling.MAP, sampling.MRR} {
		for _, lambda := range []float64{0, 0.3, 0.7, 1} {
			cfg := quickConfig(variant)
			cfg.Lambda = lambda
			cfg.LearnRate = 1 // step = exactly the negative gradient
			cfg.Seed = 5
			tr, err := NewTrainer(cfg, d)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up so factors are not at the tiny init scale.
			tr.RunSteps(200)

			u := tr.pairs[0].User
			obs := d.Positives(u)
			triple := sampling.Triple{I: obs[0], K: obs[1], J: unobservedItem(d, u)}

			before := tr.model.Clone()
			lossAt := func(mutate func(), restore func()) float64 {
				mutate()
				l := tr.TripleLoss(u, triple)
				restore()
				return l
			}
			const h = 1e-6
			checkParam := func(name string, get func() float64, set func(float64)) {
				t.Helper()
				orig := get()
				plus := lossAt(func() { set(orig + h) }, func() { set(orig) })
				minus := lossAt(func() { set(orig - h) }, func() { set(orig) })
				fd := (plus - minus) / (2 * h)
				tr.update(u, triple)
				moved := get() - orig
				set(orig) // roll back the probe step
				// moved = −γ·grad with γ=1.
				if !mathx.AlmostEqual(-moved, fd, 1e-4*(1+math.Abs(fd))) {
					t.Errorf("%v λ=%v %s: update moved %v, finite diff %v",
						variant, lambda, name, moved, fd)
				}
				tr.model = before.Clone() // fresh params for next probe
			}

			m := tr.model
			checkParam("U_u[0]",
				func() float64 { return tr.model.UserFactors(u)[0] },
				func(v float64) { tr.model.UserFactors(u)[0] = v })
			checkParam("V_i[1]",
				func() float64 { return tr.model.ItemFactors(triple.I)[1] },
				func(v float64) { tr.model.ItemFactors(triple.I)[1] = v })
			checkParam("V_k[2]",
				func() float64 { return tr.model.ItemFactors(triple.K)[2] },
				func(v float64) { tr.model.ItemFactors(triple.K)[2] = v })
			checkParam("V_j[0]",
				func() float64 { return tr.model.ItemFactors(triple.J)[0] },
				func(v float64) { tr.model.ItemFactors(triple.J)[0] = v })
			checkParam("b_i",
				func() float64 { return tr.model.Bias(triple.I) },
				func(v float64) { tr.model.AddBias(triple.I, v-tr.model.Bias(triple.I)) })
			checkParam("b_j",
				func() float64 { return tr.model.Bias(triple.J) },
				func(v float64) { tr.model.AddBias(triple.J, v-tr.model.Bias(triple.J)) })
			_ = m
		}
	}
}

func unobservedItem(d *dataset.Dataset, u int32) int32 {
	for i := int32(0); i < int32(d.NumItems()); i++ {
		if !d.IsPositive(u, i) {
			return i
		}
	}
	panic("no unobserved item")
}

func TestLambdaZeroVariantsCoincide(t *testing.T) {
	// At λ = 0 both CLAPF-MAP and CLAPF-MRR reduce to the same BPR update,
	// so identically seeded trainers must produce identical models.
	d := smallData(t, 3)
	cfgA := quickConfig(sampling.MAP)
	cfgA.Lambda = 0
	cfgA.Steps = 5000
	cfgA.Seed = 11
	cfgB := quickConfig(sampling.MRR)
	cfgB.Lambda = 0
	cfgB.Steps = 5000
	cfgB.Seed = 11
	a, err := NewTrainer(cfgA, d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTrainer(cfgB, d)
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	b.Run()
	for u := int32(0); u < int32(d.NumUsers()); u += 7 {
		for i := int32(0); i < int32(d.NumItems()); i += 11 {
			if sa, sb := a.Model().Score(u, i), b.Model().Score(u, i); sa != sb {
				t.Fatalf("λ=0 variants diverge at (%d,%d): %v vs %v", u, i, sa, sb)
			}
		}
	}
}

func TestTrainingImprovesRanking(t *testing.T) {
	w, err := datagen.Generate(datagen.Profile{
		Name: "learn", Users: 80, Items: 150, Pairs: 3000,
		ZipfExp: 0.6, Dim: 5, Affinity: 7,
	}, mathx.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	train, test := dataset.Split(w.Data, mathx.NewRNG(5), 0.5)
	for _, variant := range []sampling.Objective{sampling.MAP, sampling.MRR} {
		cfg := quickConfig(variant)
		cfg.Steps = 120000
		cfg.Seed = 6
		tr, err := NewTrainer(cfg, train)
		if err != nil {
			t.Fatal(err)
		}
		before := eval.Evaluate(tr.Model(), train, test, eval.Options{Ks: []int{5}})
		tr.Run()
		after := eval.Evaluate(tr.Model(), train, test, eval.Options{Ks: []int{5}})
		if after.AUC < 0.7 {
			t.Errorf("%v: trained AUC = %.3f, want > 0.7", variant, after.AUC)
		}
		if after.AUC <= before.AUC {
			t.Errorf("%v: AUC did not improve: %.3f -> %.3f", variant, before.AUC, after.AUC)
		}
		if after.MAP <= before.MAP {
			t.Errorf("%v: MAP did not improve: %.4f -> %.4f", variant, before.MAP, after.MAP)
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	d := smallData(t, 7)
	cfg := quickConfig(sampling.MAP)
	cfg.Steps = 3000
	cfg.Seed = 99
	run := func() float64 {
		tr, err := NewTrainer(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		tr.Run()
		var sum float64
		for u := int32(0); u < 10; u++ {
			sum += tr.Model().Score(u, 3)
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different models: %v vs %v", a, b)
	}
}

func TestGradMagnitudeBoundedAndResets(t *testing.T) {
	d := smallData(t, 8)
	cfg := quickConfig(sampling.MAP)
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunSteps(500)
	g := tr.GradMagnitude()
	if g < 0 || g > 1 {
		t.Errorf("grad magnitude %v outside [0,1]", g)
	}
	if again := tr.GradMagnitude(); again != 0 {
		t.Errorf("accumulator not reset: %v", again)
	}
}

func TestStepsDoneAndPartialRuns(t *testing.T) {
	d := smallData(t, 9)
	cfg := quickConfig(sampling.MAP)
	cfg.Steps = 1000
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunSteps(300)
	if tr.StepsDone() != 300 {
		t.Errorf("StepsDone = %d, want 300", tr.StepsDone())
	}
	tr.Run() // completes the remaining 700
	if tr.StepsDone() != 1000 {
		t.Errorf("StepsDone = %d, want 1000", tr.StepsDone())
	}
}

func TestDSSTrainerRuns(t *testing.T) {
	d := smallData(t, 10)
	cfg := quickConfig(sampling.MAP)
	cfg.Steps = 3000
	cfg.Sampler = sampling.TripleConfig{Strategy: sampling.DSS, RefreshEvery: 500}
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()
	if tr.StepsDone() != 3000 {
		t.Errorf("StepsDone = %d", tr.StepsDone())
	}
	// Parameters must stay finite.
	u, v, b := tr.Model().RawParams()
	for _, s := range [][]float64{u, v, b} {
		for _, x := range s {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatal("non-finite parameter after DSS training")
			}
		}
	}
}

func TestNoBiasTraining(t *testing.T) {
	d := smallData(t, 11)
	cfg := quickConfig(sampling.MRR)
	cfg.UseBias = false
	cfg.Steps = 2000
	tr, err := NewTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()
	if tr.Model().HasBias() {
		t.Error("model should be bias-free")
	}
}

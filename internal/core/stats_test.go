package core

import (
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/obs"
	"clapf/internal/sampling"
)

func statsTrainData(t *testing.T) *dataset.Dataset {
	t.Helper()
	w, err := datagen.Generate(datagen.Profile{
		Name: "stats", Users: 40, Items: 60, Pairs: 900,
		ZipfExp: 0.6, Dim: 4, Affinity: 5,
	}, mathx.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	return w.Data
}

func TestStatsHookFires(t *testing.T) {
	train := statsTrainData(t)
	cfg := DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Dim = 4
	cfg.Steps = 5000
	cfg.Seed = 7
	tr, err := NewTrainer(cfg, train)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []TrainStats
	if err := tr.SetStatsHook(1000, func(s TrainStats) { snaps = append(snaps, s) }); err != nil {
		t.Fatal(err)
	}
	tr.Run()

	if len(snaps) != 5 {
		t.Fatalf("hook fired %d times, want 5", len(snaps))
	}
	for i, s := range snaps {
		if s.Step != (i+1)*1000 {
			t.Errorf("snapshot %d at step %d, want %d", i, s.Step, (i+1)*1000)
		}
		if s.TotalSteps != cfg.Steps {
			t.Errorf("snapshot %d TotalSteps = %d, want %d", i, s.TotalSteps, cfg.Steps)
		}
		if s.SmoothedLoss <= 0 {
			t.Errorf("snapshot %d loss = %v, want > 0", i, s.SmoothedLoss)
		}
		if s.GradMag <= 0 || s.GradMag >= 1 {
			t.Errorf("snapshot %d grad mag = %v, want (0,1)", i, s.GradMag)
		}
		if s.StepsPerSec <= 0 {
			t.Errorf("snapshot %d steps/sec = %v, want > 0", i, s.StepsPerSec)
		}
		if s.Elapsed <= 0 {
			t.Errorf("snapshot %d elapsed = %v, want > 0", i, s.Elapsed)
		}
	}
	// Loss should trend down over training on learnable data.
	if last, first := snaps[len(snaps)-1].SmoothedLoss, snaps[0].SmoothedLoss; last >= first {
		t.Errorf("smoothed loss did not decrease: first %v, last %v", first, last)
	}
	if tr.SmoothedLoss() != snaps[len(snaps)-1].SmoothedLoss {
		t.Errorf("SmoothedLoss() = %v, want %v", tr.SmoothedLoss(), snaps[len(snaps)-1].SmoothedLoss)
	}
}

func TestStatsHookValidationAndRemoval(t *testing.T) {
	train := statsTrainData(t)
	cfg := DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Steps = 100
	tr, err := NewTrainer(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetStatsHook(0, func(TrainStats) {}); err == nil {
		t.Error("zero interval accepted")
	}
	fired := 0
	if err := tr.SetStatsHook(10, func(TrainStats) { fired++ }); err != nil {
		t.Fatal(err)
	}
	tr.RunSteps(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if err := tr.SetStatsHook(0, nil); err != nil {
		t.Fatal(err)
	}
	tr.RunSteps(20)
	if fired != 2 {
		t.Errorf("hook fired after removal: %d", fired)
	}
}

func TestInstrumentSamplerRecordsDSSDraws(t *testing.T) {
	train := statsTrainData(t)
	cfg := DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Steps = 3000
	cfg.Sampler.Strategy = sampling.DSS
	cfg.Seed = 9
	tr, err := NewTrainer(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	pos := obs.NewHistogram(obs.RankBuckets(train.NumItems()))
	neg := obs.NewHistogram(obs.RankBuckets(train.NumItems()))
	tr.InstrumentSampler(pos, neg)
	tr.Run()

	if pos.Count() == 0 {
		t.Error("positive draw histogram empty under DSS")
	}
	if neg.Count() == 0 {
		t.Error("negative draw histogram empty under DSS")
	}
	// Geometric draws concentrate near the list head: the mean drawn rank
	// must sit well inside the catalog, not near uniform (m/2).
	m := float64(train.NumItems())
	if neg.Mean() >= m/2 {
		t.Errorf("negative draw mean rank = %v, want < %v (head-heavy)", neg.Mean(), m/2)
	}
}

func TestUniformSamplerRecordsNothing(t *testing.T) {
	train := statsTrainData(t)
	cfg := DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Steps = 500
	tr, err := NewTrainer(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	pos := obs.NewHistogram(obs.RankBuckets(train.NumItems()))
	neg := obs.NewHistogram(obs.RankBuckets(train.NumItems()))
	tr.InstrumentSampler(pos, neg)
	tr.Run()
	if pos.Count() != 0 || neg.Count() != 0 {
		t.Errorf("uniform strategy recorded draws: pos %d, neg %d", pos.Count(), neg.Count())
	}
}

package core

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/sampling"
)

// MultiTrainer implements CLAPF-Multi, an instantiation of the paper's
// closing invitation ("the CLAPF framework … is not limited to the
// instantiations in this paper"): it joins CLAPF-MAP's listwise pair with
// MPR's chain over two classes of unobserved items, optimizing
//
//	R = λ₁(f_uk − f_ui) + λ₂(f_ui − f_uv) + λ₃(f_uv − f_uj)
//
// with i, k observed, v a popularity-sampled unobserved item (plausibly
// seen-and-skipped), and j a uniformly unobserved item. λ₁ carries the
// listwise ordering, λ₂ the CLAPF pairwise term, λ₃ MPR's uncertain-vs-
// negative criterion. (λ₁, λ₂, λ₃) = (λ, 1−λ, 0) with v drawn uniformly
// recovers CLAPF-MAP; (0, ρ, 1−ρ) recovers MPR.
type MultiTrainer struct {
	cfg   MultiConfig
	data  *dataset.Dataset
	model *mf.Model
	rng   *mathx.RNG
	pairs []dataset.Interaction

	uniform *sampling.UniformPair
	popNeg  *sampling.PopNegative

	stepsDone int
}

// MultiConfig parameterizes CLAPF-Multi.
type MultiConfig struct {
	// Lambda1, Lambda2, Lambda3 weight the three ranking pairs; they must
	// be non-negative and sum to something positive (they are normalized
	// to sum to 1 at construction).
	Lambda1 float64
	Lambda2 float64
	Lambda3 float64

	LearnRate float64
	Reg       float64
	Dim       int
	InitStd   float64
	UseBias   bool
	Steps     int
	Seed      uint64
}

// DefaultMultiConfig returns an even three-way blend with the shared MF
// defaults.
func DefaultMultiConfig(trainPairs int) MultiConfig {
	return MultiConfig{
		Lambda1:   0.2,
		Lambda2:   0.5,
		Lambda3:   0.3,
		LearnRate: 0.05,
		Reg:       0.01,
		Dim:       20,
		InitStd:   0.1,
		UseBias:   true,
		Steps:     30 * trainPairs,
	}
}

// Validate reports the first problem with the configuration.
func (c MultiConfig) Validate() error {
	switch {
	case c.Lambda1 < 0 || c.Lambda2 < 0 || c.Lambda3 < 0:
		return fmt.Errorf("core: negative lambda in (%v, %v, %v)", c.Lambda1, c.Lambda2, c.Lambda3)
	case c.Lambda1+c.Lambda2+c.Lambda3 <= 0:
		return fmt.Errorf("core: lambdas sum to zero")
	case c.LearnRate <= 0:
		return fmt.Errorf("core: LearnRate = %v, want > 0", c.LearnRate)
	case c.Reg < 0:
		return fmt.Errorf("core: Reg = %v, want >= 0", c.Reg)
	case c.Dim <= 0:
		return fmt.Errorf("core: Dim = %d, want > 0", c.Dim)
	case c.InitStd < 0:
		return fmt.Errorf("core: InitStd = %v, want >= 0", c.InitStd)
	case c.Steps < 0:
		return fmt.Errorf("core: Steps = %d, want >= 0", c.Steps)
	}
	return nil
}

// NewMultiTrainer validates and prepares a CLAPF-Multi trainer. Lambdas are
// normalized to sum to 1.
func NewMultiTrainer(cfg MultiConfig, train *dataset.Dataset) (*MultiTrainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train == nil {
		return nil, fmt.Errorf("core: nil training data")
	}
	sum := cfg.Lambda1 + cfg.Lambda2 + cfg.Lambda3
	cfg.Lambda1 /= sum
	cfg.Lambda2 /= sum
	cfg.Lambda3 /= sum

	var pairs []dataset.Interaction
	train.ForEach(func(u, i int32) {
		// v and j must be distinct unobserved items.
		if train.NumPositives(u)+1 < train.NumItems() {
			pairs = append(pairs, dataset.Interaction{User: u, Item: i})
		}
	})
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: no trainable records for CLAPF-Multi")
	}

	rng := mathx.NewRNG(cfg.Seed)
	model, err := mf.New(mf.Config{
		NumUsers: train.NumUsers(),
		NumItems: train.NumItems(),
		Dim:      cfg.Dim,
		UseBias:  cfg.UseBias,
	})
	if err != nil {
		return nil, err
	}
	model.InitGaussian(rng.Split(), cfg.InitStd)
	popNeg, err := sampling.NewPopNegative(train, rng.Split())
	if err != nil {
		return nil, err
	}
	return &MultiTrainer{
		cfg:     cfg,
		data:    train,
		model:   model,
		rng:     rng,
		pairs:   pairs,
		uniform: sampling.NewUniformPair(train, rng.Split()),
		popNeg:  popNeg,
	}, nil
}

// Model returns the live model; it satisfies eval.Scorer.
func (t *MultiTrainer) Model() *mf.Model { return t.model }

// StepsDone returns the number of SGD updates applied so far.
func (t *MultiTrainer) StepsDone() int { return t.stepsDone }

// Run performs all remaining configured steps.
func (t *MultiTrainer) Run() {
	t.RunSteps(t.cfg.Steps - t.stepsDone)
}

// RunSteps performs n SGD updates.
func (t *MultiTrainer) RunSteps(n int) {
	for s := 0; s < n; s++ {
		t.Step()
	}
}

// Step samples one (u, i, k, v, j) case and applies the SGD update.
func (t *MultiTrainer) Step() {
	rec := t.pairs[t.rng.Intn(len(t.pairs))]
	u, i := rec.User, rec.Item

	obs := t.data.Positives(u)
	k := i
	if len(obs) > 1 {
		for k == i {
			k = obs[t.rng.Intn(len(obs))]
		}
	}
	j := t.uniform.SampleNegative(u)
	v := t.popNeg.Sample(u)
	for v == j {
		v = t.popNeg.Sample(u)
	}
	t.update(u, i, k, v, j)
	t.stepsDone++
}

// update applies one minimization step on −ln σ(R) + reg.
// R = a·f_ui + b·f_uk + c·f_uv + e·f_uj with a = λ₂−λ₁, b = λ₁,
// c = λ₃−λ₂, e = −λ₃.
func (t *MultiTrainer) update(u, i, k, v, j int32) {
	l1, l2, l3 := t.cfg.Lambda1, t.cfg.Lambda2, t.cfg.Lambda3
	a, b, c, e := l2-l1, l1, l3-l2, -l3
	if k == i {
		a, b = a+b, 0 // single-positive degenerate case, as in CLAPF
	}

	uf := t.model.UserFactors(u)
	vi := t.model.ItemFactors(i)
	vk := t.model.ItemFactors(k)
	vv := t.model.ItemFactors(v)
	vj := t.model.ItemFactors(j)

	r := a*(mathx.Dot(uf, vi)+t.model.Bias(i)) +
		b*(mathx.Dot(uf, vk)+t.model.Bias(k)) +
		c*(mathx.Dot(uf, vv)+t.model.Bias(v)) +
		e*(mathx.Dot(uf, vj)+t.model.Bias(j))
	g := 1 - mathx.Sigmoid(r)

	gamma, reg := t.cfg.LearnRate, t.cfg.Reg
	skipK := k == i
	for q := range uf {
		du := g*(a*vi[q]+b*vk[q]+c*vv[q]+e*vj[q]) - reg*uf[q]
		di := g*a*uf[q] - reg*vi[q]
		dk := g*b*uf[q] - reg*vk[q]
		dv := g*c*uf[q] - reg*vv[q]
		dj := g*e*uf[q] - reg*vj[q]
		uf[q] += gamma * du
		vi[q] += gamma * di
		if !skipK {
			vk[q] += gamma * dk
		}
		vv[q] += gamma * dv
		vj[q] += gamma * dj
	}
	if t.model.HasBias() {
		t.model.AddBias(i, gamma*(g*a-reg*t.model.Bias(i)))
		if !skipK {
			t.model.AddBias(k, gamma*(g*b-reg*t.model.Bias(k)))
		}
		t.model.AddBias(v, gamma*(g*c-reg*t.model.Bias(v)))
		t.model.AddBias(j, gamma*(g*e-reg*t.model.Bias(j)))
	}
}

package core

import (
	"fmt"
	"time"

	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/sampling"
)

// TrainerState is the resumable non-parameter state of a Trainer: where
// the SGD schedule stands, both RNG streams, and the loss-smoothing
// accumulator. Together with the model parameters it is everything a
// checkpoint needs to continue training as if the process had never died.
//
// What resumes bit-identically and what does not: with the Uniform sampler
// a restored run replays exactly the SGD trajectory of the uninterrupted
// one (parameters are serialized as raw float64 bits and both RNG streams
// are positioned exactly). Rank-aware samplers (DSS and the ablations)
// rebuild their ranking lists from the restored parameters at resume time,
// whereas the uninterrupted run would still be using lists built at the
// previous refresh boundary — statistically equivalent, not bit-identical.
type TrainerState struct {
	// Step is the number of SGD updates already applied.
	Step int
	// RNG is the trainer's record-selection RNG state.
	RNG [4]uint64
	// Sampler is the triple sampler's resumable state.
	Sampler sampling.SamplerState
	// LossEWMA and LossN restore the smoothed-loss telemetry accumulator.
	LossEWMA float64
	LossN    int
}

// Snapshot captures the trainer's resumable state. The model parameters
// are not included — snapshot them alongside via Model() (store.Meta
// carries this state, the store payload carries the parameters).
func (t *Trainer) Snapshot() TrainerState {
	return TrainerState{
		Step:     t.stepsDone,
		RNG:      t.rng.State(),
		Sampler:  t.sampler.State(),
		LossEWMA: t.lossEWMA,
		LossN:    t.lossN,
	}
}

// Restore rewinds the trainer to a previously captured state: model
// parameters are copied from m (which must match the trainer's shape),
// both RNG streams are repositioned, the step counter and loss telemetry
// pick up where they left off, and rank-aware samplers rebuild their
// lists from the restored parameters. The trainer must have been
// constructed with the same configuration and training data as the one
// that produced the snapshot; Restore validates shape, not hyperparameters
// — callers hold the checkpoint metadata for that.
func (t *Trainer) Restore(st TrainerState, m *mf.Model) error {
	if st.Step < 0 {
		return fmt.Errorf("core: restore step %d < 0", st.Step)
	}
	if err := t.model.SetFrom(m); err != nil {
		return err
	}
	t.rng.SetState(st.RNG)
	t.sampler.Restore(st.Sampler)
	t.stepsDone = st.Step
	t.lossEWMA = st.LossEWMA
	t.lossN = st.LossN
	t.gradMag = mathx.OnlineStats{}
	// Re-arm the telemetry clock so Elapsed and steps/sec restart from the
	// resume point instead of spanning the outage.
	t.trainStart = time.Time{}
	t.lastHookStep = st.Step
	if t.gd != nil {
		t.gd.lastCheck = st.Step // restart the guard cadence from here
	}
	return nil
}

package core

import (
	"math"
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/mathx"
)

func TestMultiConfigValidate(t *testing.T) {
	base := DefaultMultiConfig(100)
	cases := []struct {
		name string
		mut  func(*MultiConfig)
	}{
		{"negative lambda", func(c *MultiConfig) { c.Lambda1 = -0.1 }},
		{"zero lambdas", func(c *MultiConfig) { c.Lambda1, c.Lambda2, c.Lambda3 = 0, 0, 0 }},
		{"zero rate", func(c *MultiConfig) { c.LearnRate = 0 }},
		{"neg reg", func(c *MultiConfig) { c.Reg = -1 }},
		{"zero dim", func(c *MultiConfig) { c.Dim = 0 }},
		{"neg steps", func(c *MultiConfig) { c.Steps = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base
			c.mut(&cfg)
			if cfg.Validate() == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default rejected: %v", err)
	}
}

func TestMultiLambdaNormalization(t *testing.T) {
	d := smallData(t, 21)
	cfg := DefaultMultiConfig(d.NumPairs())
	cfg.Lambda1, cfg.Lambda2, cfg.Lambda3 = 2, 5, 3 // sums to 10
	cfg.Steps = 100
	tr, err := NewMultiTrainer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(tr.cfg.Lambda1+tr.cfg.Lambda2+tr.cfg.Lambda3, 1, 1e-12) {
		t.Errorf("lambdas not normalized: %v %v %v", tr.cfg.Lambda1, tr.cfg.Lambda2, tr.cfg.Lambda3)
	}
	if !mathx.AlmostEqual(tr.cfg.Lambda2, 0.5, 1e-12) {
		t.Errorf("normalized λ₂ = %v, want 0.5", tr.cfg.Lambda2)
	}
}

func TestMultiTrainerLearns(t *testing.T) {
	w, err := datagen.Generate(datagen.Profile{
		Name: "multi", Users: 80, Items: 150, Pairs: 3000,
		ZipfExp: 0.6, Dim: 5, Affinity: 7,
	}, mathx.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	train, test := dataset.Split(w.Data, mathx.NewRNG(23), 0.5)
	cfg := DefaultMultiConfig(train.NumPairs())
	cfg.Dim = 8
	cfg.Steps = 120000
	cfg.Seed = 24
	tr, err := NewMultiTrainer(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()
	if tr.StepsDone() != 120000 {
		t.Errorf("StepsDone = %d", tr.StepsDone())
	}
	res := eval.Evaluate(tr.Model(), train, test, eval.Options{Ks: []int{5}})
	if res.AUC < 0.65 {
		t.Errorf("CLAPF-Multi AUC = %.3f, want >= 0.65", res.AUC)
	}
	// Finite parameters.
	u, v, b := tr.Model().RawParams()
	for _, s := range [][]float64{u, v, b} {
		for _, x := range s {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatal("non-finite parameter")
			}
		}
	}
}

func TestMultiTrainerDeterministic(t *testing.T) {
	d := smallData(t, 25)
	run := func() float64 {
		cfg := DefaultMultiConfig(d.NumPairs())
		cfg.Dim = 6
		cfg.Steps = 3000
		cfg.Seed = 26
		tr, err := NewMultiTrainer(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		tr.Run()
		return tr.Model().Score(1, 2)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("not deterministic: %v vs %v", a, b)
	}
}

func TestMultiTrainerErrors(t *testing.T) {
	if _, err := NewMultiTrainer(DefaultMultiConfig(10), nil); err == nil {
		t.Error("nil data accepted")
	}
	// A world with only one unobserved item per user cannot host distinct
	// v and j.
	full, err := dataset.FromInteractions("f", 1, 2, []dataset.Interaction{{User: 0, Item: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiTrainer(DefaultMultiConfig(1), full); err == nil {
		t.Error("insufficient negatives accepted")
	}
}

package core

import (
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/sampling"
)

// TestDSSMaintainsGradientSignal verifies the mechanism behind §5.1: late
// in training, uniform sampling mostly draws easy cases whose gradient
// scalar 1−σ(R) has vanished, while DSS keeps drawing informative ones.
// The running mean of the scalar under DSS must exceed uniform's once the
// model is past its initial phase.
func TestDSSMaintainsGradientSignal(t *testing.T) {
	w, err := datagen.Generate(datagen.Profile{
		Name: "gm", Users: 120, Items: 250, Pairs: 6000,
		ZipfExp: 0.6, Dim: 5, Affinity: 6,
	}, mathx.NewRNG(61))
	if err != nil {
		t.Fatal(err)
	}
	train, _ := dataset.Split(w.Data, mathx.NewRNG(62), 0.5)

	run := func(strategy sampling.Strategy) float64 {
		cfg := DefaultConfig(sampling.MAP, train.NumPairs())
		cfg.Lambda = 0.3
		cfg.Steps = 100 * train.NumPairs()
		cfg.Sampler.Strategy = strategy
		cfg.Seed = 63
		tr, err := NewTrainer(cfg, train)
		if err != nil {
			t.Fatal(err)
		}
		tr.RunSteps(80 * train.NumPairs()) // burn-in: converge past the easy phase
		tr.GradMagnitude()                 // reset the accumulator
		tr.RunSteps(20 * train.NumPairs()) // measurement window
		return tr.GradMagnitude()
	}

	uniform := run(sampling.Uniform)
	dss := run(sampling.DSS)
	if dss <= uniform {
		t.Errorf("late-training gradient magnitude: DSS %.4f <= uniform %.4f — hard sampling should keep the signal alive", dss, uniform)
	}
	if uniform <= 0 || uniform >= 1 || dss <= 0 || dss >= 1 {
		t.Errorf("gradient magnitudes out of (0,1): uniform %.4f, dss %.4f", uniform, dss)
	}
}

package core

import (
	"time"

	"clapf/internal/obs"
	"clapf/internal/obs/trace"
)

// Training-loop latency attribution. Two granularities:
//
//   - Batch/segment level: each RunSteps call runs under a "train.batch"
//     trace; the parallel trainer adds "train.segment" (worker fan-out to
//     join), "train.barrier" (telemetry merge + metric export),
//     "train.refresh" (DSS rank-list rebuild), and "train.hook" spans, so
//     the flight recorder shows where a slow batch went. The periodic
//     guard check reports as the "train.guard_scan" stage and checkpoint
//     writes as "train.checkpoint" (cmd/clapf-train).
//
//   - Step level, sampled: timing every SGD step would double its cost,
//     so 1-in-stageSampleEvery steps measure their three phases —
//     "train.sample" (record pick + triple draw), "train.risk" (factor
//     loads, risk R, sentinel, loss), "train.update" (gradient apply) —
//     straight into the stage histogram. The untimed rest pay one
//     branch; bucket counts scale by the sampling factor but the latency
//     *distribution* is unbiased.
//
// Timing never changes the math: the instrumented paths call the same
// functions in the same order, so traced and untraced runs follow
// bit-identical trajectories (the serial/golden-metric tests rely on
// this).

// stageSampleEvery is the step-phase sampling stride (power of two so
// the cadence test is a mask). 256 keeps the per-step tax — four clock
// reads amortized over the stride — inside the <2% tracing budget while
// still collecting hundreds of phase samples per million steps.
const stageSampleEvery = 256

// stageTimers caches the per-phase histogram children so workers observe
// them atomically without a vec map lookup per timed step.
type stageTimers struct {
	sample *obs.Histogram
	risk   *obs.Histogram
	update *obs.Histogram
}

func newStageTimers(t *trace.Tracer) *stageTimers {
	if t == nil {
		return nil
	}
	return &stageTimers{
		sample: t.StageHistogram("train.sample"),
		risk:   t.StageHistogram("train.risk"),
		update: t.StageHistogram("train.update"),
	}
}

// SetTracer attaches tr to the serial trainer: RunSteps batches become
// traces, sampled step phases feed the stage histogram, and the guard
// (whenever installed, before or after this call) reports its scan
// latency. nil detaches.
func (t *Trainer) SetTracer(tr *trace.Tracer) {
	t.tracer = tr
	t.stages = newStageTimers(tr)
	if t.gd != nil {
		t.gd.tracer = tr
	}
}

// SetTracer attaches tr to the parallel trainer (see Trainer.SetTracer).
// Call between RunSteps calls only: workers read the stage timers
// lock-free while training.
func (pt *ParallelTrainer) SetTracer(tr *trace.Tracer) {
	pt.tracer = tr
	pt.stages = newStageTimers(tr)
	if pt.gd != nil {
		pt.gd.tracer = tr
	}
}

// observePhase records one sampled phase duration ending now, returning
// now so the caller can chain the next phase without a second clock
// read.
func observePhase(h *obs.Histogram, since time.Time) time.Time {
	now := time.Now()
	h.Observe(now.Sub(since).Seconds())
	return now
}

package core

import (
	"fmt"
	"time"

	"clapf/internal/mathx"
	"clapf/internal/obs"
)

// TrainStats is one telemetry snapshot, delivered to a stats hook every
// reporting interval. It is the trainer-side feedback loop the DSS /
// pairwise-SGD literature says to watch first: a smoothed loss curve and
// the gradient scalar reveal the vanishing-gradient regime long before
// ranking metrics move.
type TrainStats struct {
	// Step is the number of SGD updates completed so far.
	Step int
	// TotalSteps is the configured step budget.
	TotalSteps int
	// SmoothedLoss is an exponentially weighted moving average of the
	// per-step logistic loss −ln σ(R) (the data term of f(u, S); the
	// regularizer is omitted as it only shifts the curve).
	SmoothedLoss float64
	// GradMag is the mean multiplicative gradient scalar 1−σ(R) (Eq. 23)
	// over the interval — near zero means sampled triples carry no
	// learning signal.
	GradMag float64
	// StepsPerSec is the SGD throughput over the interval.
	StepsPerSec float64
	// Elapsed is the wall-clock time since the first instrumented step.
	Elapsed time.Duration
}

// StatsHook receives TrainStats snapshots; it runs on the training
// goroutine, so keep it cheap (log, append, publish to a gauge).
type StatsHook func(TrainStats)

// lossEWMAWindow bounds the effective smoothing window: early on the
// average is a plain running mean (exact warm-up), after ~window steps it
// behaves like an EWMA with α = 1/window.
const lossEWMAWindow = 1024

// SetStatsHook installs fn to fire every `every` steps. Loss smoothing is
// only maintained while a hook is installed, so an un-instrumented
// trainer pays nothing. Passing a nil hook removes instrumentation.
func (t *Trainer) SetStatsHook(every int, fn StatsHook) error {
	if fn != nil && every <= 0 {
		return fmt.Errorf("core: stats interval = %d, want > 0", every)
	}
	t.hook = fn
	t.hookEvery = every
	t.trainStart = time.Time{} // re-arm the clock on the next step
	return nil
}

// SmoothedLoss returns the current loss EWMA (0 until a hook is installed
// and at least one step has run).
func (t *Trainer) SmoothedLoss() float64 { return t.lossEWMA }

// InstrumentSampler attaches draw-position histograms to the underlying
// triple sampler; see sampling.TripleSampler.SetDrawHists.
func (t *Trainer) InstrumentSampler(pos, neg *obs.Histogram) {
	t.sampler.SetDrawHists(pos, neg)
}

// observeLoss folds one per-step logistic loss into the EWMA.
func (t *Trainer) observeLoss(loss float64) {
	t.lossN++
	alpha := 1.0 / float64(t.lossN)
	if t.lossN > lossEWMAWindow {
		alpha = 1.0 / lossEWMAWindow
	}
	t.lossEWMA += alpha * (loss - t.lossEWMA)
}

// maybeFireHook emits a snapshot when the interval boundary is crossed.
func (t *Trainer) maybeFireHook() {
	if t.stepsDone-t.lastHookStep < t.hookEvery {
		return
	}
	now := time.Now()
	steps := t.stepsDone - t.lastHookStep
	secs := now.Sub(t.lastHookTime).Seconds()
	sps := 0.0
	if secs > 0 {
		sps = float64(steps) / secs
	}
	stats := TrainStats{
		Step:         t.stepsDone,
		TotalSteps:   t.cfg.Steps,
		SmoothedLoss: t.lossEWMA,
		GradMag:      t.gradMag.Mean(),
		StepsPerSec:  sps,
		Elapsed:      now.Sub(t.trainStart),
	}
	// The interval owns the Eq. 23 accumulator while a hook is installed:
	// each snapshot reports the mean since the previous one.
	t.gradMag = mathx.OnlineStats{}
	t.lastHookTime = now
	t.lastHookStep = t.stepsDone
	t.hook(stats)
}

// Package core implements the paper's contribution: Collaborative
// List-and-Pairwise Filtering (CLAPF). Both instantiations optimize, by
// SGD over a matrix-factorization predictor, the joint probability of two
// ranking pairs (Eqs. 15–21):
//
//	CLAPF-MAP:  R = λ(f_uk − f_ui) + (1−λ)(f_ui − f_uj)
//	CLAPF-MRR:  R = λ(f_ui − f_uk) + (1−λ)(f_ui − f_uj)
//
// with i, k observed items of user u, j an unobserved item, and λ the
// list-vs-pairwise trade-off. The per-step objective is
//
//	f(u, S) = −ln σ(R) + (α_u/2)‖U_u‖² + (α_v/2)Σ‖V_t‖² + (β_v/2)Σ b_t²
//
// minimized by Θ ← Θ − γ ∂f/∂Θ (Eq. 22). At λ = 0 both variants reduce
// exactly to BPR.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"clapf/internal/dataset"
	"clapf/internal/guard"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/obs/trace"
	"clapf/internal/sampling"
)

// Config parameterizes a CLAPF trainer. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// Variant selects CLAPF-MAP or CLAPF-MRR.
	Variant sampling.Objective
	// Lambda is the trade-off λ ∈ [0, 1] between the listwise pair (λ) and
	// the pairwise term (1−λ). λ = 0 reduces CLAPF to BPR.
	Lambda float64
	// LearnRate is the SGD step size γ.
	LearnRate float64
	// RegUser, RegItem, RegBias are α_u, α_v, β_v.
	RegUser float64
	RegItem float64
	RegBias float64
	// Dim is the latent dimensionality d (the paper fixes 20).
	Dim int
	// InitStd is the factor initialization scale.
	InitStd float64
	// ClipNorm, when positive, bounds the L2 norm of each update's
	// data-term gradient: the Eq. 23 multiplier g is scaled down whenever
	// ‖(1−σ(R))·∂R/∂Θ‖ would exceed ClipNorm, leaving update directions
	// untouched. The regularization term is excluded — it contracts
	// toward zero and cannot diverge. 0 disables clipping.
	ClipNorm float64
	// UseBias enables the per-item bias b_i of the predictor.
	UseBias bool
	// Steps is the total number of SGD updates.
	Steps int
	// Sampler configures triple sampling; Sampler.Objective is forced to
	// Variant so the DSS direction always matches the loss.
	Sampler sampling.TripleConfig
	// Seed drives all randomness (init and sampling).
	Seed uint64
}

// DefaultConfig returns the paper's baseline hyper-parameters for the given
// variant: d = 20, γ = 0.05, α = β = 0.01, λ = 0.4, uniform sampling, and a
// step budget of 30 passes over the given number of training pairs.
func DefaultConfig(variant sampling.Objective, trainPairs int) Config {
	return Config{
		Variant:   variant,
		Lambda:    0.4,
		LearnRate: 0.05,
		RegUser:   0.01,
		RegItem:   0.01,
		RegBias:   0.01,
		Dim:       20,
		InitStd:   0.1,
		UseBias:   true,
		Steps:     30 * trainPairs,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	// NaN fails every ordered comparison, so the range checks below would
	// wave a NaN hyper-parameter straight through to the update loop (and
	// ±Inf passes a one-sided bound outright). Reject non-finite values
	// explicitly first.
	for _, f := range []struct {
		name  string
		value float64
	}{
		{"Lambda", c.Lambda},
		{"LearnRate", c.LearnRate},
		{"RegUser", c.RegUser},
		{"RegItem", c.RegItem},
		{"RegBias", c.RegBias},
		{"InitStd", c.InitStd},
		{"ClipNorm", c.ClipNorm},
	} {
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			return fmt.Errorf("core: %s = %v, want finite", f.name, f.value)
		}
	}
	switch {
	case c.Lambda < 0 || c.Lambda > 1:
		return fmt.Errorf("core: Lambda = %v, want [0,1]", c.Lambda)
	case c.LearnRate <= 0:
		return fmt.Errorf("core: LearnRate = %v, want > 0", c.LearnRate)
	case c.RegUser < 0 || c.RegItem < 0 || c.RegBias < 0:
		return fmt.Errorf("core: negative regularization")
	case c.ClipNorm < 0:
		return fmt.Errorf("core: ClipNorm = %v, want >= 0", c.ClipNorm)
	case c.Dim <= 0:
		return fmt.Errorf("core: Dim = %d, want > 0", c.Dim)
	case c.InitStd < 0:
		return fmt.Errorf("core: InitStd = %v, want >= 0", c.InitStd)
	case c.Steps < 0:
		return fmt.Errorf("core: Steps = %d, want >= 0", c.Steps)
	}
	return nil
}

// Trainer learns a CLAPF model by looping Eq. 22 over sampled triples.
type Trainer struct {
	cfg     Config
	data    *dataset.Dataset
	model   *mf.Model
	sampler *sampling.TripleSampler
	rng     *mathx.RNG
	pairs   []dataset.Interaction // trainable (u, i) records

	stepsDone int
	gradMag   mathx.OnlineStats // running mean of 1−σ(R), Eq. 23's scalar
	wv        []float64         // scratch a·V_i+b·V_k+c·V_j, shared by clip and update

	// Guardrails (see guarded.go); nil until SetGuard installs them.
	gd    *guardState
	clips uint64 // lifetime norm-clipped updates (counted whenever ClipNorm > 0)

	// Tracing (see trace.go); nil until SetTracer attaches a tracer, so
	// the bare loop pays one nil check per step.
	tracer    *trace.Tracer
	stages    *stageTimers
	stageTick uint64
	timedStep bool      // this step samples its phase timings
	timedAt   time.Time // start of the phase being timed

	// Telemetry (see stats.go); inactive until SetStatsHook installs a
	// hook, so the bare training loop pays nothing.
	hook         StatsHook
	hookEvery    int
	lossEWMA     float64
	lossN        int
	trainStart   time.Time
	lastHookTime time.Time
	lastHookStep int
}

// NewTrainer validates the configuration and prepares a trainer over the
// training split.
func NewTrainer(cfg Config, train *dataset.Dataset) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train == nil {
		return nil, fmt.Errorf("core: nil training data")
	}
	// SGD draws training records (u, i) uniformly over observed pairs
	// (§4.3: "randomly select a record"), so active users are visited in
	// proportion to their history. Users with a single observed item
	// still train — the sampler returns k = i and the triple degenerates
	// to a (1−λ)-scaled BPR pair — so on ultra-sparse corpora (Flixter's
	// density is 0.02%) CLAPF sees every record BPR sees. Only users who
	// observed the whole catalog are excluded (no negative to sample).
	var pairs []dataset.Interaction
	train.ForEach(func(u, i int32) {
		if train.NumPositives(u) < train.NumItems() {
			pairs = append(pairs, dataset.Interaction{User: u, Item: i})
		}
	})
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: no trainable records (every user observed every item)")
	}
	rng := mathx.NewRNG(cfg.Seed)
	model, err := mf.New(mf.Config{
		NumUsers: train.NumUsers(),
		NumItems: train.NumItems(),
		Dim:      cfg.Dim,
		UseBias:  cfg.UseBias,
		InitStd:  cfg.InitStd,
	})
	if err != nil {
		return nil, err
	}
	model.InitGaussian(rng.Split(), cfg.InitStd)

	samplerCfg := cfg.Sampler
	samplerCfg.Objective = cfg.Variant
	sampler, err := sampling.NewTripleSampler(samplerCfg, train, model, rng.Split())
	if err != nil {
		return nil, err
	}
	return &Trainer{
		cfg:     cfg,
		data:    train,
		model:   model,
		sampler: sampler,
		rng:     rng,
		pairs:   pairs,
		wv:      make([]float64, cfg.Dim),
	}, nil
}

// Model returns the live model; it satisfies eval.Scorer.
func (t *Trainer) Model() *mf.Model { return t.model }

// StepsDone returns the number of SGD updates applied so far.
func (t *Trainer) StepsDone() int { return t.stepsDone }

// GradMagnitude returns the running mean of the multiplicative gradient
// scalar 1−σ(R) (Eq. 23) since the last call, and resets the accumulator.
// A value near zero means sampled triples carry no learning signal — the
// gradient-vanishing regime DSS is designed to escape.
func (t *Trainer) GradMagnitude() float64 {
	m := t.gradMag.Mean()
	t.gradMag = mathx.OnlineStats{}
	return m
}

// Run performs all remaining configured steps.
func (t *Trainer) Run() {
	t.RunSteps(t.cfg.Steps - t.stepsDone)
}

// RunSteps performs n SGD updates (useful for convergence traces that
// evaluate between chunks). A tripped guard stops the loop early; the
// caller observes the trip via GuardTrip. With a tracer attached the
// whole call runs as one "train.batch" trace (tail-kept when the guard
// trips) whose "train.steps" child covers the update loop.
func (t *Trainer) RunSteps(n int) {
	var batch *trace.Trace
	var stepsSp trace.Span
	if t.tracer != nil {
		var ctx context.Context
		ctx, batch = t.tracer.StartTrace(context.Background(), "train.batch")
		stepsSp = trace.StartSpanNoCtx(ctx, "train.steps")
	}
	for s := 0; s < n; s++ {
		if t.gd != nil && t.gd.trip != nil {
			break
		}
		t.Step()
	}
	if t.gd != nil {
		t.gd.flushClips(t.clips)
	}
	stepsSp.End()
	if t.gd != nil && t.gd.trip != nil {
		batch.MarkError()
	}
	batch.Finish(0, 0)
}

// Step samples one (u, i, k, j) case and applies Eq. 22.
func (t *Trainer) Step() {
	if t.hook != nil && t.trainStart.IsZero() {
		now := time.Now()
		t.trainStart, t.lastHookTime, t.lastHookStep = now, now, t.stepsDone
	}
	t.timedStep = false
	var phaseStart time.Time
	if t.stages != nil {
		if t.stageTick&(stageSampleEvery-1) == 0 {
			t.timedStep = true
			phaseStart = time.Now()
		}
		t.stageTick++
	}
	rec := t.pairs[t.rng.Intn(len(t.pairs))]
	tr := t.sampler.SampleWithI(rec.User, rec.Item)
	if t.timedStep {
		t.timedAt = observePhase(t.stages.sample, phaseStart)
	}
	t.update(rec.User, tr)
	t.stepsDone++
	if t.hook != nil {
		t.maybeFireHook()
	}
	if t.gd != nil {
		t.gd.maybeCheck(t.stepsDone, t.lossEWMA, t.lossN, t.clips, t.model)
	}
}

// update applies the SGD update for one sampled triple.
//
// Writing R as a·f_ui + b·f_uk + c·f_uj, the variants differ only in the
// coefficient vector (a, b, c):
//
//	MAP: a = 1−2λ, b = λ,  c = −(1−λ)
//	MRR: a = 1,    b = −λ, c = −(1−λ)
//
// ∂R/∂U_u = a·V_i + b·V_k + c·V_j, ∂R/∂V_t = coeff_t·U_u, ∂R/∂b_t = coeff_t,
// and the minimization step is Θ += γ[(1−σ(R))·∂R/∂Θ − reg·Θ].
func (t *Trainer) update(u int32, tr sampling.Triple) {
	a, b, c := riskCoeffs(t.cfg.Variant, t.cfg.Lambda, tr.K == tr.I)

	uf := t.model.UserFactors(u)
	vi := t.model.ItemFactors(tr.I)
	vk := t.model.ItemFactors(tr.K)
	vj := t.model.ItemFactors(tr.J)

	// With clipping armed, one fused sweep yields the risk dot products
	// (bit-identical to mathx.Dot) plus the clip norm terms and the w
	// buffer; without it, the three plain dots.
	cn := t.cfg.ClipNorm
	var r, wsq, usq float64
	if cn > 0 {
		var di, dk, dj float64
		di, dk, dj, wsq, usq = riskAndClipTerms(a, b, c, uf, vi, vk, vj, t.wv)
		r = a*(di+t.model.Bias(tr.I)) +
			b*(dk+t.model.Bias(tr.K)) +
			c*(dj+t.model.Bias(tr.J))
	} else {
		r = a*(mathx.Dot(uf, vi)+t.model.Bias(tr.I)) +
			b*(mathx.Dot(uf, vk)+t.model.Bias(tr.K)) +
			c*(mathx.Dot(uf, vj)+t.model.Bias(tr.J))
	}

	if t.gd != nil && t.gd.watching() && !isFinite(r) {
		// Applying this update would spread the poison to three more item
		// rows; record the trip and leave the parameters as they are.
		t.gd.trip = &guard.Trip{Step: t.stepsDone, Reason: guard.ReasonNonFiniteRisk,
			Detail: fmt.Sprintf("risk R = %v for user %d", r, u)}
		return
	}

	g := 1 - mathx.Sigmoid(r) // Eq. 23's multiplicative scalar
	t.gradMag.Add(g)
	if t.hook != nil {
		t.observeLoss(-mathx.LogSigmoid(r))
	} else if t.gd != nil && t.gd.watching() && t.gd.tickLoss() {
		// The watchdog needs the loss curve but not per-step resolution:
		// a 1-in-8 sample keeps the EWMA faithful while sparing the
		// unhooked hot path most of the LogSigmoid cost.
		t.observeLoss(-mathx.LogSigmoid(r))
	}

	if t.timedStep {
		t.timedAt = observePhase(t.stages.risk, t.timedAt)
	}

	gamma := t.cfg.LearnRate
	regU, regV, regB := t.cfg.RegUser, t.cfg.RegItem, t.cfg.RegBias

	// U_u += γ[g·(a·V_i + b·V_k + c·V_j) − α_u·U_u]; item updates must use
	// the *pre-update* user factors, so compute the user gradient first.
	skipK := tr.K == tr.I // vk aliases vi; its update is folded into a
	if cn > 0 {
		var clipped bool
		if g, clipped = clipG(g, cn, a, b, c, wsq, usq, t.model.HasBias()); clipped {
			t.clips++
		}
		// The fused sweep captured w = a·V_i + b·V_k + c·V_j; reuse it.
		for q := range uf {
			du := g*t.wv[q] - regU*uf[q]
			di := g*a*uf[q] - regV*vi[q]
			dk := g*b*uf[q] - regV*vk[q]
			dj := g*c*uf[q] - regV*vj[q]
			uf[q] += gamma * du
			vi[q] += gamma * di
			if !skipK {
				vk[q] += gamma * dk
			}
			vj[q] += gamma * dj
		}
	} else {
		for q := range uf {
			du := g*(a*vi[q]+b*vk[q]+c*vj[q]) - regU*uf[q]
			di := g*a*uf[q] - regV*vi[q]
			dk := g*b*uf[q] - regV*vk[q]
			dj := g*c*uf[q] - regV*vj[q]
			uf[q] += gamma * du
			vi[q] += gamma * di
			if !skipK {
				vk[q] += gamma * dk
			}
			vj[q] += gamma * dj
		}
	}
	if t.model.HasBias() {
		t.model.AddBias(tr.I, gamma*(g*a-regB*t.model.Bias(tr.I)))
		if !skipK {
			t.model.AddBias(tr.K, gamma*(g*b-regB*t.model.Bias(tr.K)))
		}
		t.model.AddBias(tr.J, gamma*(g*c-regB*t.model.Bias(tr.J)))
	}
	if t.timedStep {
		observePhase(t.stages.update, t.timedAt)
	}
}

// riskCoeffs returns the coefficient vector (a, b, c) of the linearized
// risk R = a·f_ui + b·f_uk + c·f_uj for the given variant and λ (see the
// update comment above). When k aliases i — a single-positive user, whose
// listwise pair vanishes because f_uk = f_ui — b folds into a so the
// aliased item vector is updated once with the combined coefficient and
// regularized once, leaving R = (1−λ)(f_ui − f_uj). Shared by the serial
// and Hogwild update paths so the math cannot drift between them.
func riskCoeffs(variant sampling.Objective, lam float64, kIsI bool) (a, b, c float64) {
	if variant == sampling.MRR {
		a, b, c = 1, -lam, -(1 - lam)
	} else {
		a, b, c = 1-2*lam, lam, -(1 - lam)
	}
	if kIsI {
		a, b = a+b, 0
	}
	return a, b, c
}

// TripleLoss returns the tentative objective f(u, S) of §4.3 for one triple
// under the current model — the quantity Step decreases in expectation.
// Exposed for gradient-check tests and loss-curve instrumentation.
func (t *Trainer) TripleLoss(u int32, tr sampling.Triple) float64 {
	lam := t.cfg.Lambda
	fi := t.model.Score(u, tr.I)
	fk := t.model.Score(u, tr.K)
	fj := t.model.Score(u, tr.J)
	var r float64
	if t.cfg.Variant == sampling.MRR {
		r = lam*(fi-fk) + (1-lam)*(fi-fj)
	} else {
		r = lam*(fk-fi) + (1-lam)*(fi-fj)
	}
	loss := -mathx.LogSigmoid(r)
	loss += 0.5 * t.cfg.RegUser * mathx.Norm2Sq(t.model.UserFactors(u))
	items := []int32{tr.I, tr.K, tr.J}
	if tr.K == tr.I {
		items = []int32{tr.I, tr.J} // regularize the aliased vector once
	}
	for _, it := range items {
		loss += 0.5 * t.cfg.RegItem * mathx.Norm2Sq(t.model.ItemFactors(it))
		bias := t.model.Bias(it)
		loss += 0.5 * t.cfg.RegBias * bias * bias
	}
	return loss
}

package core

import (
	"fmt"

	"clapf/internal/mf"
	"clapf/internal/sampling"
	"clapf/internal/store"
)

// This file maps trainer snapshots to and from store.Meta checkpoint
// trailers, so every checkpoint producer/consumer (clapf-train, the
// guard supervisor, tests) shares one encoding. MetaSnapshot fills only
// the trainer-owned fields; contextual fields — Epoch, TotalSteps,
// DataFingerprint, Hyper — belong to the caller.

// MetaSnapshot captures the trainer's resumable state as a checkpoint
// trailer. Call between RunSteps calls.
func (t *Trainer) MetaSnapshot() *store.Meta {
	st := t.Snapshot()
	return &store.Meta{
		Step:         st.Step,
		RNG:          append([]uint64(nil), st.RNG[:]...),
		SamplerRNG:   append([]uint64(nil), st.Sampler.RNG[:]...),
		SamplerSteps: st.Sampler.Steps,
		LossEWMA:     st.LossEWMA,
		LossN:        st.LossN,
	}
}

// RestoreFromMeta rewinds the trainer to a checkpoint: parameters from m,
// schedule/RNG/loss state from meta. It validates the trailer's shape
// (serial vs parallel, RNG word counts); dataset and hyper-parameter
// compatibility are the caller's concern — the trailer carries them, the
// trainer cannot judge them.
func (t *Trainer) RestoreFromMeta(m *mf.Model, meta *store.Meta) error {
	if meta == nil {
		return fmt.Errorf("core: nil checkpoint metadata")
	}
	if len(meta.Workers) > 0 {
		return fmt.Errorf("core: checkpoint is from a %d-worker parallel run, trainer is serial", len(meta.Workers))
	}
	rng, err := rngWords(meta.RNG, "rng")
	if err != nil {
		return err
	}
	samplerRNG, err := rngWords(meta.SamplerRNG, "sampler_rng")
	if err != nil {
		return err
	}
	return t.Restore(TrainerState{
		Step:     meta.Step,
		RNG:      rng,
		Sampler:  sampling.SamplerState{RNG: samplerRNG, Steps: meta.SamplerSteps},
		LossEWMA: meta.LossEWMA,
		LossN:    meta.LossN,
	}, m)
}

// MetaSnapshot captures the parallel trainer's resumable state — the
// schedule position, refresh cadence, and every worker's RNG streams —
// as a checkpoint trailer. Call between RunSteps calls.
func (pt *ParallelTrainer) MetaSnapshot() *store.Meta {
	st := pt.Snapshot()
	meta := &store.Meta{
		Step:         st.Step,
		LossEWMA:     st.LossEWMA,
		LossN:        st.LossN,
		SinceRefresh: st.SinceRefresh,
		Workers:      make([]store.WorkerMeta, len(st.Workers)),
	}
	for i := range st.Workers {
		meta.Workers[i] = store.WorkerMeta{
			RNG:          append([]uint64(nil), st.Workers[i].RNG[:]...),
			SamplerRNG:   append([]uint64(nil), st.Workers[i].Sampler.RNG[:]...),
			SamplerSteps: st.Workers[i].Sampler.Steps,
		}
	}
	return meta
}

// RestoreFromMeta rewinds the parallel trainer to a checkpoint. The
// trailer must come from a parallel run with the same worker count.
func (pt *ParallelTrainer) RestoreFromMeta(m *mf.Model, meta *store.Meta) error {
	if meta == nil {
		return fmt.Errorf("core: nil checkpoint metadata")
	}
	if len(meta.Workers) == 0 {
		return fmt.Errorf("core: checkpoint is from a serial run, trainer has %d workers", len(pt.workers))
	}
	st := ParallelTrainerState{
		Step:         meta.Step,
		SinceRefresh: meta.SinceRefresh,
		LossEWMA:     meta.LossEWMA,
		LossN:        meta.LossN,
		Workers:      make([]ParallelWorkerState, len(meta.Workers)),
	}
	for i, wm := range meta.Workers {
		rng, err := rngWords(wm.RNG, fmt.Sprintf("worker %d rng", i))
		if err != nil {
			return err
		}
		samplerRNG, err := rngWords(wm.SamplerRNG, fmt.Sprintf("worker %d sampler_rng", i))
		if err != nil {
			return err
		}
		st.Workers[i] = ParallelWorkerState{
			RNG:     rng,
			Sampler: sampling.SamplerState{RNG: samplerRNG, Steps: wm.SamplerSteps},
		}
	}
	return pt.Restore(st, m)
}

// rngWords converts a checkpoint's RNG word list into generator state.
func rngWords(words []uint64, field string) ([4]uint64, error) {
	var s [4]uint64
	if len(words) != 4 {
		return s, fmt.Errorf("core: %s has %d state words, want 4", field, len(words))
	}
	copy(s[:], words)
	return s, nil
}

package core

import (
	"fmt"
	"testing"

	"clapf/internal/dataset"
	"clapf/internal/guard"
	"clapf/internal/sampling"
)

// Adversarial-dataset property suite: degenerate interaction patterns —
// single-positive users, users with no negatives left (catalog fully
// observed), duplicated interactions — must train to a finite model under
// both Uniform and DSS sampling, serial and Hogwild, with an armed guard
// never tripping. These shapes show up constantly in production corpora
// (new users, power users, replayed logs) and are exactly where sampling
// geometry degenerates.

// adversarialSets builds the degenerate corpora. Each must be accepted by
// the trainer constructors (at least one user keeps a sampleable negative).
func adversarialSets(t *testing.T) map[string]*dataset.Dataset {
	t.Helper()
	sets := map[string]*dataset.Dataset{}

	// Every user has exactly one observed item: the CLAPF triple
	// degenerates to a scaled BPR pair (k must alias i).
	var single []dataset.Interaction
	for u := 0; u < 12; u++ {
		single = append(single, dataset.Interaction{User: int32(u), Item: int32(u % 7)})
	}
	d, err := dataset.FromInteractions("single-positive", 12, 7, single)
	if err != nil {
		t.Fatal(err)
	}
	sets["single-positive"] = d

	// Half the users observed the entire catalog — their negative lists
	// are empty and every one of their records must be excluded from
	// sampling, not divided by zero.
	var full []dataset.Interaction
	for u := 0; u < 6; u++ {
		if u%2 == 0 {
			for i := 0; i < 8; i++ {
				full = append(full, dataset.Interaction{User: int32(u), Item: int32(i)})
			}
		} else {
			full = append(full, dataset.Interaction{User: int32(u), Item: int32(u % 8)},
				dataset.Interaction{User: int32(u), Item: int32((u + 3) % 8)})
		}
	}
	d, err = dataset.FromInteractions("empty-negatives", 6, 8, full)
	if err != nil {
		t.Fatal(err)
	}
	sets["empty-negatives"] = d

	// The same log replayed many times: dedup must leave a trainable set
	// and the duplicates must not skew anything into overflow.
	var dup []dataset.Interaction
	for rep := 0; rep < 25; rep++ {
		for u := 0; u < 5; u++ {
			dup = append(dup, dataset.Interaction{User: int32(u), Item: int32((u * 2) % 9)},
				dataset.Interaction{User: int32(u), Item: int32((u*2 + 1) % 9)})
		}
	}
	d, err = dataset.FromInteractions("duplicates", 5, 9, dup)
	if err != nil {
		t.Fatal(err)
	}
	sets["duplicates"] = d

	return sets
}

func TestAdversarialDatasetsTrainFinite(t *testing.T) {
	for name, d := range adversarialSets(t) {
		for _, strat := range []sampling.Strategy{sampling.Uniform, sampling.DSS} {
			for _, workers := range []int{1, 3} {
				t.Run(fmt.Sprintf("%s/%v/workers=%d", name, strat, workers), func(t *testing.T) {
					cfg := DefaultConfig(sampling.MAP, d.NumPairs())
					cfg.Dim = 6
					cfg.Steps = 4000
					cfg.Seed = 21
					cfg.Sampler.Strategy = strat

					var trainer interface {
						RunSteps(n int)
						StepsDone() int
						SetGuard(guard.Config, *guard.Metrics) error
						GuardTrip() *guard.Trip
					}
					var model interface{ CountNonFinite() (int, int, int) }
					if workers == 1 {
						tr, err := NewTrainer(cfg, d)
						if err != nil {
							t.Fatalf("%s rejected: %v", name, err)
						}
						trainer, model = tr, tr.Model()
					} else {
						pt, err := NewParallelTrainer(cfg, d, workers)
						if err != nil {
							t.Fatalf("%s rejected: %v", name, err)
						}
						trainer, model = pt, pt.Model()
					}
					if err := trainer.SetGuard(guard.Config{Watchdog: true, CheckEvery: 256}, nil); err != nil {
						t.Fatal(err)
					}
					trainer.RunSteps(cfg.Steps)
					if trip := trainer.GuardTrip(); trip != nil {
						t.Fatalf("guard tripped on %s: %v", name, trip)
					}
					if trainer.StepsDone() != cfg.Steps {
						t.Errorf("ran %d steps, want %d", trainer.StepsDone(), cfg.Steps)
					}
					if u, v, b := model.CountNonFinite(); u+v+b > 0 {
						t.Errorf("%s produced %d non-finite params (%d/%d/%d)", name, u+v+b, u, v, b)
					}
				})
			}
		}
	}
}

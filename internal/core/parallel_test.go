package core

import (
	"math"
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/guard"
	"clapf/internal/mathx"
	"clapf/internal/obs"
	"clapf/internal/sampling"
)

func TestParallelTrainerValidation(t *testing.T) {
	t.Parallel()
	d := smallData(t, 1)
	cfg := quickConfig(sampling.MAP)
	if _, err := NewParallelTrainer(cfg, d, 0); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := NewParallelTrainer(cfg, nil, 2); err == nil {
		t.Error("nil data accepted")
	}
	bad := cfg
	bad.Lambda = 2
	if _, err := NewParallelTrainer(bad, d, 2); err == nil {
		t.Error("invalid config accepted")
	}
	// More workers than trainable records: the trainer clamps rather than
	// spinning up idle goroutines.
	tiny, err := dataset.FromInteractions("t", 2, 5, []dataset.Interaction{
		{User: 0, Item: 1}, {User: 1, Item: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewParallelTrainer(cfg, tiny, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Workers() != 2 {
		t.Errorf("workers = %d, want clamp to 2 records", pt.Workers())
	}
}

// TestParallelSingleWorkerDeterministic pins down that a one-worker
// parallel trainer — the only configuration without write interleaving —
// is bit-reproducible run to run.
func TestParallelSingleWorkerDeterministic(t *testing.T) {
	t.Parallel()
	d := smallData(t, 3)
	cfg := quickConfig(sampling.MAP)
	cfg.Steps = 4000

	run := func() (u, v, b []float64) {
		pt, err := NewParallelTrainer(cfg, d, 1)
		if err != nil {
			t.Fatal(err)
		}
		pt.Run()
		return pt.Model().RawParams()
	}
	u1, v1, b1 := run()
	u2, v2, b2 := run()
	for name, pair := range map[string][2][]float64{
		"U": {u1, u2}, "V": {v1, v2}, "B": {b1, b2},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s[%d] differs between identical runs: %v vs %v",
					name, i, pair[0][i], pair[1][i])
			}
		}
	}
}

// TestParallelTrainingImprovesRanking mirrors the serial smoke test:
// a 4-worker Hogwild run must rank clearly better than chance.
func TestParallelTrainingImprovesRanking(t *testing.T) {
	t.Parallel()
	w, err := datagen.Generate(datagen.Profile{
		Name: "par", Users: 80, Items: 150, Pairs: 3000,
		ZipfExp: 0.6, Dim: 5, Affinity: 7,
	}, mathx.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	train, test := dataset.Split(w.Data, mathx.NewRNG(5), 0.5)
	cfg := quickConfig(sampling.MAP)
	cfg.Steps = 120000
	cfg.Seed = 6
	pt, err := NewParallelTrainer(cfg, train, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.Evaluate(pt.Model(), train, test, eval.Options{Ks: []int{5}})
	pt.Run()
	if pt.StepsDone() != cfg.Steps {
		t.Fatalf("StepsDone = %d, want %d", pt.StepsDone(), cfg.Steps)
	}
	res := eval.Evaluate(pt.Model(), train, test, eval.Options{Ks: []int{5}})
	// The bar is a hair below the serial test's 0.7: a single seed under
	// schedule-dependent interleaving wobbles ±0.02 around it, and the
	// no-systematic-loss claim belongs to the t-test suite, not here.
	if res.AUC < 0.65 {
		t.Errorf("AUC after parallel training = %.3f, want > 0.65", res.AUC)
	}
	if res.AUC <= before.AUC {
		t.Errorf("AUC did not improve: %.3f -> %.3f", before.AUC, res.AUC)
	}
	// Lifetime worker accounting must cover every step.
	sum := 0
	for _, ws := range pt.WorkerStats() {
		sum += ws.Steps
	}
	if sum != cfg.Steps {
		t.Errorf("worker steps sum to %d, want %d", sum, cfg.Steps)
	}
}

// TestParallelStatisticalEquivalence is the headline guarantee: across
// independently seeded repetitions of a scaled ML100K-profile run, a
// 4-worker Hogwild trainer and the serial reference trainer must be
// statistically indistinguishable on final smoothed loss, Prec@5, and
// NDCG@5 (Welch two-sample t-test; we reject only below α = 0.002 so the
// deterministic-seed design keeps flake risk negligible while still
// catching any systematic divergence, which manifests as p ≈ 0).
func TestParallelStatisticalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-repetition training study")
	}
	t.Parallel()
	const reps = 10
	profile := datagen.Table1Profiles[0].Scaled(0.12) // ML100K shape, unit-test size

	type armResult struct{ loss, prec, ndcg float64 }
	runArm := func(r int, workers int) armResult {
		w, err := datagen.Generate(profile, mathx.NewRNG(uint64(1000+r)))
		if err != nil {
			t.Fatal(err)
		}
		train, test := dataset.Split(w.Data, mathx.NewRNG(uint64(2000+r)), 0.8)
		cfg := DefaultConfig(sampling.MAP, train.NumPairs())
		cfg.Dim = 8
		cfg.Steps = 6 * train.NumPairs()
		cfg.Seed = uint64(3000 + r)

		var loss float64
		if workers == 0 { // serial reference
			tr, err := NewTrainer(cfg, train)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.SetStatsHook(1024, func(TrainStats) {}); err != nil {
				t.Fatal(err)
			}
			tr.Run()
			loss = tr.SmoothedLoss()
			res := eval.Evaluate(tr.Model(), train, test, eval.Options{Ks: []int{5}})
			m := res.MustAt(5)
			return armResult{loss, m.Prec, m.NDCG}
		}
		pt, err := NewParallelTrainer(cfg, train, workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.SetStatsHook(1024, func(TrainStats) {}); err != nil {
			t.Fatal(err)
		}
		pt.Run()
		loss = pt.SmoothedLoss()
		res := eval.Evaluate(pt.Model(), train, test, eval.Options{Ks: []int{5}})
		m := res.MustAt(5)
		return armResult{loss, m.Prec, m.NDCG}
	}

	var serial, hogwild [reps]armResult
	for r := 0; r < reps; r++ {
		serial[r] = runArm(r, 0)
		hogwild[r] = runArm(r, 4)
	}
	pick := func(rs [reps]armResult, f func(armResult) float64) []float64 {
		out := make([]float64, reps)
		for i, r := range rs {
			out[i] = f(r)
		}
		return out
	}
	metrics := []struct {
		name string
		f    func(armResult) float64
	}{
		{"final loss", func(r armResult) float64 { return r.loss }},
		{"Prec@5", func(r armResult) float64 { return r.prec }},
		{"NDCG@5", func(r armResult) float64 { return r.ndcg }},
	}
	for _, m := range metrics {
		a, b := pick(serial, m.f), pick(hogwild, m.f)
		res, err := mathx.WelchTTest(a, b)
		if err != nil {
			t.Fatalf("%s: t-test failed: %v", m.name, err)
		}
		t.Logf("%s: serial mean %.5f, hogwild mean %.5f, t = %.3f, p = %.4f",
			m.name, mathx.Mean(a), mathx.Mean(b), res.T, res.P)
		if res.P < 0.002 {
			t.Errorf("%s diverges between serial and 4-worker training: t = %.3f, p = %.5f",
				m.name, res.T, res.P)
		}
	}
}

// TestParallelConcurrentRace exercises the full Hogwild surface — DSS
// sampling with barrier refreshes, stats hooks, sampler instrumentation,
// and the obs export — under the race detector (make check runs
// go test -race), which is the assertion.
func TestParallelConcurrentRace(t *testing.T) {
	t.Parallel()
	d := smallData(t, 5)
	cfg := quickConfig(sampling.MAP)
	cfg.Steps = 6000
	cfg.Sampler.Strategy = sampling.DSS
	cfg.Sampler.RefreshEvery = 1500
	pt, err := NewParallelTrainer(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	hooks := 0
	if err := pt.SetStatsHook(1000, func(s TrainStats) {
		hooks++
		if s.Step == 0 || s.Step > cfg.Steps {
			t.Errorf("hook step %d out of range", s.Step)
		}
	}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pt.RegisterMetrics(reg)
	pos := obs.NewHistogram(obs.RankBuckets(d.NumItems()))
	neg := obs.NewHistogram(obs.RankBuckets(d.NumItems()))
	pt.InstrumentSampler(pos, neg)

	pt.Run()

	if hooks == 0 {
		t.Error("stats hook never fired")
	}
	if pt.SmoothedLoss() <= 0 {
		t.Errorf("smoothed loss = %v, want > 0", pt.SmoothedLoss())
	}
	if g := pt.GradMagnitude(); g < 0 || g > 1 {
		t.Errorf("grad magnitude = %v, want within [0, 1]", g)
	}
	if neg.Count() == 0 {
		t.Error("negative draw histogram empty despite DSS instrumentation")
	}
	// Parameters must come out finite despite lock-free interleaving.
	u, v, b := pt.Model().RawParams()
	for _, s := range [][]float64{u, v, b} {
		for i, x := range s {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("non-finite parameter at %d: %v", i, x)
			}
		}
	}
}

// TestParallelSnapshotRestoreBitIdentical proves the crash-safety
// contract in the one configuration where it can be exact: one worker,
// Uniform sampler.
func TestParallelSnapshotRestoreBitIdentical(t *testing.T) {
	t.Parallel()
	cfg, data := snapshotFixture(t, sampling.Uniform)

	ref, err := NewParallelTrainer(cfg, data, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref.RunSteps(cfg.Steps / 2)
	st := ref.Snapshot()
	frozen := ref.Model().Clone()
	ref.RunSteps(cfg.Steps - ref.StepsDone())

	resumed, err := NewParallelTrainer(cfg, data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(st, frozen); err != nil {
		t.Fatal(err)
	}
	if resumed.StepsDone() != cfg.Steps/2 {
		t.Fatalf("StepsDone after restore = %d, want %d", resumed.StepsDone(), cfg.Steps/2)
	}
	resumed.RunSteps(cfg.Steps - resumed.StepsDone())

	ru, rv, rb := ref.Model().RawParams()
	su, sv, sb := resumed.Model().RawParams()
	for name, pair := range map[string][2][]float64{
		"U": {ru, su}, "V": {rv, sv}, "B": {rb, sb},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s[%d]: resumed %v != uninterrupted %v",
					name, i, pair[1][i], pair[0][i])
			}
		}
	}
}

// TestParallelSnapshotRestoreHogwildConverges checks the weaker multi-
// worker guarantee: a restored 4-worker DSS run completes and lands in a
// sane loss neighborhood (exact trajectories are schedule-dependent).
func TestParallelSnapshotRestoreHogwildConverges(t *testing.T) {
	t.Parallel()
	cfg, data := snapshotFixture(t, sampling.DSS)

	ref, err := NewParallelTrainer(cfg, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetStatsHook(500, func(TrainStats) {}); err != nil {
		t.Fatal(err)
	}
	ref.RunSteps(cfg.Steps / 2)
	st := ref.Snapshot()
	frozen := ref.Model().Clone()
	ref.RunSteps(cfg.Steps - ref.StepsDone())

	resumed, err := NewParallelTrainer(cfg, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.SetStatsHook(500, func(TrainStats) {}); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(st, frozen); err != nil {
		t.Fatal(err)
	}
	resumed.RunSteps(cfg.Steps - resumed.StepsDone())

	a, b := ref.SmoothedLoss(), resumed.SmoothedLoss()
	if a <= 0 || b <= 0 {
		t.Fatalf("losses not tracked: ref %v, resumed %v", a, b)
	}
	if rel := math.Abs(a-b) / a; rel > 0.25 {
		t.Errorf("resumed loss %v strays %.0f%% from uninterrupted %v", b, rel*100, a)
	}
}

func TestParallelRestoreErrors(t *testing.T) {
	t.Parallel()
	cfg, data := snapshotFixture(t, sampling.Uniform)
	pt2, err := NewParallelTrainer(cfg, data, 2)
	if err != nil {
		t.Fatal(err)
	}
	pt2.RunSteps(100)
	st := pt2.Snapshot()
	frozen := pt2.Model().Clone()

	pt3, err := NewParallelTrainer(cfg, data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt3.Restore(st, frozen); err == nil {
		t.Error("worker-count mismatch accepted")
	}
	bad := st
	bad.Step = -1
	if err := pt2.Restore(bad, frozen); err == nil {
		t.Error("negative step accepted")
	}
}

func TestProportionalShares(t *testing.T) {
	t.Parallel()
	mk := func(sizes ...int) []*parallelWorker {
		ws := make([]*parallelWorker, len(sizes))
		for i, n := range sizes {
			ws[i] = &parallelWorker{pairs: make([]dataset.Interaction, n)}
		}
		return ws
	}
	cases := []struct {
		seg   int
		sizes []int
		want  []int
	}{
		{100, []int{50, 50}, []int{50, 50}},
		{10, []int{75, 25}, []int{8, 2}},
		{1, []int{10, 10, 10}, []int{1, 0, 0}},
		{7, []int{1, 1, 1}, []int{3, 2, 2}},
		{5, []int{0, 100}, []int{0, 5}},
	}
	for _, c := range cases {
		got := proportionalShares(c.seg, mk(c.sizes...))
		total := 0
		for i := range got {
			total += got[i]
			if got[i] != c.want[i] {
				t.Errorf("shares(%d, %v) = %v, want %v", c.seg, c.sizes, got, c.want)
				break
			}
		}
		if total != c.seg {
			t.Errorf("shares(%d, %v) sum to %d", c.seg, c.sizes, total)
		}
	}
}

// BenchmarkParallelTrain measures Hogwild throughput at several worker
// counts on an ML100K-shaped corpus; scripts/bench.sh turns the 1-vs-N
// ratio into BENCH_parallel.json.
func BenchmarkParallelTrain(b *testing.B) {
	profile := datagen.Table1Profiles[0].Scaled(0.25)
	w, err := datagen.Generate(profile, mathx.NewRNG(42))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(b *testing.B) {
			cfg := DefaultConfig(sampling.MAP, w.Data.NumPairs())
			cfg.Dim = 16
			cfg.Steps = 1 << 62 // never self-terminate; the loop drives it
			pt, err := NewParallelTrainer(cfg, w.Data, workers)
			if err != nil {
				b.Fatal(err)
			}
			pt.RunSteps(1000) // warm-up outside the timer
			b.ResetTimer()
			pt.RunSteps(b.N)
			b.StopTimer()
			b.ReportMetric(float64(pt.StepsDone()-1000)/b.Elapsed().Seconds(), "steps/s")
		})
	}
}

// BenchmarkParallelTrainGuarded is BenchmarkParallelTrain with the full
// guardrail stack armed: loss watchdog, non-finite sentinels, and gradient
// clipping with live counter flushes. Comparing steps/s against the
// unguarded benchmark prices the guard's hot-path overhead (the acceptance
// bar is < 3%).
func BenchmarkParallelTrainGuarded(b *testing.B) {
	profile := datagen.Table1Profiles[0].Scaled(0.25)
	w, err := datagen.Generate(profile, mathx.NewRNG(42))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(b *testing.B) {
			cfg := DefaultConfig(sampling.MAP, w.Data.NumPairs())
			cfg.Dim = 16
			cfg.Steps = 1 << 62 // never self-terminate; the loop drives it
			cfg.ClipNorm = 10   // loose enough to rarely fire, so only the norm check is priced
			pt, err := NewParallelTrainer(cfg, w.Data, workers)
			if err != nil {
				b.Fatal(err)
			}
			gm := guard.NewMetrics(obs.NewRegistry())
			if err := pt.SetGuard(guard.Config{Watchdog: true}, gm); err != nil {
				b.Fatal(err)
			}
			pt.RunSteps(1000) // warm-up outside the timer
			b.ResetTimer()
			pt.RunSteps(b.N)
			b.StopTimer()
			if trip := pt.GuardTrip(); trip != nil {
				b.Fatalf("guard tripped during benchmark: %v", trip)
			}
			b.ReportMetric(float64(pt.StepsDone()-1000)/b.Elapsed().Seconds(), "steps/s")
		})
	}
}

package core

import (
	"math"
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/sampling"
)

func snapshotFixture(t *testing.T, strategy sampling.Strategy) (Config, *dataset.Dataset) {
	t.Helper()
	w, err := datagen.Generate(datagen.Profile{
		Name: "snap", Users: 40, Items: 60, Pairs: 900,
		ZipfExp: 0.6, Dim: 4, Affinity: 5,
	}, mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(sampling.MAP, w.Data.NumPairs())
	cfg.Dim = 6
	cfg.Steps = 6000
	cfg.Seed = 11
	cfg.Sampler.Strategy = strategy
	return cfg, w.Data
}

// TestSnapshotRestoreBitIdentical proves the crash-safety contract for the
// Uniform sampler: train half, snapshot, train the rest; a fresh trainer
// restored from the snapshot must produce bit-identical parameters after
// the same remaining steps.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	cfg, data := snapshotFixture(t, sampling.Uniform)

	ref, err := NewTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	ref.RunSteps(cfg.Steps / 2)
	st := ref.Snapshot()
	frozen := ref.Model().Clone()
	ref.RunSteps(cfg.Steps - ref.StepsDone())

	resumed, err := NewTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(st, frozen); err != nil {
		t.Fatal(err)
	}
	if resumed.StepsDone() != cfg.Steps/2 {
		t.Fatalf("StepsDone after restore = %d, want %d", resumed.StepsDone(), cfg.Steps/2)
	}
	resumed.RunSteps(cfg.Steps - resumed.StepsDone())

	ru, rv, rb := ref.Model().RawParams()
	su, sv, sb := resumed.Model().RawParams()
	for name, pair := range map[string][2][]float64{
		"U": {ru, su}, "V": {rv, sv}, "B": {rb, sb},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s length mismatch", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: resumed %v != uninterrupted %v", name, i, b[i], a[i])
			}
		}
	}
	if got, want := resumed.SmoothedLoss(), ref.SmoothedLoss(); got != want {
		// Loss smoothing is hook-gated; both trainers ran without hooks so
		// both should report zero. The check guards the invariant anyway.
		t.Errorf("SmoothedLoss: resumed %v, uninterrupted %v", got, want)
	}
}

// TestSnapshotRestoreDSSConverges checks the weaker guarantee for the
// rank-aware sampler: resume runs and ends in the same loss neighborhood.
func TestSnapshotRestoreDSSConverges(t *testing.T) {
	cfg, data := snapshotFixture(t, sampling.DSS)

	ref, err := NewTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetStatsHook(1000, func(TrainStats) {}); err != nil {
		t.Fatal(err)
	}
	ref.RunSteps(cfg.Steps / 2)
	st := ref.Snapshot()
	frozen := ref.Model().Clone()
	ref.RunSteps(cfg.Steps - ref.StepsDone())

	resumed, err := NewTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.SetStatsHook(1000, func(TrainStats) {}); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(st, frozen); err != nil {
		t.Fatal(err)
	}
	resumed.RunSteps(cfg.Steps - resumed.StepsDone())

	refLoss, resLoss := ref.SmoothedLoss(), resumed.SmoothedLoss()
	if refLoss <= 0 || resLoss <= 0 {
		t.Fatalf("losses not tracked: ref %v, resumed %v", refLoss, resLoss)
	}
	if diff := math.Abs(resLoss - refLoss); diff > 0.05*refLoss {
		t.Errorf("resumed DSS loss %v deviates from uninterrupted %v by more than 5%%", resLoss, refLoss)
	}
}

func TestRestoreRejectsShapeMismatch(t *testing.T) {
	cfg, data := snapshotFixture(t, sampling.Uniform)
	tr, err := NewTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Snapshot()

	wrongCfg := cfg
	wrongCfg.Dim = cfg.Dim + 1
	other, err := NewTrainer(wrongCfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Restore(st, other.Model()); err == nil {
		t.Error("restore with mismatched model shape accepted")
	}
	if err := tr.Restore(TrainerState{Step: -1}, tr.Model().Clone()); err == nil {
		t.Error("restore with negative step accepted")
	}
}

// TestRestoreResumesLossTelemetry verifies the smoothed-loss curve is
// continuous across a resume: the restored accumulator carries LossEWMA
// and LossN forward.
func TestRestoreResumesLossTelemetry(t *testing.T) {
	cfg, data := snapshotFixture(t, sampling.Uniform)
	tr, err := NewTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetStatsHook(500, func(TrainStats) {}); err != nil {
		t.Fatal(err)
	}
	tr.RunSteps(2000)
	st := tr.Snapshot()
	if st.LossEWMA == 0 || st.LossN != 2000 {
		t.Fatalf("snapshot telemetry: EWMA %v, N %d", st.LossEWMA, st.LossN)
	}

	resumed, err := NewTrainer(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.SetStatsHook(500, func(TrainStats) {}); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(st, tr.Model().Clone()); err != nil {
		t.Fatal(err)
	}
	if got := resumed.SmoothedLoss(); got != st.LossEWMA {
		t.Errorf("restored SmoothedLoss = %v, want %v", got, st.LossEWMA)
	}
}

package cluster

import (
	"testing"
	"time"
)

func TestBackoffDelayFullJitter(t *testing.T) {
	rng := newLockedRNG(7)
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		ceil := base << uint(attempt)
		if ceil > cap {
			ceil = cap
		}
		for i := 0; i < 200; i++ {
			d := backoffDelay(rng, base, cap, attempt)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
}

// A huge attempt number must clamp to cap, not overflow the shift into a
// negative (or zero) ceiling.
func TestBackoffDelayShiftOverflow(t *testing.T) {
	rng := newLockedRNG(7)
	for i := 0; i < 100; i++ {
		d := backoffDelay(rng, 10*time.Millisecond, time.Second, 62)
		if d < 0 || d >= time.Second {
			t.Fatalf("overflowing attempt: delay %v outside [0, 1s)", d)
		}
	}
	if d := backoffDelay(rng, 0, time.Second, 3); d != 0 {
		t.Errorf("zero base produced delay %v", d)
	}
}

func TestLatencyTrackerQuantile(t *testing.T) {
	lt := newLatencyTracker(100)
	if got := lt.Quantile(0.95, 10, 42*time.Millisecond); got != 42*time.Millisecond {
		t.Errorf("cold tracker returned %v, want the fallback", got)
	}
	for i := 1; i <= 100; i++ {
		lt.Observe(time.Duration(i) * time.Millisecond)
	}
	p95 := lt.Quantile(0.95, 10, 0)
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Errorf("p95 of 1..100ms = %v, want ~95ms", p95)
	}
	p50 := lt.Quantile(0.50, 10, 0)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 of 1..100ms = %v, want ~50ms", p50)
	}
}

// The window is a ring: old observations age out, so a latency spike
// stops inflating the hedge delay once the window turns over.
func TestLatencyTrackerWindowTurnsOver(t *testing.T) {
	lt := newLatencyTracker(50)
	for i := 0; i < 50; i++ {
		lt.Observe(time.Second) // old spike
	}
	for i := 0; i < 50; i++ {
		lt.Observe(time.Millisecond) // new regime fills the window
	}
	if p95 := lt.Quantile(0.95, 10, 0); p95 != time.Millisecond {
		t.Errorf("p95 after turnover = %v, want 1ms", p95)
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// ProbeConfig tunes the health prober that drives ring membership.
type ProbeConfig struct {
	// Interval between probe sweeps. <= 0 defaults to 1s.
	Interval time.Duration
	// Timeout per shard probe. <= 0 defaults to 500ms.
	Timeout time.Duration
	// EjectAfter consecutive probe failures removes the shard from the
	// routing set. <= 0 defaults to 2.
	EjectAfter int
	// ReadmitAfter consecutive probe successes puts it back. <= 0
	// defaults to 2. Together with EjectAfter this is the hysteresis: a
	// shard flapping at the probe frequency neither leaves nor rejoins
	// the ring on a single observation.
	ReadmitAfter int
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	return c
}

// StartProber launches the background /readyz probe loop and returns a
// stop function. Ejection and readmission both require consecutive
// observations (hysteresis), so one dropped probe packet does not empty
// the ring and one lucky probe does not readmit a still-sick shard.
// Idempotent: a second call while running returns a no-op stop.
func (r *Router) StartProber() (stop func()) {
	if !r.probing.CompareAndSwap(false, true) {
		return func() {}
	}
	cfg := r.cfg.Probe.withDefaults()
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-r.stopProb:
				return
			case <-t.C:
				r.ProbeNow()
			}
		}
	}()
	return func() {
		close(r.stopProb)
		<-done
	}
}

// ProbeNow runs one synchronous probe sweep over every shard — the
// prober loop's body, exported so tests (and operators via a future
// admin hook) can advance membership deterministically.
func (r *Router) ProbeNow() {
	cfg := r.cfg.Probe.withDefaults()
	r.probeMu.Lock()
	defer r.probeMu.Unlock()
	for _, sh := range r.shards {
		ok := r.probeShard(sh, cfg.Timeout)
		if ok {
			r.observeRetrieval(sh, cfg.Timeout)
			sh.probeFails = 0
			sh.probeOKs++
			if !sh.available.Load() && sh.probeOKs >= cfg.ReadmitAfter {
				sh.available.Store(true)
				r.readmissions.With(sh.name).Inc()
				r.availGauge.With(sh.name).Set(1)
				r.log.Info("shard readmitted", "shard", sh.name)
			}
		} else {
			sh.probeOKs = 0
			sh.probeFails++
			if sh.available.Load() && sh.probeFails >= cfg.EjectAfter {
				sh.available.Store(false)
				r.ejections.With(sh.name).Inc()
				r.availGauge.With(sh.name).Set(0)
				r.log.Warn("shard ejected", "shard", sh.name, "failures", sh.probeFails)
			}
		}
		r.brkGauge.With(sh.name).Set(float64(sh.breaker.State()))
	}
}

// observeRetrieval reads the shard's /healthz retrieval field — the mode
// the shard is actually serving — and records it for the router's own
// /healthz. When the shard config names an expected mode, drift is logged
// once per episode (probeMu, held by the caller, guards the latch): a
// mixed-mode fleet returns different rankings for the same user depending
// on which shard failover lands on. Best-effort — an unreachable or
// pre-retrieval-era shard simply leaves the last observation standing.
func (r *Router) observeRetrieval(sh *shardState, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return
	}
	var body struct {
		Retrieval string `json:"retrieval"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil || body.Retrieval == "" {
		return
	}
	sh.retrieval.Store(body.Retrieval)
	switch {
	case sh.expectRetrieval == "" || body.Retrieval == sh.expectRetrieval:
		sh.retrievalWarned = false
	case !sh.retrievalWarned:
		sh.retrievalWarned = true
		r.log.Warn("shard retrieval mode drift",
			"shard", sh.name, "expected", sh.expectRetrieval, "observed", body.Retrieval)
	}
}

// probeShard asks one shard's /readyz; only a 200 within the timeout
// counts as healthy — a draining shard (readyz 503) is correctly treated
// as leaving the ring even though its process is alive.
func (r *Router) probeShard(sh *shardState, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

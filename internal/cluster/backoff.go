package cluster

import (
	"sort"
	"sync"
	"time"

	"clapf/internal/mathx"
)

// lockedRNG is a mutex-guarded xoshiro generator: the router jitters
// backoff sleeps from many request goroutines at once, and mathx.RNG is
// explicitly not concurrency-safe.
type lockedRNG struct {
	mu  sync.Mutex
	rng *mathx.RNG
}

func newLockedRNG(seed uint64) *lockedRNG {
	return &lockedRNG{rng: mathx.NewRNG(seed)}
}

// Float64 returns a uniform value in [0, 1).
func (r *lockedRNG) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Intn returns a uniform integer in [0, n).
func (r *lockedRNG) Intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(n)
}

// backoffDelay computes the sleep before retry attempt (0-based: the
// first retry is attempt 0) under exponential backoff with full jitter:
// uniform in [0, min(cap, base·2^attempt)). Full jitter — rather than
// base·2^attempt ± ε — is what actually decorrelates a burst of clients
// that all failed at the same instant (the AWS architecture blog's
// result: equal-or-better completion time with far fewer collisions).
func backoffDelay(rng *lockedRNG, base, cap time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt)
	if d > cap || d <= 0 { // d <= 0 guards shift overflow
		d = cap
	}
	return time.Duration(rng.Float64() * float64(d))
}

// latencyTracker keeps a fixed window of recent request latencies and
// answers quantile queries over it. The router derives its hedge delay
// from P95: hedging earlier than the tail wastes a duplicate request on
// work the primary would have finished anyway.
type latencyTracker struct {
	mu   sync.Mutex
	buf  []time.Duration // ring buffer
	next int
	n    int // filled entries, <= len(buf)
}

func newLatencyTracker(window int) *latencyTracker {
	if window < 1 {
		window = 1
	}
	return &latencyTracker{buf: make([]time.Duration, window)}
}

// Observe records one request latency.
func (t *latencyTracker) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf[t.next] = d
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
}

// Quantile returns the q-th (0 < q <= 1) nearest-rank quantile of the
// window, or fallback while the window holds fewer than minSamples
// observations — a cold router has no latency history to derive a hedge
// delay from.
func (t *latencyTracker) Quantile(q float64, minSamples int, fallback time.Duration) time.Duration {
	t.mu.Lock()
	if t.n < minSamples || t.n == 0 {
		t.mu.Unlock()
		return fallback
	}
	tmp := make([]time.Duration, t.n)
	copy(tmp, t.buf[:t.n])
	t.mu.Unlock()
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	rank := int(q*float64(len(tmp))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(tmp) {
		rank = len(tmp) - 1
	}
	return tmp[rank]
}

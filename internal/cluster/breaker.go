package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded probe budget; enough successes
	// close the breaker, any failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one shard's circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open. <= 0 defaults to 5.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes. <= 0 defaults to 2s.
	Cooldown time.Duration
	// ProbeBudget bounds concurrently in-flight half-open probes, so a
	// recovering shard is tested with a trickle, not a thundering herd.
	// <= 0 defaults to 1.
	ProbeBudget int
	// SuccessThreshold is the half-open success count that closes the
	// breaker. <= 0 defaults to 2.
	SuccessThreshold int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 1
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 2
	}
	return c
}

// Breaker is a per-shard circuit breaker: closed → open on consecutive
// failures, open → half-open after a cooldown, half-open → closed on
// enough probe successes (or straight back to open on any probe
// failure). It exists so the router stops hammering a dead shard with
// doomed requests — failure detection happens once, then the shard is
// left alone until the cooldown invites a probe.
//
// Callers bracket each attempt with Allow / (Success|Failure). Allow
// reserves a probe slot in half-open state; every Allow()==true MUST be
// matched by exactly one Success or Failure call or the probe budget
// leaks.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu             sync.Mutex
	state          BreakerState
	failures       int // consecutive, in closed state
	successes      int // in half-open state
	probesInFlight int // in half-open state
	openedAt       time.Time
	opens          uint64 // lifetime closed/half-open → open transitions
}

// NewBreaker returns a closed breaker with cfg's thresholds.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// State returns the breaker's current position, advancing open →
// half-open if the cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// maybeHalfOpen transitions open → half-open once the cooldown has
// elapsed. Caller holds b.mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.successes = 0
		b.probesInFlight = 0
	}
}

// Allow reports whether an attempt may proceed. Closed always allows;
// open allows nothing until the cooldown flips it half-open; half-open
// allows up to ProbeBudget concurrent probes.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probesInFlight < b.cfg.ProbeBudget {
			b.probesInFlight++
			return true
		}
		return false
	default:
		return false
	}
}

// Success records a completed attempt that worked. In half-open state it
// releases the probe slot and closes the breaker once SuccessThreshold
// probes have succeeded.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		if b.probesInFlight > 0 {
			b.probesInFlight--
		}
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.state = BreakerClosed
			b.failures = 0
		}
	}
}

// Cancel releases an Allow() reservation without recording an outcome —
// the attempt was abandoned (hedge race lost, caller gone), which says
// nothing about the shard's health either way.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probesInFlight > 0 {
		b.probesInFlight--
	}
}

// Failure records a completed attempt that failed. Closed trips open at
// the threshold; half-open reopens immediately — a shard that fails its
// probe has not recovered, so the full cooldown restarts.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if b.probesInFlight > 0 {
			b.probesInFlight--
		}
		b.trip()
	}
}

// trip moves the breaker to open and stamps the cooldown clock. Caller
// holds b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opens++
	b.failures = 0
	b.successes = 0
	b.probesInFlight = 0
}

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"clapf/internal/dataset"
	"clapf/internal/obs"
	"clapf/internal/obs/trace"
	"clapf/internal/serve"
)

// ShardConfig names one serve shard and where to reach it.
type ShardConfig struct {
	Name string
	URL  string // base URL, e.g. http://10.0.0.3:8080 (no trailing slash)
	// Retrieval, when set ("exact" or "ivf"), is the retrieval mode this
	// shard is expected to serve. The health prober compares it against
	// the mode the shard reports on /healthz and logs drift — a fleet
	// where one shard silently fell back to a different strategy returns
	// inconsistent rankings for the same user depending on failover, which
	// is worth an alert even though every individual answer is valid.
	// Empty disables the check.
	Retrieval string
}

// Config tunes the router. The zero value of every field has a sane
// default (applied by NewRouter); only Shards is required.
type Config struct {
	Shards []ShardConfig
	// VNodes is the virtual points per shard on the hash ring. Default 64.
	VNodes int
	// MaxRetries bounds retry attempts beyond the first try. Default 3.
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff with full
	// jitter between attempts. Defaults 25ms and 1s.
	RetryBase, RetryMax time.Duration
	// AttemptTimeout is the per-attempt deadline against one shard (the
	// overall request may spend several of these across retries).
	// Default 2s.
	AttemptTimeout time.Duration
	// NoHedge disables hedged requests. By default, when a shard has not
	// answered after the router-observed p95 latency, the same request is
	// fired at the next replica and the first answer wins.
	NoHedge bool
	// HedgeFloor is the minimum hedge delay — below it a hedge would fire
	// on nearly every request. Default 2ms.
	HedgeFloor time.Duration
	// HedgeDefault is the hedge delay used until the latency window has
	// enough samples to estimate p95. Default 50ms.
	HedgeDefault time.Duration
	// LatencyWindow is the number of recent request latencies kept for
	// the p95 estimate. Default 512.
	LatencyWindow int
	// Breaker configures every shard's circuit breaker.
	Breaker BreakerConfig
	// Probe configures the /readyz health prober.
	Probe ProbeConfig
	// Feedback configures the POST /feedback write path (owner affinity,
	// buffered-ack degradation).
	Feedback FeedbackConfig
	// StaleCacheSize bounds the router-local stale top-K cache used as a
	// degradation fallback; 0 disables it. Default 4096.
	StaleCacheSize int
	// Quorum is the minimum count of *other* available shards required
	// before RollingReload touches a shard. Default len(Shards)/2 + 1
	// (capped at len(Shards)-1 so a reload is possible at all).
	Quorum int
	// MaxK caps the k parameter for fallback rankings. Default 100.
	MaxK int
	// Train, when set, enables the popularity-ranking fallback (fitted
	// once at construction) and observed-item exclusion for it.
	Train *dataset.Dataset
	// ReloadPath is the shard endpoint RollingReload POSTs to. Default
	// "/admin/reload".
	ReloadPath string
	// Client issues shard requests; nil gets a keep-alive client with a
	// per-host connection pool.
	Client *http.Client
	// Seed drives backoff/hedge jitter. Default 1; cmd/clapf-router
	// seeds from the clock so distinct routers desynchronize.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.HedgeFloor <= 0 {
		c.HedgeFloor = 2 * time.Millisecond
	}
	if c.HedgeDefault <= 0 {
		c.HedgeDefault = 50 * time.Millisecond
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 512
	}
	if c.StaleCacheSize == 0 {
		c.StaleCacheSize = 4096
	}
	if c.Quorum <= 0 {
		c.Quorum = len(c.Shards)/2 + 1
	}
	if c.Quorum > len(c.Shards)-1 {
		c.Quorum = len(c.Shards) - 1
	}
	if c.Quorum < 0 {
		c.Quorum = 0
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	if c.ReloadPath == "" {
		c.ReloadPath = "/admin/reload"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// shardState is one shard's runtime condition: its breaker, its
// health-driven membership flag, and the Retry-After hold the shard
// itself asked for.
type shardState struct {
	name string
	url  string

	breaker *Breaker
	// available is the prober's verdict: false means ejected from
	// routing until the readmission hysteresis clears.
	available atomic.Bool
	// notBefore (unix nanos) honors a shard's Retry-After: until this
	// instant the shard is skipped, so shed shards are not hammered
	// back into overload by their own router.
	notBefore atomic.Int64

	// retrieval is the mode the shard last reported on /healthz ("" until
	// the first successful observation); expectRetrieval is the configured
	// expectation it is checked against.
	retrieval       atomic.Value // string
	expectRetrieval string

	// prober-owned hysteresis counters (guarded by Router.probeMu),
	// plus the drift-warning latch so mode drift logs once per episode.
	probeFails, probeOKs int
	retrievalWarned      bool
}

// observedRetrieval returns the shard's last-reported retrieval mode.
func (sh *shardState) observedRetrieval() string {
	if v, ok := sh.retrieval.Load().(string); ok {
		return v
	}
	return ""
}

// eligible reports whether the shard may receive an attempt right now —
// membership says it is alive and any Retry-After hold has expired. The
// breaker is consulted separately (Allow reserves half-open probes).
func (sh *shardState) eligible(now time.Time) bool {
	return sh.available.Load() && now.UnixNano() >= sh.notBefore.Load()
}

// Response is the router's /recommend payload: the shard payload plus
// provenance. Degraded is empty for a fresh primary answer; otherwise it
// names the rung of the degradation ladder that produced the items:
// "replica" (fresh, but not the user's home shard — cache affinity
// lost), "stale_cache" (router-local copy of an earlier answer), or
// "poprank" (non-personalized popularity ranking). A response is never
// silently degraded.
type Response struct {
	User     *int32       `json:"user,omitempty"`
	Items    []serve.Item `json:"items"`
	Degraded string       `json:"degraded,omitempty"`
	Shard    string       `json:"shard,omitempty"`
}

// Degradation ladder labels.
const (
	DegradedReplica    = "replica"
	DegradedStaleCache = "stale_cache"
	DegradedPopRank    = "poprank"
)

// Router fronts the shard set: it owns the ring, the per-shard breakers
// and health state, the stale-cache and popularity fallbacks, and the
// retry/hedge policy. Construct with NewRouter, serve Handler().
type Router struct {
	cfg    Config
	shards []*shardState
	ring   *Ring
	client *http.Client
	rng    *lockedRNG
	lat    *latencyTracker
	stale  *staleCache
	pop    *popFallback
	fbuf   *feedbackBuffer // nil when buffering is disabled

	log    *slog.Logger
	reg    *obs.Registry
	httpm  *obs.HTTPMetrics
	tracer *trace.Tracer

	degraded     *obs.CounterVec // {mode}
	retries      *obs.Counter
	hedges       *obs.Counter
	hedgeWins    *obs.Counter
	shardReqs    *obs.CounterVec // {shard, result}
	breakerOpens *obs.CounterVec // {shard}
	ejections    *obs.CounterVec // {shard}
	readmissions *obs.CounterVec // {shard}
	unavailable  *obs.Counter
	availGauge   *obs.GaugeVec   // {shard}
	brkGauge     *obs.GaugeVec   // {shard}
	reloads      *obs.CounterVec // {result}

	feedbackBuffered *obs.Counter
	feedbackFlushed  *obs.Counter

	probeMu  chMutex
	stopProb chan struct{}
	probing  atomic.Bool
}

// chMutex is a tiny mutex; named so the prober's ownership of the
// hysteresis counters is greppable.
type chMutex struct{ ch chan struct{} }

func newChMutex() chMutex  { return chMutex{ch: make(chan struct{}, 1)} }
func (m *chMutex) Lock()   { m.ch <- struct{}{} }
func (m *chMutex) Unlock() { <-m.ch }

// NewRouter validates cfg, builds the ring, fits the popularity
// fallback when a dataset is supplied, and registers the router's
// metrics. The health prober is not started; call StartProber.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	names := make([]string, len(cfg.Shards))
	for i, sc := range cfg.Shards {
		if sc.Name == "" || sc.URL == "" {
			return nil, fmt.Errorf("cluster: shard %d needs both a name and a URL", i)
		}
		names[i] = sc.Name
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	r := &Router{
		cfg:      cfg,
		ring:     ring,
		client:   client,
		rng:      newLockedRNG(cfg.Seed),
		lat:      newLatencyTracker(cfg.LatencyWindow),
		stale:    newStaleCache(cfg.StaleCacheSize),
		log:      obs.NopLogger(),
		reg:      obs.NewRegistry(),
		probeMu:  newChMutex(),
		stopProb: make(chan struct{}),
	}
	for _, sc := range cfg.Shards {
		sh := &shardState{
			name:            sc.Name,
			url:             strings.TrimRight(sc.URL, "/"),
			breaker:         NewBreaker(cfg.Breaker),
			expectRetrieval: sc.Retrieval,
		}
		sh.available.Store(true)
		r.shards = append(r.shards, sh)
	}
	if cfg.Train != nil {
		r.pop, err = newPopFallback(cfg.Train)
		if err != nil {
			return nil, err
		}
	}
	if fc := cfg.Feedback.withDefaults(); fc.BufferSize > 0 {
		r.fbuf = &feedbackBuffer{cap: fc.BufferSize}
	}

	r.httpm = obs.NewHTTPMetrics(r.reg, "clapf_router_")
	r.tracer = trace.New(r.reg, "clapf_router_", trace.Config{SampleRate: 0.01})
	r.degraded = r.reg.NewCounterVec("clapf_router_degraded_total",
		"Responses served below full freshness, by degradation mode (replica, stale_cache, poprank).", "mode")
	r.retries = r.reg.NewCounter("clapf_router_retries_total",
		"Shard attempts beyond the first per request (backoff-spaced).")
	r.hedges = r.reg.NewCounter("clapf_router_hedges_total",
		"Hedged duplicate requests fired after the p95-derived delay.")
	r.hedgeWins = r.reg.NewCounter("clapf_router_hedge_wins_total",
		"Hedged requests that answered before the primary attempt.")
	r.shardReqs = r.reg.NewCounterVec("clapf_router_shard_requests_total",
		"Attempts per shard by result (ok, error, canceled).", "shard", "result")
	r.breakerOpens = r.reg.NewCounterVec("clapf_router_breaker_opens_total",
		"Circuit-breaker trips per shard.", "shard")
	r.ejections = r.reg.NewCounterVec("clapf_router_shard_ejections_total",
		"Health-probe ejections per shard.", "shard")
	r.readmissions = r.reg.NewCounterVec("clapf_router_shard_readmissions_total",
		"Health-probe readmissions per shard.", "shard")
	r.unavailable = r.reg.NewCounter("clapf_router_unavailable_total",
		"Requests that exhausted every shard and every fallback (503 to the client).")
	r.availGauge = r.reg.NewGaugeVec("clapf_router_shard_available",
		"1 while the shard is in the routing set, 0 while ejected.", "shard")
	r.brkGauge = r.reg.NewGaugeVec("clapf_router_breaker_state",
		"Breaker position per shard: 0 closed, 1 open, 2 half-open.", "shard")
	r.reloads = r.reg.NewCounterVec("clapf_router_rolling_reloads_total",
		"Rolling model reload sweeps by result.", "result")
	r.feedbackBuffered = r.reg.NewCounter("clapf_router_feedback_buffered_total",
		"Feedback events accepted into the router buffer because the owning shard was down.")
	r.feedbackFlushed = r.reg.NewCounter("clapf_router_feedback_flushed_total",
		"Buffered feedback events later delivered to their owning shard.")
	r.reg.NewGaugeFunc("clapf_router_feedback_buffer_entries",
		"Feedback events currently waiting in the router buffer.",
		func() float64 { return float64(r.FeedbackBuffered()) })
	r.reg.NewGaugeFunc("clapf_router_stale_cache_entries",
		"Entries in the router-local stale top-K fallback cache.",
		func() float64 { return float64(r.stale.size()) })
	r.reg.NewGaugeFunc("clapf_router_shards",
		"Configured shard count.", func() float64 { return float64(len(r.shards)) })
	for _, sh := range r.shards {
		r.availGauge.With(sh.name).Set(1)
		r.brkGauge.With(sh.name).Set(0)
	}
	return r, nil
}

// SetLogger installs the router's structured logger; nil restores no-op.
func (r *Router) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.NopLogger()
	}
	r.log = l
	r.tracer.SetLogger(l)
}

// Registry exposes the router's metrics registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

// Tracer exposes the router's request tracer.
func (r *Router) Tracer() *trace.Tracer { return r.tracer }

// ShardNames returns the configured shard names in ring order.
func (r *Router) ShardNames() []string {
	out := make([]string, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.name
	}
	return out
}

// Breaker returns shard i's circuit breaker (tests and /healthz).
func (r *Router) Breaker(i int) *Breaker { return r.shards[i].breaker }

// Stats is a point-in-time snapshot of the router's failure-handling
// counters, for the bench harness and operational assertions.
type Stats struct {
	Retries     uint64            `json:"retries"`
	Hedges      uint64            `json:"hedges"`
	HedgeWins   uint64            `json:"hedge_wins"`
	Unavailable uint64            `json:"unavailable"`
	Degraded    map[string]uint64 `json:"degraded"`
}

// RouterStats snapshots the retry/hedge/degradation counters.
func (r *Router) RouterStats() Stats {
	return Stats{
		Retries:     r.retries.Value(),
		Hedges:      r.hedges.Value(),
		HedgeWins:   r.hedgeWins.Value(),
		Unavailable: r.unavailable.Value(),
		Degraded: map[string]uint64{
			DegradedReplica:    r.degraded.With(DegradedReplica).Value(),
			DegradedStaleCache: r.degraded.With(DegradedStaleCache).Value(),
			DegradedPopRank:    r.degraded.With(DegradedPopRank).Value(),
			DegradedBuffered:   r.degraded.With(DegradedBuffered).Value(),
		},
	}
}

// Available reports shard i's membership flag.
func (r *Router) Available(i int) bool { return r.shards[i].available.Load() }

// normalizeRouterPath bounds the router's metric path label.
func normalizeRouterPath(p string) string {
	switch p {
	case "/healthz", "/readyz", "/recommend", "/similar", "/feedback", "/metrics", "/debug/traces":
		return p
	}
	return "other"
}

// Handler returns the router's HTTP handler with tracing and request
// metrics stacked outside the mux, mirroring the shard-side ordering.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", r.handleHealth)
	mux.HandleFunc("GET /readyz", r.handleReady)
	mux.HandleFunc("GET /recommend", r.handleRecommend)
	mux.HandleFunc("GET /similar", r.handleSimilar)
	mux.HandleFunc("POST /feedback", r.handleFeedback)
	mux.Handle("GET /metrics", r.reg.Handler())
	mux.Handle("GET /debug/traces", r.tracer.Handler())
	var h http.Handler = mux
	h = r.tracer.Middleware(normalizeRouterPath, h)
	return r.httpm.Middleware(normalizeRouterPath, h)
}

// ShardHealth is one shard's condition in the /healthz payload.
type ShardHealth struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	Available bool   `json:"available"`
	Breaker   string `json:"breaker"`
	Opens     uint64 `json:"breaker_opens"`
	// Retrieval is the retrieval mode the shard last reported on its
	// /healthz ("" before the first observation).
	Retrieval string `json:"retrieval,omitempty"`
}

// HealthResponse is the router's /healthz payload.
type HealthResponse struct {
	Status   string        `json:"status"`
	Shards   []ShardHealth `json:"shards"`
	Eligible int           `json:"eligible_shards"`
	// FeedbackBuffered is the count of feedback events waiting in the
	// router's buffered-ack queue for their owning shard to return.
	FeedbackBuffered int `json:"feedback_buffered,omitempty"`
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	now := time.Now()
	resp := HealthResponse{Status: "ok"}
	for _, sh := range r.shards {
		st := sh.breaker.State()
		resp.Shards = append(resp.Shards, ShardHealth{
			Name: sh.name, URL: sh.url,
			Available: sh.available.Load(),
			Breaker:   st.String(),
			Opens:     sh.breaker.Opens(),
			Retrieval: sh.observedRetrieval(),
		})
		if sh.eligible(now) && st != BreakerOpen {
			resp.Eligible++
		}
	}
	if resp.Eligible == 0 {
		resp.Status = "degraded"
	}
	resp.FeedbackBuffered = r.FeedbackBuffered()
	writeJSON(w, http.StatusOK, resp)
}

// handleReady: the router is ready while at least one shard is routable
// OR a fallback can still answer — a router that can serve poprank is
// degraded, not down.
func (r *Router) handleReady(w http.ResponseWriter, req *http.Request) {
	if r.eligibleCount(time.Now()) > 0 || r.pop != nil {
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{Status: "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no shard available"})
}

func (r *Router) eligibleCount(now time.Time) int {
	n := 0
	for _, sh := range r.shards {
		if sh.eligible(now) && sh.breaker.State() != BreakerOpen {
			n++
		}
	}
	return n
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// requestKey is what the router extracted from the query string: enough
// to route (ring key) and to fall back (user or history for exclusions).
type requestKey struct {
	key     uint64
	user    *int32  // set for known-user requests
	history []int32 // set for cold-start requests
	k       int
}

// parseRecommendKey extracts the routing key from a /recommend query.
// Validation is deliberately shallow — out-of-range users or items are
// the shard's 400 to give — but the id must parse to route at all.
func (r *Router) parseRecommendKey(req *http.Request) (requestKey, error) {
	q := req.URL.Query()
	rk := requestKey{k: 10}
	if ks := q.Get("k"); ks != "" {
		k, err := strconv.Atoi(ks)
		if err != nil || k < 1 {
			return rk, fmt.Errorf("invalid k %q", ks)
		}
		if k > r.cfg.MaxK {
			k = r.cfg.MaxK
		}
		rk.k = k
	}
	userParam, itemsParam := q.Get("user"), q.Get("items")
	switch {
	case userParam != "" && itemsParam != "":
		return rk, fmt.Errorf("pass either user or items, not both")
	case userParam != "":
		u, err := strconv.ParseInt(userParam, 10, 32)
		if err != nil || u < 0 {
			return rk, fmt.Errorf("invalid user %q", userParam)
		}
		u32 := int32(u)
		rk.user = &u32
		rk.key = UserKey(u32)
	case itemsParam != "":
		for _, p := range strings.Split(itemsParam, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
			if err != nil || v < 0 {
				return rk, fmt.Errorf("invalid item %q", p)
			}
			rk.history = append(rk.history, int32(v))
		}
		rk.key = HistoryKey(rk.history)
	default:
		return rk, fmt.Errorf("missing user or items parameter")
	}
	return rk, nil
}

func (r *Router) handleRecommend(w http.ResponseWriter, req *http.Request) {
	rk, err := r.parseRecommendKey(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	res := r.forward(req.Context(), rk.key, "/recommend?"+req.URL.RawQuery)
	switch {
	case res.err == nil && res.status == http.StatusOK:
		var body Response
		if decodeErr := json.Unmarshal(res.body, &body); decodeErr != nil {
			// A 200 that does not decode is a torn/garbage payload the
			// attempt layer missed; degrade rather than relay garbage.
			r.log.Warn("undecodable shard payload", "shard", res.shard.name, "err", decodeErr)
			r.serveFallback(w, rk)
			return
		}
		body.Shard = res.shard.name
		if res.shard != r.shards[r.ring.Lookup(rk.key)[0]] {
			body.Degraded = DegradedReplica
			r.degraded.With(DegradedReplica).Inc()
		}
		if rk.user != nil {
			r.stale.put(staleKey{user: *rk.user, k: rk.k}, body.Items)
		}
		writeJSON(w, http.StatusOK, body)
	case res.err == nil:
		// Shard answered with a client error (4xx): relay verbatim.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
	default:
		r.serveFallback(w, rk)
	}
}

// handleSimilar routes item-similarity queries by item id — the item's
// factor row is model-global so any shard can answer; routing by item
// keeps per-shard working sets (and any future per-shard caches) tight.
func (r *Router) handleSimilar(w http.ResponseWriter, req *http.Request) {
	itemParam := req.URL.Query().Get("item")
	i, err := strconv.ParseInt(itemParam, 10, 32)
	if err != nil || i < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid item %q", itemParam)})
		return
	}
	res := r.forward(req.Context(), UserKey(int32(i))^0x5bd1e995, "/similar?"+req.URL.RawQuery)
	if res.err != nil {
		r.unavailable.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(1+r.rng.Intn(3)))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no shard available"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// serveFallback walks the bottom rungs of the degradation ladder once
// every shard attempt has failed: router-local stale top-K, then the
// popularity ranking, then an honest 503. Every rung labels the
// response — a degraded answer is fine, a silently degraded one is not.
func (r *Router) serveFallback(w http.ResponseWriter, rk requestKey) {
	if rk.user != nil {
		if items, ok := r.stale.get(staleKey{user: *rk.user, k: rk.k}); ok {
			r.degraded.With(DegradedStaleCache).Inc()
			writeJSON(w, http.StatusOK, Response{User: rk.user, Items: items, Degraded: DegradedStaleCache})
			return
		}
	}
	if r.pop != nil {
		if items, ok := r.pop.topK(rk.user, rk.history, rk.k); ok {
			r.degraded.With(DegradedPopRank).Inc()
			writeJSON(w, http.StatusOK, Response{User: rk.user, Items: items, Degraded: DegradedPopRank})
			return
		}
	}
	r.unavailable.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(1+r.rng.Intn(3)))
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no shard available"})
}

// attemptResult is one shard attempt's outcome. err != nil means the
// shard did not produce a usable HTTP response (transport failure, torn
// body, 5xx, 429 shed, timeout); err == nil carries status and body,
// where any 2xx or non-429 4xx is a healthy-shard outcome.
type attemptResult struct {
	shard     *shardState
	status    int
	body      []byte
	err       error
	fromHedge bool
}

// forward pushes one GET through the shard tier: preference-ordered
// candidates from the ring, breaker-gated attempts, bounded retries with
// full-jitter backoff, and a p95-delayed hedge per attempt. It returns
// the first usable response or, after the budget is spent, the last
// error (err != nil) for the caller to degrade on.
func (r *Router) forward(ctx context.Context, key uint64, pathQuery string) attemptResult {
	pref := r.ring.Lookup(key)
	pos := 0
	last := attemptResult{err: errors.New("cluster: no eligible shard")}
	for attempt := 0; attempt <= r.cfg.MaxRetries; attempt++ {
		// Sleep before reserving a breaker slot: nextEligible's Allow()
		// reservation must never be held across a sleep, or a canceled
		// backoff would leak the half-open probe slot and wedge the
		// breaker. Sleeping first also lets Retry-After holds expire
		// before the preference walk rules shards out.
		if attempt > 0 {
			r.retries.Inc()
			if !sleepCtx(ctx, backoffDelay(r.rng, r.cfg.RetryBase, r.cfg.RetryMax, attempt-1)) {
				last.err = ctx.Err()
				return last
			}
		}
		sh := r.nextEligible(pref, &pos)
		if sh == nil {
			return last
		}
		res := r.attemptHedged(ctx, sh, pref, &pos, pathQuery)
		if res.err == nil {
			return res
		}
		last = res
		if ctx.Err() != nil {
			return last
		}
	}
	return last
}

// nextEligible scans the preference order from *pos for a shard whose
// membership and breaker admit an attempt, reserving the breaker slot.
// It advances *pos past the returned shard so retries and hedges walk
// onward instead of re-picking the same failure.
func (r *Router) nextEligible(pref []int, pos *int) *shardState {
	now := time.Now()
	for *pos < len(pref) {
		sh := r.shards[pref[*pos]]
		*pos++
		if !sh.eligible(now) {
			continue
		}
		if !sh.breaker.Allow() {
			continue
		}
		return sh
	}
	return nil
}

// sleepCtx sleeps for d unless ctx ends first; reports whether the full
// sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// hedgeDelay is when a hedge fires: the router-observed p95 latency,
// floored so a fast cluster does not hedge every request, defaulting
// while the latency window is cold.
func (r *Router) hedgeDelay() time.Duration {
	d := r.lat.Quantile(0.95, 32, r.cfg.HedgeDefault)
	if d < r.cfg.HedgeFloor {
		d = r.cfg.HedgeFloor
	}
	return d
}

// attemptHedged runs one attempt against sh, and — if sh has not
// answered within the hedge delay — fires the identical request at the
// next eligible shard, letting the first usable answer win. The loser is
// canceled; its breaker reservation is released without recording an
// outcome, so hedging never trips a breaker on a shard that was merely
// slower than its twin. Primary has already passed breaker.Allow.
func (r *Router) attemptHedged(ctx context.Context, sh *shardState, pref []int, pos *int, pathQuery string) attemptResult {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attemptResult, 2)
	go func() { ch <- r.doAttempt(hctx, sh, pathQuery, false) }()
	inFlight := 1
	hedgeFired := r.cfg.NoHedge // true blocks the timer arm
	var timer <-chan time.Time
	if !hedgeFired {
		t := time.NewTimer(r.hedgeDelay())
		defer t.Stop()
		timer = t.C
	}
	var last attemptResult
	for inFlight > 0 {
		select {
		case res := <-ch:
			inFlight--
			if res.err == nil {
				cancel() // the other attempt, if any, is now moot
				if res.fromHedge {
					r.hedgeWins.Inc()
				}
				return res
			}
			last = res
		case <-timer:
			timer = nil
			hedgeFired = true
			if hs := r.nextEligible(pref, pos); hs != nil {
				r.hedges.Inc()
				inFlight++
				go func() { ch <- r.doAttempt(hctx, hs, pathQuery, true) }()
			}
		}
	}
	return last
}

// doAttempt issues one HTTP GET against sh and settles its breaker:
// Success on any 2xx/4xx except 429 (the shard is healthy; a 4xx is
// the client's problem), Failure on transport errors, torn bodies,
// per-attempt timeouts, 5xx, and 429 (the shard is shedding — back
// off and fail over), and Cancel — no outcome — when the parent
// context ended first (hedge race lost, caller gone, or the client's
// deadline expired), since none of those are the shard's fault. A
// 429/503 Retry-After is honored by holding the shard out of the
// candidate set until it expires. The outbound request carries the
// current trace context (traceparent), so a shard's stage spans join
// the router's trace.
func (r *Router) doAttempt(ctx context.Context, sh *shardState, pathQuery string, fromHedge bool) attemptResult {
	actx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
	defer cancel()
	sp := trace.StartSpanNoCtx(ctx, "shard:"+sh.name)
	defer sp.End()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, sh.url+pathQuery, nil)
	if err != nil {
		sh.breaker.Cancel()
		return attemptResult{shard: sh, err: err, fromHedge: fromHedge}
	}
	trace.Inject(ctx, req.Header)
	t0 := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The parent (hedge/request) context ended — hedge race
			// lost, caller gone, or the client's own deadline expired.
			// Not the shard's fault; only the per-attempt timeout
			// (actx alone expiring) charges the breaker.
			sh.breaker.Cancel()
			r.shardReqs.With(sh.name, "canceled").Inc()
			return attemptResult{shard: sh, err: err, fromHedge: fromHedge}
		}
		r.shardFailure(sh)
		return attemptResult{shard: sh, err: err, fromHedge: fromHedge}
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr != nil {
		if ctx.Err() != nil {
			sh.breaker.Cancel()
			r.shardReqs.With(sh.name, "canceled").Inc()
			return attemptResult{shard: sh, err: readErr, fromHedge: fromHedge}
		}
		// Torn response: the shard died (or lied about Content-Length)
		// mid-body. The bytes that did arrive are not trustworthy.
		r.shardFailure(sh)
		return attemptResult{shard: sh, err: fmt.Errorf("cluster: torn response from %s: %w", sh.name, readErr), fromHedge: fromHedge}
	}
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		// 503 and 429 are both shed signals (DESIGN.md back-pressure):
		// honor Retry-After with a notBefore hold so the preference
		// walk routes around the shedding shard instead of queueing.
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				sh.notBefore.Store(time.Now().Add(time.Duration(secs) * time.Second).UnixNano())
			}
		}
		r.shardFailure(sh)
		return attemptResult{shard: sh, status: resp.StatusCode, body: body,
			err: fmt.Errorf("cluster: shard %s returned %d", sh.name, resp.StatusCode), fromHedge: fromHedge}
	}
	sh.breaker.Success()
	r.shardReqs.With(sh.name, "ok").Inc()
	r.lat.Observe(time.Since(t0))
	return attemptResult{shard: sh, status: resp.StatusCode, body: body, fromHedge: fromHedge}
}

// shardFailure settles a failed attempt: breaker bookkeeping plus the
// open-transition metric when this failure was the one that tripped it.
func (r *Router) shardFailure(sh *shardState) {
	before := sh.breaker.Opens()
	sh.breaker.Failure()
	r.shardReqs.With(sh.name, "error").Inc()
	if after := sh.breaker.Opens(); after > before {
		r.breakerOpens.With(sh.name).Inc()
		r.brkGauge.With(sh.name).Set(float64(BreakerOpen))
		r.log.Warn("circuit breaker opened", "shard", sh.name, "opens", after)
	}
}

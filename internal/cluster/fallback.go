package cluster

import (
	"container/list"
	"fmt"
	"sync"

	"clapf/internal/baselines"
	"clapf/internal/dataset"
	"clapf/internal/rank"
	"clapf/internal/serve"
)

// staleCache is the router-local copy of recent successful top-K
// answers, keyed (user, k). It is the second rung of the degradation
// ladder: when every shard is gone, yesterday's personalized ranking
// beats today's popularity list. Unlike the shard-side result cache it
// is deliberately NOT invalidated on model reload — staleness is its
// entire point, and every hit is labeled degraded="stale_cache".
type staleCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	byKey map[staleKey]*list.Element
}

type staleKey struct {
	user int32
	k    int
}

type staleEntry struct {
	key   staleKey
	items []serve.Item
}

func newStaleCache(capacity int) *staleCache {
	if capacity <= 0 {
		return nil
	}
	return &staleCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[staleKey]*list.Element, capacity),
	}
}

func (c *staleCache) get(key staleKey) ([]serve.Item, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*staleEntry).items, true
}

func (c *staleCache) put(key staleKey, items []serve.Item) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*staleEntry).items = items
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&staleEntry{key: key, items: items})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*staleEntry).key)
	}
}

func (c *staleCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// popFallback is the ladder's last personalizing-free rung: a popularity
// ranking fitted once from the training data. It still excludes a known
// user's observed items (the router holds the dataset), so even the
// worst-case answer never recommends what the user already has.
type popFallback struct {
	scores []float64
	train  *dataset.Dataset
}

func newPopFallback(train *dataset.Dataset) (*popFallback, error) {
	p := baselines.NewPopRank()
	if err := p.Fit(train); err != nil {
		return nil, fmt.Errorf("cluster: fitting popularity fallback: %w", err)
	}
	scores := make([]float64, train.NumItems())
	p.ScoreAll(0, scores)
	return &popFallback{scores: scores, train: train}, nil
}

// topK ranks the catalog by popularity, excluding the known user's
// training positives or the cold-start history. ok is false when the
// user id is out of the dataset's range and no history was given —
// there is nothing defensible to serve.
func (p *popFallback) topK(user *int32, history []int32, k int) ([]serve.Item, bool) {
	var exclude func(int32) bool
	switch {
	case user != nil:
		if *user < 0 || int(*user) >= p.train.NumUsers() {
			return nil, false
		}
		pos := p.train.Positives(*user)
		idx := 0
		exclude = func(i int32) bool {
			for idx < len(pos) && pos[idx] < i {
				idx++
			}
			return idx < len(pos) && pos[idx] == i
		}
	case len(history) > 0:
		seen := make(map[int32]bool, len(history))
		for _, it := range history {
			seen[it] = true
		}
		exclude = func(i int32) bool { return seen[i] }
	default:
		return nil, false
	}
	top := rank.TopK(p.scores, k, exclude)
	items := make([]serve.Item, len(top))
	for i, e := range top {
		items[i] = serve.Item{Item: e.Item, Score: e.Score}
	}
	return items, true
}

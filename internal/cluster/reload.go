package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RollingReload fans a model reload out shard-by-shard: for each shard
// in turn it checks the quorum gate (at least cfg.Quorum OTHER shards
// must currently be available — the ring never drops below quorum
// because of a reload we initiated), POSTs the shard's reload endpoint,
// and then waits for the shard's /readyz to answer 200 before moving to
// the next. cmd/clapf-router wires SIGHUP here, giving the tier the same
// one-signal reload story a single shard has.
//
// A shard whose reload endpoint reports failure keeps its old model
// serving (the shard-side swap gate guarantees that), so the sweep
// records the error and continues to the remaining shards — a corrupt
// model file should not strand the tier half-reloaded on generation
// skew any longer than necessary. The aggregated error is returned.
// A quorum violation, by contrast, aborts immediately: continuing would
// risk the availability the gate exists to protect.
func (r *Router) RollingReload(ctx context.Context) error {
	var errs []error
	for _, sh := range r.shards {
		if avail := r.othersAvailable(sh); avail < r.cfg.Quorum {
			err := fmt.Errorf("cluster: rolling reload halted at %s: only %d other shards available, quorum %d",
				sh.name, avail, r.cfg.Quorum)
			r.reloads.With("quorum_abort").Inc()
			r.log.Error("rolling reload aborted", "shard", sh.name, "available", avail, "quorum", r.cfg.Quorum)
			return errors.Join(append(errs, err)...)
		}
		if err := r.reloadShard(ctx, sh); err != nil {
			errs = append(errs, err)
			r.log.Error("shard reload failed; old model keeps serving", "shard", sh.name, "err", err)
			continue
		}
		if err := r.awaitReady(ctx, sh); err != nil {
			errs = append(errs, err)
			r.reloads.With("error").Inc()
			r.log.Error("shard not ready after reload", "shard", sh.name, "err", err)
			return errors.Join(errs...) // a shard stuck not-ready: stop widening the blast radius
		}
		r.log.Info("shard reloaded", "shard", sh.name)
	}
	if len(errs) > 0 {
		r.reloads.With("error").Inc()
		return errors.Join(errs...)
	}
	r.reloads.With("ok").Inc()
	return nil
}

// othersAvailable counts available shards excluding sh.
func (r *Router) othersAvailable(sh *shardState) int {
	n := 0
	now := time.Now()
	for _, other := range r.shards {
		if other != sh && other.eligible(now) && other.breaker.State() != BreakerOpen {
			n++
		}
	}
	return n
}

// reloadShard POSTs the shard's reload endpoint (serve's opt-in
// /admin/reload) and treats any non-200 as a failed reload.
func (r *Router) reloadShard(ctx context.Context, sh *shardState) error {
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, sh.url+r.cfg.ReloadPath, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: reload %s: %w", sh.name, err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: reload %s: status %d: %s", sh.name, resp.StatusCode, body)
	}
	return nil
}

// awaitReady polls the shard's /readyz until it answers 200 or the
// deadline passes — the gate that keeps the sweep from touching shard
// N+1 while shard N is still coming back.
func (r *Router) awaitReady(ctx context.Context, sh *shardState) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if r.probeShard(sh, time.Second) {
			return nil
		}
		if !sleepCtx(ctx, 50*time.Millisecond) {
			return ctx.Err()
		}
	}
	return fmt.Errorf("cluster: shard %s did not become ready after reload", sh.name)
}

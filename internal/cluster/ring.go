// Package cluster is the multi-shard serving tier: a router that fronts
// N serve shards behind a consistent-hash ring and keeps answering —
// possibly degraded, never silently wrong — while shards die, stall, or
// return garbage. The pieces:
//
//   - ring.go     consistent-hash ring (user-sharded for cache affinity)
//   - breaker.go  per-shard circuit breaker (closed → open → half-open)
//   - backoff.go  exponential backoff with full jitter + latency tracking
//   - health.go   /readyz prober driving ring membership with hysteresis
//   - router.go   the HTTP router: retries, hedging, degradation ladder
//   - reload.go   replica-aware rolling model reload gated on quorum
//
// Production code imports this package from cmd/clapf-router; the bench
// harness (internal/experiments) spins the whole tier in-process.
package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over a fixed shard set. Each shard
// contributes vnodes virtual points so load spreads evenly; a key hashes
// to a point and walks clockwise collecting distinct shards, which gives
// every key a stable preference order (primary, first replica, second
// replica, ...). The shard set is fixed at construction — availability is
// a routing-time concern (the router skips ejected or open-breaker
// shards), not a ring mutation, so a shard bouncing in and out of health
// never reshuffles which users map to the survivors.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// hash64 mixes a 64-bit value through the splitmix64 finalizer — cheap,
// well-distributed, and dependency-free.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a string through FNV-1a then splitmix64, so vnode
// points derived from shard names are decorrelated even for names that
// differ in one character ("shard-1" vs "shard-2").
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return hash64(h)
}

// NewRing builds a ring over names with vnodes virtual points per shard.
// Shard identity is positional (the router indexes shards by slice
// position); names only seed the hash points, so renaming a shard moves
// its keys but reordering the slice does not change point placement.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: ring needs vnodes >= 1, got %d", vnodes)
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{shards: len(names), points: make([]ringPoint, 0, len(names)*vnodes)}
	for si, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", name)
		}
		seen[name] = true
		base := hashString(name)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(base + uint64(v)*0x9e3779b97f4a7c15),
				shard: si,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// NumShards returns the size of the shard set the ring was built over.
func (r *Ring) NumShards() int { return r.shards }

// Lookup returns the full preference order for key: the shard owning the
// first ring point at or after hash(key), then each further distinct
// shard in clockwise order. The order is deterministic per key and stable
// under shard failure — the router walks it front to back, so a dead
// primary's traffic lands on the same replica every time (cache
// affinity for the failover set, not just the happy path).
func (r *Ring) Lookup(key uint64) []int {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	for i := 0; len(order) < r.shards && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			order = append(order, p.shard)
		}
	}
	return order
}

// UserKey maps a user id onto the ring's key space. Known-user requests
// route by this so repeated requests for one user hit one shard's top-K
// cache.
func UserKey(user int32) uint64 { return uint64(uint32(user)) }

// HistoryKey maps a cold-start history onto the key space by folding the
// item ids order-independently (sum of per-item hashes), so the same set
// routes identically regardless of the order the client listed it in.
func HistoryKey(items []int32) uint64 {
	var h uint64
	for _, it := range items {
		h += hash64(uint64(uint32(it)) ^ 0xc1f651c67c62c6e0)
	}
	return h
}

package cluster

import (
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty shard set accepted")
	}
	if _, err := NewRing([]string{"a", "b"}, 0); err == nil {
		t.Error("vnodes = 0 accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 8); err == nil {
		t.Error("duplicate shard name accepted")
	}
}

// Lookup must return every shard exactly once, in an order that is
// deterministic per key and identical across independently built rings —
// the failover order has to agree between router restarts or a bounce
// reshuffles every user's replica affinity.
func TestRingLookupCompleteAndStable(t *testing.T) {
	names := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	r1, err := NewRing(names, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(names, 64)
	for key := uint64(0); key < 500; key++ {
		o1, o2 := r1.Lookup(key), r2.Lookup(key)
		if len(o1) != len(names) {
			t.Fatalf("key %d: preference order has %d shards, want %d", key, len(o1), len(names))
		}
		seen := map[int]bool{}
		for i, s := range o1 {
			if s < 0 || s >= len(names) || seen[s] {
				t.Fatalf("key %d: bad preference order %v", key, o1)
			}
			seen[s] = true
			if o2[i] != s {
				t.Fatalf("key %d: rebuilt ring disagrees: %v vs %v", key, o1, o2)
			}
		}
	}
}

// With enough vnodes no shard should own a wildly outsized key share.
// The bound is deliberately loose (3x the fair share) — this guards
// against a broken hash, not against statistical variance.
func TestRingBalance(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	r, err := NewRing(names, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(names))
	const keys = 20000
	for key := uint64(0); key < keys; key++ {
		counts[r.Lookup(key)[0]]++
	}
	fair := keys / len(names)
	for i, c := range counts {
		if c > 3*fair || c < fair/3 {
			t.Errorf("shard %d owns %d of %d keys (fair share %d): ring is unbalanced %v",
				i, c, keys, fair, counts)
		}
	}
}

// Renaming no shard but reordering the config slice must not move keys:
// identity is positional but point placement is name-derived.
func TestRingNamesDrivePlacement(t *testing.T) {
	a, _ := NewRing([]string{"x", "y"}, 32)
	b, _ := NewRing([]string{"y", "x"}, 32)
	for key := uint64(0); key < 200; key++ {
		// Map positional indices back to names; the named orders must match.
		na := []string{"x", "y"}[a.Lookup(key)[0]]
		nb := []string{"y", "x"}[b.Lookup(key)[0]]
		if na != nb {
			t.Fatalf("key %d: primary %q vs %q after reordering config", key, na, nb)
		}
	}
}

func TestHistoryKeyOrderIndependent(t *testing.T) {
	k1 := HistoryKey([]int32{3, 17, 99})
	k2 := HistoryKey([]int32{99, 3, 17})
	if k1 != k2 {
		t.Errorf("HistoryKey depends on item order: %d vs %d", k1, k2)
	}
	if HistoryKey([]int32{3}) == HistoryKey([]int32{4}) {
		t.Error("distinct single-item histories collide")
	}
}

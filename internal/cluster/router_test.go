package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/fault"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/serve"
)

// testFixture builds a small synthetic world and a Gaussian-initialized
// model over it — the router only relays shard answers, so the model
// need not be trained, just valid and deterministic.
func testFixture(t testing.TB) (*mf.Model, *dataset.Dataset) {
	t.Helper()
	w, err := datagen.Generate(datagen.Profile{
		Name: "cluster", Users: 60, Items: 90, Pairs: 1500,
		ZipfExp: 0.6, Dim: 4, Affinity: 6,
	}, mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	m := mf.MustNew(mf.Config{
		NumUsers: w.Data.NumUsers(), NumItems: w.Data.NumItems(), Dim: 4, UseBias: true,
	})
	m.InitGaussian(mathx.NewRNG(8), 0.1)
	return m, w.Data
}

// testShard is one in-process serve shard wrapped in a chaos injector.
type testShard struct {
	srv   *serve.Server
	chaos *fault.Chaos
	ts    *httptest.Server
}

// newTestCluster spins n identical serve shards (each behind a
// fault.Chaos) and a router over them. mut tweaks the router config
// before construction; every test gets fast retry/breaker/probe knobs by
// default so nothing sleeps for real-world durations.
func newTestCluster(t testing.TB, n int, mut func(*Config)) (*Router, []*testShard, *dataset.Dataset) {
	t.Helper()
	model, train := testFixture(t)
	shards := make([]*testShard, n)
	shardCfgs := make([]ShardConfig, n)
	for i := range shards {
		s, err := serve.New(model.Clone(), train)
		if err != nil {
			t.Fatal(err)
		}
		s.EnableAdminReload(func() error { return s.SwapModel(s.Model().Clone()) })
		ch := fault.NewChaos(s.Handler())
		ts := httptest.NewServer(ch)
		t.Cleanup(ts.Close)
		shards[i] = &testShard{srv: s, chaos: ch, ts: ts}
		shardCfgs[i] = ShardConfig{Name: fmt.Sprintf("shard-%d", i), URL: ts.URL}
	}
	cfg := Config{
		Shards:    shardCfgs,
		Train:     train,
		NoHedge:   true, // hedging has its own test; elsewhere it only adds nondeterminism
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
		Breaker: BreakerConfig{FailureThreshold: 3, Cooldown: 100 * time.Millisecond, SuccessThreshold: 1},
		Probe:   ProbeConfig{Interval: 5 * time.Millisecond, Timeout: 500 * time.Millisecond, EjectAfter: 2, ReadmitAfter: 2},
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, shards, train
}

// homeOf returns the index of user's primary shard on the ring.
func homeOf(r *Router, user int32) int {
	return r.ring.Lookup(UserKey(user))[0]
}

// userHomedOn finds a user whose primary shard is idx.
func userHomedOn(t testing.TB, r *Router, idx int) int32 {
	t.Helper()
	for u := int32(0); u < 60; u++ {
		if homeOf(r, u) == idx {
			return u
		}
	}
	t.Fatalf("no test user homed on shard %d", idx)
	return 0
}

func routerGet(t testing.TB, h http.Handler, path string) (*httptest.ResponseRecorder, Response) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	var body Response
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON from %s: %v: %s", path, err, rec.Body.String())
		}
	}
	return rec, body
}

// Happy path: a known user's requests land on their home shard, carry no
// degraded label, name the serving shard, and agree with what the shard
// answers directly.
func TestRouterRoutesToHomeShard(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, nil)
	h := r.Handler()
	for u := int32(0); u < 10; u++ {
		home := homeOf(r, u)
		rec, body := routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
		if rec.Code != http.StatusOK {
			t.Fatalf("user %d: status %d: %s", u, rec.Code, rec.Body.String())
		}
		if body.Degraded != "" {
			t.Errorf("user %d: healthy cluster served degraded=%q", u, body.Degraded)
		}
		if body.Shard != fmt.Sprintf("shard-%d", home) {
			t.Errorf("user %d: served by %s, home is shard-%d", u, body.Shard, home)
		}
		// The shard's direct answer must match item-for-item.
		direct := httptest.NewRecorder()
		shards[home].srv.Handler().ServeHTTP(direct,
			httptest.NewRequest(http.MethodGet, fmt.Sprintf("/recommend?user=%d&k=5", u), nil))
		var want Response
		if err := json.Unmarshal(direct.Body.Bytes(), &want); err != nil {
			t.Fatal(err)
		}
		if len(body.Items) != len(want.Items) {
			t.Fatalf("user %d: router %d items, shard %d", u, len(body.Items), len(want.Items))
		}
		for i := range want.Items {
			if body.Items[i] != want.Items[i] {
				t.Errorf("user %d rank %d: router %+v != shard %+v", u, i, body.Items[i], want.Items[i])
			}
		}
	}
}

// Cold-start requests route by history (order-independently) and work
// end to end through the router.
func TestRouterColdStartRouting(t *testing.T) {
	r, _, _ := newTestCluster(t, 3, nil)
	h := r.Handler()
	rec1, b1 := routerGet(t, h, "/recommend?items=1,5,9&k=4")
	rec2, b2 := routerGet(t, h, "/recommend?items=9,1,5&k=4")
	if rec1.Code != http.StatusOK || rec2.Code != http.StatusOK {
		t.Fatalf("cold-start status %d / %d", rec1.Code, rec2.Code)
	}
	if b1.Shard != b2.Shard {
		t.Errorf("same history set routed to %s and %s", b1.Shard, b2.Shard)
	}
	if len(b1.Items) != 4 {
		t.Errorf("cold-start returned %d items, want 4", len(b1.Items))
	}
}

// A dead primary's traffic fails over to a replica and says so: 200,
// degraded="replica", served by a non-home shard. Never a silent success.
func TestRouterFailoverLabelsReplica(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, nil)
	h := r.Handler()
	u := userHomedOn(t, r, 0)
	shards[0].chaos.SetDown(true)
	rec, body := routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
	if rec.Code != http.StatusOK {
		t.Fatalf("failover status %d: %s", rec.Code, rec.Body.String())
	}
	if body.Degraded != DegradedReplica {
		t.Errorf("failover degraded=%q, want %q", body.Degraded, DegradedReplica)
	}
	if body.Shard == "shard-0" || body.Shard == "" {
		t.Errorf("failover served by %q", body.Shard)
	}
	if r.degraded.With(DegradedReplica).Value() == 0 {
		t.Error("clapf_router_degraded_total{mode=replica} not incremented")
	}
}

// Client errors are the shard's verdict and relay verbatim — an
// out-of-range user is a 400, not a retry storm or a fallback.
func TestRouterRelays4xxWithoutRetry(t *testing.T) {
	r, _, _ := newTestCluster(t, 3, nil)
	h := r.Handler()
	rec, _ := routerGet(t, h, "/recommend?user=500000&k=5")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range user: status %d, want 400", rec.Code)
	}
	if got := r.retries.Value(); got != 0 {
		t.Errorf("a 4xx cost %d retries", got)
	}
	if rec.Code == http.StatusBadRequest && !strings.Contains(rec.Body.String(), "error") {
		t.Errorf("400 body carries no error payload: %s", rec.Body.String())
	}
	// Router-side parse failures are 400s too.
	for _, path := range []string{"/recommend", "/recommend?user=abc", "/recommend?user=1&items=2", "/recommend?user=1&k=0"} {
		rec, _ := routerGet(t, h, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

// With every shard dead, a user the router has answered before gets
// their stale top-K back — labeled stale_cache, not silently served.
func TestRouterStaleCacheFallback(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, nil)
	h := r.Handler()
	_, fresh := routerGet(t, h, "/recommend?user=3&k=5")
	for _, sh := range shards {
		sh.chaos.SetDown(true)
	}
	rec, stale := routerGet(t, h, "/recommend?user=3&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("stale fallback status %d", rec.Code)
	}
	if stale.Degraded != DegradedStaleCache {
		t.Errorf("degraded=%q, want %q", stale.Degraded, DegradedStaleCache)
	}
	if len(stale.Items) != len(fresh.Items) {
		t.Fatalf("stale answer has %d items, fresh had %d", len(stale.Items), len(fresh.Items))
	}
	for i := range fresh.Items {
		if stale.Items[i] != fresh.Items[i] {
			t.Errorf("rank %d: stale %+v != fresh %+v", i, stale.Items[i], fresh.Items[i])
		}
	}
	if r.degraded.With(DegradedStaleCache).Value() == 0 {
		t.Error("clapf_router_degraded_total{mode=stale_cache} not incremented")
	}
}

// An unprimed user with every shard dead falls through to the
// popularity ranking — which still excludes the user's training
// positives. The very bottom rung (unknown user, no history) is an
// honest 503 with a jittered Retry-After.
func TestRouterPopRankFallback(t *testing.T) {
	r, shards, train := newTestCluster(t, 3, nil)
	h := r.Handler()
	for _, sh := range shards {
		sh.chaos.SetDown(true)
	}
	rec, body := routerGet(t, h, "/recommend?user=4&k=8")
	if rec.Code != http.StatusOK {
		t.Fatalf("poprank fallback status %d", rec.Code)
	}
	if body.Degraded != DegradedPopRank {
		t.Errorf("degraded=%q, want %q", body.Degraded, DegradedPopRank)
	}
	for _, it := range body.Items {
		if train.IsPositive(4, it.Item) {
			t.Errorf("poprank fallback recommended item %d the user already has", it.Item)
		}
	}
	// Cold-start histories get poprank too, excluding the history itself.
	rec, body = routerGet(t, h, "/recommend?items=2,6&k=8")
	if rec.Code != http.StatusOK || body.Degraded != DegradedPopRank {
		t.Fatalf("cold-start poprank: status %d degraded %q", rec.Code, body.Degraded)
	}
	for _, it := range body.Items {
		if it.Item == 2 || it.Item == 6 {
			t.Errorf("poprank fallback recommended history item %d", it.Item)
		}
	}
	// Out-of-range user: nothing defensible left — 503, Retry-After set.
	rec, _ = routerGet(t, h, "/recommend?user=500000&k=5")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("bottom rung status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if r.unavailable.Value() == 0 {
		t.Error("clapf_router_unavailable_total not incremented")
	}
}

// Fully dark cluster with no fallback data: every rung exhausted must be
// an honest 503, and the router's /readyz goes 503 too (no Train means
// no poprank to stand on).
func TestRouterHonest503WhenEverythingGone(t *testing.T) {
	r, shards, _ := newTestCluster(t, 2, func(c *Config) {
		c.Train = nil
		c.StaleCacheSize = -1 // "disabled", not "default"
	})
	h := r.Handler()
	for _, sh := range shards {
		sh.chaos.SetDown(true)
	}
	rec, _ := routerGet(t, h, "/recommend?user=1&k=5")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	// Membership still shows every shard available (no prober ran), so
	// readyz stays 200 here; eject them and it must go dark honestly.
	for _, sh := range r.shards {
		sh.available.Store(false)
	}
	ready := httptest.NewRecorder()
	h.ServeHTTP(ready, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if ready.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz with zero shards and no fallback: %d, want 503", ready.Code)
	}
}

// A shard that sheds with Retry-After is held out of the candidate set
// until the hold expires instead of being hammered straight back into
// overload: the second request must not touch it at all.
func TestRouterHonorsRetryAfter(t *testing.T) {
	var homeHits atomic.Int64
	model, train := testFixture(t)
	replica, err := serve.New(model.Clone(), train)
	if err != nil {
		t.Fatal(err)
	}
	replicaTS := httptest.NewServer(replica.Handler())
	t.Cleanup(replicaTS.Close)
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		homeHits.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"overloaded"}`)
	}))
	t.Cleanup(shedding.Close)

	r, err := NewRouter(Config{
		Shards: []ShardConfig{
			{Name: "shedding", URL: shedding.URL},
			{Name: "replica", URL: replicaTS.URL},
		},
		NoHedge:   true,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		Breaker: BreakerConfig{FailureThreshold: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handler()
	u := userHomedOn(t, r, 0) // homed on the shedding shard
	rec, body := routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
	if rec.Code != http.StatusOK || body.Degraded != DegradedReplica {
		t.Fatalf("first request: status %d degraded %q", rec.Code, body.Degraded)
	}
	hitsAfterFirst := homeHits.Load()
	if hitsAfterFirst == 0 {
		t.Fatal("first request never tried the home shard")
	}
	for i := 0; i < 5; i++ {
		rec, body = routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
		if rec.Code != http.StatusOK || body.Degraded != DegradedReplica {
			t.Fatalf("held-out request %d: status %d degraded %q", i, rec.Code, body.Degraded)
		}
	}
	if homeHits.Load() != hitsAfterFirst {
		t.Errorf("shedding shard hit %d more times during its Retry-After hold",
			homeHits.Load()-hitsAfterFirst)
	}
}

// A shard that sheds with 429 + Retry-After is back-pressure, exactly
// like 503: the router must fail over to a replica (not relay the 429),
// hold the shard out of the candidate set until the Retry-After
// expires, and record the attempt as a shard error, never a success.
func TestRouter429ShedTreatedAsBackpressure(t *testing.T) {
	var homeHits atomic.Int64
	model, train := testFixture(t)
	replica, err := serve.New(model.Clone(), train)
	if err != nil {
		t.Fatal(err)
	}
	replicaTS := httptest.NewServer(replica.Handler())
	t.Cleanup(replicaTS.Close)
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		homeHits.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"rate limited"}`)
	}))
	t.Cleanup(shedding.Close)

	r, err := NewRouter(Config{
		Shards: []ShardConfig{
			{Name: "shedding", URL: shedding.URL},
			{Name: "replica", URL: replicaTS.URL},
		},
		NoHedge:   true,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		Breaker: BreakerConfig{FailureThreshold: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handler()
	u := userHomedOn(t, r, 0) // homed on the shedding shard
	rec, body := routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
	if rec.Code != http.StatusOK || body.Degraded != DegradedReplica {
		t.Fatalf("429 from home shard: status %d degraded %q, want 200 via replica", rec.Code, body.Degraded)
	}
	hitsAfterFirst := homeHits.Load()
	if hitsAfterFirst == 0 {
		t.Fatal("first request never tried the home shard")
	}
	if r.shardReqs.With("shedding", "error").Value() == 0 {
		t.Error("a 429 shed was not recorded as a shard error")
	}
	if r.shardReqs.With("shedding", "ok").Value() != 0 {
		t.Error("a 429 shed was recorded as a shard success")
	}
	for i := 0; i < 5; i++ {
		rec, body = routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
		if rec.Code != http.StatusOK || body.Degraded != DegradedReplica {
			t.Fatalf("held-out request %d: status %d degraded %q", i, rec.Code, body.Degraded)
		}
	}
	if homeHits.Load() != hitsAfterFirst {
		t.Errorf("429-shedding shard hit %d more times during its Retry-After hold",
			homeHits.Load()-hitsAfterFirst)
	}
}

// A request context that dies during the retry backoff must not leak a
// half-open probe slot: forward may only hold a breaker reservation
// while an attempt is actually in flight. A leaked slot would pin the
// breaker half-open rejecting everything until process restart.
func TestRouterCanceledBackoffDoesNotLeakProbeSlot(t *testing.T) {
	r, shards, _ := newTestCluster(t, 2, func(c *Config) {
		// A long, flat backoff window so the context deadline lands
		// inside the retry sleep with overwhelming probability.
		c.RetryBase, c.RetryMax = 10*time.Second, 10*time.Second
		c.Breaker = BreakerConfig{FailureThreshold: 1, Cooldown: time.Millisecond, SuccessThreshold: 1, ProbeBudget: 1}
	})
	u := userHomedOn(t, r, 0)
	shards[0].chaos.SetDown(true)
	// Park the replica's breaker half-open: its single probe slot is the
	// resource a buggy forward would leak.
	r.Breaker(1).Failure()
	deadline := time.Now().Add(time.Second)
	for r.Breaker(1).State() != BreakerHalfOpen {
		if time.Now().After(deadline) {
			t.Fatal("replica breaker never went half-open")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	r.forward(ctx, UserKey(u), fmt.Sprintf("/recommend?user=%d&k=5", u))
	// Whatever path forward took — canceled mid-backoff (the common
	// case here) or a completed probe — the replica's probe slot must be
	// free again.
	if !r.Breaker(1).Allow() {
		t.Fatal("canceled backoff leaked the replica's half-open probe slot")
	}
	r.Breaker(1).Cancel()
}

// A client whose own deadline expires mid-attempt says nothing about
// shard health: the breaker must see a no-fault cancel, not a failure —
// otherwise a burst of impatient clients trips breakers on healthy
// shards.
func TestRouterClientDeadlineDoesNotChargeBreaker(t *testing.T) {
	r, shards, _ := newTestCluster(t, 1, func(c *Config) {
		c.AttemptTimeout = 5 * time.Second
		c.Breaker = BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute}
	})
	shards[0].chaos.SetLatency(300 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res := r.forward(ctx, UserKey(0), "/recommend?user=0&k=5")
	if res.err == nil {
		t.Fatal("forward succeeded despite the expired client deadline")
	}
	if got := r.Breaker(0).Opens(); got != 0 {
		t.Errorf("client deadline expiry tripped the shard breaker (opens=%d)", got)
	}
	if r.shardReqs.With("shard-0", "canceled").Value() == 0 {
		t.Error("deadline-expired attempt not recorded as canceled")
	}
	if r.shardReqs.With("shard-0", "error").Value() != 0 {
		t.Error("deadline-expired attempt charged as a shard error")
	}
}

// Torn shard responses (honest Content-Length, half the body, connection
// abort) are failures, not garbage relayed to the client: the router
// retries onto a replica and the client sees a well-formed 200.
func TestRouterRetriesTornResponses(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, nil)
	h := r.Handler()
	u := userHomedOn(t, r, 1)
	shards[1].chaos.SetTornEvery(1)
	rec, body := routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via replica", rec.Code)
	}
	if body.Degraded != DegradedReplica {
		t.Errorf("degraded=%q, want %q", body.Degraded, DegradedReplica)
	}
	if r.retries.Value() == 0 {
		t.Error("torn response did not count a retry")
	}
	if r.shardReqs.With("shard-1", "error").Value() == 0 {
		t.Error("torn response not recorded as a shard-1 error")
	}
}

// A 200 whose body does not decode as a recommendation is a lie the
// attempt layer cannot see (the transfer completed); the response layer
// must degrade rather than relay garbage.
func TestRouterDegradesOnUndecodable200(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `this is not json`)
	}))
	t.Cleanup(garbage.Close)
	_, train := testFixture(t)
	r, err := NewRouter(Config{
		Shards:  []ShardConfig{{Name: "liar", URL: garbage.URL}},
		Train:   train,
		NoHedge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, body := routerGet(t, r.Handler(), "/recommend?user=2&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body.Degraded != DegradedPopRank {
		t.Errorf("degraded=%q, want %q (garbage must not be relayed)", body.Degraded, DegradedPopRank)
	}
}

// Hedging: when the home shard stalls past the hedge delay, a duplicate
// fires at the next replica and its answer wins — tail latency is
// bounded by the replica, and the merely-slow home shard's breaker is
// NOT penalized for losing the race.
func TestRouterHedgesSlowShard(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, func(c *Config) {
		c.NoHedge = false
		c.HedgeDefault = 20 * time.Millisecond
		c.HedgeFloor = time.Millisecond
	})
	h := r.Handler()
	slow := 2
	u := userHomedOn(t, r, slow)
	shards[slow].chaos.SetLatency(400 * time.Millisecond)
	start := time.Now()
	rec, body := routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body.Degraded != DegradedReplica {
		t.Errorf("hedge winner degraded=%q, want %q", body.Degraded, DegradedReplica)
	}
	if elapsed >= 400*time.Millisecond {
		t.Errorf("request took %v — the hedge never rescued it from the %v stall", elapsed, 400*time.Millisecond)
	}
	if r.hedges.Value() == 0 || r.hedgeWins.Value() == 0 {
		t.Errorf("hedges=%d hedgeWins=%d, want both > 0", r.hedges.Value(), r.hedgeWins.Value())
	}
	if r.Breaker(slow).Opens() != 0 {
		t.Error("losing a hedge race tripped the slow shard's breaker")
	}
}

// The /readyz prober ejects a dead shard only after EjectAfter
// consecutive failures and readmits only after ReadmitAfter consecutive
// successes — one dropped probe must not empty the ring.
func TestProberHysteresis(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, nil)
	shards[0].chaos.SetDown(true)
	r.ProbeNow()
	if !r.Available(0) {
		t.Fatal("one failed probe ejected the shard (EjectAfter is 2)")
	}
	r.ProbeNow()
	if r.Available(0) {
		t.Fatal("shard not ejected after EjectAfter consecutive failures")
	}
	if r.ejections.With("shard-0").Value() != 1 {
		t.Errorf("ejections = %d, want 1", r.ejections.With("shard-0").Value())
	}
	shards[0].chaos.SetDown(false)
	r.ProbeNow()
	if r.Available(0) {
		t.Fatal("one good probe readmitted the shard (ReadmitAfter is 2)")
	}
	r.ProbeNow()
	if !r.Available(0) {
		t.Fatal("shard not readmitted after ReadmitAfter consecutive successes")
	}
	if r.readmissions.With("shard-0").Value() != 1 {
		t.Errorf("readmissions = %d, want 1", r.readmissions.With("shard-0").Value())
	}
}

// Router health surfaces: /healthz lists every shard's condition;
// /readyz stays 200 while anything (shard or fallback) can answer.
func TestRouterHealthEndpoints(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, nil)
	h := r.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Eligible != 3 || len(hr.Shards) != 3 {
		t.Errorf("healthy cluster: %+v", hr)
	}
	for _, sh := range shards {
		sh.chaos.SetDown(true)
	}
	r.ProbeNow()
	r.ProbeNow()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || hr.Eligible != 0 {
		t.Errorf("dark cluster healthz: %+v", hr)
	}
	// Poprank fallback still stands, so the router itself remains ready.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("readyz with poprank fallback: %d, want 200", rec.Code)
	}
}

// Rolling reload: every shard's generation advances exactly once, gated
// on quorum; with too few healthy peers the sweep aborts before touching
// anything.
func TestRollingReload(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, nil)
	if err := r.RollingReload(context.Background()); err != nil {
		t.Fatalf("rolling reload: %v", err)
	}
	for i, sh := range shards {
		if g := sh.srv.Generation(); g != 1 {
			t.Errorf("shard %d generation = %d, want 1", i, g)
		}
	}
	if r.reloads.With("ok").Value() != 1 {
		t.Errorf("reloads{ok} = %d, want 1", r.reloads.With("ok").Value())
	}

	// Quorum gate: with two of three shards ejected, no reload may start.
	r.shards[1].available.Store(false)
	r.shards[2].available.Store(false)
	if err := r.RollingReload(context.Background()); err == nil {
		t.Fatal("rolling reload proceeded below quorum")
	}
	if r.reloads.With("quorum_abort").Value() != 1 {
		t.Errorf("reloads{quorum_abort} = %d, want 1", r.reloads.With("quorum_abort").Value())
	}
	for i, sh := range shards {
		if g := sh.srv.Generation(); g != 1 {
			t.Errorf("shard %d generation moved to %d during aborted sweep", i, g)
		}
	}
}

// A shard whose reload endpoint fails keeps its old model and the sweep
// continues — generation skew is bounded, availability is not traded
// for freshness.
func TestRollingReloadContinuesPastFailedShard(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, nil)
	shards[1].srv.EnableAdminReload(func() error { return fmt.Errorf("disk full") })
	err := r.RollingReload(context.Background())
	if err == nil {
		t.Fatal("failed shard reload reported no error")
	}
	want := []uint64{1, 0, 1}
	for i, sh := range shards {
		if g := sh.srv.Generation(); g != want[i] {
			t.Errorf("shard %d generation = %d, want %d", i, g, want[i])
		}
	}
	if r.reloads.With("error").Value() != 1 {
		t.Errorf("reloads{error} = %d, want 1", r.reloads.With("error").Value())
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Error("routerless config accepted")
	}
	if _, err := NewRouter(Config{Shards: []ShardConfig{{Name: "a"}}}); err == nil {
		t.Error("shard without URL accepted")
	}
	if _, err := NewRouter(Config{Shards: []ShardConfig{{URL: "http://x"}}}); err == nil {
		t.Error("shard without name accepted")
	}
}

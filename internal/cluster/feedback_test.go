package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clapf/internal/feedback"
	"clapf/internal/serve"
)

// newFeedbackCluster is newTestCluster plus a live ingest pipeline on
// every shard (temp-dir WAL, fold-in overlay), so the router's write
// path lands on real /feedback handlers.
func newFeedbackCluster(t testing.TB, n int, mut func(*Config)) (*Router, []*testShard, []*feedback.Ingestor) {
	t.Helper()
	r, shards, train := newTestCluster(t, n, mut)
	ings := make([]*feedback.Ingestor, n)
	for i, sh := range shards {
		wal, _, err := feedback.OpenWAL(t.TempDir(), feedback.WALConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { wal.Close() })
		ing := feedback.NewIngestor(wal, train, feedback.Config{}, nil)
		ing.Bind(sh.srv)
		if err := sh.srv.EnableFeedback(ing); err != nil {
			t.Fatal(err)
		}
		ings[i] = ing
	}
	return r, shards, ings
}

func postFeedback(h http.Handler, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/feedback", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}

// The write path has strict affinity: the event lands on the user's home
// shard WAL and nowhere else, and the ack relays the shard's durable
// sequence number.
func TestRouterFeedbackOwnerAffinity(t *testing.T) {
	r, _, ings := newFeedbackCluster(t, 3, nil)
	h := r.Handler()
	u := userHomedOn(t, r, 1)
	rec := postFeedback(h, fmt.Sprintf(`{"user":%d,"item":3}`, u))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp serve.FeedbackResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 1 || resp.Status != "ok" {
		t.Fatalf("resp = %+v, want seq 1 status ok", resp)
	}
	for i, ing := range ings {
		want := uint64(0)
		if i == 1 {
			want = 1
		}
		if got := ing.WAL().LastSeq(); got != want {
			t.Errorf("shard %d WAL seq = %d, want %d", i, got, want)
		}
	}
}

// The router accepts single events only: the shard-side batch form must
// be rejected before routing, because a batch can span owners.
func TestRouterFeedbackRejectsBatches(t *testing.T) {
	r, _, _ := newFeedbackCluster(t, 2, nil)
	h := r.Handler()
	for _, body := range []string{
		`{"events":[{"user":1,"item":2}]}`,
		`{"user":1}`,
		`{"item":2}`,
		`{"user":-1,"item":2}`,
		`not json`,
	} {
		if rec := postFeedback(h, body); rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, rec.Code)
		}
	}
}

// Owner down: the event is buffered with a labeled 202 — never hedged to
// a replica — and the flusher delivers it once the owner heals. Buffer
// full: an honest 503.
func TestRouterFeedbackBufferedAckAndFlush(t *testing.T) {
	r, shards, ings := newFeedbackCluster(t, 3, func(c *Config) {
		c.Feedback.BufferSize = 2
	})
	h := r.Handler()
	u := userHomedOn(t, r, 0)
	shards[0].chaos.SetDown(true)

	for i := 0; i < 2; i++ {
		rec := postFeedback(h, fmt.Sprintf(`{"user":%d,"item":%d}`, u, 3+i))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("post %d: status = %d, want 202; body %s", i, rec.Code, rec.Body.String())
		}
		var resp struct {
			Status   string `json:"status"`
			Degraded string `json:"degraded"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != "buffered" || resp.Degraded != DegradedBuffered {
			t.Fatalf("post %d: resp = %+v, want buffered/buffered", i, resp)
		}
	}
	if got := r.FeedbackBuffered(); got != 2 {
		t.Fatalf("buffered = %d, want 2", got)
	}
	// Third event overflows the bounded buffer.
	if rec := postFeedback(h, fmt.Sprintf(`{"user":%d,"item":9}`, u)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow status = %d, want 503", rec.Code)
	}
	// No event leaked to a replica while the owner was down.
	for i, ing := range ings {
		if seq := ing.WAL().LastSeq(); seq != 0 {
			t.Fatalf("shard %d WAL seq = %d while owner down, want 0", i, seq)
		}
	}

	shards[0].chaos.SetDown(false)
	// The breaker opened against the downed owner; run the flush until
	// its cooldown admits the half-open probe and both events drain.
	for i := 0; r.FeedbackBuffered() > 0 && i < 200; i++ {
		r.FlushFeedbackNow(context.Background())
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.FeedbackBuffered(); got != 0 {
		t.Fatalf("buffered = %d after heal, want 0", got)
	}
	if seq := ings[0].WAL().LastSeq(); seq != 2 {
		t.Fatalf("owner WAL seq = %d after flush, want 2", seq)
	}
	st := r.RouterStats()
	if st.Degraded[DegradedBuffered] != 2 {
		t.Fatalf("degraded[buffered] = %d, want 2", st.Degraded[DegradedBuffered])
	}
}

// A shard-side 4xx is the owner's answer: relayed verbatim, never
// buffered, never retried.
func TestRouterFeedbackRelaysOwnerRejection(t *testing.T) {
	r, _, _ := newFeedbackCluster(t, 2, nil)
	h := r.Handler()
	// Item far out of range: the shard validates and answers 400.
	rec := postFeedback(h, `{"user":1,"item":1000000}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want shard's 400; body %s", rec.Code, rec.Body.String())
	}
	if got := r.FeedbackBuffered(); got != 0 {
		t.Fatalf("buffered = %d, want 0 (4xx is permanent)", got)
	}
}

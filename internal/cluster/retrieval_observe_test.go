package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"clapf/internal/retrieval"
)

// TestProberObservesShardRetrievalMode: the probe sweep records each
// shard's reported retrieval mode, the router's /healthz surfaces it, and
// a shard serving a different mode than the config expects is still
// routable (drift is an alert, not an ejection).
func TestProberObservesShardRetrievalMode(t *testing.T) {
	r, shards, _ := newTestCluster(t, 2, func(c *Config) {
		for i := range c.Shards {
			c.Shards[i].Retrieval = "exact"
		}
	})
	// Shard 1 drifts: it serves IVF while the fleet expects exact.
	if err := shards[1].srv.SetRetrieval(retrieval.ModeIVF,
		retrieval.Config{NLists: 8, NProbe: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	r.ProbeNow()

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	var resp HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Shards) != 2 {
		t.Fatalf("healthz lists %d shards", len(resp.Shards))
	}
	if got := resp.Shards[0].Retrieval; got != "exact" {
		t.Errorf("shard-0 observed retrieval = %q, want exact", got)
	}
	if got := resp.Shards[1].Retrieval; got != "ivf" {
		t.Errorf("shard-1 observed retrieval = %q, want ivf", got)
	}
	for _, sh := range resp.Shards {
		if !sh.Available {
			t.Errorf("shard %s ejected over retrieval drift", sh.Name)
		}
	}
	// The drifted shard must still answer routed traffic.
	u := userHomedOn(t, r, 1)
	if rec, _ := routerGet(t, r.Handler(), fmt.Sprintf("/recommend?user=%d&k=3", u)); rec.Code != http.StatusOK {
		t.Errorf("drifted shard request: status %d", rec.Code)
	}
}

package cluster

import (
	"testing"
	"time"
)

// fakeClock lets breaker tests advance the cooldown without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Failure()
	}
	// A success resets the consecutive count — two more failures must not
	// trip a threshold-3 breaker.
	b.Allow()
	b.Success()
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped on non-consecutive failures")
	}
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker still closed after threshold consecutive failures")
	}
	if b.Allow() {
		t.Error("open breaker admitted an attempt")
	}
	if b.Opens() != 1 {
		t.Errorf("Opens = %d, want 1", b.Opens())
	}
}

func TestBreakerHalfOpenProbeBudgetAndClose(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{
		FailureThreshold: 1, Cooldown: time.Second, ProbeBudget: 1, SuccessThreshold: 2,
	})
	b.Allow()
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt before cooldown")
	}
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused its first probe")
	}
	if b.Allow() {
		t.Fatal("probe budget 1 admitted a second concurrent probe")
	}
	b.Success() // releases the slot; 1 of 2 successes
	if b.State() != BreakerHalfOpen {
		t.Fatal("breaker closed after one success with SuccessThreshold 2")
	}
	if !b.Allow() {
		t.Fatal("released probe slot not reusable")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("breaker not closed after SuccessThreshold probe successes")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe refused")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if b.Opens() != 2 {
		t.Errorf("Opens = %d, want 2", b.Opens())
	}
	// The cooldown restarted at the probe failure: still open until it
	// elapses again.
	clk.advance(time.Second - time.Millisecond)
	if b.Allow() {
		t.Error("reopened breaker admitted an attempt before the restarted cooldown")
	}
}

// Cancel must release a half-open probe reservation without an outcome:
// a hedge race loser says nothing about shard health, so it must neither
// close nor reopen the breaker — and the budget must not leak.
func TestBreakerCancelReleasesProbeSlot(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{
		FailureThreshold: 1, Cooldown: time.Second, ProbeBudget: 1, SuccessThreshold: 1,
	})
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe refused")
	}
	b.Cancel()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("Cancel changed state to %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("probe slot leaked by Cancel: budget exhausted")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("breaker did not close after a real probe success")
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"clapf/internal/obs/trace"
)

// DegradedBuffered labels a feedback acknowledgement that is NOT yet
// durable on the owning shard: the event sits in the router's in-memory
// buffer awaiting the flusher. It extends the degradation ladder for
// writes the way replica/stale_cache/poprank do for reads — the client is
// told exactly what it got (202, "buffered") and can choose to retry
// later if it needs the stronger guarantee.
const DegradedBuffered = "buffered"

// FeedbackConfig tunes the router's write path. Zero values take
// defaults (applied by NewRouter via withDefaults).
type FeedbackConfig struct {
	// BufferSize bounds the buffered-ack queue. When the owning shard is
	// down and the buffer is full, /feedback returns an honest 503 —
	// unbounded buffering would just convert a shard outage into a router
	// OOM. Default 4096; negative disables buffering entirely (shard down
	// means 503, no weaker rung).
	BufferSize int
	// FlushInterval is how often the background flusher retries buffered
	// events against their owners. Default 250ms.
	FlushInterval time.Duration
	// AttemptTimeout is the per-event deadline against the owning shard.
	// Writes get their own budget because a feedback append fsyncs on the
	// shard: it is slower than a read and must not inherit read-tuned
	// impatience. Default 5s.
	AttemptTimeout time.Duration
}

func (c FeedbackConfig) withDefaults() FeedbackConfig {
	if c.BufferSize == 0 {
		c.BufferSize = 4096
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 250 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 5 * time.Second
	}
	return c
}

// feedbackEvent is one buffered write: the already-validated body plus
// the ring key it routes by.
type feedbackEvent struct {
	key  uint64
	body []byte
}

// feedbackBuffer is the bounded FIFO behind buffered acks, plus the
// flusher's lifecycle. Guarded by mu; the flusher drains head-first so
// event order per user is preserved (one user's events share a ring key
// and therefore an owner).
type feedbackBuffer struct {
	mu     sync.Mutex
	events []feedbackEvent
	cap    int

	flushing bool
	stop     chan struct{}
	done     chan struct{}
}

func (b *feedbackBuffer) push(ev feedbackEvent) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) >= b.cap {
		return false
	}
	b.events = append(b.events, ev)
	return true
}

func (b *feedbackBuffer) size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// feedbackRequest mirrors the shard's single-event payload. The router
// deliberately rejects the shard's batch form ("events"): a batch can
// span users and therefore shards, and tearing it into per-shard
// sub-batches would turn one client write into a multi-shard transaction
// the durability contract cannot honestly describe. One event, one
// owner, one ack.
type feedbackRequest struct {
	User *int32 `json:"user"`
	Item *int32 `json:"item"`
}

// maxFeedbackBody bounds the /feedback request body; a single event is
// tens of bytes.
const maxFeedbackBody = 4 << 10

// handleFeedback forwards one feedback event to the user's owning shard.
// Unlike the read path, the write path has strict affinity and no
// failover:
//
//   - Only the ring owner (preference position 0) is attempted — the
//     owner's WAL is the durability domain for that user's events;
//     appending to a replica would scatter one user's log across shards.
//   - Never hedged and never retried against another shard — a duplicate
//     append is a real duplicate event, not a free race win.
//   - When the owner is down (ejected, breaker open, attempt failed) the
//     event is buffered in the router and the client gets a labeled
//     202 {"status":"buffered","degraded":"buffered"}; the background
//     flusher delivers it when the owner returns. A full buffer is an
//     honest 503.
func (r *Router) handleFeedback(w http.ResponseWriter, req *http.Request) {
	req.Body = http.MaxBytesReader(w, req.Body, maxFeedbackBody)
	raw, err := io.ReadAll(req.Body)
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "feedback body too large"})
		return
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var fr feedbackRequest
	if err := dec.Decode(&fr); err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("malformed feedback request (the router accepts single {user,item} events only): %v", err)})
		return
	}
	if fr.User == nil || fr.Item == nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "feedback needs both user and item"})
		return
	}
	if *fr.User < 0 || *fr.Item < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "user and item must be non-negative"})
		return
	}
	key := UserKey(*fr.User)
	res := r.tryFeedbackOwner(req.Context(), key, raw)
	if res.err == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
		return
	}
	r.bufferFeedback(w, key, raw)
}

// tryFeedbackOwner POSTs the event to the ring owner, breaker-gated,
// exactly once. err != nil means the owner did not durably accept it
// (ineligible, breaker open, transport failure, 5xx/429); a 4xx is the
// owner's answer and is relayed, not buffered — replaying a request the
// shard already rejected as malformed would loop forever.
func (r *Router) tryFeedbackOwner(ctx context.Context, key uint64, body []byte) attemptResult {
	fc := r.cfg.Feedback.withDefaults()
	sh := r.shards[r.ring.Lookup(key)[0]]
	now := time.Now()
	if !sh.eligible(now) {
		return attemptResult{shard: sh, err: fmt.Errorf("cluster: owner %s unavailable", sh.name)}
	}
	if !sh.breaker.Allow() {
		return attemptResult{shard: sh, err: fmt.Errorf("cluster: owner %s breaker open", sh.name)}
	}
	actx, cancel := context.WithTimeout(ctx, fc.AttemptTimeout)
	defer cancel()
	sp := trace.StartSpanNoCtx(ctx, "shard:"+sh.name)
	defer sp.End()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, sh.url+"/feedback", bytes.NewReader(body))
	if err != nil {
		sh.breaker.Cancel()
		return attemptResult{shard: sh, err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	trace.Inject(ctx, hreq.Header)
	resp, err := r.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			sh.breaker.Cancel()
			r.shardReqs.With(sh.name, "canceled").Inc()
			return attemptResult{shard: sh, err: err}
		}
		r.shardFailure(sh)
		return attemptResult{shard: sh, err: err}
	}
	rbody, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr != nil {
		// A torn response to a write is the ambiguous case: the shard may
		// or may not have appended. Buffering would risk a duplicate, so
		// treat it like any owner failure — the flusher redelivers and the
		// shard's ingest dedupe (same user+item never grows history twice)
		// absorbs the repeat.
		if ctx.Err() != nil {
			sh.breaker.Cancel()
			r.shardReqs.With(sh.name, "canceled").Inc()
			return attemptResult{shard: sh, err: readErr}
		}
		r.shardFailure(sh)
		return attemptResult{shard: sh, err: fmt.Errorf("cluster: torn response from %s: %w", sh.name, readErr)}
	}
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				sh.notBefore.Store(time.Now().Add(time.Duration(secs) * time.Second).UnixNano())
			}
		}
		r.shardFailure(sh)
		return attemptResult{shard: sh, status: resp.StatusCode, body: rbody,
			err: fmt.Errorf("cluster: shard %s returned %d", sh.name, resp.StatusCode)}
	}
	sh.breaker.Success()
	r.shardReqs.With(sh.name, "ok").Inc()
	return attemptResult{shard: sh, status: resp.StatusCode, body: rbody}
}

// bufferFeedback is the write path's single degradation rung: enqueue
// and label, or refuse.
func (r *Router) bufferFeedback(w http.ResponseWriter, key uint64, body []byte) {
	if r.fbuf == nil || !r.fbuf.push(feedbackEvent{key: key, body: body}) {
		r.unavailable.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(1+r.rng.Intn(3)))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "owning shard unavailable and feedback buffer full"})
		return
	}
	r.degraded.With(DegradedBuffered).Inc()
	r.feedbackBuffered.Inc()
	writeJSON(w, http.StatusAccepted, struct {
		Status   string `json:"status"`
		Degraded string `json:"degraded"`
	}{Status: "buffered", Degraded: DegradedBuffered})
}

// StartFeedbackFlusher launches the background loop that redelivers
// buffered feedback to owning shards, returning a stop function.
// Idempotent like StartProber. No-op (immediately stopped) when
// buffering is disabled.
func (r *Router) StartFeedbackFlusher() (stop func()) {
	if r.fbuf == nil {
		return func() {}
	}
	r.fbuf.mu.Lock()
	if r.fbuf.flushing {
		r.fbuf.mu.Unlock()
		return func() {}
	}
	r.fbuf.flushing = true
	r.fbuf.stop = make(chan struct{})
	r.fbuf.done = make(chan struct{})
	stopCh, doneCh := r.fbuf.stop, r.fbuf.done
	r.fbuf.mu.Unlock()
	fc := r.cfg.Feedback.withDefaults()
	go func() {
		defer close(doneCh)
		t := time.NewTicker(fc.FlushInterval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				r.FlushFeedbackNow(context.Background())
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
	}
}

// FlushFeedbackNow synchronously attempts every buffered event against
// its owner, in arrival order, and reports how many were delivered.
// Events whose owner is still down go back to the buffer in order;
// events the owner rejects with a 4xx are dropped (they will never
// succeed) with a log line. Exported so tests and drains can force a
// flush without waiting for the ticker.
func (r *Router) FlushFeedbackNow(ctx context.Context) (delivered int) {
	if r.fbuf == nil {
		return 0
	}
	r.fbuf.mu.Lock()
	pending := r.fbuf.events
	r.fbuf.events = nil
	r.fbuf.mu.Unlock()
	if len(pending) == 0 {
		return 0
	}
	var requeue []feedbackEvent
	for i, ev := range pending {
		res := r.tryFeedbackOwner(ctx, ev.key, ev.body)
		if res.err == nil && res.status < 400 {
			delivered++
			r.feedbackFlushed.Inc()
			continue
		}
		if res.err == nil {
			// Owner answered 4xx: permanent, drop rather than loop.
			r.log.Warn("dropping buffered feedback rejected by owner",
				"shard", res.shard.name, "status", res.status)
			continue
		}
		// Owner still down: keep this and everything after it, in order,
		// so per-user sequencing survives partial flushes.
		requeue = append(requeue, pending[i:]...)
		break
	}
	if len(requeue) > 0 {
		r.fbuf.mu.Lock()
		// New arrivals landed behind the batch we took; requeued events
		// precede them chronologically.
		r.fbuf.events = append(requeue, r.fbuf.events...)
		over := len(r.fbuf.events) - r.fbuf.cap
		r.fbuf.mu.Unlock()
		if over > 0 {
			r.log.Warn("feedback buffer over capacity after requeue", "over", over)
		}
	}
	return delivered
}

// FeedbackBuffered returns the current buffered-event count (tests,
// /healthz).
func (r *Router) FeedbackBuffered() int {
	if r.fbuf == nil {
		return 0
	}
	return r.fbuf.size()
}

package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClusterChaos is the availability proof the whole package exists
// for: three shards, concurrent load, one shard killed mid-load and
// later revived. Required outcomes:
//
//   - ≥ 99% of requests answer HTTP 200 throughout (here: 100%);
//   - every response not served fresh by the user's home shard is
//     labeled degraded — degradation is never silent;
//   - the dead shard's circuit breaker opens within its threshold;
//   - the prober ejects the dead shard and readmits it after recovery,
//     after which the shard's users get fresh home-shard answers again.
//
// scripts/check.sh runs this test under -race as the cluster chaos
// smoke; keep the name prefix stable.
func TestClusterChaos(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, func(c *Config) {
		c.Breaker = BreakerConfig{FailureThreshold: 3, Cooldown: 150 * time.Millisecond, SuccessThreshold: 1}
		c.Probe = ProbeConfig{Interval: 10 * time.Millisecond, Timeout: time.Second, EjectAfter: 2, ReadmitAfter: 2}
	})
	stop := r.StartProber()
	defer stop()
	h := r.Handler()

	const victim = 0
	victimName := fmt.Sprintf("shard-%d", victim)

	var (
		total, ok200 atomic.Int64
		silent       atomic.Int64 // off-home 200s with no degraded label
		degradedN    atomic.Int64
		failBodies   sync.Mutex
		failSamples  []string
	)
	var stopLoad atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stopLoad.Load(); i++ {
				u := int32((i*7 + w) % 60)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
					fmt.Sprintf("/recommend?user=%d&k=5", u), nil))
				total.Add(1)
				if rec.Code != http.StatusOK {
					failBodies.Lock()
					if len(failSamples) < 5 {
						failSamples = append(failSamples, fmt.Sprintf("user %d: %d %s", u, rec.Code, rec.Body.String()))
					}
					failBodies.Unlock()
					continue
				}
				ok200.Add(1)
				var body Response
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					t.Errorf("undecodable 200 from router: %v", err)
					continue
				}
				if body.Degraded != "" {
					degradedN.Add(1)
					continue
				}
				// An unlabeled 200 must be a fresh answer from the user's
				// home shard — anything else is silent degradation.
				if body.Shard != fmt.Sprintf("shard-%d", homeOf(r, u)) {
					silent.Add(1)
				}
			}
		}(w)
	}

	// Phase 1: healthy warmup under load.
	time.Sleep(150 * time.Millisecond)

	// Phase 2: kill one shard mid-load; the breaker must open and the
	// prober must eject it, all while the hammer keeps running.
	shards[victim].chaos.SetDown(true)
	deadline := time.Now().Add(5 * time.Second)
	for r.Breaker(victim).Opens() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Breaker(victim).Opens() == 0 {
		t.Error("victim's breaker never opened under sustained failures")
	}
	for r.Available(victim) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Available(victim) {
		t.Error("prober never ejected the dead shard")
	}
	// Let the degraded regime serve for a while.
	time.Sleep(150 * time.Millisecond)

	// Phase 3: revive; the prober must readmit after its hysteresis.
	shards[victim].chaos.SetDown(false)
	for !r.Available(victim) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !r.Available(victim) {
		t.Fatal("prober never readmitted the recovered shard")
	}

	stopLoad.Store(true)
	wg.Wait()

	if total.Load() == 0 {
		t.Fatal("no load was driven; the test proved nothing")
	}
	avail := float64(ok200.Load()) / float64(total.Load())
	t.Logf("chaos run: %d requests, %.4f%% answered 200, %d degraded-labeled",
		total.Load(), 100*avail, degradedN.Load())
	if avail < 0.99 {
		t.Errorf("availability %.4f with one of three shards down, want >= 0.99; sample failures: %v",
			avail, failSamples)
	}
	if silent.Load() != 0 {
		t.Errorf("%d responses were silently degraded (off-home 200 without a degraded label)", silent.Load())
	}
	if degradedN.Load() == 0 {
		t.Error("no response was ever labeled degraded while a shard was down — the kill did not bite")
	}
	if r.ejections.With(victimName).Value() == 0 {
		t.Error("ejection metric never fired")
	}
	if r.readmissions.With(victimName).Value() == 0 {
		t.Error("readmission metric never fired")
	}

	// Phase 4: after readmission (and the breaker's half-open probe),
	// the victim's users must get fresh home-shard answers again.
	u := userHomedOn(t, r, victim)
	recoverBy := time.Now().Add(5 * time.Second)
	for {
		rec, body := routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
		if rec.Code == http.StatusOK && body.Degraded == "" && body.Shard == victimName {
			break
		}
		if time.Now().After(recoverBy) {
			t.Fatalf("traffic never returned to the revived shard: status %d shard %q degraded %q",
				rec.Code, body.Shard, body.Degraded)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterChaosRouterSurvivesTotalLoss is the darkest corner: every
// shard dies at once and the router itself must stay up, answering with
// fallbacks where it can and honest 503s where it cannot — never a
// panic, never a hung request.
func TestClusterChaosRouterSurvivesTotalLoss(t *testing.T) {
	r, shards, _ := newTestCluster(t, 3, func(c *Config) {
		c.AttemptTimeout = 500 * time.Millisecond
	})
	h := r.Handler()
	// Prime two users so the stale rung has something to stand on.
	routerGet(t, h, "/recommend?user=1&k=5")
	routerGet(t, h, "/recommend?user=2&k=5")
	for _, sh := range shards {
		sh.chaos.SetDown(true)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			u := i % 60
			rec, body := routerGet(t, h, fmt.Sprintf("/recommend?user=%d&k=5", u))
			switch rec.Code {
			case http.StatusOK:
				if body.Degraded == "" {
					t.Errorf("user %d: fresh answer from a fully dark cluster", u)
				}
			case http.StatusServiceUnavailable:
				// honest refusal — acceptable
			default:
				t.Errorf("user %d: status %d from dark cluster", u, rec.Code)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("requests hung against a fully dark cluster")
	}
}

package neural

import (
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/eval"
	"clapf/internal/mathx"
)

func neuralSplit(t *testing.T) (train, test *dataset.Dataset) {
	t.Helper()
	// Neural models need realistic sparsity: at high density the pointwise
	// all-unobserved-is-negative training actively anti-learns the held-out
	// positives (the overfitting pathology §6.4.1 attributes to deep models).
	w, err := datagen.Generate(datagen.Profile{
		Name: "nn", Users: 300, Items: 600, Pairs: 7000,
		ZipfExp: 0.6, Dim: 4, Affinity: 6,
	}, mathx.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	return dataset.Split(w.Data, mathx.NewRNG(32), 0.5)
}

func TestNeuMFConfigValidation(t *testing.T) {
	bad := []NeuMFConfig{
		{GMFDim: 0, MLPDim: 4, Hidden: []int{4, 1}, LearnRate: 0.1, NegRatio: 1, Epochs: 1},
		{GMFDim: 4, MLPDim: 0, Hidden: []int{4, 1}, LearnRate: 0.1, NegRatio: 1, Epochs: 1},
		{GMFDim: 4, MLPDim: 4, Hidden: nil, LearnRate: 0.1, NegRatio: 1, Epochs: 1},
		{GMFDim: 4, MLPDim: 4, Hidden: []int{4, 1}, LearnRate: 0, NegRatio: 1, Epochs: 1},
		{GMFDim: 4, MLPDim: 4, Hidden: []int{4, 1}, LearnRate: 0.1, NegRatio: 0, Epochs: 1},
		{GMFDim: 4, MLPDim: 4, Hidden: []int{4, 1}, LearnRate: 0.1, NegRatio: 1, Epochs: 0},
		{GMFDim: 4, MLPDim: 4, Hidden: []int{4, -1}, LearnRate: 0.1, NegRatio: 1, Epochs: 1},
	}
	for i, cfg := range bad {
		if _, err := NewNeuMF(cfg); err == nil {
			t.Errorf("bad NeuMF config %d accepted", i)
		}
	}
	if _, err := NewNeuMF(DefaultNeuMFConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNeuMFLearns(t *testing.T) {
	train, test := neuralSplit(t)
	cfg := DefaultNeuMFConfig()
	cfg.Epochs = 6
	cfg.Seed = 41
	m, err := NewNeuMF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := eval.Evaluate(m, train, test, eval.Options{Ks: []int{5}})
	if res.AUC < 0.7 {
		t.Errorf("NeuMF AUC = %.3f, want >= 0.7", res.AUC)
	}
	if m.Name() != "NeuMF" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestNeuPRConfigValidation(t *testing.T) {
	bad := []NeuPRConfig{
		{Dim: 0, Hidden: []int{4, 1}, LearnRate: 0.1, Steps: 1},
		{Dim: 4, Hidden: []int{4, 2}, LearnRate: 0.1, Steps: 1}, // must end in 1
		{Dim: 4, Hidden: nil, LearnRate: 0.1, Steps: 1},
		{Dim: 4, Hidden: []int{4, 1}, LearnRate: 0, Steps: 1},
		{Dim: 4, Hidden: []int{4, 1}, LearnRate: 0.1, Steps: -1},
	}
	for i, cfg := range bad {
		if _, err := NewNeuPR(cfg); err == nil {
			t.Errorf("bad NeuPR config %d accepted", i)
		}
	}
}

func TestNeuPRLearns(t *testing.T) {
	train, test := neuralSplit(t)
	cfg := DefaultNeuPRConfig(train.NumPairs())
	cfg.Steps = 50000
	cfg.Seed = 42
	m, err := NewNeuPR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := eval.Evaluate(m, train, test, eval.Options{Ks: []int{5}})
	if res.AUC < 0.65 {
		t.Errorf("NeuPR AUC = %.3f, want >= 0.65", res.AUC)
	}
}

func TestDeepICFConfigValidation(t *testing.T) {
	bad := []DeepICFConfig{
		{Dim: 0, Hidden: []int{4, 1}, LearnRate: 0.1, NegRatio: 1, Epochs: 1},
		{Dim: 4, Hidden: []int{4, 3}, LearnRate: 0.1, NegRatio: 1, Epochs: 1},
		{Dim: 4, Hidden: []int{4, 1}, Beta: 2, LearnRate: 0.1, NegRatio: 1, Epochs: 1},
		{Dim: 4, Hidden: []int{4, 1}, MaxHist: -1, LearnRate: 0.1, NegRatio: 1, Epochs: 1},
		{Dim: 4, Hidden: []int{4, 1}, LearnRate: 0.1, NegRatio: 0, Epochs: 1},
	}
	for i, cfg := range bad {
		if _, err := NewDeepICF(cfg); err == nil {
			t.Errorf("bad DeepICF config %d accepted", i)
		}
	}
}

func TestDeepICFLearns(t *testing.T) {
	train, test := neuralSplit(t)
	cfg := DefaultDeepICFConfig()
	cfg.Epochs = 4
	cfg.Seed = 43
	m, err := NewDeepICF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	res := eval.Evaluate(m, train, test, eval.Options{Ks: []int{5}})
	if res.AUC < 0.55 {
		t.Errorf("DeepICF AUC = %.3f, want >= 0.55", res.AUC)
	}
}

func TestDeepICFHistoryCap(t *testing.T) {
	train, _ := neuralSplit(t)
	cfg := DefaultDeepICFConfig()
	cfg.MaxHist = 4
	cfg.Epochs = 1
	m, err := NewDeepICF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, u := range train.UsersWithAtLeast(10)[:3] {
		obs := train.Positives(u)
		h := m.history(u, obs[0])
		if len(h) > 4 {
			t.Fatalf("history length %d exceeds cap", len(h))
		}
		for _, l := range h {
			if l == obs[0] {
				t.Fatal("target item leaked into its own history")
			}
		}
	}
}

func TestNeuralModelsDeterministic(t *testing.T) {
	train, _ := neuralSplit(t)
	score := func() float64 {
		cfg := DefaultNeuMFConfig()
		cfg.Epochs = 2
		cfg.Seed = 77
		m, err := NewNeuMF(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, train.NumItems())
		m.ScoreAll(5, out)
		return mathx.Sum(out)
	}
	if a, b := score(), score(); a != b {
		t.Errorf("NeuMF not deterministic under fixed seed: %v vs %v", a, b)
	}
}

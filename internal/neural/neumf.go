package neural

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
)

// NeuMF is the advanced NCF instantiation of He et al. (WWW 2017): a
// generalized matrix factorization (GMF) branch — the elementwise product
// of user and item embeddings — concatenated with a multi-layer perceptron
// branch over concatenated embeddings, projected to one logit and trained
// as pointwise binary classification with sampled negatives.
type NeuMF struct {
	cfg NeuMFConfig

	gmfUser *Embedding
	gmfItem *Embedding
	mlpUser *Embedding
	mlpItem *Embedding
	tower   *MLP
	out     *Dense // 1 × (gmfDim + towerOut)

	concat []float64 // tower input buffer
	final  []float64 // output-layer input buffer
}

// NeuMFConfig tunes the model. The paper's setup (§6.3) uses four MLP
// layers and searches embedding sizes {4, 8, 16, 32}.
type NeuMFConfig struct {
	GMFDim    int
	MLPDim    int   // per-side embedding for the MLP branch
	Hidden    []int // hidden widths after the 2·MLPDim input
	LearnRate float64
	NegRatio  int // negatives sampled per positive
	Epochs    int // passes over the positive pairs
	// WeightDecay is decoupled L2 regularization applied by Adam; the
	// paper notes deep models overfit sparse implicit data, and without
	// this the pointwise models memorize the training matrix.
	WeightDecay float64
	Seed        uint64
}

// DefaultNeuMFConfig mirrors the paper's mid-range choice: embedding 8,
// four-layer tower.
func DefaultNeuMFConfig() NeuMFConfig {
	return NeuMFConfig{
		GMFDim:    8,
		MLPDim:    8,
		Hidden:    []int{16, 8, 4},
		LearnRate: 0.001,
		NegRatio:  4,
		Epochs:    20,
	}
}

// Validate reports the first problem with the configuration.
func (c NeuMFConfig) Validate() error {
	switch {
	case c.GMFDim <= 0:
		return fmt.Errorf("neural: NeuMF GMFDim = %d, want > 0", c.GMFDim)
	case c.MLPDim <= 0:
		return fmt.Errorf("neural: NeuMF MLPDim = %d, want > 0", c.MLPDim)
	case len(c.Hidden) == 0:
		return fmt.Errorf("neural: NeuMF needs at least one hidden layer")
	case c.LearnRate <= 0:
		return fmt.Errorf("neural: NeuMF LearnRate = %v, want > 0", c.LearnRate)
	case c.NegRatio < 1:
		return fmt.Errorf("neural: NeuMF NegRatio = %d, want >= 1", c.NegRatio)
	case c.Epochs < 1:
		return fmt.Errorf("neural: NeuMF Epochs = %d, want >= 1", c.Epochs)
	}
	for _, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("neural: NeuMF hidden width %d, want > 0", h)
		}
	}
	return nil
}

// NewNeuMF validates the configuration; parameters are allocated at Fit
// time when the dataset dimensions are known.
func NewNeuMF(cfg NeuMFConfig) (*NeuMF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &NeuMF{cfg: cfg}, nil
}

// Name implements the Recommender convention.
func (n *NeuMF) Name() string { return "NeuMF" }

func (n *NeuMF) build(numUsers, numItems int, rng *mathx.RNG) error {
	c := n.cfg
	n.gmfUser = NewEmbedding(numUsers, c.GMFDim)
	n.gmfItem = NewEmbedding(numItems, c.GMFDim)
	n.mlpUser = NewEmbedding(numUsers, c.MLPDim)
	n.mlpItem = NewEmbedding(numItems, c.MLPDim)
	for _, e := range []*Embedding{n.gmfUser, n.gmfItem, n.mlpUser, n.mlpItem} {
		e.InitGaussian(rng, 0.05)
	}
	sizes := append([]int{2 * c.MLPDim}, c.Hidden...)
	tower, err := NewMLP(sizes, rng)
	if err != nil {
		return err
	}
	n.tower = tower
	n.out = NewDense(c.GMFDim+tower.OutDim(), 1, rng)
	n.concat = make([]float64, 2*c.MLPDim)
	n.final = make([]float64, c.GMFDim+tower.OutDim())
	return nil
}

// logit runs the forward pass for one (u, i) pair.
func (n *NeuMF) logit(u, i int32) float64 {
	pg, qg := n.gmfUser.Row(u), n.gmfItem.Row(i)
	for k := 0; k < n.cfg.GMFDim; k++ {
		n.final[k] = pg[k] * qg[k]
	}
	copy(n.concat, n.mlpUser.Row(u))
	copy(n.concat[n.cfg.MLPDim:], n.mlpItem.Row(i))
	h := n.tower.Forward(n.concat)
	copy(n.final[n.cfg.GMFDim:], h)
	return n.out.Forward(n.final)[0]
}

// trainStep runs forward + backward + optimizer for one labelled pair.
func (n *NeuMF) trainStep(u, i int32, label float64, opt AdamConfig) {
	z := n.logit(u, i)
	dz := mathx.Sigmoid(z) - label // ∂BCE/∂logit

	dFinal := n.out.Backward([]float64{dz})
	// GMF branch: d(p⊙q) flows to both embeddings.
	pg, qg := n.gmfUser.Row(u), n.gmfItem.Row(i)
	gdim := n.cfg.GMFDim
	gp := make([]float64, gdim)
	gq := make([]float64, gdim)
	for k := 0; k < gdim; k++ {
		gp[k] = dFinal[k] * qg[k]
		gq[k] = dFinal[k] * pg[k]
	}
	n.gmfUser.AccumGrad(u, gp)
	n.gmfItem.AccumGrad(i, gq)
	// MLP branch.
	dConcat := n.tower.Backward(dFinal[gdim:])
	n.mlpUser.AccumGrad(u, dConcat[:n.cfg.MLPDim])
	n.mlpItem.AccumGrad(i, dConcat[n.cfg.MLPDim:])

	for _, p := range n.denseParams() {
		p.Step(opt)
	}
	for _, e := range []*Embedding{n.gmfUser, n.gmfItem, n.mlpUser, n.mlpItem} {
		e.Step(opt)
	}
}

func (n *NeuMF) denseParams() []*Param {
	ps := n.tower.Params()
	return append(ps, n.out.Params()...)
}

// Fit trains with pointwise log loss: every observed pair is a positive
// example, paired with NegRatio uniformly sampled unobserved negatives.
func (n *NeuMF) Fit(train *dataset.Dataset) error {
	rng := mathx.NewRNG(n.cfg.Seed)
	if err := n.build(train.NumUsers(), train.NumItems(), rng.Split()); err != nil {
		return err
	}
	pairs := train.Interactions()
	if len(pairs) == 0 {
		return fmt.Errorf("neural: NeuMF has no training pairs")
	}
	opt := DefaultAdam(n.cfg.LearnRate)
	opt.WeightDecay = n.cfg.WeightDecay
	order := make([]int, len(pairs))
	for idx := range order {
		order[idx] = idx
	}
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, idx := range order {
			p := pairs[idx]
			n.trainStep(p.User, p.Item, 1, opt)
			for neg := 0; neg < n.cfg.NegRatio; neg++ {
				j := sampleUnobserved(train, p.User, rng)
				n.trainStep(p.User, j, 0, opt)
			}
		}
	}
	return nil
}

// sampleUnobserved draws a training-unobserved item for u.
func sampleUnobserved(d *dataset.Dataset, u int32, rng *mathx.RNG) int32 {
	m := d.NumItems()
	for {
		j := int32(rng.Intn(m))
		if !d.IsPositive(u, j) {
			return j
		}
	}
}

// ScoreAll implements eval.Scorer: the predicted probability is monotone in
// the logit, so the raw logit ranks identically and avoids m sigmoid calls.
func (n *NeuMF) ScoreAll(u int32, out []float64) {
	for i := range out {
		out[i] = n.logit(u, int32(i))
	}
}

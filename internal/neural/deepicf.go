package neural

import (
	"fmt"
	"math"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
)

// DeepICF is the deep item-based CF model of Xue et al. (TOIS 2019): the
// prediction for (u, i) pools the pairwise interactions between the target
// item and the user's historical items,
//
//	x = |I_u \ {i}|^(−β) · Σ_{l ∈ I_u\{i}} (q_l ⊙ q_i),
//
// feeds x through an MLP to a logit, and trains pointwise with sampled
// negatives — the repository's representative pointwise neural baseline.
type DeepICF struct {
	cfg   DeepICFConfig
	item  *Embedding
	tower *MLP
	data  *dataset.Dataset

	pooled []float64
}

// DeepICFConfig tunes the model.
type DeepICFConfig struct {
	Dim       int     // item embedding size
	Hidden    []int   // tower widths after the Dim input; last must be 1
	Beta      float64 // pooling exponent β ∈ [0, 1]
	MaxHist   int     // cap on history items pooled per example (0 = all)
	LearnRate float64
	NegRatio  int
	Epochs    int
	// WeightDecay is decoupled L2 regularization applied by Adam; the
	// paper notes deep models overfit sparse implicit data, and without
	// this the pointwise models memorize the training matrix.
	WeightDecay float64
	Seed        uint64
}

// DefaultDeepICFConfig mirrors the paper's four-layer setup.
func DefaultDeepICFConfig() DeepICFConfig {
	return DeepICFConfig{
		Dim:       8,
		Hidden:    []int{16, 8, 1},
		Beta:      0.5,
		MaxHist:   32,
		LearnRate: 0.001,
		NegRatio:  4,
		Epochs:    20,
	}
}

// Validate reports the first problem with the configuration.
func (c DeepICFConfig) Validate() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("neural: DeepICF Dim = %d, want > 0", c.Dim)
	case len(c.Hidden) == 0 || c.Hidden[len(c.Hidden)-1] != 1:
		return fmt.Errorf("neural: DeepICF Hidden must end in width 1, got %v", c.Hidden)
	case c.Beta < 0 || c.Beta > 1:
		return fmt.Errorf("neural: DeepICF Beta = %v, want [0,1]", c.Beta)
	case c.MaxHist < 0:
		return fmt.Errorf("neural: DeepICF MaxHist = %d, want >= 0", c.MaxHist)
	case c.LearnRate <= 0:
		return fmt.Errorf("neural: DeepICF LearnRate = %v, want > 0", c.LearnRate)
	case c.NegRatio < 1:
		return fmt.Errorf("neural: DeepICF NegRatio = %d, want >= 1", c.NegRatio)
	case c.Epochs < 1:
		return fmt.Errorf("neural: DeepICF Epochs = %d, want >= 1", c.Epochs)
	}
	return nil
}

// NewDeepICF validates the configuration.
func NewDeepICF(cfg DeepICFConfig) (*DeepICF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DeepICF{cfg: cfg}, nil
}

// Name implements the Recommender convention.
func (d *DeepICF) Name() string { return "DeepICF" }

// history returns the items pooled for (u, target): the user's observed
// items excluding the target, capped at MaxHist by deterministic stride.
func (d *DeepICF) history(u, target int32) []int32 {
	obs := d.data.Positives(u)
	hist := make([]int32, 0, len(obs))
	for _, l := range obs {
		if l != target {
			hist = append(hist, l)
		}
	}
	if d.cfg.MaxHist > 0 && len(hist) > d.cfg.MaxHist {
		// Deterministic thinning keeps scoring reproducible.
		stride := float64(len(hist)) / float64(d.cfg.MaxHist)
		out := make([]int32, d.cfg.MaxHist)
		for k := range out {
			out[k] = hist[int(float64(k)*stride)]
		}
		hist = out
	}
	return hist
}

// pool computes x for (u, i) and returns the history used and the pooling
// coefficient.
func (d *DeepICF) pool(u, i int32) ([]int32, float64) {
	hist := d.history(u, i)
	mathx.Fill(d.pooled, 0)
	if len(hist) == 0 {
		return hist, 0
	}
	coeff := math.Pow(float64(len(hist)), -d.cfg.Beta)
	qi := d.item.Row(i)
	for _, l := range hist {
		ql := d.item.Row(l)
		for k := range d.pooled {
			d.pooled[k] += ql[k] * qi[k]
		}
	}
	mathx.Scale(coeff, d.pooled)
	return hist, coeff
}

// logit scores one (u, i) pair.
func (d *DeepICF) logit(u, i int32) float64 {
	d.pool(u, i)
	return d.tower.Forward(d.pooled)[0]
}

// trainStep runs one labelled example.
func (d *DeepICF) trainStep(u, i int32, label float64, opt AdamConfig) {
	hist, coeff := d.pool(u, i)
	z := d.tower.Forward(d.pooled)[0]
	dz := mathx.Sigmoid(z) - label
	dx := d.tower.Backward([]float64{dz})

	if len(hist) > 0 {
		qi := d.item.Row(i)
		// ∂x/∂q_i = coeff·Σ_l q_l ⊙ dx; ∂x/∂q_l = coeff·(q_i ⊙ dx).
		gi := make([]float64, d.cfg.Dim)
		gl := make([]float64, d.cfg.Dim)
		for _, l := range hist {
			ql := d.item.Row(l)
			for k := 0; k < d.cfg.Dim; k++ {
				gi[k] += coeff * dx[k] * ql[k]
				gl[k] = coeff * dx[k] * qi[k]
			}
			d.item.AccumGrad(l, gl)
		}
		d.item.AccumGrad(i, gi)
	}

	for _, p := range d.tower.Params() {
		p.Step(opt)
	}
	d.item.Step(opt)
}

// Fit trains pointwise with sampled negatives.
func (d *DeepICF) Fit(train *dataset.Dataset) error {
	rng := mathx.NewRNG(d.cfg.Seed)
	d.data = train
	d.item = NewEmbedding(train.NumItems(), d.cfg.Dim)
	d.item.InitGaussian(rng.Split(), 0.05)
	sizes := append([]int{d.cfg.Dim}, d.cfg.Hidden...)
	tower, err := NewMLP(sizes, rng.Split())
	if err != nil {
		return err
	}
	d.tower = tower
	d.pooled = make([]float64, d.cfg.Dim)

	pairs := train.Interactions()
	if len(pairs) == 0 {
		return fmt.Errorf("neural: DeepICF has no training pairs")
	}
	opt := DefaultAdam(d.cfg.LearnRate)
	opt.WeightDecay = d.cfg.WeightDecay
	order := make([]int, len(pairs))
	for idx := range order {
		order[idx] = idx
	}
	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, idx := range order {
			p := pairs[idx]
			d.trainStep(p.User, p.Item, 1, opt)
			for neg := 0; neg < d.cfg.NegRatio; neg++ {
				d.trainStep(p.User, sampleUnobserved(train, p.User, rng), 0, opt)
			}
		}
	}
	return nil
}

// ScoreAll implements eval.Scorer.
func (d *DeepICF) ScoreAll(u int32, out []float64) {
	for i := range out {
		out[i] = d.logit(u, int32(i))
	}
}

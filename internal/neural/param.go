// Package neural is a minimal feed-forward neural-network substrate built
// for the paper's three deep baselines (NeuMF, NeuPR, DeepICF): dense
// layers, embedding tables with sparse updates, ReLU, Adam, and the
// pointwise/pairwise losses those models train with. It is deliberately not
// a general autograd — each model wires its own forward/backward pass,
// which keeps the code auditable and the allocation profile flat.
package neural

import (
	"fmt"
	"math"

	"clapf/internal/mathx"
)

// Param is a dense trainable tensor with its gradient accumulator and Adam
// moment estimates.
type Param struct {
	W    []float64
	Grad []float64
	m, v []float64
	t    int
}

// NewParam allocates a parameter of the given size.
func NewParam(size int) *Param {
	return &Param{
		W:    make([]float64, size),
		Grad: make([]float64, size),
		m:    make([]float64, size),
		v:    make([]float64, size),
	}
}

// InitXavier fills the parameter with Glorot-uniform values for a layer
// with the given fan-in and fan-out.
func (p *Param) InitXavier(rng *mathx.RNG, fanIn, fanOut int) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range p.W {
		p.W[i] = (2*rng.Float64() - 1) * limit
	}
}

// InitGaussian fills the parameter with N(0, std²) values.
func (p *Param) InitGaussian(rng *mathx.RNG, std float64) {
	for i := range p.W {
		p.W[i] = rng.NormFloat64() * std
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { mathx.Fill(p.Grad, 0) }

// AdamConfig holds the optimizer hyper-parameters.
type AdamConfig struct {
	LearnRate float64
	Beta1     float64
	Beta2     float64
	Eps       float64
	// WeightDecay is decoupled L2 applied at step time.
	WeightDecay float64
}

// DefaultAdam returns the standard Adam settings at the given rate.
func DefaultAdam(lr float64) AdamConfig {
	return AdamConfig{LearnRate: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Validate reports the first problem with the configuration.
func (c AdamConfig) Validate() error {
	switch {
	case c.LearnRate <= 0:
		return fmt.Errorf("neural: Adam LearnRate = %v, want > 0", c.LearnRate)
	case c.Beta1 < 0 || c.Beta1 >= 1:
		return fmt.Errorf("neural: Adam Beta1 = %v, want [0,1)", c.Beta1)
	case c.Beta2 < 0 || c.Beta2 >= 1:
		return fmt.Errorf("neural: Adam Beta2 = %v, want [0,1)", c.Beta2)
	case c.Eps <= 0:
		return fmt.Errorf("neural: Adam Eps = %v, want > 0", c.Eps)
	case c.WeightDecay < 0:
		return fmt.Errorf("neural: Adam WeightDecay = %v, want >= 0", c.WeightDecay)
	}
	return nil
}

// Step applies one Adam update from the accumulated gradient, then clears
// it. Gradients here follow the *minimization* convention.
func (p *Param) Step(c AdamConfig) {
	p.t++
	bc1 := 1 - math.Pow(c.Beta1, float64(p.t))
	bc2 := 1 - math.Pow(c.Beta2, float64(p.t))
	for i, g := range p.Grad {
		if c.WeightDecay > 0 {
			g += c.WeightDecay * p.W[i]
		}
		p.m[i] = c.Beta1*p.m[i] + (1-c.Beta1)*g
		p.v[i] = c.Beta2*p.v[i] + (1-c.Beta2)*g*g
		mHat := p.m[i] / bc1
		vHat := p.v[i] / bc2
		p.W[i] -= c.LearnRate * mHat / (math.Sqrt(vHat) + c.Eps)
	}
	p.ZeroGrad()
}

// Embedding is a table of row vectors with *sparse* lazy-Adam updates: only
// rows touched since the last step pay optimizer cost, with per-row
// timesteps for bias correction. Without this, every SGD step would touch
// the full table and training would be O(n·d) per example.
type Embedding struct {
	Rows int
	Dim  int
	W    []float64

	grad    []float64 // same shape as W; only touched rows are meaningful
	m, v    []float64
	rowT    []int
	touched map[int32]struct{}
}

// NewEmbedding allocates a rows×dim table.
func NewEmbedding(rows, dim int) *Embedding {
	return &Embedding{
		Rows:    rows,
		Dim:     dim,
		W:       make([]float64, rows*dim),
		grad:    make([]float64, rows*dim),
		m:       make([]float64, rows*dim),
		v:       make([]float64, rows*dim),
		rowT:    make([]int, rows),
		touched: make(map[int32]struct{}),
	}
}

// InitGaussian fills the table with N(0, std²) values.
func (e *Embedding) InitGaussian(rng *mathx.RNG, std float64) {
	for i := range e.W {
		e.W[i] = rng.NormFloat64() * std
	}
}

// Row returns the live vector for the given row.
func (e *Embedding) Row(r int32) []float64 {
	off := int(r) * e.Dim
	return e.W[off : off+e.Dim : off+e.Dim]
}

// AccumGrad adds g to the row's gradient and marks the row dirty.
func (e *Embedding) AccumGrad(r int32, g []float64) {
	off := int(r) * e.Dim
	dst := e.grad[off : off+e.Dim]
	for i, v := range g {
		dst[i] += v
	}
	e.touched[r] = struct{}{}
}

// Step applies lazy Adam to every touched row and clears the dirty set.
func (e *Embedding) Step(c AdamConfig) {
	for r := range e.touched {
		e.rowT[r]++
		t := e.rowT[r]
		bc1 := 1 - math.Pow(c.Beta1, float64(t))
		bc2 := 1 - math.Pow(c.Beta2, float64(t))
		off := int(r) * e.Dim
		for i := off; i < off+e.Dim; i++ {
			g := e.grad[i]
			if c.WeightDecay > 0 {
				g += c.WeightDecay * e.W[i]
			}
			e.m[i] = c.Beta1*e.m[i] + (1-c.Beta1)*g
			e.v[i] = c.Beta2*e.v[i] + (1-c.Beta2)*g*g
			e.W[i] -= c.LearnRate * (e.m[i] / bc1) / (math.Sqrt(e.v[i]/bc2) + c.Eps)
			e.grad[i] = 0
		}
	}
	clear(e.touched)
}

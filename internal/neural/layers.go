package neural

import (
	"fmt"

	"clapf/internal/mathx"
)

// Dense is a fully connected layer y = W·x + b with W stored row-major
// (Out×In). Forward caches the input so Backward can form the weight
// gradient; the layer therefore supports one in-flight example at a time,
// which matches the SGD training of all three neural baselines.
type Dense struct {
	In, Out int
	W       *Param // Out×In
	B       *Param // Out

	x  []float64 // cached input
	y  []float64 // cached output buffer
	dx []float64
}

// NewDense allocates a layer with Xavier-initialized weights.
func NewDense(in, out int, rng *mathx.RNG) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(in * out),
		B:   NewParam(out),
		x:   make([]float64, in),
		y:   make([]float64, out),
		dx:  make([]float64, in),
	}
	d.W.InitXavier(rng, in, out)
	return d
}

// Forward computes the layer output. The returned slice is reused across
// calls; copy it if it must survive the next Forward.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("neural: Dense input %d, want %d", len(x), d.In))
	}
	copy(d.x, x)
	for o := 0; o < d.Out; o++ {
		row := d.W.W[o*d.In : (o+1)*d.In]
		d.y[o] = mathx.Dot(row, x) + d.B.W[o]
	}
	return d.y
}

// Backward accumulates parameter gradients from dy = ∂L/∂y and returns
// ∂L/∂x. The returned slice is reused across calls.
func (d *Dense) Backward(dy []float64) []float64 {
	if len(dy) != d.Out {
		panic(fmt.Sprintf("neural: Dense grad %d, want %d", len(dy), d.Out))
	}
	mathx.Fill(d.dx, 0)
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		d.B.Grad[o] += g
		wRow := d.W.W[o*d.In : (o+1)*d.In]
		gRow := d.W.Grad[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			gRow[i] += g * d.x[i]
			d.dx[i] += g * wRow[i]
		}
	}
	return d.dx
}

// Params returns the layer's trainable tensors.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectifier activation with cached mask.
type ReLU struct {
	mask []bool
	y    []float64
	dx   []float64
}

// NewReLU allocates an activation for vectors of the given width.
func NewReLU(width int) *ReLU {
	return &ReLU{mask: make([]bool, width), y: make([]float64, width), dx: make([]float64, width)}
}

// Forward applies max(0, x) elementwise.
func (r *ReLU) Forward(x []float64) []float64 {
	for i, v := range x {
		if v > 0 {
			r.y[i] = v
			r.mask[i] = true
		} else {
			r.y[i] = 0
			r.mask[i] = false
		}
	}
	return r.y
}

// Backward gates the upstream gradient by the activation mask.
func (r *ReLU) Backward(dy []float64) []float64 {
	for i, g := range dy {
		if r.mask[i] {
			r.dx[i] = g
		} else {
			r.dx[i] = 0
		}
	}
	return r.dx
}

// MLP is a tower of Dense+ReLU blocks with a linear final layer — the
// architecture NCF-style models use (each hidden layer halves or keeps the
// width per the configured sizes).
type MLP struct {
	layers []*Dense
	acts   []*ReLU
}

// NewMLP builds a tower with the given layer widths, e.g. sizes
// {32, 16, 8} builds 32→16→8 with ReLU after every layer except the last.
func NewMLP(sizes []int, rng *mathx.RNG) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("neural: MLP needs at least input and output widths, got %v", sizes)
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("neural: MLP width %d, want > 0", s)
		}
	}
	m := &MLP{}
	for l := 0; l+1 < len(sizes); l++ {
		m.layers = append(m.layers, NewDense(sizes[l], sizes[l+1], rng))
		if l+2 < len(sizes) {
			m.acts = append(m.acts, NewReLU(sizes[l+1]))
		}
	}
	return m, nil
}

// Forward runs the tower.
func (m *MLP) Forward(x []float64) []float64 {
	h := x
	for l, layer := range m.layers {
		h = layer.Forward(h)
		if l < len(m.acts) {
			h = m.acts[l].Forward(h)
		}
	}
	return h
}

// Backward accumulates gradients and returns ∂L/∂input.
func (m *MLP) Backward(dy []float64) []float64 {
	g := dy
	for l := len(m.layers) - 1; l >= 0; l-- {
		if l < len(m.acts) {
			g = m.acts[l].Backward(g)
		}
		g = m.layers[l].Backward(g)
	}
	return g
}

// Params returns all trainable tensors in the tower.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutDim returns the width of the tower's final layer.
func (m *MLP) OutDim() int { return m.layers[len(m.layers)-1].Out }

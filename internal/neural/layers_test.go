package neural

import (
	"math"
	"testing"

	"clapf/internal/mathx"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := mathx.NewRNG(1)
	d := NewDense(2, 2, rng)
	copy(d.W.W, []float64{1, 2, 3, 4}) // rows: [1 2], [3 4]
	copy(d.B.W, []float64{0.5, -0.5})
	y := d.Forward([]float64{1, 1})
	if !mathx.AlmostEqual(y[0], 3.5, 1e-12) || !mathx.AlmostEqual(y[1], 6.5, 1e-12) {
		t.Errorf("Forward = %v, want [3.5 6.5]", y)
	}
}

func TestDenseInputSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong input size did not panic")
		}
	}()
	NewDense(3, 2, mathx.NewRNG(1)).Forward([]float64{1})
}

// lossOf runs a scalar loss L = Σ w_o · y_o over the layer output so
// gradient checking has a fixed upstream gradient.
func denseLoss(d *Dense, x, w []float64) float64 {
	y := d.Forward(x)
	return mathx.Dot(w, y)
}

func TestDenseGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(2)
	d := NewDense(4, 3, rng)
	x := []float64{0.3, -0.7, 1.2, 0.1}
	up := []float64{1, -2, 0.5} // upstream dL/dy

	d.Forward(x)
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	dx := d.Backward(up)
	dxCopy := mathx.CopyVec(dx)

	const h = 1e-6
	// Weight gradients.
	for idx := 0; idx < len(d.W.W); idx += 3 {
		orig := d.W.W[idx]
		d.W.W[idx] = orig + h
		plus := denseLoss(d, x, up)
		d.W.W[idx] = orig - h
		minus := denseLoss(d, x, up)
		d.W.W[idx] = orig
		fd := (plus - minus) / (2 * h)
		if !mathx.AlmostEqual(d.W.Grad[idx], fd, 1e-5*(1+math.Abs(fd))) {
			t.Errorf("W grad[%d] = %v, finite diff %v", idx, d.W.Grad[idx], fd)
		}
	}
	// Bias gradients.
	for idx := range d.B.W {
		orig := d.B.W[idx]
		d.B.W[idx] = orig + h
		plus := denseLoss(d, x, up)
		d.B.W[idx] = orig - h
		minus := denseLoss(d, x, up)
		d.B.W[idx] = orig
		fd := (plus - minus) / (2 * h)
		if !mathx.AlmostEqual(d.B.Grad[idx], fd, 1e-5*(1+math.Abs(fd))) {
			t.Errorf("B grad[%d] = %v, finite diff %v", idx, d.B.Grad[idx], fd)
		}
	}
	// Input gradients.
	for idx := range x {
		orig := x[idx]
		x[idx] = orig + h
		plus := denseLoss(d, x, up)
		x[idx] = orig - h
		minus := denseLoss(d, x, up)
		x[idx] = orig
		fd := (plus - minus) / (2 * h)
		if !mathx.AlmostEqual(dxCopy[idx], fd, 1e-5*(1+math.Abs(fd))) {
			t.Errorf("dx[%d] = %v, finite diff %v", idx, dxCopy[idx], fd)
		}
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU(4)
	y := r.Forward([]float64{-1, 0, 2, -0.5})
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("ReLU forward = %v", y)
			break
		}
	}
	dx := r.Backward([]float64{1, 1, 1, 1})
	wantG := []float64{0, 0, 1, 0}
	for i := range wantG {
		if dx[i] != wantG[i] {
			t.Errorf("ReLU backward = %v", dx)
			break
		}
	}
}

func TestMLPValidation(t *testing.T) {
	rng := mathx.NewRNG(3)
	if _, err := NewMLP([]int{4}, rng); err == nil {
		t.Error("single-width MLP accepted")
	}
	if _, err := NewMLP([]int{4, 0, 1}, rng); err == nil {
		t.Error("zero width accepted")
	}
	m, err := NewMLP([]int{4, 3, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.OutDim() != 1 {
		t.Errorf("OutDim = %d", m.OutDim())
	}
}

func TestMLPGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(4)
	m, err := NewMLP([]int{3, 5, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -0.3, 0.8}
	up := []float64{1, -1}
	loss := func() float64 { return mathx.Dot(up, m.Forward(x)) }

	m.Forward(x)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	dx := mathx.CopyVec(m.Backward(up))

	const h = 1e-6
	for pi, p := range m.Params() {
		for idx := range p.W {
			orig := p.W[idx]
			p.W[idx] = orig + h
			plus := loss()
			p.W[idx] = orig - h
			minus := loss()
			p.W[idx] = orig
			fd := (plus - minus) / (2 * h)
			if !mathx.AlmostEqual(p.Grad[idx], fd, 1e-5*(1+math.Abs(fd))) {
				t.Fatalf("param %d grad[%d] = %v, finite diff %v", pi, idx, p.Grad[idx], fd)
			}
		}
	}
	for idx := range x {
		orig := x[idx]
		x[idx] = orig + h
		plus := loss()
		x[idx] = orig - h
		minus := loss()
		x[idx] = orig
		fd := (plus - minus) / (2 * h)
		if !mathx.AlmostEqual(dx[idx], fd, 1e-5*(1+math.Abs(fd))) {
			t.Errorf("input grad[%d] = %v, finite diff %v", idx, dx[idx], fd)
		}
	}
}

func TestAdamConverges(t *testing.T) {
	// Minimize (w − 3)² with Adam; must reach the optimum.
	p := NewParam(1)
	p.W[0] = -5
	cfg := DefaultAdam(0.1)
	for step := 0; step < 2000; step++ {
		p.Grad[0] = 2 * (p.W[0] - 3)
		p.Step(cfg)
	}
	if math.Abs(p.W[0]-3) > 0.01 {
		t.Errorf("Adam ended at %v, want 3", p.W[0])
	}
}

func TestAdamConfigValidate(t *testing.T) {
	bad := []AdamConfig{
		{LearnRate: 0, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8},
		{LearnRate: 0.1, Beta1: 1, Beta2: 0.999, Eps: 1e-8},
		{LearnRate: 0.1, Beta1: 0.9, Beta2: -0.1, Eps: 1e-8},
		{LearnRate: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 0},
		{LearnRate: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad Adam config %d accepted", i)
		}
	}
	if DefaultAdam(0.01).Validate() != nil {
		t.Error("default Adam config rejected")
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// The classic nonlinear sanity check: a linear model cannot fit XOR.
	rng := mathx.NewRNG(7)
	m, err := NewMLP([]int{2, 8, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	opt := DefaultAdam(0.01)
	for epoch := 0; epoch < 4000; epoch++ {
		for c := range inputs {
			z := m.Forward(inputs[c])[0]
			dz := mathx.Sigmoid(z) - targets[c]
			m.Backward([]float64{dz})
			for _, p := range m.Params() {
				p.Step(opt)
			}
		}
	}
	for c := range inputs {
		prob := mathx.Sigmoid(m.Forward(inputs[c])[0])
		if math.Abs(prob-targets[c]) > 0.2 {
			t.Errorf("XOR(%v) = %.3f, want %v", inputs[c], prob, targets[c])
		}
	}
}

func TestEmbeddingSparseStep(t *testing.T) {
	e := NewEmbedding(10, 4)
	e.InitGaussian(mathx.NewRNG(8), 0.1)
	before := mathx.CopyVec(e.W)
	cfg := DefaultAdam(0.01)
	e.AccumGrad(3, []float64{1, 1, 1, 1})
	e.Step(cfg)
	for r := 0; r < 10; r++ {
		changed := false
		for k := 0; k < 4; k++ {
			if e.W[r*4+k] != before[r*4+k] {
				changed = true
			}
		}
		if r == 3 && !changed {
			t.Error("touched row not updated")
		}
		if r != 3 && changed {
			t.Errorf("untouched row %d updated", r)
		}
	}
	// Second step with no gradient must be a no-op.
	snapshot := mathx.CopyVec(e.W)
	e.Step(cfg)
	for i := range snapshot {
		if e.W[i] != snapshot[i] {
			t.Fatal("Step without gradients changed weights")
		}
	}
}

package neural

import (
	"fmt"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
)

// NeuPR is the neural pairwise ranker of Song et al. (CIKM 2018, "Neural
// Collaborative Ranking"): instead of classifying single (u, i) cells it
// scores a pair of items for the same user and learns that observed items
// should out-score unobserved ones. Our instantiation shares one NeuMF-
// style scoring network s(u, i) across the pair and minimizes the pairwise
// logistic loss −ln σ(s(u,i) − s(u,j)).
//
// Substitution note: the original paper's "no negative sampler" refers to
// its pairwise reformulation of NCF's pointwise classification; the
// unobserved side of each pair is still drawn from the unobserved set,
// which is what this implementation does (uniformly).
type NeuPR struct {
	cfg   NeuPRConfig
	user  *Embedding
	item  *Embedding
	tower *MLP

	concat []float64
}

// NeuPRConfig tunes the model.
type NeuPRConfig struct {
	Dim       int   // per-side embedding size
	Hidden    []int // tower widths after the 2·Dim input; last must be 1
	LearnRate float64
	Steps     int // sampled (u, i, j) updates
	// WeightDecay is decoupled L2 regularization applied by Adam; the
	// paper notes deep models overfit sparse implicit data, and without
	// this the pointwise models memorize the training matrix.
	WeightDecay float64
	Seed        uint64
}

// DefaultNeuPRConfig mirrors the four-layer setup of §6.3 with a step
// budget of 30 passes over the training pairs.
func DefaultNeuPRConfig(trainPairs int) NeuPRConfig {
	return NeuPRConfig{
		Dim:       8,
		Hidden:    []int{16, 8, 1},
		LearnRate: 0.001,
		Steps:     30 * trainPairs,
	}
}

// Validate reports the first problem with the configuration.
func (c NeuPRConfig) Validate() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("neural: NeuPR Dim = %d, want > 0", c.Dim)
	case len(c.Hidden) == 0 || c.Hidden[len(c.Hidden)-1] != 1:
		return fmt.Errorf("neural: NeuPR Hidden must end in width 1, got %v", c.Hidden)
	case c.LearnRate <= 0:
		return fmt.Errorf("neural: NeuPR LearnRate = %v, want > 0", c.LearnRate)
	case c.Steps < 0:
		return fmt.Errorf("neural: NeuPR Steps = %d, want >= 0", c.Steps)
	}
	return nil
}

// NewNeuPR validates the configuration.
func NewNeuPR(cfg NeuPRConfig) (*NeuPR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &NeuPR{cfg: cfg}, nil
}

// Name implements the Recommender convention.
func (n *NeuPR) Name() string { return "NeuPR" }

func (n *NeuPR) build(numUsers, numItems int, rng *mathx.RNG) error {
	n.user = NewEmbedding(numUsers, n.cfg.Dim)
	n.item = NewEmbedding(numItems, n.cfg.Dim)
	n.user.InitGaussian(rng, 0.05)
	n.item.InitGaussian(rng, 0.05)
	sizes := append([]int{2 * n.cfg.Dim}, n.cfg.Hidden...)
	tower, err := NewMLP(sizes, rng)
	if err != nil {
		return err
	}
	n.tower = tower
	n.concat = make([]float64, 2*n.cfg.Dim)
	return nil
}

// score runs the shared network for one (u, i) pair.
func (n *NeuPR) score(u, i int32) float64 {
	copy(n.concat, n.user.Row(u))
	copy(n.concat[n.cfg.Dim:], n.item.Row(i))
	return n.tower.Forward(n.concat)[0]
}

// backProp pushes dScore through the network into the embeddings.
func (n *NeuPR) backProp(u, i int32, dScore float64) {
	// Forward must be fresh for this pair: the tower caches activations.
	n.score(u, i)
	dConcat := n.tower.Backward([]float64{dScore})
	n.user.AccumGrad(u, dConcat[:n.cfg.Dim])
	n.item.AccumGrad(i, dConcat[n.cfg.Dim:])
}

// Fit trains on sampled (u, i⁺, j⁻) pairs with the pairwise logistic loss.
func (n *NeuPR) Fit(train *dataset.Dataset) error {
	rng := mathx.NewRNG(n.cfg.Seed)
	if err := n.build(train.NumUsers(), train.NumItems(), rng.Split()); err != nil {
		return err
	}
	var users []int32
	for _, u := range train.UsersWithAtLeast(1) {
		if train.NumPositives(u) < train.NumItems() {
			users = append(users, u)
		}
	}
	if len(users) == 0 {
		return fmt.Errorf("neural: NeuPR has no trainable users")
	}
	opt := DefaultAdam(n.cfg.LearnRate)
	opt.WeightDecay = n.cfg.WeightDecay
	for step := 0; step < n.cfg.Steps; step++ {
		u := users[rng.Intn(len(users))]
		obs := train.Positives(u)
		i := obs[rng.Intn(len(obs))]
		j := sampleUnobserved(train, u, rng)

		diff := n.score(u, i) - n.score(u, j)
		g := mathx.Sigmoid(diff) - 1 // ∂(−ln σ(diff))/∂diff

		n.backProp(u, i, g)
		n.backProp(u, j, -g)

		for _, p := range n.tower.Params() {
			p.Step(opt)
		}
		n.user.Step(opt)
		n.item.Step(opt)
	}
	return nil
}

// ScoreAll implements eval.Scorer.
func (n *NeuPR) ScoreAll(u int32, out []float64) {
	for i := range out {
		out[i] = n.score(u, int32(i))
	}
}

package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"clapf/internal/core"
	"clapf/internal/datagen"
	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/sampling"
)

func testServer(t testing.TB) (*Server, *dataset.Dataset) {
	t.Helper()
	w, err := datagen.Generate(datagen.Profile{
		Name: "srv", Users: 50, Items: 80, Pairs: 1200,
		ZipfExp: 0.6, Dim: 4, Affinity: 6,
	}, mathx.NewRNG(81))
	if err != nil {
		t.Fatal(err)
	}
	train := w.Data
	cfg := core.DefaultConfig(sampling.MAP, train.NumPairs())
	cfg.Dim = 8
	cfg.Steps = 20000
	cfg.Seed = 82
	tr, err := core.NewTrainer(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run()
	s, err := New(tr.Model(), train)
	if err != nil {
		t.Fatal(err)
	}
	return s, train
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, RecommendResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body RecommendResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON from %s: %v", path, err)
		}
	}
	return rec, body
}

func TestNewValidation(t *testing.T) {
	s, train := testServer(t)
	if _, err := New(nil, train); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(s.Model(), nil); err == nil {
		t.Error("nil dataset accepted")
	}
	other := mf.MustNew(mf.Config{NumUsers: 2, NumItems: 2, Dim: 2})
	if _, err := New(other, train); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Users != 50 || h.Items != 80 || h.Dim != 8 {
		t.Errorf("health = %+v", h)
	}
}

func TestRecommendKnownUser(t *testing.T) {
	s, train := testServer(t)
	rec, body := get(t, s.Handler(), "/recommend?user=3&k=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(body.Items) != 7 {
		t.Fatalf("got %d items", len(body.Items))
	}
	if body.User == nil || *body.User != 3 {
		t.Error("user echo missing")
	}
	for i, it := range body.Items {
		if train.IsPositive(3, it.Item) {
			t.Errorf("recommended already-observed item %d", it.Item)
		}
		if i > 0 && body.Items[i-1].Score < it.Score {
			t.Error("items not score-descending")
		}
	}
}

func TestRecommendColdStart(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s.Handler(), "/recommend?items=1,2,3&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(body.Items) != 5 {
		t.Fatalf("got %d items", len(body.Items))
	}
	for _, it := range body.Items {
		if it.Item == 1 || it.Item == 2 || it.Item == 3 {
			t.Errorf("history item %d recommended back", it.Item)
		}
	}
	if body.User != nil {
		t.Error("cold-start response should not echo a user id")
	}
}

func TestSimilar(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s.Handler(), "/similar?item=5&k=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(body.Items) != 4 {
		t.Fatalf("got %d items", len(body.Items))
	}
	for _, it := range body.Items {
		if it.Item == 5 {
			t.Error("anchor item in its own neighbors")
		}
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	cases := []string{
		"/recommend",                // no user or items
		"/recommend?user=999",       // out of range
		"/recommend?user=abc",       // non-numeric
		"/recommend?user=1&items=2", // both
		"/recommend?user=1&k=0",     // bad k
		"/recommend?user=1&k=x",     // bad k
		"/recommend?items=",         // empty list
		"/recommend?items=1,boom",   // bad item
		"/recommend?items=1,9999",   // item out of range
		"/similar?item=abc",         // bad item
		"/similar?item=-1",          // negative
	}
	for _, path := range cases {
		rec, _ := get(t, h, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

func TestKCapped(t *testing.T) {
	s, _ := testServer(t)
	s.MaxK = 3
	rec, body := get(t, s.Handler(), "/recommend?user=0&k=50")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if len(body.Items) != 3 {
		t.Errorf("k cap not applied: got %d items", len(body.Items))
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/recommend?user=1", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

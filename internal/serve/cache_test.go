package serve

import (
	"fmt"
	"testing"

	"clapf/internal/rank"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	a := []Item{{Item: 1, Score: 0.5}}
	b := []Item{{Item: 2, Score: 0.4}}
	cc := []Item{{Item: 3, Score: 0.3}}

	if _, ok := c.get(cacheKey{user: 1, k: 5}); ok {
		t.Fatal("empty cache returned a hit")
	}
	if ev := c.put(cacheKey{user: 1, k: 5}, a); ev != 0 {
		t.Fatalf("first put evicted %d", ev)
	}
	c.put(cacheKey{user: 2, k: 5}, b)

	// Touch user 1 so user 2 is the LRU victim.
	if got, ok := c.get(cacheKey{user: 1, k: 5}); !ok || got[0].Item != 1 {
		t.Fatalf("get(1) = %v, %v", got, ok)
	}
	if ev := c.put(cacheKey{user: 3, k: 5}, cc); ev != 1 {
		t.Fatalf("over-capacity put evicted %d, want 1", ev)
	}
	if _, ok := c.get(cacheKey{user: 2, k: 5}); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.get(cacheKey{user: 1, k: 5}); !ok {
		t.Error("recently used entry was evicted")
	}
	if c.size() != 2 {
		t.Errorf("size = %d, want 2", c.size())
	}

	// Same user, different k is a distinct key.
	if _, ok := c.get(cacheKey{user: 1, k: 7}); ok {
		t.Error("k is not part of the cache key")
	}

	// Re-putting an existing key refreshes without eviction.
	if ev := c.put(cacheKey{user: 1, k: 5}, b); ev != 0 || c.size() != 2 {
		t.Errorf("refresh put: evicted %d, size %d", ev, c.size())
	}
}

func TestResultCacheNilDisabled(t *testing.T) {
	var c *resultCache // what newResultCache(0) returns
	if newResultCache(0) != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	if _, ok := c.get(cacheKey{user: 1, k: 5}); ok {
		t.Error("nil cache hit")
	}
	if ev := c.put(cacheKey{user: 1, k: 5}, nil); ev != 0 {
		t.Errorf("nil cache evicted %d", ev)
	}
	if c.size() != 0 {
		t.Errorf("nil cache size = %d", c.size())
	}
}

func TestCacheCountersAndMetrics(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	get(t, h, "/recommend?user=2&k=5") // miss
	get(t, h, "/recommend?user=2&k=5") // hit
	get(t, h, "/recommend?user=2&k=6") // different k: miss
	get(t, h, "/recommend?user=3&k=5") // different user: miss

	samples := scrape(t, h)
	if samples["clapf_cache_hits_total"] != 1 {
		t.Errorf("hits = %v, want 1", samples["clapf_cache_hits_total"])
	}
	if samples["clapf_cache_misses_total"] != 3 {
		t.Errorf("misses = %v, want 3", samples["clapf_cache_misses_total"])
	}
	if samples["clapf_cache_entries"] != 3 {
		t.Errorf("entries = %v, want 3", samples["clapf_cache_entries"])
	}
	if samples["clapf_cache_evictions_total"] != 0 {
		t.Errorf("evictions = %v, want 0", samples["clapf_cache_evictions_total"])
	}
}

func TestCacheEvictionBound(t *testing.T) {
	s, _ := testServer(t)
	s.SetCacheSize(2)
	h := s.Handler()
	for u := 0; u < 5; u++ {
		get(t, h, fmt.Sprintf("/recommend?user=%d&k=4", u))
	}
	samples := scrape(t, h)
	if samples["clapf_cache_evictions_total"] != 3 {
		t.Errorf("evictions = %v, want 3", samples["clapf_cache_evictions_total"])
	}
	if samples["clapf_cache_entries"] != 2 {
		t.Errorf("entries = %v, want 2 (the capacity)", samples["clapf_cache_entries"])
	}
	// Cached responses still match fresh computation for the retained keys.
	_, cached := get(t, h, "/recommend?user=4&k=4")
	if len(cached.Items) != 4 {
		t.Fatalf("cached entry has %d items", len(cached.Items))
	}
}

func TestSetCacheSizeZeroDisables(t *testing.T) {
	s, _ := testServer(t)
	s.SetCacheSize(0)
	h := s.Handler()
	get(t, h, "/recommend?user=1&k=3")
	get(t, h, "/recommend?user=1&k=3")
	samples := scrape(t, h)
	if samples["clapf_cache_hits_total"] != 0 || samples["clapf_cache_misses_total"] != 0 {
		t.Errorf("disabled cache recorded hits=%v misses=%v",
			samples["clapf_cache_hits_total"], samples["clapf_cache_misses_total"])
	}
	if s.CacheSize() != 0 {
		t.Errorf("CacheSize = %d", s.CacheSize())
	}
}

// The acceptance property of the generation-keyed cache: after SwapModel,
// no request may be answered with a pre-swap entry. The swapped-in model
// negates every parameter, which reverses the score order — if any stale
// entry leaked through, the comparison against freshly computed rankings
// would catch it.
func TestCacheInvalidatedOnSwapModel(t *testing.T) {
	s, train := testServer(t)
	h := s.Handler()
	const k = 5
	users := []int32{0, 1, 2, 3, 7}

	// Prime and re-read the cache for every user.
	before := make(map[int32][]Item)
	for _, u := range users {
		_, body := get(t, h, fmt.Sprintf("/recommend?user=%d&k=%d", u, k))
		before[u] = body.Items
		_, again := get(t, h, fmt.Sprintf("/recommend?user=%d&k=%d", u, k))
		if len(again.Items) == 0 || again.Items[0] != body.Items[0] {
			t.Fatalf("user %d: cached re-read disagrees with first read", u)
		}
	}
	preSwapHits := s.cacheHits.Value()
	if preSwapHits == 0 {
		t.Fatal("cache never hit; the invalidation check would be vacuous")
	}

	// Swap in the negated model: every score flips sign, so rankings are
	// reversed and stale entries are maximally distinguishable.
	neg := s.Model().Clone()
	u, v, b := neg.RawParams()
	for i := range u {
		u[i] = -u[i]
	}
	for i := range v {
		v[i] = -v[i]
	}
	for i := range b {
		b[i] = -b[i]
	}
	if err := s.SwapModel(neg); err != nil {
		t.Fatal(err)
	}

	for _, usr := range users {
		_, body := get(t, h, fmt.Sprintf("/recommend?user=%d&k=%d", usr, k))
		scores := make([]float64, neg.NumItems())
		neg.ScoreAll(usr, scores)
		want := rank.TopK(scores, k, func(i int32) bool { return train.IsPositive(usr, i) })
		if len(body.Items) != len(want) {
			t.Fatalf("user %d: %d items post-swap, want %d", usr, len(body.Items), len(want))
		}
		for i := range want {
			if body.Items[i].Item != want[i].Item || body.Items[i].Score != want[i].Score {
				t.Fatalf("user %d rank %d: got %+v, want item %d score %v — stale cache entry served",
					usr, i, body.Items[i], want[i].Item, want[i].Score)
			}
		}
		if len(body.Items) > 0 && before[usr][0] == body.Items[0] {
			t.Errorf("user %d: top item unchanged by the negated swap; test lost its teeth", usr)
		}
	}

	// Every post-swap read above was a miss against the fresh cache.
	if got := s.cacheHits.Value(); got != preSwapHits {
		t.Errorf("cache hits moved %d -> %d across the swap; stale generation served",
			preSwapHits, got)
	}
}

func TestCacheInvalidateUserIsTargeted(t *testing.T) {
	c := newResultCache(8)
	a := []Item{{Item: 1, Score: 0.5}}
	// User 7 under two ks and two modes; users 8 and 9 once each.
	c.put(cacheKey{user: 7, k: 5}, a)
	c.put(cacheKey{user: 7, k: 10}, a)
	c.put(cacheKey{user: 7, k: 5, mode: 1}, a)
	c.put(cacheKey{user: 8, k: 5}, a)
	c.put(cacheKey{user: 9, k: 10}, a)

	if removed := c.invalidateUser(7); removed != 3 {
		t.Fatalf("invalidateUser(7) removed %d entries, want 3", removed)
	}
	if _, ok := c.get(cacheKey{user: 7, k: 5}); ok {
		t.Error("user 7 entry survived invalidation")
	}
	if _, ok := c.get(cacheKey{user: 7, k: 5, mode: 1}); ok {
		t.Error("user 7 IVF-mode entry survived invalidation")
	}
	// Everyone else's entries stay warm — the whole point of targeted
	// invalidation.
	if _, ok := c.get(cacheKey{user: 8, k: 5}); !ok {
		t.Error("user 8 entry was collaterally invalidated")
	}
	if _, ok := c.get(cacheKey{user: 9, k: 10}); !ok {
		t.Error("user 9 entry was collaterally invalidated")
	}
	if c.size() != 2 {
		t.Errorf("size = %d, want 2", c.size())
	}
	// Nil cache and absent user are both safe no-ops.
	var nilCache *resultCache
	if removed := nilCache.invalidateUser(7); removed != 0 {
		t.Errorf("nil cache invalidation removed %d", removed)
	}
	if removed := c.invalidateUser(42); removed != 0 {
		t.Errorf("absent user invalidation removed %d", removed)
	}
}

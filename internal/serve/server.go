// Package serve exposes a trained CLAPF model over HTTP — the deployment
// surface a downstream adopter runs behind their application. Endpoints:
//
//	GET /healthz                      liveness + model dimensions + uptime/request totals
//	GET /recommend?user=U&k=K         top-k unobserved items for a known user
//	GET /recommend?items=1,2,3&k=K    cold-start: fold the history in, then rank
//	GET /similar?item=I&k=K           nearest items by factor cosine
//	GET /metrics                      Prometheus text exposition
//
// All responses are JSON except /metrics. The server is read-only over an
// immutable model and dataset, so handlers are safe for concurrent use.
// Every request is recorded in the server's obs.Registry (count by
// endpoint and status code, latency histogram by endpoint).
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"clapf/internal/dataset"
	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/rank"
)

// Server serves recommendations from a trained model. train supplies the
// observed-item exclusions for known users and must match the model's
// dimensions.
type Server struct {
	model *mf.Model
	train *dataset.Dataset
	// FoldInReg is the ridge strength for cold-start fold-in.
	FoldInReg float64
	// MaxK caps the k query parameter.
	MaxK int

	log          *slog.Logger
	reg          *obs.Registry
	httpm        *obs.HTTPMetrics
	encodeErrors *obs.Counter
	started      time.Time
}

// New validates the pair and returns a Server with its own metrics
// registry and a no-op logger (install a real one with SetLogger).
func New(model *mf.Model, train *dataset.Dataset) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if train == nil {
		return nil, fmt.Errorf("serve: nil training dataset")
	}
	if model.NumUsers() != train.NumUsers() || model.NumItems() != train.NumItems() {
		return nil, fmt.Errorf("serve: model is %d×%d but dataset is %d×%d",
			model.NumUsers(), model.NumItems(), train.NumUsers(), train.NumItems())
	}
	s := &Server{
		model:     model,
		train:     train,
		FoldInReg: 0.1,
		MaxK:      100,
		log:       obs.NopLogger(),
		reg:       obs.NewRegistry(),
		started:   time.Now(),
	}
	s.httpm = obs.NewHTTPMetrics(s.reg, "clapf_")
	s.encodeErrors = s.reg.NewCounter("clapf_encode_errors_total",
		"JSON response bodies that failed to encode after the header was written.")
	s.reg.NewGaugeFunc("clapf_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.reg.NewGaugeFunc("clapf_model_users", "Users in the served model.",
		func() float64 { return float64(model.NumUsers()) })
	s.reg.NewGaugeFunc("clapf_model_items", "Items in the served model.",
		func() float64 { return float64(model.NumItems()) })
	s.reg.NewGaugeFunc("clapf_model_dim", "Latent dimensionality of the served model.",
		func() float64 { return float64(model.Dim()) })
	return s, nil
}

// SetLogger installs the structured logger used for serve-path warnings
// (encode failures and the like). nil restores the no-op logger.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.NopLogger()
	}
	s.log = l
}

// Registry exposes the server's metrics registry so callers can add
// their own series or scrape it out-of-band.
func (s *Server) Registry() *obs.Registry { return s.reg }

// normalizeMetricPath keeps the metric path label's cardinality bounded:
// routed endpoints keep their path, everything else collapses.
func normalizeMetricPath(p string) string {
	switch p {
	case "/healthz", "/recommend", "/similar", "/metrics":
		return p
	}
	return "other"
}

// Handler returns the routed HTTP handler, wrapped in the metrics
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /recommend", s.handleRecommend)
	mux.HandleFunc("GET /similar", s.handleSimilar)
	mux.Handle("GET /metrics", s.reg.Handler())
	return s.httpm.Middleware(normalizeMetricPath, mux)
}

// Item is one scored item in a JSON response.
type Item struct {
	Item  int32   `json:"item"`
	Score float64 `json:"score"`
}

// RecommendResponse is the /recommend payload.
type RecommendResponse struct {
	User  *int32 `json:"user,omitempty"`
	Items []Item `json:"items"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status string `json:"status"`
	Users  int    `json:"users"`
	Items  int    `json:"items"`
	Dim    int    `json:"dim"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// RequestsTotal counts requests completed before this one, across
	// all endpoints and status codes.
	RequestsTotal uint64 `json:"requests_total"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Users:         s.model.NumUsers(),
		Items:         s.model.NumItems(),
		Dim:           s.model.Dim(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		RequestsTotal: s.httpm.TotalRequests(),
	})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	k, err := s.parseK(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}

	userParam := r.URL.Query().Get("user")
	itemsParam := r.URL.Query().Get("items")
	switch {
	case userParam != "" && itemsParam != "":
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("pass either user or items, not both"))
	case userParam != "":
		s.recommendKnown(w, userParam, k)
	case itemsParam != "":
		s.recommendColdStart(w, itemsParam, k)
	default:
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("missing user or items parameter"))
	}
}

func (s *Server) recommendKnown(w http.ResponseWriter, userParam string, k int) {
	u64, err := strconv.ParseInt(userParam, 10, 32)
	if err != nil || u64 < 0 || int(u64) >= s.model.NumUsers() {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("invalid user %q", userParam))
		return
	}
	u := int32(u64)
	scores := make([]float64, s.model.NumItems())
	s.model.ScoreAll(u, scores)
	top := rank.TopK(scores, k, func(i int32) bool { return s.train.IsPositive(u, i) })
	s.writeJSON(w, http.StatusOK, RecommendResponse{User: &u, Items: toItems(top)})
}

func (s *Server) recommendColdStart(w http.ResponseWriter, itemsParam string, k int) {
	history, err := parseItemList(itemsParam, s.model.NumItems())
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	uf, err := mf.FoldInUser(s.model, history, s.FoldInReg)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	seen := make(map[int32]bool, len(history))
	for _, it := range history {
		seen[it] = true
	}
	scores := make([]float64, s.model.NumItems())
	s.model.ScoreAllFoldIn(uf, scores)
	top := rank.TopK(scores, k, func(i int32) bool { return seen[i] })
	s.writeJSON(w, http.StatusOK, RecommendResponse{Items: toItems(top)})
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	k, err := s.parseK(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	itemParam := r.URL.Query().Get("item")
	i64, err := strconv.ParseInt(itemParam, 10, 32)
	if err != nil || i64 < 0 || int(i64) >= s.model.NumItems() {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("invalid item %q", itemParam))
		return
	}
	sims, err := mf.SimilarItems(s.model, int32(i64), k)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, RecommendResponse{Items: toItems(sims)})
}

func (s *Server) parseK(r *http.Request) (int, error) {
	kParam := r.URL.Query().Get("k")
	if kParam == "" {
		return 10, nil
	}
	k, err := strconv.Atoi(kParam)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("invalid k %q", kParam)
	}
	if k > s.MaxK {
		k = s.MaxK
	}
	return k, nil
}

func parseItemList(param string, numItems int) ([]int32, error) {
	parts := strings.Split(param, ",")
	items := make([]int32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("invalid item %q", p)
		}
		if v < 0 || int(v) >= numItems {
			return nil, fmt.Errorf("item %d out of range [0,%d)", v, numItems)
		}
		items = append(items, int32(v))
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty item list")
	}
	return items, nil
}

func toItems(es []rank.Entry) []Item {
	out := make([]Item, len(es))
	for i, e := range es {
		out[i] = Item{Item: e.Item, Score: e.Score}
	}
	return out
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) httpError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, errorResponse{Error: err.Error()})
}

// writeJSON writes v with the given status. Encoding errors after the
// header is written cannot reach the client anymore, but they must not
// vanish either: they are logged and counted in clapf_encode_errors_total
// so a broken payload type shows up on a dashboard instead of nowhere.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.encodeErrors.Inc()
		s.log.Error("response encode failed", "err", err, "status", code, "type", fmt.Sprintf("%T", v))
	}
}

// Model exposes the served model (for status reporting by callers).
func (s *Server) Model() *mf.Model { return s.model }

// Package serve exposes a trained CLAPF model over HTTP — the deployment
// surface a downstream adopter runs behind their application. Endpoints:
//
//	GET /healthz                      liveness + model dimensions + uptime/request totals
//	GET /readyz                       readiness (503 while draining or before a model is live)
//	GET /recommend?user=U&k=K         top-k unobserved items for a known user
//	GET /recommend?items=1,2,3&k=K    cold-start: fold the history in, then rank
//	GET /similar?item=I&k=K           nearest items by factor cosine
//	GET /metrics                      Prometheus text exposition
//
// All responses are JSON except /metrics. Handlers are read-only over an
// immutable dataset and a model held behind an atomic pointer, so they
// are safe for concurrent use and the model can be hot-swapped (SIGHUP in
// cmd/clapf-serve) without dropping a request. The handler chain is
// hardened (see harden.go): panics become 500s, overload sheds with 503,
// and every request carries a deadline. Every request is recorded in the
// server's obs.Registry.
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"clapf/internal/dataset"
	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/rank"
	"clapf/internal/store"
)

// Server serves recommendations from a trained model. train supplies the
// observed-item exclusions for known users and must match the model's
// dimensions. Configure the exported fields before calling Handler.
type Server struct {
	model atomic.Pointer[mf.Model]
	train *dataset.Dataset
	// FoldInReg is the ridge strength for cold-start fold-in.
	FoldInReg float64
	// MaxK caps the k query parameter.
	MaxK int
	// MaxHistory caps the cold-start items list; longer requests are
	// rejected with 400 (an unbounded list is a trivial CPU/memory DoS on
	// the fold-in path).
	MaxHistory int
	// MaxInFlight bounds concurrently handled recommendation requests;
	// excess load is shed with 503 + Retry-After. <= 0 disables shedding.
	MaxInFlight int
	// RequestTimeout is the per-request context deadline. <= 0 disables it.
	RequestTimeout time.Duration

	ready        atomic.Bool
	generation   atomic.Uint64 // model swaps since construction
	log          *slog.Logger
	reg          *obs.Registry
	httpm        *obs.HTTPMetrics
	encodeErrors *obs.Counter
	panics       *obs.Counter
	sheds        *obs.Counter
	reloadOK     *obs.Counter
	reloadFail   *obs.Counter
	started      time.Time
}

// New validates the pair and returns a Server with its own metrics
// registry and a no-op logger (install a real one with SetLogger).
func New(model *mf.Model, train *dataset.Dataset) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if train == nil {
		return nil, fmt.Errorf("serve: nil training dataset")
	}
	if err := validateModel(model, train); err != nil {
		return nil, err
	}
	s := &Server{
		train:          train,
		FoldInReg:      0.1,
		MaxK:           100,
		MaxHistory:     1024,
		MaxInFlight:    256,
		RequestTimeout: 10 * time.Second,
		log:            obs.NopLogger(),
		reg:            obs.NewRegistry(),
		started:        time.Now(),
	}
	s.model.Store(model)
	s.ready.Store(true)
	s.httpm = obs.NewHTTPMetrics(s.reg, "clapf_")
	s.encodeErrors = s.reg.NewCounter("clapf_encode_errors_total",
		"JSON response bodies that failed to encode after the header was written.")
	s.panics = s.reg.NewCounter("clapf_panics_total",
		"Handler panics recovered into 500 responses.")
	s.sheds = s.reg.NewCounter("clapf_load_shed_total",
		"Requests shed with 503 because the in-flight cap was reached.")
	reloads := s.reg.NewCounterVec("clapf_model_reloads_total",
		"Hot model reload attempts by result.", "result")
	s.reloadOK = reloads.With("ok")
	s.reloadFail = reloads.With("error")
	s.reg.NewGaugeFunc("clapf_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.reg.NewGaugeFunc("clapf_model_users", "Users in the served model.",
		func() float64 { return float64(s.Model().NumUsers()) })
	s.reg.NewGaugeFunc("clapf_model_items", "Items in the served model.",
		func() float64 { return float64(s.Model().NumItems()) })
	s.reg.NewGaugeFunc("clapf_model_dim", "Latent dimensionality of the served model.",
		func() float64 { return float64(s.Model().Dim()) })
	s.reg.NewGaugeFunc("clapf_model_generation",
		"Successful model swaps since the server started.",
		func() float64 { return float64(s.generation.Load()) })
	s.reg.NewGaugeFunc("clapf_ready",
		"1 while the server accepts traffic, 0 while draining.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	return s, nil
}

// validateModel checks a candidate model against the exclusion dataset —
// the gate every swap must pass so a mismatched file can never go live.
func validateModel(m *mf.Model, train *dataset.Dataset) error {
	if m.NumUsers() != train.NumUsers() || m.NumItems() != train.NumItems() {
		return fmt.Errorf("serve: model is %d×%d but dataset is %d×%d",
			m.NumUsers(), m.NumItems(), train.NumUsers(), train.NumItems())
	}
	return nil
}

// SetLogger installs the structured logger used for serve-path warnings
// (encode failures and the like). nil restores the no-op logger.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.NopLogger()
	}
	s.log = l
}

// Registry exposes the server's metrics registry so callers can add
// their own series or scrape it out-of-band.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Model returns the currently served model.
func (s *Server) Model() *mf.Model { return s.model.Load() }

// Generation returns how many successful model swaps have happened.
func (s *Server) Generation() uint64 { return s.generation.Load() }

// SetReady flips the /readyz signal; cmd/clapf-serve marks the server
// not-ready at the start of a drain so load balancers stop routing to it
// while in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SwapModel atomically replaces the served model after validating it
// against the exclusion dataset. On error the old model keeps serving.
func (s *Server) SwapModel(m *mf.Model) error {
	if m == nil {
		return fmt.Errorf("serve: nil model")
	}
	if err := validateModel(m, s.train); err != nil {
		return err
	}
	s.model.Store(m)
	s.generation.Add(1)
	return nil
}

// ReloadFromFile hot-reloads the model from path: the file is read and
// checksum-verified, its dimensions are validated against the dataset,
// and only then does the pointer swap — a torn, corrupt, or mismatched
// file leaves the old model serving and counts as a failed reload.
func (s *Server) ReloadFromFile(path string) error {
	m, err := store.LoadFile(path)
	if err == nil {
		err = s.SwapModel(m)
	}
	if err != nil {
		s.reloadFail.Inc()
		s.log.Error("model reload failed; keeping current model", "path", path, "err", err)
		return err
	}
	s.reloadOK.Inc()
	s.log.Info("model reloaded", "path", path, "generation", s.generation.Load())
	return nil
}

// normalizeMetricPath keeps the metric path label's cardinality bounded:
// routed endpoints keep their path, everything else collapses.
func normalizeMetricPath(p string) string {
	switch p {
	case "/healthz", "/readyz", "/recommend", "/similar", "/metrics":
		return p
	}
	return "other"
}

// Handler returns the routed HTTP handler wrapped in the hardening and
// metrics middleware: metrics(recover(shed(timeout(mux)))), so panics and
// shed requests are themselves visible in the request metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /recommend", s.handleRecommend)
	mux.HandleFunc("GET /similar", s.handleSimilar)
	mux.Handle("GET /metrics", s.reg.Handler())
	var h http.Handler = mux
	h = s.timeoutMiddleware(h)
	h = s.shedMiddleware(h)
	h = s.recoverMiddleware(h)
	return s.httpm.Middleware(normalizeMetricPath, h)
}

// Item is one scored item in a JSON response.
type Item struct {
	Item  int32   `json:"item"`
	Score float64 `json:"score"`
}

// RecommendResponse is the /recommend payload.
type RecommendResponse struct {
	User  *int32 `json:"user,omitempty"`
	Items []Item `json:"items"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status string `json:"status"`
	Users  int    `json:"users"`
	Items  int    `json:"items"`
	Dim    int    `json:"dim"`
	// ModelGeneration counts successful hot reloads since startup.
	ModelGeneration uint64 `json:"model_generation"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// RequestsTotal counts requests completed before this one, across
	// all endpoints and status codes.
	RequestsTotal uint64 `json:"requests_total"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	m := s.Model()
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:          "ok",
		Users:           m.NumUsers(),
		Items:           m.NumItems(),
		Dim:             m.Dim(),
		ModelGeneration: s.generation.Load(),
		UptimeSeconds:   time.Since(s.started).Seconds(),
		RequestsTotal:   s.httpm.TotalRequests(),
	})
}

// handleReady is the routing signal, distinct from liveness: a draining
// process is still alive (healthz 200) but should get no new traffic
// (readyz 503).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	k, err := s.parseK(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}

	userParam := r.URL.Query().Get("user")
	itemsParam := r.URL.Query().Get("items")
	switch {
	case userParam != "" && itemsParam != "":
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("pass either user or items, not both"))
	case userParam != "":
		s.recommendKnown(w, userParam, k)
	case itemsParam != "":
		s.recommendColdStart(w, itemsParam, k)
	default:
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("missing user or items parameter"))
	}
}

func (s *Server) recommendKnown(w http.ResponseWriter, userParam string, k int) {
	m := s.Model()
	u64, err := strconv.ParseInt(userParam, 10, 32)
	if err != nil || u64 < 0 || int(u64) >= m.NumUsers() {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("invalid user %q", userParam))
		return
	}
	u := int32(u64)
	scores := make([]float64, m.NumItems())
	m.ScoreAll(u, scores)
	top := rank.TopK(scores, k, func(i int32) bool { return s.train.IsPositive(u, i) })
	s.writeJSON(w, http.StatusOK, RecommendResponse{User: &u, Items: toItems(top)})
}

func (s *Server) recommendColdStart(w http.ResponseWriter, itemsParam string, k int) {
	m := s.Model()
	history, err := parseItemList(itemsParam, m.NumItems(), s.MaxHistory)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	uf, err := mf.FoldInUser(m, history, s.FoldInReg)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	seen := make(map[int32]bool, len(history))
	for _, it := range history {
		seen[it] = true
	}
	scores := make([]float64, m.NumItems())
	m.ScoreAllFoldIn(uf, scores)
	top := rank.TopK(scores, k, func(i int32) bool { return seen[i] })
	s.writeJSON(w, http.StatusOK, RecommendResponse{Items: toItems(top)})
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	m := s.Model()
	k, err := s.parseK(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	itemParam := r.URL.Query().Get("item")
	i64, err := strconv.ParseInt(itemParam, 10, 32)
	if err != nil || i64 < 0 || int(i64) >= m.NumItems() {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("invalid item %q", itemParam))
		return
	}
	sims, err := mf.SimilarItems(m, int32(i64), k)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, RecommendResponse{Items: toItems(sims)})
}

func (s *Server) parseK(r *http.Request) (int, error) {
	kParam := r.URL.Query().Get("k")
	if kParam == "" {
		return 10, nil
	}
	k, err := strconv.Atoi(kParam)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("invalid k %q", kParam)
	}
	if k > s.MaxK {
		k = s.MaxK
	}
	return k, nil
}

// parseItemList parses a comma-separated history, bounding its length and
// dropping duplicates — both the comma count and the dedup happen before
// any per-item work, so a hostile list costs O(maxItems) at worst.
func parseItemList(param string, numItems, maxItems int) ([]int32, error) {
	if maxItems > 0 {
		if n := strings.Count(param, ",") + 1; n > maxItems {
			return nil, fmt.Errorf("history has %d items, limit %d", n, maxItems)
		}
	}
	parts := strings.Split(param, ",")
	items := make([]int32, 0, len(parts))
	seen := make(map[int32]bool, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("invalid item %q", p)
		}
		if v < 0 || int(v) >= numItems {
			return nil, fmt.Errorf("item %d out of range [0,%d)", v, numItems)
		}
		if seen[int32(v)] {
			continue
		}
		seen[int32(v)] = true
		items = append(items, int32(v))
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty item list")
	}
	return items, nil
}

func toItems(es []rank.Entry) []Item {
	out := make([]Item, len(es))
	for i, e := range es {
		out[i] = Item{Item: e.Item, Score: e.Score}
	}
	return out
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) httpError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, errorResponse{Error: err.Error()})
}

// writeJSON writes v with the given status. Encoding errors after the
// header is written cannot reach the client anymore, but they must not
// vanish either: they are logged and counted in clapf_encode_errors_total
// so a broken payload type shows up on a dashboard instead of nowhere.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.encodeErrors.Inc()
		s.log.Error("response encode failed", "err", err, "status", code, "type", fmt.Sprintf("%T", v))
	}
}

// Package serve exposes a trained CLAPF model over HTTP — the deployment
// surface a downstream adopter runs behind their application. Endpoints:
//
//	GET  /healthz                     liveness + model dimensions + uptime/request totals
//	GET  /readyz                      readiness (503 while draining or before a model is live)
//	GET  /recommend?user=U&k=K        top-k unobserved items for a known user
//	GET  /recommend?items=1,2,3&k=K   cold-start: fold the history in, then rank
//	POST /recommend/batch             many users and/or histories in one request
//	GET  /similar?item=I&k=K          nearest items by factor cosine
//	GET  /metrics                     Prometheus text exposition
//	POST /admin/reload                hot model reload (opt-in: EnableAdminReload)
//
// All responses are JSON except /metrics. Handlers are read-only over an
// immutable dataset and a liveState — the model, its scoring engine, and
// its top-K result cache — held behind one atomic pointer, so they are
// safe for concurrent use and the model can be hot-swapped (SIGHUP in
// cmd/clapf-serve) without dropping a request. Because the cache travels
// inside the liveState, a swap invalidates it atomically: no request can
// pair the new model with entries computed under the old one. The handler
// chain is hardened (see harden.go): panics become 500s, overload sheds
// with 503 (probes exempt), and every request carries a deadline. Every
// request is recorded in the server's obs.Registry.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clapf/internal/dataset"
	"clapf/internal/mathx"
	"clapf/internal/mf"
	"clapf/internal/obs"
	"clapf/internal/obs/trace"
	"clapf/internal/rank"
	"clapf/internal/retrieval"
	"clapf/internal/score"
	"clapf/internal/store"
)

// liveState bundles everything that must change together when the model is
// swapped: the parameter set (a float64 *mf.Model or a float32, possibly
// mmap-backed, *mf.Factors32), the scoring engine built over it, the
// retrieval index (IVF mode only) built from it, and the top-K cache of
// its results. Requests load it once and use only that snapshot, so even
// mid-swap a request is internally consistent — an index can never be
// paired with a model it was not built from, and a cache can never serve
// another generation's answers. An mmap-backed generation needs no
// explicit teardown on retirement: the Factors32 pins its mapping, and a
// finalizer releases the pages once the last request-held snapshot is
// gone (see store.MappedModel).
type liveState struct {
	params mf.Params
	// base is the read-only parameter set under params. With streaming
	// feedback enabled, params is an *mf.Overlay wrapping base (online
	// user-factor updates land in the overlay); otherwise params == base.
	base    mf.Params
	overlay *mf.Overlay // nil when feedback is disabled
	eng     *score.Engine
	mode    retrieval.Mode
	index   *retrieval.Index // nil in exact mode
	cache   *resultCache
}

// DefaultCacheSize bounds the per-generation top-K result cache.
const DefaultCacheSize = 4096

// DefaultMaxBatch bounds entries per /recommend/batch request.
const DefaultMaxBatch = 256

// Server serves recommendations from a trained model. train supplies the
// observed-item exclusions for known users and must match the model's
// dimensions. Configure the exported fields before calling Handler.
type Server struct {
	live  atomic.Pointer[liveState]
	train *dataset.Dataset
	// FoldInReg is the ridge strength for cold-start fold-in.
	FoldInReg float64
	// MaxK caps the k query parameter.
	MaxK int
	// MaxHistory caps the distinct items of a cold-start history (after
	// dedupe); larger requests are rejected with 400 (an unbounded list is
	// a trivial CPU/memory DoS on the fold-in path).
	MaxHistory int
	// MaxBatch caps entries per /recommend/batch request.
	MaxBatch int
	// MaxInFlight bounds concurrently handled recommendation requests;
	// excess load is shed with 503 + Retry-After. <= 0 disables shedding.
	MaxInFlight int
	// RequestTimeout is the per-request context deadline. <= 0 disables it.
	RequestTimeout time.Duration

	// cacheSize is the top-K cache capacity applied when a liveState is
	// built; change it through SetCacheSize, which also rebuilds the
	// current generation's cache.
	cacheSize atomic.Int64
	// retr is the retrieval strategy applied whenever a liveState is
	// built; change it through SetRetrieval.
	retr atomic.Pointer[retrievalSettings]
	// swapMu serializes liveState rebuilds (SwapModel, SetCacheSize,
	// SetRetrieval). Readers stay lock-free; without this, two concurrent
	// rebuilds could interleave their load-build-store sequences and
	// publish a state derived from a model that was just swapped out.
	swapMu sync.Mutex

	ready       atomic.Bool
	storeMapped atomic.Bool   // ReloadFromFile pages v3 files in via mmap
	shedSem     chan struct{} // the live shed semaphore (test hook)
	adminReload func() error  // optional /admin/reload action (EnableAdminReload)
	// feedback is the optional streaming-ingest sink. Atomic because
	// EnableFeedback supports late wiring: request goroutines may already
	// be serving when the sink is attached, and they read it lock-free
	// (positivesFor, handleFeedback, handleHealth). Read via feedbackSink.
	feedback       atomic.Pointer[FeedbackSink]
	jitterMu       sync.Mutex
	jitter         *mathx.RNG    // Retry-After jitter; RNG is not concurrency-safe
	generation     atomic.Uint64 // model swaps since construction
	log            *slog.Logger
	reg            *obs.Registry
	httpm          *obs.HTTPMetrics
	tracer         *trace.Tracer
	traceOff       atomic.Bool
	vitals         *obs.RuntimeSampler
	encodeErrors   *obs.Counter
	panics         *obs.Counter
	sheds          *obs.Counter
	reloadOK       *obs.Counter
	reloadFail     *obs.Counter
	reloadRejected *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	nonfinite      *obs.Counter
	onlineRejected *obs.Counter // registered by EnableFeedback
	started        time.Time
}

// New validates the pair and returns a Server with its own metrics
// registry and a no-op logger (install a real one with SetLogger).
func New(model *mf.Model, train *dataset.Dataset) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	return NewFromParams(model, train)
}

// NewFromParams is New for any parameter representation — in particular a
// float32 set paged in by store.LoadMapped (cmd/clapf-serve -store-mmap).
func NewFromParams(model mf.Params, train *dataset.Dataset) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if train == nil {
		return nil, fmt.Errorf("serve: nil training dataset")
	}
	if err := validateParams(model, train); err != nil {
		return nil, err
	}
	s := &Server{
		train:          train,
		FoldInReg:      0.1,
		MaxK:           100,
		MaxHistory:     1024,
		MaxBatch:       DefaultMaxBatch,
		MaxInFlight:    256,
		RequestTimeout: 10 * time.Second,
		log:            obs.NopLogger(),
		reg:            obs.NewRegistry(),
		started:        time.Now(),
	}
	// Seeded from the clock: Retry-After jitter must differ across
	// processes or a fleet's shed clients re-synchronize anyway.
	s.jitter = mathx.NewRNG(uint64(s.started.UnixNano()))
	s.cacheSize.Store(DefaultCacheSize)
	s.retr.Store(&retrievalSettings{})
	if err := s.install(model, KeepFoldedSeq); err != nil {
		return nil, err
	}
	s.ready.Store(true)
	s.httpm = obs.NewHTTPMetrics(s.reg, "clapf_")
	s.tracer = trace.New(s.reg, "clapf_", trace.Config{SampleRate: 0.01})
	s.vitals = obs.NewRuntimeSampler()
	s.vitals.Register(s.reg, "clapf_")
	s.encodeErrors = s.reg.NewCounter("clapf_encode_errors_total",
		"JSON response bodies that failed to encode after the header was written.")
	s.panics = s.reg.NewCounter("clapf_panics_total",
		"Handler panics recovered into 500 responses.")
	s.sheds = s.reg.NewCounter("clapf_load_shed_total",
		"Requests shed with 503 because the in-flight cap was reached.")
	reloads := s.reg.NewCounterVec("clapf_model_reloads_total",
		"Hot model reload attempts by result.", "result")
	s.reloadOK = reloads.With("ok")
	s.reloadFail = reloads.With("error")
	s.reloadRejected = s.reg.NewCounter("clapf_model_reload_rejected_total",
		"Candidate models refused at swap time (shape mismatch or non-finite parameters); the previous generation keeps serving.")
	s.cacheHits = s.reg.NewCounter("clapf_cache_hits_total",
		"Top-K recommendation requests answered from the result cache.")
	s.cacheMisses = s.reg.NewCounter("clapf_cache_misses_total",
		"Cacheable top-K requests that had to be scored.")
	s.cacheEvictions = s.reg.NewCounter("clapf_cache_evictions_total",
		"Result-cache entries evicted to stay within the capacity bound.")
	s.nonfinite = s.reg.NewCounter("clapf_nonfinite_scores_total",
		"Candidate scores dropped from rankings for being NaN or ±Inf — any nonzero value means the served model is damaged.")
	s.reg.NewGaugeFunc("clapf_cache_entries",
		"Entries currently in the live generation's top-K result cache.",
		func() float64 { return float64(s.live.Load().cache.size()) })
	s.reg.NewGaugeFunc("clapf_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.reg.NewGaugeFunc("clapf_model_users", "Users in the served model.",
		func() float64 { return float64(s.Params().NumUsers()) })
	s.reg.NewGaugeFunc("clapf_model_items", "Items in the served model.",
		func() float64 { return float64(s.Params().NumItems()) })
	s.reg.NewGaugeFunc("clapf_model_dim", "Latent dimensionality of the served model.",
		func() float64 { return float64(s.Params().Dim()) })
	s.reg.NewGaugeFunc("clapf_model_param_bytes",
		"Bytes of factor parameters in the served model (float32 serving halves this).",
		func() float64 { return float64(s.Params().ParamBytes()) })
	s.reg.NewGaugeFunc("clapf_model_generation",
		"Successful model swaps since the server started.",
		func() float64 { return float64(s.generation.Load()) })
	s.reg.NewGaugeFunc("clapf_retrieval_ivf",
		"1 while approximate IVF retrieval is live, 0 for exact scoring.",
		func() float64 {
			if s.live.Load().mode == retrieval.ModeIVF {
				return 1
			}
			return 0
		})
	s.reg.NewGaugeFunc("clapf_ivf_cells",
		"Inverted-list cells in the live IVF index (0 in exact mode).",
		func() float64 {
			if ix := s.live.Load().index; ix != nil {
				return float64(ix.NLists())
			}
			return 0
		})
	s.reg.NewGaugeFunc("clapf_ready",
		"1 while the server accepts traffic, 0 while draining.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	return s, nil
}

// validateParams checks a candidate parameter set against the exclusion
// dataset — the gate every swap must pass so a mismatched file can never
// go live. Besides the shape check it scans for non-finite parameters: a
// model poisoned by divergent training loads and checksums fine (NaN is a
// valid float bit pattern), but every score touching a poisoned row would
// be dropped by the rank layer, silently degrading results. Refusing the
// swap keeps the previous healthy generation serving. For float32 sets
// the scan also catches export-time overflow (out-of-range float64 values
// quantize to ±Inf).
func validateParams(m mf.Params, train *dataset.Dataset) error {
	if m.NumUsers() != train.NumUsers() || m.NumItems() != train.NumItems() {
		return fmt.Errorf("serve: model is %d×%d but dataset is %d×%d",
			m.NumUsers(), m.NumItems(), train.NumUsers(), train.NumItems())
	}
	if u, v, b := m.CountNonFinite(); u+v+b > 0 {
		return fmt.Errorf("serve: model carries %d non-finite parameters (%d user, %d item, %d bias)",
			u+v+b, u, v, b)
	}
	return nil
}

// SetLogger installs the structured logger used for serve-path warnings
// (encode failures and the like). nil restores the no-op logger.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.NopLogger()
	}
	s.log = l
	s.tracer.SetLogger(l)
}

// Tracer exposes the server's request tracer so callers can tune
// sampling (SetSampleRate, SetSlowThreshold) or read the flight
// recorder out-of-band.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// SetTracing enables or disables request tracing; Handler must be
// rebuilt for a change to take effect. With tracing off, requests carry
// no trace context: stage spans degrade to a nil-check and the stage
// histogram and flight recorder go quiet. The bench harness uses this
// for its traced-vs-untraced comparison.
func (s *Server) SetTracing(on bool) { s.traceOff.Store(!on) }

// RuntimeVitals returns the most recent runtime sample (resampled when
// older than a second) — the /healthz source of truth.
func (s *Server) RuntimeVitals() obs.RuntimeVitals { return s.vitals.Latest(time.Second) }

// StartRuntimeSampler launches the background runtime-vitals loop so
// /healthz and the clapf_goroutines/heap/gc gauges stay fresh even with
// no scrape traffic. Returns a stop function; without this call the
// sampler still refreshes lazily on access.
func (s *Server) StartRuntimeSampler(interval time.Duration) (stop func()) {
	s.vitals.Start(interval)
	return s.vitals.Stop
}

// Registry exposes the server's metrics registry so callers can add
// their own series or scrape it out-of-band.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Params returns the currently served parameter set.
func (s *Server) Params() mf.Params { return s.live.Load().params }

// Model returns the currently served model when the live parameter set is
// a float64 *mf.Model, and nil when the server is serving float32 factors
// (NewFromParams/SwapParams with an mf.Factors32). With feedback enabled
// the online-update overlay is transparent: this returns the base model
// under it. Callers that only need dimensions or scores should use Params.
func (s *Server) Model() *mf.Model {
	m, _ := s.live.Load().base.(*mf.Model)
	return m
}

// BaseParams returns the read-only parameter set under the live state —
// identical to Params unless streaming feedback has wrapped it in an
// online-update overlay. Fold-in solves on the ingest path run against it
// so they see exactly the factors a promotion export will bake.
func (s *Server) BaseParams() mf.Params { return s.live.Load().base }

// Generation returns how many successful model swaps have happened.
func (s *Server) Generation() uint64 { return s.generation.Load() }

// CacheSize returns the top-K result cache capacity (0 = disabled).
func (s *Server) CacheSize() int { return int(s.cacheSize.Load()) }

// SetCacheSize resizes the top-K result cache and immediately installs a
// fresh, empty cache of the new size for the current model; n <= 0
// disables caching. Existing entries are dropped, never migrated. The
// model, engine, retrieval mode, and index carry over unchanged.
func (s *Server) SetCacheSize(n int) {
	if n < 0 {
		n = 0
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.cacheSize.Store(int64(n))
	st := s.live.Load()
	s.live.Store(&liveState{
		params: st.params, base: st.base, overlay: st.overlay, eng: st.eng,
		mode: st.mode, index: st.index,
		cache: newResultCache(n),
	})
}

// retrievalSettings is the serving-wide retrieval strategy applied
// whenever a liveState is built.
type retrievalSettings struct {
	mode retrieval.Mode
	cfg  retrieval.Config
}

// Retrieval returns the retrieval mode currently being served.
func (s *Server) Retrieval() retrieval.Mode { return s.live.Load().mode }

// SetRetrieval switches the serving-wide retrieval strategy and rebuilds
// the current generation's liveState under it — in IVF mode that means
// constructing the index for the live model right here, so by the time
// this returns every new request is answered under the new strategy. On
// build failure nothing changes: the old settings and state keep serving.
// Subsequent model swaps rebuild the index for each new model
// automatically.
func (s *Server) SetRetrieval(mode retrieval.Mode, cfg retrieval.Config) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	old := s.retr.Load()
	s.retr.Store(&retrievalSettings{mode: mode, cfg: cfg})
	if err := s.install(s.live.Load().base, KeepFoldedSeq); err != nil {
		s.retr.Store(old)
		return err
	}
	return nil
}

// install builds and publishes the liveState for base parameter set m:
// the online-update overlay when feedback is enabled, the scoring engine,
// the retrieval index when IVF mode is on, plus an empty result cache.
// Publishing the bundle through one pointer store is what makes cache and
// index invalidation atomic with the model swap. Callers must hold swapMu
// (or, in New, be the only goroutine that can see the server).
//
// folded is the feedback watermark m incorporates (KeepFoldedSeq when the
// caller doesn't know — retrieval/cache rebuilds, non-promotion swaps).
// With a feedback sink attached, the whole build-and-publish runs under
// the sink's lock: the sink rebuilds the overlay from events beyond the
// watermark, and because ingest applies updates under the same lock, an
// event is either folded into the overlay being built or applied after
// the new state is published — never dropped in between.
func (s *Server) install(m mf.Params, folded uint64) error {
	sink := s.feedbackSink()
	if sink != nil {
		sink.Lock()
		defer sink.Unlock()
	}
	st := &liveState{
		params: m,
		base:   m,
		mode:   s.retr.Load().mode,
		cache:  newResultCache(int(s.cacheSize.Load())),
	}
	if sink != nil {
		ov, err := sink.RebuildOverlay(m, folded)
		if err != nil {
			return fmt.Errorf("serve: rebuilding online-update overlay: %w", err)
		}
		st.overlay = ov
		st.params = ov
	}
	st.eng = score.NewEngine(st.params)
	if st.mode == retrieval.ModeIVF {
		ix, err := retrieval.BuildIVF(st.params, s.retr.Load().cfg)
		if err != nil {
			return fmt.Errorf("serve: building IVF index: %w", err)
		}
		st.index = ix
	}
	s.live.Store(st)
	return nil
}

// SetReady flips the /readyz signal; cmd/clapf-serve marks the server
// not-ready at the start of a drain so load balancers stop routing to it
// while in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SwapModel atomically replaces the served model after validating it
// against the exclusion dataset. On error the old model keeps serving.
// The swap installs a fresh liveState — model, engine, retrieval index
// (rebuilt for the new model when IVF mode is on), and an empty result
// cache — in one pointer store, so no request can ever serve a previous
// generation's cached top-K, or probe a previous generation's index,
// under the new model. A rejected candidate (shape mismatch, non-finite
// parameters, index build failure) leaves model, index, and generation
// untouched.
func (s *Server) SwapModel(m *mf.Model) error {
	if m == nil {
		return fmt.Errorf("serve: nil model")
	}
	return s.SwapParams(m)
}

// SwapParams is SwapModel for any parameter representation — the reload
// path a float32 (possibly mmap-backed) generation comes in through. The
// outgoing generation needs no teardown: once the last in-flight request
// drops its liveState snapshot, an mmap-backed parameter set is unmapped
// by its finalizer.
func (s *Server) SwapParams(m mf.Params) error {
	return s.swapParams(m, KeepFoldedSeq, 0, false)
}

// KeepFoldedSeq passed as a folded watermark means "unknown — keep the
// feedback sink's current watermark". Swaps that do not come from a
// promotion or a watermarked file use it.
const KeepFoldedSeq = ^uint64(0)

// ErrGenerationFenced is returned by SwapParamsFenced when another swap
// won the race: the candidate was exported against a generation that is
// no longer live, so promoting it could silently roll the model back.
var ErrGenerationFenced = fmt.Errorf("serve: generation changed since export; promotion fenced")

// SwapParamsAt is SwapParams for a candidate that incorporates feedback
// events up to WAL sequence number folded (a promotion export or a model
// file with a FeedbackSeq watermark). The feedback overlay is rebuilt to
// carry only events beyond the watermark.
func (s *Server) SwapParamsAt(m mf.Params, folded uint64) error {
	return s.swapParams(m, folded, 0, false)
}

// SwapParamsFenced is SwapParamsAt guarded by generation fencing: the
// swap proceeds only if the server's generation still equals expectGen —
// the generation the caller exported against. The check runs under the
// swap lock, so a SIGHUP reload racing a promotion cannot interleave.
func (s *Server) SwapParamsFenced(m mf.Params, folded, expectGen uint64) error {
	return s.swapParams(m, folded, expectGen, true)
}

func (s *Server) swapParams(m mf.Params, folded, expectGen uint64, fence bool) error {
	if m == nil {
		return fmt.Errorf("serve: nil model")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if fence && s.generation.Load() != expectGen {
		return ErrGenerationFenced
	}
	if err := validateParams(m, s.train); err != nil {
		s.reloadRejected.Inc()
		return err
	}
	if err := s.install(m, folded); err != nil {
		s.reloadRejected.Inc()
		return err
	}
	s.generation.Add(1)
	return nil
}

// SetStoreMapped selects how ReloadFromFile reads model files: false (the
// default) parses them into a float64 model; true maps v3 files with
// store.LoadMapped and serves the float32 factors from the page cache
// (cmd/clapf-serve -store-mmap).
func (s *Server) SetStoreMapped(on bool) { s.storeMapped.Store(on) }

// ReloadFromFile hot-reloads the model from path: the file is read and
// checksum-verified, its dimensions are validated against the dataset,
// and only then does the pointer swap — a torn, corrupt, or mismatched
// file leaves the old model serving and counts as a failed reload. In
// mapped mode (SetStoreMapped) the factor section is paged in lazily, but
// its checksum is still verified up front: a reload must never publish
// bytes it has not vouched for.
func (s *Server) ReloadFromFile(path string) error {
	var err error
	if s.storeMapped.Load() {
		var mm *store.MappedModel
		if mm, err = store.LoadMapped(path); err == nil {
			if err = mm.Verify(); err == nil {
				err = s.SwapParams(mm.Factors())
			}
			if err != nil {
				mm.Close()
			}
		}
	} else {
		var m *mf.Model
		var meta *store.Meta
		if m, meta, err = store.LoadFileWithMeta(path); err == nil {
			// The file's FeedbackSeq watermark (0 for pre-feedback files)
			// tells the overlay rebuild which WAL events the user factors
			// already incorporate.
			folded := uint64(0)
			if meta != nil {
				folded = meta.FeedbackSeq
			}
			err = s.SwapParamsAt(m, folded)
		}
	}
	if err != nil {
		s.reloadFail.Inc()
		s.log.Error("model reload failed; keeping current model", "path", path, "err", err)
		return err
	}
	s.reloadOK.Inc()
	s.log.Info("model reloaded", "path", path, "generation", s.generation.Load())
	return nil
}

// retryAfterSeconds draws the jittered Retry-After value (1–3s) sent
// with shed 503s, so clients that all failed at the same instant do not
// all come back at the same instant.
func (s *Server) retryAfterSeconds() int {
	s.jitterMu.Lock()
	defer s.jitterMu.Unlock()
	return 1 + s.jitter.Intn(3)
}

// EnableAdminReload mounts POST /admin/reload on the next Handler()
// build, running fn (typically a closure over ReloadFromFile with the
// model path) and reporting the result. The endpoint is how a router
// drives rolling reloads over HTTP instead of per-process SIGHUPs; it is
// exempt from shedding — an operator healing an overloaded fleet must
// not be shed by it — and cmd/clapf-serve keeps it opt-in (-admin-reload)
// because an unauthenticated reload trigger does not belong on an
// internet-facing port. nil disables the endpoint again.
func (s *Server) EnableAdminReload(fn func() error) { s.adminReload = fn }

func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	if err := s.adminReload(); err != nil {
		s.httpError(r.Context(), w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(r.Context(), w, http.StatusOK, struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
	}{Status: "reloaded", Generation: s.generation.Load()})
}

// normalizeMetricPath keeps the metric path label's cardinality bounded:
// routed endpoints keep their path, everything else collapses.
func normalizeMetricPath(p string) string {
	switch p {
	case "/healthz", "/readyz", "/recommend", "/recommend/batch", "/similar", "/feedback", "/metrics", "/debug/traces", "/admin/reload":
		return p
	}
	return "other"
}

// Handler returns the routed HTTP handler wrapped in the hardening,
// tracing, and metrics middleware: metrics(trace(recover(shed(timeout(
// mux))))), so panics and shed requests are visible both in the request
// metrics and as errored traces, and the shed check itself is a traced
// stage.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /recommend", s.handleRecommend)
	mux.HandleFunc("POST /recommend/batch", s.handleRecommendBatch)
	mux.HandleFunc("GET /similar", s.handleSimilar)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.Handle("GET /debug/traces", s.tracer.Handler())
	if s.adminReload != nil {
		mux.HandleFunc("POST /admin/reload", s.handleAdminReload)
	}
	// Mounted unconditionally and gated at request time, so enabling
	// feedback after Handler() has been built (tests, late wiring) still
	// serves the route.
	mux.HandleFunc("POST /feedback", s.handleFeedback)
	var h http.Handler = mux
	h = s.timeoutMiddleware(h)
	h = s.shedMiddleware(h)
	h = s.recoverMiddleware(h)
	if !s.traceOff.Load() {
		h = s.tracer.Middleware(normalizeMetricPath, h)
	}
	return s.httpm.Middleware(normalizeMetricPath, h)
}

// Item is one scored item in a JSON response.
type Item struct {
	Item  int32   `json:"item"`
	Score float64 `json:"score"`
}

// RecommendResponse is the /recommend payload.
type RecommendResponse struct {
	User  *int32 `json:"user,omitempty"`
	Items []Item `json:"items"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status string `json:"status"`
	Users  int    `json:"users"`
	Items  int    `json:"items"`
	Dim    int    `json:"dim"`
	// ModelGeneration counts successful hot reloads since startup.
	ModelGeneration uint64 `json:"model_generation"`
	// Retrieval names the live retrieval strategy ("exact" or "ivf").
	Retrieval string `json:"retrieval"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// RequestsTotal counts requests completed before this one, across
	// all endpoints and status codes.
	RequestsTotal uint64 `json:"requests_total"`
	// Runtime carries the Go runtime vitals from the shared sampler —
	// goroutine count, live heap bytes, and the worst recent GC pause —
	// so a probe shows scheduler and memory pressure without a scrape.
	Runtime obs.RuntimeVitals `json:"runtime"`
	// Feedback carries the streaming-ingest pipeline's state when
	// EnableFeedback is active.
	Feedback *FeedbackStats `json:"feedback,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.live.Load()
	m := st.params
	resp := HealthResponse{
		Status:          "ok",
		Users:           m.NumUsers(),
		Items:           m.NumItems(),
		Dim:             m.Dim(),
		ModelGeneration: s.generation.Load(),
		Retrieval:       st.mode.String(),
		UptimeSeconds:   time.Since(s.started).Seconds(),
		RequestsTotal:   s.httpm.TotalRequests(),
		Runtime:         s.RuntimeVitals(),
	}
	if sink := s.feedbackSink(); sink != nil {
		stats := sink.Stats()
		resp.Feedback = &stats
	}
	s.writeJSON(r.Context(), w, http.StatusOK, resp)
}

// handleReady is the routing signal, distinct from liveness: a draining
// process is still alive (healthz 200) but should get no new traffic
// (readyz 503).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.writeJSON(r.Context(), w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	s.writeJSON(r.Context(), w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	k, err := s.parseK(r)
	if err != nil {
		s.httpError(ctx, w, http.StatusBadRequest, err)
		return
	}

	userParam := r.URL.Query().Get("user")
	itemsParam := r.URL.Query().Get("items")
	switch {
	case userParam != "" && itemsParam != "":
		s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("pass either user or items, not both"))
	case userParam != "":
		s.recommendKnown(ctx, w, userParam, k)
	case itemsParam != "":
		s.recommendColdStart(ctx, w, itemsParam, k)
	default:
		s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("missing user or items parameter"))
	}
}

func (s *Server) recommendKnown(ctx context.Context, w http.ResponseWriter, userParam string, k int) {
	st := s.live.Load()
	u64, err := strconv.ParseInt(userParam, 10, 32)
	if err != nil || u64 < 0 || int(u64) >= st.params.NumUsers() {
		s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("invalid user %q", userParam))
		return
	}
	u := int32(u64)
	items := s.topKForUser(ctx, st, u, k)
	s.writeJSON(ctx, w, http.StatusOK, RecommendResponse{User: &u, Items: items})
}

// topKForUser answers a known-user top-K from st's cache when possible,
// scoring and filling the cache otherwise. All counters (hits, misses,
// evictions, non-finite drops) are maintained here so the single and batch
// paths report identically. Each phase is a trace stage. Exact mode:
// "cache" (lookup, and the fill put on a miss), "score", "merge"
// (exclusion construction — the per-item filtering itself is fused into
// the top-K scan and attributed to "topk"), and "topk". IVF mode: "cache",
// "probe" (centroid scan and cell selection), then "score" (the pruned
// exact re-rank, with exclusion and top-K selection fused into the scan).
func (s *Server) topKForUser(ctx context.Context, st *liveState, u int32, k int) []Item {
	key := cacheKey{user: u, k: k, mode: st.mode}
	sp := trace.StartSpanNoCtx(ctx, "cache")
	items, ok := st.cache.get(key)
	sp.End()
	if ok {
		s.cacheHits.Inc()
		return items
	}
	if st.cache != nil {
		s.cacheMisses.Inc()
	}
	if st.mode == retrieval.ModeIVF {
		uf := st.params.UserVector(u, nil)
		sp = trace.StartSpanNoCtx(ctx, "probe")
		cells := st.index.ProbeCells(uf, 0)
		sp.End()
		sp = trace.StartSpanNoCtx(ctx, "score")
		top, dropped := st.index.SearchCells(uf, cells, k, s.positivesFor(u))
		sp.End()
		items = s.countDropped(top, dropped)
	} else {
		sp = trace.StartSpanNoCtx(ctx, "score")
		scores := make([]float64, st.params.NumItems())
		st.eng.ScoreAll(u, scores)
		sp.End()
		sp = trace.StartSpanNoCtx(ctx, "merge")
		exclude := excludeSorted(s.positivesFor(u))
		sp.End()
		sp = trace.StartSpanNoCtx(ctx, "topk")
		items = s.rankTopK(scores, k, exclude)
		sp.End()
	}
	sp = trace.StartSpanNoCtx(ctx, "cache")
	s.cacheEvictions.Add(uint64(st.cache.put(key, items)))
	sp.End()
	return items
}

// positivesFor returns user u's exclusion set: the training positives,
// extended with any items ingested through /feedback. Without a feedback
// sink — or for users with no ingested events — this is the dataset's own
// slice, shared and allocation-free; with extras it is a fresh sorted
// merge. Every known-user ranking path (exact, IVF, batch sweep) excludes
// through it, so an ingested item stops being recommended back to its
// user the moment its append is acknowledged.
func (s *Server) positivesFor(u int32) []int32 {
	pos := s.train.Positives(u)
	if sink := s.feedbackSink(); sink != nil {
		if extra := sink.ExtraPositives(u); len(extra) > 0 {
			pos = dataset.MergeSorted(pos, extra)
		}
	}
	return pos
}

// excludeSorted builds a TopK exclusion over a sorted id list. rank.TopK
// visits items in increasing order (part of its contract), so one merge
// pointer replaces a binary search per item — profiling showed the
// per-item IsPositive search was ~30% of serve-path CPU.
func excludeSorted(pos []int32) func(int32) bool {
	idx := 0
	return func(i int32) bool {
		for idx < len(pos) && pos[idx] < i {
			idx++
		}
		return idx < len(pos) && pos[idx] == i
	}
}

// countDropped is rankTopK's accounting for the IVF path, where exclusion
// and selection are fused into the index scan and the non-finite drop
// count comes back alongside the entries.
func (s *Server) countDropped(top []rank.Entry, dropped int) []Item {
	if dropped > 0 {
		s.nonfinite.Add(uint64(dropped))
		s.log.Warn("dropped non-finite scores from ranking",
			"dropped", dropped, "generation", s.generation.Load())
	}
	return toItems(top)
}

// rankTopK is the one funnel every serve-path ranking goes through: TopK
// with non-finite scores dropped, counted, and logged. A nonzero
// clapf_nonfinite_scores_total means the live model carries NaN/Inf
// parameters (diverged run, bit-flipped file) — worth an alert, not a
// silent mis-ranking.
func (s *Server) rankTopK(scores []float64, k int, exclude func(int32) bool) []Item {
	top, dropped := rank.TopKDropped(scores, k, exclude)
	if dropped > 0 {
		s.nonfinite.Add(uint64(dropped))
		s.log.Warn("dropped non-finite scores from ranking",
			"dropped", dropped, "generation", s.generation.Load())
	}
	return toItems(top)
}

func (s *Server) recommendColdStart(ctx context.Context, w http.ResponseWriter, itemsParam string, k int) {
	st := s.live.Load()
	history, err := parseItemList(itemsParam, st.params.NumItems(), s.MaxHistory)
	if err != nil {
		s.httpError(ctx, w, http.StatusBadRequest, err)
		return
	}
	items, err := s.topKColdStart(ctx, st, history, k)
	if err != nil {
		s.httpError(ctx, w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(ctx, w, http.StatusOK, RecommendResponse{Items: items})
}

// topKColdStart folds a (deduped) history into user factors and ranks all
// items outside it. Cold-start results are never cached: the history is
// the key and its space is unbounded. Stages in exact mode: "foldin"
// (ridge solve), "merge" (history exclusion set), "score", "topk"; in IVF
// mode "merge" sorts the history for the index's merge-exclusion, then
// "probe" and "score" replace the dense scan. The folded-in vector has the
// same shape as a trained user's factors, so the index probes it
// unchanged.
func (s *Server) topKColdStart(ctx context.Context, st *liveState, history []int32, k int) ([]Item, error) {
	sp := trace.StartSpanNoCtx(ctx, "foldin")
	uf, err := mf.FoldInUser(st.params, history, s.FoldInReg)
	sp.End()
	if err != nil {
		return nil, err
	}
	if st.mode == retrieval.ModeIVF {
		sp = trace.StartSpanNoCtx(ctx, "merge")
		exclude := append([]int32(nil), history...)
		sort.Slice(exclude, func(a, b int) bool { return exclude[a] < exclude[b] })
		sp.End()
		sp = trace.StartSpanNoCtx(ctx, "probe")
		cells := st.index.ProbeCells(uf, 0)
		sp.End()
		sp = trace.StartSpanNoCtx(ctx, "score")
		defer sp.End()
		top, dropped := st.index.SearchCells(uf, cells, k, exclude)
		return s.countDropped(top, dropped), nil
	}
	sp = trace.StartSpanNoCtx(ctx, "merge")
	seen := make(map[int32]bool, len(history))
	for _, it := range history {
		seen[it] = true
	}
	sp.End()
	sp = trace.StartSpanNoCtx(ctx, "score")
	scores := make([]float64, st.params.NumItems())
	st.params.ScoreAllFoldIn(uf, scores)
	sp.End()
	sp = trace.StartSpanNoCtx(ctx, "topk")
	defer sp.End()
	return s.rankTopK(scores, k, func(i int32) bool { return seen[i] }), nil
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	m := s.Params()
	k, err := s.parseK(r)
	if err != nil {
		s.httpError(ctx, w, http.StatusBadRequest, err)
		return
	}
	itemParam := r.URL.Query().Get("item")
	i64, err := strconv.ParseInt(itemParam, 10, 32)
	if err != nil || i64 < 0 || int(i64) >= m.NumItems() {
		s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("invalid item %q", itemParam))
		return
	}
	sp := trace.StartSpanNoCtx(ctx, "score")
	sims, err := mf.SimilarItems(m, int32(i64), k)
	sp.End()
	if err != nil {
		s.httpError(ctx, w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(ctx, w, http.StatusOK, RecommendResponse{Items: toItems(sims)})
}

func (s *Server) parseK(r *http.Request) (int, error) {
	kParam := r.URL.Query().Get("k")
	if kParam == "" {
		return 10, nil
	}
	k, err := strconv.Atoi(kParam)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("invalid k %q", kParam)
	}
	if k > s.MaxK {
		k = s.MaxK
	}
	return k, nil
}

// parseItemList parses a comma-separated history into a deduped item list,
// then applies the length cap to the *unique* count. Capping before dedupe
// would reject legitimate histories padded with repeats (client-side logs
// often carry re-views) while the solve only ever sees each item once; the
// raw parse is linear in the input, which the HTTP layer already bounds.
func parseItemList(param string, numItems, maxItems int) ([]int32, error) {
	parts := strings.Split(param, ",")
	items, err := dedupeHistory(parts, numItems, maxItems)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty item list")
	}
	return items, nil
}

// dedupeHistory validates string-encoded item ids, drops duplicates, and
// enforces the unique-count cap (cap after dedupe; <= 0 disables it).
func dedupeHistory(parts []string, numItems, maxItems int) ([]int32, error) {
	items := make([]int32, 0, len(parts))
	seen := make(map[int32]bool, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("invalid item %q", p)
		}
		if v < 0 || int(v) >= numItems {
			return nil, fmt.Errorf("item %d out of range [0,%d)", v, numItems)
		}
		if seen[int32(v)] {
			continue
		}
		seen[int32(v)] = true
		items = append(items, int32(v))
		if maxItems > 0 && len(items) > maxItems {
			return nil, fmt.Errorf("history has over %d distinct items, limit %d", maxItems, maxItems)
		}
	}
	return items, nil
}

// dedupeIDs is dedupeHistory for already-decoded ids (the batch endpoint's
// JSON histories): validate range, drop duplicates, cap after dedupe.
func dedupeIDs(ids []int32, numItems, maxItems int) ([]int32, error) {
	items := make([]int32, 0, len(ids))
	seen := make(map[int32]bool, len(ids))
	for _, v := range ids {
		if v < 0 || int(v) >= numItems {
			return nil, fmt.Errorf("item %d out of range [0,%d)", v, numItems)
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		items = append(items, v)
		if maxItems > 0 && len(items) > maxItems {
			return nil, fmt.Errorf("history has over %d distinct items, limit %d", maxItems, maxItems)
		}
	}
	return items, nil
}

func toItems(es []rank.Entry) []Item {
	out := make([]Item, len(es))
	for i, e := range es {
		out[i] = Item{Item: e.Item, Score: e.Score}
	}
	return out
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) httpError(ctx context.Context, w http.ResponseWriter, code int, err error) {
	s.writeJSON(ctx, w, code, errorResponse{Error: err.Error()})
}

// writeJSON writes v with the given status under an "encode" trace
// stage. Encoding errors after the header is written cannot reach the
// client anymore, but they must not vanish either: they are logged and
// counted in clapf_encode_errors_total so a broken payload type shows up
// on a dashboard instead of nowhere.
func (s *Server) writeJSON(ctx context.Context, w http.ResponseWriter, code int, v any) {
	sp := trace.StartSpanNoCtx(ctx, "encode")
	defer sp.End()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.encodeErrors.Inc()
		s.log.Error("response encode failed", "err", err, "status", code, "type", fmt.Sprintf("%T", v))
	}
}

package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"clapf/internal/mf"
	"clapf/internal/retrieval"
)

// keys snapshots every key currently in the cache, for white-box
// assertions about mode isolation.
func (c *resultCache) keys() []cacheKey {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheKey, 0, len(c.byKey))
	for k := range c.byKey {
		out = append(out, k)
	}
	return out
}

// TestBatchIVFMatchesSinglePath is the batch endpoint's golden property
// under IVF retrieval: every known-user entry must be answered by exactly
// the dispatch the single-request path uses — probing the index — not by
// a silent fall-back to dense scoring. At full probe width the index is
// exhaustive, so batch answers must additionally byte-match the exact
// engine; at a heavily pruned width the IVF answer is allowed to diverge
// from exact, and the batch answer must follow the IVF divergence.
func TestBatchIVFMatchesSinglePath(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	users := []int32{0, 3, 7, 11, 23, 42}

	singleBody := func(u int32) string {
		rec, _ := get(t, h, "/recommend?user="+itos(u)+"&k=9")
		if rec.Code != http.StatusOK {
			t.Fatalf("user %d: status %d", u, rec.Code)
		}
		return rec.Body.String()
	}
	batchItems := func() map[int32][]Item {
		req := BatchRequest{}
		for _, u := range users {
			req.Requests = append(req.Requests, BatchEntry{User: i32(u), K: 9})
		}
		rec, resp := postBatch(t, h, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
		}
		out := make(map[int32][]Item, len(users))
		for i, r := range resp.Results {
			if r.Error != "" {
				t.Fatalf("entry %d: %s", i, r.Error)
			}
			out[*r.User] = r.Items
		}
		return out
	}
	singleItems := func(u int32) []Item {
		rec, resp := get(t, h, "/recommend?user="+itos(u)+"&k=9")
		if rec.Code != http.StatusOK {
			t.Fatalf("user %d: status %d", u, rec.Code)
		}
		return resp.Items
	}
	assertAgree := func(label string) {
		t.Helper()
		s.SetCacheSize(0) // single first, batch second, no cache coupling
		defer s.SetCacheSize(DefaultCacheSize)
		want := make(map[int32][]Item, len(users))
		for _, u := range users {
			want[u] = singleItems(u)
		}
		got := batchItems()
		for _, u := range users {
			if len(got[u]) != len(want[u]) {
				t.Fatalf("%s: user %d: batch %d items, single %d", label, u, len(got[u]), len(want[u]))
			}
			for i := range want[u] {
				if got[u][i] != want[u][i] {
					t.Errorf("%s: user %d rank %d: batch %+v, single %+v",
						label, u, i, got[u][i], want[u][i])
				}
			}
		}
	}

	// Exact baseline, captured for the full-width comparison below.
	exact := make(map[int32]string, len(users))
	for _, u := range users {
		exact[u] = singleBody(u)
	}
	assertAgree("exact")

	// Full probe width: IVF is exhaustive, so batch == single == exact.
	if err := s.SetRetrieval(retrieval.ModeIVF, retrieval.Config{NLists: 16, NProbe: 16, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	assertAgree("ivf-full")
	for _, u := range users {
		if got := singleBody(u); got != exact[u] {
			t.Errorf("user %d: full-probe IVF diverges from exact", u)
		}
	}

	// Pruned width: the interesting case. If dense scoring leaked back
	// into the batch path it would match exact here; the index answer is
	// the one that must come back.
	if err := s.SetRetrieval(retrieval.ModeIVF, retrieval.Config{NLists: 16, NProbe: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	assertAgree("ivf-pruned")
	diverged := false
	for _, u := range users {
		if singleBody(u) != exact[u] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Log("pruned IVF agreed with exact for every probe user; bypass would be invisible here")
	}
}

// TestBatchIVFCacheKeying checks the batch path's cache discipline under
// IVF: entries answered in pass 1 go through topKForUser's mode-keyed
// cache, so a second identical batch is served from cache (hits counted)
// and every key in the live cache carries the IVF mode.
func TestBatchIVFCacheKeying(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	if err := s.SetRetrieval(retrieval.ModeIVF, retrieval.Config{NLists: 8, NProbe: 2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	req := BatchRequest{Requests: []BatchEntry{
		{User: i32(1), K: 6}, {User: i32(2), K: 6}, {User: i32(1), K: 6},
	}}
	rec, first := postBatch(t, h, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	hits0 := s.cacheHits.Value()
	rec, second := postBatch(t, h, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := s.cacheHits.Value() - hits0; got < 3 {
		t.Errorf("second batch produced %d cache hits, want >= 3", got)
	}
	for i := range first.Results {
		a, b := first.Results[i].Items, second.Results[i].Items
		if len(a) != len(b) {
			t.Fatalf("entry %d: %d items then %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("entry %d rank %d: %+v then %+v", i, j, a[j], b[j])
			}
		}
	}
	for _, k := range s.live.Load().cache.keys() {
		if k.mode != retrieval.ModeIVF {
			t.Errorf("cache key %+v carries mode %v, want IVF", k, k.mode)
		}
	}
}

// TestModeFlipUnderInFlightBatch races batches against retrieval mode
// flips and then asserts the isolation invariant: the cache a request
// generation writes into dies with that generation, and every surviving
// entry's key mode matches the generation's mode — so a batch that was
// in flight across SetRetrieval can never poison the other mode's
// answers.
func TestModeFlipUnderInFlightBatch(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	req := BatchRequest{Requests: []BatchEntry{
		{User: i32(1), K: 5}, {User: i32(2), K: 5}, {User: i32(3), K: 5},
	}}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec, _ := postBatch(t, h, req)
				if rec.Code != http.StatusOK {
					t.Errorf("batch status %d", rec.Code)
					return
				}
			}
		}()
	}
	cfgs := []struct {
		mode retrieval.Mode
		cfg  retrieval.Config
	}{
		{retrieval.ModeIVF, retrieval.Config{NLists: 8, NProbe: 2, Seed: 7}},
		{retrieval.ModeExact, retrieval.Config{}},
		{retrieval.ModeIVF, retrieval.Config{NLists: 16, NProbe: 4, Seed: 9}},
		{retrieval.ModeExact, retrieval.Config{}},
		{retrieval.ModeIVF, retrieval.Config{NLists: 4, NProbe: 1, Seed: 11}},
	}
	for _, c := range cfgs {
		if err := s.SetRetrieval(c.mode, c.cfg); err != nil {
			t.Fatal(err)
		}
		st := s.live.Load()
		if len(st.cache.keys()) != 0 {
			t.Errorf("fresh generation (mode %v) born with %d cache entries", c.mode, len(st.cache.keys()))
		}
	}
	close(stop)
	wg.Wait()

	// Drain one more batch so the final generation has entries, then
	// check every key's mode against the generation that owns it.
	if rec, _ := postBatch(t, h, req); rec.Code != http.StatusOK {
		t.Fatalf("final batch status %d", rec.Code)
	}
	st := s.live.Load()
	ks := st.cache.keys()
	if len(ks) == 0 {
		t.Fatal("final generation cached nothing")
	}
	for _, k := range ks {
		if k.mode != st.mode {
			t.Errorf("cache key %+v in generation with mode %v", k, st.mode)
		}
	}
}

// TestServeFloat32Params stands the server up over quantized float32
// factors (the -store-mmap serving path minus the file) and checks the
// public surface end to end: recommendations, cold-start fold-in,
// similar-items, health dims, batch/single agreement, and that Model()
// correctly reports the absence of a float64 model.
func TestServeFloat32Params(t *testing.T) {
	s64, train := testServer(t)
	m, _ := s64.Params().(*mf.Model)
	if m == nil {
		t.Fatal("testServer did not serve an *mf.Model")
	}
	s, err := NewFromParams(mf.QuantizeF32(m), train)
	if err != nil {
		t.Fatal(err)
	}
	if s.Model() != nil {
		t.Error("Model() should be nil when serving float32 factors")
	}
	h := s.Handler()
	for _, p := range []string{
		"/recommend?user=3&k=7",
		"/recommend?items=5,2,9&k=7",
		"/similar?item=4&k=5",
	} {
		rec, _ := get(t, h, p)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", p, rec.Code, rec.Body.String())
		}
	}
	hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, hreq)
	if hrec.Code != http.StatusOK {
		t.Fatalf("/healthz: status %d: %s", hrec.Code, hrec.Body.String())
	}

	// Single and batch must agree bit-for-bit on the float32 engine.
	s.SetCacheSize(0)
	recSingle, single := get(t, h, "/recommend?user=11&k=8")
	if recSingle.Code != http.StatusOK {
		t.Fatalf("single status %d", recSingle.Code)
	}
	rec, batch := postBatch(t, h, BatchRequest{Requests: []BatchEntry{{User: i32(11), K: 8}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d", rec.Code)
	}
	if len(batch.Results[0].Items) != len(single.Items) {
		t.Fatalf("batch %d items, single %d", len(batch.Results[0].Items), len(single.Items))
	}
	for i := range single.Items {
		if single.Items[i] != batch.Results[0].Items[i] {
			t.Errorf("rank %d: single %+v, batch %+v", i, single.Items[i], batch.Results[0].Items[i])
		}
	}

	// IVF over float32 factors serves too, and full width matches the
	// f32 exact answers byte-for-byte.
	exactBody := recSingle.Body.String()
	if err := s.SetRetrieval(retrieval.ModeIVF, retrieval.Config{NLists: 16, NProbe: 16, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	recIVF, _ := get(t, h, "/recommend?user=11&k=8")
	if recIVF.Code != http.StatusOK {
		t.Fatalf("ivf status %d", recIVF.Code)
	}
	if recIVF.Body.String() != exactBody {
		t.Errorf("full-probe f32 IVF diverges from f32 exact\nivf:   %s\nexact: %s",
			recIVF.Body.String(), exactBody)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clapf/internal/obs"
	"clapf/internal/obs/trace"
)

func debugTraces(t *testing.T, h http.Handler, query string) trace.DebugResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces"+query, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces returned %d", rec.Code)
	}
	var resp trace.DebugResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad /debug/traces JSON: %v", err)
	}
	return resp
}

// TestTraceSmoke is the scripts/check.sh trace gate: a real request must
// land in the flight recorder with its stage spans, and the per-stage
// histogram must be populated in /metrics.
func TestTraceSmoke(t *testing.T) {
	s, _ := testServer(t)
	s.SetCacheSize(0) // force the full score/topk pipeline
	s.Tracer().SetSampleRate(1)
	h := s.Handler()

	rec, _ := get(t, h, "/recommend?user=1&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("recommend returned %d", rec.Code)
	}

	resp := debugTraces(t, h, "")
	if len(resp.Traces) == 0 {
		t.Fatal("no trace retained at sample rate 1")
	}
	var reqTrace *trace.Record
	for _, tr := range resp.Traces {
		if tr.Name == "/recommend" {
			reqTrace = tr
			break
		}
	}
	if reqTrace == nil {
		t.Fatalf("no /recommend trace in recorder: %+v", resp.Traces)
	}
	if reqTrace.Status != http.StatusOK || reqTrace.Bytes <= 0 {
		t.Errorf("trace status/bytes = %d/%d, want 200/>0", reqTrace.Status, reqTrace.Bytes)
	}
	stages := map[string]bool{}
	for _, sp := range reqTrace.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"/recommend", "shed", "score", "merge", "topk", "encode"} {
		if !stages[want] {
			t.Errorf("stage %q missing from trace spans: %v", want, stages)
		}
	}
	if reqTrace.Spans[0].Parent != -1 {
		t.Errorf("root span parent = %d, want -1", reqTrace.Spans[0].Parent)
	}

	// The stage histogram must be visible in the Prometheus exposition.
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := mrec.Body.String()
	if !strings.Contains(body, `clapf_stage_duration_seconds_count{stage="score"}`) {
		t.Errorf("score stage histogram missing from /metrics")
	}
	if !strings.Contains(body, "clapf_traces_started_total") {
		t.Errorf("traces_started counter missing from /metrics")
	}
	for _, g := range []string{"clapf_goroutines", "clapf_heap_bytes", "clapf_gc_pause_seconds"} {
		if !strings.Contains(body, g) {
			t.Errorf("runtime gauge %s missing from /metrics", g)
		}
	}
}

// TestSlowRequestTailCapture proves tail-based retention: with head
// sampling off and the slow threshold below any real request, the
// request must still be captured, flagged "slow", logged, and carry an
// intact parent/child span tree.
func TestSlowRequestTailCapture(t *testing.T) {
	s, _ := testServer(t)
	s.SetCacheSize(0)
	var logBuf bytes.Buffer
	s.SetLogger(obs.NewTextLogger(&logBuf, slog.LevelInfo))
	s.Tracer().SetSampleRate(0)
	s.Tracer().SetSlowThreshold(time.Nanosecond)
	h := s.Handler()

	if rec, _ := get(t, h, "/recommend?user=2&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("recommend returned %d", rec.Code)
	}

	resp := debugTraces(t, h, "?keep=slow")
	var slow *trace.Record
	for _, tr := range resp.Traces {
		if tr.Name == "/recommend" {
			slow = tr
			break
		}
	}
	if slow == nil {
		t.Fatalf("slow request not tail-captured: %+v", resp.Traces)
	}
	childOfRoot := 0
	for i, sp := range slow.Spans {
		if i == 0 {
			continue
		}
		if sp.Parent < 0 || sp.Parent >= len(slow.Spans) {
			t.Errorf("span %d (%s) has out-of-range parent %d", i, sp.Stage, sp.Parent)
		}
		if sp.Parent == 0 {
			childOfRoot++
		}
	}
	if childOfRoot == 0 {
		t.Error("no span parents at the root: tree structure lost")
	}
	if !strings.Contains(logBuf.String(), "trace retained") {
		t.Errorf("slow request not logged:\n%s", logBuf.String())
	}
}

// TestErrorRequestTailCapture: a 5xx is always retained, head sampling
// notwithstanding. 4xx client errors are not tail-kept.
func TestErrorRequestTailCapture(t *testing.T) {
	s, _ := testServer(t)
	s.Tracer().SetSampleRate(0)
	h := s.Handler()

	// 400: not retained.
	if rec, _ := get(t, h, "/recommend?user=notanumber"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad request returned %d", rec.Code)
	}
	if resp := debugTraces(t, h, ""); len(resp.Traces) != 0 {
		t.Errorf("4xx retained: %+v", resp.Traces)
	}
}

// TestBatchEntrySpans: each batch entry gets its own span annotated with
// the entry index.
func TestBatchEntrySpans(t *testing.T) {
	s, _ := testServer(t)
	s.SetCacheSize(0)
	s.Tracer().SetSampleRate(1)
	h := s.Handler()

	u0, u1 := int32(1), int32(2)
	body, _ := json.Marshal(BatchRequest{Requests: []BatchEntry{
		{User: &u0, K: 3}, {User: &u1, K: 3},
	}})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/recommend/batch", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch returned %d: %s", rec.Code, rec.Body.String())
	}

	resp := debugTraces(t, h, "")
	var batch *trace.Record
	for _, tr := range resp.Traces {
		if tr.Name == "/recommend/batch" {
			batch = tr
			break
		}
	}
	if batch == nil {
		t.Fatal("no batch trace retained")
	}
	notes := map[string]bool{}
	for _, sp := range batch.Spans {
		if sp.Stage == "entry" {
			notes[sp.Note] = true
		}
	}
	if !notes["0"] || !notes["1"] {
		t.Errorf("entry spans missing index notes: %v", notes)
	}
}

// TestInboundTraceparentPropagates: trace continuity through the full
// serve handler chain.
func TestInboundTraceparentPropagates(t *testing.T) {
	s, _ := testServer(t)
	s.Tracer().SetSampleRate(0)
	h := s.Handler()

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req := httptest.NewRequest(http.MethodGet, "/recommend?user=1&k=3", nil)
	req.Header.Set("traceparent", inbound)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("recommend returned %d", rec.Code)
	}

	// Sampled inbound flag forces retention despite rate 0; the retained
	// trace carries the caller's IDs.
	resp := debugTraces(t, h, "")
	found := false
	for _, tr := range resp.Traces {
		if tr.TraceID == "4bf92f3577b34da6a3ce929d0e0e4736" {
			found = true
			if tr.RemoteParent != "00f067aa0ba902b7" {
				t.Errorf("remote parent = %q", tr.RemoteParent)
			}
		}
	}
	if !found {
		t.Errorf("inbound trace ID not adopted/retained: %+v", resp.Traces)
	}
}

// TestSetTracingOffRemovesMiddleware: the untraced handler chain starts
// no traces and still serves correctly — the bench's baseline arm.
func TestSetTracingOffRemovesMiddleware(t *testing.T) {
	s, _ := testServer(t)
	s.SetTracing(false)
	s.Tracer().SetSampleRate(1)
	h := s.Handler()
	if rec, _ := get(t, h, "/recommend?user=1&k=3"); rec.Code != http.StatusOK {
		t.Fatalf("untraced recommend returned %d", rec.Code)
	}
	if resp := debugTraces(t, h, ""); len(resp.Traces) != 0 || resp.RecordedTotal != 0 {
		t.Errorf("tracing off but traces recorded: %+v", resp)
	}
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(mrec.Body.String(), `clapf_traces_started_total 1`) {
		t.Error("tracing off but traces started")
	}
}

// TestSeriesCeiling exercises every endpoint (success and failure paths)
// plus the training-style stage observations and asserts the registry's
// total series count stays under a fixed ceiling — the metric-cardinality
// regression gate.
func TestSeriesCeiling(t *testing.T) {
	s, _ := testServer(t)
	s.Tracer().SetSampleRate(1)
	s.Tracer().SetSlowThreshold(time.Nanosecond) // exercise every keep reason
	h := s.Handler()

	u := int32(1)
	batchBody, _ := json.Marshal(BatchRequest{Requests: []BatchEntry{{User: &u, K: 3}}})
	reqs := []struct {
		method, path string
		body         []byte
	}{
		{http.MethodGet, "/healthz", nil},
		{http.MethodGet, "/readyz", nil},
		{http.MethodGet, "/recommend?user=1&k=3", nil},
		{http.MethodGet, "/recommend?items=1,2&k=3", nil},
		{http.MethodGet, "/recommend?user=notanumber", nil},
		{http.MethodGet, "/similar?item=1&k=3", nil},
		{http.MethodGet, "/similar?item=notanumber", nil},
		{http.MethodPost, "/recommend/batch", batchBody},
		{http.MethodPost, "/recommend/batch", []byte("{garbage")},
		{http.MethodGet, "/metrics", nil},
		{http.MethodGet, "/debug/traces", nil},
		{http.MethodGet, "/completely/unknown/path/42", nil},
		{http.MethodGet, "/another/unknown", nil},
	}
	for _, r := range reqs {
		var req *http.Request
		if r.body != nil {
			req = httptest.NewRequest(r.method, r.path, bytes.NewReader(r.body))
			req.Header.Set("Content-Type", "application/json")
		} else {
			req = httptest.NewRequest(r.method, r.path, nil)
		}
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	// Stage observations from the training side share the same naming
	// budget when train and serve export into one registry.
	for _, stage := range []string{"train.sample", "train.risk", "train.update", "train.checkpoint"} {
		s.Tracer().ObserveStage(stage, time.Millisecond)
	}

	const ceiling = 512
	n := s.Registry().NumSeries()
	if n < 0 {
		t.Fatal("NumSeries failed to render the registry")
	}
	if n > ceiling {
		t.Errorf("registry exposes %d series, ceiling %d — label cardinality is leaking", n, ceiling)
	}
	t.Logf("registry series count: %d (ceiling %d)", n, ceiling)
}

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"clapf/internal/guard"
	"clapf/internal/mf"
	"clapf/internal/obs/trace"
)

// FeedbackStats is the streaming-ingest pipeline's state, surfaced in
// /healthz. The sink implementation (internal/feedback.Ingestor) fills it.
type FeedbackStats struct {
	// Appends is how many events have been durably appended to the WAL.
	Appends uint64 `json:"appends"`
	// Replayed counts events recovered from the WAL at startup.
	Replayed uint64 `json:"replayed"`
	// OnlineUpdates counts fold-in factor updates applied to the overlay.
	OnlineUpdates uint64 `json:"online_updates"`
	// LastSeq and FoldedSeq are the WAL head and the promotion watermark;
	// their difference (Pending) is the log's unfolded backlog.
	LastSeq   uint64 `json:"last_seq"`
	FoldedSeq uint64 `json:"folded_seq"`
	Pending   uint64 `json:"pending"`
	// OverlayUsers is how many users currently score through an
	// online-updated factor row.
	OverlayUsers int `json:"overlay_users"`
	// Segments is the number of live WAL segment files.
	Segments int `json:"wal_segments"`
	// Promotions counts completed promotion attempts by outcome.
	Promotions map[string]uint64 `json:"promotions,omitempty"`
}

// FeedbackSink is the ingest pipeline the server hands /feedback events
// to; internal/feedback.Ingestor is the implementation. The server never
// imports the feedback package — the sink is injected (EnableFeedback) by
// cmd/clapf-serve — so the dependency points one way.
//
// The sync.Locker is the consistency contract between ingest and model
// swaps: Ingest holds the lock while recording an event and applying its
// online update, and install holds it across RebuildOverlay and the
// liveState publish. That ordering guarantees every event is either in
// the overlay being built or applied to the published state — a swap can
// never lose an acknowledged event's update. RebuildOverlay is always
// called with the lock already held.
type FeedbackSink interface {
	sync.Locker
	// Ingest durably records one event and applies its online update.
	// seq is the WAL sequence number; applied reports whether the event
	// extended the user's history (false for duplicates and for users at
	// their history cap — the event is still durable and acknowledged).
	Ingest(ctx context.Context, user, item int32) (seq uint64, applied bool, err error)
	// ExtraPositives returns the sorted ingested-item history for u
	// (nil for users with none). The result must be safe to read after
	// the call — a snapshot or an immutable slice.
	ExtraPositives(u int32) []int32
	// RebuildOverlay builds the online-update overlay for a new base
	// parameter set. folded is the WAL watermark base incorporates;
	// KeepFoldedSeq keeps the sink's current watermark. Only events
	// beyond the watermark are re-solved into the overlay.
	RebuildOverlay(base mf.Params, folded uint64) (*mf.Overlay, error)
	// Stats reports pipeline state for /healthz.
	Stats() FeedbackStats
}

// EnableFeedback attaches the streaming-ingest sink and rewraps the live
// state so online updates have an overlay to land in. Mounts POST
// /feedback on the next Handler() build. Call once, at startup, after the
// sink has replayed its WAL; the sink's RebuildOverlay is invoked
// immediately (with its current watermark) to fold any replayed backlog
// into the serving state. Does not bump the model generation — the base
// parameters are unchanged.
func (s *Server) EnableFeedback(sink FeedbackSink) error {
	if sink == nil {
		return fmt.Errorf("serve: nil feedback sink")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.feedback.Load() != nil {
		return fmt.Errorf("serve: feedback already enabled")
	}
	// Register the counter before the sink is published: the atomic store
	// below is what makes the sink visible to request goroutines, so
	// everything they may read through it must be written first.
	if s.onlineRejected == nil {
		s.onlineRejected = s.reg.NewCounter("clapf_online_update_rejected_total",
			"Online fold-in updates refused by the non-finite guard; the user keeps serving base factors.")
	}
	s.feedback.Store(&sink)
	if err := s.install(s.live.Load().base, KeepFoldedSeq); err != nil {
		s.feedback.Store(nil)
		return err
	}
	return nil
}

// feedbackSink returns the attached streaming-ingest sink, nil before
// EnableFeedback. Lock-free readers on request goroutines go through
// this — never through the field directly.
func (s *Server) feedbackSink() FeedbackSink {
	if p := s.feedback.Load(); p != nil {
		return *p
	}
	return nil
}

// UpdateUser re-solves user u's factors over history (training positives
// merged with ingested extras, sorted) against the live base parameters
// and installs the result in the online-update overlay, invalidating only
// u's cached top-K entries. Callers (the ingest path) hold the sink lock,
// which serializes this against overlay rebuilds — see FeedbackSink.
func (s *Server) UpdateUser(u int32, history []int32) error {
	st := s.live.Load()
	if st.overlay == nil {
		return fmt.Errorf("serve: feedback not enabled")
	}
	vec, err := mf.FoldInUser(st.base, history, s.FoldInReg)
	if err != nil {
		return err
	}
	if n := guard.ScanVector(vec); n > 0 {
		if s.onlineRejected != nil {
			s.onlineRejected.Inc()
		}
		return fmt.Errorf("serve: online update for user %d produced %d non-finite factors", u, n)
	}
	if err := st.overlay.Set(u, vec); err != nil {
		return err
	}
	st.cache.invalidateUser(u)
	return nil
}

// InvalidateUserCache drops user u's cached top-K entries from the live
// generation. The ingest path calls it when an event extends u's
// exclusion set but the factor update itself is refused (non-finite
// guard): UpdateUser only invalidates on success, yet the cached
// rankings may still carry the just-ingested item that positivesFor now
// excludes.
func (s *Server) InvalidateUserCache(u int32) {
	s.live.Load().cache.invalidateUser(u)
}

// feedbackRequest is the POST /feedback body: one event, or a batch under
// "events". A single-event body and a one-element batch are equivalent.
type feedbackRequest struct {
	User   *int32          `json:"user,omitempty"`
	Item   *int32          `json:"item,omitempty"`
	Events []feedbackEvent `json:"events,omitempty"`
}

type feedbackEvent struct {
	User int32 `json:"user"`
	Item int32 `json:"item"`
}

// FeedbackResponse is the POST /feedback payload. Seq is the WAL sequence
// number of the last event — by the time the response is written, every
// event in the request is fsync-durable.
type FeedbackResponse struct {
	Status  string `json:"status"`
	Seq     uint64 `json:"seq"`
	Events  int    `json:"events"`
	Applied int    `json:"applied"`
}

// maxFeedbackBody bounds the request body; at ~20 bytes per event this
// comfortably fits the MaxBatch-bounded event count.
const maxFeedbackBody = 1 << 20

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	sink := s.feedbackSink()
	if sink == nil {
		s.httpError(ctx, w, http.StatusNotFound, fmt.Errorf("feedback ingest not enabled (start with -feedback-log)"))
		return
	}
	var req feedbackRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxFeedbackBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("invalid body: %w", err))
		return
	}
	events := req.Events
	if req.User != nil || req.Item != nil {
		if len(events) > 0 {
			s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("pass either user/item or events, not both"))
			return
		}
		if req.User == nil || req.Item == nil {
			s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("both user and item are required"))
			return
		}
		events = []feedbackEvent{{User: *req.User, Item: *req.Item}}
	}
	if len(events) == 0 {
		s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("no events"))
		return
	}
	if s.MaxBatch > 0 && len(events) > s.MaxBatch {
		s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("%d events exceed the batch limit %d", len(events), s.MaxBatch))
		return
	}
	st := s.live.Load()
	for _, ev := range events {
		if ev.User < 0 || int(ev.User) >= st.params.NumUsers() {
			s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("user %d out of range [0,%d)", ev.User, st.params.NumUsers()))
			return
		}
		if ev.Item < 0 || int(ev.Item) >= st.params.NumItems() {
			s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("item %d out of range [0,%d)", ev.Item, st.params.NumItems()))
			return
		}
	}
	sp := trace.StartSpanNoCtx(ctx, "ingest")
	var lastSeq uint64
	applied := 0
	for _, ev := range events {
		seq, ok, err := sink.Ingest(ctx, ev.User, ev.Item)
		if err != nil {
			sp.End()
			// Durability could not be confirmed: the client must not treat
			// the event as recorded.
			s.httpError(ctx, w, http.StatusServiceUnavailable, fmt.Errorf("ingest failed: %w", err))
			return
		}
		lastSeq = seq
		if ok {
			applied++
		}
	}
	sp.End()
	s.writeJSON(ctx, w, http.StatusOK, FeedbackResponse{
		Status:  "ok",
		Seq:     lastSeq,
		Events:  len(events),
		Applied: applied,
	})
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"clapf/internal/datagen"
	"clapf/internal/mathx"
	"clapf/internal/mf"
)

// benchServer builds a ML100K-quarter-scale server with a Gaussian model:
// serving cost is independent of parameter values, so no training needed.
func benchServer(b *testing.B) *Server {
	b.Helper()
	w, err := datagen.Generate(datagen.Profile{
		Name: "bench", Users: 235, Items: 420, Pairs: 8000,
		ZipfExp: 0.6, Dim: 4, Affinity: 6,
	}, mathx.NewRNG(3))
	if err != nil {
		b.Fatal(err)
	}
	m := mf.MustNew(mf.Config{NumUsers: 235, NumItems: 420, Dim: 16, UseBias: true, InitStd: 0.1})
	m.InitGaussian(mathx.NewRNG(4), 0.1)
	s, err := New(m, w.Data)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSingleGet is the uncached single-request handler cost —
// compare per-entry against BenchmarkBatchPost64/64 to see the
// amortization the batch endpoint buys before transport is even counted.
func BenchmarkSingleGet(b *testing.B) {
	s := benchServer(b)
	s.SetCacheSize(0)
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/recommend?user=3&k=10", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
	}
}

// BenchmarkCachedGet is the same request against a warmed result cache.
func BenchmarkCachedGet(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/recommend?user=3&k=10", nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/recommend?user=3&k=10", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
	}
}

// BenchmarkBatchPost64 serves 64 uncached recommendation lists per
// operation through /recommend/batch.
func BenchmarkBatchPost64(b *testing.B) {
	s := benchServer(b)
	s.SetCacheSize(0)
	h := s.Handler()
	req := BatchRequest{Requests: make([]BatchEntry, 64)}
	for j := range req.Requests {
		u := int32(j % 200)
		req.Requests[j] = BatchEntry{User: &u, K: 10}
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/recommend/batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
	}
}

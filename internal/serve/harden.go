package serve

import (
	"context"
	"net/http"
	"runtime/debug"
	"strconv"

	"clapf/internal/obs/trace"
)

// This file is the serve-path failure containment: a panic in one handler
// must not kill the process, a burst of traffic must degrade into fast
// 503s instead of unbounded queueing, and no request may hold a goroutine
// forever. Each concern is one middleware; Handler() stacks them so the
// request metrics see everything, including the failures.

// exemptFromHardening marks the cheap operational endpoints that must
// answer even when the server is overloaded — shedding a health probe
// would make an overloaded server look dead and get it restarted.
func exemptFromHardening(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics", "/debug/traces", "/admin/reload":
		return true
	}
	return false
}

// recoverMiddleware converts handler panics into 500 responses, counts
// them in clapf_panics_total, and logs the stack. The connection's
// goroutine survives, so one poisoned request cannot take the process
// down with it.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { // deliberate abort, not a bug
				panic(rec)
			}
			s.panics.Inc()
			s.log.Error("handler panic recovered",
				"path", r.URL.Path, "panic", rec, "stack", string(debug.Stack()))
			// The header may already be out; this write is best-effort.
			http.Error(w, `{"error":"internal server error"}`, http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}

// shedMiddleware bounds in-flight recommendation work with a semaphore.
// When MaxInFlight requests are already running, new ones are rejected
// immediately with 503 + Retry-After rather than queued — under overload
// a bounded server stays fast for the requests it does accept.
func (s *Server) shedMiddleware(next http.Handler) http.Handler {
	if s.MaxInFlight <= 0 {
		return next
	}
	sem := make(chan struct{}, s.MaxInFlight)
	s.shedSem = sem // exposed so tests can saturate the full handler chain
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromHardening(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		// The admission check is its own trace stage: when the semaphore
		// is contended, the time spent here is real queueing the stage
		// histogram should attribute, not blame on the handler.
		sp := trace.StartSpanNoCtx(r.Context(), "shed")
		select {
		case sem <- struct{}{}:
			sp.End()
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			sp.End()
			s.sheds.Inc()
			// The Retry-After is jittered (1–3s): every shed client getting a
			// flat "1" would retry in one synchronized wave and re-shed
			// itself — the same thundering herd the shed exists to absorb,
			// just delayed. Spreading the retries over a window drains the
			// backlog instead of re-spiking it.
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			s.writeJSON(r.Context(), w, http.StatusServiceUnavailable, errorResponse{Error: "overloaded"})
		}
	})
}

// timeoutMiddleware attaches a deadline to each request's context so
// downstream work inherits a bound on how long it may run.
func (s *Server) timeoutMiddleware(next http.Handler) http.Handler {
	if s.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromHardening(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

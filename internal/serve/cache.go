package serve

import (
	"container/list"
	"sync"

	"clapf/internal/retrieval"
)

// resultCache is a bounded LRU of finished top-K responses keyed on
// (user id, k). It holds no generation field on purpose: invalidation is
// structural. Each liveState owns exactly one cache, created empty when
// the model is installed, and a model swap replaces the whole liveState
// pointer atomically — so a request that loaded the old state keeps
// reading (and even writing) the old cache, which is then garbage, while
// no request holding the new state can ever observe a pre-swap entry.
//
// Only known-user requests are cached: cold-start histories are free-form
// and would make the key space unbounded.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[cacheKey]*list.Element
}

// cacheKey carries the retrieval mode alongside (user, k): exact and IVF
// answers for the same request differ, and SetRetrieval rebuilds the
// liveState but a request racing it may still write into the old
// generation's cache — keying on mode means such an entry can never be
// served under the other mode.
type cacheKey struct {
	user int32
	k    int
	mode retrieval.Mode
}

type cacheEntry struct {
	key   cacheKey
	items []Item
}

// newResultCache returns a cache bounded to capacity entries, or nil when
// capacity <= 0 (caching disabled; all lookups miss).
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached items for key, marking it most-recently used.
// The returned slice is shared and must be treated as immutable.
func (c *resultCache) get(key cacheKey) ([]Item, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).items, true
}

// put stores items under key and reports how many entries were evicted to
// stay within capacity (0 or 1). Re-putting an existing key refreshes it.
func (c *resultCache) put(key cacheKey, items []Item) (evicted int) {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).items = items
		c.ll.MoveToFront(el)
		return 0
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, items: items})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// invalidateUser drops every entry belonging to user u — the targeted
// invalidation the online-update path needs: one user's factors changed,
// so only that user's cached top-K answers (across all k and modes) are
// stale; everyone else's stay warm. The scan is over the key map, bounded
// by the cache capacity (microseconds at the default 4096), and runs
// under the same mutex as get/put.
func (c *resultCache) invalidateUser(u int32) (removed int) {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.byKey {
		if key.user == u {
			c.ll.Remove(el)
			delete(c.byKey, key)
			removed++
		}
	}
	return removed
}

// size returns the current entry count.
func (c *resultCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

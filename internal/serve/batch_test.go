package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func postBatch(t *testing.T, h http.Handler, req BatchRequest) (*httptest.ResponseRecorder, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postBatchRaw(t, h, string(body))
}

func postBatchRaw(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, BatchResponse) {
	t.Helper()
	httpReq := httptest.NewRequest(http.MethodPost, "/recommend/batch", strings.NewReader(body))
	httpReq.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httpReq)
	var resp BatchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad batch JSON: %v: %s", err, rec.Body.String())
		}
	}
	return rec, resp
}

func i32(v int32) *int32 { return &v }

// The batch endpoint's golden property: every entry's answer is exactly
// what the single-request path returns for the same query — same items,
// same scores, same order — whether the entry is a known user, a repeated
// user sharing a score row, or a cold-start history.
func TestBatchMatchesSinglePath(t *testing.T) {
	s, _ := testServer(t)
	s.SetCacheSize(0) // compare pure computation, not cache plumbing
	h := s.Handler()

	rec, resp := postBatch(t, h, BatchRequest{Requests: []BatchEntry{
		{User: i32(3), K: 7},
		{User: i32(11)},      // default k = 10
		{User: i32(3), K: 7}, // duplicate entry shares a score row
		{Items: []int32{1, 2, 3}, K: 5},
		{Items: []int32{3, 3, 5}, K: 2}, // history with duplicates
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(resp.Results))
	}

	singles := []string{
		"/recommend?user=3&k=7",
		"/recommend?user=11",
		"/recommend?user=3&k=7",
		"/recommend?items=1,2,3&k=5",
		"/recommend?items=3,3,5&k=2",
	}
	for i, path := range singles {
		_, want := get(t, h, path)
		got := resp.Results[i]
		if got.Error != "" {
			t.Fatalf("entry %d: unexpected error %q", i, got.Error)
		}
		if len(got.Items) != len(want.Items) {
			t.Fatalf("entry %d: %d items, single path %d", i, len(got.Items), len(want.Items))
		}
		for j := range want.Items {
			if got.Items[j] != want.Items[j] {
				t.Errorf("entry %d rank %d: batch %+v != single %+v", i, j, got.Items[j], want.Items[j])
			}
		}
	}
	// Known-user entries echo the user id; cold-start entries do not.
	if resp.Results[0].User == nil || *resp.Results[0].User != 3 {
		t.Error("known-user entry missing user echo")
	}
	if resp.Results[3].User != nil {
		t.Error("cold-start entry echoed a user id")
	}
}

// One bad entry must not fail the batch: errors are reported in place and
// the rest still get answers.
func TestBatchPerEntryErrors(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	rec, resp := postBatch(t, h, BatchRequest{Requests: []BatchEntry{
		{User: i32(999)},                  // out of range
		{User: i32(1), Items: []int32{2}}, // both
		{},                                // neither
		{User: i32(1), K: -3},             // bad k
		{Items: []int32{4000}},            // history item out of range
		{User: i32(1), K: 3},              // fine
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	for i := 0; i < 5; i++ {
		if resp.Results[i].Error == "" {
			t.Errorf("entry %d: expected an error", i)
		}
		if len(resp.Results[i].Items) != 0 {
			t.Errorf("entry %d: items alongside error", i)
		}
	}
	if resp.Results[5].Error != "" || len(resp.Results[5].Items) != 3 {
		t.Errorf("valid entry after errors: %+v", resp.Results[5])
	}
}

func TestBatchRequestLimits(t *testing.T) {
	s, _ := testServer(t)
	s.MaxBatch = 3
	h := s.Handler()

	rec, _ := postBatchRaw(t, h, `{"requests":[]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", rec.Code)
	}
	rec, _ = postBatchRaw(t, h, `{"requests`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", rec.Code)
	}
	over := BatchRequest{Requests: make([]BatchEntry, 4)}
	for i := range over.Requests {
		over.Requests[i] = BatchEntry{User: i32(1)}
	}
	rec, _ = postBatch(t, h, over)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("over MaxBatch: status = %d, want 400", rec.Code)
	}

	// GET is not routed for the batch endpoint.
	getRec := httptest.NewRecorder()
	h.ServeHTTP(getRec, httptest.NewRequest(http.MethodGet, "/recommend/batch", nil))
	if getRec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: status = %d, want 405", getRec.Code)
	}
}

// Batch entries go through the cache like single requests: a primed entry
// is answered without rescoring, and batch-computed results prime the
// cache for the single path.
func TestBatchUsesCache(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	get(t, h, "/recommend?user=5&k=4") // prime via single path
	_, resp := postBatch(t, h, BatchRequest{Requests: []BatchEntry{
		{User: i32(5), K: 4}, // hit
		{User: i32(6), K: 4}, // miss, fills cache
	}})
	if s.cacheHits.Value() != 1 {
		t.Errorf("hits = %d, want 1", s.cacheHits.Value())
	}
	misses := s.cacheMisses.Value()
	get(t, h, "/recommend?user=6&k=4") // now a hit, primed by the batch
	if s.cacheHits.Value() != 2 {
		t.Errorf("hits after single read of batch-primed user = %d, want 2", s.cacheHits.Value())
	}
	if s.cacheMisses.Value() != misses {
		t.Errorf("misses moved %d -> %d on a primed read", misses, s.cacheMisses.Value())
	}
	if len(resp.Results[0].Items) != 4 || len(resp.Results[1].Items) != 4 {
		t.Error("cached/missed batch entries returned wrong item counts")
	}
}

// A model with a non-finite parameter must not poison rankings: the
// poisoned items are dropped from every path (single, batch, cold-start)
// and the damage is visible in clapf_nonfinite_scores_total.
func TestNonFiniteScoresDroppedAndCounted(t *testing.T) {
	s, train := testServer(t)
	s.SetCacheSize(0)
	h := s.Handler()
	m := s.Model()

	// Poison two items the test users have NOT interacted with — train
	// positives are excluded from ranking before the finite check, so a
	// poisoned positive would never reach the drop counter.
	var poison []int32
	for i := int32(m.NumItems()) - 1; i >= 0 && len(poison) < 2; i-- {
		if !train.IsPositive(2, i) && !train.IsPositive(4, i) {
			poison = append(poison, i)
		}
	}
	if len(poison) != 2 {
		t.Fatal("could not find two unseen items to poison")
	}
	m.ItemFactors(poison[0])[0] = math.NaN()
	m.ItemFactors(poison[1])[0] = math.Inf(1)
	poisoned := func(it int32) bool { return it == poison[0] || it == poison[1] }

	rec, body := get(t, h, "/recommend?user=2&k=79")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	for _, it := range body.Items {
		if poisoned(it.Item) {
			t.Errorf("poisoned item %d served (score %v)", it.Item, it.Score)
		}
		if math.IsNaN(it.Score) || math.IsInf(it.Score, 0) {
			t.Errorf("non-finite score %v in response", it.Score)
		}
	}
	if got := s.nonfinite.Value(); got != 2 {
		t.Errorf("clapf_nonfinite_scores_total = %d after a poisoned single request, want 2", got)
	}

	// The batch path counts too.
	beforeCount := s.nonfinite.Value()
	_, resp := postBatch(t, h, BatchRequest{Requests: []BatchEntry{{User: i32(4), K: 50}}})
	for _, it := range resp.Results[0].Items {
		if poisoned(it.Item) {
			t.Errorf("poisoned item %d served via batch", it.Item)
		}
	}
	if s.nonfinite.Value() <= beforeCount {
		t.Error("batch path did not count non-finite drops")
	}

	samples := scrape(t, h)
	if samples["clapf_nonfinite_scores_total"] == 0 {
		t.Error("clapf_nonfinite_scores_total missing from /metrics")
	}
}

// Probe exemption through the REAL handler chain: with the shed semaphore
// saturated, /healthz, /readyz, /metrics, and /debug/traces still answer
// 200 while recommendation traffic is shed — an overloaded-but-healthy
// server must not be killed by its orchestrator, and the flight recorder
// is most valuable exactly when the server is drowning.
func TestProbesExemptUnderOverloadFullStack(t *testing.T) {
	s, _ := testServer(t)
	s.MaxInFlight = 2
	h := s.Handler()
	if s.shedSem == nil {
		t.Fatal("shed semaphore not installed by Handler")
	}
	s.shedSem <- struct{}{} // saturate: both slots held
	s.shedSem <- struct{}{}
	defer func() { <-s.shedSem; <-s.shedSem }()

	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/debug/traces"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s under overload: status = %d, want 200", path, rec.Code)
		}
	}
	rec, _ := get(t, h, "/recommend?user=1&k=2")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/recommend under overload: status = %d, want 503", rec.Code)
	}
	// The shed 503 carries a jittered Retry-After in [1, 3] so shed
	// clients spread their retries instead of returning as one wave.
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Errorf("shed Retry-After = %q, want an integer in [1, 3]", rec.Header().Get("Retry-After"))
	}
	batchRec, _ := postBatchRaw(t, h, `{"requests":[{"user":1}]}`)
	if batchRec.Code != http.StatusServiceUnavailable {
		t.Errorf("/recommend/batch under overload: status = %d, want 503", batchRec.Code)
	}
}

// The Retry-After jitter must actually vary — a constant would recreate
// the synchronized retry wave — while staying within its 1–3s window.
func TestRetryAfterJitterSpread(t *testing.T) {
	s, _ := testServer(t)
	seen := map[int]int{}
	for i := 0; i < 300; i++ {
		v := s.retryAfterSeconds()
		if v < 1 || v > 3 {
			t.Fatalf("retryAfterSeconds = %d, want in [1, 3]", v)
		}
		seen[v]++
	}
	if len(seen) < 2 {
		t.Errorf("300 draws produced a single value %v; jitter is not jittering", seen)
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"clapf/internal/obs/trace"
	"clapf/internal/retrieval"
	"clapf/internal/score"
)

// maxBatchBody bounds the /recommend/batch request body. A full batch of
// MaxBatch entries, each with a MaxHistory-item history of multi-digit
// ids, fits comfortably; anything larger is hostile or misconfigured.
const maxBatchBody = 8 << 20

// BatchEntry is one recommendation request inside a batch: either a known
// user id or a cold-start history, plus an optional per-entry k (0 means
// the default of 10, values above MaxK are clamped, like the GET path).
type BatchEntry struct {
	User  *int32  `json:"user,omitempty"`
	Items []int32 `json:"items,omitempty"`
	K     int     `json:"k,omitempty"`
}

// BatchRequest is the /recommend/batch payload.
type BatchRequest struct {
	Requests []BatchEntry `json:"requests"`
}

// BatchResult is one entry's outcome. Exactly one of Items or Error is
// meaningful: a malformed entry reports its error in place so the rest of
// the batch still gets answers.
type BatchResult struct {
	User  *int32 `json:"user,omitempty"`
	Items []Item `json:"items,omitempty"`
	Error string `json:"error,omitempty"`
}

// BatchResponse is the /recommend/batch response; Results is parallel to
// the request's Requests.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// handleRecommendBatch serves many recommendations from one request. The
// whole batch runs against a single liveState snapshot, so every entry
// sees the same model generation — and the same retrieval mode: known-user
// entries go through exactly the dispatch the single path uses
// (topKForUser), so under IVF a batch probes the index per entry instead
// of silently falling back to dense scoring, and every cache key carries
// the mode. In exact mode the cache misses are additionally collected and
// scored together through the engine's blocked batch kernel, which reads
// each tile of the item-factor matrix once for the whole batch instead of
// once per user (the IVF path already reads only the probed cells, so
// there is no shared sweep to batch).
func (s *Server) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var req BatchRequest
	sp := trace.StartSpanNoCtx(ctx, "decode")
	err := json.NewDecoder(r.Body).Decode(&req)
	sp.End()
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.httpError(ctx, w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch body exceeds %d bytes", tooLarge.Limit))
			return
		}
		s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("malformed batch request: %v", err))
		return
	}
	if len(req.Requests) == 0 {
		s.httpError(ctx, w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Requests) > s.MaxBatch {
		s.httpError(ctx, w, http.StatusBadRequest,
			fmt.Errorf("batch has %d entries, limit %d", len(req.Requests), s.MaxBatch))
		return
	}

	st := s.live.Load()
	results := make([]BatchResult, len(req.Requests))

	// Pass 1: validate every entry, answer cache hits, and collect the
	// known users that still need scoring (deduped across entries — two
	// entries for the same user share one score row). Each entry runs
	// under its own "entry" span (note = entry index) so a slow batch
	// shows which member dragged it down; cold-start stages nest inside.
	type pendingKnown struct {
		idx int
		u   int32
		k   int
	}
	var pending []pendingKnown
	rowOf := make(map[int32]int) // user -> index into the score batch
	var missUsers []int32
	for idx := range req.Requests {
		ectx, esp := trace.StartSpan(ctx, "entry")
		if esp.Active() {
			esp.SetNote(strconv.Itoa(idx))
		}
		func() {
			defer esp.End()
			e := req.Requests[idx]
			res := &results[idx]
			k, err := clampBatchK(e.K, s.MaxK)
			if err != nil {
				res.Error = err.Error()
				return
			}
			switch {
			case e.User != nil && len(e.Items) > 0:
				res.Error = "pass either user or items, not both"
			case e.User != nil:
				u := *e.User
				if u < 0 || int(u) >= st.params.NumUsers() {
					res.Error = fmt.Sprintf("invalid user %d", u)
					return
				}
				res.User = e.User
				if st.mode == retrieval.ModeIVF {
					// The single path's mode dispatch: cache (mode-keyed),
					// probe, pruned score, cache fill — with the stage spans
					// nested under this entry. Repeated users in one batch
					// coalesce through the cache fill rather than a shared
					// score row.
					res.Items = s.topKForUser(ectx, st, u, k)
					return
				}
				sp := trace.StartSpanNoCtx(ectx, "cache")
				items, ok := st.cache.get(cacheKey{user: u, k: k, mode: st.mode})
				sp.End()
				if ok {
					s.cacheHits.Inc()
					res.Items = items
					return
				}
				if st.cache != nil {
					s.cacheMisses.Inc()
				}
				if _, ok := rowOf[u]; !ok {
					rowOf[u] = len(missUsers)
					missUsers = append(missUsers, u)
				}
				pending = append(pending, pendingKnown{idx: idx, u: u, k: k})
			case len(e.Items) > 0:
				history, err := dedupeIDs(e.Items, st.params.NumItems(), s.MaxHistory)
				if err != nil {
					res.Error = err.Error()
					return
				}
				items, err := s.topKColdStart(ectx, st, history, k)
				if err != nil {
					res.Error = err.Error()
					return
				}
				res.Items = items
			default:
				res.Error = "entry needs a user or a non-empty items history"
			}
		}()
	}

	// Pass 2 (exact mode only — IVF entries were fully answered in pass 1):
	// one blocked, parallel scoring sweep over the cache misses. The sweep
	// serves many entries at once, so its stages attach to the request
	// root, not to any single entry span.
	if len(missUsers) > 0 {
		sp := trace.StartSpanNoCtx(ctx, "score")
		rows := score.NewScoreRows(len(missUsers), st.params.NumItems())
		st.eng.ScoreUsersParallel(missUsers, rows)
		sp.End()
		sp = trace.StartSpanNoCtx(ctx, "topk")
		for _, p := range pending {
			u := p.u
			items := s.rankTopK(rows[rowOf[u]], p.k, excludeSorted(s.positivesFor(u)))
			s.cacheEvictions.Add(uint64(st.cache.put(cacheKey{user: u, k: p.k, mode: st.mode}, items)))
			results[p.idx].Items = items
		}
		sp.End()
	}

	s.writeJSON(ctx, w, http.StatusOK, BatchResponse{Results: results})
}

// clampBatchK normalizes a batch entry's k exactly like parseK does for
// the GET path: absent (0) means 10, above maxK clamps, negative is an
// error.
func clampBatchK(k, maxK int) (int, error) {
	if k == 0 {
		return 10, nil
	}
	if k < 0 {
		return 0, fmt.Errorf("invalid k %d", k)
	}
	if k > maxK {
		k = maxK
	}
	return k, nil
}

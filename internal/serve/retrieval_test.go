package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clapf/internal/fault"
	"clapf/internal/mf"
	"clapf/internal/retrieval"
)

// TestRetrievalModesOverHTTP drives the full mode lifecycle through the
// public surface: exact answers are captured, the server is flipped to IVF
// at full probe width (where retrieval is provably exhaustive, so every
// byte of every response must match exact), then flipped back. healthz
// reports the live mode throughout. This is the serving-side half of the
// exact-bit-identity guarantee — the retrieval package proves the index
// math, this proves the wiring changes nothing it shouldn't.
func TestRetrievalModesOverHTTP(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	users := []int32{0, 3, 11, 42}
	paths := make([]string, 0, len(users)+1)
	for _, u := range users {
		paths = append(paths, "/recommend?user="+itos(u)+"&k=7")
	}
	paths = append(paths, "/recommend?items=5,2,9&k=7") // cold-start fold-in

	exact := make(map[string]string, len(paths))
	for _, p := range paths {
		rec, _ := get(t, h, p)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", p, rec.Code)
		}
		exact[p] = rec.Body.String()
	}
	if mode := healthRetrieval(t, h); mode != "exact" {
		t.Fatalf("healthz retrieval = %q before SetRetrieval", mode)
	}

	// Full-width IVF: nprobe == nlist probes every cell, so responses must
	// be bit-identical to the exact engine output.
	cfg := retrieval.Config{NLists: 16, NProbe: 16, Seed: 3}
	if err := s.SetRetrieval(retrieval.ModeIVF, cfg); err != nil {
		t.Fatal(err)
	}
	if mode := healthRetrieval(t, h); mode != "ivf" {
		t.Fatalf("healthz retrieval = %q after SetRetrieval(ivf)", mode)
	}
	for _, p := range paths {
		rec, _ := get(t, h, p)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s under ivf: status %d", p, rec.Code)
		}
		if rec.Body.String() != exact[p] {
			t.Errorf("%s: full-probe IVF body diverges from exact\nivf:   %s\nexact: %s",
				p, rec.Body.String(), exact[p])
		}
	}

	// And back: exact mode must byte-match the original captures again.
	if err := s.SetRetrieval(retrieval.ModeExact, retrieval.Config{}); err != nil {
		t.Fatal(err)
	}
	if mode := healthRetrieval(t, h); mode != "exact" {
		t.Fatalf("healthz retrieval = %q after switching back", mode)
	}
	for _, p := range paths {
		rec, _ := get(t, h, p)
		if rec.Body.String() != exact[p] {
			t.Errorf("%s: exact mode changed after a round trip through ivf", p)
		}
	}
}

func healthRetrieval(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	var resp HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Retrieval
}

// TestIVFPrunedInvariants runs a genuinely pruned configuration (nprobe <
// nlist) through the handler and checks the invariants approximation is
// not allowed to break: every returned id is in range, never one of the
// user's train positives (known-user path) or the supplied history
// (cold-start path), entries are unique, and no more than k come back.
func TestIVFPrunedInvariants(t *testing.T) {
	s, train := testServer(t)
	if err := s.SetRetrieval(retrieval.ModeIVF, retrieval.Config{NLists: 16, NProbe: 4, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	numItems := s.Model().NumItems()

	for u := int32(0); u < int32(train.NumUsers()); u++ {
		rec, body := get(t, h, "/recommend?user="+itos(u)+"&k=10")
		if rec.Code != http.StatusOK {
			t.Fatalf("user %d: status %d", u, rec.Code)
		}
		if len(body.Items) > 10 {
			t.Fatalf("user %d: %d items for k=10", u, len(body.Items))
		}
		seen := map[int32]bool{}
		for _, it := range body.Items {
			if it.Item < 0 || int(it.Item) >= numItems {
				t.Fatalf("user %d: item %d out of range", u, it.Item)
			}
			if seen[it.Item] {
				t.Fatalf("user %d: duplicate item %d", u, it.Item)
			}
			seen[it.Item] = true
			if train.IsPositive(u, it.Item) {
				t.Fatalf("user %d: train positive %d leaked through merge-exclusion", u, it.Item)
			}
		}
	}

	rec, body := get(t, h, "/recommend?items=1,2,3,4&k=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("cold-start: status %d", rec.Code)
	}
	for _, it := range body.Items {
		for _, hist := range []int32{1, 2, 3, 4} {
			if it.Item == hist {
				t.Fatalf("cold-start returned history item %d", it.Item)
			}
		}
	}
}

// TestCacheModeKeying checks, white-box, that cached top-K entries can
// never alias across retrieval modes: the key carries the mode, and a mode
// switch installs a fresh cache, so an exact-mode entry is unreachable
// from IVF mode even if a racing request wrote it into the current cache.
func TestCacheModeKeying(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	if rec, _ := get(t, h, "/recommend?user=2&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	st := s.live.Load()
	exactKey := cacheKey{user: 2, k: 5, mode: retrieval.ModeExact}
	if _, ok := st.cache.get(exactKey); !ok {
		t.Fatal("exact request did not populate the cache")
	}
	// Simulate the race the mode-keyed cache exists for: an entry written
	// under one mode into a cache later read under the other.
	if _, ok := st.cache.get(cacheKey{user: 2, k: 5, mode: retrieval.ModeIVF}); ok {
		t.Fatal("IVF-keyed lookup hit an exact-mode entry")
	}
	if err := s.SetRetrieval(retrieval.ModeIVF, retrieval.Config{NLists: 8, NProbe: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if rec, _ := get(t, h, "/recommend?user=2&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	st = s.live.Load()
	if _, ok := st.cache.get(cacheKey{user: 2, k: 5, mode: retrieval.ModeIVF}); !ok {
		t.Fatal("IVF request did not populate the new cache")
	}
	if _, ok := st.cache.get(exactKey); ok {
		t.Fatal("exact-mode entry survived into the IVF generation's cache")
	}
}

// TestIVFHotReloadUnderConcurrentTraffic is the reload-churn hammer with
// the IVF index in the liveState: /recommend traffic races SwapModel while
// the model rolls forward and back, with rejected swaps (poisoned, wrong
// shape) slammed in between. Every response must byte-match exactly one
// generation's expected IVF top-K — a torn liveState (new model with the
// old model's index, or a stale cache entry) would produce a body matching
// neither — and a rejected swap must keep the old index object itself, not
// just the old generation number.
func TestIVFHotReloadUnderConcurrentTraffic(t *testing.T) {
	s, train := testServer(t)
	s.MaxInFlight = 0 // no shedding: every request must be answered
	cfg := retrieval.Config{NLists: 12, NProbe: 5, Seed: 9}
	if err := s.SetRetrieval(retrieval.ModeIVF, cfg); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	genA := s.Model()
	genB := negatedClone(genA)

	// Expected per-generation bodies come from probe servers running the
	// same deterministic IVF build over each model.
	const k = 5
	users := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	expect := map[*mf.Model]map[int32]string{genA: {}, genB: {}}
	for _, m := range []*mf.Model{genA, genB} {
		probe, err := New(m, train)
		if err != nil {
			t.Fatal(err)
		}
		if err := probe.SetRetrieval(retrieval.ModeIVF, cfg); err != nil {
			t.Fatal(err)
		}
		ph := probe.Handler()
		for _, u := range users {
			rec := httptest.NewRecorder()
			ph.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
				"/recommend?user="+itos(u)+"&k="+itos(int32(k)), nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("probe request for user %d: status %d", u, rec.Code)
			}
			expect[m][u] = rec.Body.String()
		}
	}

	poisoned := genA.Clone()
	fault.PoisonItemFactors(poisoned, 7, 2)
	misshapen := mf.MustNew(mf.Config{NumUsers: 2, NumItems: 2, Dim: 2})

	var stop atomic.Bool
	var torn atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				u := users[(i+w)%len(users)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
					"/recommend?user="+itos(u)+"&k="+itos(int32(k)), nil))
				if rec.Code != http.StatusOK {
					t.Errorf("request under reload churn: status %d", rec.Code)
					return
				}
				body := rec.Body.String()
				if body != expect[genA][u] && body != expect[genB][u] {
					torn.Add(1)
				}
				served.Add(1)
			}
		}(w)
	}

	awaitTraffic := func(n int64) {
		target := served.Load() + n
		deadline := time.Now().Add(10 * time.Second)
		for served.Load() < target {
			if time.Now().After(deadline) {
				t.Fatal("hammer goroutines stalled; no traffic interleaved with swaps")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	awaitTraffic(4)
	for i := 0; i < 25; i++ {
		awaitTraffic(2)
		next := genB
		if i%2 == 1 {
			next = genA
		}
		before := s.Generation()
		if err := s.SwapModel(next); err != nil {
			t.Fatalf("valid swap %d rejected: %v", i, err)
		}
		if s.Generation() != before+1 {
			t.Fatalf("valid swap %d did not advance generation", i)
		}
		if ix := s.live.Load().index; ix == nil {
			t.Fatalf("swap %d published a liveState without an IVF index", i)
		}
		bad := poisoned
		if i%2 == 1 {
			bad = misshapen
		}
		gen, ix := s.Generation(), s.live.Load().index
		if err := s.SwapModel(bad); err == nil {
			t.Fatalf("invalid swap %d accepted", i)
		}
		if s.Generation() != gen || s.live.Load().index != ix {
			t.Fatalf("rejected swap %d disturbed the serving index or generation", i)
		}
	}
	stop.Store(true)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Errorf("%d of %d responses matched neither generation's IVF top-K (torn liveState)",
			n, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("hammer goroutines served nothing; the test proved nothing")
	}
}

package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// Handler-level tracing cost, without the loopback-TCP noise of the
// clapf-bench trace experiment: the delta between these two benchmarks
// is the per-request price of the trace middleware plus the stage spans
// on the full /recommend pipeline.
func benchRecommend(b *testing.B, traced bool) {
	s, _ := testServer(b)
	s.SetCacheSize(0) // priced path is the full score/topk pipeline
	s.SetTracing(traced)
	if traced {
		s.Tracer().SetSampleRate(0.01) // production default
	}
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/recommend?user=1&k=10", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
	}
}

func BenchmarkRecommendUntraced(b *testing.B) { benchRecommend(b, false) }
func BenchmarkRecommendTraced(b *testing.B)   { benchRecommend(b, true) }

package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"clapf/internal/obs"
)

// expositionLine matches one sample line: name{labels} value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// scrape fetches /metrics through the full handler and parses every
// sample line, failing the test on malformed exposition output.
func scrape(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(strings.Replace(line[sp+1:], "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Errorf("bad value in %q: %v", line, err)
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

func TestMetricsEndpointCountsRequests(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	cases := []struct {
		path string
		n    int
		code string
	}{
		{"/recommend?user=3&k=5", 3, "200"},
		{"/similar?item=5&k=4", 2, "200"},
		{"/recommend?user=boom", 1, "400"},
		{"/healthz", 1, "200"},
		{"/definitely/not/routed", 1, "404"},
	}
	for _, c := range cases {
		for i := 0; i < c.n; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, c.path, nil))
		}
	}

	samples := scrape(t, h)
	wantCounters := map[string]float64{
		`clapf_http_requests_total{path="/recommend",code="200"}`: 3,
		`clapf_http_requests_total{path="/similar",code="200"}`:   2,
		`clapf_http_requests_total{path="/recommend",code="400"}`: 1,
		`clapf_http_requests_total{path="/healthz",code="200"}`:   1,
		`clapf_http_requests_total{path="other",code="404"}`:      1,
	}
	for k, v := range wantCounters {
		if samples[k] != v {
			t.Errorf("%s = %v, want %v", k, samples[k], v)
		}
	}

	// Latency histograms: every completed request lands in some bucket,
	// so per-endpoint count matches requests and +Inf is cumulative-total.
	for _, ep := range []struct {
		path string
		n    float64
	}{{"/recommend", 4}, {"/similar", 2}} {
		count := samples[fmt.Sprintf(`clapf_http_request_duration_seconds_count{path=%q}`, ep.path)]
		if count != ep.n {
			t.Errorf("latency count for %s = %v, want %v", ep.path, count, ep.n)
		}
		inf := samples[fmt.Sprintf(`clapf_http_request_duration_seconds_bucket{path=%q,le="+Inf"}`, ep.path)]
		if inf != ep.n {
			t.Errorf("+Inf bucket for %s = %v, want %v", ep.path, inf, ep.n)
		}
		sum := samples[fmt.Sprintf(`clapf_http_request_duration_seconds_sum{path=%q}`, ep.path)]
		if sum <= 0 {
			t.Errorf("latency sum for %s = %v, want > 0", ep.path, sum)
		}
	}

	// Model gauges ride along on the same scrape.
	if samples["clapf_model_users"] != 50 || samples["clapf_model_items"] != 80 || samples["clapf_model_dim"] != 8 {
		t.Errorf("model gauges wrong: users %v items %v dim %v",
			samples["clapf_model_users"], samples["clapf_model_items"], samples["clapf_model_dim"])
	}
	if samples["clapf_uptime_seconds"] < 0 {
		t.Errorf("uptime = %v", samples["clapf_uptime_seconds"])
	}
}

func TestHealthzEnriched(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	// Complete some requests first so requests_total has something to say.
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/recommend?user=1&k=2", nil))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" {
		t.Errorf("status = %q", hr.Status)
	}
	if hr.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", hr.UptimeSeconds)
	}
	if hr.RequestsTotal != 3 {
		t.Errorf("requests_total = %d, want 3 (the 3 completed /recommend calls)", hr.RequestsTotal)
	}
}

func TestWriteJSONEncodeErrorLoggedAndCounted(t *testing.T) {
	s, _ := testServer(t)
	var logBuf bytes.Buffer
	s.SetLogger(obs.NewTextLogger(&logBuf, slog.LevelInfo))

	rec := httptest.NewRecorder()
	s.writeJSON(context.Background(), rec, http.StatusOK, math.NaN()) // json: unsupported value
	if got := s.encodeErrors.Value(); got != 1 {
		t.Errorf("encode errors = %d, want 1", got)
	}
	if !strings.Contains(logBuf.String(), "response encode failed") {
		t.Errorf("encode error not logged: %q", logBuf.String())
	}

	samples := scrape(t, s.Handler())
	if samples["clapf_encode_errors_total"] != 1 {
		t.Errorf("clapf_encode_errors_total = %v, want 1", samples["clapf_encode_errors_total"])
	}
}

func TestSetLoggerNilRestoresNop(t *testing.T) {
	s, _ := testServer(t)
	s.SetLogger(nil)
	rec := httptest.NewRecorder()
	s.writeJSON(context.Background(), rec, http.StatusOK, math.NaN()) // must not panic
	if got := s.encodeErrors.Value(); got != 1 {
		t.Errorf("encode errors = %d, want 1", got)
	}
}

package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"clapf/internal/fault"
	"clapf/internal/mf"
	"clapf/internal/store"
)

func TestRecoverMiddleware(t *testing.T) {
	s, _ := testServer(t)
	h := s.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	for i := 1; i <= 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/recommend?user=1", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("panic %d: status = %d, want 500", i, rec.Code)
		}
		if s.panics.Value() != uint64(i) {
			t.Errorf("panic %d: clapf_panics_total = %d", i, s.panics.Value())
		}
	}
	// The server is still functional after panics.
	rec, _ := get(t, s.Handler(), "/recommend?user=1&k=3")
	if rec.Code != http.StatusOK {
		t.Errorf("post-panic request: status = %d", rec.Code)
	}
}

func TestRecoverPropagatesAbortHandler(t *testing.T) {
	s, _ := testServer(t)
	h := s.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler swallowed instead of propagated")
		}
		if s.panics.Value() != 0 {
			t.Errorf("deliberate abort counted as panic: %d", s.panics.Value())
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/recommend", nil))
}

func TestShedMiddleware(t *testing.T) {
	s, _ := testServer(t)
	s.MaxInFlight = 1
	entered := make(chan struct{})
	release := make(chan struct{})
	h := s.shedMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/recommend" {
			entered <- struct{}{}
			<-release
		}
		w.WriteHeader(http.StatusOK)
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/recommend", nil))
	}()
	<-entered // the slot is now held

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/recommend", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap request: status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 missing Retry-After header")
	}
	if s.sheds.Value() != 1 {
		t.Errorf("clapf_load_shed_total = %d", s.sheds.Value())
	}

	// Health probes must never be shed, even at the cap.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s shed at cap: status = %d", path, rec.Code)
		}
	}

	close(release)
	wg.Wait()

	// With the slot free again, requests flow.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/similar", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("post-release request: status = %d", rec.Code)
	}
}

func TestTimeoutMiddlewareSetsDeadline(t *testing.T) {
	s, _ := testServer(t)
	s.RequestTimeout = 1 // nanosecond — any deadline proves the wiring
	var hadDeadline bool
	h := s.timeoutMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, hadDeadline = r.Context().Deadline()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/recommend", nil))
	if !hadDeadline {
		t.Error("request context has no deadline")
	}
	hadDeadline = false
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hadDeadline {
		t.Error("health probe got a deadline; probes are exempt")
	}
}

func TestReadyz(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	rec, _ := get(t, h, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("ready server: /readyz = %d", rec.Code)
	}
	s.SetReady(false)
	rec, _ = get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining server: /readyz = %d, want 503", rec.Code)
	}
	// Liveness is unaffected by draining.
	live := httptest.NewRecorder()
	h.ServeHTTP(live, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if live.Code != http.StatusOK {
		t.Errorf("draining server: /healthz = %d, want 200", live.Code)
	}
}

func TestReloadFromFile(t *testing.T) {
	s, _ := testServer(t)
	dir := t.TempDir()
	before := s.Model()

	// A valid same-shape model swaps in.
	next := mf.MustNew(mf.Config{
		NumUsers: before.NumUsers(), NumItems: before.NumItems(),
		Dim: before.Dim(), UseBias: before.HasBias(), InitStd: 0.1,
	})
	good := filepath.Join(dir, "good.clapf")
	if err := store.SaveFile(good, next); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadFromFile(good); err != nil {
		t.Fatalf("valid reload failed: %v", err)
	}
	if s.Model() == before || s.Generation() != 1 {
		t.Fatalf("model not swapped: generation = %d", s.Generation())
	}
	current := s.Model()

	// A torn file is rejected and the current model keeps serving.
	torn := filepath.Join(dir, "torn.clapf")
	if err := fault.CrashFile(torn, 64, func(w io.Writer) error {
		return store.Save(w, next)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadFromFile(torn); err == nil {
		t.Fatal("torn file accepted")
	}

	// A well-formed file with the wrong shape is rejected too.
	small := mf.MustNew(mf.Config{NumUsers: 2, NumItems: 2, Dim: 2})
	mismatched := filepath.Join(dir, "mismatched.clapf")
	if err := store.SaveFile(mismatched, small); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadFromFile(mismatched); err == nil {
		t.Fatal("mismatched model accepted")
	}
	if err := s.ReloadFromFile(filepath.Join(dir, "missing.clapf")); err == nil {
		t.Fatal("missing file accepted")
	}

	if s.Model() != current || s.Generation() != 1 {
		t.Errorf("failed reloads disturbed the served model: generation = %d", s.Generation())
	}
	if s.reloadOK.Value() != 1 || s.reloadFail.Value() != 3 {
		t.Errorf("reload counters ok=%d fail=%d, want 1/3",
			s.reloadOK.Value(), s.reloadFail.Value())
	}

	// The server still answers after the failed reloads.
	rec, _ := get(t, s.Handler(), "/recommend?user=1&k=3")
	if rec.Code != http.StatusOK {
		t.Errorf("post-reload request: status = %d", rec.Code)
	}
}

func TestHealthzReportsGeneration(t *testing.T) {
	s, _ := testServer(t)
	if err := s.SwapModel(s.Model().Clone()); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.ModelGeneration != 1 {
		t.Errorf("model_generation = %d, want 1", h.ModelGeneration)
	}
}

func TestHistoryBoundAndDedupe(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	// The cap applies to *distinct* items: five distinct ids over a cap of
	// four is a 400 ...
	s.MaxHistory = 4
	rec, _ := get(t, h, "/recommend?items=1,2,3,4,5")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("over-limit history: status = %d, want 400", rec.Code)
	}
	// ... but a long list that dedupes to within the cap is accepted: a
	// re-view-padded history must not be rejected for its raw length.
	long := "/recommend?items=" + strings.Repeat("1,", 10) + "2"
	rec, _ = get(t, h, long)
	if rec.Code != http.StatusOK {
		t.Errorf("dedupes-under-cap history: status = %d, want 200", rec.Code)
	}

	// Duplicates collapse: 1,1,2,1 is the history {1,2}.
	items, err := parseItemList("1, 1,2,1", 80, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0] != 1 || items[1] != 2 {
		t.Errorf("deduped list = %v, want [1 2]", items)
	}

	// And the deduped request serves fine end-to-end.
	rec, body := get(t, h, "/recommend?items=3,3,5&k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("deduped request: status = %d: %s", rec.Code, rec.Body.String())
	}
	for _, it := range body.Items {
		if it.Item == 3 || it.Item == 5 {
			t.Errorf("history item %d recommended back", it.Item)
		}
	}
}

func TestPoisonedModelSwapRejected(t *testing.T) {
	s, train := testServer(t)
	before := s.Model()

	// A divergent training run leaves NaN in the factors; the swap gate
	// must refuse it and keep the healthy generation serving.
	poisoned := before.Clone()
	fault.PoisonItemFactors(poisoned, 5, 3)
	if err := s.SwapModel(poisoned); err == nil {
		t.Fatal("poisoned model accepted")
	}
	if s.Model() != before || s.Generation() != 0 {
		t.Fatalf("poisoned swap disturbed the served model: generation = %d", s.Generation())
	}
	if got := s.reloadRejected.Value(); got != 1 {
		t.Errorf("clapf_model_reload_rejected_total = %d, want 1", got)
	}

	// The same poison arriving through the file path (SIGHUP reload): the
	// file loads and checksums fine — NaN is a valid bit pattern — so only
	// the finiteness gate stands between it and production.
	dir := t.TempDir()
	path := filepath.Join(dir, "poisoned.clapf")
	if err := store.SaveFile(path, poisoned); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadFromFile(path); err == nil {
		t.Fatal("poisoned file reload accepted")
	}
	if s.Model() != before || s.Generation() != 0 {
		t.Errorf("poisoned reload disturbed the served model: generation = %d", s.Generation())
	}
	if got := s.reloadRejected.Value(); got != 2 {
		t.Errorf("clapf_model_reload_rejected_total = %d, want 2", got)
	}
	if got := s.reloadFail.Value(); got != 1 {
		t.Errorf("reload fail counter = %d, want 1", got)
	}

	// Construction refuses a poisoned model outright.
	if _, err := New(poisoned, train); err == nil {
		t.Error("New accepted a poisoned model")
	}

	// The healthy generation still answers.
	rec, _ := get(t, s.Handler(), "/recommend?user=1&k=3")
	if rec.Code != http.StatusOK {
		t.Errorf("post-rejection request: status = %d", rec.Code)
	}
}

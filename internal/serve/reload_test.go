package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clapf/internal/fault"
	"clapf/internal/mf"
	"clapf/internal/store"
)

// negatedClone returns m with every parameter negated — a model whose
// top-K for any user is (score-wise) the exact mirror of m's, so a
// response can be attributed unambiguously to one generation.
func negatedClone(m *mf.Model) *mf.Model {
	c := m.Clone()
	u, v, b := c.RawParams()
	for i := range u {
		u[i] = -u[i]
	}
	for i := range v {
		v[i] = -v[i]
	}
	for i := range b {
		b[i] = -b[i]
	}
	return c
}

// TestHotReloadUnderConcurrentTraffic hammers /recommend from several
// goroutines while the main goroutine rolls the model forward and back
// (valid swaps) and slams it with rejected swaps (poisoned model, wrong
// shape) in between. Every response must be a 200 whose item scores
// match exactly one generation's expected top-K — a request observing a
// torn liveState (old model, new cache, or half-swapped engine) would
// produce a ranking belonging to neither — and every rejected swap must
// leave the serving generation untouched.
func TestHotReloadUnderConcurrentTraffic(t *testing.T) {
	s, train := testServer(t)
	s.MaxInFlight = 0 // no shedding: every request must be answered
	h := s.Handler()

	genA := s.Model()
	genB := negatedClone(genA)

	// Expected top-K per generation for the users the hammer cycles over.
	const k = 5
	users := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	expect := map[*mf.Model]map[int32]string{genA: {}, genB: {}}
	for _, m := range []*mf.Model{genA, genB} {
		probe, err := New(m, train)
		if err != nil {
			t.Fatal(err)
		}
		ph := probe.Handler()
		for _, u := range users {
			rec := httptest.NewRecorder()
			ph.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
				"/recommend?user="+itos(u)+"&k="+itos(int32(k)), nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("probe request for user %d: status %d", u, rec.Code)
			}
			expect[m][u] = rec.Body.String()
		}
	}

	poisoned := genA.Clone()
	fault.PoisonItemFactors(poisoned, 7, 2)
	misshapen := mf.MustNew(mf.Config{NumUsers: 2, NumItems: 2, Dim: 2})

	var stop atomic.Bool
	var torn atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				u := users[(i+w)%len(users)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
					"/recommend?user="+itos(u)+"&k="+itos(int32(k)), nil))
				if rec.Code != http.StatusOK {
					t.Errorf("request under reload churn: status %d", rec.Code)
					return
				}
				body := rec.Body.String()
				if body != expect[genA][u] && body != expect[genB][u] {
					torn.Add(1)
				}
				served.Add(1)
			}
		}(w)
	}

	// awaitTraffic blocks until at least n requests have completed since
	// the last call — without it the swap loop can finish before the
	// hammer goroutines are even scheduled and the test proves nothing.
	awaitTraffic := func(n int64) {
		target := served.Load() + n
		deadline := time.Now().Add(10 * time.Second)
		for served.Load() < target {
			if time.Now().After(deadline) {
				t.Fatal("hammer goroutines stalled; no traffic interleaved with swaps")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Roll forward and back 40 times, interleaving rejected swaps. Each
	// valid swap bumps the generation; each rejected one must not, and
	// every iteration provably overlaps live traffic.
	awaitTraffic(4)
	for i := 0; i < 40; i++ {
		awaitTraffic(2)
		next := genB
		if i%2 == 1 {
			next = genA
		}
		before := s.Generation()
		if err := s.SwapModel(next); err != nil {
			t.Fatalf("valid swap %d rejected: %v", i, err)
		}
		if s.Generation() != before+1 {
			t.Fatalf("valid swap %d did not advance generation", i)
		}
		bad := poisoned
		if i%2 == 1 {
			bad = misshapen
		}
		gen, model := s.Generation(), s.Model()
		if err := s.SwapModel(bad); err == nil {
			t.Fatalf("invalid swap %d accepted", i)
		}
		if s.Generation() != gen || s.Model() != model {
			t.Fatalf("rejected swap %d disturbed the serving generation", i)
		}
	}
	stop.Store(true)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Errorf("%d of %d responses matched neither generation's top-K (torn liveState)",
			n, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("hammer goroutines served nothing; the test proved nothing")
	}
}

func itos(v int32) string { return strconv.Itoa(int(v)) }

// TestAdminReloadEndpoint covers the opt-in HTTP reload surface the
// router's rolling reload drives: disabled by default, mounted by
// EnableAdminReload, success advances the generation, and a corrupt
// model file reports 500 while the old generation keeps serving.
func TestAdminReloadEndpoint(t *testing.T) {
	s, _ := testServer(t)

	// Off by default: the route does not exist.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code == http.StatusOK {
		t.Fatal("admin reload answered without EnableAdminReload")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "m.clapf")
	if err := store.SaveFile(path, s.Model()); err != nil {
		t.Fatal(err)
	}
	s.EnableAdminReload(func() error { return s.ReloadFromFile(path) })
	h := s.Handler()

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("admin reload: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "reloaded" || resp.Generation != 1 {
		t.Errorf("admin reload response = %+v, want reloaded/1", resp)
	}

	// Corrupt the file: reload fails with 500, generation holds.
	if err := fault.FlipByte(path, 40); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt admin reload: status %d, want 500", rec.Code)
	}
	if s.Generation() != 1 {
		t.Errorf("corrupt reload moved generation to %d", s.Generation())
	}
	rec, _ = get(t, h, "/recommend?user=1&k=3")
	if rec.Code != http.StatusOK {
		t.Errorf("post-failed-reload request: status %d", rec.Code)
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// Registry collects named metrics and writes them in the Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; labeled children are sorted by label values, so output is
// deterministic and diff-friendly.
type Registry struct {
	mu    sync.Mutex
	fams  []family
	names map[string]bool
}

type family struct {
	name, help, typ string
	write           func(w io.Writer, name string) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func (r *Registry) register(name, help, typ string, write func(w io.Writer, name string) error) {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
	r.fams = append(r.fams, family{name: name, help: help, typ: typ, write: write})
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer, name string) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
		return err
	})
	return c
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := NewCounterVec(labels...)
	r.register(name, help, "counter", func(w io.Writer, name string) error {
		for _, ch := range v.children() {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, labelString(v.labels, ch.values, "", ""), ch.c.Value()); err != nil {
				return err
			}
		}
		return nil
	})
	return v
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w io.Writer, name string) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
		return err
	})
	return g
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	v := NewGaugeVec(labels...)
	r.register(name, help, "gauge", func(w io.Writer, name string) error {
		for _, ch := range v.children() {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, labelString(v.labels, ch.values, "", ""), formatFloat(ch.g.Value())); err != nil {
				return err
			}
		}
		return nil
	})
	return v
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time —
// uptime, model dimensions, queue depths read from elsewhere.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w io.Writer, name string) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
		return err
	})
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, "histogram", func(w io.Writer, name string) error {
		return writeHistogram(w, name, nil, nil, h)
	})
	return h
}

// NewHistogramVec registers and returns a labeled histogram family with a
// shared bucket layout.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := NewHistogramVec(bounds, labels...)
	r.register(name, help, "histogram", func(w io.Writer, name string) error {
		for _, ch := range v.children() {
			if err := writeHistogram(w, name, v.labels, ch.values, ch.h); err != nil {
				return err
			}
		}
		return nil
	})
	return v
}

// WritePrometheus writes every registered family in exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]family(nil), r.fams...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		if err := f.write(bw, f.name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// NumSeries returns the number of individual series lines the registry
// currently exposes (histogram buckets, _sum and _count included; HELP
// and TYPE comments excluded). It renders the exposition output, so it
// is a scrape-cost measure as well as a cardinality one — tests use it
// to pin a ceiling on label growth.
func (r *Registry) NumSeries() int {
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		return -1
	}
	n := 0
	for _, line := range strings.Split(sb.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}

// Handler serves the registry at GET time — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A scrape write error means the client went away; nothing to do.
		_ = r.WritePrometheus(w)
	})
}

// writeHistogram writes one histogram child's _bucket/_sum/_count series.
func writeHistogram(w io.Writer, name string, labels, values []string, h *Histogram) error {
	s := h.Snapshot()
	for i, b := range s.Bounds {
		le := formatFloat(b)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, "le", le), s.Cumulative[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, "le", "+Inf"), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels, values, "", ""), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, values, "", ""), s.Count)
	return err
}

// labelString renders {a="x",b="y"[,extraName="extraVal"]}, or "" when
// there are no labels at all. Label names are emitted in declaration
// order; le always comes last, matching Prometheus convention.
func labelString(names, values []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Package obs is the repository's dependency-free observability core.
//
// It provides three small, composable layers:
//
//   - Metrics: atomic Counter, Gauge, and fixed-bucket Histogram types,
//     plus labeled CounterVec/HistogramVec families, collected in a
//     Registry that writes the Prometheus text exposition format
//     (version 0.0.4) and can serve it over HTTP.
//   - Logging: log/slog constructors with a shared convention (logfmt
//     text for humans, JSON for machines, and a no-op logger so library
//     types can log unconditionally at zero cost until a caller opts in).
//   - Timing: wall-clock Spans for phase accounting, and HTTP middleware
//     recording per-endpoint request counts, status codes, and latency
//     histograms.
//
// Everything is safe for concurrent use; the hot observe paths
// (Counter.Inc, Gauge.Set, Histogram.Observe, Vec.With on an existing
// child) are lock-free or read-locked and allocation-free. The package
// imports only the standard library so any layer of the repository —
// trainer, sampler, evaluator, HTTP server — can depend on it without
// cycles.
package obs

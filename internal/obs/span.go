package obs

import "time"

// Span measures one named wall-clock interval. It is a value type: start
// one, do the work, call End (or EndObserve to also record the duration
// into a histogram).
//
//	sp := obs.StartSpan("eval.score")
//	… work …
//	elapsed := sp.End()
type Span struct {
	name  string
	start time.Time
}

// StartSpan begins timing now.
func StartSpan(name string) Span {
	return Span{name: name, start: time.Now()}
}

// Name returns the span's name.
func (s Span) Name() string { return s.name }

// End returns the elapsed time since StartSpan.
func (s Span) End() time.Duration { return time.Since(s.start) }

// EndObserve returns the elapsed time and, when h is non-nil, records it
// in seconds.
func (s Span) EndObserve(h *Histogram) time.Duration {
	d := time.Since(s.start)
	if h != nil {
		h.Observe(d.Seconds())
	}
	return d
}

package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value that can move both ways. The
// zero value is ready to use and reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat accumulates a float64 sum under concurrent Add via CAS.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets with Prometheus
// semantics: the bucket for upper bound B counts observations v ≤ B, and
// an implicit +Inf bucket catches the rest. Observe is lock-free.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds, immutable
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. The bounds slice is copied. It panics on unsorted or
// empty bounds — bucket layouts are fixed at construction by design.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Mean returns Sum/Count, or 0 before any observation.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Under concurrent writers the buckets are individually exact but may
// not form a single consistent cut — fine for monitoring.
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`     // finite upper bounds
	Cumulative []uint64  `json:"cumulative"` // counts ≤ each bound, then total (+Inf)
	Sum        float64   `json:"sum"`
	Count      uint64    `json:"count"`
}

// Snapshot copies the current bucket state with Prometheus-style
// cumulative counts (Cumulative has one more entry than Bounds: +Inf).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]uint64, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = cum
	s.Sum = h.sum.Load()
	return s
}

// LatencyBuckets is the default request-latency layout in seconds,
// spanning 100µs to 2.5s — a recommender serve path's realistic range.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// ExponentialBuckets returns count bounds starting at start, each factor
// times the previous — the standard layout for long-tailed quantities.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns count bounds starting at start with equal width.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("obs: LinearBuckets needs width > 0, count >= 1")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// RankBuckets returns a layout for ranking-list draw positions in
// [0, max): {0, 1, 2, 4, …} doubling up to just below max. Position 0 is
// the head of the list, so the first buckets resolve exactly the region
// DSS's geometric draws concentrate on.
func RankBuckets(max int) []float64 {
	b := []float64{0}
	for v := 1; v < max; v *= 2 {
		b = append(b, float64(v))
	}
	return b
}

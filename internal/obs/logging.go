package obs

import (
	"io"
	"log/slog"
)

// NewTextLogger returns a slog logger emitting logfmt-style key=value
// lines to w — the format the CLIs use for human-readable telemetry
// (`msg=telemetry step=1000 loss=0.62 …`).
func NewTextLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewJSONLogger returns a slog logger emitting one JSON object per line —
// for shipping telemetry to a collector.
func NewJSONLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// nopLevel sits above every real level, so a handler gated on it drops
// all records without formatting them.
const nopLevel = slog.Level(1 << 10)

// NopLogger returns a logger that discards everything. Library types
// default to it so instrumented code paths cost nothing until a caller
// installs a real logger.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: nopLevel}))
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// labelKey joins label values with a separator that cannot appear in
// well-formed values; collisions would only merge two metric children,
// never corrupt state.
const labelSep = "\x1f"

func labelKey(values []string) string { return strings.Join(values, labelSep) }

// CounterVec is a family of Counters distinguished by label values —
// e.g. requests partitioned by (path, code). Children are created on
// first use and live forever (label cardinality must be bounded by the
// caller).
type CounterVec struct {
	labels []string

	mu   sync.RWMutex
	kids map[string]*counterChild
}

type counterChild struct {
	values []string
	c      Counter
}

// NewCounterVec builds an unregistered family; prefer
// Registry.NewCounterVec, which also exports it.
func NewCounterVec(labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{labels: append([]string(nil), labels...), kids: make(map[string]*counterChild)}
}

// With returns the child counter for the given label values, creating it
// on first use. It panics if the number of values does not match the
// declared labels.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: CounterVec got %d label values, want %d", len(values), len(v.labels)))
	}
	key := labelKey(values)
	v.mu.RLock()
	ch := v.kids[key]
	v.mu.RUnlock()
	if ch == nil {
		v.mu.Lock()
		if ch = v.kids[key]; ch == nil {
			ch = &counterChild{values: append([]string(nil), values...)}
			v.kids[key] = ch
		}
		v.mu.Unlock()
	}
	return &ch.c
}

// Sum returns the total across all children — e.g. total requests
// regardless of endpoint or status.
func (v *CounterVec) Sum() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var n uint64
	for _, ch := range v.kids {
		n += ch.c.Value()
	}
	return n
}

// children returns the child list sorted by label key for deterministic
// exposition output.
func (v *CounterVec) children() []*counterChild {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*counterChild, len(keys))
	for i, k := range keys {
		out[i] = v.kids[k]
	}
	return out
}

// GaugeVec is a family of Gauges distinguished by label values — e.g.
// per-worker training throughput partitioned by worker id. Children are
// created on first use and live forever.
type GaugeVec struct {
	labels []string

	mu   sync.RWMutex
	kids map[string]*gaugeChild
}

type gaugeChild struct {
	values []string
	g      Gauge
}

// NewGaugeVec builds an unregistered family; prefer Registry.NewGaugeVec,
// which also exports it.
func NewGaugeVec(labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{labels: append([]string(nil), labels...), kids: make(map[string]*gaugeChild)}
}

// With returns the child gauge for the given label values, creating it on
// first use. It panics if the number of values does not match the
// declared labels.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: GaugeVec got %d label values, want %d", len(values), len(v.labels)))
	}
	key := labelKey(values)
	v.mu.RLock()
	ch := v.kids[key]
	v.mu.RUnlock()
	if ch == nil {
		v.mu.Lock()
		if ch = v.kids[key]; ch == nil {
			ch = &gaugeChild{values: append([]string(nil), values...)}
			v.kids[key] = ch
		}
		v.mu.Unlock()
	}
	return &ch.g
}

func (v *GaugeVec) children() []*gaugeChild {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*gaugeChild, len(keys))
	for i, k := range keys {
		out[i] = v.kids[k]
	}
	return out
}

// HistogramVec is a family of Histograms sharing one bucket layout,
// distinguished by label values — e.g. latency partitioned by path.
type HistogramVec struct {
	labels []string
	bounds []float64

	mu   sync.RWMutex
	kids map[string]*histChild
}

type histChild struct {
	values []string
	h      *Histogram
}

// NewHistogramVec builds an unregistered family; prefer
// Registry.NewHistogramVec.
func NewHistogramVec(bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	// Validate the layout once, up front.
	probe := NewHistogram(bounds)
	return &HistogramVec{
		labels: append([]string(nil), labels...),
		bounds: probe.bounds,
		kids:   make(map[string]*histChild),
	}
}

// With returns the child histogram for the given label values, creating
// it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: HistogramVec got %d label values, want %d", len(values), len(v.labels)))
	}
	key := labelKey(values)
	v.mu.RLock()
	ch := v.kids[key]
	v.mu.RUnlock()
	if ch == nil {
		v.mu.Lock()
		if ch = v.kids[key]; ch == nil {
			ch = &histChild{values: append([]string(nil), values...), h: NewHistogram(v.bounds)}
			v.kids[key] = ch
		}
		v.mu.Unlock()
	}
	return ch.h
}

func (v *HistogramVec) children() []*histChild {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*histChild, len(keys))
	for i, k := range keys {
		out[i] = v.kids[k]
	}
	return out
}

package trace

import (
	"net/http"

	"clapf/internal/obs"
)

// Middleware wraps next so every request runs inside a trace rooted at
// the normalized path. An inbound W3C traceparent header is honoured
// (trace ID continuity and the sampled flag); a missing or malformed one
// starts a fresh trace. The response status and body byte count are
// captured through obs.StatusRecorder — if the enclosing metrics
// middleware already wrapped the writer, that recorder is reused rather
// than stacked. On a nil tracer, next is returned unwrapped.
func (t *Tracer) Middleware(normalize func(path string) string, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if tp, ok := ParseTraceparent(r.Header.Get(Header)); ok {
			ctx = WithRemoteParent(ctx, tp)
		}
		name := r.URL.Path
		if normalize != nil {
			name = normalize(name)
		}
		ctx, tr := t.StartTrace(ctx, name)
		sw := obs.NewStatusRecorder(w)
		defer func() {
			// Seal the trace even when the handler panics (the recover
			// middleware downstream turns that into a 500; if this
			// middleware is outermost the panic is still propagating
			// here). A panicked request is errored by definition.
			if e := recover(); e != nil {
				tr.MarkError()
				tr.Finish(http.StatusInternalServerError, sw.BytesWritten())
				panic(e)
			}
			tr.Finish(sw.Code(), sw.BytesWritten())
		}()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record is one retained trace as exposed at GET /debug/traces. Spans
// are in start order; Parent indexes into Spans (-1 for the root), so a
// client can rebuild the tree without ID matching.
type Record struct {
	TraceID      string       `json:"trace_id"`
	RemoteParent string       `json:"remote_parent,omitempty"`
	Name         string       `json:"name"`
	Start        time.Time    `json:"start"`
	DurationMS   float64      `json:"duration_ms"`
	Status       int          `json:"status,omitempty"`
	Bytes        int64        `json:"bytes,omitempty"`
	Keep         string       `json:"keep"` // "sample" | "slow" | "error"
	Spans        []SpanRecord `json:"spans"`
}

// SpanRecord is one span within a Record. Offset and duration are in
// microseconds relative to the trace start — stage latencies live in the
// sub-millisecond range, where millisecond rendering would flatten
// everything to zero.
type SpanRecord struct {
	SpanID     string  `json:"span_id"`
	Stage      string  `json:"stage"`
	Note       string  `json:"note,omitempty"`
	Parent     int     `json:"parent"`
	OffsetUS   float64 `json:"offset_us"`
	DurationUS float64 `json:"duration_us"`
}

// stageSummary flattens the record's direct root children into a
// compact "stage=dur" line for the slow-request log.
func (r *Record) stageSummary() string {
	var sb strings.Builder
	for _, sp := range r.Spans {
		if sp.Parent != 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(sp.Stage)
		sb.WriteByte('=')
		sb.WriteString((time.Duration(sp.DurationUS*1e3) * time.Nanosecond).Round(time.Microsecond).String())
	}
	return sb.String()
}

// recorder is the fixed-size ring buffer behind /debug/traces. push is
// called only for kept traces (a small fraction of traffic), so a plain
// mutex around a slice-ring is cheap enough and keeps eviction trivial.
type recorder struct {
	mu    sync.Mutex
	ring  []*Record
	next  int
	total uint64
}

func newRecorder(capacity int) *recorder {
	return &recorder{ring: make([]*Record, capacity)}
}

func (r *recorder) push(rec *Record) {
	r.mu.Lock()
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
}

// snapshot returns the retained records, newest first.
func (r *recorder) snapshot() ([]*Record, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Record, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		// Walk backwards from the most recent insert.
		rec := r.ring[(r.next-1-i+2*len(r.ring))%len(r.ring)]
		if rec == nil {
			break
		}
		out = append(out, rec)
	}
	return out, r.total
}

// DebugResponse is the JSON envelope served at GET /debug/traces.
type DebugResponse struct {
	Capacity        int       `json:"capacity"`
	RecordedTotal   uint64    `json:"recorded_total"`
	SampleRate      float64   `json:"sample_rate"`
	SlowThresholdMS float64   `json:"slow_threshold_ms"`
	Traces          []*Record `json:"traces"`
}

// Snapshot returns the recorder contents, newest trace first, with the
// tracer's current retention settings. Nil-safe (empty response).
func (t *Tracer) Snapshot() DebugResponse {
	if t == nil {
		return DebugResponse{}
	}
	recs, total := t.rec.snapshot()
	return DebugResponse{
		Capacity:        len(t.rec.ring),
		RecordedTotal:   total,
		SampleRate:      float64(t.sampleBar.Load()) / float64(^uint64(0)),
		SlowThresholdMS: float64(t.SlowThreshold().Microseconds()) / 1e3,
		Traces:          recs,
	}
}

// Handler serves the flight recorder as JSON — mount at /debug/traces.
// Query parameters: ?keep=slow|error|sample filters by retention reason;
// ?n=N caps the trace count (newest first).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := t.Snapshot()
		if keep := r.URL.Query().Get("keep"); keep != "" {
			kept := resp.Traces[:0]
			for _, rec := range resp.Traces {
				if rec.Keep == keep {
					kept = append(kept, rec)
				}
			}
			resp.Traces = kept
		}
		if nq := r.URL.Query().Get("n"); nq != "" {
			if n := atoiClamp(nq, len(resp.Traces)); n < len(resp.Traces) {
				resp.Traces = resp.Traces[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encode error means the client went away; nothing to do.
		_ = enc.Encode(resp)
	})
}

// atoiClamp parses a non-negative int, clamping parse failures and
// out-of-range values to max.
func atoiClamp(s string, max int) int {
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 || v > max {
		return max
	}
	return v
}

package trace

import (
	"context"
	"net/http"
	"testing"

	"clapf/internal/obs"
)

func TestParseTraceparentValid(t *testing.T) {
	tp, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if got := tp.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %s", got)
	}
	if got := tp.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span ID = %s", got)
	}
	if !tp.Sampled {
		t.Error("sampled flag lost")
	}

	// Flags 00: valid but unsampled.
	tp, ok = ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if !ok || tp.Sampled {
		t.Errorf("unsampled parse = (%v, %v), want (unsampled, true)", tp.Sampled, ok)
	}

	// A future version with extra fields must still parse (W3C forward
	// compatibility).
	if _, ok := ParseTraceparent("42-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future version with trailing field rejected")
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // version 00 with 5 fields
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // version ff forbidden
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // short version
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",    // 31-char trace ID
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // all-zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // all-zero span ID
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",   // bad flags hex
		"00-4bf92f3577b34da6a3ce929dxe0e4736-00f067aa0ba902b7-01",   // non-hex trace ID
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want rejected", v)
		}
	}
}

func TestTraceparentStringRoundTrip(t *testing.T) {
	const in = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tp, ok := ParseTraceparent(in)
	if !ok {
		t.Fatal("parse failed")
	}
	if got := tp.String(); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
	tp.Sampled = false
	if got := tp.String(); got != "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00" {
		t.Errorf("unsampled render = %q", got)
	}
}

func TestInject(t *testing.T) {
	tr := New(obs.NewRegistry(), "t_", Config{SampleRate: 1})
	ctx, trace := tr.StartTrace(context.Background(), "root")
	h := make(http.Header)
	Inject(ctx, h)
	tp, ok := ParseTraceparent(h.Get(Header))
	if !ok {
		t.Fatalf("injected header %q does not parse", h.Get(Header))
	}
	if tp.TraceID != trace.ID() {
		t.Errorf("injected trace ID %s != trace %s", tp.TraceID, trace.ID())
	}

	// A child span's context must inject the child's span ID, keeping the
	// same trace ID.
	cctx, sp := StartSpan(ctx, "child")
	h2 := make(http.Header)
	Inject(cctx, h2)
	tp2, ok := ParseTraceparent(h2.Get(Header))
	if !ok {
		t.Fatal("child inject does not parse")
	}
	if tp2.TraceID != trace.ID() {
		t.Error("child inject changed trace ID")
	}
	if tp2.SpanID == tp.SpanID {
		t.Error("child inject reused the root span ID")
	}
	sp.End()

	// No trace in context: nothing written.
	h3 := make(http.Header)
	Inject(context.Background(), h3)
	if h3.Get(Header) != "" {
		t.Errorf("inject on untraced context wrote %q", h3.Get(Header))
	}
}

// Package trace provides request-scoped hierarchical tracing with
// per-stage latency attribution for the serve and train paths.
//
// A Tracer mints W3C-compatible trace/span IDs and starts one Trace per
// unit of work (an HTTP request, a training batch). Child spans ride the
// context.Context; ending a span always feeds the shared
// <prefix>stage_duration_seconds{stage} histogram, so aggregate
// attribution works at any sampling rate. Retention of the full span
// tree is separate: a head-sampling decision made at StartTrace, plus a
// tail-based keep-always for traces that finish slow (> threshold) or
// errored, routes completed traces into a fixed-size ring-buffer flight
// recorder served as JSON (see Handler) and into a structured
// slow-request log line.
//
// The common path is deliberately lock-cheap: span bookkeeping locks
// only the request-private Trace (uncontended), histogram observation is
// atomic, and the recorder's mutex is taken only for the rare kept
// trace.
package trace

import (
	"context"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"clapf/internal/obs"
)

// StageBuckets spans 1µs–4s geometrically: stage spans range from
// sub-microsecond cache hits to multi-second training batches.
var StageBuckets = obs.ExponentialBuckets(1e-6, 4, 12)

// maxSpansPerTrace bounds a single trace's span slice. Beyond the cap,
// spans still observe the stage histogram but are not appended — a
// runaway loop cannot turn the recorder into a memory leak.
const maxSpansPerTrace = 512

// Config tunes a Tracer. Zero values select the defaults noted per
// field.
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1] for
	// retaining an unremarkable trace in the flight recorder
	// (default 0.01). Slow and errored traces are always retained.
	SampleRate float64
	// SlowThreshold is the total-duration cutoff beyond which a trace
	// is tail-retained and logged (default 250ms). <= 0 keeps the
	// default; use a huge value to disable.
	SlowThreshold time.Duration
	// RecorderSize is the ring-buffer capacity in traces (default 256).
	RecorderSize int
	// Logger receives the slow/errored-request log line; nil disables
	// logging (retention still happens).
	Logger *slog.Logger
}

// Tracer mints trace IDs, makes sampling decisions, and owns the stage
// histogram plus the flight recorder. A nil *Tracer is a valid no-op:
// every method (and the package-level span helpers, on contexts it never
// touched) degrades to zero work, so call sites need no "is tracing on"
// branches.
type Tracer struct {
	stageDur *obs.HistogramVec
	started  *obs.Counter
	kept     *obs.CounterVec

	rec *recorder

	// idCtr ++ splitmix64 with a per-process random seed gives unique,
	// cheap IDs without per-request crypto/rand reads.
	idCtr  atomic.Uint64
	idSeed uint64

	sampleBar atomic.Uint64 // head-sample threshold over the full uint64 range
	slowNS    atomic.Int64
	logger    atomic.Pointer[slog.Logger]

	// stageCache memoizes stageDur.With resolutions: the vec lookup
	// allocates (variadic slice + joined key) on every call, which is
	// too hot for span End. sync.Map reads are lock- and alloc-free, and
	// the stage set is small and fixed so the map never grows unbounded.
	stageCache sync.Map // stage string -> *obs.Histogram
}

// hist resolves the per-stage histogram through the alloc-free cache.
func (t *Tracer) hist(stage string) *obs.Histogram {
	if v, ok := t.stageCache.Load(stage); ok {
		return v.(*obs.Histogram)
	}
	h := t.stageDur.With(stage)
	t.stageCache.Store(stage, h)
	return h
}

// New registers the tracer's metric families under prefix (e.g.
// "clapf_") in reg and returns a ready Tracer.
func New(reg *obs.Registry, prefix string, cfg Config) *Tracer {
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	if cfg.RecorderSize <= 0 {
		cfg.RecorderSize = 256
	}
	t := &Tracer{
		stageDur: reg.NewHistogramVec(prefix+"stage_duration_seconds",
			"Latency attributed to one pipeline stage (span name).",
			StageBuckets, "stage"),
		started: reg.NewCounter(prefix+"traces_started_total",
			"Traces begun (every request/batch, regardless of retention)."),
		kept: reg.NewCounterVec(prefix+"traces_kept_total",
			"Traces retained in the flight recorder, by keep reason.", "reason"),
		rec:    newRecorder(cfg.RecorderSize),
		idSeed: seedFromTime(),
	}
	t.SetSampleRate(cfg.SampleRate)
	t.SetSlowThreshold(cfg.SlowThreshold)
	if cfg.Logger != nil {
		t.logger.Store(cfg.Logger)
	}
	return t
}

// seedFromTime derives the ID seed once at construction. Uniqueness of
// IDs comes from the atomic counter; the seed only decorrelates separate
// processes, so nanosecond clock entropy is plenty.
func seedFromTime() uint64 { return splitmix64(uint64(time.Now().UnixNano())) }

// SetSampleRate updates the head-sampling probability (clamped to
// [0, 1]). Safe to call while serving.
func (t *Tracer) SetSampleRate(rate float64) {
	if t == nil {
		return
	}
	switch {
	case rate <= 0:
		t.sampleBar.Store(0)
	case rate >= 1:
		t.sampleBar.Store(math.MaxUint64)
	default:
		t.sampleBar.Store(uint64(rate * float64(math.MaxUint64)))
	}
}

// SetSlowThreshold updates the tail-retention cutoff. Safe to call while
// serving.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.slowNS.Store(int64(d))
}

// SlowThreshold returns the current tail-retention cutoff.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNS.Load())
}

// SetLogger replaces the slow-request logger. Safe to call while
// serving.
func (t *Tracer) SetLogger(l *slog.Logger) {
	if t == nil {
		return
	}
	t.logger.Store(l)
}

// ObserveStage records a duration directly against the stage histogram
// without span bookkeeping — for instrumentation points that need
// attribution but have no trace in scope (e.g. sampled training-step
// phases).
func (t *Tracer) ObserveStage(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.hist(stage).Observe(d.Seconds())
}

// StageHistogram resolves the per-stage histogram once so hot loops can
// observe it atomically without the vec's map lookup. Returns nil on a
// nil tracer.
func (t *Tracer) StageHistogram(stage string) *obs.Histogram {
	if t == nil {
		return nil
	}
	return t.hist(stage)
}

// Trace is one unit of traced work: a root span plus the tree of child
// spans recorded under it. It is created by StartTrace and sealed by
// Finish. After Finish returns, the Trace and any Spans or contexts
// derived from it must not be used: the value is recycled for a later
// trace, and stale span handles detect the reuse and no-op.
type Trace struct {
	tracer *Tracer
	id     TraceID
	remote SpanID // parent span from an inbound traceparent, if any
	start  time.Time

	sampled bool // head-sample (or inbound sampled flag) says keep

	mu    sync.Mutex
	gen   uint64 // reuse generation; span handles from older gens no-op
	done  bool   // Finish already ran (second Finish is ignored)
	spans []spanData
	errs  bool

	// spanBuf backs the first spans inline with the Trace allocation —
	// typical requests stay under its capacity, so the hot path never
	// grows the slice.
	spanBuf [8]spanData
}

// tracePool recycles Trace values. One trace per request makes the
// (spanBuf-sized) Trace allocation the hot path's dominant garbage, and
// on small heaps the resulting GC cycles surface as serve tail latency.
// Recycling is safe against stragglers — e.g. a handler still running
// after http.TimeoutHandler already answered 503 — because every span
// handle and trace context carries the generation it was minted under
// and goes inert once the trace is reused.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

type spanData struct {
	id     SpanID
	name   string
	note   string
	parent int // index into spans; -1 for root
	start  time.Time
	end    time.Time // zero while open
}

type ctxKey struct{}

// ctxVal pins the trace, the position in its span tree (so a child span
// started from this context parents correctly), and the trace's reuse
// generation (so spans started after the trace was recycled no-op).
type ctxVal struct {
	tr   *Trace
	span int
	gen  uint64
}

type remoteKey struct{}

// WithRemoteParent records an inbound traceparent on the context;
// StartTrace adopts its trace ID, parent span, and sampled flag.
func WithRemoteParent(ctx context.Context, tp Traceparent) context.Context {
	return context.WithValue(ctx, remoteKey{}, tp)
}

// FromContext returns the trace the context rides in, or nil.
func FromContext(ctx context.Context) *Trace {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.tr
	}
	return nil
}

// StartTrace opens a new trace named name (the root span's stage label)
// and returns a derived context carrying it. Every call creates a trace
// — sampling governs recorder retention, not span collection, so the
// stage histogram sees all traffic. On a nil tracer the context is
// returned untouched and the nil *Trace no-ops.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	t.started.Inc()
	n := t.idCtr.Add(1)
	tr := tracePool.Get().(*Trace)
	tr.mu.Lock()
	tr.gen++
	tr.done = false
	tr.tracer = t
	tr.id = TraceID{hi: splitmix64(t.idSeed + 2*n), lo: splitmix64(t.idSeed + 2*n + 1)}
	tr.remote = 0
	tr.start = time.Now()
	tr.sampled = false
	tr.errs = false
	if tr.id.IsZero() { // vanishingly unlikely, but all-zero is invalid W3C
		tr.id.lo = 1
	}
	if tp, ok := ctx.Value(remoteKey{}).(Traceparent); ok {
		tr.id = tp.TraceID
		tr.remote = tp.SpanID
		tr.sampled = tp.Sampled
	}
	if !tr.sampled {
		// Hash the trace ID against the sampling bar: deterministic per
		// trace, uniform across traces.
		tr.sampled = splitmix64(tr.id.lo^tr.id.hi) < t.sampleBar.Load()
	}
	tr.spans = tr.spanBuf[:0]
	tr.spans = append(tr.spans, spanData{
		id:     t.newSpanID(),
		name:   name,
		parent: -1,
		start:  tr.start,
	})
	gen := tr.gen
	tr.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, ctxVal{tr, 0, gen}), tr
}

func (t *Tracer) newSpanID() SpanID {
	id := SpanID(splitmix64(t.idSeed ^ t.idCtr.Add(1)))
	if id == 0 { // all-zero is invalid W3C
		id = 1
	}
	return id
}

// splitmix64 is the finalizer from Vigna's SplitMix64 — a cheap,
// high-quality 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Span is a handle to one live span. The zero Span (returned when the
// context carries no trace) no-ops on End, as does any span whose trace
// has since been finished and recycled.
type Span struct {
	tr  *Trace
	idx int
	gen uint64
}

// StartSpan opens a child span named stage under the context's current
// span and returns a derived context in which further spans nest beneath
// it. On a context without a trace it returns the context unchanged and
// a no-op Span.
func StartSpan(ctx context.Context, stage string) (context.Context, Span) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || v.tr == nil {
		return ctx, Span{}
	}
	idx := v.tr.startSpan(stage, v.span, v.gen)
	if idx < 0 {
		return ctx, Span{}
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{v.tr, idx, v.gen}), Span{v.tr, idx, v.gen}
}

// StartSpanNoCtx opens a child span without deriving a context — for
// straight-line stages with no nested spans, where the context
// allocation would be waste.
func StartSpanNoCtx(ctx context.Context, stage string) Span {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || v.tr == nil {
		return Span{}
	}
	idx := v.tr.startSpan(stage, v.span, v.gen)
	if idx < 0 {
		return Span{}
	}
	return Span{v.tr, idx, v.gen}
}

func (tr *Trace) startSpan(name string, parent int, gen uint64) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if gen != tr.gen || len(tr.spans) >= maxSpansPerTrace {
		return -1
	}
	tr.spans = append(tr.spans, spanData{
		id:     tr.tracer.newSpanID(),
		name:   name,
		parent: parent,
		start:  time.Now(),
	})
	return len(tr.spans) - 1
}

// Active reports whether the span is recording (false for the zero Span
// returned on an untraced context) — gate work done only to annotate.
func (s Span) Active() bool { return s.tr != nil }

// SetNote attaches a short annotation rendered in the flight recorder
// (e.g. a batch-entry index). Not a histogram label, so cardinality is
// unconstrained.
func (s Span) SetNote(note string) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	if s.gen == s.tr.gen {
		s.tr.spans[s.idx].note = note
	}
	s.tr.mu.Unlock()
}

// End closes the span, records its duration in the stage histogram, and
// returns the elapsed time. Safe on the zero Span.
func (s Span) End() time.Duration {
	if s.tr == nil {
		return 0
	}
	now := time.Now()
	s.tr.mu.Lock()
	if s.gen != s.tr.gen { // trace finished and recycled under us
		s.tr.mu.Unlock()
		return 0
	}
	sp := &s.tr.spans[s.idx]
	if !sp.end.IsZero() { // double End: keep the first
		d := sp.end.Sub(sp.start)
		s.tr.mu.Unlock()
		return d
	}
	sp.end = now
	d := now.Sub(sp.start)
	name := sp.name
	// Capture the owner while still under the lock: after Unlock the root
	// may Finish and recycle this Trace into the pool, where StartTrace —
	// possibly on a different Tracer — reassigns tr.tracer under us.
	tracer := s.tr.tracer
	s.tr.mu.Unlock()
	tracer.hist(name).Observe(d.Seconds())
	return d
}

// MarkError flags the trace as errored, forcing tail retention
// regardless of duration or sampling.
func (tr *Trace) MarkError() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.errs = true
	tr.mu.Unlock()
}

// ID returns the trace's ID (zero on a nil trace).
func (tr *Trace) ID() TraceID {
	if tr == nil {
		return TraceID{}
	}
	return tr.id
}

// Finish seals the trace: closes the root span (observing it into the
// stage histogram), applies the retention policy, and on keep pushes the
// trace into the flight recorder and emits the structured log line.
// status and bytes annotate HTTP traces; pass 0, 0 elsewhere. Safe on a
// nil trace.
func (tr *Trace) Finish(status int, bytes int64) {
	if tr == nil {
		return
	}
	now := time.Now()
	total := now.Sub(tr.start)

	tr.mu.Lock()
	if tr.done { // second Finish: the trace is already sealed
		tr.mu.Unlock()
		return
	}
	tr.done = true
	// Recycle on every exit below; registered only after the done check so
	// a double Finish cannot push the same Trace into the pool twice.
	defer tracePool.Put(tr)
	root := &tr.spans[0]
	if root.end.IsZero() {
		root.end = now
	}
	rootName := root.name
	errored := tr.errs || status >= 500

	reason := ""
	switch {
	case errored:
		reason = "error"
	case total >= tr.tracer.SlowThreshold():
		reason = "slow"
	case tr.sampled:
		reason = "sample"
	}
	var recTr *Record
	if reason != "" {
		recTr = tr.buildRecordLocked(now, total, status, bytes, reason)
	}
	tr.mu.Unlock()

	tr.tracer.hist(rootName).Observe(total.Seconds())
	if recTr == nil {
		return
	}
	tr.tracer.kept.With(reason).Inc()
	tr.tracer.rec.push(recTr)
	if reason == "sample" {
		return
	}
	if l := tr.tracer.logger.Load(); l != nil {
		l.Warn("trace retained",
			"reason", reason,
			"trace_id", tr.id.String(),
			"name", rootName,
			"duration_ms", float64(total.Microseconds())/1e3,
			"status", status,
			"bytes", bytes,
			"stages", recTr.stageSummary(),
		)
	}
}

// buildRecordLocked renders the span tree into an immutable Record.
// Caller holds tr.mu.
func (tr *Trace) buildRecordLocked(now time.Time, total time.Duration, status int, bytes int64, reason string) *Record {
	r := &Record{
		TraceID:    tr.id.String(),
		Name:       tr.spans[0].name,
		Start:      tr.start,
		DurationMS: float64(total.Microseconds()) / 1e3,
		Status:     status,
		Bytes:      bytes,
		Keep:       reason,
		Spans:      make([]SpanRecord, len(tr.spans)),
	}
	if !tr.remote.IsZero() {
		r.RemoteParent = tr.remote.String()
	}
	for i, sp := range tr.spans {
		end := sp.end
		if end.IsZero() {
			end = now // left open: clip to trace end
		}
		r.Spans[i] = SpanRecord{
			SpanID:     sp.id.String(),
			Stage:      sp.name,
			Note:       sp.note,
			Parent:     sp.parent,
			OffsetUS:   float64(sp.start.Sub(tr.start).Nanoseconds()) / 1e3,
			DurationUS: float64(end.Sub(sp.start).Nanoseconds()) / 1e3,
		}
	}
	return r
}

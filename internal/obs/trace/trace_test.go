package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clapf/internal/obs"
)

func newTestTracer(cfg Config) *Tracer {
	return New(obs.NewRegistry(), "t_", cfg)
}

func TestSpanTreeStructure(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1})
	ctx, trace := tr.StartTrace(context.Background(), "root")

	cctx, child := StartSpan(ctx, "child")
	leaf := StartSpanNoCtx(cctx, "leaf")
	leaf.End()
	child.End()
	sibling := StartSpanNoCtx(ctx, "sibling")
	sibling.End()
	trace.Finish(200, 42)

	recs := tr.Snapshot().Traces
	if len(recs) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Keep != "sample" {
		t.Errorf("keep = %q, want sample", rec.Keep)
	}
	if rec.Status != 200 || rec.Bytes != 42 {
		t.Errorf("status/bytes = %d/%d", rec.Status, rec.Bytes)
	}
	want := []struct {
		stage  string
		parent int
	}{
		{"root", -1},
		{"child", 0},
		{"leaf", 1},
		{"sibling", 0},
	}
	if len(rec.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(rec.Spans), len(want))
	}
	for i, w := range want {
		if rec.Spans[i].Stage != w.stage || rec.Spans[i].Parent != w.parent {
			t.Errorf("span %d = %s parent %d, want %s parent %d",
				i, rec.Spans[i].Stage, rec.Spans[i].Parent, w.stage, w.parent)
		}
	}
	// Every ended span must have observed the stage histogram.
	for _, stage := range []string{"root", "child", "leaf", "sibling"} {
		if got := tr.StageHistogram(stage).Count(); got != 1 {
			t.Errorf("stage %s histogram count = %d, want 1", stage, got)
		}
	}
}

func TestSamplingDecision(t *testing.T) {
	// Rate 0: nothing retained, but stage histograms still observe.
	tr := newTestTracer(Config{SampleRate: 0})
	for i := 0; i < 50; i++ {
		_, trace := tr.StartTrace(context.Background(), "req")
		trace.Finish(200, 0)
	}
	if got := len(tr.Snapshot().Traces); got != 0 {
		t.Errorf("rate 0 retained %d traces", got)
	}
	if got := tr.StageHistogram("req").Count(); got != 50 {
		t.Errorf("stage histogram count = %d, want 50 (sampling must not gate attribution)", got)
	}

	// Rate 1: everything retained.
	tr = newTestTracer(Config{SampleRate: 1})
	for i := 0; i < 50; i++ {
		_, trace := tr.StartTrace(context.Background(), "req")
		trace.Finish(200, 0)
	}
	if got := tr.Snapshot().RecordedTotal; got != 50 {
		t.Errorf("rate 1 retained %d traces, want 50", got)
	}

	// An inbound sampled flag forces retention even at rate 0.
	tr = newTestTracer(Config{SampleRate: 0})
	tp, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	_, trace := tr.StartTrace(WithRemoteParent(context.Background(), tp), "req")
	trace.Finish(200, 0)
	recs := tr.Snapshot().Traces
	if len(recs) != 1 {
		t.Fatalf("remote-sampled trace not retained")
	}
	if recs[0].TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("remote trace ID not adopted: %s", recs[0].TraceID)
	}
	if recs[0].RemoteParent != "00f067aa0ba902b7" {
		t.Errorf("remote parent not recorded: %s", recs[0].RemoteParent)
	}
}

func TestTailKeepSlowAndError(t *testing.T) {
	var logBuf strings.Builder
	tr := newTestTracer(Config{
		SampleRate:    0,
		SlowThreshold: 5 * time.Millisecond,
		Logger:        obs.NewTextLogger(&logBuf, 0),
	})

	// Fast and clean: dropped.
	_, fast := tr.StartTrace(context.Background(), "req")
	fast.Finish(200, 0)

	// Slow: tail-kept and logged even though head sampling said no.
	ctx, slow := tr.StartTrace(context.Background(), "req")
	sp := StartSpanNoCtx(ctx, "work")
	time.Sleep(10 * time.Millisecond)
	sp.End()
	slow.Finish(200, 0)

	// Errored (5xx): kept regardless of speed.
	_, errored := tr.StartTrace(context.Background(), "req")
	errored.Finish(500, 0)

	// MarkError without a 5xx status: also kept.
	_, marked := tr.StartTrace(context.Background(), "req")
	marked.MarkError()
	marked.Finish(200, 0)

	recs := tr.Snapshot().Traces // newest first
	if len(recs) != 3 {
		t.Fatalf("retained %d traces, want 3", len(recs))
	}
	for i, want := range []string{"error", "error", "slow"} {
		if recs[i].Keep != want {
			t.Errorf("trace %d keep = %q, want %q", i, recs[i].Keep, want)
		}
	}
	if !strings.Contains(logBuf.String(), "trace retained") ||
		!strings.Contains(logBuf.String(), "reason=slow") {
		t.Errorf("slow trace not logged:\n%s", logBuf.String())
	}
	// The slow record must carry its child span with parentage intact.
	slowRec := recs[2]
	if len(slowRec.Spans) != 2 || slowRec.Spans[1].Stage != "work" || slowRec.Spans[1].Parent != 0 {
		t.Errorf("slow record spans = %+v", slowRec.Spans)
	}
	if slowRec.DurationMS < 5 {
		t.Errorf("slow record duration = %vms, want >= 5", slowRec.DurationMS)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1, RecorderSize: 4})
	for i := 0; i < 10; i++ {
		ctx, trace := tr.StartTrace(context.Background(), "req")
		sp := StartSpanNoCtx(ctx, "work")
		sp.SetNote(fmt.Sprintf("%d", i))
		sp.End()
		trace.Finish(200, 0)
	}
	snap := tr.Snapshot()
	if snap.RecordedTotal != 10 {
		t.Errorf("recorded total = %d, want 10", snap.RecordedTotal)
	}
	if len(snap.Traces) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(snap.Traces))
	}
	// Newest first: notes 9, 8, 7, 6.
	for i, want := range []string{"9", "8", "7", "6"} {
		if got := snap.Traces[i].Spans[1].Note; got != want {
			t.Errorf("ring[%d] note = %q, want %q (newest-first eviction)", i, got, want)
		}
	}
}

func TestSpanCapAndDoubleEnd(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1})
	ctx, trace := tr.StartTrace(context.Background(), "root")
	for i := 0; i < maxSpansPerTrace+100; i++ {
		sp := StartSpanNoCtx(ctx, "loop")
		sp.End()
	}
	trace.Finish(200, 0)
	recs := tr.Snapshot().Traces
	if got := len(recs[0].Spans); got != maxSpansPerTrace {
		t.Errorf("span count = %d, want capped at %d", got, maxSpansPerTrace)
	}

	// Double End keeps the first duration and observes once per span.
	tr = newTestTracer(Config{SampleRate: 1})
	ctx, trace = tr.StartTrace(context.Background(), "root")
	sp := StartSpanNoCtx(ctx, "once")
	d1 := sp.End()
	time.Sleep(time.Millisecond)
	d2 := sp.End()
	if d1 != d2 {
		t.Errorf("double End changed duration: %v then %v", d1, d2)
	}
	if got := tr.StageHistogram("once").Count(); got != 1 {
		t.Errorf("double End observed %d times, want 1", got)
	}
	trace.Finish(200, 0)
}

// TestRecycledTraceStragglers: Trace values are pooled, so a span handle
// that outlives its request (e.g. a handler http.TimeoutHandler gave up
// on) must go inert once the trace is reused — and a second Finish must
// not double-recycle.
func TestRecycledTraceStragglers(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1})
	ctx, trace := tr.StartTrace(context.Background(), "req")
	sp := StartSpanNoCtx(ctx, "work")
	trace.Finish(200, 0)

	// Simulate the pool handing the trace to a new request.
	trace.mu.Lock()
	trace.gen++
	trace.mu.Unlock()

	before := tr.StageHistogram("work").Count()
	if d := sp.End(); d != 0 {
		t.Errorf("straggler End on recycled trace = %v, want 0", d)
	}
	sp.SetNote("ignored")
	if got := tr.StageHistogram("work").Count(); got != before {
		t.Errorf("straggler observed the stage histogram: %d -> %d", before, got)
	}
	if StartSpanNoCtx(ctx, "late").Active() {
		t.Error("span started from a recycled trace is active")
	}
	if _, lateSp := StartSpan(ctx, "late"); lateSp.Active() {
		t.Error("ctx span started from a recycled trace is active")
	}

	// Second Finish: sealed traces stay sealed (no duplicate record).
	trace.Finish(500, 0)
	if n := len(tr.Snapshot().Traces); n != 1 {
		t.Errorf("double Finish recorded %d traces, want 1", n)
	}
}

func TestNilAndZeroValueSafety(t *testing.T) {
	var tr *Tracer
	ctx, trace := tr.StartTrace(context.Background(), "x")
	if trace != nil {
		t.Error("nil tracer returned a trace")
	}
	trace.MarkError()
	trace.Finish(0, 0)
	tr.ObserveStage("x", time.Second)
	tr.SetSampleRate(1)
	tr.SetSlowThreshold(time.Second)
	tr.SetLogger(nil)
	if tr.StageHistogram("x") != nil {
		t.Error("nil tracer returned a histogram")
	}
	if got := tr.Snapshot(); len(got.Traces) != 0 {
		t.Error("nil tracer snapshot non-empty")
	}

	// Spans on an untraced context are inert.
	_, sp := StartSpan(ctx, "x")
	if sp.Active() {
		t.Error("span on untraced context is active")
	}
	sp.SetNote("ignored")
	if sp.End() != 0 {
		t.Error("zero span End returned nonzero")
	}
	if FromContext(ctx) != nil {
		t.Error("FromContext on untraced context non-nil")
	}
}

func TestMiddlewareTraceparentRoundTrip(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 0})
	var gotID TraceID
	h := tr.Middleware(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotID = FromContext(r.Context()).ID()
		w.WriteHeader(http.StatusNoContent)
	}))

	// Valid inbound sampled traceparent: ID adopted, trace retained.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(Header, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if gotID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("inbound trace ID not adopted: %s", gotID)
	}
	if recs := tr.Snapshot().Traces; len(recs) != 1 || recs[0].Status != http.StatusNoContent {
		t.Errorf("sampled inbound trace not retained with status: %+v", recs)
	}

	// Malformed header: fresh trace, not retained (rate 0), no crash.
	req = httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(Header, "hot-garbage")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if gotID.IsZero() {
		t.Error("malformed traceparent produced a zero trace ID")
	}
	if gotID.String() == "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Error("malformed traceparent adopted the stale ID")
	}

	// Absent header: fresh trace too.
	prev := gotID
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if gotID.IsZero() || gotID == prev {
		t.Errorf("absent traceparent: trace ID %s (prev %s), want fresh", gotID, prev)
	}
}

func TestMiddlewarePanicMarksError(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 0})
	h := tr.Middleware(nil, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("middleware swallowed the panic")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}()
	recs := tr.Snapshot().Traces
	if len(recs) != 1 || recs[0].Keep != "error" {
		t.Fatalf("panicked request not tail-kept as error: %+v", recs)
	}
}

func TestHandlerFilters(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1})
	for i := 0; i < 3; i++ {
		_, trace := tr.StartTrace(context.Background(), "ok")
		trace.Finish(200, 0)
	}
	_, bad := tr.StartTrace(context.Background(), "bad")
	bad.Finish(500, 0)

	get := func(url string) DebugResponse {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q", ct)
		}
		var resp DebugResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return resp
	}

	if resp := get("/debug/traces"); len(resp.Traces) != 4 || resp.RecordedTotal != 4 {
		t.Errorf("unfiltered = %d traces (total %d), want 4", len(resp.Traces), resp.RecordedTotal)
	}
	if resp := get("/debug/traces?keep=error"); len(resp.Traces) != 1 || resp.Traces[0].Name != "bad" {
		t.Errorf("keep=error filter failed: %+v", resp.Traces)
	}
	if resp := get("/debug/traces?n=2"); len(resp.Traces) != 2 {
		t.Errorf("n=2 returned %d traces", len(resp.Traces))
	}
	if resp := get("/debug/traces?n=bogus"); len(resp.Traces) != 4 {
		t.Errorf("bogus n clamped to %d traces, want all 4", len(resp.Traces))
	}
}

// TestConcurrentTraces drives many goroutines through distinct traces
// and shared tracer state for the race detector.
func TestConcurrentTraces(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1, RecorderSize: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, trace := tr.StartTrace(context.Background(), "req")
				cctx, sp := StartSpan(ctx, "outer")
				leaf := StartSpanNoCtx(cctx, "inner")
				leaf.End()
				sp.End()
				trace.Finish(200, 1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Snapshot().RecordedTotal; got != 800 {
		t.Errorf("recorded total = %d, want 800", got)
	}
	if got := tr.StageHistogram("req").Count(); got != 800 {
		t.Errorf("root stage count = %d, want 800", got)
	}
}

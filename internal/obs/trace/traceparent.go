package trace

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
)

// TraceID is a 128-bit W3C trace identifier.
type TraceID struct{ hi, lo uint64 }

// IsZero reports whether the ID is the (invalid) all-zero ID.
func (id TraceID) IsZero() bool { return id.hi == 0 && id.lo == 0 }

// String renders 32 lowercase hex digits.
func (id TraceID) String() string { return fmt.Sprintf("%016x%016x", id.hi, id.lo) }

// SpanID is a 64-bit W3C span (parent) identifier.
type SpanID uint64

// IsZero reports whether the ID is the (invalid) all-zero ID.
func (id SpanID) IsZero() bool { return id == 0 }

// String renders 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Traceparent is a parsed W3C traceparent header:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^version  ^trace-id (32 hex)        ^parent-id (16)  ^flags
type Traceparent struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// String renders the header value at version 00.
func (tp Traceparent) String() string {
	flags := "00"
	if tp.Sampled {
		flags = "01"
	}
	return "00-" + tp.TraceID.String() + "-" + tp.SpanID.String() + "-" + flags
}

// Header is the canonical header name.
const Header = "traceparent"

// ParseTraceparent parses a traceparent header value per the W3C Trace
// Context spec: lowercase hex throughout, version ff invalid, all-zero
// trace or parent IDs invalid. Unknown future versions are accepted as
// long as the first four fields parse (per spec, extra fields may
// follow). Returns ok=false on any violation — a malformed header means
// "start a fresh trace", never an error to the client.
func ParseTraceparent(v string) (Traceparent, bool) {
	parts := strings.Split(v, "-")
	if len(parts) < 4 {
		return Traceparent{}, false
	}
	version, traceID, parentID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isLowerHex(version) || version == "ff" {
		return Traceparent{}, false
	}
	if version == "00" && len(parts) != 4 {
		return Traceparent{}, false
	}
	if len(traceID) != 32 || !isLowerHex(traceID) {
		return Traceparent{}, false
	}
	if len(parentID) != 16 || !isLowerHex(parentID) {
		return Traceparent{}, false
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return Traceparent{}, false
	}
	var tp Traceparent
	var buf [16]byte
	hex.Decode(buf[:], []byte(traceID)) // cannot fail: validated hex
	for i := 0; i < 8; i++ {
		tp.TraceID.hi = tp.TraceID.hi<<8 | uint64(buf[i])
		tp.TraceID.lo = tp.TraceID.lo<<8 | uint64(buf[8+i])
	}
	var pbuf [8]byte
	hex.Decode(pbuf[:], []byte(parentID))
	for i := 0; i < 8; i++ {
		tp.SpanID = tp.SpanID<<8 | SpanID(pbuf[i])
	}
	if tp.TraceID.IsZero() || tp.SpanID.IsZero() {
		return Traceparent{}, false
	}
	var fbuf [1]byte
	hex.Decode(fbuf[:], []byte(flags))
	tp.Sampled = fbuf[0]&0x01 != 0
	return tp, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Inject writes a traceparent header identifying the context's current
// span, so an outbound hop (the future router→shard call) continues this
// trace. No-op when the context carries no trace.
func Inject(ctx context.Context, h http.Header) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || v.tr == nil {
		return
	}
	v.tr.mu.Lock()
	sp := v.tr.spans[v.span].id
	v.tr.mu.Unlock()
	h.Set(Header, Traceparent{
		TraceID: v.tr.id,
		SpanID:  sp,
		Sampled: v.tr.sampled,
	}.String())
}

package obs

import (
	"bufio"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expositionLine matches one sample line of the Prometheus text format:
// name{labels} value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// ParseExposition scans exposition text, failing t on any malformed line,
// and returns the samples as a map from "name{labels}" to value.
func ParseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		key, valStr := line[:sp], line[sp+1:]
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			f, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Errorf("bad value in %q: %v", line, err)
				continue
			}
			v = f
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("steps_total", "SGD steps applied.")
	c.Add(42)
	g := reg.NewGauge("loss", "Smoothed loss.")
	g.Set(0.625)
	reg.NewGaugeFunc("answer", "", func() float64 { return 42 })
	h := reg.NewHistogram("latency_seconds", "Request latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	cv := reg.NewCounterVec("requests_total", "Requests.", "path", "code")
	cv.With("/recommend", "200").Add(7)
	cv.With("/similar", "400").Inc()
	hv := reg.NewHistogramVec("dur_seconds", "", []float64{1}, "path")
	hv.With("/recommend").Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples := ParseExposition(t, text)

	want := map[string]float64{
		`steps_total`:                       42,
		`loss`:                              0.625,
		`answer`:                            42,
		`latency_seconds_bucket{le="0.01"}`: 1,
		`latency_seconds_bucket{le="0.1"}`:  2,
		`latency_seconds_bucket{le="+Inf"}`: 3,
		`latency_seconds_count`:             3,
		`requests_total{path="/recommend",code="200"}`:    7,
		`requests_total{path="/similar",code="400"}`:      1,
		`dur_seconds_bucket{path="/recommend",le="1"}`:    1,
		`dur_seconds_bucket{path="/recommend",le="+Inf"}`: 1,
		`dur_seconds_count{path="/recommend"}`:            1,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok {
			t.Errorf("missing sample %q in:\n%s", k, text)
		} else if got != v {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
	for _, meta := range []string{
		"# TYPE steps_total counter",
		"# TYPE loss gauge",
		"# TYPE latency_seconds histogram",
		"# HELP steps_total SGD steps applied.",
	} {
		if !strings.Contains(text, meta) {
			t.Errorf("missing %q", meta)
		}
	}
}

func TestRegistryRejectsDuplicatesAndBadNames(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("ok_total", "")
	for _, fn := range []func(){
		func() { reg.NewCounter("ok_total", "") },
		func() { reg.NewGauge("ok_total", "") },
		func() { reg.NewCounter("bad name", "") },
		func() { reg.NewCounter("", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad registration accepted")
				}
			}()
			fn()
		}()
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	cv := reg.NewCounterVec("esc_total", "", "v")
	cv.With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong: %q", sb.String())
	}
}

package obs

import (
	"io"
	"net/http"
	"strconv"
)

// HTTPMetrics bundles the serve-path instrumentation: request counts by
// (path, code), latency histograms by path, and an in-flight gauge.
type HTTPMetrics struct {
	// Requests counts completed requests, labeled {path, code}.
	Requests *CounterVec
	// Latency records request durations in seconds, labeled {path}.
	Latency *HistogramVec
	// InFlight tracks requests currently being handled.
	InFlight *Gauge
}

// NewHTTPMetrics registers the three standard serve-path families under
// prefix (e.g. "clapf_") and returns them.
func NewHTTPMetrics(reg *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: reg.NewCounterVec(prefix+"http_requests_total",
			"Completed HTTP requests by endpoint and status code.", "path", "code"),
		Latency: reg.NewHistogramVec(prefix+"http_request_duration_seconds",
			"HTTP request latency by endpoint.", LatencyBuckets, "path"),
		InFlight: reg.NewGauge(prefix+"http_in_flight_requests",
			"Requests currently being handled."),
	}
}

// TotalRequests returns the completed-request total across all endpoints
// and codes — the /healthz "requests_total" figure.
func (m *HTTPMetrics) TotalRequests() uint64 { return m.Requests.Sum() }

// Middleware wraps next, recording count, status code, and latency per
// request. normalize maps a raw URL path to a bounded label value (return
// a fixed sentinel for unknown paths so label cardinality stays finite);
// nil uses the path verbatim.
func (m *HTTPMetrics) Middleware(normalize func(path string) string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if normalize != nil {
			path = normalize(path)
		}
		m.InFlight.Add(1)
		defer m.InFlight.Add(-1)

		sw := NewStatusRecorder(w)
		sp := StartSpan(path)
		next.ServeHTTP(sw, r)
		d := sp.End()

		m.Requests.With(path, strconv.Itoa(sw.Code())).Inc()
		m.Latency.With(path).Observe(d.Seconds())
	})
}

// StatusRecorder wraps a ResponseWriter to capture the status code and
// the number of body bytes a handler writes, while keeping the optional
// upgrade interfaces of the wrapped writer reachable:
//
//   - Unwrap exposes the underlying writer to http.ResponseController,
//     the standard route to Flush/Hijack/deadlines on a wrapped writer.
//   - Flush forwards to the underlying http.Flusher when present (and is
//     a no-op otherwise — callers that must know support exactly should
//     go through ResponseController, which follows Unwrap).
//   - ReadFrom forwards to the underlying io.ReaderFrom when present, so
//     sendfile-style copies survive the wrapping; otherwise it falls
//     back to a plain copy. Bytes are counted either way.
//
// A bare embedded ResponseWriter would shadow all three: a handler's
// `w.(http.Flusher)` assertion would fail even on a flushable writer,
// and io.Copy into the wrapper would lose the fast path.
type StatusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

// NewStatusRecorder wraps w; if w is already a *StatusRecorder it is
// returned as-is, so stacked middleware shares one recorder.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	if sr, ok := w.(*StatusRecorder); ok {
		return sr
	}
	return &StatusRecorder{ResponseWriter: w}
}

// Code returns the captured status code; a handler that wrote a body (or
// nothing) without calling WriteHeader reads as 200, per net/http.
func (w *StatusRecorder) Code() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// BytesWritten returns the number of response-body bytes written so far.
func (w *StatusRecorder) BytesWritten() int64 { return w.bytes }

// Unwrap returns the wrapped writer for http.ResponseController.
func (w *StatusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *StatusRecorder) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *StatusRecorder) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing.
func (w *StatusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		if w.code == 0 {
			w.code = http.StatusOK
		}
		f.Flush()
	}
}

// ReadFrom copies src into the response, using the underlying writer's
// io.ReaderFrom fast path when available.
func (w *StatusRecorder) ReadFrom(src io.Reader) (int64, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	var n int64
	var err error
	if rf, ok := w.ResponseWriter.(io.ReaderFrom); ok {
		n, err = rf.ReadFrom(src)
	} else {
		n, err = io.Copy(struct{ io.Writer }{w.ResponseWriter}, src)
	}
	w.bytes += n
	return n, err
}

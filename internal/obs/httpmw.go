package obs

import (
	"net/http"
	"strconv"
)

// HTTPMetrics bundles the serve-path instrumentation: request counts by
// (path, code), latency histograms by path, and an in-flight gauge.
type HTTPMetrics struct {
	// Requests counts completed requests, labeled {path, code}.
	Requests *CounterVec
	// Latency records request durations in seconds, labeled {path}.
	Latency *HistogramVec
	// InFlight tracks requests currently being handled.
	InFlight *Gauge
}

// NewHTTPMetrics registers the three standard serve-path families under
// prefix (e.g. "clapf_") and returns them.
func NewHTTPMetrics(reg *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: reg.NewCounterVec(prefix+"http_requests_total",
			"Completed HTTP requests by endpoint and status code.", "path", "code"),
		Latency: reg.NewHistogramVec(prefix+"http_request_duration_seconds",
			"HTTP request latency by endpoint.", LatencyBuckets, "path"),
		InFlight: reg.NewGauge(prefix+"http_in_flight_requests",
			"Requests currently being handled."),
	}
}

// TotalRequests returns the completed-request total across all endpoints
// and codes — the /healthz "requests_total" figure.
func (m *HTTPMetrics) TotalRequests() uint64 { return m.Requests.Sum() }

// Middleware wraps next, recording count, status code, and latency per
// request. normalize maps a raw URL path to a bounded label value (return
// a fixed sentinel for unknown paths so label cardinality stays finite);
// nil uses the path verbatim.
func (m *HTTPMetrics) Middleware(normalize func(path string) string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if normalize != nil {
			path = normalize(path)
		}
		m.InFlight.Add(1)
		defer m.InFlight.Add(-1)

		sw := &statusWriter{ResponseWriter: w}
		sp := StartSpan(path)
		next.ServeHTTP(sw, r)
		d := sp.End()

		code := sw.code
		if code == 0 {
			code = http.StatusOK // handler wrote a body (or nothing) without WriteHeader
		}
		m.Requests.With(path, strconv.Itoa(code)).Inc()
		m.Latency.With(path).Observe(d.Seconds())
	})
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

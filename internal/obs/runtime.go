package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeVitals is one sample of Go runtime health: scheduler load, heap
// pressure, and GC stall behaviour. Zero values mean "not supported by
// this runtime" for the individual field.
type RuntimeVitals struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// HeapBytes is the number of bytes occupied by live heap objects
	// plus unswept spans (/memory/classes/heap/objects:bytes).
	HeapBytes uint64 `json:"heap_bytes"`
	// GCPauseSeconds approximates the worst stop-the-world GC pause
	// observed since the previous sample (upper bucket bound of the
	// runtime's pause histogram delta). Sticky: if no GC ran between
	// samples, the previous value is retained rather than zeroed.
	GCPauseSeconds float64 `json:"gc_pause_seconds"`
	// SampledAt is when this sample was taken.
	SampledAt time.Time `json:"-"`
}

// RuntimeSampler reads Go runtime telemetry through runtime/metrics on
// demand or on a background cadence. Metric support is probed once at
// construction (names vary across Go releases); unsupported fields stay
// zero. All methods are safe for concurrent use.
type RuntimeSampler struct {
	mu        sync.Mutex
	samples   []metrics.Sample
	gIdx      int // /sched/goroutines, -1 if unsupported
	hIdx      int // heap objects bytes, -1 if unsupported
	pIdx      int // GC pause histogram, -1 if unsupported
	prevPause []uint64
	latest    RuntimeVitals
	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
}

// NewRuntimeSampler probes the runtime's metric set and returns a
// sampler. It does not start a background loop; call Start for that, or
// rely on Latest's staleness-triggered resampling.
func NewRuntimeSampler() *RuntimeSampler {
	s := &RuntimeSampler{gIdx: -1, hIdx: -1, pIdx: -1, stopCh: make(chan struct{})}
	add := func(name string) int {
		s.samples = append(s.samples, metrics.Sample{Name: name})
		metrics.Read(s.samples[len(s.samples)-1:])
		if s.samples[len(s.samples)-1].Value.Kind() == metrics.KindBad {
			s.samples = s.samples[:len(s.samples)-1]
			return -1
		}
		return len(s.samples) - 1
	}
	s.gIdx = add("/sched/goroutines:goroutines")
	s.hIdx = add("/memory/classes/heap/objects:bytes")
	// Go >= 1.22 spells the GC pause histogram the first way; older
	// runtimes the second. Whichever probes clean wins.
	if s.pIdx = add("/sched/pauses/total/gc:seconds"); s.pIdx < 0 {
		s.pIdx = add("/gc/pauses:seconds")
	}
	s.Sample()
	return s
}

// Sample reads the runtime now, updates the cached vitals, and returns
// them.
func (s *RuntimeSampler) Sample() RuntimeVitals {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	v := RuntimeVitals{SampledAt: time.Now(), GCPauseSeconds: s.latest.GCPauseSeconds}
	if s.gIdx >= 0 {
		v.Goroutines = int(s.samples[s.gIdx].Value.Uint64())
	}
	if s.hIdx >= 0 {
		v.HeapBytes = s.samples[s.hIdx].Value.Uint64()
	}
	if s.pIdx >= 0 {
		if pause, ok := s.pauseDelta(s.samples[s.pIdx].Value.Float64Histogram()); ok {
			v.GCPauseSeconds = pause
		}
	}
	s.latest = v
	return v
}

// pauseDelta compares the cumulative GC pause histogram against the
// previous sample and returns the largest finite bucket bound that
// gained counts — an upper estimate of the worst pause in the interval.
func (s *RuntimeSampler) pauseDelta(h *metrics.Float64Histogram) (float64, bool) {
	if h == nil {
		return 0, false
	}
	defer func() {
		if s.prevPause == nil {
			s.prevPause = make([]uint64, len(h.Counts))
		}
		copy(s.prevPause, h.Counts)
	}()
	if s.prevPause == nil || len(s.prevPause) != len(h.Counts) {
		return 0, false // first sample (or layout change): no interval yet
	}
	worst, found := 0.0, false
	for i, c := range h.Counts {
		if c <= s.prevPause[i] {
			continue
		}
		// Buckets has len(Counts)+1 entries; bucket i spans
		// [Buckets[i], Buckets[i+1]). Prefer the finite bound.
		b := h.Buckets[i+1]
		if b > worst && b <= 1e9 { // +Inf guard
			worst, found = b, true
		} else if b > 1e9 && h.Buckets[i] > worst {
			worst, found = h.Buckets[i], true
		}
	}
	return worst, found
}

// Latest returns the cached vitals, resampling first if they are older
// than maxAge (maxAge <= 0 always resamples).
func (s *RuntimeSampler) Latest(maxAge time.Duration) RuntimeVitals {
	s.mu.Lock()
	v := s.latest
	s.mu.Unlock()
	if maxAge > 0 && time.Since(v.SampledAt) < maxAge {
		return v
	}
	return s.Sample()
}

// Start launches a background goroutine sampling every interval until
// Stop is called. Calling Start more than once is a no-op after the
// first.
func (s *RuntimeSampler) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	s.startOnce.Do(func() {
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.Sample()
				case <-s.stopCh:
					return
				}
			}
		}()
	})
}

// Stop terminates the background loop started by Start. Safe to call
// multiple times, or without Start.
func (s *RuntimeSampler) Stop() { s.stopOnce.Do(func() { close(s.stopCh) }) }

// Register exposes the vitals as scrape-time gauges under prefix:
// <prefix>goroutines, <prefix>heap_bytes, <prefix>gc_pause_seconds.
// Scrapes read the cached sample, refreshing it when older than a
// second, so a scrape storm cannot hammer runtime/metrics.
func (s *RuntimeSampler) Register(reg *Registry, prefix string) {
	reg.NewGaugeFunc(prefix+"goroutines",
		"Live goroutine count (runtime/metrics).",
		func() float64 { return float64(s.Latest(time.Second).Goroutines) })
	reg.NewGaugeFunc(prefix+"heap_bytes",
		"Bytes of live heap objects plus unswept spans (runtime/metrics).",
		func() float64 { return float64(s.Latest(time.Second).HeapBytes) })
	reg.NewGaugeFunc(prefix+"gc_pause_seconds",
		"Approximate worst GC pause in the last sampling interval.",
		func() float64 { return s.Latest(time.Second).GCPauseSeconds })
}

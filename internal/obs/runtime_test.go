package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRuntimeSamplerSample(t *testing.T) {
	s := NewRuntimeSampler()
	v := s.Sample()
	if v.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", v.Goroutines)
	}
	if v.HeapBytes == 0 {
		t.Error("heap bytes = 0, want > 0 on a live runtime")
	}
	if v.SampledAt.IsZero() {
		t.Error("sample not timestamped")
	}

	// A GC between samples must not zero the sticky pause value, and the
	// pause estimate stays plausible (well under a second).
	runtime.GC()
	v2 := s.Sample()
	if v2.GCPauseSeconds < 0 || v2.GCPauseSeconds > 1 {
		t.Errorf("gc pause = %v, want within [0, 1s]", v2.GCPauseSeconds)
	}
}

func TestRuntimeSamplerLatestStaleness(t *testing.T) {
	s := NewRuntimeSampler()
	v1 := s.Latest(time.Hour) // fresh from the constructor's sample
	v2 := s.Latest(time.Hour)
	if !v2.SampledAt.Equal(v1.SampledAt) {
		t.Error("fresh cache resampled under a generous maxAge")
	}
	v3 := s.Latest(0) // maxAge <= 0 always resamples
	if v3.SampledAt.Equal(v1.SampledAt) {
		t.Error("maxAge 0 did not resample")
	}
}

func TestRuntimeSamplerRegister(t *testing.T) {
	s := NewRuntimeSampler()
	reg := NewRegistry()
	s.Register(reg, "t_")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"t_goroutines", "t_heap_bytes", "t_gc_pause_seconds"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("gauge %s missing from exposition:\n%s", name, out)
		}
	}
	samples := ParseExposition(t, out)
	if samples["t_goroutines"] < 1 {
		t.Errorf("t_goroutines = %v, want >= 1", samples["t_goroutines"])
	}
	if samples["t_heap_bytes"] <= 0 {
		t.Errorf("t_heap_bytes = %v, want > 0", samples["t_heap_bytes"])
	}
}

// TestRuntimeSamplerStartStop exercises the background loop and the
// concurrency contract (double Start, Stop without Start, racing reads)
// under the race detector.
func TestRuntimeSamplerStartStop(t *testing.T) {
	s := NewRuntimeSampler()
	s.Start(time.Millisecond)
	s.Start(time.Millisecond) // no-op, must not double the loop
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Latest(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	s.Stop()
	s.Stop() // idempotent

	NewRuntimeSampler().Stop() // Stop without Start is fine too
}
